#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "ml/neural_net.hpp"
#include "util/rng.hpp"

namespace remgen::ml {
namespace {

data::Sample make_sample(double x, double y, double z, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";

std::vector<data::Sample> linear_field(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  util::Rng rng(seed);
  std::vector<data::Sample> samples;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    samples.push_back(make_sample(x, y, z, kMacA,
                                  -60.0 - 4.0 * x + 2.0 * y + rng.gaussian(0.0, noise)));
  }
  return samples;
}

TEST(NeuralNet, LearnsLinearFunction) {
  NeuralNetConfig config;
  config.epochs = 400;
  NeuralNetRegressor net(config);
  const auto train = linear_field(300, 1);
  net.fit(train);
  const auto test = linear_field(60, 2);
  EXPECT_LT(evaluate(net, test).rmse, 1.5);
}

TEST(NeuralNet, TrainingLossDecreasesWithEpochs) {
  const auto train = linear_field(200, 3);
  NeuralNetConfig short_config;
  short_config.epochs = 2;
  NeuralNetRegressor short_net(short_config);
  short_net.fit(train);

  NeuralNetConfig long_config;
  long_config.epochs = 150;
  NeuralNetRegressor long_net(long_config);
  long_net.fit(train);

  EXPECT_LT(long_net.final_training_loss(), short_net.final_training_loss());
}

TEST(NeuralNet, DeterministicGivenSeed) {
  const auto train = linear_field(100, 5);
  NeuralNetConfig config;
  config.epochs = 20;
  NeuralNetRegressor net1(config);
  NeuralNetRegressor net2(config);
  net1.fit(train);
  net2.fit(train);
  const data::Sample q = make_sample(1.0, 1.0, 1.0, kMacA, 0);
  EXPECT_DOUBLE_EQ(net1.predict(q), net2.predict(q));
}

TEST(NeuralNet, DifferentSeedsDifferentNets) {
  const auto train = linear_field(100, 5);
  NeuralNetConfig config1;
  config1.epochs = 20;
  NeuralNetConfig config2 = config1;
  config2.seed = 7777;
  NeuralNetRegressor net1(config1);
  NeuralNetRegressor net2(config2);
  net1.fit(train);
  net2.fit(train);
  const data::Sample q = make_sample(1.0, 1.0, 1.0, kMacA, 0);
  EXPECT_NE(net1.predict(q), net2.predict(q));
}

TEST(NeuralNet, SeparatesMacsViaOneHot) {
  std::vector<data::Sample> train;
  util::Rng rng(9);
  for (int i = 0; i < 150; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    train.push_back(make_sample(x, 1.0, 1.0, kMacA, -50.0 + rng.gaussian(0, 0.5)));
    train.push_back(make_sample(x, 1.0, 1.0, kMacB, -85.0 + rng.gaussian(0, 0.5)));
  }
  NeuralNetConfig config;
  config.epochs = 200;
  NeuralNetRegressor net(config);
  net.fit(train);
  EXPECT_NEAR(net.predict(make_sample(2.0, 1.0, 1.0, kMacA, 0)), -50.0, 3.0);
  EXPECT_NEAR(net.predict(make_sample(2.0, 1.0, 1.0, kMacB, 0)), -85.0, 3.0);
}

TEST(NeuralNet, PredictionsInSaneRange) {
  const auto train = linear_field(200, 11, 2.0);
  NeuralNetConfig config;
  config.epochs = 100;
  NeuralNetRegressor net(config);
  net.fit(train);
  util::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const double pred = net.predict(
        make_sample(rng.uniform(0, 4), rng.uniform(0, 3), rng.uniform(0, 2), kMacA, 0));
    EXPECT_GT(pred, -120.0);
    EXPECT_LT(pred, -20.0);
  }
}

TEST(NeuralNet, ReluAndTanhAlsoTrain) {
  const auto train = linear_field(200, 15);
  for (const Activation act : {Activation::Relu, Activation::Tanh}) {
    NeuralNetConfig config;
    config.activation = act;
    config.epochs = 200;
    NeuralNetRegressor net(config);
    net.fit(train);
    EXPECT_LT(evaluate(net, train).rmse, 2.5) << static_cast<int>(act);
  }
}

TEST(NeuralNet, TwoHiddenLayers) {
  NeuralNetConfig config;
  config.hidden_layers = {16, 8};
  config.epochs = 200;
  NeuralNetRegressor net(config);
  const auto train = linear_field(200, 17);
  net.fit(train);
  EXPECT_LT(evaluate(net, train).rmse, 2.0);
}

TEST(NeuralNet, NameDescribesArchitecture) {
  NeuralNetConfig config;
  config.hidden_layers = {16};
  EXPECT_EQ(NeuralNetRegressor(config).name(), "neural-net(16,sigmoid,adam)");
  config.hidden_layers = {32, 8};
  config.activation = Activation::Relu;
  EXPECT_EQ(NeuralNetRegressor(config).name(), "neural-net(32-8,relu,adam)");
}

}  // namespace
}  // namespace remgen::ml
