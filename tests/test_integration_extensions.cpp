// Integration tests for the extension configurations: Lighthouse-positioned
// campaigns and mixed Wi-Fi/BLE fleets, plus failure injection at the
// campaign level.
#include <gtest/gtest.h>

#include <set>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

namespace remgen::mission {
namespace {

CampaignConfig small_config() {
  CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  return config;
}

TEST(LighthouseCampaign, ProducesComparableDataset) {
  util::Rng rng(300);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config = small_config();
  config.positioning = PositioningKind::Lighthouse;
  const CampaignResult result = run_campaign(scenario, config, rng);
  EXPECT_GT(result.dataset.size(), 200u);
  for (const UavMissionStats& s : result.uav_stats) {
    EXPECT_GE(s.scans_completed, 6u);
    EXPECT_FALSE(s.aborted_on_battery);
  }
}

TEST(LighthouseCampaign, AnnotationAtLeastAsAccurateAsUwb) {
  auto annotation_error = [](PositioningKind kind) {
    util::Rng rng(301);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    CampaignConfig config;
    config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
    config.positioning = kind;
    const CampaignResult result = run_campaign(scenario, config, rng);
    double total = 0.0;
    for (const data::Sample& s : result.dataset.samples()) {
      const auto& slab = result.assignments[static_cast<std::size_t>(s.uav_id)];
      total += s.position.distance_to(slab[static_cast<std::size_t>(s.waypoint_index)]);
    }
    return total / static_cast<double>(result.dataset.size());
  };
  EXPECT_LE(annotation_error(PositioningKind::Lighthouse),
            annotation_error(PositioningKind::Uwb) + 0.02);
}

TEST(MixedFleet, BothTechnologiesContribute) {
  util::Rng rng(302);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config = small_config();
  config.uav_count = 2;
  config.receivers = {ReceiverKind::Wifi, ReceiverKind::Ble};
  const CampaignResult result = run_campaign(scenario, config, rng);

  std::set<radio::MacAddress> wifi_macs;
  for (const auto& ap : scenario.environment().access_points()) wifi_macs.insert(ap.mac);
  std::set<radio::MacAddress> ble_addrs;
  for (const auto& d : scenario.ble_environment().devices()) ble_addrs.insert(d.address);

  std::size_t wifi_samples = 0;
  std::size_t ble_samples = 0;
  for (const data::Sample& s : result.dataset.samples()) {
    if (wifi_macs.count(s.mac)) {
      ++wifi_samples;
      EXPECT_EQ(s.uav_id, 0);  // UAV 0 carries the Wi-Fi deck
    } else {
      ASSERT_TRUE(ble_addrs.count(s.mac)) << s.mac.to_string();
      ++ble_samples;
      EXPECT_EQ(s.uav_id, 1);  // UAV 1 carries the BLE deck
    }
  }
  EXPECT_GT(wifi_samples, 100u);
  EXPECT_GT(ble_samples, 20u);
}

TEST(MixedFleet, BleSamplesHaveAdvChannels) {
  util::Rng rng(303);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config = small_config();
  config.receivers = {ReceiverKind::Ble};
  const CampaignResult result = run_campaign(scenario, config, rng);
  ASSERT_FALSE(result.dataset.empty());
  for (const data::Sample& s : result.dataset.samples()) {
    EXPECT_TRUE(s.channel == 37 || s.channel == 38 || s.channel == 39) << s.channel;
  }
}

TEST(FailureInjection, BatteryAbortLandsEarly) {
  util::Rng rng(304);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config;
  config.grid = {.nx = 6, .ny = 4, .nz = 3, .margin_m = 0.25};
  config.uav_count = 1;  // one UAV cannot fly 72 waypoints on one battery
  const CampaignResult result = run_campaign(scenario, config, rng);
  ASSERT_GE(result.uav_stats.size(), 1u);
  const UavMissionStats& s = result.uav_stats[0];
  EXPECT_TRUE(s.aborted_on_battery);
  EXPECT_LT(s.waypoints_commanded, 72u);
  EXPECT_GT(s.waypoints_commanded, 20u);  // but it got a good way in
  EXPECT_GT(result.dataset.size(), 400u);
  // Graceful degradation: the abandoned waypoints go to a fresh rescue UAV
  // (which, with 40+ waypoints on one battery, eventually aborts too — but
  // every grid point ends up in the coverage report either way).
  EXPECT_GT(result.uav_stats.size(), 1u);
  EXPECT_EQ(result.coverage.size(), 72u);
  std::size_t rescued = 0;
  for (const WaypointCoverage& c : result.coverage) {
    if (c.rescued) ++rescued;
  }
  EXPECT_GT(rescued, 0u);
}

TEST(FailureInjection, LossyLinkStillCompletesCampaign) {
  util::Rng rng(305);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config = small_config();
  config.uav.crtp.loss_probability = 0.08;  // very lossy air
  const CampaignResult result = run_campaign(scenario, config, rng);
  // Retries and the hold task keep the mission alive.
  for (const UavMissionStats& s : result.uav_stats) {
    EXPECT_GE(s.scans_completed, 4u);
  }
  EXPECT_GT(result.dataset.size(), 150u);
}

TEST(FailureInjection, HighRangingNoiseDegradesButCompletes) {
  util::Rng rng(306);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config = small_config();
  config.uav.lps.ranging.twr_noise_sigma_m = 0.4;
  config.uav.lps.ranging.tdoa_noise_sigma_m = 0.3;
  config.uav.lps.ekf.range_sigma_m = 0.4;
  config.uav.lps.ekf.tdoa_sigma_m = 0.3;
  const CampaignResult result = run_campaign(scenario, config, rng);
  EXPECT_GT(result.dataset.size(), 100u);
}

}  // namespace
}  // namespace remgen::mission
