// End-to-end pipeline integration: scenario -> campaign -> preprocessing ->
// model evaluation -> REM, through the core facade.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace remgen::core {
namespace {

PipelineConfig small_pipeline() {
  PipelineConfig config;
  config.campaign.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  config.min_samples_per_mac = 8;
  config.rem.voxel_m = 0.5;
  return config;
}

TEST(PipelineIntegration, ProducesAllArtifacts) {
  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const PipelineResult result = run_pipeline(scenario, small_pipeline(), rng);

  EXPECT_FALSE(result.campaign.dataset.empty());
  EXPECT_FALSE(result.preprocessed.empty());
  EXPECT_LE(result.preprocessed.size(), result.campaign.dataset.size());
  EXPECT_GT(result.holdout.rmse, 0.0);
  EXPECT_LT(result.holdout.rmse, 12.0);
  ASSERT_TRUE(result.rem.has_value());
  EXPECT_FALSE(result.rem->macs().empty());
}

TEST(PipelineIntegration, PreprocessingDropsAreAccounted) {
  util::Rng rng(7);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const PipelineResult result = run_pipeline(scenario, small_pipeline(), rng);
  EXPECT_EQ(result.preprocessed.size() + result.dropped_samples,
            result.campaign.dataset.size());
}

TEST(PipelineIntegration, RemCoversScanVolume) {
  util::Rng rng(9);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const PipelineResult result = run_pipeline(scenario, small_pipeline(), rng);
  ASSERT_TRUE(result.rem.has_value());
  const geom::Aabb& bounds = result.rem->geometry().bounds();
  EXPECT_EQ(bounds.min, scenario.scan_volume().min);
  EXPECT_EQ(bounds.max, scenario.scan_volume().max);
  // Query anywhere inside: always answerable for a mapped MAC.
  const radio::MacAddress mac = result.rem->macs().front();
  EXPECT_TRUE(result.rem->query(mac, scenario.scan_volume().center()).has_value());
}

TEST(PipelineIntegration, ModelsPredictBetterThanChanceOnHoldout) {
  util::Rng rng(11);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  PipelineConfig config = small_pipeline();
  config.model = ml::ModelKind::KnnScaled16;
  const PipelineResult result = run_pipeline(scenario, config, rng);
  // R^2 > 0.5: the REM genuinely explains the signal structure.
  EXPECT_GT(result.holdout.r2, 0.5);
}

TEST(PipelineIntegration, WorksWithEveryModelKind) {
  util::Rng rng(13);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  for (const ml::ModelKind kind :
       {ml::ModelKind::BaselineMeanPerMac, ml::ModelKind::PerMacKnn, ml::ModelKind::Kriging}) {
    util::Rng run_rng = rng.fork(ml::model_kind_name(kind));
    PipelineConfig config = small_pipeline();
    config.model = kind;
    const PipelineResult result = run_pipeline(scenario, config, run_rng);
    EXPECT_TRUE(result.rem.has_value()) << ml::model_kind_name(kind);
    EXPECT_LT(result.holdout.rmse, 15.0) << ml::model_kind_name(kind);
  }
}

TEST(PipelineIntegration, GroundTruthReconstructionIsReasonable) {
  // The REM's predictions at voxel centres should be within a few dB of the
  // simulator's ground-truth mean RSS for well-sampled MACs.
  util::Rng rng(15);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  PipelineConfig config = small_pipeline();
  const PipelineResult result = run_pipeline(scenario, config, rng);
  ASSERT_TRUE(result.rem.has_value());

  const auto& env = scenario.environment();
  double se = 0.0;
  std::size_t n = 0;
  for (std::size_t ap = 0; ap < env.access_points().size(); ++ap) {
    const radio::MacAddress mac = env.access_points()[ap].mac;
    const auto cell = result.rem->query(mac, scenario.scan_volume().center());
    if (!cell) continue;
    const double truth = env.mean_rss_dbm(ap, scenario.scan_volume().center());
    if (truth < -92.0) continue;  // unobservable: censored by the noise floor
    se += (cell->rss_dbm - truth) * (cell->rss_dbm - truth);
    ++n;
  }
  ASSERT_GT(n, 10u);
  EXPECT_LT(std::sqrt(se / static_cast<double>(n)), 9.0);  // coarse 12-waypoint campaign
}

}  // namespace
}  // namespace remgen::core
