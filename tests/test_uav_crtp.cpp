#include <gtest/gtest.h>

#include "uav/crtp.hpp"

namespace remgen::uav {
namespace {

CrtpConfig lossless(std::size_t queue = 16) {
  CrtpConfig config;
  config.tx_queue_size = queue;
  config.loss_probability = 0.0;
  config.latency_s = 0.001;
  return config;
}

TEST(Crtp, UavToBaseDelivery) {
  CrtpLink link(lossless(), util::Rng(1));
  EXPECT_TRUE(link.uav_send({"tlm", "hello"}, 0.0));
  EXPECT_TRUE(link.base_receive(0.0).empty());  // latency not yet elapsed
  const auto packets = link.base_receive(0.01);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, "hello");
  EXPECT_EQ(packets[0].port, "tlm");
}

TEST(Crtp, BaseToUavDelivery) {
  CrtpLink link(lossless(), util::Rng(1));
  EXPECT_TRUE(link.base_send({"cmd", "takeoff 1.0"}, 0.0));
  const auto packets = link.uav_receive(0.01);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, "takeoff 1.0");
}

TEST(Crtp, OrderingPreserved) {
  CrtpLink link(lossless(), util::Rng(1));
  for (int i = 0; i < 5; ++i) {
    link.uav_send({"tlm", std::to_string(i)}, 0.0);
  }
  const auto packets = link.base_receive(1.0);
  ASSERT_EQ(packets.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(packets[i].payload, std::to_string(i));
}

TEST(Crtp, BaseSendFailsWhenRadioOff) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  EXPECT_FALSE(link.base_send({"cmd", "goto 1 1 1"}, 0.1));
  EXPECT_EQ(link.link_drops(), 1u);
  link.set_radio_enabled(true, 0.2);
  EXPECT_TRUE(link.uav_receive(1.0).empty());  // the packet is gone
}

TEST(Crtp, UavSendQueuesWhileRadioOff) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  EXPECT_TRUE(link.uav_send({"tlm", "queued"}, 0.1));
  EXPECT_EQ(link.tx_queue_depth(), 1u);
  EXPECT_TRUE(link.base_receive(10.0).empty());  // not delivered while off

  link.set_radio_enabled(true, 1.0);
  EXPECT_EQ(link.tx_queue_depth(), 0u);
  const auto packets = link.base_receive(1.1);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, "queued");
}

TEST(Crtp, QueueOverflowDropsNewestAndCounts) {
  CrtpLink link(lossless(/*queue=*/3), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  for (int i = 0; i < 5; ++i) {
    link.uav_send({"tlm", std::to_string(i)}, 0.1);
  }
  EXPECT_EQ(link.tx_queue_depth(), 3u);
  EXPECT_EQ(link.tx_queue_drops(), 2u);
  link.set_radio_enabled(true, 1.0);
  const auto packets = link.base_receive(2.0);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].payload, "0");  // oldest survive
  EXPECT_EQ(packets[2].payload, "2");
}

TEST(Crtp, FlushPreservesOrderAcrossLiveTraffic) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  link.uav_send({"tlm", "first"}, 0.1);
  link.uav_send({"tlm", "second"}, 0.2);
  link.set_radio_enabled(true, 1.0);
  link.uav_send({"tlm", "third"}, 1.0);
  const auto packets = link.base_receive(2.0);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].payload, "first");
  EXPECT_EQ(packets[1].payload, "second");
  EXPECT_EQ(packets[2].payload, "third");
}

TEST(Crtp, RandomLossIsCounted) {
  CrtpConfig config = lossless();
  config.loss_probability = 0.5;
  CrtpLink link(config, util::Rng(7));
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    if (link.uav_send({"tlm", "x"}, 0.0)) ++delivered;
  }
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
  EXPECT_EQ(link.link_drops(), 1000u - static_cast<std::size_t>(delivered));
}

TEST(Crtp, RadioToggleIdempotent) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(true, 0.0);  // already on: no-op
  link.set_radio_enabled(false, 0.1);
  link.set_radio_enabled(false, 0.2);  // already off: no-op
  EXPECT_FALSE(link.radio_enabled());
}

CrtpConfig with_injected_loss(double probability, std::size_t queue = 64) {
  CrtpConfig config = lossless(queue);
  config.faults.extra_loss_probability = probability;
  return config;
}

TEST(Crtp, InjectedLossAppliesPerPacketDuringFlush) {
  // A full radio-off cycle: each queued packet faces its own loss draw on the
  // flush, not one draw for the whole queue.
  CrtpLink link(with_injected_loss(0.5, /*queue=*/128), util::Rng(3));
  link.set_radio_enabled(false, 0.0);
  for (int i = 0; i < 100; ++i) {
    link.uav_send({"tlm", std::to_string(i)}, 0.1);
  }
  EXPECT_EQ(link.tx_queue_depth(), 100u);
  link.set_radio_enabled(true, 1.0);
  const auto packets = link.base_receive(2.0);
  EXPECT_GT(packets.size(), 20u);  // some survive...
  EXPECT_LT(packets.size(), 80u);  // ...some do not
  EXPECT_EQ(link.link_drops(), 100u - packets.size());
}

TEST(Crtp, FlushPreservesRelativeOrderUnderInjectedLoss) {
  CrtpLink link(with_injected_loss(0.4), util::Rng(5));
  link.set_radio_enabled(false, 0.0);
  for (int i = 0; i < 50; ++i) {
    link.uav_send({"tlm", std::to_string(i)}, 0.1);
  }
  link.set_radio_enabled(true, 1.0);
  const auto packets = link.base_receive(2.0);
  int previous = -1;
  for (const CrtpPacket& p : packets) {
    const int value = std::stoi(p.payload);
    EXPECT_GT(value, previous);  // survivors keep their send order
    previous = value;
  }
}

TEST(Crtp, TxQueueOverflowAccountingAcrossRadioCycles) {
  CrtpLink link(with_injected_loss(0.0, /*queue=*/4), util::Rng(7));
  for (int cycle = 0; cycle < 3; ++cycle) {
    const double t = static_cast<double>(cycle);
    link.set_radio_enabled(false, t);
    for (int i = 0; i < 10; ++i) {
      link.uav_send({"tlm", "x"}, t + 0.1);
    }
    EXPECT_EQ(link.tx_queue_depth(), 4u);
    link.set_radio_enabled(true, t + 0.5);
    EXPECT_EQ(link.tx_queue_depth(), 0u);
  }
  // 6 of 10 overflow per cycle; the counter accumulates across cycles.
  EXPECT_EQ(link.tx_queue_drops(), 18u);
  EXPECT_EQ(link.base_receive(10.0).size(), 12u);
}

TEST(Crtp, InjectedLatencySpikeDelaysDelivery) {
  CrtpConfig config = lossless();
  config.faults.latency_spike_probability = 1.0;
  config.faults.latency_spike_min_s = 0.5;
  config.faults.latency_spike_max_s = 0.5;
  CrtpLink link(config, util::Rng(11));
  EXPECT_TRUE(link.uav_send({"tlm", "slow"}, 0.0));
  EXPECT_TRUE(link.base_receive(0.4).empty());  // base latency + 0.5 s spike
  const auto packets = link.base_receive(0.6);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, "slow");
}

TEST(Crtp, InjectedFaultsAreDeterministicPerSeed) {
  auto deliveries = [] {
    CrtpConfig config = lossless();
    config.faults.extra_loss_probability = 0.2;
    config.faults.burst_start_probability = 0.05;
    config.faults.seed = 21;
    CrtpLink link(config, util::Rng(13));
    std::string got;
    link.set_radio_enabled(false, 0.0);
    for (int i = 0; i < 30; ++i) link.uav_send({"tlm", std::to_string(i)}, 0.1);
    link.set_radio_enabled(true, 1.0);
    for (int i = 30; i < 60; ++i) link.uav_send({"tlm", std::to_string(i)}, 2.0);
    for (const CrtpPacket& p : link.base_receive(10.0)) got += p.payload + ",";
    return got;
  };
  EXPECT_EQ(deliveries(), deliveries());
}

TEST(Crtp, DisabledFaultsDoNotPerturbTheLossStream) {
  // The injector stream is only forked when a profile enables it, so a
  // default-constructed faults struct must leave behavior byte-identical.
  auto deliveries = [](bool touch_faults) {
    CrtpConfig config = lossless();
    config.loss_probability = 0.3;
    if (touch_faults) config.faults = fault::CrtpFaults{};  // still disabled
    CrtpLink link(config, util::Rng(17));
    std::string got;
    for (int i = 0; i < 50; ++i) link.uav_send({"tlm", std::to_string(i)}, 0.0);
    for (const CrtpPacket& p : link.base_receive(10.0)) got += p.payload + ",";
    return got;
  };
  EXPECT_EQ(deliveries(false), deliveries(true));
}

}  // namespace
}  // namespace remgen::uav
