#include <gtest/gtest.h>

#include "uav/crtp.hpp"

namespace remgen::uav {
namespace {

CrtpConfig lossless(std::size_t queue = 16) {
  CrtpConfig config;
  config.tx_queue_size = queue;
  config.loss_probability = 0.0;
  config.latency_s = 0.001;
  return config;
}

TEST(Crtp, UavToBaseDelivery) {
  CrtpLink link(lossless(), util::Rng(1));
  EXPECT_TRUE(link.uav_send({"tlm", "hello"}, 0.0));
  EXPECT_TRUE(link.base_receive(0.0).empty());  // latency not yet elapsed
  const auto packets = link.base_receive(0.01);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, "hello");
  EXPECT_EQ(packets[0].port, "tlm");
}

TEST(Crtp, BaseToUavDelivery) {
  CrtpLink link(lossless(), util::Rng(1));
  EXPECT_TRUE(link.base_send({"cmd", "takeoff 1.0"}, 0.0));
  const auto packets = link.uav_receive(0.01);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, "takeoff 1.0");
}

TEST(Crtp, OrderingPreserved) {
  CrtpLink link(lossless(), util::Rng(1));
  for (int i = 0; i < 5; ++i) {
    link.uav_send({"tlm", std::to_string(i)}, 0.0);
  }
  const auto packets = link.base_receive(1.0);
  ASSERT_EQ(packets.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(packets[i].payload, std::to_string(i));
}

TEST(Crtp, BaseSendFailsWhenRadioOff) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  EXPECT_FALSE(link.base_send({"cmd", "goto 1 1 1"}, 0.1));
  EXPECT_EQ(link.link_drops(), 1u);
  link.set_radio_enabled(true, 0.2);
  EXPECT_TRUE(link.uav_receive(1.0).empty());  // the packet is gone
}

TEST(Crtp, UavSendQueuesWhileRadioOff) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  EXPECT_TRUE(link.uav_send({"tlm", "queued"}, 0.1));
  EXPECT_EQ(link.tx_queue_depth(), 1u);
  EXPECT_TRUE(link.base_receive(10.0).empty());  // not delivered while off

  link.set_radio_enabled(true, 1.0);
  EXPECT_EQ(link.tx_queue_depth(), 0u);
  const auto packets = link.base_receive(1.1);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].payload, "queued");
}

TEST(Crtp, QueueOverflowDropsNewestAndCounts) {
  CrtpLink link(lossless(/*queue=*/3), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  for (int i = 0; i < 5; ++i) {
    link.uav_send({"tlm", std::to_string(i)}, 0.1);
  }
  EXPECT_EQ(link.tx_queue_depth(), 3u);
  EXPECT_EQ(link.tx_queue_drops(), 2u);
  link.set_radio_enabled(true, 1.0);
  const auto packets = link.base_receive(2.0);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].payload, "0");  // oldest survive
  EXPECT_EQ(packets[2].payload, "2");
}

TEST(Crtp, FlushPreservesOrderAcrossLiveTraffic) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(false, 0.0);
  link.uav_send({"tlm", "first"}, 0.1);
  link.uav_send({"tlm", "second"}, 0.2);
  link.set_radio_enabled(true, 1.0);
  link.uav_send({"tlm", "third"}, 1.0);
  const auto packets = link.base_receive(2.0);
  ASSERT_EQ(packets.size(), 3u);
  EXPECT_EQ(packets[0].payload, "first");
  EXPECT_EQ(packets[1].payload, "second");
  EXPECT_EQ(packets[2].payload, "third");
}

TEST(Crtp, RandomLossIsCounted) {
  CrtpConfig config = lossless();
  config.loss_probability = 0.5;
  CrtpLink link(config, util::Rng(7));
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    if (link.uav_send({"tlm", "x"}, 0.0)) ++delivered;
  }
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
  EXPECT_EQ(link.link_drops(), 1000u - static_cast<std::size_t>(delivered));
}

TEST(Crtp, RadioToggleIdempotent) {
  CrtpLink link(lossless(), util::Rng(1));
  link.set_radio_enabled(true, 0.0);  // already on: no-op
  link.set_radio_enabled(false, 0.1);
  link.set_radio_enabled(false, 0.2);  // already off: no-op
  EXPECT_FALSE(link.radio_enabled());
}

}  // namespace
}  // namespace remgen::uav
