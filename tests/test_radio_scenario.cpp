#include <gtest/gtest.h>

#include <set>

#include "radio/scenario.hpp"

namespace remgen::radio {
namespace {

TEST(Scenario, PopulationMatchesPaperCounts) {
  util::Rng rng(2022);
  const geom::ApartmentModel model = geom::make_apartment_model();
  const std::vector<AccessPoint> aps =
      make_ap_population(model.building_bounds, ScenarioConfig{}, rng);
  EXPECT_EQ(aps.size(), 73u);

  std::set<MacAddress> macs;
  std::set<std::string> ssids;
  for (const AccessPoint& ap : aps) {
    macs.insert(ap.mac);
    ssids.insert(ap.ssid);
  }
  EXPECT_EQ(macs.size(), 73u);   // every BSS has a unique MAC
  EXPECT_EQ(ssids.size(), 49u);  // some SSIDs appear behind multiple MACs
}

TEST(Scenario, ChannelsAreValidAndMostlyPrimary) {
  util::Rng rng(7);
  const geom::ApartmentModel model = geom::make_apartment_model();
  const auto aps = make_ap_population(model.building_bounds, ScenarioConfig{}, rng);
  int primary = 0;
  for (const AccessPoint& ap : aps) {
    EXPECT_TRUE(is_valid_wifi_channel(ap.channel));
    if (ap.channel == 1 || ap.channel == 6 || ap.channel == 11) ++primary;
  }
  EXPECT_GT(primary, static_cast<int>(aps.size()) / 2);
}

TEST(Scenario, PositionsWithinBuilding) {
  util::Rng rng(9);
  const geom::ApartmentModel model = geom::make_apartment_model();
  const auto aps = make_ap_population(model.building_bounds, ScenarioConfig{}, rng);
  for (const AccessPoint& ap : aps) {
    EXPECT_TRUE(model.building_bounds.contains(ap.position))
        << ap.position.to_string();
  }
}

TEST(Scenario, PopulationSkewedTowardCore) {
  util::Rng rng(13);
  const geom::ApartmentModel model = geom::make_apartment_model();
  const auto aps = make_ap_population(model.building_bounds, ScenarioConfig{}, rng);
  const geom::Vec3 room_center = model.scan_volume.center();
  int toward_core = 0;  // +x or -y of the room centre
  for (const AccessPoint& ap : aps) {
    if (ap.position.x > room_center.x || ap.position.y < room_center.y) ++toward_core;
  }
  EXPECT_GT(toward_core, static_cast<int>(aps.size()) * 2 / 3);
}

TEST(Scenario, CustomCounts) {
  util::Rng rng(5);
  ScenarioConfig config;
  config.ssid_count = 10;
  config.mac_count = 25;
  const geom::ApartmentModel model = geom::make_apartment_model();
  const auto aps = make_ap_population(model.building_bounds, config, rng);
  EXPECT_EQ(aps.size(), 25u);
  std::set<std::string> ssids;
  for (const auto& ap : aps) ssids.insert(ap.ssid);
  EXPECT_EQ(ssids.size(), 10u);
}

TEST(Scenario, MakeApartmentIsReproducible) {
  util::Rng rng1(2022);
  util::Rng rng2(2022);
  const Scenario s1 = Scenario::make_apartment(rng1);
  const Scenario s2 = Scenario::make_apartment(rng2);
  const auto& aps1 = s1.environment().access_points();
  const auto& aps2 = s2.environment().access_points();
  ASSERT_EQ(aps1.size(), aps2.size());
  for (std::size_t i = 0; i < aps1.size(); ++i) {
    EXPECT_EQ(aps1[i].mac, aps2[i].mac);
    EXPECT_EQ(aps1[i].position, aps2[i].position);
  }
  // The frozen shadowing fields must also agree.
  const geom::Vec3 p{1.5, 1.5, 1.0};
  for (std::size_t i = 0; i < aps1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.environment().mean_rss_dbm(i, p), s2.environment().mean_rss_dbm(i, p));
  }
}

TEST(Scenario, ScenarioIsSafelyMovable) {
  util::Rng rng(3);
  Scenario s = Scenario::make_apartment(rng);
  const double before = s.environment().mean_rss_dbm(0, {1, 1, 1});
  Scenario moved = std::move(s);
  // The environment's floorplan pointer must survive the move.
  EXPECT_DOUBLE_EQ(moved.environment().mean_rss_dbm(0, {1, 1, 1}), before);
  EXPECT_FALSE(moved.floorplan().walls().empty());
}

TEST(Scenario, OwnRouterInsideApartment) {
  util::Rng rng(2022);
  const Scenario s = Scenario::make_apartment(rng);
  // The first AP is pinned inside the unit near the interior wall.
  const AccessPoint& own = s.environment().access_points().front();
  EXPECT_TRUE(s.scan_volume().contains(own.position));
}

}  // namespace
}  // namespace remgen::radio
