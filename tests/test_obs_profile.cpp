// Phase profiler: nesting and self-time math, deterministic aggregation at
// 1 vs 4 threads, zero-overhead-when-disabled behaviour, task-trace event
// ordering, Amdahl accounting, and the JSON round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "exec/config.hpp"
#include "exec/parallel.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"

namespace {

using namespace remgen;

class ObsProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = exec::thread_count();
    obs::set_profiling_enabled(true);
    obs::reset_profiling();
  }
  void TearDown() override {
    obs::set_profiling_enabled(false);
    obs::reset_profiling();
    exec::set_thread_count(previous_threads_);
  }

  std::size_t previous_threads_ = 1;
};

void spin_for_us(std::uint64_t us) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() < static_cast<std::int64_t>(us)) {
  }
}

const obs::PhaseStats* find_phase(const obs::ProfileReport& report, std::string_view path) {
  for (const obs::PhaseStats& phase : report.phases) {
    if (phase.path == path) return &phase;
  }
  return nullptr;
}

TEST_F(ObsProfileTest, PhasesNestAndAccumulate) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  {
    REMGEN_PROFILE_PHASE("outer");
    spin_for_us(2000);
    for (int i = 0; i < 3; ++i) {
      REMGEN_PROFILE_PHASE("inner");
      spin_for_us(1000);
    }
  }
  const obs::ProfileReport report = obs::profile_report();
  const obs::PhaseStats* outer = find_phase(report, "outer");
  const obs::PhaseStats* inner = find_phase(report, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->count, 3u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(inner->name, "inner");

  // Inclusive parent wall covers the children; self = total - children.
  EXPECT_GE(outer->total_us, inner->total_us);
  EXPECT_EQ(outer->self_us, outer->total_us - inner->total_us);
  EXPECT_GE(outer->self_us, 1500u);  // the 2 ms spin outside the inner phases
  EXPECT_GT(inner->percent_of_parent, 0.0);
}

TEST_F(ObsProfileTest, SiblingPhasesComeOutSorted) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  {
    REMGEN_PROFILE_PHASE("root");
    { REMGEN_PROFILE_PHASE("zeta"); }
    { REMGEN_PROFILE_PHASE("alpha"); }
    { REMGEN_PROFILE_PHASE("mid"); }
  }
  const obs::ProfileReport report = obs::profile_report();
  ASSERT_EQ(report.phases.size(), 4u);
  EXPECT_EQ(report.phases[0].path, "root");
  EXPECT_EQ(report.phases[1].path, "root/alpha");
  EXPECT_EQ(report.phases[2].path, "root/mid");
  EXPECT_EQ(report.phases[3].path, "root/zeta");
}

TEST_F(ObsProfileTest, AggregationIsDeterministicAcrossThreadWidths) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  // The same work at 1 and 4 threads must produce the same phase structure
  // and the same counts; only the wall times may differ.
  const auto run = [] {
    obs::reset_profiling();
    REMGEN_PROFILE_PHASE("work");
    exec::parallel_for(
        64, [](std::size_t) { REMGEN_PROFILE_PHASE("work.item"); }, /*chunk=*/1,
        "work.items");
    return obs::profile_report();
  };

  exec::set_thread_count(1);
  const obs::ProfileReport sequential = run();
  exec::set_thread_count(4);
  const obs::ProfileReport parallel = run();

  ASSERT_EQ(sequential.phases.size(), parallel.phases.size());
  for (std::size_t i = 0; i < sequential.phases.size(); ++i) {
    EXPECT_EQ(sequential.phases[i].path, parallel.phases[i].path);
    EXPECT_EQ(sequential.phases[i].depth, parallel.phases[i].depth);
    EXPECT_EQ(sequential.phases[i].count, parallel.phases[i].count);
  }
  // Workers adopted the submitter's open phase, so every item landed under
  // "work" at both widths.
  const obs::PhaseStats* items = find_phase(parallel, "work/work.item");
  ASSERT_NE(items, nullptr);
  EXPECT_EQ(items->count, 64u);
}

TEST_F(ObsProfileTest, DisabledPhasesRecordNothing) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  obs::set_profiling_enabled(false);
  obs::reset_profiling();
  {
    REMGEN_PROFILE_PHASE("ghost");
    exec::parallel_for(8, [](std::size_t) {}, /*chunk=*/1, "ghost.items");
  }
  obs::set_profiling_enabled(true);  // report with a live epoch
  const obs::ProfileReport report = obs::profile_report();
  EXPECT_TRUE(report.phases.empty());
  EXPECT_EQ(report.amdahl.regions, 0u);
  EXPECT_EQ(report.task_events, 0u);
}

TEST_F(ObsProfileTest, DisabledPhaseIsCheap) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  obs::set_profiling_enabled(false);
  // 1M disabled phase constructions must be a few ms at most: a relaxed load
  // and a branch each, no clock reads, no locks. Budget is generous (500 ms)
  // to stay robust on loaded CI machines while still catching an accidental
  // clock read or lock on the disabled path (those cost >1us each).
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 1'000'000; ++i) {
    REMGEN_PROFILE_PHASE("noop");
  }
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  obs::set_profiling_enabled(true);
  EXPECT_LT(ms, 500.0);
}

TEST_F(ObsProfileTest, TaskEventsAreOrderedAndComplete) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  obs::set_enabled(true);  // task tracing rides the telemetry gate
  exec::set_thread_count(4);
  exec::parallel_for(16, [](std::size_t) { spin_for_us(100); }, /*chunk=*/1, "ordered.work");
  obs::set_enabled(false);

  const std::vector<obs::TaskEvent> events = obs::task_events_snapshot();
  // Other tests may have recorded events; ours are labelled.
  std::vector<obs::TaskEvent> ours;
  for (const obs::TaskEvent& e : events) {
    if (e.label == "ordered.work") ours.push_back(e);
  }
  ASSERT_EQ(ours.size(), 16u);
  for (std::size_t i = 0; i < ours.size(); ++i) {
    EXPECT_EQ(ours[i].chunk_index, i);                 // sorted by chunk
    EXPECT_EQ(ours[i].region_id, ours[0].region_id);   // one region
    EXPECT_GE(ours[i].start_us, ours[i].enqueue_us);   // no time travel
    EXPECT_GE(ours[i].end_us, ours[i].start_us);
    EXPECT_EQ(ours[i].wait_us, ours[i].start_us - ours[i].enqueue_us);
    EXPECT_LE(ours[i].worker, 3u);  // 0 = caller, 1..3 = pool workers
  }
}

TEST_F(ObsProfileTest, TaskEventsRenderInChromeTrace) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  obs::set_enabled(true);
  // Register at least one name deterministically: freshly spawned pool
  // workers name themselves, but may not have been scheduled yet.
  obs::name_current_thread("main");
  exec::set_thread_count(2);
  exec::parallel_for(4, [](std::size_t) {}, /*chunk=*/1, "traced.work");
  obs::set_enabled(false);

  obs::TraceExport input;
  const std::vector<obs::TaskEvent> tasks = obs::task_events_snapshot();
  input.tasks = tasks;
  input.thread_names = obs::trace().thread_names();
  const obs::Json doc = obs::trace_to_json(input);

  std::size_t task_events = 0;
  std::size_t name_events = 0;
  for (const obs::Json& event : doc.at("traceEvents").as_array()) {
    if (event.contains("cat") && event.at("cat").as_string() == "exec.task") ++task_events;
    if (event.at("name").as_string() == "thread_name") ++name_events;
  }
  EXPECT_GE(task_events, 4u);
  EXPECT_GE(name_events, 1u);  // at least the worker threads registered names
  EXPECT_TRUE(doc.contains("droppedTaskEvents"));
  EXPECT_TRUE(doc.contains("droppedSpansByThread"));
}

TEST_F(ObsProfileTest, AmdahlAccountsParallelRegionsAtAnyWidth) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  // Width 1: the sequential fallback still reports the region, so the
  // measured parallelizable fraction is meaningful.
  exec::set_thread_count(1);
  obs::reset_profiling();
  exec::parallel_for(8, [](std::size_t) { spin_for_us(500); }, /*chunk=*/1, "amdahl.work");
  obs::ProfileReport sequential = obs::profile_report();
  EXPECT_EQ(sequential.amdahl.regions, 1u);
  EXPECT_GT(sequential.amdahl.parallel_wall_us, 0u);
  EXPECT_LE(sequential.amdahl.serial_fraction, 1.0);
  EXPECT_GE(sequential.amdahl.serial_fraction, 0.0);

  // Width 4: same accounting through the pool.
  exec::set_thread_count(4);
  obs::reset_profiling();
  exec::parallel_for(8, [](std::size_t) { spin_for_us(500); }, /*chunk=*/1, "amdahl.work");
  obs::ProfileReport parallel = obs::profile_report();
  EXPECT_EQ(parallel.amdahl.regions, 1u);
  EXPECT_GT(parallel.amdahl.parallel_wall_us, 0u);
  EXPECT_EQ(parallel.amdahl.contexts, 4u);
  EXPECT_GT(parallel.amdahl.max_speedup, 1.0);
  // speedup_at is monotone in n and bounded by the Amdahl limit.
  EXPECT_LE(parallel.amdahl.speedup_at(2), parallel.amdahl.speedup_at(8));
  EXPECT_LE(parallel.amdahl.speedup_at(1024), parallel.amdahl.max_speedup + 1e-9);
}

TEST_F(ObsProfileTest, ReportRoundTripsThroughJson) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  {
    REMGEN_PROFILE_PHASE("json.root");
    REMGEN_PROFILE_PHASE("json.leaf");
    spin_for_us(200);
  }
  exec::set_thread_count(2);
  exec::parallel_for(4, [](std::size_t) {}, /*chunk=*/1, "json.region");

  const obs::ProfileReport report = obs::profile_report();
  const obs::ProfileReport parsed =
      obs::profile_from_json(obs::Json::parse(obs::profile_to_json(report).dump()));

  ASSERT_EQ(parsed.phases.size(), report.phases.size());
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    EXPECT_EQ(parsed.phases[i].path, report.phases[i].path);
    EXPECT_EQ(parsed.phases[i].count, report.phases[i].count);
    EXPECT_EQ(parsed.phases[i].total_us, report.phases[i].total_us);
    EXPECT_EQ(parsed.phases[i].self_us, report.phases[i].self_us);
  }
  EXPECT_EQ(parsed.amdahl.regions, report.amdahl.regions);
  EXPECT_EQ(parsed.amdahl.total_wall_us, report.amdahl.total_wall_us);
  EXPECT_DOUBLE_EQ(parsed.amdahl.serial_fraction, report.amdahl.serial_fraction);
  EXPECT_EQ(parsed.task_events, report.task_events);

  // And the human-readable table renders without blowing up.
  std::ostringstream table;
  obs::write_profile_table(table, report);
  EXPECT_NE(table.str().find("serial fraction"), std::string::npos);
}

}  // namespace
