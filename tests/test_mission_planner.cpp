#include <gtest/gtest.h>

#include <algorithm>

#include "mission/planner.hpp"
#include "mission/waypoint.hpp"
#include "util/rng.hpp"

namespace remgen::mission {
namespace {

bool is_permutation_of(const std::vector<geom::Vec3>& a, const std::vector<geom::Vec3>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const geom::Vec3& v) { return std::tuple{v.x, v.y, v.z}; };
  std::vector<std::tuple<double, double, double>> ka, kb;
  for (const auto& v : a) ka.push_back(key(v));
  for (const auto& v : b) kb.push_back(key(v));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

std::vector<geom::Vec3> random_waypoints(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geom::Vec3> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(0.0, 3.7), rng.uniform(0.0, 3.2), rng.uniform(0.2, 2.0)});
  }
  return out;
}

TEST(RouteLength, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(route_length({}), 0.0);
  EXPECT_DOUBLE_EQ(route_length({{1, 1, 1}}), 0.0);
  const geom::Vec3 start{0, 0, 0};
  EXPECT_DOUBLE_EQ(route_length({{3, 4, 0}}, &start), 5.0);
}

TEST(RouteLength, SumsLegs) {
  const std::vector<geom::Vec3> route{{0, 0, 0}, {1, 0, 0}, {1, 2, 0}};
  EXPECT_DOUBLE_EQ(route_length(route), 3.0);
}

TEST(NearestNeighbor, VisitsAllPointsOnce) {
  const auto waypoints = random_waypoints(20, 1);
  const auto route = nearest_neighbor_route(waypoints, {0, 0, 0});
  EXPECT_TRUE(is_permutation_of(route, waypoints));
}

TEST(NearestNeighbor, StartsWithClosest) {
  const std::vector<geom::Vec3> waypoints{{5, 0, 0}, {1, 0, 0}, {3, 0, 0}};
  const auto route = nearest_neighbor_route(waypoints, {0, 0, 0});
  EXPECT_EQ(route.front(), geom::Vec3(1, 0, 0));
}

TEST(TwoOpt, NeverLengthens) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto waypoints = random_waypoints(25, 100 + seed);
    const geom::Vec3 start{0, 0, 1};
    const auto nn = nearest_neighbor_route(waypoints, start);
    const auto improved = two_opt(nn, start);
    EXPECT_LE(route_length(improved, &start), route_length(nn, &start) + 1e-9);
    EXPECT_TRUE(is_permutation_of(improved, waypoints));
  }
}

TEST(TwoOpt, FixesObviousCrossing) {
  // A square visited in a crossing order: 2-opt must recover the perimeter.
  const geom::Vec3 start{0, 0, 0};
  const std::vector<geom::Vec3> crossing{{1, 1, 0}, {0, 1, 0}, {1, 0, 0}};
  const auto fixed = two_opt(crossing, start);
  EXPECT_LT(route_length(fixed, &start), route_length(crossing, &start) - 0.1);
}

TEST(PlanRoute, BeatsSerpentineOnScatteredPoints) {
  const auto waypoints = random_waypoints(40, 7);
  const geom::Vec3 start{0, 0, 1};
  const auto planned = plan_route(waypoints, start);
  EXPECT_TRUE(is_permutation_of(planned, waypoints));
  EXPECT_LT(route_length(planned, &start), route_length(waypoints, &start));
}

TEST(PlanRoute, NearOptimalOnGrid) {
  // On the paper's own grid the serpentine order is already good; the
  // planner must be at least as short.
  const auto grid =
      generate_waypoint_grid(geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}), WaypointGridConfig{});
  const geom::Vec3 start = grid.front();
  const auto planned = plan_route(grid, start);
  EXPECT_LE(route_length(planned, &start), route_length(grid, &start) + 1e-9);
}

TEST(LegTimingTest, ScalesWithDistanceAndClamps) {
  const LegTiming timing;
  EXPECT_DOUBLE_EQ(timing.fly_time_s(0.0), timing.min_leg_s);
  EXPECT_DOUBLE_EQ(timing.fly_time_s(0.8), 0.8 / 0.8 + 1.2);
  EXPECT_GT(timing.fly_time_s(3.0), timing.fly_time_s(1.0));
}

TEST(EstimateMission, FeasibilityMatchesBattery) {
  const auto grid =
      generate_waypoint_grid(geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}),
                             WaypointGridConfig{.nx = 6, .ny = 4, .nz = 3, .margin_m = 0.25});
  const auto half = std::vector<geom::Vec3>(grid.begin(), grid.begin() + 36);
  const geom::Vec3 start{0.3, 0.3, 1.0};
  const LegTiming timing;
  const uav::BatteryConfig battery;

  // The paper's per-UAV load (36 waypoints) fits one battery...
  const MissionEstimate est36 = estimate_mission(half, start, timing, 4.0, battery);
  EXPECT_TRUE(est36.feasible);
  EXPECT_GT(est36.flight_time_s, 120.0);
  EXPECT_LT(est36.flight_time_s, 372.0);

  // ...but all 72 on one battery does not.
  const MissionEstimate est72 = estimate_mission(grid, start, timing, 4.0, battery);
  EXPECT_FALSE(est72.feasible);
}

TEST(EstimateMission, LongerScanCostsMore) {
  const auto waypoints = random_waypoints(10, 9);
  const geom::Vec3 start{0, 0, 1};
  const uav::BatteryConfig battery;
  const MissionEstimate fast = estimate_mission(waypoints, start, LegTiming{}, 1.0, battery);
  const MissionEstimate slow = estimate_mission(waypoints, start, LegTiming{}, 6.0, battery);
  EXPECT_GT(slow.charge_mah, fast.charge_mah);
  EXPECT_GT(slow.flight_time_s, fast.flight_time_s);
}

}  // namespace
}  // namespace remgen::mission
