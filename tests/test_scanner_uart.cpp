#include <gtest/gtest.h>

#include "scanner/uart.hpp"

namespace remgen::scanner {
namespace {

TEST(Uart, HostToDevice) {
  SimUart uart;
  uart.host_write("AT\r\n");
  EXPECT_EQ(uart.device_pending(), 4u);
  EXPECT_EQ(uart.device_read(), "AT\r\n");
  EXPECT_EQ(uart.device_pending(), 0u);
}

TEST(Uart, DeviceToHost) {
  SimUart uart;
  uart.device_write("OK\r\n");
  EXPECT_EQ(uart.host_pending(), 4u);
  EXPECT_EQ(uart.host_read(), "OK\r\n");
}

TEST(Uart, DirectionsAreIndependent) {
  SimUart uart;
  uart.host_write("ping");
  uart.device_write("pong");
  EXPECT_EQ(uart.device_read(), "ping");
  EXPECT_EQ(uart.host_read(), "pong");
}

TEST(Uart, WritesAccumulateInOrder) {
  SimUart uart;
  uart.host_write("a");
  uart.host_write("b");
  uart.host_write("c");
  EXPECT_EQ(uart.device_read(), "abc");
}

TEST(Uart, ReadDrains) {
  SimUart uart;
  uart.host_write("x");
  (void)uart.device_read();
  EXPECT_EQ(uart.device_read(), "");
}

TEST(Uart, BinarySafe) {
  SimUart uart;
  const std::string data("\x00\x01\xff\r\n", 5);
  uart.host_write(data);
  EXPECT_EQ(uart.device_read(), data);
}

}  // namespace
}  // namespace remgen::scanner
