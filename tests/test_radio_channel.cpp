#include <gtest/gtest.h>

#include "radio/channel.hpp"

namespace remgen::radio {
namespace {

TEST(Channel, CenterFrequencies) {
  EXPECT_DOUBLE_EQ(wifi_channel_center_mhz(1), 2412.0);
  EXPECT_DOUBLE_EQ(wifi_channel_center_mhz(6), 2437.0);
  EXPECT_DOUBLE_EQ(wifi_channel_center_mhz(11), 2462.0);
  EXPECT_DOUBLE_EQ(wifi_channel_center_mhz(13), 2472.0);
}

TEST(Channel, Validity) {
  EXPECT_FALSE(is_valid_wifi_channel(0));
  EXPECT_TRUE(is_valid_wifi_channel(1));
  EXPECT_TRUE(is_valid_wifi_channel(13));
  EXPECT_FALSE(is_valid_wifi_channel(14));
  EXPECT_FALSE(is_valid_wifi_channel(-3));
}

TEST(Channel, CoChannelCarrierFullyOverlaps) {
  // 2 MHz carrier dead-centre on channel 6.
  EXPECT_DOUBLE_EQ(carrier_overlap_fraction(2437.0, 2.0, 6), 1.0);
}

TEST(Channel, FarCarrierNoOverlap) {
  EXPECT_DOUBLE_EQ(carrier_overlap_fraction(2525.0, 2.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(carrier_overlap_fraction(2400.0, 2.0, 13), 0.0);
}

TEST(Channel, EdgeCarrierPartialOverlap) {
  // Channel 1 occupies [2401, 2423]; a 2 MHz carrier at 2400 covers [2399, 2401]:
  // zero-width boundary touch -> no overlap.
  EXPECT_DOUBLE_EQ(carrier_overlap_fraction(2400.0, 2.0, 1), 0.0);
  // A carrier at 2401.5 covers [2400.5, 2402.5]: 1.5 of 2 MHz inside.
  EXPECT_NEAR(carrier_overlap_fraction(2401.5, 2.0, 1), 0.75, 1e-12);
}

TEST(Channel, OverlapIsMonotonicApproachingChannelCentre) {
  double prev = -1.0;
  for (double carrier = 2400.0; carrier <= 2412.0; carrier += 1.0) {
    const double overlap = carrier_overlap_fraction(carrier, 2.0, 1);
    EXPECT_GE(overlap, prev);
    prev = overlap;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

// Property: overlap is always within [0, 1] for every channel/carrier combo.
class OverlapProperty : public ::testing::TestWithParam<int> {};

TEST_P(OverlapProperty, FractionBounded) {
  const int channel = GetParam();
  for (double carrier = 2400.0; carrier <= 2525.0; carrier += 5.0) {
    const double f = carrier_overlap_fraction(carrier, 2.0, channel);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllChannels, OverlapProperty, ::testing::Range(1, 14));

}  // namespace
}  // namespace remgen::radio
