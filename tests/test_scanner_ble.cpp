#include <gtest/gtest.h>

#include "scanner/ble_driver.hpp"
#include "scanner/ble_module.hpp"
#include "scanner/i2c.hpp"

namespace remgen::scanner {
namespace {

/// One strong, fast advertiser in free space.
struct World {
  geom::Floorplan floorplan;
  radio::BleEnvironmentConfig env_config;
  util::Rng rng{41};
  std::unique_ptr<radio::BleEnvironment> env;

  World() {
    env_config.shadowing_sigma_db = 0.0;
    env_config.clutter_db_per_m = 0.0;
    env_config.fading_sigma_db = 0.5;
    radio::BleDevice device;
    device.address = *radio::MacAddress::parse("c2:11:22:33:44:55");
    device.name = "fridge-tag";
    device.tx_power_dbm = 2.0;
    device.adv_interval_s = 0.05;
    device.position = {0.0, 0.0, 1.0};
    env = std::make_unique<radio::BleEnvironment>(floorplan,
                                                  std::vector<radio::BleDevice>{device},
                                                  geom::Aabb({-1, -1, 0}, {10, 10, 3}),
                                                  env_config, rng);
  }
};

BleModuleConfig fast_config() {
  BleModuleConfig config;
  config.scan_duration_s = 1.8;
  return config;
}

TEST(I2cBus, NoDeviceMeansNak) {
  SimI2cBus bus;
  EXPECT_FALSE(bus.write_register(0x01, 0x01));
  EXPECT_FALSE(bus.read_register(0x00).has_value());
  EXPECT_TRUE(bus.read_block(0x10, 8).empty());
}

TEST(BleModule, WhoAmI) {
  World world;
  SimI2cBus bus;
  BleObserverModule module(bus, *world.env, fast_config(), util::Rng(1));
  EXPECT_EQ(bus.read_register(ble_reg::kWhoAmI), ble_reg::kWhoAmIValue);
  EXPECT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusIdle);
}

TEST(BleModule, DetachOnDestruction) {
  World world;
  SimI2cBus bus;
  {
    BleObserverModule module(bus, *world.env, fast_config(), util::Rng(1));
    EXPECT_TRUE(bus.read_register(ble_reg::kWhoAmI).has_value());
  }
  EXPECT_FALSE(bus.read_register(ble_reg::kWhoAmI).has_value());
}

TEST(BleModule, ScanLifecycle) {
  World world;
  SimI2cBus bus;
  BleObserverModule module(bus, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{1.0, 0.0, 1.0}; });
  module.step(0.0);
  bus.write_register(ble_reg::kCtrl, ble_reg::kCtrlStartScan);
  EXPECT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusScanning);
  module.step(1.0);
  EXPECT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusScanning);
  module.step(2.0);
  EXPECT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusReady);
  EXPECT_GE(*bus.read_register(ble_reg::kCount), 1);
}

TEST(BleModule, DoubleStartIsError) {
  World world;
  SimI2cBus bus;
  BleObserverModule module(bus, *world.env, fast_config(), util::Rng(1));
  module.step(0.0);
  bus.write_register(ble_reg::kCtrl, ble_reg::kCtrlStartScan);
  bus.write_register(ble_reg::kCtrl, ble_reg::kCtrlStartScan);
  EXPECT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusError);
  // Reset recovers.
  bus.write_register(ble_reg::kCtrl, ble_reg::kCtrlReset);
  EXPECT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusIdle);
}

TEST(BleModule, BogusCtrlValueIsError) {
  World world;
  SimI2cBus bus;
  BleObserverModule module(bus, *world.env, fast_config(), util::Rng(1));
  bus.write_register(ble_reg::kCtrl, 0x77);
  EXPECT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusError);
}

TEST(BleModule, ResultRecordLayout) {
  World world;
  SimI2cBus bus;
  BleObserverModule module(bus, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{1.0, 0.0, 1.0}; });
  module.step(0.0);
  bus.write_register(ble_reg::kCtrl, ble_reg::kCtrlStartScan);
  module.step(2.0);
  ASSERT_EQ(bus.read_register(ble_reg::kStatus), ble_reg::kStatusReady);
  bus.write_register(ble_reg::kResultIndex, 0);
  const auto record = bus.read_block(ble_reg::kResultData, 29);
  ASSERT_EQ(record.size(), 29u);
  EXPECT_EQ(record[0], 0xc2);  // first MAC octet
  EXPECT_EQ(record[5], 0x55);  // last MAC octet
  const auto rssi = static_cast<std::int8_t>(record[6]);
  EXPECT_LT(rssi, -20);
  EXPECT_GT(rssi, -90);
  EXPECT_TRUE(record[7] == 37 || record[7] == 38 || record[7] == 39);
  EXPECT_EQ(record[8], 10u);  // strlen("fridge-tag")
  EXPECT_EQ(std::string(record.begin() + 9, record.begin() + 19), "fridge-tag");
}

TEST(BleDriver, FourInstructionFlow) {
  World world;
  SimI2cBus bus;
  BleObserverModule module(bus, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{1.0, 0.0, 1.0}; });
  BleScannerDriver driver(bus);

  // (i) initialize.
  driver.request_init(0.0);
  EXPECT_EQ(driver.state(), DriverState::Ready);
  // (iii) measure.
  ASSERT_TRUE(driver.request_scan(0.0));
  EXPECT_EQ(driver.state(), DriverState::Scanning);
  module.step(0.5);
  driver.step(0.5);
  EXPECT_EQ(driver.state(), DriverState::Scanning);
  module.step(2.0);
  driver.step(2.0);
  // (ii) check state.
  ASSERT_EQ(driver.state(), DriverState::ResultsReady);
  // (iv) parse.
  const std::vector<ScanTuple> results = driver.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].ssid, "fridge-tag");
  EXPECT_EQ(results[0].mac.to_string(), "c2:11:22:33:44:55");
  EXPECT_TRUE(results[0].channel >= 37 && results[0].channel <= 39);
  EXPECT_EQ(driver.state(), DriverState::Ready);
}

TEST(BleDriver, InitFailsWithoutModule) {
  SimI2cBus bus;
  BleScannerDriver driver(bus);
  driver.request_init(0.0);
  EXPECT_EQ(driver.state(), DriverState::Error);
  driver.reset();
  EXPECT_EQ(driver.state(), DriverState::Uninitialized);
}

TEST(BleDriver, ScanRequiresReady) {
  SimI2cBus bus;
  BleScannerDriver driver(bus);
  EXPECT_FALSE(driver.request_scan(0.0));
}

}  // namespace
}  // namespace remgen::scanner
