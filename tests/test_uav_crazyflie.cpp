#include <gtest/gtest.h>

#include <sstream>

#include "radio/scenario.hpp"
#include "uav/crazyflie.hpp"
#include "uwb/anchor.hpp"
#include "util/fmt.hpp"

namespace remgen::uav {
namespace {

/// Shared scenario so the (moderately expensive) environment is built once.
const radio::Scenario& scenario() {
  static util::Rng rng(4242);
  static radio::Scenario s = radio::Scenario::make_apartment(rng);
  return s;
}

Crazyflie make_uav(const CrazyflieConfig& config = {}, const geom::Vec3& start = {1.0, 1.0, 0.0}) {
  return Crazyflie(0, scenario().environment(), &scenario().floorplan(),
                   uwb::corner_anchors(scenario().scan_volume()), config, start,
                   util::Rng(99));
}

void run(Crazyflie& uav, double seconds) {
  const int steps = static_cast<int>(seconds / 0.01);
  for (int i = 0; i < steps; ++i) uav.step(0.01);
}

/// Keeps the commander fed while flying (the base client's setpoint stream).
void run_with_setpoints(Crazyflie& uav, const geom::Vec3& target, double seconds) {
  const int steps = static_cast<int>(seconds / 0.01);
  for (int i = 0; i < steps; ++i) {
    if (i % 20 == 0) {
      uav.link().base_send({"cmd", util::format("goto {:.3f} {:.3f} {:.3f}", target.x, target.y,
                                                target.z)},
                           uav.now());
    }
    uav.step(0.01);
  }
}

TEST(Crazyflie, BootsGroundedWithDeckInitializing) {
  Crazyflie uav = make_uav();
  EXPECT_FALSE(uav.flying());
  run(uav, 1.0);
  EXPECT_EQ(uav.deck().state(), DeckState::Ready);
}

TEST(Crazyflie, TakeoffReachesHeight) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.0, 1.0, 1.0}, 4.0);
  EXPECT_TRUE(uav.flying());
  EXPECT_NEAR(uav.true_position().z, 1.0, 0.25);
}

TEST(Crazyflie, GotoReachesWaypoint) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.0, 1.0, 1.0}, 3.0);
  run_with_setpoints(uav, {2.5, 2.0, 1.5}, 5.0);
  EXPECT_LT(uav.true_position().distance_to({2.5, 2.0, 1.5}), 0.3);
}

TEST(Crazyflie, EstimatedPositionTracksTrue) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.5, 1.5, 1.0}, 5.0);
  EXPECT_LT(uav.estimated_position().distance_to(uav.true_position()), 0.3);
}

TEST(Crazyflie, ScanProducesTelemetryThroughRadioOffWindow) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.5, 1.5, 1.0}, 3.0);
  (void)uav.link().base_receive(uav.now());  // drain state telemetry

  // The paper's sequence: scan command, radio off, wait, radio on, fetch.
  uav.link().base_send({"cmd", "scan 7"}, uav.now());
  run(uav, 0.2);
  uav.link().set_radio_enabled(false, uav.now());
  run(uav, 3.0);
  uav.link().set_radio_enabled(true, uav.now());
  run(uav, 0.5);

  EXPECT_EQ(uav.completed_scans(), 1u);
  bool saw_meta = false;
  int results = 0;
  for (const CrtpPacket& p : uav.link().base_receive(uav.now())) {
    if (p.payload.rfind("scanmeta 7", 0) == 0) saw_meta = true;
    if (p.payload.rfind("scanres 7", 0) == 0) ++results;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_GT(results, 5);
  EXPECT_EQ(uav.link().tx_queue_drops(), 0u);
}

TEST(Crazyflie, HoldsPositionDuringRadioOffScan) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.5, 1.5, 1.0}, 3.0);
  const geom::Vec3 before = uav.true_position();

  uav.link().base_send({"cmd", "scan 0"}, uav.now());
  run(uav, 0.2);
  uav.link().set_radio_enabled(false, uav.now());
  run(uav, 3.0);  // no setpoints from the base during this window
  uav.link().set_radio_enabled(true, uav.now());

  // The deck's 100 ms hold task must have kept the UAV in place and flying.
  EXPECT_TRUE(uav.flying());
  EXPECT_LT(uav.true_position().distance_to(before), 0.4);
}

TEST(Crazyflie, WatchdogCutsMotorsWithoutHoldTask) {
  // Without a scan (hence without the hold task), a long radio-off window
  // exceeds the commander WDT and the platform shuts down.
  CrazyflieConfig config;
  config.commander.wdt_timeout_shutdown_s = 2.0;  // stock firmware value
  Crazyflie uav = make_uav(config);
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.5, 1.5, 1.0}, 2.0);
  ASSERT_TRUE(uav.flying());
  uav.link().set_radio_enabled(false, uav.now());
  run(uav, 3.0);
  EXPECT_FALSE(uav.flying());
  EXPECT_EQ(uav.commander().mode(), CommanderMode::EmergencyStop);
}

TEST(Crazyflie, ScanIgnoredWhileAlreadyScanning) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.5, 1.5, 1.0}, 3.0);
  uav.link().base_send({"cmd", "scan 1"}, uav.now());
  run(uav, 0.3);
  uav.link().base_send({"cmd", "scan 2"}, uav.now());  // rejected: deck busy
  run(uav, 4.0);
  EXPECT_EQ(uav.completed_scans(), 1u);
}

TEST(Crazyflie, LandingCutsMotorsNearFloor) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.5, 1.5, 1.0}, 3.0);
  for (int i = 0; i < 600; ++i) {
    if (i % 20 == 0) uav.link().base_send({"cmd", "land"}, uav.now());
    uav.step(0.01);
    if (!uav.flying()) break;
  }
  EXPECT_FALSE(uav.flying());
  EXPECT_LT(uav.true_position().z, 0.25);
}

TEST(Crazyflie, StopCommandIsImmediate) {
  Crazyflie uav = make_uav();
  run(uav, 1.0);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  run_with_setpoints(uav, {1.5, 1.5, 1.0}, 2.0);
  uav.link().base_send({"cmd", "stop"}, uav.now());
  run(uav, 0.1);
  EXPECT_FALSE(uav.flying());
}

TEST(Crazyflie, InterferenceFollowsRadioState) {
  Crazyflie uav = make_uav();
  run(uav, 0.5);
  EXPECT_TRUE(uav.interference().enabled());
  uav.link().set_radio_enabled(false, uav.now());
  run(uav, 0.1);
  EXPECT_FALSE(uav.interference().enabled());
  uav.link().set_radio_enabled(true, uav.now());
  run(uav, 0.1);
  EXPECT_TRUE(uav.interference().enabled());
}

TEST(Crazyflie, BatteryDrainsFasterInFlight) {
  Crazyflie grounded = make_uav();
  run(grounded, 5.0);
  const double grounded_use = grounded.battery().consumed_mah();

  Crazyflie flying = make_uav();
  run(flying, 1.0);
  flying.link().base_send({"cmd", "takeoff 1.0"}, flying.now());
  run_with_setpoints(flying, {1.0, 1.0, 1.0}, 4.0);
  EXPECT_GT(flying.battery().consumed_mah(), 3.0 * grounded_use);
}

TEST(Crazyflie, StateTelemetryOnlyWhenRadioOn) {
  Crazyflie uav = make_uav();
  run(uav, 1.5);
  EXPECT_FALSE(uav.link().base_receive(uav.now()).empty());
  uav.link().set_radio_enabled(false, uav.now());
  run(uav, 2.0);
  uav.link().set_radio_enabled(true, uav.now());
  // No queued state telemetry should flood in from the off-window.
  std::size_t state_packets = 0;
  for (const CrtpPacket& p : uav.link().base_receive(uav.now())) {
    if (p.payload.rfind("state", 0) == 0) ++state_packets;
  }
  EXPECT_LE(state_packets, 1u);
}

}  // namespace
}  // namespace remgen::uav
