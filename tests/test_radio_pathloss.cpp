#include <gtest/gtest.h>

#include "radio/pathloss.hpp"

namespace remgen::radio {
namespace {

TEST(LogDistance, ReferenceLossAt1m) {
  const LogDistanceModel model(2.0, 40.2);
  EXPECT_NEAR(model.loss_db({0, 0, 0}, {1, 0, 0}), 40.2, 1e-12);
}

TEST(LogDistance, SlopeMatchesExponent) {
  const LogDistanceModel model(2.0, 40.0);
  const double at_1 = model.loss_db({0, 0, 0}, {1, 0, 0});
  const double at_10 = model.loss_db({0, 0, 0}, {10, 0, 0});
  EXPECT_NEAR(at_10 - at_1, 20.0, 1e-9);  // 10 n per decade

  const LogDistanceModel steep(3.5, 40.0);
  EXPECT_NEAR(steep.loss_db({0, 0, 0}, {10, 0, 0}) - steep.loss_db({0, 0, 0}, {1, 0, 0}), 35.0,
              1e-9);
}

TEST(LogDistance, NearFieldClamped) {
  const LogDistanceModel model(2.0, 40.0);
  EXPECT_DOUBLE_EQ(model.loss_db({0, 0, 0}, {0, 0, 0}),
                   model.loss_db({0, 0, 0}, {0.1, 0, 0}));
  EXPECT_DOUBLE_EQ(model.loss_db({0, 0, 0}, {0.05, 0, 0}),
                   model.loss_db({0, 0, 0}, {0.1, 0, 0}));
}

// Property: loss is monotonically non-decreasing with distance.
class PathLossMonotonic : public ::testing::TestWithParam<double> {};

TEST_P(PathLossMonotonic, LossGrowsWithDistance) {
  const LogDistanceModel model(GetParam(), 40.0);
  double prev = -1.0;
  for (double d = 0.2; d < 30.0; d *= 1.3) {
    const double loss = model.loss_db({0, 0, 0}, {d, 0, 0});
    EXPECT_GE(loss, prev);
    prev = loss;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, PathLossMonotonic, ::testing::Values(1.6, 2.0, 2.5, 3.0, 4.0));

TEST(MultiWall, EqualsLogDistanceWithoutWalls) {
  geom::Floorplan empty;
  const MultiWallModel mw(empty, 2.0, 40.2);
  const LogDistanceModel ld(2.0, 40.2);
  const geom::Vec3 a{0, 0, 1};
  const geom::Vec3 b{5, 3, 1.5};
  EXPECT_DOUBLE_EQ(mw.loss_db(a, b), ld.loss_db(a, b));
}

TEST(MultiWall, AddsWallLoss) {
  geom::Floorplan fp;
  fp.add_wall(geom::Wall::vertical({2.0, -10.0, 0.0}, {2.0, 10.0, 0.0}, 0.0, 3.0,
                                   geom::WallMaterial::Concrete));
  const MultiWallModel model(fp, 2.0, 40.0);
  const LogDistanceModel base(2.0, 40.0);
  const geom::Vec3 a{0, 0, 1};
  const geom::Vec3 b{4, 0, 1};
  EXPECT_DOUBLE_EQ(model.loss_db(a, b),
                   base.loss_db(a, b) + material_loss_db(geom::WallMaterial::Concrete));
  EXPECT_DOUBLE_EQ(model.wall_loss_db(a, b),
                   material_loss_db(geom::WallMaterial::Concrete));
}

TEST(MultiWall, NoWallLossWhenPathAvoidsWall) {
  geom::Floorplan fp;
  fp.add_wall(geom::Wall::vertical({2.0, -1.0, 0.0}, {2.0, 1.0, 0.0}, 0.0, 3.0,
                                   geom::WallMaterial::Concrete));
  const MultiWallModel model(fp, 2.0, 40.0);
  // Path passes the x=2 plane at y=5, outside the wall's extent.
  EXPECT_DOUBLE_EQ(model.wall_loss_db({0, 5, 1}, {4, 5, 1}), 0.0);
}

TEST(MultiWall, MultipleWallsAccumulate) {
  geom::Floorplan fp;
  for (const double x : {1.0, 2.0, 3.0}) {
    fp.add_wall(geom::Wall::vertical({x, -10.0, 0.0}, {x, 10.0, 0.0}, 0.0, 3.0,
                                     geom::WallMaterial::Drywall));
  }
  const MultiWallModel model(fp, 2.0, 40.0);
  EXPECT_DOUBLE_EQ(model.wall_loss_db({0, 0, 1}, {4, 0, 1}),
                   3.0 * material_loss_db(geom::WallMaterial::Drywall));
}

}  // namespace
}  // namespace remgen::radio
