#include <gtest/gtest.h>

#include "util/args.hpp"

namespace remgen::util {
namespace {

std::optional<Args> parse(std::vector<const char*> argv,
                          const std::set<std::string>& values = {"in", "out", "seed"},
                          const std::set<std::string>& flags = {"verbose"},
                          std::string* error = nullptr) {
  argv.insert(argv.begin(), "remgen");
  return Args::parse(static_cast<int>(argv.size()), argv.data(), values, flags, error);
}

TEST(ArgsTest, CommandOnly) {
  const auto args = parse({"campaign"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->command(), "campaign");
}

TEST(ArgsTest, NoCommand) {
  const auto args = parse({});
  ASSERT_TRUE(args.has_value());
  EXPECT_TRUE(args->command().empty());
}

TEST(ArgsTest, ValuesAndFlags) {
  const auto args = parse({"run", "--in", "a.csv", "--verbose", "--seed", "42"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->value("in"), "a.csv");
  EXPECT_TRUE(args->flag("verbose"));
  EXPECT_FALSE(args->flag("quiet"));
  EXPECT_EQ(args->value_int("seed", 0), 42);
  EXPECT_TRUE(args->has("seed"));
  EXPECT_FALSE(args->has("out"));
}

TEST(ArgsTest, Fallbacks) {
  const auto args = parse({"run"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->value("in", "default.csv"), "default.csv");
  EXPECT_EQ(args->value_int("seed", 7), 7);
  EXPECT_DOUBLE_EQ(args->value_double("seed", 2.5), 2.5);
}

TEST(ArgsTest, UnknownOptionRejected) {
  std::string error;
  EXPECT_FALSE(parse({"run", "--bogus", "1"}, {"in"}, {}, &error).has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(ArgsTest, MissingValueRejected) {
  std::string error;
  EXPECT_FALSE(parse({"run", "--in"}, {"in"}, {}, &error).has_value());
  EXPECT_NE(error.find("needs a value"), std::string::npos);
}

TEST(ArgsTest, PositionalAfterCommandRejected) {
  std::string error;
  EXPECT_FALSE(parse({"run", "stray"}, {}, {}, &error).has_value());
}

TEST(ArgsTest, UnparseableNumberFallsBack) {
  const auto args = parse({"run", "--seed", "notanumber"});
  ASSERT_TRUE(args.has_value());
  EXPECT_EQ(args->value_int("seed", -1), -1);
}

TEST(SplitList, Basic) {
  EXPECT_EQ(split_list("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_list("6x4x3", 'x'), (std::vector<std::string>{"6", "4", "3"}));
}

TEST(SplitList, DropsEmptyPieces) {
  EXPECT_EQ(split_list(",a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_list("").empty());
}

TEST(ParseTriple, AcceptsFiniteTriples) {
  const auto t = parse_triple("1.5,-2,0.25");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ((*t)[0], 1.5);
  EXPECT_DOUBLE_EQ((*t)[1], -2.0);
  EXPECT_DOUBLE_EQ((*t)[2], 0.25);
}

TEST(ParseTriple, AcceptsScientificNotation) {
  const auto t = parse_triple("1e-3,2E2,3.5e0");
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ((*t)[0], 1e-3);
  EXPECT_DOUBLE_EQ((*t)[1], 200.0);
  EXPECT_DOUBLE_EQ((*t)[2], 3.5);
}

TEST(ParseTriple, RejectsWrongArity) {
  EXPECT_FALSE(parse_triple("").has_value());
  EXPECT_FALSE(parse_triple("1,2").has_value());
  EXPECT_FALSE(parse_triple("1,2,3,4").has_value());
}

TEST(ParseTriple, RejectsNonNumeric) {
  EXPECT_FALSE(parse_triple("a,b,c").has_value());
  EXPECT_FALSE(parse_triple("1,2,z").has_value());
  EXPECT_FALSE(parse_triple("1.0x,2,3").has_value());  // partial parse
}

TEST(ParseTriple, RejectsNonFinite) {
  EXPECT_FALSE(parse_triple("nan,0,0").has_value());
  EXPECT_FALSE(parse_triple("0,inf,0").has_value());
  EXPECT_FALSE(parse_triple("0,0,-inf").has_value());
  EXPECT_FALSE(parse_triple("1e9999,0,0").has_value());  // overflows to inf
}

}  // namespace
}  // namespace remgen::util
