// Unit tests for the deterministic execution layer: chunk coverage and
// boundaries, exception propagation, nested regions, ordered parallel_map,
// configuration resolution, and pool telemetry.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/config.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"

namespace remgen::exec {
namespace {

/// Restores the configured width after each test so suites don't leak state.
class ExecPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = thread_count(); }
  void TearDown() override { set_thread_count(previous_); }

 private:
  std::size_t previous_ = 1;
};

TEST_F(ExecPoolTest, RunChunkedCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> counts(100);
  pool.run_chunked(100, 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (const std::atomic<int>& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST_F(ExecPoolTest, RunChunkedHandlesChunkBoundaries) {
  ThreadPool pool(2);
  // n divisible by chunk, n smaller than chunk, chunk of one, single index.
  for (const auto [n, chunk] : std::vector<std::pair<std::size_t, std::size_t>>{
           {12, 4}, {3, 16}, {5, 1}, {1, 1}}) {
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    pool.run_chunked(n, chunk, [&](std::size_t begin, std::size_t end) {
      const std::lock_guard<std::mutex> lock(mutex);
      ranges.emplace_back(begin, end);
    });
    std::size_t covered = 0;
    for (const auto& [begin, end] : ranges) {
      EXPECT_LT(begin, end);
      EXPECT_LE(end - begin, chunk);
      EXPECT_LE(end, n);
      covered += end - begin;
    }
    EXPECT_EQ(covered, n) << "n=" << n << " chunk=" << chunk;
  }
}

TEST_F(ExecPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(2);
  bool called = false;
  pool.run_chunked(0, 4, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);

  set_thread_count(4);
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ExecPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  set_thread_count(4);
  EXPECT_THROW(
      parallel_for(100, [](std::size_t i) {
        if (i == 37) throw std::runtime_error("chunk failure");
      }),
      std::runtime_error);

  // The pool drains cleanly and accepts the next region.
  std::atomic<int> sum{0};
  parallel_for(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST_F(ExecPoolTest, NestedParallelForRunsInlineAndCorrectly) {
  set_thread_count(4);
  std::vector<int> totals(8, 0);
  parallel_for(
      8,
      [&](std::size_t i) {
        EXPECT_TRUE(ThreadPool::in_parallel_region());
        int inner = 0;
        parallel_for(10, [&](std::size_t j) { inner += static_cast<int>(j); });
        totals[i] = inner;
      },
      /*chunk=*/1);
  for (const int t : totals) EXPECT_EQ(t, 45);
}

TEST_F(ExecPoolTest, ParallelMapPreservesIndexOrder) {
  /// No default constructor: parallel_map must not require one.
  struct Value {
    explicit Value(std::size_t v) : v(v) {}
    std::size_t v;
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    set_thread_count(threads);
    const std::vector<Value> out =
        parallel_map(64, [](std::size_t i) { return Value(i * i); }, /*chunk=*/3);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].v, i * i);
  }
}

TEST_F(ExecPoolTest, ThreadCountOverrideAndSharedPoolWidth) {
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  EXPECT_EQ(shared_pool(), nullptr);

  set_thread_count(4);
  EXPECT_EQ(thread_count(), 4u);
  ThreadPool* pool = shared_pool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->worker_count(), 3u);

  set_thread_count(0);  // reset to the environment/hardware default
  EXPECT_GE(thread_count(), 1u);
}

TEST_F(ExecPoolTest, PoolMetricsCountChunks) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out (-DREMGEN_OBS=OFF)";
  obs::set_enabled(true);
  // A fresh width forces a pool rebuild, which publishes the workers gauge.
  set_thread_count(3);
  ASSERT_NE(shared_pool(), nullptr);
  const std::uint64_t tasks_before = obs::registry().counter("exec.tasks").value();
  const std::uint64_t regions_before = obs::registry().counter("exec.regions").value();
  parallel_for(100, [](std::size_t) {}, /*chunk=*/10);
  obs::set_enabled(false);
  EXPECT_EQ(obs::registry().counter("exec.tasks").value() - tasks_before, 10u);
  EXPECT_EQ(obs::registry().counter("exec.regions").value() - regions_before, 1u);
  EXPECT_EQ(obs::registry().gauge("exec.pool.workers").value(), 2.0);
}

}  // namespace
}  // namespace remgen::exec
