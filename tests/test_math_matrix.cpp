#include <gtest/gtest.h>

#include "math/matrix.hpp"
#include "util/rng.hpp"

namespace remgen::math {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_EQ(m(0, 0), -2.0);
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_EQ(i(0, 0), 1.0);
  EXPECT_EQ(i(1, 1), 1.0);
  EXPECT_EQ(i(0, 1), 0.0);
}

TEST(Matrix, ColumnAndDiagonal) {
  const Matrix c = Matrix::column({1.0, 2.0, 3.0});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_EQ(c(2, 0), 3.0);
  const Matrix d = Matrix::diagonal({4.0, 5.0});
  EXPECT_EQ(d(0, 0), 4.0);
  EXPECT_EQ(d(1, 1), 5.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(Matrix, AddSubtract) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), 5.0);
  EXPECT_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_EQ(diff(0, 0), -3.0);
  EXPECT_EQ(diff(1, 1), 3.0);
}

TEST(Matrix, Product) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix p = a * b;
  EXPECT_EQ(p(0, 0), 19.0);
  EXPECT_EQ(p(0, 1), 22.0);
  EXPECT_EQ(p(1, 0), 43.0);
  EXPECT_EQ(p(1, 1), 50.0);
}

TEST(Matrix, ProductNonSquare) {
  const Matrix a{{1.0, 2.0, 3.0}};          // 1x3
  const Matrix b{{1.0}, {2.0}, {3.0}};      // 3x1
  const Matrix p = a * b;                   // 1x1
  EXPECT_EQ(p(0, 0), 14.0);
}

TEST(Matrix, ScalarProduct) {
  const Matrix a{{1.0, -2.0}};
  const Matrix s = a * 2.5;
  EXPECT_EQ(s(0, 0), 2.5);
  EXPECT_EQ(s(0, 1), -5.0);
}

TEST(Matrix, Transpose) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, FrobeniusNormAndMaxAbs) {
  const Matrix a{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  const Matrix b{{-7.0, 2.0}};
  EXPECT_DOUBLE_EQ(b.max_abs(), 7.0);
}

TEST(LuSolve, KnownSystem) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Matrix b = Matrix::column({5.0, 10.0});
  const Matrix x = lu_solve(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix b = Matrix::column({2.0, 3.0});
  const Matrix x = lu_solve(a, b);
  EXPECT_NEAR(x(0, 0), 3.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(LuSolve, SingularThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const Matrix b = Matrix::column({1.0, 2.0});
  EXPECT_THROW((void)lu_solve(a, b), std::runtime_error);
}

TEST(LuSolve, MultipleRightHandSides) {
  const Matrix a{{4.0, 0.0}, {0.0, 2.0}};
  const Matrix b{{4.0, 8.0}, {2.0, 6.0}};
  const Matrix x = lu_solve(a, b);
  EXPECT_NEAR(x(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(x(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(x(1, 1), 3.0, 1e-12);
}

TEST(Inverse, TimesOriginalIsIdentity) {
  const Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = inverse(a);
  const Matrix product = a * inv;
  EXPECT_NEAR((product - Matrix::identity(2)).max_abs(), 0.0, 1e-12);
}

TEST(CholeskySolve, SpdSystem) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Matrix b = Matrix::column({8.0, 7.0});
  const Matrix x = cholesky_solve(a, b);
  const Matrix check = a * x;
  EXPECT_NEAR(check(0, 0), 8.0, 1e-12);
  EXPECT_NEAR(check(1, 0), 7.0, 1e-12);
}

TEST(CholeskySolve, NotPositiveDefiniteThrows) {
  const Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // indefinite
  const Matrix b = Matrix::column({1.0, 1.0});
  EXPECT_THROW((void)cholesky_solve(a, b), std::runtime_error);
}

TEST(LeastSquares, OverdeterminedLine) {
  // Fit y = 2x + 1 from noiseless points.
  Matrix a(4, 2);
  Matrix b(4, 1);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 1.0;
    b(i, 0) = 2.0 * i + 1.0;
  }
  const Matrix x = least_squares(a, b);
  EXPECT_NEAR(x(0, 0), 2.0, 1e-10);
  EXPECT_NEAR(x(1, 0), 1.0, 1e-10);
}

TEST(LeastSquares, DampingShrinksSolution) {
  Matrix a(3, 1);
  Matrix b(3, 1);
  for (int i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    b(i, 0) = 10.0;
  }
  const Matrix undamped = least_squares(a, b, 0.0);
  const Matrix damped = least_squares(a, b, 10.0);
  EXPECT_NEAR(undamped(0, 0), 10.0, 1e-10);
  EXPECT_LT(damped(0, 0), undamped(0, 0));
}

// Property sweep: random SPD systems solve to small residual at many sizes.
class SpdSolveProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpdSolveProperty, ResidualIsTiny) {
  const std::size_t n = GetParam();
  util::Rng rng(1234 + n);
  // A = B^T B + n*I is SPD.
  Matrix base(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) base(r, c) = rng.uniform(-1.0, 1.0);
  }
  Matrix a = base.transposed() * base;
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  Matrix b(n, 1);
  for (std::size_t i = 0; i < n; ++i) b(i, 0) = rng.uniform(-5.0, 5.0);

  const Matrix x_lu = lu_solve(a, b);
  const Matrix x_chol = cholesky_solve(a, b);
  EXPECT_LT((a * x_lu - b).max_abs(), 1e-9);
  EXPECT_LT((a * x_chol - b).max_abs(), 1e-9);
  EXPECT_LT((x_lu - x_chol).max_abs(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpdSolveProperty, ::testing::Values(1, 2, 3, 6, 10, 25, 60));

}  // namespace
}  // namespace remgen::math
