#include <gtest/gtest.h>

#include <sstream>

#include "util/quoted.hpp"

namespace remgen::util {
namespace {

std::string round_trip(const std::string& value) {
  std::istringstream in(quote_field(value));
  std::string out;
  EXPECT_TRUE(read_quoted_field(in, out));
  return out;
}

TEST(Quoted, PlainFieldRoundTrips) { EXPECT_EQ(round_trip("MyWifi"), "MyWifi"); }

TEST(Quoted, SpacedFieldRoundTrips) {
  EXPECT_EQ(round_trip("Living Room 5G"), "Living Room 5G");
}

TEST(Quoted, EmptyFieldRoundTrips) {
  EXPECT_EQ(quote_field(""), "\"\"");
  EXPECT_EQ(round_trip(""), "");
}

TEST(Quoted, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(quote_field("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(round_trip("a\"b\\c"), "a\"b\\c");
}

TEST(Quoted, SkipsLeadingWhitespace) {
  std::istringstream in("   \"two words\" 42");
  std::string out;
  ASSERT_TRUE(read_quoted_field(in, out));
  EXPECT_EQ(out, "two words");
  int rest = 0;
  EXPECT_TRUE(in >> rest);
  EXPECT_EQ(rest, 42);
}

TEST(Quoted, MissingOpeningQuoteFailsStream) {
  std::istringstream in("bare 42");
  std::string out;
  EXPECT_FALSE(read_quoted_field(in, out));
  EXPECT_TRUE(in.fail());
}

TEST(Quoted, UnterminatedFieldFailsStream) {
  std::istringstream in("\"no end");
  std::string out;
  EXPECT_FALSE(read_quoted_field(in, out));
  EXPECT_TRUE(in.fail());
}

TEST(Quoted, EmptyInputFailsStream) {
  std::istringstream in("");
  std::string out;
  EXPECT_FALSE(read_quoted_field(in, out));
  EXPECT_TRUE(in.fail());
}

TEST(Quoted, MixedTupleLikeTelemetryLine) {
  // The shape the base station actually parses:
  //   scanres <wp> "<ssid>" <rssi> <mac> <channel>
  std::istringstream in("3 \"Cafe Guest WiFi\" -71 aa:bb:cc:dd:ee:ff 6");
  int wp = 0;
  std::string ssid;
  int rssi = 0;
  std::string mac;
  int channel = 0;
  ASSERT_TRUE(in >> wp);
  ASSERT_TRUE(read_quoted_field(in, ssid));
  ASSERT_TRUE(in >> rssi >> mac >> channel);
  EXPECT_EQ(wp, 3);
  EXPECT_EQ(ssid, "Cafe Guest WiFi");
  EXPECT_EQ(rssi, -71);
  EXPECT_EQ(mac, "aa:bb:cc:dd:ee:ff");
  EXPECT_EQ(channel, 6);
}

}  // namespace
}  // namespace remgen::util
