#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace remgen::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.bits(), b.bits());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(7);
  Rng b(7);
  Rng child_a = a.fork("component");
  Rng child_b = b.fork("component");
  EXPECT_EQ(child_a.bits(), child_b.bits());
}

TEST(Rng, ForkTagDecorrelates) {
  Rng parent(7);
  Rng c1 = parent.fork("alpha");
  Rng parent2(7);
  Rng c2 = parent2.fork("beta");
  EXPECT_NE(c1.bits(), c2.bits());
}

TEST(Rng, ForkedChildIndependentOfParentContinuation) {
  Rng parent(9);
  Rng child = parent.fork("x");
  const std::uint64_t first = child.bits();
  // Drawing more from the parent must not change what the child produced.
  (void)parent.bits();
  Rng parent_again(9);
  Rng child_again = parent_again.fork("x");
  EXPECT_EQ(child_again.bits(), first);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces of the die appear
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, GaussianZeroSigmaIsMean) {
  Rng rng(1);
  EXPECT_EQ(rng.gaussian(3.25, 0.0), 3.25);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Rng, PoissonMean) {
  Rng rng(17);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.poisson(3.7));
  EXPECT_NEAR(stats.mean(), 3.7, 0.1);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.05);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.index(10), 10u);
  }
  EXPECT_EQ(rng.index(1), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng rng(1);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

// Property sweep: distributions honour their parameter across a range.
class RngUniformRange : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RngUniformRange, StaysInRangeAndCoversIt) {
  const auto [lo, hi] = GetParam();
  Rng rng(101);
  double min_seen = hi;
  double max_seen = lo;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.uniform(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LT(v, hi);
    min_seen = std::min(min_seen, v);
    max_seen = std::max(max_seen, v);
  }
  const double span = hi - lo;
  EXPECT_LT(min_seen, lo + 0.05 * span);
  EXPECT_GT(max_seen, hi - 0.05 * span);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformRange,
                         ::testing::Values(std::pair{0.0, 1.0}, std::pair{-5.0, 5.0},
                                           std::pair{1e-6, 2e-6}, std::pair{-1000.0, -999.0}));

}  // namespace
}  // namespace remgen::util
