// Campaign option coverage: route optimization and adaptive leg timing keep
// the mission correct while changing its cost profile.
#include <gtest/gtest.h>

#include <set>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

namespace remgen::mission {
namespace {

CampaignConfig small_config() {
  CampaignConfig config;
  config.grid = {.nx = 3, .ny = 3, .nz = 2, .margin_m = 0.3};
  return config;
}

std::set<std::tuple<double, double, double>> waypoint_set(
    const std::vector<std::vector<geom::Vec3>>& assignments) {
  std::set<std::tuple<double, double, double>> out;
  for (const auto& slab : assignments) {
    for (const geom::Vec3& w : slab) out.insert({w.x, w.y, w.z});
  }
  return out;
}

TEST(CampaignOptions, OptimizedRouteVisitsSameWaypoints) {
  util::Rng rng1(400);
  util::Rng rng2(400);
  const radio::Scenario s1 = radio::Scenario::make_apartment(rng1);
  const radio::Scenario s2 = radio::Scenario::make_apartment(rng2);

  CampaignConfig plain = small_config();
  CampaignConfig optimized = small_config();
  optimized.optimize_route = true;

  const CampaignResult r_plain = run_campaign(s1, plain, rng1);
  const CampaignResult r_opt = run_campaign(s2, optimized, rng2);

  EXPECT_EQ(waypoint_set(r_plain.assignments), waypoint_set(r_opt.assignments));
  EXPECT_GT(r_opt.dataset.size(), 200u);
}

TEST(CampaignOptions, AssignmentsMatchSampleAnnotationsWhenOptimized) {
  util::Rng rng(401);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config = small_config();
  config.optimize_route = true;
  const CampaignResult result = run_campaign(scenario, config, rng);
  for (const data::Sample& s : result.dataset.samples()) {
    const auto& slab = result.assignments[static_cast<std::size_t>(s.uav_id)];
    ASSERT_LT(static_cast<std::size_t>(s.waypoint_index), slab.size());
    // The recorded assignment order must be the flown order: annotated
    // positions sit near their claimed waypoint.
    EXPECT_LT(s.position.distance_to(slab[static_cast<std::size_t>(s.waypoint_index)]), 0.5);
  }
}

TEST(CampaignOptions, AdaptiveLegsAreFasterSameYield) {
  auto run = [](bool adaptive) {
    util::Rng rng(402);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    CampaignConfig config;
    config.grid = {.nx = 4, .ny = 3, .nz = 2, .margin_m = 0.3};
    config.mission.adaptive_leg_timing = adaptive;
    return run_campaign(scenario, config, rng);
  };
  const CampaignResult fixed = run(false);
  const CampaignResult adaptive = run(true);

  double fixed_time = 0.0;
  double adaptive_time = 0.0;
  std::size_t fixed_scans = 0;
  std::size_t adaptive_scans = 0;
  for (const auto& s : fixed.uav_stats) {
    fixed_time += s.active_time_s;
    fixed_scans += s.scans_completed;
  }
  for (const auto& s : adaptive.uav_stats) {
    adaptive_time += s.active_time_s;
    adaptive_scans += s.scans_completed;
  }
  EXPECT_LT(adaptive_time, 0.9 * fixed_time);
  EXPECT_EQ(adaptive_scans, fixed_scans);
}

TEST(CampaignOptions, ThreeUavsSplitTheGrid) {
  util::Rng rng(403);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  CampaignConfig config = small_config();
  config.uav_count = 3;
  const CampaignResult result = run_campaign(scenario, config, rng);
  ASSERT_EQ(result.uav_stats.size(), 3u);
  std::size_t total = 0;
  for (const auto& s : result.uav_stats) total += s.waypoints_commanded;
  EXPECT_EQ(total, 18u);
}

}  // namespace
}  // namespace remgen::mission
