// Edge cases across the estimator suite: degenerate datasets that a long
// campaign pipeline can produce and must survive.
#include <gtest/gtest.h>

#include "ml/baseline.hpp"
#include "ml/idw.hpp"
#include "ml/knn.hpp"
#include "ml/kriging.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/neural_net.hpp"
#include "util/rng.hpp"

namespace remgen::ml {
namespace {

data::Sample make_sample(double x, double y, double z, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

constexpr const char* kMac = "02:00:00:00:00:0a";

TEST(EdgeCases, SingleTrainingSample) {
  const std::vector<data::Sample> train{make_sample(1, 1, 1, kMac, -66.0)};
  for (const ModelKind kind : all_model_kinds(true)) {
    const auto model = make_model(kind);
    model->fit(train);
    const double pred = model->predict(make_sample(2, 2, 1, kMac, 0));
    EXPECT_TRUE(std::isfinite(pred)) << model_kind_name(kind);
    // With one observation every estimator must essentially return it.
    EXPECT_NEAR(pred, -66.0, 1.0) << model_kind_name(kind);
  }
}

TEST(EdgeCases, AllSamplesCoLocated) {
  // Zero spatial spread: distance weighting and kriging must not divide by
  // zero; predictions equal the (mean of the) co-located values.
  std::vector<data::Sample> train;
  for (int i = 0; i < 20; ++i) {
    train.push_back(make_sample(1.0, 1.0, 1.0, kMac, -70.0 + (i % 2 == 0 ? 1.0 : -1.0)));
  }
  for (const ModelKind kind : all_model_kinds(true)) {
    const auto model = make_model(kind);
    model->fit(train);
    EXPECT_NEAR(model->predict(make_sample(1.0, 1.0, 1.0, kMac, 0)), -70.0, 1.1)
        << model_kind_name(kind);
    EXPECT_TRUE(std::isfinite(model->predict(make_sample(3.0, 2.0, 1.5, kMac, 0))))
        << model_kind_name(kind);
  }
}

TEST(EdgeCases, ConstantTargets) {
  util::Rng rng(3);
  std::vector<data::Sample> train;
  for (int i = 0; i < 40; ++i) {
    train.push_back(make_sample(rng.uniform(0, 4), rng.uniform(0, 3), 1.0, kMac, -72.0));
  }
  for (const ModelKind kind : all_model_kinds(true)) {
    const auto model = make_model(kind);
    model->fit(train);
    EXPECT_NEAR(model->predict(make_sample(2, 1.5, 1, kMac, 0)), -72.0, 0.8)
        << model_kind_name(kind);
  }
}

TEST(EdgeCases, ManyMacsFewSamplesEach) {
  util::Rng rng(5);
  std::vector<data::Sample> train;
  for (int m = 0; m < 30; ++m) {
    const radio::MacAddress mac = radio::MacAddress::random(rng);
    data::Sample s;
    s.mac = mac;
    s.channel = 6;
    for (int i = 0; i < 2; ++i) {
      s.position = {rng.uniform(0, 4), rng.uniform(0, 3), 1.0};
      s.rss_dbm = rng.uniform(-90, -50);
      train.push_back(s);
    }
  }
  for (const ModelKind kind : all_model_kinds(true)) {
    const auto model = make_model(kind);
    model->fit(train);
    EXPECT_TRUE(std::isfinite(model->predict(train.front()))) << model_kind_name(kind);
  }
}

TEST(EdgeCases, EvaluateOnSingleTestSample) {
  const std::vector<data::Sample> train{make_sample(0, 0, 0, kMac, -60),
                                        make_sample(1, 0, 0, kMac, -70)};
  MeanPerMacBaseline baseline;
  baseline.fit(train);
  const std::vector<data::Sample> test{make_sample(0.5, 0, 0, kMac, -65)};
  const RegressionMetrics m = evaluate(baseline, test);
  EXPECT_NEAR(m.rmse, 0.0, 1e-9);  // baseline predicts the mean = -65
  EXPECT_EQ(m.r2, 0.0);            // zero variance in a single-sample test set
}

TEST(EdgeCases, KrigingHandlesCollinearSamples) {
  // All samples along one line: the variogram and kriging system must stay
  // solvable (jitter regularisation).
  std::vector<data::Sample> train;
  for (int i = 0; i < 25; ++i) {
    train.push_back(make_sample(0.15 * i, 1.0, 1.0, kMac, -60.0 - i));
  }
  KrigingRegressor kriging;
  kriging.fit(train);
  const auto p = kriging.predict_with_sigma(make_sample(1.0, 2.0, 1.0, kMac, 0));
  EXPECT_TRUE(std::isfinite(p.value));
  EXPECT_TRUE(std::isfinite(p.sigma));
}

TEST(EdgeCases, NeuralNetSurvivesTinyBatch) {
  NeuralNetConfig config;
  config.batch_size = 64;  // larger than the dataset
  config.epochs = 30;
  NeuralNetRegressor net(config);
  const std::vector<data::Sample> train{make_sample(0, 0, 0, kMac, -60),
                                        make_sample(1, 1, 1, kMac, -80),
                                        make_sample(2, 2, 2, kMac, -70)};
  net.fit(train);
  EXPECT_TRUE(std::isfinite(net.predict(train[0])));
}

}  // namespace
}  // namespace remgen::ml
