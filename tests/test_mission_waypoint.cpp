#include <gtest/gtest.h>

#include <set>

#include "mission/waypoint.hpp"

namespace remgen::mission {
namespace {

geom::Aabb volume() { return geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}); }

TEST(Waypoints, PaperGridHas72Points) {
  const auto waypoints = generate_waypoint_grid(volume(), WaypointGridConfig{});
  EXPECT_EQ(waypoints.size(), 72u);
}

TEST(Waypoints, AllInsideVolumeWithMargin) {
  WaypointGridConfig config;
  config.margin_m = 0.25;
  const auto waypoints = generate_waypoint_grid(volume(), config);
  for (const geom::Vec3& w : waypoints) {
    EXPECT_GE(w.x, 0.25 - 1e-9);
    EXPECT_LE(w.x, 3.74 - 0.25 + 1e-9);
    EXPECT_GE(w.y, 0.25 - 1e-9);
    EXPECT_LE(w.y, 3.20 - 0.25 + 1e-9);
    EXPECT_GE(w.z, 0.25 - 1e-9);
    EXPECT_LE(w.z, 2.10 - 0.25 + 1e-9);
  }
}

TEST(Waypoints, EvenlySpreadAndDistinct) {
  const auto waypoints = generate_waypoint_grid(volume(), WaypointGridConfig{});
  std::set<std::tuple<double, double, double>> unique;
  for (const geom::Vec3& w : waypoints) unique.insert({w.x, w.y, w.z});
  EXPECT_EQ(unique.size(), waypoints.size());
}

TEST(Waypoints, SerpentineOrderKeepsLegsShort) {
  // Consecutive waypoints within a layer are grid-adjacent: no flight leg
  // longer than the layer diagonal pitch.
  WaypointGridConfig config;
  const auto waypoints = generate_waypoint_grid(volume(), config);
  const double pitch_x = (3.74 - 0.5) / (config.nx - 1);
  const double pitch_y = (3.20 - 0.5) / (config.ny - 1);
  const double max_leg = std::hypot(pitch_x, pitch_y) + 1e-9;
  std::size_t per_layer = config.nx * config.ny;
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    if (i % per_layer == 0) continue;  // layer changes may jump
    EXPECT_LE(waypoints[i - 1].distance_to(waypoints[i]), max_leg)
        << "leg " << i << ": " << waypoints[i - 1].to_string() << " -> "
        << waypoints[i].to_string();
  }
}

TEST(Waypoints, SingleCellGridIsCentred) {
  WaypointGridConfig config;
  config.nx = config.ny = config.nz = 1;
  const auto waypoints = generate_waypoint_grid(volume(), config);
  ASSERT_EQ(waypoints.size(), 1u);
  EXPECT_LT(waypoints[0].distance_to(volume().center()), 1e-9);
}

TEST(SplitWaypoints, TwoGroupsOfEqualSize) {
  const auto waypoints = generate_waypoint_grid(volume(), WaypointGridConfig{});
  const auto groups = split_waypoints_by_axis(waypoints, 0, 2);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 36u);
  EXPECT_EQ(groups[1].size(), 36u);
}

TEST(SplitWaypoints, GroupsAreSpatialSlabs) {
  const auto waypoints = generate_waypoint_grid(volume(), WaypointGridConfig{});
  const auto groups = split_waypoints_by_axis(waypoints, 0, 2);
  double max_low = -1e9;
  double min_high = 1e9;
  for (const geom::Vec3& w : groups[0]) max_low = std::max(max_low, w.x);
  for (const geom::Vec3& w : groups[1]) min_high = std::min(min_high, w.x);
  EXPECT_LE(max_low, min_high);
}

TEST(SplitWaypoints, EveryWaypointAssignedExactlyOnce) {
  const auto waypoints = generate_waypoint_grid(volume(), WaypointGridConfig{});
  const auto groups = split_waypoints_by_axis(waypoints, 0, 3);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, waypoints.size());
}

TEST(SplitWaypoints, SplitAlongYAndZ) {
  const auto waypoints = generate_waypoint_grid(volume(), WaypointGridConfig{});
  for (const int axis : {1, 2}) {
    const auto groups = split_waypoints_by_axis(waypoints, axis, 2);
    EXPECT_EQ(groups[0].size() + groups[1].size(), waypoints.size());
  }
}

TEST(SplitWaypoints, MoreGroupsThanPointsLeavesEmpties) {
  const std::vector<geom::Vec3> two{{0, 0, 0}, {1, 0, 0}};
  const auto groups = split_waypoints_by_axis(two, 0, 5);
  ASSERT_EQ(groups.size(), 5u);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 2u);
}

TEST(SplitWaypoints, OriginalOrderKeptWithinGroup) {
  const auto waypoints = generate_waypoint_grid(volume(), WaypointGridConfig{});
  const auto groups = split_waypoints_by_axis(waypoints, 0, 2);
  // Within each group, the original (serpentine) flight order is preserved:
  // every group element appears in the same relative order as in the input.
  for (const auto& group : groups) {
    std::size_t cursor = 0;
    for (const geom::Vec3& w : group) {
      while (cursor < waypoints.size() && !(waypoints[cursor] == w)) ++cursor;
      ASSERT_LT(cursor, waypoints.size());
      ++cursor;
    }
  }
}

}  // namespace
}  // namespace remgen::mission
