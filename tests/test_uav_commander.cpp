#include <gtest/gtest.h>

#include <cmath>

#include "uav/commander.hpp"

namespace remgen::uav {
namespace {

CommanderConfig paper_config() {
  return CommanderConfig{.level_out_timeout_s = 0.5, .wdt_timeout_shutdown_s = 10.0};
}

TEST(CommanderTest, StartsIdle) {
  Commander commander(paper_config());
  EXPECT_EQ(commander.mode(), CommanderMode::Idle);
  EXPECT_FALSE(commander.setpoint().has_value());
  EXPECT_TRUE(std::isinf(commander.setpoint_age(123.0)));
}

TEST(CommanderTest, SetpointActivates) {
  Commander commander(paper_config());
  commander.set_setpoint({1, 2, 3}, 0.5, 10.0);
  commander.step(10.1);
  EXPECT_EQ(commander.mode(), CommanderMode::Active);
  EXPECT_EQ(*commander.setpoint(), geom::Vec3(1, 2, 3));
  EXPECT_DOUBLE_EQ(commander.yaw(), 0.5);
  EXPECT_NEAR(commander.setpoint_age(10.1), 0.1, 1e-12);
}

TEST(CommanderTest, LevelOutAfter500ms) {
  Commander commander(paper_config());
  commander.set_setpoint({1, 1, 1}, 0.0, 0.0);
  commander.step(0.49);
  EXPECT_EQ(commander.mode(), CommanderMode::Active);
  commander.step(0.51);
  EXPECT_EQ(commander.mode(), CommanderMode::LevelOut);
}

TEST(CommanderTest, FreshSetpointRestoresActive) {
  Commander commander(paper_config());
  commander.set_setpoint({1, 1, 1}, 0.0, 0.0);
  commander.step(1.0);
  ASSERT_EQ(commander.mode(), CommanderMode::LevelOut);
  commander.set_setpoint({1, 1, 1}, 0.0, 1.0);
  commander.step(1.01);
  EXPECT_EQ(commander.mode(), CommanderMode::Active);
}

TEST(CommanderTest, WatchdogShutdown) {
  Commander commander(paper_config());
  commander.set_setpoint({1, 1, 1}, 0.0, 0.0);
  commander.step(9.9);
  EXPECT_NE(commander.mode(), CommanderMode::EmergencyStop);
  commander.step(10.1);
  EXPECT_EQ(commander.mode(), CommanderMode::EmergencyStop);
}

TEST(CommanderTest, EmergencyStopIsTerminal) {
  Commander commander(paper_config());
  commander.set_setpoint({1, 1, 1}, 0.0, 0.0);
  commander.step(11.0);
  ASSERT_EQ(commander.mode(), CommanderMode::EmergencyStop);
  // Late setpoints are ignored after the watchdog fired.
  commander.set_setpoint({2, 2, 2}, 0.0, 11.5);
  commander.step(11.6);
  EXPECT_EQ(commander.mode(), CommanderMode::EmergencyStop);
  EXPECT_EQ(*commander.setpoint(), geom::Vec3(1, 1, 1));
}

TEST(CommanderTest, RebootClearsEverything) {
  Commander commander(paper_config());
  commander.set_setpoint({1, 1, 1}, 0.0, 0.0);
  commander.step(11.0);
  commander.reboot();
  EXPECT_EQ(commander.mode(), CommanderMode::Idle);
  EXPECT_FALSE(commander.setpoint().has_value());
}

TEST(CommanderTest, DefaultFirmwareWdtIsTwoSeconds) {
  // The stock firmware default would shut down during a 3 s radio-off scan
  // window — exactly why the paper raises it to 10 s.
  Commander commander{CommanderConfig{}};
  commander.set_setpoint({1, 1, 1}, 0.0, 0.0);
  commander.step(2.1);
  EXPECT_EQ(commander.mode(), CommanderMode::EmergencyStop);
}

TEST(CommanderTest, HoldTaskFeedKeepsAlive) {
  // Simulates the deck's 100 ms position-hold feedback across a 3 s window.
  Commander commander(paper_config());
  double now = 0.0;
  commander.set_setpoint({1, 1, 1}, 0.0, now);
  for (int i = 0; i < 30; ++i) {
    now += 0.1;
    commander.set_setpoint({1, 1, 1}, 0.0, now);
    commander.step(now);
    ASSERT_EQ(commander.mode(), CommanderMode::Active);
  }
}

TEST(CommanderTest, ModeNames) {
  EXPECT_STREQ(commander_mode_name(CommanderMode::Idle), "idle");
  EXPECT_STREQ(commander_mode_name(CommanderMode::EmergencyStop), "emergency-stop");
}

}  // namespace
}  // namespace remgen::uav
