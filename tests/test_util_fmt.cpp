#include <gtest/gtest.h>

#include "util/fmt.hpp"

namespace remgen::util {
namespace {

TEST(Format, PlainText) { EXPECT_EQ(format("hello"), "hello"); }

TEST(Format, SingleArgument) { EXPECT_EQ(format("x = {}", 42), "x = 42"); }

TEST(Format, MultipleArguments) {
  EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(Format, StringArguments) {
  EXPECT_EQ(format("{} {}", std::string("a"), "b"), "a b");
  EXPECT_EQ(format("{}", std::string_view("sv")), "sv");
}

TEST(Format, Bool) { EXPECT_EQ(format("{} {}", true, false), "true false"); }

TEST(Format, NegativeIntegers) { EXPECT_EQ(format("{}", -17), "-17"); }

TEST(Format, UnsignedAndSizeT) {
  EXPECT_EQ(format("{}", std::size_t{18446744073709551615ull}), "18446744073709551615");
}

TEST(Format, FloatDefaultPrecision) { EXPECT_EQ(format("{}", 1.5), "1.500000"); }

TEST(Format, FloatExplicitPrecision) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.71), "3");
}

TEST(Format, ScientificAndGeneral) {
  EXPECT_EQ(format("{:.2e}", 12345.0), "1.23e+04");
  EXPECT_EQ(format("{:.3g}", 12345.0), "1.23e+04");
}

TEST(Format, HexLowerUpper) {
  EXPECT_EQ(format("{:x}", 255), "ff");
  EXPECT_EQ(format("{:X}", 255), "FF");
}

TEST(Format, ZeroPaddedHex) { EXPECT_EQ(format("{:02x}", 5), "05"); }

TEST(Format, ZeroPaddedInt) { EXPECT_EQ(format("{:03d}", 7), "007"); }

TEST(Format, ZeroPadRespectsSign) { EXPECT_EQ(format("{:05d}", -42), "-0042"); }

TEST(Format, WidthPadsWithSpacesForStrings) { EXPECT_EQ(format("{:5}", "ab"), "   ab"); }

TEST(Format, BraceEscapes) {
  EXPECT_EQ(format("{{}}"), "{}");
  EXPECT_EQ(format("{{{}}}", 1), "{1}");
}

TEST(Format, TooFewArgumentsThrows) {
  EXPECT_THROW((void)format("{} {}", 1), std::runtime_error);
}

TEST(Format, UnmatchedBraceThrows) {
  EXPECT_THROW((void)format("{oops", 1), std::runtime_error);
}

TEST(Format, ExtraArgumentsAreIgnored) {
  EXPECT_EQ(format("{}", 1, 2, 3), "1");
}

TEST(Format, PrecisionOnFloatWithWidth) {
  EXPECT_EQ(format("{:8.2f}", 3.14159), "    3.14");
}

}  // namespace
}  // namespace remgen::util
