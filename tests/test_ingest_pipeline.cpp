// Streaming ingestion: the pipeline's epochs must be byte-identical to the
// one-shot batch build no matter how the stream was split or how many exec
// threads run, deltas must replay exactly, tail sources must survive torn
// lines and bad rows, and the KD index must stay readable mid-rebuild.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/rem_builder.hpp"
#include "data/live_dataset.hpp"
#include "exec/config.hpp"
#include "geom/aabb.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/source.hpp"
#include "ml/kdtree_dynamic.hpp"
#include "ml/model_zoo.hpp"
#include "store/delta.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace remgen::ingest {
namespace {

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";
constexpr const char* kMacC = "02:00:00:00:00:0c";

/// `per_mac` samples for each of three MACs, interleaved in arrival order,
/// with timestamps advancing 0.25 s per sample.
std::vector<data::Sample> synthetic_stream(std::size_t per_mac, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<data::Sample> samples;
  double t = 0.0;
  for (std::size_t i = 0; i < per_mac; ++i) {
    for (const char* mac : {kMacA, kMacB, kMacC}) {
      data::Sample s;
      s.position = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)};
      s.ssid = "lab";
      s.mac = *radio::MacAddress::parse(mac);
      s.channel = 6;
      s.rss_dbm = -50.0 - 5.0 * s.position.x + rng.gaussian(0.0, 1.0);
      s.timestamp_s = t;
      t += 0.25;
      s.uav_id = 1;
      s.waypoint_index = static_cast<int>(i);
      samples.push_back(s);
    }
  }
  return samples;
}

IngestConfig test_config() {
  IngestConfig config;
  config.volume = geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0});
  config.rem.voxel_m = 0.5;
  config.rem.min_samples_per_mac = 1;
  config.cache_bytes = 1 << 20;
  return config;
}

/// The one-shot batch recipe (remgen campaign --snapshot-out): the reference
/// bytes every streamed epoch is held against.
std::string batch_bytes(const std::vector<data::Sample>& samples, const IngestConfig& config) {
  const data::Dataset raw{samples};
  store::Snapshot snapshot;
  snapshot.dataset = raw.filter_min_samples_per_mac(config.rem.min_samples_per_mac);
  auto model = ml::make_model(config.model);
  snapshot.rem.emplace(core::build_rem(raw, *model, config.volume, config.rem));
  snapshot.model = std::move(model);
  std::ostringstream out;
  store::save_snapshot(out, snapshot);
  return std::move(out).str();
}

void push_chunked(IngestPipeline& pipeline, const std::vector<data::Sample>& samples,
                  std::size_t chunk) {
  for (std::size_t off = 0; off < samples.size(); off += chunk) {
    const std::size_t n = std::min(chunk, samples.size() - off);
    pipeline.push_batch(std::span<const data::Sample>(samples.data() + off, n));
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

class IngestPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = exec::thread_count();
    exec::set_thread_count(2);
  }
  void TearDown() override { exec::set_thread_count(previous_threads_); }
  std::size_t previous_threads_ = 1;
};

TEST_F(IngestPipelineTest, StreamEqualsBatchAcrossSplitsAndThreadCounts) {
  const std::vector<data::Sample> samples = synthetic_stream(24, 7);
  const std::string expected = batch_bytes(samples, test_config());
  ASSERT_FALSE(expected.empty());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    exec::set_thread_count(threads);
    for (const std::size_t chunk : {samples.size(), std::size_t{7}, std::size_t{1}}) {
      IngestPipeline pipeline(test_config());
      push_chunked(pipeline, samples, chunk);
      const std::optional<EpochInfo> info = pipeline.flush();
      ASSERT_TRUE(info.has_value());
      EXPECT_EQ(info->epoch, 1u);
      EXPECT_EQ(info->rows, samples.size());
      EXPECT_EQ(pipeline.latest_snapshot_bytes(), expected)
          << "threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST_F(IngestPipelineTest, EpochArtifactsAreSplitInvariant) {
  const std::vector<data::Sample> samples = synthetic_stream(24, 11);  // 72 samples.
  IngestConfig config = test_config();
  config.epoch_samples = 30;  // Epochs cut at samples 30, 60, then the flush.

  const auto run = [&](const std::string& dir, std::size_t chunk) {
    IngestConfig local = config;
    local.out_dir = dir;
    IngestPipeline pipeline(local);
    push_chunked(pipeline, samples, chunk);
    (void)pipeline.flush();
    return pipeline.epoch();
  };
  const std::string dir_a = ::testing::TempDir() + "ingest_split_a";
  const std::string dir_b = ::testing::TempDir() + "ingest_split_b";
  ASSERT_EQ(run(dir_a, samples.size()), 3u);
  ASSERT_EQ(run(dir_b, 1), 3u);

  // Every persisted artefact — the full first epoch and both deltas — is
  // byte-identical whether the stream arrived as one batch or one-by-one.
  EXPECT_EQ(read_file(dir_a + "/epoch-1.snap"), read_file(dir_b + "/epoch-1.snap"));
  for (const int epoch : {2, 3}) {
    const std::string name = "/delta-" + std::to_string(epoch) + ".delta";
    EXPECT_EQ(read_file(dir_a + name), read_file(dir_b + name)) << name;
  }
}

TEST_F(IngestPipelineTest, SimTimeTriggerIsSplitInvariant) {
  const std::vector<data::Sample> samples = synthetic_stream(24, 13);
  IngestConfig config = test_config();
  config.epoch_sim_seconds = 5.0;  // Stream clock: sample timestamps, not wall time.

  IngestPipeline batched(config);
  batched.push_batch(samples);
  IngestPipeline single(config);
  for (const data::Sample& s : samples) single.push(s);

  EXPECT_GE(batched.epoch(), 2u);
  EXPECT_EQ(batched.epoch(), single.epoch());
  EXPECT_EQ(batched.latest_snapshot_bytes(), single.latest_snapshot_bytes());
}

TEST_F(IngestPipelineTest, GateSkipsEpochsUntilAMacQualifies) {
  const std::vector<data::Sample> samples = synthetic_stream(24, 17);
  IngestConfig config = test_config();
  config.rem.min_samples_per_mac = 16;
  IngestPipeline pipeline(config);

  // 15 samples = 5 per MAC: everyone is below the paper's 16-sample gate.
  push_chunked(pipeline, {samples.begin(), samples.begin() + 15}, 15);
  EXPECT_FALSE(pipeline.flush().has_value());
  EXPECT_EQ(pipeline.epoch(), 0u);
  EXPECT_FALSE(pipeline.flush().has_value());  // Nothing new since the skip.

  push_chunked(pipeline, {samples.begin() + 15, samples.end()}, 57);
  const std::optional<EpochInfo> info = pipeline.flush();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->epoch, 1u);
  EXPECT_EQ(info->rows, samples.size());  // All 24-sample MACs qualified.
  EXPECT_EQ(info->dropped_rows, 0u);
  EXPECT_EQ(pipeline.latest_snapshot_bytes(), batch_bytes(samples, config));
}

TEST_F(IngestPipelineTest, BelowGateMacsAreDroppedFromTheSnapshotOnly) {
  // 20 x A and 10 x B: B stays below the gate, so the snapshot carries A's
  // rows only — but the raw live dataset (and the REM fit input) keeps all.
  util::Rng rng(23);
  std::vector<data::Sample> samples;
  for (std::size_t i = 0; i < 30; ++i) {
    data::Sample s;
    s.position = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)};
    s.mac = *radio::MacAddress::parse(i % 3 == 2 ? kMacB : kMacA);
    s.channel = 6;
    s.rss_dbm = -60.0 + rng.gaussian(0.0, 2.0);
    s.timestamp_s = 0.5 * static_cast<double>(i);
    samples.push_back(s);
  }
  IngestConfig config = test_config();
  config.rem.min_samples_per_mac = 16;
  IngestPipeline pipeline(config);
  pipeline.push_batch(samples);
  const std::optional<EpochInfo> info = pipeline.flush();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->rows, 20u);
  EXPECT_EQ(info->dropped_rows, 10u);
  EXPECT_EQ(info->total_samples, 30u);
  EXPECT_EQ(pipeline.latest_snapshot_bytes(), batch_bytes(samples, config));
}

/// First `head` samples into epoch 1, the rest into epoch 2; returns both
/// full snapshots and the second epoch's delta, all serialised.
struct TwoEpochs {
  std::string snap1;
  std::string snap2;
  std::string delta2;
};

TwoEpochs make_two_epochs(const std::vector<data::Sample>& samples, std::size_t head,
                          const IngestConfig& config) {
  IngestPipeline pipeline(config);
  pipeline.push_batch(std::span<const data::Sample>(samples.data(), head));
  const std::optional<EpochInfo> first = pipeline.flush();
  EXPECT_TRUE(first.has_value() && !first->delta);
  TwoEpochs out;
  out.snap1 = pipeline.latest_snapshot_bytes();
  pipeline.push_batch(
      std::span<const data::Sample>(samples.data() + head, samples.size() - head));
  const std::optional<EpochInfo> second = pipeline.flush();
  EXPECT_TRUE(second.has_value() && second->delta);
  out.snap2 = pipeline.latest_snapshot_bytes();
  out.delta2 = pipeline.latest_delta_bytes();
  return out;
}

TEST_F(IngestPipelineTest, IngestDeltaReplayReconstructsNextEpochByteIdentically) {
  const std::vector<data::Sample> samples = synthetic_stream(24, 3);
  IngestConfig config = test_config();
  config.rem.min_samples_per_mac = 16;
  const TwoEpochs epochs = make_two_epochs(samples, 48, config);
  EXPECT_LT(epochs.delta2.size(), epochs.snap2.size());  // Base rows are not resent.

  std::istringstream snap_in(epochs.snap1);
  const store::Snapshot base = store::load_snapshot(snap_in);
  std::istringstream delta_in(epochs.delta2);
  const store::SnapshotDelta delta = store::load_delta(delta_in);
  EXPECT_EQ(delta.base_epoch, 1u);
  EXPECT_EQ(delta.epoch, 2u);
  EXPECT_EQ(delta.base_rows, 48u);
  EXPECT_EQ(delta.final_rows, samples.size());

  const store::Snapshot applied = store::apply_delta(base, delta);
  std::ostringstream out;
  store::save_snapshot(out, applied);
  EXPECT_EQ(std::move(out).str(), epochs.snap2);
}

TEST_F(IngestPipelineTest, IngestDeltaHandlesLateQualifyingMacMidStreamInserts) {
  // MAC C is interleaved but below the gate in epoch 1 (10 < 16); epoch 2
  // pushes it over, so its *early* rows become mid-stream insertions the
  // delta's position encoding must replay exactly.
  util::Rng rng(31);
  std::vector<data::Sample> samples;
  double t = 0.0;
  const auto add = [&](const char* mac) {
    data::Sample s;
    s.position = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)};
    s.mac = *radio::MacAddress::parse(mac);
    s.channel = 11;
    s.rss_dbm = -55.0 + rng.gaussian(0.0, 2.0);
    s.timestamp_s = (t += 0.25);
    samples.push_back(s);
  };
  for (std::size_t i = 0; i < 10; ++i) {
    add(kMacA);
    add(kMacC);
    add(kMacA);
  }  // Epoch 1: A=20 (qualified), C=10 (dropped).
  for (std::size_t i = 0; i < 8; ++i) {
    add(kMacC);
    add(kMacA);
  }  // Epoch 2: A=28, C=18 — both qualified.

  IngestConfig config = test_config();
  config.rem.min_samples_per_mac = 16;
  const TwoEpochs epochs = make_two_epochs(samples, 30, config);

  std::istringstream snap_in(epochs.snap1);
  const store::Snapshot base = store::load_snapshot(snap_in);
  EXPECT_EQ(base.dataset.size(), 20u);
  std::istringstream delta_in(epochs.delta2);
  const store::SnapshotDelta delta = store::load_delta(delta_in);
  // 10 early C rows resurface + 16 new rows = 26 insertions into 46 finals.
  EXPECT_EQ(delta.final_rows, 46u);
  EXPECT_EQ(delta.added_rows.size(), 26u);

  const store::Snapshot applied = store::apply_delta(base, delta);
  std::ostringstream out;
  store::save_snapshot(out, applied);
  EXPECT_EQ(std::move(out).str(), epochs.snap2);
}

TEST_F(IngestPipelineTest, IngestDeltaSaveLoadRoundTripIsStable) {
  const std::vector<data::Sample> samples = synthetic_stream(20, 5);
  const TwoEpochs epochs = make_two_epochs(samples, 30, test_config());

  std::istringstream in(epochs.delta2);
  const store::SnapshotDelta delta = store::load_delta(in);
  std::ostringstream out;
  store::save_delta(out, delta);
  EXPECT_EQ(std::move(out).str(), epochs.delta2);

  const std::string path = ::testing::TempDir() + "ingest_roundtrip.delta";
  store::save_delta_file(path, delta);
  EXPECT_EQ(read_file(path), epochs.delta2);
  const store::SnapshotDelta reloaded = store::load_delta_file(path);
  EXPECT_EQ(reloaded.epoch, delta.epoch);
  EXPECT_EQ(reloaded.added_rows.size(), delta.added_rows.size());
}

TEST_F(IngestPipelineTest, IngestDeltaRejectsCorruptionAndWrongBase) {
  const std::vector<data::Sample> samples = synthetic_stream(20, 9);
  const TwoEpochs epochs = make_two_epochs(samples, 30, test_config());

  const auto load = [](std::string bytes) {
    std::istringstream in(std::move(bytes));
    return store::load_delta(in);
  };
  std::string bad_magic = epochs.delta2;
  bad_magic[0] = 'X';
  EXPECT_THROW((void)load(bad_magic), std::runtime_error);

  EXPECT_THROW((void)load(epochs.delta2.substr(0, epochs.delta2.size() - 5)),
               std::runtime_error);

  // Flip a byte inside the Meta payload (16 B header + 16 B section header):
  // the section CRC must catch it.
  std::string flipped = epochs.delta2;
  flipped[40] = static_cast<char>(flipped[40] ^ 0x5a);
  EXPECT_THROW((void)load(flipped), std::runtime_error);

  // Replaying on the wrong base snapshot trips the recorded dataset CRC.
  const store::SnapshotDelta delta = load(epochs.delta2);
  std::istringstream snap2_in(epochs.snap2);
  const store::Snapshot wrong_base = store::load_snapshot(snap2_in);
  EXPECT_THROW((void)store::apply_delta(wrong_base, delta), std::runtime_error);
}

TEST(IngestLiveDataset, PreparedMatchesBatchFilterAndStatsStayIncremental) {
  const std::vector<data::Sample> samples = synthetic_stream(20, 19);
  data::LiveDataset live;
  for (const data::Sample& s : samples) live.push(s);
  ASSERT_EQ(live.size(), samples.size());

  const data::Dataset batch = data::Dataset{samples}.filter_min_samples_per_mac(16);
  std::size_t dropped = 0;
  const data::Dataset prepared = live.prepared(16, &dropped);
  ASSERT_EQ(prepared.size(), batch.size());
  EXPECT_EQ(dropped, samples.size() - batch.size());
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    EXPECT_EQ(prepared.samples()[i].mac, batch.samples()[i].mac);
    EXPECT_EQ(prepared.samples()[i].rss_dbm, batch.samples()[i].rss_dbm);
  }

  EXPECT_EQ(live.qualified_macs(16), 3u);
  EXPECT_EQ(live.qualified_macs(21), 0u);
  const auto& stats = live.mac_stats();
  ASSERT_EQ(stats.size(), 3u);
  for (const auto& [mac, per_mac] : stats) {
    EXPECT_EQ(per_mac.count, 20u);
    EXPECT_GT(per_mac.mean_rss_dbm, -80.0);
    EXPECT_LT(per_mac.mean_rss_dbm, -30.0);
  }
}

TEST(IngestTailSource, TailsCsvAcrossAppendsSkippingHeaderAndBadRows) {
  const std::string path = ::testing::TempDir() + "ingest_tail.csv";
  std::remove(path.c_str());
  FileTailSource source(path, stream_format_for_path(path));
  EXPECT_EQ(source.format(), StreamFormat::Csv);

  data::LiveDataset sink;
  EXPECT_EQ(source.poll(sink), 0u);  // File not created yet: not an error.

  {
    std::ofstream out(path, std::ios::binary);
    out << "x,y,z,ssid,rss_dbm,mac,channel,timestamp_s,uav_id,waypoint_index\n";
    out << "1.5,1.0,0.5,lab,-52.5,02:00:00:00:00:0a,6,1.0,1,0\n";
    out << "not,a,row\n";
    out << "2.5,nan,0.5,lab,-60.0,02:00:00:00:00:0a,6,2.0,1,1\n";
    out << "0.5,2.0,1.5,lab,-48.0,02:00:00:00:00:0b,11,3.0,1,2\n";
    out << "3.0,1.0";  // Torn line: the tail must wait for the rest.
  }
  EXPECT_EQ(source.poll(sink), 2u);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(source.stats().accepted, 2u);
  EXPECT_EQ(source.stats().rejected, 2u);
  EXPECT_EQ(source.stats().lines, 5u);  // Header + 4 complete rows.
  EXPECT_DOUBLE_EQ(sink.samples()[0].position.x, 1.5);
  EXPECT_EQ(sink.samples()[1].mac.to_string(), kMacB);

  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << ",0.75,lab,-44.0,02:00:00:00:00:0b,11,4.0,2,3\n";  // Completes the torn line.
  }
  EXPECT_EQ(source.poll(sink), 1u);
  EXPECT_EQ(sink.size(), 3u);
  EXPECT_DOUBLE_EQ(sink.samples()[2].position.x, 3.0);
  EXPECT_DOUBLE_EQ(sink.samples()[2].rss_dbm, -44.0);
  EXPECT_EQ(source.stats().accepted, 3u);
  EXPECT_EQ(source.poll(sink), 0u);  // Nothing new.
}

TEST(IngestTailSource, TailsJsonlAndCountsRejectedRows) {
  const std::string path = ::testing::TempDir() + "ingest_tail.jsonl";
  std::remove(path.c_str());
  EXPECT_EQ(stream_format_for_path(path), StreamFormat::Jsonl);
  EXPECT_EQ(stream_format_for_path("stream.ndjson"), StreamFormat::Jsonl);
  EXPECT_EQ(stream_format_for_path("stream.csv"), StreamFormat::Csv);
  EXPECT_EQ(stream_format_for_path("stream"), StreamFormat::Csv);

  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"x\":1.5,\"y\":1.0,\"z\":0.5,\"ssid\":\"lab\",\"rss_dbm\":-52.5,"
           "\"mac\":\"02:00:00:00:00:0a\",\"channel\":6,\"timestamp_s\":1.0,"
           "\"uav_id\":1,\"waypoint_index\":0}\n";
    out << "{\"x\":1.0,\"rssi\":-40}\n";  // Unknown field: rejected, counted.
    out << "{\"x\":2.5,\"y\":1.5,\"z\":0.5,\"ssid\":\"lab\",\"rss_dbm\":-58.0,"
           "\"mac\":\"02:00:00:00:00:0b\",\"channel\":11,\"timestamp_s\":2.0,"
           "\"uav_id\":1,\"waypoint_index\":1}\n";
  }
  FileTailSource source(path, stream_format_for_path(path));
  data::LiveDataset sink;
  EXPECT_EQ(source.poll(sink), 2u);
  EXPECT_EQ(source.stats().rejected, 1u);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.samples()[1].mac.to_string(), kMacB);
}

TEST(IngestDynamicKdTreeConcurrency, ReadersNeverBlockOrTearDuringRebuilds) {
  // One writer inserting through many automatic rebuilds, three readers
  // querying throughout with no synchronisation: the atomic-swap publication
  // contract. TSan runs this test in CI; the assertions below catch torn
  // states (unsorted merges, impossible indices) at runtime.
  ml::DynamicKdTree tree(32);
  std::atomic<bool> done{false};
  std::atomic<std::size_t> queries{0};
  constexpr std::size_t kPoints = 4000;

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&tree, &done, &queries, kPoints, r] {
      util::Rng rng(100 + static_cast<std::uint64_t>(r));
      while (!done.load(std::memory_order_acquire)) {
        const geom::Vec3 q{rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0),
                           rng.uniform(0.0, 2.0)};
        const std::vector<ml::KdHit> hits = tree.nearest(q, 8);
        EXPECT_LE(hits.size(), 8u);
        for (std::size_t i = 0; i < hits.size(); ++i) {
          EXPECT_LT(hits[i].index, kPoints);
          if (i > 0) EXPECT_LE(hits[i - 1].distance, hits[i].distance);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  util::Rng rng(7);
  for (std::size_t i = 0; i < kPoints; ++i) {
    tree.insert({rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)});
  }
  tree.rebuild();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(tree.size(), kPoints);
  EXPECT_EQ(tree.pending(), 0u);
  EXPECT_GE(tree.rebuilds(), kPoints / 32);
  EXPECT_GT(queries.load(), 0u);
}

TEST(IngestPipelineIndex, IndexCoversEveryIngestedSample) {
  const std::vector<data::Sample> samples = synthetic_stream(10, 29);
  IngestConfig config = test_config();
  config.kdtree_rebuild_interval = 8;
  IngestPipeline pipeline(config);
  pipeline.push_batch(samples);
  EXPECT_EQ(pipeline.index().size(), samples.size());
  EXPECT_GE(pipeline.index().rebuilds(), samples.size() / 8);

  // The nearest ingested point to a sample's own position is itself.
  const std::vector<ml::KdHit> hits = pipeline.index().nearest(samples[4].position, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 4u);
  EXPECT_DOUBLE_EQ(hits[0].distance, 0.0);
}

}  // namespace
}  // namespace remgen::ingest
