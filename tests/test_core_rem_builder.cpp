#include <gtest/gtest.h>

#include <cmath>

#include "core/rem_builder.hpp"
#include "ml/kriging.hpp"
#include "util/rng.hpp"

namespace remgen::core {
namespace {

data::Sample make_sample(double x, double y, double z, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";

data::Dataset synthetic_dataset(std::size_t per_mac = 40) {
  util::Rng rng(21);
  data::Dataset ds;
  for (std::size_t i = 0; i < per_mac; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    ds.add(make_sample(x, y, z, kMacA, -55.0 - 4.0 * x + rng.gaussian(0, 1.0)));
    ds.add(make_sample(x, y, z, kMacB, -75.0 - 2.0 * y + rng.gaussian(0, 1.0)));
  }
  return ds;
}

geom::Aabb volume() { return geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}); }

TEST(RemBuilder, GridDimensionsFollowResolution) {
  const data::Dataset ds = synthetic_dataset();
  RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  const RadioEnvironmentMap rem = build_rem(ds, ml::ModelKind::PerMacKnn, volume(), config);
  EXPECT_EQ(rem.geometry().nx(), 8u);
  EXPECT_EQ(rem.geometry().ny(), 6u);
  EXPECT_EQ(rem.geometry().nz(), 4u);
}

TEST(RemBuilder, MapsEveryRetainedMac) {
  const data::Dataset ds = synthetic_dataset();
  RemBuilderConfig config;
  config.min_samples_per_mac = 1;
  const RadioEnvironmentMap rem = build_rem(ds, ml::ModelKind::PerMacKnn, volume(), config);
  EXPECT_EQ(rem.macs().size(), 2u);
}

TEST(RemBuilder, MinSamplesRuleDropsSparseMacs) {
  data::Dataset ds = synthetic_dataset(40);
  ds.add(make_sample(1, 1, 1, "02:00:00:00:00:0c", -90.0));  // a single stray sample
  RemBuilderConfig config;
  config.min_samples_per_mac = 16;
  const RadioEnvironmentMap rem = build_rem(ds, ml::ModelKind::PerMacKnn, volume(), config);
  EXPECT_EQ(rem.macs().size(), 2u);
}

TEST(RemBuilder, PredictionsReflectSpatialStructure) {
  const data::Dataset ds = synthetic_dataset(120);
  RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  const RadioEnvironmentMap rem = build_rem(ds, ml::ModelKind::KnnScaled16, volume(), config);
  // MAC A decays along x: low-x voxels must be stronger.
  const auto left = rem.query(*radio::MacAddress::parse(kMacA), {0.3, 1.5, 1.0});
  const auto right = rem.query(*radio::MacAddress::parse(kMacA), {3.7, 1.5, 1.0});
  ASSERT_TRUE(left && right);
  EXPECT_GT(left->rss_dbm, right->rss_dbm + 5.0);
}

TEST(RemBuilder, AllCellsFinite) {
  const data::Dataset ds = synthetic_dataset();
  RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  for (const auto kind : {ml::ModelKind::BaselineMeanPerMac, ml::ModelKind::KnnK3Distance,
                          ml::ModelKind::Idw}) {
    const RadioEnvironmentMap rem = build_rem(ds, kind, volume(), config);
    const auto& g = rem.geometry();
    for (const radio::MacAddress& mac : rem.macs()) {
      for (std::size_t iz = 0; iz < g.nz(); ++iz) {
        for (std::size_t iy = 0; iy < g.ny(); ++iy) {
          for (std::size_t ix = 0; ix < g.nx(); ++ix) {
            EXPECT_TRUE(std::isfinite(rem.cell(mac, {ix, iy, iz}).rss_dbm));
          }
        }
      }
    }
  }
}

TEST(RemBuilder, KrigingPopulatesUncertainty) {
  const data::Dataset ds = synthetic_dataset(60);
  ml::KrigingRegressor kriging;
  RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  const RadioEnvironmentMap rem = build_rem(ds, kriging, volume(), config);
  double sigma_sum = 0.0;
  const auto& g = rem.geometry();
  for (std::size_t ix = 0; ix < g.nx(); ++ix) {
    sigma_sum += rem.cell(*radio::MacAddress::parse(kMacA), {ix, 0, 0}).sigma_db;
  }
  EXPECT_GT(sigma_sum, 0.0);
}

TEST(RemBuilder, NonKrigingHasZeroSigma) {
  const data::Dataset ds = synthetic_dataset();
  RemBuilderConfig config;
  config.voxel_m = 1.0;
  config.min_samples_per_mac = 1;
  const RadioEnvironmentMap rem =
      build_rem(ds, ml::ModelKind::BaselineMeanPerMac, volume(), config);
  EXPECT_DOUBLE_EQ(rem.cell(*radio::MacAddress::parse(kMacA), {0, 0, 0}).sigma_db, 0.0);
}

}  // namespace
}  // namespace remgen::core
