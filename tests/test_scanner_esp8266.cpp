#include <gtest/gtest.h>

#include "radio/environment.hpp"
#include "scanner/esp8266.hpp"

namespace remgen::scanner {
namespace {

/// Environment with one strong AP on channel 6.
struct World {
  geom::Floorplan floorplan;
  std::vector<radio::AccessPoint> aps;
  radio::EnvironmentConfig env_config;
  util::Rng rng{21};
  std::unique_ptr<radio::RadioEnvironment> env;

  World() {
    radio::AccessPoint ap;
    ap.mac = *radio::MacAddress::parse("02:00:00:00:00:42");
    ap.ssid = "strong-net";
    ap.channel = 6;
    ap.tx_power_dbm = 18.0;
    ap.position = {0.0, 0.0, 1.0};
    // Short beacon interval so a single dwell deterministically captures a
    // beacon (the default 102.4 ms leaves a ~21% per-scan miss probability).
    ap.beacon_interval_s = 0.01;
    aps.push_back(ap);
    env_config.shadowing_sigma_db = 0.0;
    env_config.fading_sigma_db = 0.1;
    env_config.clutter_db_per_m = 0.0;
    env = std::make_unique<radio::RadioEnvironment>(
        floorplan, aps, geom::Aabb({-1, -1, 0}, {10, 10, 3}), env_config, rng);
  }
};

Esp8266Config fast_config() {
  Esp8266Config config;
  config.scan_duration_s = 2.1;
  config.boot_time_s = 0.0;
  return config;
}

TEST(Esp8266, RespondsOkToAt) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  uart.host_write("AT\r\n");
  module.step(0.1);
  EXPECT_EQ(uart.host_read(), "\r\nOK\r\n");
}

TEST(Esp8266, SilentBeforeBoot) {
  World world;
  SimUart uart;
  Esp8266Config config = fast_config();
  config.boot_time_s = 0.5;
  Esp8266Module module(uart, *world.env, config, util::Rng(1));
  uart.host_write("AT\r\n");
  module.step(0.1);
  EXPECT_EQ(uart.host_read(), "");
  module.step(0.6);
  EXPECT_EQ(uart.host_read(), "\r\nOK\r\n");
}

TEST(Esp8266, CwModeSetsStation) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  uart.host_write("AT+CWMODE_CUR=1\r\n");
  module.step(0.1);
  EXPECT_EQ(uart.host_read(), "\r\nOK\r\n");
}

TEST(Esp8266, CwModeRejectsBadArgument) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  uart.host_write("AT+CWMODE_CUR=9\r\n");
  module.step(0.1);
  EXPECT_EQ(uart.host_read(), "\r\nERROR\r\n");
}

TEST(Esp8266, CwlapRequiresStationMode) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  uart.host_write("AT+CWLAP\r\n");
  module.step(0.1);
  EXPECT_EQ(uart.host_read(), "\r\nERROR\r\n");
}

TEST(Esp8266, UnknownCommandErrors) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  uart.host_write("AT+BOGUS\r\n");
  module.step(0.1);
  EXPECT_EQ(uart.host_read(), "\r\nERROR\r\n");
}

TEST(Esp8266, ScanTakesConfiguredDuration) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{1.0, 0.0, 1.0}; });

  uart.host_write("AT+CWMODE_CUR=1\r\n");
  module.step(0.1);
  (void)uart.host_read();

  uart.host_write("AT+CWLAP\r\n");
  module.step(0.2);
  EXPECT_TRUE(module.scanning());
  EXPECT_EQ(uart.host_read(), "");  // nothing until the sweep completes

  module.step(1.0);
  EXPECT_TRUE(module.scanning());
  EXPECT_EQ(uart.host_read(), "");

  module.step(2.4);  // past 0.2 + 2.1
  EXPECT_FALSE(module.scanning());
  const std::string reply = uart.host_read();
  EXPECT_NE(reply.find("+CWLAP:("), std::string::npos);
  EXPECT_NE(reply.find("OK"), std::string::npos);
}

TEST(Esp8266, ScanOutputContainsConfiguredFields) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{1.0, 0.0, 1.0}; });

  uart.host_write("AT+CWMODE_CUR=1\r\n");
  module.step(0.1);
  uart.host_write("AT+CWLAPOPT=1,30\r\n");
  module.step(0.2);
  (void)uart.host_read();

  uart.host_write("AT+CWLAP\r\n");
  module.step(0.3);
  module.step(3.0);
  const std::string reply = uart.host_read();
  // Tuple (ssid, rssi, mac, channel).
  EXPECT_NE(reply.find("\"strong-net\""), std::string::npos);
  EXPECT_NE(reply.find("\"02:00:00:00:00:42\""), std::string::npos);
  EXPECT_NE(reply.find(",6)"), std::string::npos);
}

TEST(Esp8266, MaskRestrictsFields) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{1.0, 0.0, 1.0}; });

  uart.host_write("AT+CWMODE_CUR=1\r\n");
  module.step(0.1);
  uart.host_write("AT+CWLAPOPT=0,4\r\n");  // rssi only
  module.step(0.2);
  (void)uart.host_read();
  uart.host_write("AT+CWLAP\r\n");
  module.step(0.3);
  module.step(3.0);
  const std::string reply = uart.host_read();
  EXPECT_EQ(reply.find("strong-net"), std::string::npos);
  EXPECT_NE(reply.find("+CWLAP:("), std::string::npos);
}

TEST(Esp8266, BusyWhileScanning) {
  World world;
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{1.0, 0.0, 1.0}; });
  uart.host_write("AT+CWMODE_CUR=1\r\n");
  module.step(0.1);
  (void)uart.host_read();
  uart.host_write("AT+CWLAP\r\n");
  module.step(0.2);
  uart.host_write("AT\r\n");
  module.step(0.3);
  EXPECT_EQ(uart.host_read(), "\r\nbusy p...\r\n");
}

TEST(Esp8266, InterferenceSuppressesMarginalAp) {
  World world;
  // Make the AP marginal by querying from far away.
  SimUart uart;
  Esp8266Module module(uart, *world.env, fast_config(), util::Rng(1));
  module.set_position_provider([] { return geom::Vec3{9.0, 9.0, 1.0}; });
  radio::CrazyradioConfig int_config;
  int_config.duty_cycle = 1.0;
  int_config.inband_loss = 1.0;
  int_config.desense_loss = 1.0;  // guaranteed beacon loss
  radio::CrazyradioInterference interference(int_config);
  module.set_interference(&interference);

  uart.host_write("AT+CWMODE_CUR=1\r\n");
  module.step(0.1);
  (void)uart.host_read();
  uart.host_write("AT+CWLAP\r\n");
  module.step(0.2);
  module.step(3.0);
  const std::string reply = uart.host_read();
  // With certain beacon loss nothing can be detected.
  EXPECT_EQ(reply.find("+CWLAP:("), std::string::npos);
  EXPECT_NE(reply.find("OK"), std::string::npos);
}

}  // namespace
}  // namespace remgen::scanner
