#include <gtest/gtest.h>

#include "geom/wall.hpp"

namespace remgen::geom {
namespace {

Wall unit_wall(WallMaterial material = WallMaterial::Drywall, double extra = 0.0) {
  // Vertical wall in the x=1 plane spanning y in [0,2], z in [0,2].
  return Wall({1.0, 0.0, 0.0}, {0.0, 2.0, 0.0}, {0.0, 0.0, 2.0}, material, extra);
}

TEST(WallTest, MaterialLossesArePositiveAndOrdered) {
  EXPECT_GT(material_loss_db(WallMaterial::Glass), 0.0);
  EXPECT_LT(material_loss_db(WallMaterial::Drywall), material_loss_db(WallMaterial::Brick));
  EXPECT_LT(material_loss_db(WallMaterial::Brick), material_loss_db(WallMaterial::Concrete));
  EXPECT_LT(material_loss_db(WallMaterial::Concrete),
            material_loss_db(WallMaterial::ReinforcedConcrete));
}

TEST(WallTest, MaterialNames) {
  EXPECT_STREQ(material_name(WallMaterial::Concrete), "concrete");
  EXPECT_STREQ(material_name(WallMaterial::Wood), "wood");
}

TEST(WallTest, LossIncludesExtra) {
  const Wall w = unit_wall(WallMaterial::Brick, 6.0);
  EXPECT_DOUBLE_EQ(w.loss_db(), material_loss_db(WallMaterial::Brick) + 6.0);
}

TEST(WallTest, PerpendicularCrossing) {
  const Wall w = unit_wall();
  const auto t = w.intersect_segment({0.0, 1.0, 1.0}, {2.0, 1.0, 1.0});
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-12);
}

TEST(WallTest, ObliqueCrossing) {
  const Wall w = unit_wall();
  EXPECT_TRUE(w.intersect_segment({0.0, 0.2, 0.2}, {2.0, 1.8, 1.8}).has_value());
}

TEST(WallTest, ParallelSegmentDoesNotCross) {
  const Wall w = unit_wall();
  EXPECT_FALSE(w.intersect_segment({0.5, 0.0, 0.0}, {0.5, 2.0, 2.0}).has_value());
}

TEST(WallTest, SegmentOnSameSideDoesNotCross) {
  const Wall w = unit_wall();
  EXPECT_FALSE(w.intersect_segment({0.0, 1.0, 1.0}, {0.9, 1.0, 1.0}).has_value());
}

TEST(WallTest, CrossingOutsideRectangleBounds) {
  const Wall w = unit_wall();
  // Crosses the x=1 plane but at y=3 (outside [0,2]).
  EXPECT_FALSE(w.intersect_segment({0.0, 3.0, 1.0}, {2.0, 3.0, 1.0}).has_value());
  // Crosses the plane at z=3 (outside [0,2]).
  EXPECT_FALSE(w.intersect_segment({0.0, 1.0, 3.0}, {2.0, 1.0, 3.0}).has_value());
}

TEST(WallTest, EndpointTouchingPlaneDoesNotCount) {
  const Wall w = unit_wall();
  // A transmitter mounted exactly on the wall is not attenuated by it.
  EXPECT_FALSE(w.intersect_segment({1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}).has_value());
  EXPECT_FALSE(w.intersect_segment({0.0, 1.0, 1.0}, {1.0, 1.0, 1.0}).has_value());
}

TEST(WallTest, VerticalFactory) {
  const Wall w =
      Wall::vertical({0.0, 0.0, 0.0}, {4.0, 0.0, 0.0}, 0.0, 2.5, WallMaterial::Brick);
  // Crosses when going from -y to +y through the wall's span.
  EXPECT_TRUE(w.intersect_segment({2.0, -1.0, 1.0}, {2.0, 1.0, 1.0}).has_value());
  // Beyond the x extent: no crossing.
  EXPECT_FALSE(w.intersect_segment({5.0, -1.0, 1.0}, {5.0, 1.0, 1.0}).has_value());
  // Above the z extent: no crossing.
  EXPECT_FALSE(w.intersect_segment({2.0, -1.0, 3.0}, {2.0, 1.0, 3.0}).has_value());
}

TEST(WallTest, SlabFactory) {
  const Wall slab = Wall::slab(0.0, 0.0, 10.0, 10.0, 2.6, WallMaterial::ReinforcedConcrete);
  EXPECT_TRUE(slab.intersect_segment({5.0, 5.0, 1.0}, {5.0, 5.0, 4.0}).has_value());
  EXPECT_FALSE(slab.intersect_segment({5.0, 5.0, 3.0}, {5.0, 5.0, 4.0}).has_value());
  EXPECT_FALSE(slab.intersect_segment({11.0, 5.0, 1.0}, {11.0, 5.0, 4.0}).has_value());
}

TEST(WallTest, DiagonalHorizontalWall) {
  // A wall not aligned with either axis.
  const Wall w = Wall::vertical({0.0, 0.0, 0.0}, {2.0, 2.0, 0.0}, 0.0, 2.0,
                                WallMaterial::Drywall);
  EXPECT_TRUE(w.intersect_segment({0.0, 1.5, 1.0}, {1.5, 0.0, 1.0}).has_value());
  EXPECT_FALSE(w.intersect_segment({2.5, 3.0, 1.0}, {3.0, 2.5, 1.0}).has_value());
}

}  // namespace
}  // namespace remgen::geom
