#include <gtest/gtest.h>

#include "radio/shadowing.hpp"
#include "util/stats.hpp"

namespace remgen::radio {
namespace {

geom::Aabb bounds() { return geom::Aabb({0, 0, 0}, {10, 10, 3}); }

TEST(Shadowing, FrozenFieldIsDeterministic) {
  util::Rng rng(5);
  const ShadowingField field(bounds(), 3.0, 1.5, rng);
  const geom::Vec3 p{4.3, 2.7, 1.1};
  EXPECT_DOUBLE_EQ(field.at(p), field.at(p));
}

TEST(Shadowing, SameSeedSameField) {
  util::Rng rng1(5);
  util::Rng rng2(5);
  const ShadowingField f1(bounds(), 3.0, 1.5, rng1);
  const ShadowingField f2(bounds(), 3.0, 1.5, rng2);
  for (double x = 0.5; x < 10.0; x += 2.3) {
    EXPECT_DOUBLE_EQ(f1.at({x, x * 0.7, 1.0}), f2.at({x, x * 0.7, 1.0}));
  }
}

TEST(Shadowing, DifferentSeedsDifferentFields) {
  util::Rng rng1(5);
  util::Rng rng2(6);
  const ShadowingField f1(bounds(), 3.0, 1.5, rng1);
  const ShadowingField f2(bounds(), 3.0, 1.5, rng2);
  EXPECT_NE(f1.at({5, 5, 1}), f2.at({5, 5, 1}));
}

TEST(Shadowing, ZeroSigmaIsZeroEverywhere) {
  util::Rng rng(5);
  const ShadowingField field(bounds(), 0.0, 1.5, rng);
  EXPECT_DOUBLE_EQ(field.at({1, 2, 1}), 0.0);
  EXPECT_DOUBLE_EQ(field.at({9, 9, 2}), 0.0);
}

TEST(Shadowing, MarginalStatisticsRoughlyMatchSigma) {
  util::Rng rng(17);
  const double sigma = 3.0;
  // Average over many independent fields to estimate the marginal std-dev at
  // a fixed point (trilinear interpolation shrinks it by a known factor < 1).
  util::OnlineStats stats;
  for (int i = 0; i < 800; ++i) {
    util::Rng field_rng(1000 + i);
    const ShadowingField field(bounds(), sigma, 1.5, field_rng);
    stats.add(field.at({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0), 1.0}));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.35);
  EXPECT_GT(stats.stddev(), 0.45 * sigma);
  EXPECT_LT(stats.stddev(), 1.1 * sigma);
}

TEST(Shadowing, NearbyPointsAreCorrelated) {
  // Correlation: |f(p) - f(p + eps)| should be much smaller than sigma for
  // eps << decorrelation distance.
  util::OnlineStats near_diff;
  util::OnlineStats far_diff;
  for (int i = 0; i < 200; ++i) {
    util::Rng rng(2000 + i);
    const ShadowingField field(bounds(), 3.0, 2.0, rng);
    near_diff.add(std::abs(field.at({5.0, 5.0, 1.0}) - field.at({5.1, 5.0, 1.0})));
    far_diff.add(std::abs(field.at({5.0, 5.0, 1.0}) - field.at({9.5, 1.0, 1.0})));
  }
  EXPECT_LT(near_diff.mean(), 0.5 * far_diff.mean());
}

TEST(Shadowing, ClampsOutsideBounds) {
  util::Rng rng(3);
  const ShadowingField field(bounds(), 3.0, 1.5, rng);
  EXPECT_DOUBLE_EQ(field.at({-5.0, 5.0, 1.0}), field.at({0.0, 5.0, 1.0}));
  EXPECT_DOUBLE_EQ(field.at({5.0, 50.0, 1.0}), field.at({5.0, 10.0, 1.0}));
}

TEST(Shadowing, AccessorsReportConfig) {
  util::Rng rng(3);
  const ShadowingField field(bounds(), 2.5, 1.7, rng);
  EXPECT_DOUBLE_EQ(field.sigma_db(), 2.5);
  EXPECT_DOUBLE_EQ(field.decorrelation_m(), 1.7);
}

}  // namespace
}  // namespace remgen::radio
