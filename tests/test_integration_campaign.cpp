// Integration tests: the full UAV campaign against the simulated apartment,
// exercising every substrate together (radio, UWB, flight, scanner, CRTP,
// mission control).
#include <gtest/gtest.h>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

namespace remgen::mission {
namespace {

/// Small-but-real campaign config (2 UAVs, 12 waypoints) to keep tests quick.
CampaignConfig small_config() {
  CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  return config;
}

TEST(CampaignIntegration, ProducesSamplesFromBothUavs) {
  util::Rng rng(100);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const CampaignResult result = run_campaign(scenario, small_config(), rng);

  ASSERT_EQ(result.uav_stats.size(), 2u);
  for (const UavMissionStats& s : result.uav_stats) {
    EXPECT_EQ(s.waypoints_commanded, 6u);
    EXPECT_GE(s.scans_completed, 6u);
    EXPECT_GT(s.samples_collected, 50u);
    EXPECT_FALSE(s.aborted_on_battery);
    EXPECT_EQ(s.tx_queue_drops, 0u);
  }
  const auto per_uav = result.dataset.samples_per_uav();
  EXPECT_TRUE(per_uav.count(0));
  EXPECT_TRUE(per_uav.count(1));
}

TEST(CampaignIntegration, SampleFieldsAreValid) {
  util::Rng rng(101);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const CampaignResult result = run_campaign(scenario, small_config(), rng);
  ASSERT_FALSE(result.dataset.empty());
  const geom::Aabb roomish(scenario.scan_volume().min - geom::Vec3{0.5, 0.5, 0.5},
                           scenario.scan_volume().max + geom::Vec3{0.5, 0.5, 0.5});
  for (const data::Sample& s : result.dataset.samples()) {
    EXPECT_TRUE(roomish.contains(s.position)) << s.position.to_string();
    EXPECT_GE(s.channel, 1);
    EXPECT_LE(s.channel, 13);
    EXPECT_LT(s.rss_dbm, -5.0);  // the own router can be centimetres away
    EXPECT_GT(s.rss_dbm, -100.0);
    EXPECT_GE(s.waypoint_index, 0);
    EXPECT_LT(s.waypoint_index, 6);
    EXPECT_FALSE(s.ssid.empty());
    EXPECT_GE(s.timestamp_s, 0.0);
  }
}

TEST(CampaignIntegration, DeterministicGivenSeed) {
  auto run_once = [] {
    util::Rng rng(202);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    CampaignConfig config;
    config.grid = {.nx = 2, .ny = 2, .nz = 1, .margin_m = 0.4};
    return run_campaign(scenario, config, rng);
  };
  const CampaignResult r1 = run_once();
  const CampaignResult r2 = run_once();
  ASSERT_EQ(r1.dataset.size(), r2.dataset.size());
  for (std::size_t i = 0; i < r1.dataset.size(); ++i) {
    EXPECT_EQ(r1.dataset.samples()[i].mac, r2.dataset.samples()[i].mac);
    EXPECT_DOUBLE_EQ(r1.dataset.samples()[i].rss_dbm, r2.dataset.samples()[i].rss_dbm);
    EXPECT_EQ(r1.dataset.samples()[i].position, r2.dataset.samples()[i].position);
  }
}

TEST(CampaignIntegration, AssignmentsAreSpatialSlabs) {
  util::Rng rng(103);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const CampaignResult result = run_campaign(scenario, small_config(), rng);
  ASSERT_EQ(result.assignments.size(), 2u);
  // UAV 0 (drone A) takes the high-x slab.
  double min_a = 1e9;
  double max_b = -1e9;
  for (const geom::Vec3& w : result.assignments[0]) min_a = std::min(min_a, w.x);
  for (const geom::Vec3& w : result.assignments[1]) max_b = std::max(max_b, w.x);
  EXPECT_GE(min_a, max_b);
}

TEST(CampaignIntegration, LocationAnnotationNearWaypoint) {
  // The sample's annotated position must be close to the commanded waypoint
  // (decimetre-level UWB accuracy + hold drift).
  util::Rng rng(104);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const CampaignResult result = run_campaign(scenario, small_config(), rng);
  for (const data::Sample& s : result.dataset.samples()) {
    const auto& assignment =
        result.assignments[static_cast<std::size_t>(s.uav_id)];
    ASSERT_LT(static_cast<std::size_t>(s.waypoint_index), assignment.size());
    const geom::Vec3& wp = assignment[static_cast<std::size_t>(s.waypoint_index)];
    EXPECT_LT(s.position.distance_to(wp), 0.5)
        << "sample at " << s.position.to_string() << " for waypoint " << wp.to_string();
  }
}

TEST(CampaignIntegration, SamplesPerWaypointReasonablyUniform) {
  util::Rng rng(105);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const CampaignResult result = run_campaign(scenario, small_config(), rng);
  const auto per_wp = result.dataset.samples_per_waypoint();
  for (const auto& [wp, count] : per_wp) {
    EXPECT_GT(count, 10u) << "waypoint " << wp;
    EXPECT_LT(count, 150u) << "waypoint " << wp;
  }
}

TEST(CampaignIntegration, RadioOffCollectsMoreThanRadioOn) {
  auto run_mode = [](bool radio_off) {
    util::Rng rng(106);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    CampaignConfig config;
    config.grid = {.nx = 2, .ny = 2, .nz = 1, .margin_m = 0.4};
    config.mission.radio_off_during_scan = radio_off;
    return run_campaign(scenario, config, rng).dataset.size();
  };
  EXPECT_GT(run_mode(true), run_mode(false) + 20);
}

TEST(CampaignIntegration, TinyTxQueueLosesSamples) {
  auto run_queue = [](std::size_t queue) {
    util::Rng rng(107);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    CampaignConfig config;
    config.grid = {.nx = 2, .ny = 2, .nz = 1, .margin_m = 0.4};
    config.uav.crtp.tx_queue_size = queue;
    return run_campaign(scenario, config, rng);
  };
  const CampaignResult big = run_queue(128);
  const CampaignResult tiny = run_queue(8);
  EXPECT_GT(big.dataset.size(), tiny.dataset.size());
  std::size_t drops = 0;
  for (const auto& s : tiny.uav_stats) drops += s.tx_queue_drops;
  EXPECT_GT(drops, 0u);
}

TEST(CampaignIntegration, SpacedAndHiddenSsidsSurviveTelemetryRoundTrip) {
  // Regression for the scanres framing bug: an SSID with spaces used to be
  // emitted unquoted into the space-delimited telemetry line, shearing every
  // field behind it (and a hidden network's empty SSID shifted the tuple).
  // Plant both shapes inside the scan volume and require their samples to
  // come back intact.
  const auto spaced_mac = *radio::MacAddress::parse("02:aa:bb:cc:dd:01");
  const auto hidden_mac = *radio::MacAddress::parse("02:aa:bb:cc:dd:02");
  util::Rng rng(108);
  const radio::Scenario scenario = radio::Scenario::make_apartment(
      rng, {}, {}, [&](std::vector<radio::AccessPoint>& aps) {
        radio::AccessPoint spaced = aps.front();
        spaced.mac = spaced_mac;
        spaced.ssid = "Living Room 5G";
        spaced.position = {1.8, 1.5, 1.0};
        spaced.tx_power_dbm = 20.0;
        spaced.channel = 6;
        radio::AccessPoint hidden = spaced;
        hidden.mac = hidden_mac;
        hidden.ssid = "";  // hidden network: empty SSID on the wire
        hidden.channel = 11;
        aps.push_back(spaced);
        aps.push_back(hidden);
      });
  const CampaignResult result = run_campaign(scenario, small_config(), rng);

  std::size_t spaced_samples = 0;
  std::size_t hidden_samples = 0;
  for (const data::Sample& s : result.dataset.samples()) {
    if (s.mac == spaced_mac) {
      ++spaced_samples;
      EXPECT_EQ(s.ssid, "Living Room 5G");
      EXPECT_EQ(s.channel, 6);
    } else if (s.mac == hidden_mac) {
      ++hidden_samples;
      EXPECT_TRUE(s.ssid.empty()) << s.ssid;
      EXPECT_EQ(s.channel, 11);
    }
  }
  // Both transmitters sit metres from every waypoint at high power: they must
  // be detected repeatedly, and every tuple must parse.
  EXPECT_GT(spaced_samples, 5u);
  EXPECT_GT(hidden_samples, 5u);
}

TEST(CampaignIntegration, FullPaperCampaignStatisticsInRange) {
  // The headline reproduction: 72 waypoints, 2 UAVs, paper-like statistics.
  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const CampaignConfig config;  // defaults = paper setup
  const CampaignResult result = run_campaign(scenario, config, rng);

  EXPECT_GT(result.dataset.size(), 2000u);
  EXPECT_LT(result.dataset.size(), 4200u);
  EXPECT_GT(result.dataset.distinct_macs().size(), 55u);
  EXPECT_LE(result.dataset.distinct_macs().size(), 73u);
  EXPECT_GT(result.dataset.mean_rss_dbm(), -82.0);
  EXPECT_LT(result.dataset.mean_rss_dbm(), -65.0);

  // Drone A (high-x half) collects more than drone B.
  const auto per_uav = result.dataset.samples_per_uav();
  EXPECT_GT(per_uav.at(0), per_uav.at(1));

  // Both UAVs finish inside the endurance envelope.
  for (const UavMissionStats& s : result.uav_stats) {
    EXPECT_LT(s.active_time_s, 372.0);
    EXPECT_FALSE(s.aborted_on_battery);
  }
}

}  // namespace
}  // namespace remgen::mission
