// Deck self-healing: a receiver-driver error must not brick the deck for the
// rest of the flight — the firmware re-runs the init handshake after a short
// backoff and later scans succeed. Verified with a scripted flaky deck
// implementing the public four-instruction contract.
#include <gtest/gtest.h>

#include "radio/scenario.hpp"
#include "uav/crazyflie.hpp"
#include "util/fmt.hpp"
#include "uwb/anchor.hpp"

namespace remgen::uav {
namespace {

const radio::Scenario& scenario() {
  static util::Rng rng(888);
  static radio::Scenario s = radio::Scenario::make_apartment(rng);
  return s;
}

/// A deck whose first `failures` measurements die with a driver error; all
/// later ones deliver one tuple after a short delay.
class FlakyDeck final : public RemReceiverDeck {
 public:
  explicit FlakyDeck(int failures) : failures_remaining_(failures) {}

  void initialize(double /*now_s*/) override {
    ++init_calls_;
    state_ = DeckState::Ready;
  }
  [[nodiscard]] DeckState state() const override { return state_; }
  bool start_measurement(double now_s) override {
    if (state_ != DeckState::Ready) return false;
    state_ = DeckState::Measuring;
    done_at_ = now_s + 0.5;
    return true;
  }
  [[nodiscard]] std::vector<scanner::ScanTuple> parse_results() override {
    state_ = DeckState::Ready;
    scanner::ScanTuple tuple;
    tuple.ssid = "flaky-net";
    tuple.rssi_dbm = -70;
    tuple.mac = *radio::MacAddress::parse("02:00:00:00:00:77");
    tuple.channel = 6;
    return {tuple};
  }
  void step(double now_s) override {
    if (state_ == DeckState::Measuring && now_s >= done_at_) {
      if (failures_remaining_ > 0) {
        --failures_remaining_;
        state_ = DeckState::Error;  // driver timeout / garbled reply
      } else {
        state_ = DeckState::ResultsReady;
      }
    }
  }
  void set_position_provider(std::function<geom::Vec3()>) override {}
  void set_interference(const radio::CrazyradioInterference*) override {}
  [[nodiscard]] double scan_duration_s() const override { return 0.5; }

  [[nodiscard]] int init_calls() const noexcept { return init_calls_; }

 private:
  DeckState state_ = DeckState::Uninitialized;
  int failures_remaining_;
  double done_at_ = 0.0;
  int init_calls_ = 0;
};

Crazyflie make_uav_with_deck(std::unique_ptr<RemReceiverDeck> deck) {
  CrazyflieConfig config;
  auto positioning = std::make_unique<uwb::LocoPositioningSystem>(
      uwb::corner_anchors(scenario().scan_volume()), &scenario().floorplan(), config.lps,
      util::Rng(6));
  return Crazyflie(0, scenario().environment(), std::move(positioning), config,
                   {1.5, 1.5, 0.0}, util::Rng(8), std::move(deck));
}

void fly_and_scan(Crazyflie& uav, int waypoint, int steps) {
  uav.link().base_send({"cmd", util::format("scan {}", waypoint)}, uav.now());
  for (int i = 0; i < steps; ++i) {
    if (i % 20 == 0) uav.link().base_send({"cmd", "goto 1.5 1.5 1.0"}, uav.now());
    uav.step(0.01);
  }
}

TEST(DeckRecovery, ErrorEpisodeIsHealedByReinit) {
  auto deck = std::make_unique<FlakyDeck>(/*failures=*/1);
  FlakyDeck* flaky = deck.get();
  Crazyflie uav = make_uav_with_deck(std::move(deck));
  for (int i = 0; i < 20; ++i) uav.step(0.01);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  for (int i = 0; i < 100; ++i) {
    if (i % 20 == 0) uav.link().base_send({"cmd", "goto 1.5 1.5 1.0"}, uav.now());
    uav.step(0.01);
  }
  ASSERT_EQ(uav.deck().state(), DeckState::Ready);
  const int inits_before = flaky->init_calls();

  // First scan fails; the firmware must re-init the deck within ~1 s.
  fly_and_scan(uav, 0, 200);
  EXPECT_EQ(uav.completed_scans(), 0u);
  EXPECT_EQ(uav.deck().state(), DeckState::Ready);
  EXPECT_GT(flaky->init_calls(), inits_before);

  // Second scan succeeds on the healed deck.
  fly_and_scan(uav, 1, 200);
  EXPECT_EQ(uav.completed_scans(), 1u);
}

TEST(DeckRecovery, RepeatedFailuresKeepRetrying) {
  auto deck = std::make_unique<FlakyDeck>(/*failures=*/3);
  Crazyflie uav = make_uav_with_deck(std::move(deck));
  for (int i = 0; i < 20; ++i) uav.step(0.01);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  for (int i = 0; i < 100; ++i) {
    if (i % 20 == 0) uav.link().base_send({"cmd", "goto 1.5 1.5 1.0"}, uav.now());
    uav.step(0.01);
  }
  for (int wp = 0; wp < 4; ++wp) fly_and_scan(uav, wp, 200);
  // Three failures healed, the fourth scan finally lands.
  EXPECT_EQ(uav.completed_scans(), 1u);
  EXPECT_EQ(uav.deck().state(), DeckState::Ready);
}

TEST(DeckRecovery, HealthyDeckIsNeverReinitialized) {
  auto deck = std::make_unique<FlakyDeck>(/*failures=*/0);
  FlakyDeck* flaky = deck.get();
  Crazyflie uav = make_uav_with_deck(std::move(deck));
  for (int i = 0; i < 20; ++i) uav.step(0.01);
  const int inits_after_boot = flaky->init_calls();
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  for (int wp = 0; wp < 3; ++wp) fly_and_scan(uav, wp, 200);
  EXPECT_EQ(uav.completed_scans(), 3u);
  EXPECT_EQ(flaky->init_calls(), inits_after_boot);
}

}  // namespace
}  // namespace remgen::uav
