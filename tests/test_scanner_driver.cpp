#include <gtest/gtest.h>

#include "scanner/driver.hpp"

namespace remgen::scanner {
namespace {

/// Scripted fake module: answers each received line from a canned transcript.
class FakeModule {
 public:
  explicit FakeModule(SimUart& uart) : uart_(&uart) {}

  /// Makes the module answer `reply` to the next received line.
  void enqueue_reply(std::string reply) { replies_.push_back(std::move(reply)); }

  void step() {
    buffer_ += uart_->device_read();
    std::size_t pos;
    while ((pos = buffer_.find('\n')) != std::string::npos) {
      buffer_.erase(0, pos + 1);
      if (!replies_.empty()) {
        uart_->device_write(replies_.front());
        replies_.erase(replies_.begin());
      }
    }
  }

 private:
  SimUart* uart_;
  std::string buffer_;
  std::vector<std::string> replies_;
};

TEST(ScannerDriver, InitHandshakeReachesReady) {
  SimUart uart;
  FakeModule module(uart);
  ScannerDriver driver(uart);
  module.enqueue_reply("\r\nOK\r\n");  // AT
  module.enqueue_reply("\r\nOK\r\n");  // CWMODE
  module.enqueue_reply("\r\nOK\r\n");  // CWLAPOPT

  driver.request_init(0.0);
  EXPECT_EQ(driver.state(), DriverState::Initializing);
  for (int i = 0; i < 5; ++i) {
    module.step();
    driver.step(0.1 * i);
  }
  EXPECT_EQ(driver.state(), DriverState::Ready);
}

TEST(ScannerDriver, InitErrorEntersErrorState) {
  SimUart uart;
  FakeModule module(uart);
  ScannerDriver driver(uart);
  module.enqueue_reply("\r\nERROR\r\n");
  driver.request_init(0.0);
  module.step();
  driver.step(0.1);
  EXPECT_EQ(driver.state(), DriverState::Error);
}

TEST(ScannerDriver, InitTimeoutEntersErrorState) {
  SimUart uart;
  ScannerDriver driver(uart, /*timeout_s=*/1.0);
  driver.request_init(0.0);
  driver.step(0.5);
  EXPECT_EQ(driver.state(), DriverState::Initializing);
  driver.step(1.5);
  EXPECT_EQ(driver.state(), DriverState::Error);
}

TEST(ScannerDriver, ResetClearsError) {
  SimUart uart;
  ScannerDriver driver(uart, 1.0);
  driver.request_init(0.0);
  driver.step(2.0);
  ASSERT_EQ(driver.state(), DriverState::Error);
  driver.reset();
  EXPECT_EQ(driver.state(), DriverState::Uninitialized);
}

TEST(ScannerDriver, ScanOnlyFromReady) {
  SimUart uart;
  ScannerDriver driver(uart);
  EXPECT_FALSE(driver.request_scan(0.0));  // uninitialized
}

TEST(ScannerDriver, FullScanFlow) {
  SimUart uart;
  FakeModule module(uart);
  ScannerDriver driver(uart);
  for (int i = 0; i < 3; ++i) module.enqueue_reply("\r\nOK\r\n");
  driver.request_init(0.0);
  for (int i = 0; i < 5; ++i) {
    module.step();
    driver.step(0.1 * i);
  }
  ASSERT_EQ(driver.state(), DriverState::Ready);

  module.enqueue_reply(
      "\r\n+CWLAP:(\"net-a\",-67,\"02:00:00:00:00:01\",6)\r\n"
      "+CWLAP:(\"net-b\",-82,\"02:00:00:00:00:02\",11)\r\n\r\nOK\r\n");
  ASSERT_TRUE(driver.request_scan(1.0));
  EXPECT_EQ(driver.state(), DriverState::Scanning);
  module.step();
  driver.step(1.1);
  ASSERT_EQ(driver.state(), DriverState::ResultsReady);

  const std::vector<ScanTuple> results = driver.take_results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].ssid, "net-a");
  EXPECT_EQ(results[0].rssi_dbm, -67);
  EXPECT_EQ(results[0].mac.to_string(), "02:00:00:00:00:01");
  EXPECT_EQ(results[0].channel, 6);
  EXPECT_EQ(results[1].ssid, "net-b");
  EXPECT_EQ(driver.state(), DriverState::Ready);
}

TEST(ScannerDriver, EmptyScanYieldsNoResults) {
  SimUart uart;
  FakeModule module(uart);
  ScannerDriver driver(uart);
  for (int i = 0; i < 3; ++i) module.enqueue_reply("\r\nOK\r\n");
  driver.request_init(0.0);
  for (int i = 0; i < 5; ++i) {
    module.step();
    driver.step(0.1 * i);
  }
  module.enqueue_reply("\r\nOK\r\n");
  ASSERT_TRUE(driver.request_scan(1.0));
  module.step();
  driver.step(1.1);
  ASSERT_EQ(driver.state(), DriverState::ResultsReady);
  EXPECT_TRUE(driver.take_results().empty());
}

TEST(ScannerDriver, MalformedCwlapLineIsSkipped) {
  SimUart uart;
  FakeModule module(uart);
  ScannerDriver driver(uart);
  for (int i = 0; i < 3; ++i) module.enqueue_reply("\r\nOK\r\n");
  driver.request_init(0.0);
  for (int i = 0; i < 5; ++i) {
    module.step();
    driver.step(0.1 * i);
  }
  module.enqueue_reply(
      "\r\n+CWLAP:(garbage)\r\n+CWLAP:(\"ok\",-70,\"02:00:00:00:00:03\",1)\r\n\r\nOK\r\n");
  ASSERT_TRUE(driver.request_scan(1.0));
  module.step();
  driver.step(1.1);
  const auto results = driver.take_results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].ssid, "ok");
}

TEST(ScannerDriver, ParseCwlapValid) {
  ScanTuple tuple;
  EXPECT_TRUE(ScannerDriver::parse_cwlap_line("\"my net\",-73,\"aa:bb:cc:dd:ee:ff\",13", tuple));
  EXPECT_EQ(tuple.ssid, "my net");
  EXPECT_EQ(tuple.rssi_dbm, -73);
  EXPECT_EQ(tuple.channel, 13);
}

TEST(ScannerDriver, ParseCwlapEmptySsid) {
  ScanTuple tuple;
  EXPECT_TRUE(ScannerDriver::parse_cwlap_line("\"\",-80,\"aa:bb:cc:dd:ee:ff\",1", tuple));
  EXPECT_EQ(tuple.ssid, "");
}

// Property sweep over malformed payloads: the parser must reject them all
// without crashing.
class CwlapMalformed : public ::testing::TestWithParam<const char*> {};

TEST_P(CwlapMalformed, Rejected) {
  ScanTuple tuple;
  EXPECT_FALSE(ScannerDriver::parse_cwlap_line(GetParam(), tuple));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CwlapMalformed,
    ::testing::Values("",                                            // empty
                      "\"a\"",                                       // missing fields
                      "\"a\",-70",                                   // missing mac/channel
                      "\"a\",-70,\"zz:bb:cc:dd:ee:ff\",6",           // bad mac
                      "\"a\",-70,\"aa:bb:cc:dd:ee:ff\"",             // missing channel
                      "\"a\",xx,\"aa:bb:cc:dd:ee:ff\",6",            // bad rssi
                      "a,-70,\"aa:bb:cc:dd:ee:ff\",6",               // unquoted ssid
                      "\"a\",-70,aa:bb:cc:dd:ee:ff,6",               // unquoted mac
                      "\"a\",-70,\"aa:bb:cc:dd:ee:ff\",6,extra",     // trailing junk
                      "\"unterminated,-70,\"aa:bb:cc:dd:ee:ff\",6"));  // quote chaos

}  // namespace
}  // namespace remgen::scanner
