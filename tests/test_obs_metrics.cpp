// Telemetry metrics registry: counter/gauge/histogram semantics, snapshot
// determinism, concurrent increments, runtime gating and exporter output.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace remgen;

/// Turns telemetry on for the duration of a test.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_enabled(true); }
  void TearDown() override { obs::set_enabled(false); }
};

TEST_F(ObsMetricsTest, CounterIsMonotonic) {
  obs::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsMetricsTest, GaugeIsLastWriteWins) {
  obs::Gauge gauge;
  gauge.set(3.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 3.5);
  gauge.set(-1.0);
  EXPECT_DOUBLE_EQ(gauge.value(), -1.0);
  gauge.add(0.5);
  EXPECT_DOUBLE_EQ(gauge.value(), -0.5);
}

TEST_F(ObsMetricsTest, HistogramBucketsObservations) {
  obs::Histogram histogram({1.0, 2.0, 4.0});
  histogram.observe(0.5);   // <= 1
  histogram.observe(1.0);   // <= 1 (bounds are inclusive)
  histogram.observe(3.0);   // <= 4
  histogram.observe(100.0); // +Inf
  const std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 104.5);
}

TEST_F(ObsMetricsTest, RegistryReturnsStableInstances) {
  obs::Counter& a = obs::registry().counter("test.stable");
  obs::Counter& b = obs::registry().counter("test.stable");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  // Histogram bounds are fixed by the first registration.
  obs::Histogram& h1 = obs::registry().histogram("test.stable_histo", {1.0, 2.0});
  obs::Histogram& h2 = obs::registry().histogram("test.stable_histo", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds().size(), 2u);
}

TEST_F(ObsMetricsTest, MacrosRecordWhenEnabledOnly) {
  REMGEN_COUNTER_ADD("test.gated_counter", 5);
  obs::set_enabled(false);
  REMGEN_COUNTER_ADD("test.gated_counter", 100);
  obs::set_enabled(true);
  REMGEN_COUNTER_ADD("test.gated_counter", 1);
  EXPECT_EQ(obs::registry().counter("test.gated_counter").value(),
            obs::compiled() ? 6u : 0u);
}

TEST_F(ObsMetricsTest, ConcurrentIncrementsAreExact) {
  obs::Counter& counter = obs::registry().counter("test.concurrent");
  counter.reset();
  obs::Histogram& histogram =
      obs::registry().histogram("test.concurrent_histo", {0.5, 1.5});
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kIncrements; ++i) {
        counter.add();
        histogram.observe(1.0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_GE(histogram.count(), static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST_F(ObsMetricsTest, SnapshotIsDeterministic) {
  obs::registry().counter("test.snap_b").reset();
  obs::registry().counter("test.snap_a").add(1);
  obs::registry().gauge("test.snap_gauge").set(2.5);
  const obs::MetricsSnapshot one = obs::registry().snapshot();
  const obs::MetricsSnapshot two = obs::registry().snapshot();
  EXPECT_EQ(obs::metrics_to_json(one).dump(), obs::metrics_to_json(two).dump());
  // std::map keys: name order is lexicographic, so serialisation is stable.
  EXPECT_LT(one.counters.find("test.snap_a")->first, "test.snap_b");
}

TEST_F(ObsMetricsTest, JsonExportRoundTrips) {
  obs::registry().counter("test.json_counter").reset();
  obs::registry().counter("test.json_counter").add(1234);
  obs::registry().gauge("test.json_gauge").set(-67.25);
  obs::registry().histogram("test.json_histo", {1.0, 10.0}).observe(3.0);

  std::ostringstream out;
  obs::write_metrics_json(out, obs::registry().snapshot());
  const obs::Json parsed = obs::Json::parse(out.str());

  EXPECT_DOUBLE_EQ(parsed.at("counters").at("test.json_counter").as_double(), 1234.0);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("test.json_gauge").as_double(), -67.25);
  const obs::Json& histo = parsed.at("histograms").at("test.json_histo");
  EXPECT_GE(histo.at("count").as_double(), 1.0);
  EXPECT_EQ(histo.at("upper_bounds").as_array().size(), 2u);
  EXPECT_EQ(histo.at("bucket_counts").as_array().size(), 3u);
}

TEST_F(ObsMetricsTest, PrometheusExposition) {
  obs::registry().counter("test.prom_counter").reset();
  obs::registry().counter("test.prom_counter").add(3);
  obs::Histogram& histogram = obs::registry().histogram("test.prom_histo", {1.0, 2.0});
  histogram.reset();
  histogram.observe(0.5);
  histogram.observe(1.5);
  histogram.observe(9.0);

  std::ostringstream out;
  obs::write_prometheus(out, obs::registry().snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE remgen_test_prom_counter_total counter"), std::string::npos);
  EXPECT_NE(text.find("remgen_test_prom_counter_total 3"), std::string::npos);
  // Buckets are cumulative; +Inf equals the total count.
  EXPECT_NE(text.find("remgen_test_prom_histo_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("remgen_test_prom_histo_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("remgen_test_prom_histo_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("remgen_test_prom_histo_count 3"), std::string::npos);
}

TEST_F(ObsMetricsTest, PrometheusHistogramExpositionIsComplete) {
  obs::Histogram& histogram =
      obs::registry().histogram("test.prom exposition.full", {1.5, 4.0});
  histogram.reset();
  histogram.observe(1.0);
  histogram.observe(2.0);
  histogram.observe(8.0);

  std::ostringstream out;
  obs::write_prometheus(out, obs::registry().snapshot());
  const std::string text = out.str();
  // Name sanitisation: spaces and dots fold to underscores under the prefix.
  const std::string pname = "remgen_test_prom_exposition_full";
  EXPECT_NE(text.find("# HELP " + pname + " remgen metric 'test.prom exposition.full'"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE " + pname + " histogram"), std::string::npos);
  // Cumulative buckets, non-integer bound labels, +Inf, _sum and _count.
  EXPECT_NE(text.find(pname + "_bucket{le=\"1.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find(pname + "_bucket{le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(text.find(pname + "_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find(pname + "_sum 11"), std::string::npos);
  EXPECT_NE(text.find(pname + "_count 3"), std::string::npos);
  // Every # TYPE line is preceded by a matching # HELP line.
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
    const std::size_t name_start = pos + 7;
    const std::size_t name_end = text.find(' ', name_start);
    const std::string name = text.substr(name_start, name_end - name_start);
    EXPECT_NE(text.find("# HELP " + name + " "), std::string::npos) << name;
    pos = name_end;
  }
}

TEST_F(ObsMetricsTest, PrometheusSanitisedNameCollisionsAreDeduplicated) {
  // "a.b" and "a_b" both sanitise to the same Prometheus name; the exporter
  // must emit distinct series rather than a duplicate scrape.
  obs::registry().counter("test.collide/x").reset();
  obs::registry().counter("test.collide/x").add(1);
  obs::registry().counter("test.collide.x").reset();
  obs::registry().counter("test.collide.x").add(2);

  std::ostringstream out;
  obs::write_prometheus(out, obs::registry().snapshot());
  const std::string text = out.str();
  EXPECT_NE(text.find("remgen_test_collide_x_total "), std::string::npos);
  EXPECT_NE(text.find("remgen_test_collide_x_total_dup2 "), std::string::npos);
  // No emitted sample name appears twice.
  std::map<std::string, int> sample_names;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t cut = line.find_first_of(" {");
    ++sample_names[line.substr(0, cut)];
  }
  for (const auto& [name, count] : sample_names) {
    // Histogram _bucket series repeat once per bound; plain samples may not.
    if (name.find("_bucket") == std::string::npos) {
      EXPECT_EQ(count, 1) << "duplicate series " << name;
    }
  }
}

TEST_F(ObsMetricsTest, PrometheusHistogramFamilyIsCollisionProtected) {
  // A gauge named "<histo>_count" must not collide with the histogram's
  // derived _count series: the histogram reserves its whole family.
  obs::registry().gauge("test.family_histo_count").set(42.0);
  obs::Histogram& histogram = obs::registry().histogram("test.family_histo", {1.0});
  histogram.reset();
  histogram.observe(0.5);

  std::ostringstream out;
  obs::write_prometheus(out, obs::registry().snapshot());
  const std::string text = out.str();
  // Gauges are emitted before histograms, so the gauge keeps the plain name
  // and the histogram's family moves to the _dup2 form — and both survive.
  EXPECT_NE(text.find("remgen_test_family_histo_count 42"), std::string::npos);
  EXPECT_NE(text.find("remgen_test_family_histo_dup2_count 1"), std::string::npos);
  EXPECT_NE(text.find("remgen_test_family_histo_dup2_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST_F(ObsMetricsTest, JsonParserHandlesCoreGrammar) {
  const obs::Json value = obs::Json::parse(
      R"({"text": "a\"b\nc", "numbers": [1, -2.5, 1e3], "nested": {"ok": true, "no": null}})");
  EXPECT_EQ(value.at("text").as_string(), "a\"b\nc");
  ASSERT_EQ(value.at("numbers").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(value.at("numbers").as_array()[2].as_double(), 1000.0);
  EXPECT_TRUE(value.at("nested").at("ok").as_bool());
  EXPECT_TRUE(value.at("nested").at("no").is_null());
  // dump/parse round trip preserves the document.
  EXPECT_EQ(obs::Json::parse(value.dump()).dump(), value.dump());
  EXPECT_EQ(obs::Json::parse(value.dump(2)).dump(), value.dump());

  EXPECT_THROW((void)obs::Json::parse("{\"unterminated\": "), std::runtime_error);
  EXPECT_THROW((void)obs::Json::parse("[1, 2] trailing"), std::runtime_error);
}

TEST_F(ObsMetricsTest, ResetZeroesButKeepsMetrics) {
  obs::Counter& counter = obs::registry().counter("test.reset_counter");
  counter.add(10);
  obs::registry().reset();
  EXPECT_EQ(counter.value(), 0u);  // the same instance, zeroed
  counter.add(2);
  EXPECT_EQ(obs::registry().counter("test.reset_counter").value(), 2u);
}

}  // namespace
