#include <gtest/gtest.h>

#include "ml/grid_search.hpp"
#include "ml/knn.hpp"
#include "ml/model_zoo.hpp"

namespace remgen::ml {
namespace {

data::Sample make_sample(double x, double y, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, 1.0};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

std::vector<data::Sample> structured_data(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<data::Sample> out;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    out.push_back(make_sample(x, y, "02:00:00:00:00:0a",
                              -60.0 - 5.0 * x + rng.gaussian(0.0, 1.0)));
  }
  return out;
}

TEST(GridSearch, EvaluatesEveryCandidate) {
  const auto train = structured_data(200, 1);
  std::vector<KnnConfig> candidates;
  for (const std::size_t k : {1u, 3u, 9u}) {
    KnnConfig c;
    c.n_neighbors = k;
    candidates.push_back(c);
  }
  util::Rng rng(2);
  const auto result = grid_search(
      candidates,
      [](const KnnConfig& c) { return std::make_unique<KnnRegressor>(c); }, train, 0.25, rng);
  EXPECT_EQ(result.evaluated.size(), 3u);
  EXPECT_TRUE(std::isfinite(result.best_rmse));
}

TEST(GridSearch, BestHasLowestValidationRmse) {
  const auto train = structured_data(300, 3);
  std::vector<KnnConfig> candidates;
  for (const std::size_t k : {1u, 2u, 4u, 8u, 16u, 64u}) {
    KnnConfig c;
    c.n_neighbors = k;
    candidates.push_back(c);
  }
  util::Rng rng(4);
  const auto result = grid_search(
      candidates,
      [](const KnnConfig& c) { return std::make_unique<KnnRegressor>(c); }, train, 0.25, rng);
  for (const auto& point : result.evaluated) {
    EXPECT_GE(point.validation_rmse, result.best_rmse);
  }
  EXPECT_EQ(result.best.n_neighbors,
            std::min_element(result.evaluated.begin(), result.evaluated.end(),
                             [](const auto& a, const auto& b) {
                               return a.validation_rmse < b.validation_rmse;
                             })
                ->config.n_neighbors);
}

TEST(GridSearch, PrefersSensibleKOnNoisyData) {
  // With noise, k=1 overfits; a moderate k must win over both extremes
  // (k=1 and k=all).
  const auto train = structured_data(400, 5);
  std::vector<KnnConfig> candidates;
  for (const std::size_t k : {1u, 8u, 300u}) {
    KnnConfig c;
    c.n_neighbors = k;
    candidates.push_back(c);
  }
  util::Rng rng(6);
  const auto result = grid_search(
      candidates,
      [](const KnnConfig& c) { return std::make_unique<KnnRegressor>(c); }, train, 0.3, rng);
  EXPECT_EQ(result.best.n_neighbors, 8u);
}

TEST(GridSearch, DeterministicGivenRng) {
  const auto train = structured_data(150, 7);
  std::vector<KnnConfig> candidates(3);
  candidates[0].n_neighbors = 1;
  candidates[1].n_neighbors = 3;
  candidates[2].n_neighbors = 7;
  util::Rng rng1(8);
  util::Rng rng2(8);
  auto build = [](const KnnConfig& c) { return std::make_unique<KnnRegressor>(c); };
  const auto r1 = grid_search(candidates, build, train, 0.25, rng1);
  const auto r2 = grid_search(candidates, build, train, 0.25, rng2);
  EXPECT_EQ(r1.best.n_neighbors, r2.best.n_neighbors);
  EXPECT_DOUBLE_EQ(r1.best_rmse, r2.best_rmse);
}

TEST(ModelZoo, AllKindsConstructAndName) {
  for (const ModelKind kind : all_model_kinds(true)) {
    const auto model = make_model(kind);
    ASSERT_NE(model, nullptr);
    EXPECT_FALSE(model->name().empty());
    EXPECT_STRNE(model_kind_name(kind), "?");
  }
}

TEST(ModelZoo, PaperSuiteExcludesExtensions) {
  const auto paper = all_model_kinds(false);
  EXPECT_EQ(paper.size(), 5u);
  const auto all = all_model_kinds(true);
  EXPECT_EQ(all.size(), 7u);
}

TEST(ModelZoo, EveryModelFitsAndPredicts) {
  const auto train = structured_data(120, 9);
  for (const ModelKind kind : all_model_kinds(true)) {
    const auto model = make_model(kind);
    model->fit(train);
    const double pred = model->predict(train.front());
    EXPECT_TRUE(std::isfinite(pred)) << model_kind_name(kind);
    EXPECT_GT(pred, -120.0) << model_kind_name(kind);
    EXPECT_LT(pred, 0.0) << model_kind_name(kind);
  }
}

}  // namespace
}  // namespace remgen::ml
