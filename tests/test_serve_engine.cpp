#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/rem_builder.hpp"
#include "exec/config.hpp"
#include "ml/model_zoo.hpp"
#include "serve/cache.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace remgen::serve {
namespace {

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

data::Sample make_sample(double x, double y, double z, const char* mac, double rss,
                         int channel) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = channel;
  s.rss_dbm = rss;
  return s;
}

data::Dataset synthetic_dataset(std::size_t per_mac = 40) {
  util::Rng rng(21);
  data::Dataset ds;
  for (std::size_t i = 0; i < per_mac; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    ds.add(make_sample(x, y, z, kMacA, -55.0 - 4.0 * x + rng.gaussian(0, 1.0), 6));
    ds.add(make_sample(x, y, z, kMacB, -75.0 - 2.0 * y + rng.gaussian(0, 1.0), 11));
  }
  return ds;
}

store::Snapshot make_snapshot(bool with_rem = true) {
  const data::Dataset ds = synthetic_dataset();
  store::Snapshot snapshot;
  snapshot.dataset = ds;
  auto model = ml::make_model(ml::ModelKind::PerMacKnn);
  if (with_rem) {
    core::RemBuilderConfig config;
    config.voxel_m = 0.5;
    config.min_samples_per_mac = 1;
    snapshot.rem.emplace(
        core::build_rem(ds, *model, geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}), config));
  } else {
    model->fit(ds.samples());
  }
  snapshot.model = std::move(model);
  return snapshot;
}

// --- Request parsing ----------------------------------------------------

TEST(ServeRequest, ParsesPointQuery) {
  const Request r =
      parse_request(R"({"id":7,"type":"point","x":1.5,"y":2.0,"z":0.5,"mac":"02:00:00:00:00:0a"})");
  EXPECT_EQ(r.id, 7);
  EXPECT_EQ(r.type, RequestType::Point);
  ASSERT_TRUE(r.mac.has_value());
  EXPECT_EQ(r.mac->to_string(), kMacA);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_DOUBLE_EQ(r.points[0].x, 1.5);
}

TEST(ServeRequest, DefaultsToPointType) {
  const Request r = parse_request(R"({"id":1,"x":0.0,"y":0.0,"z":0.0})");
  EXPECT_EQ(r.type, RequestType::Point);
  EXPECT_FALSE(r.mac.has_value());
}

TEST(ServeRequest, ParsesBatchQuery) {
  const Request r = parse_request(
      R"({"id":2,"type":"batch","mac":"02:00:00:00:00:0b","points":[[0,0,0],[1,2,0.5]]})");
  EXPECT_EQ(r.type, RequestType::Batch);
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_DOUBLE_EQ(r.points[1].y, 2.0);
}

TEST(ServeRequest, ParsesVolumeQuery) {
  const Request r =
      parse_request(R"({"id":3,"type":"volume","z_lo":0.5,"z_hi":1.5,"threshold_dbm":-70})");
  EXPECT_EQ(r.type, RequestType::Volume);
  EXPECT_DOUBLE_EQ(r.z_lo, 0.5);
  EXPECT_DOUBLE_EQ(r.z_hi, 1.5);
  EXPECT_DOUBLE_EQ(r.threshold_dbm, -70.0);
}

TEST(ServeRequest, RejectsMalformedLines) {
  EXPECT_THROW((void)parse_request("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_request(R"([1,2,3])"), std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"type":"point","x":0,"y":0,"z":0})"),
               std::runtime_error);  // no id
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"wat"})"), std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"point","x":0,"y":0})"),
               std::runtime_error);  // missing z
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"point","x":0,"y":0,"z":0,"mac":"zz"})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"batch","mac":"02:00:00:00:00:0a"})"),
               std::runtime_error);  // no points
  EXPECT_THROW(
      (void)parse_request(R"({"id":1,"type":"batch","mac":"02:00:00:00:00:0a","points":[[1,2]]})"),
      std::runtime_error);  // 2-component point
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"volume","z_lo":2.0,"z_hi":1.0})"),
               std::runtime_error);  // inverted slab
}

TEST(ServeRequest, RejectsNonFiniteCoordinates) {
  // JSON has no NaN/inf literals, but overflowing literals produce inf —
  // the parser must reject them, mirroring the CLI's --at validation.
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"point","x":1e999,"y":0,"z":0})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_request(R"({"id":1,"type":"batch","mac":"02:00:00:00:00:0a","points":[[1e999,0,0]]})"),
      std::runtime_error);
}

TEST(ServeRequest, ResponseJsonlMergesIdAndBody) {
  Response response;
  response.id = 12;
  obs::Json::Object body;
  body["rss_dbm"] = obs::Json(-61.5);
  response.body = obs::Json(std::move(body));
  EXPECT_EQ(response.to_jsonl(), R"({"id":12,"ok":true,"rss_dbm":-61.5})");

  Response failure;
  failure.id = 13;
  failure.ok = false;
  failure.error = "boom";
  EXPECT_EQ(failure.to_jsonl(), R"({"error":"boom","id":13,"ok":false})");
}

// --- Engine semantics ---------------------------------------------------

class ServeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = exec::thread_count(); }
  void TearDown() override { exec::set_thread_count(previous_); }
  std::size_t previous_ = 1;
};

TEST_F(ServeEngineTest, PointQueryBitIdenticalToInProcessPredict) {
  store::Snapshot reference = make_snapshot();
  // Build the engine from an independent save->load cycle, as remgen-serve
  // would in a fresh process.
  std::stringstream io;
  store::save_snapshot(io, reference);
  const QueryEngine engine(store::load_snapshot(io), 1 << 20);

  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const geom::Vec3 p{rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)};
    Request request;
    request.id = i;
    request.mac = *radio::MacAddress::parse(i % 2 == 0 ? kMacA : kMacB);
    request.points.push_back(p);
    const Response response = engine.execute(request);
    ASSERT_TRUE(response.ok) << response.error;

    data::Sample q;
    q.mac = *request.mac;
    q.channel = i % 2 == 0 ? 6 : 11;  // The MAC's channel in the dataset.
    q.position = p;
    const double expected = reference.model->predict(q);
    EXPECT_EQ(bits(response.body.at("rss_dbm").as_double()), bits(expected));
  }
}

TEST_F(ServeEngineTest, BestApRanksStrongestFirst) {
  const QueryEngine engine(make_snapshot(), 1 << 20);
  Request request;
  request.id = 1;
  request.top = 5;
  request.points.push_back({0.25, 0.25, 1.0});  // Near x=0: MAC A is strongest.
  const Response response = engine.execute(request);
  ASSERT_TRUE(response.ok) << response.error;
  const auto& best = response.body.at("best").as_array();
  ASSERT_EQ(best.size(), 2u);  // Two MACs known, top capped by availability.
  EXPECT_EQ(best[0].at("mac").as_string(), kMacA);
  EXPECT_GE(best[0].at("rss_dbm").as_double(), best[1].at("rss_dbm").as_double());
}

TEST_F(ServeEngineTest, UnknownMacIsARequestError) {
  const QueryEngine engine(make_snapshot(), 1 << 20);
  Request request;
  request.id = 9;
  request.mac = *radio::MacAddress::parse("02:99:99:99:99:99");
  request.points.push_back({1.0, 1.0, 1.0});
  const Response response = engine.execute(request);
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("unknown mac"), std::string::npos);
}

TEST_F(ServeEngineTest, BatchMatchesPointQueries) {
  const QueryEngine engine(make_snapshot(), 1 << 20);
  Request batch;
  batch.id = 1;
  batch.type = RequestType::Batch;
  batch.mac = *radio::MacAddress::parse(kMacA);
  batch.points = {{0.5, 0.5, 0.5}, {1.5, 1.0, 1.0}, {3.5, 2.5, 1.5}};
  const Response response = engine.execute(batch);
  ASSERT_TRUE(response.ok) << response.error;
  const auto& values = response.body.at("rss_dbm").as_array();
  ASSERT_EQ(values.size(), batch.points.size());
  for (std::size_t i = 0; i < batch.points.size(); ++i) {
    Request point;
    point.id = 2;
    point.mac = batch.mac;
    point.points.push_back(batch.points[i]);
    const Response single = engine.execute(point);
    ASSERT_TRUE(single.ok);
    EXPECT_EQ(bits(values[i].as_double()), bits(single.body.at("rss_dbm").as_double()));
  }
}

TEST_F(ServeEngineTest, VolumeQueryCountsCoverage) {
  const QueryEngine engine(make_snapshot(), 1 << 20);
  Request request;
  request.id = 4;
  request.type = RequestType::Volume;
  request.z_lo = 0.0;
  request.z_hi = 2.0;
  request.threshold_dbm = -200.0;  // Everything passes.
  const Response response = engine.execute(request);
  ASSERT_TRUE(response.ok) << response.error;
  const auto& g = engine.snapshot().rem->geometry();
  EXPECT_EQ(response.body.at("voxels").as_double(),
            static_cast<double>(g.voxel_count()));
  EXPECT_DOUBLE_EQ(response.body.at("coverage").as_double(), 1.0);
  EXPECT_EQ(response.body.at("dark").as_double(), 0.0);
}

TEST_F(ServeEngineTest, VolumeWithoutRemFails) {
  const QueryEngine engine(make_snapshot(/*with_rem=*/false), 1 << 20);
  Request request;
  request.id = 4;
  request.type = RequestType::Volume;
  request.z_lo = 0.0;
  request.z_hi = 2.0;
  const Response response = engine.execute(request);
  EXPECT_FALSE(response.ok);
}

TEST_F(ServeEngineTest, CacheHitsOnRepeatedQueriesWithIdenticalResults) {
  const QueryEngine engine(make_snapshot(), 1 << 20);
  Request request;
  request.id = 1;
  request.mac = *radio::MacAddress::parse(kMacA);
  request.points.push_back({1.25, 0.75, 1.0});
  const Response first = engine.execute(request);
  const std::uint64_t misses_after_first = engine.cache().misses();
  const Response second = engine.execute(request);
  EXPECT_EQ(engine.cache().misses(), misses_after_first);
  EXPECT_GE(engine.cache().hits(), 1u);
  EXPECT_EQ(first.to_jsonl(), second.to_jsonl());
}

TEST_F(ServeEngineTest, ZeroCacheBudgetDisablesCaching) {
  const QueryEngine engine(make_snapshot(), 0);
  Request request;
  request.id = 1;
  request.mac = *radio::MacAddress::parse(kMacA);
  request.points.push_back({1.25, 0.75, 1.0});
  const Response first = engine.execute(request);
  const Response second = engine.execute(request);
  EXPECT_EQ(engine.cache().hits(), 0u);
  EXPECT_EQ(engine.cache().size(), 0u);
  EXPECT_EQ(first.to_jsonl(), second.to_jsonl());
}

TEST(ServeCache, EvictsLeastRecentlyUsed) {
  // Tiny budget: capacity_entries = bytes / kBytesPerEntry, split over 16
  // shards. All keys share one MAC, so they hash into one shard.
  ResultCache cache(ResultCache::kBytesPerEntry * 16 * 2);  // 2 entries per shard
  EXPECT_EQ(cache.capacity_entries(), 32u);
  const radio::MacAddress mac = *radio::MacAddress::parse(kMacA);
  cache.put(mac, {1, 0, 0}, -10.0);
  cache.put(mac, {2, 0, 0}, -20.0);
  EXPECT_TRUE(cache.get(mac, {1, 0, 0}).has_value());  // 1 is now most recent.
  cache.put(mac, {3, 0, 0}, -30.0);                    // Evicts 2.
  EXPECT_FALSE(cache.get(mac, {2, 0, 0}).has_value());
  EXPECT_EQ(cache.get(mac, {1, 0, 0}).value(), -10.0);
  EXPECT_EQ(cache.get(mac, {3, 0, 0}).value(), -30.0);
}

// --- Replay determinism -------------------------------------------------

std::string request_stream() {
  // Shuffled ids, duplicates (cache hits), malformed lines, batch + volume
  // + best-AP + errors: everything the response ordering must survive.
  std::ostringstream out;
  util::Rng rng(123);
  for (int i = 60; i > 0; --i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    const char* mac = i % 2 == 0 ? kMacA : kMacB;
    switch (i % 5) {
      case 0:
        out << R"({"id":)" << i << R"(,"type":"point","x":)" << x << R"(,"y":)" << y
            << R"(,"z":)" << z << R"(,"mac":")" << mac << R"("})" << "\n";
        break;
      case 1:  // Best-AP.
        out << R"({"id":)" << i << R"(,"type":"point","x":)" << x << R"(,"y":)" << y
            << R"(,"z":)" << z << R"(,"top":2})" << "\n";
        break;
      case 2:
        out << R"({"id":)" << i << R"(,"type":"batch","mac":")" << mac
            << R"(","points":[[1,1,1],[)" << x << "," << y << "," << z << R"(]]})" << "\n";
        break;
      case 3:
        out << R"({"id":)" << i << R"(,"type":"volume","z_lo":0.0,"z_hi":)" << z << "}\n";
        break;
      case 4:
        out << "this line is garbage\n";
        break;
    }
    if (i % 7 == 0) {  // Duplicate id with an identical query: tie-break test.
      out << R"({"id":)" << i << R"(,"type":"point","x":1.0,"y":1.0,"z":1.0,"mac":")" << mac
          << R"("})" << "\n";
    }
  }
  return out.str();
}

TEST_F(ServeEngineTest, ReplayIsByteIdenticalAcrossThreadCounts) {
  const std::string requests = request_stream();

  const auto run = [&requests](std::size_t threads) {
    exec::set_thread_count(threads);
    // A fresh engine per run: the cache must not leak state between runs.
    std::stringstream io;
    store::save_snapshot(io, make_snapshot());
    const QueryEngine engine(store::load_snapshot(io), 1 << 20);
    std::istringstream in(requests);
    std::ostringstream out;
    const ReplayStats stats = engine.replay_jsonl(in, out);
    EXPECT_GT(stats.requests, 0u);
    EXPECT_GT(stats.errors, 0u);  // The garbage lines.
    return out.str();
  };

  const std::string sequential = run(1);
  const std::string parallel = run(4);
  EXPECT_EQ(sequential, parallel);

  // Responses come out ordered by id.
  std::istringstream lines(sequential);
  std::string line;
  std::int64_t last_id = std::numeric_limits<std::int64_t>::min();
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const obs::Json doc = obs::Json::parse(line);
    const auto id = static_cast<std::int64_t>(doc.at("id").as_double());
    EXPECT_GE(id, last_id);
    last_id = id;
    ++count;
  }
  EXPECT_GT(count, 60u);
}

TEST_F(ServeEngineTest, ReplayReportsStats) {
  exec::set_thread_count(2);
  const QueryEngine engine(make_snapshot(), 1 << 20);
  std::istringstream in(
      R"({"id":2,"type":"point","x":1,"y":1,"z":1,"mac":"02:00:00:00:00:0a"}
{"id":1,"type":"point","x":1,"y":1,"z":1,"mac":"02:00:00:00:00:0a"}
garbage
)");
  std::ostringstream out;
  const ReplayStats stats = engine.replay_jsonl(in, out);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_GE(stats.qps, 0.0);
  EXPECT_GE(stats.latency_us.p99, stats.latency_us.p50);
  EXPECT_EQ(stats.cache_hits, 1u);  // Identical point for ids 1 and 2.
  // Malformed line sorts first (id -1), then ids ascending.
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find(R"("id":-1)"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(line.find(R"("id":1)"), std::string::npos);
}

TEST_F(ServeEngineTest, ReplayStatsArePerRunNotCumulative) {
  // Regression: replay_jsonl used to report the engine's lifetime cache
  // counters, so a second replay on a warm engine claimed the first run's
  // hits and misses as its own.
  exec::set_thread_count(2);
  const QueryEngine engine(make_snapshot(), 1 << 20);
  std::istringstream first_in(
      R"({"id":1,"type":"point","x":1,"y":1,"z":1,"mac":"02:00:00:00:00:0a"}
{"id":2,"type":"point","x":1,"y":1,"z":1,"mac":"02:00:00:00:00:0a"}
)");
  std::ostringstream first_out;
  const ReplayStats first = engine.replay_jsonl(first_in, first_out);
  EXPECT_EQ(first.cache_hits, 1u);
  EXPECT_EQ(first.cache_misses, 1u);

  // Same two lines again: both hit the now-warm cache, and neither the first
  // run's miss nor its hit may leak into this run's report.
  std::istringstream second_in(
      R"({"id":1,"type":"point","x":1,"y":1,"z":1,"mac":"02:00:00:00:00:0a"}
{"id":2,"type":"point","x":1,"y":1,"z":1,"mac":"02:00:00:00:00:0a"}
)");
  std::ostringstream second_out;
  const ReplayStats second = engine.replay_jsonl(second_in, second_out);
  EXPECT_EQ(second.cache_hits, 2u);
  EXPECT_EQ(second.cache_misses, 0u);
}

// --- Exact integer ids --------------------------------------------------

TEST(ServeRequest, LargeIdsRoundTripExactly) {
  // Regression: ids used to pass through double, so 2^53 + 3 came back as
  // 2^53 + 4 and responses no longer matched their requests.
  const std::int64_t big = (std::int64_t{1} << 53) + 3;
  const Request request =
      parse_request(R"({"id":9007199254740995,"type":"point","x":1,"y":1,"z":1,"top":1})");
  EXPECT_EQ(request.id, big);

  Response response;
  response.id = big;
  EXPECT_NE(response.to_jsonl().find("\"id\":9007199254740995"), std::string::npos);
}

TEST(ServeRequest, RejectsNonIntegerOrNegativeIds) {
  EXPECT_THROW((void)parse_request(R"({"id":1.5,"type":"point","x":0,"y":0,"z":0})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"id":-3,"type":"point","x":0,"y":0,"z":0})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"id":1e300,"type":"point","x":0,"y":0,"z":0})"),
               std::runtime_error);  // Out of int64 range.
  EXPECT_THROW((void)parse_request(R"({"id":"7","type":"point","x":0,"y":0,"z":0})"),
               std::runtime_error);
}

TEST(ServeRequest, RejectsFractionalTop) {
  // Regression: "top":2.9 used to be silently truncated to 2.
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"point","x":0,"y":0,"z":0,"top":2.9})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_request(R"({"id":1,"type":"point","x":0,"y":0,"z":0,"top":0})"),
               std::runtime_error);
}

TEST(ServeRequest, SalvagesIdsOnlyFromValidIntegerIds) {
  EXPECT_EQ(salvage_request_id(R"({"id":41,"type":"wat"})"), 41);
  EXPECT_EQ(salvage_request_id(R"({"id":9007199254740995,"type":"wat"})"),
            (std::int64_t{1} << 53) + 3);
  EXPECT_EQ(salvage_request_id("not json"), -1);
  EXPECT_EQ(salvage_request_id(R"({"id":1.5})"), -1);
  EXPECT_EQ(salvage_request_id(R"({"id":-7})"), -1);
  EXPECT_EQ(salvage_request_id(R"({"type":"point"})"), -1);
}

// --- Coalesced execution ------------------------------------------------

TEST_F(ServeEngineTest, ExecuteCoalescedByteIdenticalToExecute) {
  std::stringstream io;
  store::save_snapshot(io, make_snapshot());

  std::vector<Request> requests;
  util::Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    Request request;
    request.id = i;
    const geom::Vec3 p{rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)};
    switch (i % 5) {
      case 0:  // Same-MAC point queries: the coalescing target.
      case 1:
        request.mac = *radio::MacAddress::parse(i % 2 == 0 ? kMacA : kMacB);
        request.points.push_back(p);
        break;
      case 2:  // Best-AP.
        request.top = 2;
        request.points.push_back(p);
        break;
      case 3:
        request.type = RequestType::Batch;
        request.mac = *radio::MacAddress::parse(kMacA);
        request.points = {p, {1, 1, 1}};
        break;
      case 4:  // Unknown MAC: per-request error path inside a group-less unit.
        request.mac = *radio::MacAddress::parse("02:99:99:99:99:99");
        request.points.push_back(p);
        break;
    }
    requests.push_back(std::move(request));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    exec::set_thread_count(threads);
    const QueryEngine engine(store::load_snapshot(io), 1 << 20);
    io.clear();
    io.seekg(0);
    const QueryEngine reference(store::load_snapshot(io), 1 << 20);
    io.clear();
    io.seekg(0);
    const std::vector<Response> coalesced = engine.execute_coalesced(requests);
    ASSERT_EQ(coalesced.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(coalesced[i].to_jsonl(), reference.execute(requests[i]).to_jsonl())
          << "request " << i << " at " << threads << " thread(s)";
    }
  }
}

}  // namespace
}  // namespace remgen::serve
