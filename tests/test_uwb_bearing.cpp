// Direct tests of the EKF bearing (azimuth/elevation) updates used by the
// Lighthouse system.
#include <gtest/gtest.h>

#include <cmath>

#include "uwb/ekf.hpp"
#include "util/rng.hpp"

namespace remgen::uwb {
namespace {

/// True azimuth/elevation of `tag` from a station at `origin` yawed by `yaw`.
std::pair<double, double> true_bearing(const geom::Vec3& origin, double yaw,
                                       const geom::Vec3& tag) {
  const geom::Vec3 d = tag - origin;
  const double c = std::cos(yaw);
  const double s = std::sin(yaw);
  const double rx = c * d.x + s * d.y;
  const double ry = -s * d.x + c * d.y;
  return {std::atan2(ry, rx), std::atan2(d.z, std::sqrt(rx * rx + ry * ry))};
}

TEST(EkfBearing, PerfectMeasurementAtTruthIsNoop) {
  Ekf ekf;
  const geom::Vec3 truth{2.0, 1.0, 1.5};
  ekf.reset(truth);
  const geom::Vec3 origin{0.0, 0.0, 2.0};
  const auto [az, el] = true_bearing(origin, 0.3, truth);
  EXPECT_TRUE(ekf.update_azimuth(origin, 0.3, az, 1e-3));
  EXPECT_TRUE(ekf.update_elevation(origin, 0.3, el, 1e-3));
  EXPECT_LT(ekf.position().distance_to(truth), 1e-9);
}

TEST(EkfBearing, AzimuthPullsEstimateTangentially) {
  Ekf ekf;
  ekf.reset({2.0, 0.3, 1.0});  // estimate slightly off in y
  const geom::Vec3 origin{0.0, 0.0, 1.0};
  const geom::Vec3 truth{2.0, 0.0, 1.0};
  const auto [az, el] = true_bearing(origin, 0.0, truth);
  (void)el;
  for (int i = 0; i < 50; ++i) {
    ekf.predict(0.01, {});
    ekf.update_azimuth(origin, 0.0, az, 1e-3);
  }
  // Azimuth observes y (tangential), not x (radial).
  EXPECT_NEAR(ekf.position().y, 0.0, 0.05);
}

TEST(EkfBearing, ElevationConvergesToConstraintCone) {
  // A single elevation angle constrains one degree of freedom: the estimate
  // must land on the constant-elevation cone through the truth (not at a
  // unique point — that needs more measurements, cf. the two-station test).
  Ekf ekf;
  ekf.reset({2.0, 0.0, 1.4});  // off in z
  const geom::Vec3 origin{0.0, 0.0, 2.5};
  const geom::Vec3 truth{2.0, 0.0, 1.0};
  const auto [az, el] = true_bearing(origin, 0.0, truth);
  (void)az;
  for (int i = 0; i < 200; ++i) {
    ekf.predict(0.01, {});
    ekf.update_elevation(origin, 0.0, el, 5e-3);
  }
  const auto [az_after, el_after] = true_bearing(origin, 0.0, ekf.position());
  (void)az_after;
  EXPECT_NEAR(el_after, el, 0.02);
  // And the constraint actually moved the estimate (it was 0.4 m off).
  EXPECT_LT(std::abs(ekf.position().z - 1.4), 0.39);
}

TEST(EkfBearing, WrapsInnovationAcrossPi) {
  // Station behind the tag: predicted azimuth near +pi, measured near -pi.
  Ekf ekf;
  ekf.reset({-2.0, 0.05, 1.0});
  const geom::Vec3 origin{0.0, 0.0, 1.0};
  const geom::Vec3 truth{-2.0, -0.05, 1.0};
  const auto [az, el] = true_bearing(origin, 0.0, truth);
  (void)el;
  for (int i = 0; i < 50; ++i) {
    ekf.predict(0.01, {});
    EXPECT_TRUE(ekf.update_azimuth(origin, 0.0, az, 1e-3));
  }
  // Without wrapping the ~2*pi innovation would fling the estimate away.
  EXPECT_LT(ekf.position().distance_to(truth), 0.15);
}

TEST(EkfBearing, DegenerateGeometryRejected) {
  Ekf ekf;
  ekf.reset({0.0, 0.0, 1.0});
  // Tag exactly on the station's vertical axis: azimuth undefined.
  EXPECT_FALSE(ekf.update_azimuth({0.0, 0.0, 3.0}, 0.0, 0.5, 1e-3));
  // Elevation degenerate straight above/below too (r ~ 0).
  EXPECT_FALSE(ekf.update_elevation({0.0, 0.0, 3.0}, 0.0, 0.5, 1e-3));
}

TEST(EkfBearing, TwoStationsTriangulatePosition) {
  // Bearing updates are strongly nonlinear, so the filter is seeded close to
  // the truth (as the real system is, via initialize_at) and the measurement
  // noise handed to the filter is kept honest rather than optimistic.
  Ekf ekf;
  const geom::Vec3 truth{1.8, 1.6, 1.0};
  ekf.reset({1.7, 1.5, 1.1});
  const geom::Vec3 s0{0.0, 0.0, 2.1};
  const geom::Vec3 s1{3.74, 3.2, 2.1};
  util::Rng rng(5);
  for (int i = 0; i < 1500; ++i) {
    ekf.predict(0.01, {});
    const geom::Vec3& origin = (i % 2 == 0) ? s0 : s1;
    const double yaw = (i % 2 == 0) ? 0.7 : -2.4;
    const auto [az, el] = true_bearing(origin, yaw, truth);
    ekf.update_azimuth(origin, yaw, az + rng.gaussian(0, 5e-4), 2e-3);
    ekf.update_elevation(origin, yaw, el + rng.gaussian(0, 5e-4), 2e-3);
  }
  EXPECT_LT(ekf.position().distance_to(truth), 0.03);
}

}  // namespace
}  // namespace remgen::uwb
