#include <gtest/gtest.h>

#include "uwb/lps.hpp"
#include "util/stats.hpp"

namespace remgen::uwb {
namespace {

geom::Aabb volume() { return geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}); }

LocoPositioningSystem make_lps(LocalizationMode mode, std::size_t anchors = 8,
                               std::uint64_t seed = 42) {
  LpsConfig config;
  config.mode = mode;
  return LocoPositioningSystem(anchors == 8 ? corner_anchors(volume())
                                            : corner_anchors_subset(volume(), anchors),
                               nullptr, config, util::Rng(seed));
}

TEST(Lps, RequiresFourAnchors) {
  LpsConfig config;
  std::vector<Anchor> three{{0, {0, 0, 0}}, {1, {1, 0, 0}}, {2, {0, 1, 0}}};
  EXPECT_DEATH(LocoPositioningSystem(three, nullptr, config, util::Rng(1)), "");
}

TEST(Lps, InitializeNearTruePosition) {
  auto lps = make_lps(LocalizationMode::Twr);
  const geom::Vec3 start{1.0, 1.5, 0.0};
  lps.initialize_at(start);
  EXPECT_LT(lps.estimated_position().distance_to(start), 0.3);
}

TEST(Lps, SnapshotFixAccuracy) {
  auto lps = make_lps(LocalizationMode::Twr);
  const geom::Vec3 truth{2.0, 1.0, 1.0};
  const auto fix = lps.snapshot_fix(truth);
  ASSERT_TRUE(fix.has_value());
  EXPECT_LT(fix->position.distance_to(truth), 0.3);
}

TEST(Lps, HoverAccuracyDecimetreLevel) {
  // The paper's headline claim: decimetre-level location annotation.
  for (const auto mode : {LocalizationMode::Twr, LocalizationMode::Tdoa}) {
    auto lps = make_lps(mode);
    const geom::Vec3 truth{1.8, 1.6, 1.0};
    lps.initialize_at(truth);
    util::OnlineStats error;
    for (int i = 0; i < 3000; ++i) {
      lps.step(0.01, truth, {});
      if (i > 500) error.add(lps.estimated_position().distance_to(truth));
    }
    EXPECT_LT(error.mean(), 0.15) << "mode " << static_cast<int>(mode);
  }
}

TEST(Lps, MoreAnchorsMoreAccurate) {
  auto run = [&](std::size_t anchors) {
    // Average several seeds so the comparison is not one lucky draw.
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      auto lps = make_lps(LocalizationMode::Twr, anchors, 100 + seed);
      const geom::Vec3 truth{1.8, 1.6, 1.0};
      lps.initialize_at(truth);
      util::OnlineStats error;
      for (int i = 0; i < 2000; ++i) {
        lps.step(0.01, truth, {});
        if (i > 500) error.add(lps.estimated_position().distance_to(truth));
      }
      total += error.mean();
    }
    return total / 6.0;
  };
  EXPECT_LT(run(8), run(4));
}

TEST(Lps, MeasurementRateIsRespected) {
  // With a tiny measurement rate the filter cannot converge far; with a high
  // rate it can. This indirectly verifies the scheduling debt logic.
  LpsConfig slow;
  slow.mode = LocalizationMode::Twr;
  slow.measurements_per_second = 1.0;
  LocoPositioningSystem lps_slow(corner_anchors(volume()), nullptr, slow, util::Rng(5));
  LpsConfig fast = slow;
  fast.measurements_per_second = 200.0;
  LocoPositioningSystem lps_fast(corner_anchors(volume()), nullptr, fast, util::Rng(5));

  const geom::Vec3 truth{1.0, 1.0, 1.0};
  // Both start well away from the truth with no snapshot init.
  for (int i = 0; i < 400; ++i) {
    lps_slow.step(0.01, truth, {});
    lps_fast.step(0.01, truth, {});
  }
  EXPECT_LT(lps_fast.estimated_position().distance_to(truth),
            lps_slow.estimated_position().distance_to(truth));
}

TEST(Lps, SurveyErrorBoundsAccuracy) {
  // Perfect survey allows centimetre accuracy; sloppy survey does not.
  auto run = [&](double survey_sigma) {
    LpsConfig config;
    config.mode = LocalizationMode::Twr;
    config.anchor_survey_sigma_m = survey_sigma;
    LocoPositioningSystem lps(corner_anchors(volume()), nullptr, config, util::Rng(77));
    const geom::Vec3 truth{1.8, 1.6, 1.0};
    lps.initialize_at(truth);
    util::OnlineStats error;
    for (int i = 0; i < 2000; ++i) {
      lps.step(0.01, truth, {});
      if (i > 500) error.add(lps.estimated_position().distance_to(truth));
    }
    return error.mean();
  };
  EXPECT_LT(run(0.0), run(0.15));
}

TEST(Lps, SurveyedAnchorsDifferFromTrue) {
  auto lps = make_lps(LocalizationMode::Twr);
  double total_offset = 0.0;
  for (std::size_t i = 0; i < lps.anchors().size(); ++i) {
    total_offset +=
        lps.anchors()[i].position.distance_to(lps.surveyed_anchors()[i].position);
  }
  EXPECT_GT(total_offset, 0.0);
  EXPECT_LT(total_offset / 8.0, 0.3);  // survey errors are small
}

}  // namespace
}  // namespace remgen::uwb
