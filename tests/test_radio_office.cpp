#include <gtest/gtest.h>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

namespace remgen::radio {
namespace {

TEST(OfficeModel, GeometrySane) {
  const geom::ApartmentModel model = geom::make_office_model();
  EXPECT_NEAR(model.scan_volume.size().x, 6.0, 1e-9);
  EXPECT_NEAR(model.scan_volume.size().z, 2.4, 1e-9);
  EXPECT_TRUE(model.building_bounds.contains(model.scan_volume.min));
  EXPECT_TRUE(model.building_bounds.contains(model.scan_volume.max));
  EXPECT_GT(model.floorplan.walls().size(), 8u);
}

TEST(OfficeModel, MeetingRoomGlassAttenuatesLess) {
  const geom::ApartmentModel model = geom::make_office_model();
  // Into the meeting block: one glass front.
  const double into_meeting =
      model.floorplan.total_penetration_loss_db({3.0, 4.0, 1.2}, {3.0, 5.5, 1.2});
  // Through to the far wing: glass + drywall back wall.
  const double through_block =
      model.floorplan.total_penetration_loss_db({3.0, 4.0, 1.2}, {3.0, 9.0, 1.2});
  EXPECT_GT(into_meeting, 0.0);
  EXPECT_GT(through_block, into_meeting);
}

TEST(OfficeScenario, CorporateSsidSharedByManyMacs) {
  util::Rng rng(1);
  const Scenario office = Scenario::make_office(rng);
  std::size_t corp = 0;
  std::set<MacAddress> macs;
  for (const AccessPoint& ap : office.environment().access_points()) {
    macs.insert(ap.mac);
    if (ap.ssid == "corp-wifi") ++corp;
  }
  EXPECT_GE(corp, 6u);  // this floor + adjacent floors
  EXPECT_EQ(macs.size(), office.environment().access_points().size());
}

TEST(OfficeScenario, CeilingApsAreStrongInVolume) {
  util::Rng rng(2);
  const Scenario office = Scenario::make_office(rng);
  const geom::Vec3 centre = office.scan_volume().center();
  double best = -200.0;
  for (std::size_t i = 0; i < office.environment().access_points().size(); ++i) {
    best = std::max(best, office.environment().mean_rss_dbm(i, centre));
  }
  EXPECT_GT(best, -55.0);  // an enterprise AP a few metres overhead
}

TEST(OfficeScenario, CampaignRunsUnchanged) {
  util::Rng rng(3);
  const Scenario office = Scenario::make_office(rng);
  mission::CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.4};
  const mission::CampaignResult result = mission::run_campaign(office, config, rng);
  EXPECT_GT(result.dataset.size(), 100u);
  for (const mission::UavMissionStats& s : result.uav_stats) {
    EXPECT_EQ(s.waypoints_commanded, 6u);
    EXPECT_FALSE(s.aborted_on_battery);
  }
  // Every sample's position lies in (or hugs) the office scan volume.
  const geom::Aabb roomish(office.scan_volume().min - geom::Vec3{0.5, 0.5, 0.5},
                           office.scan_volume().max + geom::Vec3{0.5, 0.5, 0.5});
  for (const data::Sample& s : result.dataset.samples()) {
    EXPECT_TRUE(roomish.contains(s.position)) << s.position.to_string();
  }
}

TEST(OfficeScenario, Reproducible) {
  util::Rng rng1(7);
  util::Rng rng2(7);
  const Scenario a = Scenario::make_office(rng1);
  const Scenario b = Scenario::make_office(rng2);
  ASSERT_EQ(a.environment().access_points().size(), b.environment().access_points().size());
  for (std::size_t i = 0; i < a.environment().access_points().size(); ++i) {
    EXPECT_EQ(a.environment().access_points()[i].mac,
              b.environment().access_points()[i].mac);
  }
}

}  // namespace
}  // namespace remgen::radio
