#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "radio/scenario.hpp"

namespace remgen::core {
namespace {

data::Sample make_sample(double x, double y, double z, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

TEST(PickUncertain, PrefersUnsampledRegion) {
  // All samples cluster at low x; the highest-uncertainty picks must lie in
  // the unsampled high-x half.
  util::Rng rng(3);
  data::Dataset ds;
  for (int i = 0; i < 60; ++i) {
    ds.add(make_sample(rng.uniform(0.2, 1.2), rng.uniform(0.2, 3.0), rng.uniform(0.2, 1.8),
                       "02:00:00:00:00:0a", -70.0 + rng.gaussian(0, 2.0)));
  }
  const geom::Aabb volume({0, 0, 0}, {3.74, 3.20, 2.10});
  const auto picks = pick_uncertain_locations(ds, volume, 4, 0.4, 0.35, 8);
  ASSERT_EQ(picks.size(), 4u);
  for (const geom::Vec3& p : picks) {
    EXPECT_GT(p.x, 1.5) << p.to_string();
    EXPECT_TRUE(volume.contains(p));
  }
}

TEST(PickUncertain, RespectsMinSeparation) {
  util::Rng rng(5);
  data::Dataset ds;
  for (int i = 0; i < 40; ++i) {
    ds.add(make_sample(rng.uniform(0.2, 3.5), rng.uniform(0.2, 3.0), 1.0,
                       "02:00:00:00:00:0a", -70.0 + rng.gaussian(0, 2.0)));
  }
  const geom::Aabb volume({0, 0, 0}, {3.74, 3.20, 2.10});
  const auto picks = pick_uncertain_locations(ds, volume, 6, 0.8, 0.3, 8);
  for (std::size_t i = 0; i < picks.size(); ++i) {
    for (std::size_t j = i + 1; j < picks.size(); ++j) {
      EXPECT_GE(picks[i].distance_to(picks[j]), 0.8);
    }
  }
}

TEST(PickUncertain, EmptyWhenNoMacSurvivesFilter) {
  data::Dataset ds;
  ds.add(make_sample(1, 1, 1, "02:00:00:00:00:0a", -70.0));
  const geom::Aabb volume({0, 0, 0}, {3.74, 3.20, 2.10});
  EXPECT_TRUE(pick_uncertain_locations(ds, volume, 3, 0.4, 0.35, 8).empty());
}

TEST(AdaptiveCampaign, RunsBootstrapPlusRounds) {
  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  AdaptiveSamplingConfig config;
  config.rounds = 2;
  config.waypoints_per_round = 4;
  const AdaptiveSamplingResult result = run_adaptive_campaign(scenario, config, rng);

  ASSERT_EQ(result.waypoints_per_flight.size(), 3u);  // bootstrap + 2 rounds
  EXPECT_EQ(result.waypoints_per_flight[0], 12u);
  EXPECT_EQ(result.waypoints_per_flight[1], 4u);
  EXPECT_EQ(result.waypoints_per_flight[2], 4u);
  EXPECT_EQ(result.visited.size(), 20u);
  EXPECT_GT(result.dataset.size(), 300u);
  EXPECT_GT(result.final_mean_sigma_db, 0.0);
  EXPECT_LT(result.final_mean_sigma_db, 10.0);
}

TEST(AdaptiveCampaign, MoreRoundsShrinkUncertainty) {
  auto run = [](std::size_t rounds) {
    util::Rng rng(2022);
    const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
    AdaptiveSamplingConfig config;
    config.rounds = rounds;
    config.waypoints_per_round = 5;
    return run_adaptive_campaign(scenario, config, rng).final_mean_sigma_db;
  };
  EXPECT_LT(run(4), run(1));
}

}  // namespace
}  // namespace remgen::core
