#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/stats.hpp"

namespace remgen::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 4.5);
  EXPECT_EQ(s.max(), 4.5);
}

TEST(OnlineStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  OnlineStats s;
  for (const double x : xs) s.add(x);
  const double mean = 31.0 / 5.0;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= 4.0;  // unbiased
  EXPECT_DOUBLE_EQ(s.mean(), mean);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(-1.0);
  EXPECT_DOUBLE_EQ(s.mean(), -2.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.max(), -1.0);
}

TEST(Rmse, PerfectPrediction) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> pred{1.0, 2.0};
  const std::vector<double> truth{0.0, 0.0};
  EXPECT_DOUBLE_EQ(rmse(pred, truth), std::sqrt(2.5));
}

TEST(Mae, KnownValue) {
  const std::vector<double> pred{1.0, -2.0};
  const std::vector<double> truth{0.0, 0.0};
  EXPECT_DOUBLE_EQ(mae(pred, truth), 1.5);
}

TEST(Mean, KnownValue) {
  const std::vector<double> xs{2.0, 4.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
}

TEST(Percentile, Endpoints) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Percentile, MedianAndInterpolation) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
}

TEST(Percentile, EmptyInputIsZero) {
  // Matches the Percentiles convention: latency reports over zero requests
  // are all-zero, not a contract violation.
  EXPECT_EQ(percentile({}, 50.0), 0.0);
  EXPECT_EQ(percentile({}, 99.9), 0.0);
}

TEST(Percentiles, EmptyIsAllZero) {
  const std::vector<double> empty;
  const Percentiles p = percentiles(empty);
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.p90, 0.0);
  EXPECT_EQ(p.p99, 0.0);
  EXPECT_EQ(p.p999, 0.0);
}

TEST(Percentiles, SingleElementIsThatElement) {
  const std::vector<double> xs{7.25};
  const Percentiles p = percentiles(xs);
  EXPECT_EQ(p.p50, 7.25);
  EXPECT_EQ(p.p90, 7.25);
  EXPECT_EQ(p.p99, 7.25);
  EXPECT_EQ(p.p999, 7.25);
}

TEST(Percentiles, InterpolatesBetweenRanks) {
  // 0..100 inclusive: rank q/100*(n-1) lands exactly on the value q.
  std::vector<double> xs;
  for (int i = 100; i >= 0; --i) xs.push_back(i);
  const Percentiles p = percentiles(xs);
  EXPECT_DOUBLE_EQ(p.p50, 50.0);
  EXPECT_DOUBLE_EQ(p.p90, 90.0);
  EXPECT_DOUBLE_EQ(p.p99, 99.0);
  EXPECT_DOUBLE_EQ(p.p999, 99.9);
}

TEST(Percentiles, InterpolatedFraction) {
  // Two elements: p50 = 1.5, p90 = 1.9, p99 = 1.99 by linear interpolation.
  const std::vector<double> xs{2.0, 1.0};
  const Percentiles p = percentiles(xs);
  EXPECT_DOUBLE_EQ(p.p50, 1.5);
  EXPECT_DOUBLE_EQ(p.p90, 1.9);
  EXPECT_DOUBLE_EQ(p.p99, 1.99);
  EXPECT_DOUBLE_EQ(p.p999, 1.999);
}

TEST(Percentiles, AgreesWithPercentileFunction) {
  const std::vector<double> xs{5.0, 3.0, 9.0, 1.0, 7.0, 2.0, 8.0};
  const Percentiles p = percentiles(xs);
  std::vector<double> sorted = xs;
  EXPECT_DOUBLE_EQ(p.p50, percentile(sorted, 50.0));
  EXPECT_DOUBLE_EQ(p.p90, percentile(sorted, 90.0));
  EXPECT_DOUBLE_EQ(p.p99, percentile(sorted, 99.0));
  EXPECT_DOUBLE_EQ(p.p999, percentile(sorted, 99.9));
}

TEST(HistogramTest, BasicBinning) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // at hi -> overflow (half-open)
  h.add(1.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(-1.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), -1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), -0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 1.0);
}

// Property: histogram bin totals always equal the number of in-range adds.
TEST(HistogramTest, NanGoesToItsOwnBucket) {
  // NaN compares false against both range edges, so before the dedicated
  // bucket it fell through to the bin-index cast — undefined behaviour.
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(-std::numeric_limits<double>::quiet_NaN());
  h.add(5.0);
  EXPECT_EQ(h.nan_count(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  std::size_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.bin_count(b);
  EXPECT_EQ(binned, 1u);
}

TEST(HistogramTest, InfinitiesCountAsUnderOverflow) {
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.nan_count(), 0u);
}

class HistogramPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramPropertyTest, CountsAreConserved) {
  const std::size_t bins = GetParam();
  Histogram h(0.0, 100.0, bins);
  std::size_t in_range = 0;
  for (int i = -20; i < 140; ++i) {
    h.add(static_cast<double>(i));
    if (i >= 0 && i < 100) ++in_range;
  }
  std::size_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.bin_count(b);
  EXPECT_EQ(binned, in_range);
  EXPECT_EQ(h.total(), 160u);
}

INSTANTIATE_TEST_SUITE_P(BinCounts, HistogramPropertyTest, ::testing::Values(1, 2, 7, 100));

}  // namespace
}  // namespace remgen::util
