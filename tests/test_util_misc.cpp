// Coverage for the small util pieces: logging, the simulation clock, and
// contract checking.
#include <gtest/gtest.h>

#include "util/contracts.hpp"
#include "util/log.hpp"
#include "util/sim_clock.hpp"

namespace remgen::util {
namespace {

TEST(Log, LevelFilterRoundTrip) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(LogLevel::Trace);
  EXPECT_EQ(log_level(), LogLevel::Trace);
  set_log_level(before);
}

TEST(Log, EmittingBelowThresholdIsHarmless) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Off);
  // Must not crash or allocate the formatted message visibly; just smoke it.
  logf(LogLevel::Error, "test", "value = {}", 42);
  log_message(LogLevel::Warn, "test", "suppressed");
  set_log_level(before);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(0.5);
  clock.advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 0.75);
  clock.advance(0.0);  // zero step allowed
  EXPECT_DOUBLE_EQ(clock.now(), 0.75);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(SimClockDeathTest, NegativeAdvanceViolatesContract) {
  SimClock clock;
  EXPECT_DEATH(clock.advance(-0.1), "precondition");
}

TEST(ContractsDeathTest, ExpectsAborts) {
  EXPECT_DEATH(REMGEN_EXPECTS(1 == 2), "precondition");
}

TEST(Contracts, PassingConditionsAreSilent) {
  REMGEN_EXPECTS(true);
  REMGEN_ENSURES(2 + 2 == 4);
}

}  // namespace
}  // namespace remgen::util
