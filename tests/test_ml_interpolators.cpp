#include <gtest/gtest.h>

#include "ml/idw.hpp"
#include "ml/kriging.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace remgen::ml {
namespace {

data::Sample make_sample(double x, double y, double z, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

constexpr const char* kMacA = "02:00:00:00:00:0a";

std::vector<data::Sample> smooth_field(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  util::Rng rng(seed);
  std::vector<data::Sample> samples;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    samples.push_back(
        make_sample(x, y, 1.0, kMacA, -60.0 - 3.0 * x - 2.0 * y + rng.gaussian(0.0, noise)));
  }
  return samples;
}

TEST(Idw, ExactAtSamplePoints) {
  IdwRegressor idw;
  const auto train = smooth_field(30, 1);
  idw.fit(train);
  for (const data::Sample& s : train) {
    EXPECT_DOUBLE_EQ(idw.predict(s), s.rss_dbm);
  }
}

TEST(Idw, PredictionWithinSampleRange) {
  IdwRegressor idw;
  const auto train = smooth_field(50, 2);
  double lo = 1e9;
  double hi = -1e9;
  for (const auto& s : train) {
    lo = std::min(lo, s.rss_dbm);
    hi = std::max(hi, s.rss_dbm);
  }
  idw.fit(train);
  util::Rng rng(3);
  for (int i = 0; i < 30; ++i) {
    const double pred =
        idw.predict(make_sample(rng.uniform(0, 4), rng.uniform(0, 3), 1.0, kMacA, 0));
    EXPECT_GE(pred, lo);  // IDW is a convex combination of sample values
    EXPECT_LE(pred, hi);
  }
}

TEST(Idw, InterpolatesSmoothField) {
  IdwRegressor idw(IdwConfig{.power = 2.0, .max_neighbors = 8});
  const auto train = smooth_field(300, 4);
  idw.fit(train);
  const auto test = smooth_field(50, 5);
  EXPECT_LT(evaluate(idw, test).rmse, 1.0);
}

TEST(Idw, UnknownMacFallsBack) {
  IdwRegressor idw;
  const auto train = smooth_field(20, 6);
  idw.fit(train);
  const data::Sample q = make_sample(1, 1, 1, "02:ff:ff:ff:ff:ff", 0);
  EXPECT_NO_THROW((void)idw.predict(q));
}

TEST(Variogram, GammaIsZeroAtZeroLag) {
  const Variogram v{0.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(v.gamma(0.0), 0.0);
}

TEST(Variogram, GammaIncreasesWithLag) {
  const Variogram v{0.2, 3.0, 1.5};
  double prev = -1.0;
  for (double h = 0.1; h < 10.0; h += 0.5) {
    const double g = v.gamma(h);
    EXPECT_GT(g, prev);
    prev = g;
  }
  // Approaches nugget + partial sill.
  EXPECT_NEAR(v.gamma(100.0), 3.2, 1e-6);
}

TEST(Variogram, CovariancePlusGammaIsSill) {
  const Variogram v{0.2, 3.0, 1.5};
  for (double h = 0.1; h < 5.0; h += 0.7) {
    EXPECT_NEAR(v.covariance(h) + v.gamma(h), 3.2, 1e-12);
  }
}

TEST(Variogram, FitRecoversRange) {
  // Synthesise exact gammas from a known model and re-fit.
  const Variogram truth{0.0, 4.0, 2.0};
  std::vector<double> lags;
  std::vector<double> gammas;
  for (double h = 0.25; h <= 6.0; h += 0.25) {
    lags.push_back(h);
    gammas.push_back(truth.gamma(h));
  }
  const Variogram fitted = fit_variogram(lags, gammas, 4.0);
  EXPECT_NEAR(fitted.range_m, 2.0, 0.8);
  EXPECT_LT(fitted.nugget, 1.0);
}

TEST(Kriging, InterpolatesSmoothFieldWell) {
  KrigingRegressor kriging;
  const auto train = smooth_field(300, 7, 0.5);
  kriging.fit(train);
  const auto test = smooth_field(50, 8);
  EXPECT_LT(evaluate(kriging, test).rmse, 1.5);
}

TEST(Kriging, SigmaSmallNearSamplesLargeFarAway) {
  KrigingRegressor kriging;
  // Cluster all training samples in one corner.
  std::vector<data::Sample> train;
  util::Rng rng(9);
  for (int i = 0; i < 60; ++i) {
    train.push_back(make_sample(rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0), 1.0, kMacA,
                                -65.0 + rng.gaussian(0, 2.0)));
  }
  kriging.fit(train);
  const auto near = kriging.predict_with_sigma(make_sample(0.5, 0.5, 1.0, kMacA, 0));
  const auto far = kriging.predict_with_sigma(make_sample(3.9, 2.9, 1.0, kMacA, 0));
  EXPECT_LT(near.sigma, far.sigma);
}

TEST(Kriging, FallsBackForSparseMacs) {
  KrigingConfig config;
  config.min_samples = 10;
  KrigingRegressor kriging(config);
  const auto train = smooth_field(5, 11);  // too few samples
  kriging.fit(train);
  const auto p = kriging.predict_with_sigma(make_sample(1, 1, 1, kMacA, 0));
  EXPECT_DOUBLE_EQ(p.sigma, 0.0);  // fallback path
  EXPECT_FALSE(kriging.variogram_for(train[0].mac).has_value());
}

TEST(Kriging, VariogramExposedForFittedMacs) {
  KrigingRegressor kriging;
  const auto train = smooth_field(100, 13);
  kriging.fit(train);
  const auto v = kriging.variogram_for(train[0].mac);
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(v->partial_sill + v->nugget, 0.0);
  EXPECT_GT(v->range_m, 0.0);
}

TEST(Kriging, BeatsBaselineMeanOnStructuredField) {
  const auto train = smooth_field(250, 15, 0.5);
  const auto test = smooth_field(60, 16);
  KrigingRegressor kriging;
  kriging.fit(train);
  // Compare against the constant mean of the training field.
  double mean = 0.0;
  for (const auto& s : train) mean += s.rss_dbm;
  mean /= static_cast<double>(train.size());
  double baseline_se = 0.0;
  for (const auto& s : test) baseline_se += (s.rss_dbm - mean) * (s.rss_dbm - mean);
  const double baseline_rmse = std::sqrt(baseline_se / test.size());
  EXPECT_LT(evaluate(kriging, test).rmse, 0.5 * baseline_rmse);
}

}  // namespace
}  // namespace remgen::ml
