#include <gtest/gtest.h>

#include "radio/interference.hpp"

namespace remgen::radio {
namespace {

TEST(Interference, DisabledRadioCausesNoLoss) {
  CrazyradioInterference interference;
  interference.set_enabled(false);
  for (int ch = 1; ch <= kNumWifiChannels; ++ch) {
    EXPECT_DOUBLE_EQ(interference.beacon_loss_probability(ch), 0.0);
  }
}

TEST(Interference, EnabledRadioAffectsEveryChannel) {
  // The paper's Figure 5 finding: significant interference at every
  // frequency, even far from the carrier (front-end desense).
  CrazyradioInterference interference;
  for (const double carrier : {2400.0, 2425.0, 2450.0, 2475.0, 2500.0, 2525.0}) {
    interference.set_carrier_mhz(carrier);
    for (int ch = 1; ch <= kNumWifiChannels; ++ch) {
      EXPECT_GT(interference.beacon_loss_probability(ch), 0.2)
          << "carrier " << carrier << " channel " << ch;
    }
  }
}

TEST(Interference, CoChannelWorseThanFarCarrier) {
  CrazyradioInterference interference;
  interference.set_carrier_mhz(2437.0);  // centre of channel 6
  const double cochannel = interference.beacon_loss_probability(6);
  const double far = interference.beacon_loss_probability(13);
  EXPECT_GT(cochannel, far);
}

TEST(Interference, LossBoundedByDutyCycle) {
  CrazyradioConfig config;
  config.duty_cycle = 0.5;
  CrazyradioInterference interference(config);
  for (int ch = 1; ch <= kNumWifiChannels; ++ch) {
    EXPECT_LE(interference.beacon_loss_probability(ch), 0.5);
  }
}

TEST(Interference, ZeroDutyCycleMeansNoLoss) {
  CrazyradioConfig config;
  config.duty_cycle = 0.0;
  CrazyradioInterference interference(config);
  EXPECT_DOUBLE_EQ(interference.beacon_loss_probability(6), 0.0);
}

TEST(Interference, LossInterpolatesBetweenDesenseAndInband) {
  CrazyradioConfig config;
  config.duty_cycle = 1.0;
  config.desense_loss = 0.3;
  config.inband_loss = 0.9;
  CrazyradioInterference interference(config);
  interference.set_carrier_mhz(2437.0);
  EXPECT_NEAR(interference.beacon_loss_probability(6), 0.9, 1e-12);   // full overlap
  EXPECT_NEAR(interference.beacon_loss_probability(13), 0.3, 1e-12);  // no overlap
}

TEST(Interference, CarrierAccessors) {
  CrazyradioInterference interference;
  interference.set_carrier_mhz(2475.0);
  EXPECT_DOUBLE_EQ(interference.carrier_mhz(), 2475.0);
  EXPECT_TRUE(interference.enabled());
  interference.set_enabled(false);
  EXPECT_FALSE(interference.enabled());
}

}  // namespace
}  // namespace remgen::radio
