#include <gtest/gtest.h>

#include <set>

#include "radio/ble.hpp"
#include "util/stats.hpp"

namespace remgen::radio {
namespace {

BleDevice make_device(const geom::Vec3& position, double tx = 0.0, double interval = 0.1) {
  static util::Rng mac_rng(99);
  BleDevice d;
  d.address = MacAddress::random(mac_rng);
  d.name = "unit-beacon";
  d.tx_power_dbm = tx;
  d.adv_interval_s = interval;
  d.position = position;
  return d;
}

struct World {
  geom::Floorplan floorplan;
  BleEnvironmentConfig config;
  util::Rng rng{31};

  World() {
    config.shadowing_sigma_db = 0.0;
    config.clutter_db_per_m = 0.0;
    config.fading_sigma_db = 0.5;
  }

  BleEnvironment build(std::vector<BleDevice> devices) {
    return BleEnvironment(floorplan, std::move(devices),
                          geom::Aabb({-1, -1, 0}, {11, 11, 3}), config, rng);
  }
};

TEST(BleChannels, CenterFrequencies) {
  EXPECT_DOUBLE_EQ(ble_adv_channel_center_mhz(37), 2402.0);
  EXPECT_DOUBLE_EQ(ble_adv_channel_center_mhz(38), 2426.0);
  EXPECT_DOUBLE_EQ(ble_adv_channel_center_mhz(39), 2480.0);
}

TEST(BleEnvironmentTest, MeanRssFollowsPathLoss) {
  World world;
  const BleEnvironment env = world.build({make_device({0, 0, 1}, 0.0)});
  EXPECT_NEAR(env.mean_rss_dbm(0, {1.0, 0.0, 1.0}), -40.2, 1e-9);
  EXPECT_NEAR(env.mean_rss_dbm(0, {10.0, 0.0, 1.0}), -60.2, 1e-9);
}

TEST(BleEnvironmentTest, StrongDeviceDetected) {
  World world;
  const BleEnvironment env = world.build({make_device({0, 0, 1}, 0.0, 0.05)});
  util::Rng rng(1);
  int detected = 0;
  for (int i = 0; i < 40; ++i) {
    detected += static_cast<int>(env.scan({1.5, 0.0, 1.0}, 1.8, nullptr, rng).size());
  }
  EXPECT_GT(detected, 35);
}

TEST(BleEnvironmentTest, DetectionChannelIsAdvertisingChannel) {
  World world;
  const BleEnvironment env = world.build({make_device({0, 0, 1}, 0.0, 0.05)});
  util::Rng rng(2);
  const auto detections = env.scan({1.0, 0.0, 1.0}, 1.8, nullptr, rng);
  ASSERT_FALSE(detections.empty());
  EXPECT_TRUE(detections[0].channel == 37 || detections[0].channel == 38 ||
              detections[0].channel == 39);
}

TEST(BleEnvironmentTest, SlowAdvertiserDetectedLessOften) {
  World world;
  // Marginal-ish RSS plus very different advertising rates.
  const BleEnvironment env =
      world.build({make_device({0, 0, 1}, 0.0, 0.05), make_device({0, 0, 1}, 0.0, 2.5)});
  util::Rng rng(3);
  int fast = 0;
  int slow = 0;
  for (int i = 0; i < 150; ++i) {
    for (const BleDetection& d : env.scan({2.0, 0.0, 1.0}, 1.8, nullptr, rng)) {
      (d.device_index == 0 ? fast : slow) += 1;
    }
  }
  EXPECT_GT(fast, slow);
}

TEST(BleEnvironmentTest, CrazyradioInterferesWithAdvChannels) {
  World world;
  world.config.fading_sigma_db = 3.0;
  // Marginal device so interference can flip detections.
  const BleEnvironment env = world.build({make_device({9.0, 9.0, 1.0}, -24.0, 0.05)});
  CrazyradioConfig int_config;
  int_config.duty_cycle = 1.0;
  int_config.inband_loss = 1.0;
  int_config.desense_loss = 1.0;
  const CrazyradioInterference interference(int_config);
  util::Rng rng_off(4);
  util::Rng rng_on(4);
  int detected_off = 0;
  int detected_on = 0;
  for (int i = 0; i < 200; ++i) {
    detected_off += static_cast<int>(env.scan({0.5, 0.5, 1.0}, 1.8, nullptr, rng_off).size());
    detected_on +=
        static_cast<int>(env.scan({0.5, 0.5, 1.0}, 1.8, &interference, rng_on).size());
  }
  EXPECT_GT(detected_off, 0);
  EXPECT_EQ(detected_on, 0);  // total beacon loss kills every detection
}

TEST(BleEnvironmentTest, WallsAttenuate) {
  World world;
  world.floorplan.add_wall(geom::Wall::vertical({1.0, -10.0, 0.0}, {1.0, 10.0, 0.0}, 0.0, 3.0,
                                                geom::WallMaterial::Concrete));
  const BleEnvironment env = world.build({make_device({0, 0, 1}, 0.0)});
  EXPECT_NEAR(env.mean_rss_dbm(0, {2.0, 0.0, 1.0}),
              -(40.2 + 10.0 * 2.0 * std::log10(2.0)) - 12.0, 1e-9);
}

TEST(BlePopulation, CountsAndBounds) {
  util::Rng rng(7);
  const geom::Aabb bounds({-6, -10, -2.6}, {20, 10, 7.8});
  const auto devices = make_ble_population(bounds, BlePopulationConfig{}, rng);
  EXPECT_EQ(devices.size(), 28u);
  std::set<MacAddress> addresses;
  for (const BleDevice& d : devices) {
    addresses.insert(d.address);
    EXPECT_TRUE(bounds.contains(d.position)) << d.position.to_string();
    EXPECT_GT(d.adv_interval_s, 0.0);
    EXPECT_FALSE(d.name.empty());
  }
  EXPECT_EQ(addresses.size(), devices.size());
}

TEST(BleOverlap, CrazyradioAt2402HitsChannel37Hardest) {
  CrazyradioInterference interference;
  interference.set_carrier_mhz(2402.0);
  const double ch37 = interference.beacon_loss_probability_mhz(2402.0, 2.0);
  const double ch39 = interference.beacon_loss_probability_mhz(2480.0, 2.0);
  EXPECT_GT(ch37, ch39);
}

}  // namespace
}  // namespace remgen::radio
