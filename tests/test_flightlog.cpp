// Flight recorder: JSONL round-trip over the full event taxonomy, ring-buffer
// and merge-order semantics, the determinism contract (byte-identical export
// across thread counts under the harsh fault profile), agreement between the
// event log and the campaign's WaypointCoverage, and the health report.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/health_report.hpp"
#include "exec/config.hpp"
#include "fault/fault.hpp"
#include "flightlog/flightlog.hpp"
#include "mission/campaign.hpp"
#include "radio/scenario.hpp"

namespace remgen {
namespace {

// -- JSONL ------------------------------------------------------------------

/// One event of every kind, with payload values that survive serialisation
/// (WaypointArrive/Hold omit the leave-only report fields; UwbAnchorDropout
/// omits sigma_m — both stay at their defaults here so equality holds).
std::vector<flightlog::Event> sample_events() {
  using namespace flightlog;
  std::vector<Event> events;
  auto add = [&](EventKind kind, std::int32_t uav, double t_s, Payload payload) {
    events.push_back(Event{kind, uav, events.size(), t_s, std::move(payload)});
  };
  add(EventKind::WaypointArrive, 0, 1.25, WaypointEvent{3, {1.5, 2.5, 1.0}});
  add(EventKind::WaypointHold, 0, 1.5, WaypointEvent{3, {1.5, 2.5, 1.0}});
  add(EventKind::WaypointLeave, 0, 9.75,
      WaypointEvent{3, {1.5, 2.5, 1.0}, 42, 2, true});
  add(EventKind::RadioOff, 1, 2.0, LinkEvent{5, 0});
  add(EventKind::RadioOn, 1, 4.125, LinkEvent{0, 7});
  add(EventKind::UwbFix, 1, 4.5, UwbEvent{-1, 0.0625, 0});
  add(EventKind::UwbAnchorDropout, 1, 0.0, UwbEvent{2, 0.0, 201});
  add(EventKind::ScanAttempt, 0, 5.0, ScanEvent{3, 0, 0.0});
  add(EventKind::ScanRetry, 0, 8.0, ScanEvent{3, 1, 0.0});
  add(EventKind::ScanBackoff, 0, 8.25, ScanEvent{3, 1, 0.4});
  add(EventKind::ScanWatchdog, 0, 23.25, ScanEvent{3, 1, 15.0});
  add(EventKind::ScanresAccepted, 0, 6.0,
      SampleEvent{3, "aa:bb:cc:dd:ee:ff", -67.0, {}});
  add(EventKind::ScanresDropped, 0, 6.5, SampleEvent{3, {}, 0.0, "malformed"});
  add(EventKind::FaultInjected, 1, 3.0, FaultEvent{"crtp", "injected_drop"});
  add(EventKind::BatteryState, 1, 30.0, BatteryEvent{0.55, false});
  add(EventKind::RescueRound, -1, 0.0, CampaignEvent{1, 4, 0, 0, "rescue"});
  add(EventKind::CoverageSummary, -1, 0.0, CampaignEvent{0, 12, 11, 2, "final"});
  add(EventKind::PipelineStage, -1, 0.0, CampaignEvent{0, 512, 0, 0, "campaign"});
  return events;
}

TEST(FlightlogJsonl, RoundTripCoversEveryKind) {
  const std::vector<flightlog::Event> original = sample_events();
  std::stringstream stream;
  flightlog::write_jsonl(stream, original);
  const std::vector<flightlog::Event> parsed = flightlog::read_jsonl(stream);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed[i], original[i]) << flightlog::event_kind_name(original[i].kind);
  }
}

TEST(FlightlogJsonl, WireNamesRoundTripThroughTheKindTable) {
  for (const flightlog::Event& e : sample_events()) {
    const char* name = flightlog::event_kind_name(e.kind);
    const auto back = flightlog::event_kind_from_name(name);
    ASSERT_TRUE(back) << name;
    EXPECT_EQ(*back, e.kind) << name;
  }
}

TEST(FlightlogJsonl, UnknownKindAndGarbageLinesThrowWithLineNumbers) {
  std::stringstream bad_kind("{\"kind\": \"teleport\", \"seq\": 0, \"t\": 0, \"uav\": 0}\n");
  EXPECT_THROW((void)flightlog::read_jsonl(bad_kind), std::runtime_error);
  std::stringstream garbage("\n{\"kind\": \"radio_off\", \"seq\": 0, \"t\": 0, \"uav\": 0}\nnot json\n");
  try {
    (void)flightlog::read_jsonl(garbage);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos) << error.what();
  }
}

TEST(FlightlogJsonl, BlankLinesAreSkipped) {
  const std::vector<flightlog::Event> original = sample_events();
  std::stringstream stream;
  stream << "\n  \t\n";
  flightlog::write_jsonl(stream, original);
  stream << "\n";
  EXPECT_EQ(flightlog::read_jsonl(stream), original);
}

// -- Recorder ---------------------------------------------------------------

TEST(FlightlogRecorder, MergedInterleavesStreamsInUavThenSeqOrder) {
  flightlog::Recorder recorder;
  recorder.record(flightlog::EventKind::ScanAttempt, 2, 1.0, flightlog::ScanEvent{0, 0, 0.0});
  recorder.record(flightlog::EventKind::RescueRound, -1, 0.0,
                  flightlog::CampaignEvent{1, 3, 0, 0, "rescue"});
  recorder.record(flightlog::EventKind::ScanAttempt, 0, 1.0, flightlog::ScanEvent{0, 0, 0.0});
  recorder.record(flightlog::EventKind::ScanRetry, 0, 2.0, flightlog::ScanEvent{0, 1, 0.0});
  const std::vector<flightlog::Event> merged = recorder.merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].uav, -1);
  EXPECT_EQ(merged[1].uav, 0);
  EXPECT_EQ(merged[2].uav, 0);
  EXPECT_EQ(merged[3].uav, 2);
  EXPECT_EQ(merged[1].seq, 0u);
  EXPECT_EQ(merged[2].seq, 1u);
}

TEST(FlightlogRecorder, FullRingOverwritesOldestAndCountsDrops) {
  flightlog::Recorder recorder;
  recorder.set_stream_capacity(4);
  for (int i = 0; i < 6; ++i) {
    recorder.record(flightlog::EventKind::ScanAttempt, 0, static_cast<double>(i),
                    flightlog::ScanEvent{i, 0, 0.0});
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const std::vector<flightlog::Event> merged = recorder.merged();
  ASSERT_EQ(merged.size(), 4u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].seq, i + 2) << i;  // oldest two were overwritten
  }
}

// -- Campaign integration ---------------------------------------------------

mission::CampaignConfig faulted_config(const char* profile) {
  mission::CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  config.faults = *fault::make_fault_plan(profile, 11);
  config.mission.scan_retries = 3;
  config.mission.scan_retry_backoff_s = 0.2;
  config.mission.scan_watchdog_s = 15.0;
  return config;
}

mission::CampaignResult run_faulted(const char* profile) {
  util::Rng rng(2024);
  const radio::Scenario s = radio::Scenario::make_apartment(rng);
  return mission::run_campaign(s, faulted_config(profile), rng);
}

/// Clears the global recorder and restores the enabled flag and exec width,
/// so flight-recorder state never leaks across tests in this binary.
class FlightlogCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = exec::thread_count();
    flightlog::recorder().clear();
    flightlog::set_enabled(true);
  }
  void TearDown() override {
    flightlog::set_enabled(false);
    flightlog::recorder().clear();
    exec::set_thread_count(previous_threads_);
  }

 private:
  std::size_t previous_threads_ = 1;
};

TEST_F(FlightlogCampaignTest, DisabledRecorderRecordsNothing) {
  flightlog::set_enabled(false);
  (void)run_faulted("harsh");
  EXPECT_EQ(flightlog::recorder().size(), 0u);
}

TEST_F(FlightlogCampaignTest, HarshCampaignLogIsByteIdenticalAcrossThreadCounts) {
  if (!flightlog::compiled()) GTEST_SKIP() << "flight recorder compiled out";
  auto exported = [&] {
    flightlog::recorder().clear();
    (void)run_faulted("harsh");
    std::ostringstream out;
    const std::vector<flightlog::Event> events = flightlog::recorder().merged();
    flightlog::write_jsonl(out, events);
    return out.str();
  };
  exec::set_thread_count(1);
  const std::string sequential = exported();
  exec::set_thread_count(4);
  const std::string parallel = exported();
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
}

TEST_F(FlightlogCampaignTest, LogAgreesWithWaypointCoverage) {
  if (!flightlog::compiled()) GTEST_SKIP() << "flight recorder compiled out";
  const mission::CampaignResult result = run_faulted("harsh");
  const std::vector<flightlog::Event> events = flightlog::recorder().merged();
  ASSERT_FALSE(events.empty());

  std::size_t covered = 0;
  std::size_t rescued = 0;
  for (const mission::WaypointCoverage& c : result.coverage) {
    if (c.covered) ++covered;
    if (c.rescued) ++rescued;
  }

  // The closing CoverageSummary carries the same tallies as WaypointCoverage.
  const flightlog::CampaignEvent* summary = nullptr;
  for (const flightlog::Event& e : events) {
    if (e.kind == flightlog::EventKind::CoverageSummary) {
      summary = &std::get<flightlog::CampaignEvent>(e.payload);
    }
  }
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->waypoints, result.coverage.size());
  EXPECT_EQ(summary->covered, covered);
  EXPECT_EQ(summary->rescued, rescued);

  // Every waypoint an owner covered itself closes with a matching
  // WaypointLeave in that owner's stream (rescued waypoints close in the
  // rescue UAV's stream instead).
  std::map<std::pair<std::int32_t, std::int32_t>, const flightlog::WaypointEvent*> leaves;
  for (const flightlog::Event& e : events) {
    if (e.kind != flightlog::EventKind::WaypointLeave) continue;
    leaves[{e.uav, std::get<flightlog::WaypointEvent>(e.payload).index}] =
        &std::get<flightlog::WaypointEvent>(e.payload);
  }
  for (const mission::WaypointCoverage& c : result.coverage) {
    if (!c.covered || c.rescued) continue;
    const auto it = leaves.find({static_cast<std::int32_t>(c.uav),
                                 static_cast<std::int32_t>(c.waypoint_index)});
    ASSERT_NE(it, leaves.end()) << "uav " << c.uav << " wp " << c.waypoint_index;
    EXPECT_TRUE(it->second->covered);
    EXPECT_EQ(it->second->samples, c.samples);
    EXPECT_EQ(it->second->attempts, c.attempts);
  }
}

TEST_F(FlightlogCampaignTest, HarshCampaignRecordsFaultInjections) {
  if (!flightlog::compiled()) GTEST_SKIP() << "flight recorder compiled out";
  (void)run_faulted("harsh");
  std::size_t faults = 0;
  for (const flightlog::Event& e : flightlog::recorder().merged()) {
    if (e.kind == flightlog::EventKind::FaultInjected) ++faults;
  }
  EXPECT_GT(faults, 0u);
}

// -- Health report ----------------------------------------------------------

TEST_F(FlightlogCampaignTest, HealthReportIsDeterministicAndComplete) {
  const mission::CampaignResult result = run_faulted("lossy");
  const std::vector<flightlog::Event> events = flightlog::recorder().merged();
  const obs::MetricsSnapshot metrics = obs::registry().snapshot();
  core::HealthReportOptions options;
  options.model_name = "knn-onehot-x3-k16";
  options.holdout = ml::RegressionMetrics{3.5, 2.75, 0.8125};

  auto render = [&] {
    std::ostringstream out;
    core::write_health_report(out, result, events, metrics, options);
    return out.str();
  };
  const std::string report = render();
  EXPECT_EQ(report, render());  // same inputs, same bytes

  for (const char* heading :
       {"# Campaign health report", "## Overview", "## Per-waypoint coverage",
        "## Fault-injection timeline", "## Link & scan health",
        "## Per-MAC sample counts", "## REM model error"}) {
    EXPECT_NE(report.find(heading), std::string::npos) << heading;
  }
  // One coverage row per waypoint, and the holdout metrics we passed in.
  for (const mission::WaypointCoverage& c : result.coverage) {
    const std::string cell = "| " + std::to_string(c.uav) + " | " +
                             std::to_string(c.waypoint_index) + " | ";
    EXPECT_NE(report.find(cell), std::string::npos) << cell;
  }
  EXPECT_NE(report.find("knn-onehot-x3-k16"), std::string::npos);
}

TEST_F(FlightlogCampaignTest, HealthReportDegradesWithoutEvents) {
  const mission::CampaignResult result = run_faulted("lossy");
  std::ostringstream out;
  core::write_health_report(out, result, {}, obs::MetricsSnapshot{});
  const std::string report = out.str();
  EXPECT_NE(report.find("# Campaign health report"), std::string::npos);
  EXPECT_NE(report.find("not evaluated"), std::string::npos);
}

}  // namespace
}  // namespace remgen
