#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <vector>

#include "core/rem_builder.hpp"
#include "ml/model_zoo.hpp"
#include "ml/serialize.hpp"
#include "store/snapshot.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace remgen::store {
namespace {

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";

data::Sample make_sample(double x, double y, double z, const char* mac, double rss,
                         int channel = 6) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = channel;
  s.ssid = "net";
  s.rss_dbm = rss;
  return s;
}

data::Dataset synthetic_dataset(std::size_t per_mac = 40) {
  util::Rng rng(21);
  data::Dataset ds;
  for (std::size_t i = 0; i < per_mac; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    ds.add(make_sample(x, y, z, kMacA, -55.0 - 4.0 * x + rng.gaussian(0, 1.0), 6));
    ds.add(make_sample(x, y, z, kMacB, -75.0 - 2.0 * y + rng.gaussian(0, 1.0), 11));
  }
  return ds;
}

std::vector<data::Sample> query_points() {
  util::Rng rng(77);
  std::vector<data::Sample> queries;
  for (int i = 0; i < 25; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    queries.push_back(make_sample(x, y, z, i % 2 == 0 ? kMacA : kMacB, 0.0, i % 2 == 0 ? 6 : 11));
  }
  return queries;
}

/// Bit pattern of a double: exact equality including signed zero.
std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// --- Model round-trips: every zoo estimator must predict bit-identically
// --- after save -> load into a fresh instance.

class StoreModelRoundTrip : public ::testing::TestWithParam<ml::ModelKind> {};

TEST_P(StoreModelRoundTrip, PredictionsBitIdenticalAfterReload) {
  const data::Dataset ds = synthetic_dataset();
  const auto model = ml::make_model(GetParam());
  model->fit(ds.samples());

  util::BinaryWriter w;
  ml::save_model(w, *model);
  util::BinaryReader r(w.buffer());
  const auto loaded = ml::load_model(r);
  EXPECT_EQ(r.remaining(), 0u) << "loader must consume the exact payload";

  for (const data::Sample& q : query_points()) {
    EXPECT_EQ(bits(model->predict(q)), bits(loaded->predict(q)))
        << ml::model_kind_name(GetParam()) << " diverged at (" << q.position.x << ", "
        << q.position.y << ", " << q.position.z << ")";
  }
}

TEST_P(StoreModelRoundTrip, SaveIsDeterministic) {
  const data::Dataset ds = synthetic_dataset();
  const auto model = ml::make_model(GetParam());
  model->fit(ds.samples());
  util::BinaryWriter first;
  util::BinaryWriter second;
  ml::save_model(first, *model);
  ml::save_model(second, *model);
  EXPECT_EQ(first.buffer(), second.buffer());
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, StoreModelRoundTrip,
                         ::testing::ValuesIn(ml::all_model_kinds(true)),
                         [](const auto& info) {
                           std::string name = ml::model_kind_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

// --- Snapshot container ------------------------------------------------

Snapshot make_snapshot(ml::ModelKind kind = ml::ModelKind::PerMacKnn) {
  const data::Dataset ds = synthetic_dataset();
  Snapshot snapshot;
  snapshot.dataset = ds.filter_min_samples_per_mac(1);
  auto model = ml::make_model(kind);
  core::RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  snapshot.rem.emplace(
      core::build_rem(ds, *model, geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}), config));
  snapshot.model = std::move(model);
  return snapshot;
}

std::string snapshot_bytes(const Snapshot& snapshot) {
  std::ostringstream out;
  save_snapshot(out, snapshot);
  return out.str();
}

Snapshot load_bytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return load_snapshot(in);
}

TEST(StoreSnapshot, DatasetRoundTripsExactly) {
  const Snapshot original = make_snapshot();
  const Snapshot loaded = load_bytes(snapshot_bytes(original));
  ASSERT_EQ(loaded.dataset.size(), original.dataset.size());
  for (std::size_t i = 0; i < original.dataset.size(); ++i) {
    const data::Sample& a = original.dataset.samples()[i];
    const data::Sample& b = loaded.dataset.samples()[i];
    EXPECT_EQ(bits(a.position.x), bits(b.position.x));
    EXPECT_EQ(bits(a.position.y), bits(b.position.y));
    EXPECT_EQ(bits(a.position.z), bits(b.position.z));
    EXPECT_EQ(a.ssid, b.ssid);
    EXPECT_EQ(bits(a.rss_dbm), bits(b.rss_dbm));
    EXPECT_EQ(a.mac, b.mac);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(bits(a.timestamp_s), bits(b.timestamp_s));
    EXPECT_EQ(a.uav_id, b.uav_id);
    EXPECT_EQ(a.waypoint_index, b.waypoint_index);
  }
}

TEST(StoreSnapshot, RemRoundTripsExactly) {
  const Snapshot original = make_snapshot();
  const Snapshot loaded = load_bytes(snapshot_bytes(original));
  ASSERT_TRUE(loaded.rem.has_value());
  const core::RadioEnvironmentMap& a = *original.rem;
  const core::RadioEnvironmentMap& b = *loaded.rem;
  ASSERT_EQ(a.macs(), b.macs());
  ASSERT_EQ(a.geometry().nx(), b.geometry().nx());
  ASSERT_EQ(a.geometry().ny(), b.geometry().ny());
  ASSERT_EQ(a.geometry().nz(), b.geometry().nz());
  EXPECT_EQ(bits(a.geometry().bounds().min.x), bits(b.geometry().bounds().min.x));
  EXPECT_EQ(bits(a.geometry().bounds().max.z), bits(b.geometry().bounds().max.z));
  for (const radio::MacAddress& mac : a.macs()) {
    for (std::size_t iz = 0; iz < a.geometry().nz(); ++iz) {
      for (std::size_t iy = 0; iy < a.geometry().ny(); ++iy) {
        for (std::size_t ix = 0; ix < a.geometry().nx(); ++ix) {
          const core::RemCell ca = a.cell(mac, {ix, iy, iz});
          const core::RemCell cb = b.cell(mac, {ix, iy, iz});
          ASSERT_EQ(bits(ca.rss_dbm), bits(cb.rss_dbm));
          ASSERT_EQ(bits(ca.sigma_db), bits(cb.sigma_db));
        }
      }
    }
  }
}

TEST(StoreSnapshot, ModelInSnapshotPredictsBitIdentically) {
  const Snapshot original = make_snapshot();
  const Snapshot loaded = load_bytes(snapshot_bytes(original));
  ASSERT_NE(loaded.model, nullptr);
  for (const data::Sample& q : query_points()) {
    EXPECT_EQ(bits(original.model->predict(q)), bits(loaded.model->predict(q)));
  }
}

TEST(StoreSnapshot, SerialisationIsDeterministic) {
  const Snapshot snapshot = make_snapshot();
  EXPECT_EQ(snapshot_bytes(snapshot), snapshot_bytes(snapshot));
}

TEST(StoreSnapshot, RemAndModelAreOptional) {
  Snapshot sparse;
  sparse.dataset = synthetic_dataset();
  const Snapshot loaded = load_bytes(snapshot_bytes(sparse));
  EXPECT_EQ(loaded.dataset.size(), sparse.dataset.size());
  EXPECT_FALSE(loaded.rem.has_value());
  EXPECT_EQ(loaded.model, nullptr);
}

TEST(StoreSnapshot, FileRoundTrip) {
  const Snapshot snapshot = make_snapshot();
  const std::string path =
      (std::filesystem::temp_directory_path() / "remgen_test_snapshot.snap").string();
  save_snapshot_file(path, snapshot);
  const Snapshot loaded = load_snapshot_file(path);
  EXPECT_EQ(loaded.dataset.size(), snapshot.dataset.size());
  ASSERT_NE(loaded.model, nullptr);
  std::filesystem::remove(path);
}

TEST(StoreSnapshot, MissingFileThrows) {
  EXPECT_THROW((void)load_snapshot_file("/nonexistent/remgen.snap"), std::runtime_error);
}

// --- Corruption must fail loudly ---------------------------------------

TEST(StoreSnapshot, TruncatedFileThrows) {
  const std::string bytes = snapshot_bytes(make_snapshot());
  // Every strict prefix is invalid: spot-check several cut points including
  // mid-header, mid-section-header, and mid-payload.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{9},
                                std::size_t{15}, std::size_t{40}, bytes.size() - 1}) {
    EXPECT_THROW((void)load_bytes(bytes.substr(0, cut)), std::runtime_error)
        << "prefix of " << cut << " bytes must not load";
  }
}

TEST(StoreSnapshot, FlippedPayloadByteFailsCrc) {
  std::string bytes = snapshot_bytes(make_snapshot());
  // Flip one byte inside the first section's payload (header is
  // 8 magic + 4 version + 4 count + 4 id + 8 size + 4 crc = 32 bytes).
  bytes[40] = static_cast<char>(bytes[40] ^ 0x01);
  EXPECT_THROW(
      {
        try {
          (void)load_bytes(bytes);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(StoreSnapshot, WrongVersionThrows) {
  std::string bytes = snapshot_bytes(make_snapshot());
  bytes[8] = 99;  // Version field follows the 8-byte magic (little-endian).
  EXPECT_THROW(
      {
        try {
          (void)load_bytes(bytes);
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST(StoreSnapshot, BadMagicThrows) {
  std::string bytes = snapshot_bytes(make_snapshot());
  bytes[0] = 'X';
  EXPECT_THROW((void)load_bytes(bytes), std::runtime_error);
}

TEST(StoreSnapshot, UnknownSectionIsSkipped) {
  std::string bytes = snapshot_bytes(make_snapshot());
  // Append a CRC-valid section with an unknown id and bump the count: a
  // newer writer's extra section must not break this reader.
  util::BinaryWriter extra;
  extra.u32(999);
  extra.u64(2);
  extra.u32(util::crc32("zz"));
  extra.bytes("zz", 2);
  bytes += extra.buffer();
  bytes[12] = static_cast<char>(bytes[12] + 1);  // Section count (LE u32 at 12).
  const Snapshot loaded = load_bytes(bytes);
  EXPECT_NE(loaded.model, nullptr);
  EXPECT_TRUE(loaded.rem.has_value());
}

TEST(StoreSnapshot, UnknownSectionWithBadCrcStillThrows) {
  std::string bytes = snapshot_bytes(make_snapshot());
  util::BinaryWriter extra;
  extra.u32(999);
  extra.u64(2);
  extra.u32(0xdeadbeef);  // Wrong CRC on purpose.
  extra.bytes("zz", 2);
  bytes += extra.buffer();
  bytes[12] = static_cast<char>(bytes[12] + 1);
  EXPECT_THROW((void)load_bytes(bytes), std::runtime_error);
}

}  // namespace
}  // namespace remgen::store
