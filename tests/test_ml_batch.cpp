// The batched prediction contract: predict_batch(queries, out) must be
// bit-identical to calling predict() per query, for every estimator in the
// zoo and every kNN kernel variant (KD-tree and brute-force, uniform and
// distance weights, Minkowski p in {1, 2, 3}). The scalar predict() entry
// points delegate to batch-of-1 internally, so these tests pin down the
// remaining risk: batch-size-dependent state (scratch reuse, run-of-equal-MAC
// hoisting, hoisted dispatch constants) leaking into the results.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/rem_builder.hpp"
#include "data/feature_matrix.hpp"
#include "exec/config.hpp"
#include "ml/knn.hpp"
#include "ml/kriging.hpp"
#include "ml/model_zoo.hpp"
#include "util/rng.hpp"

namespace remgen::ml {
namespace {

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";
constexpr const char* kMacC = "02:00:00:00:00:0c";
constexpr const char* kMacUnknown = "02:ff:ff:ff:ff:ff";

data::Sample make_sample(double x, double y, double z, const char* mac, double rss,
                         int channel = 6) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = channel;
  s.rss_dbm = rss;
  return s;
}

/// Three APs on distinct channels with distinct spatial gradients.
std::vector<data::Sample> multi_mac_train(std::size_t per_mac, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<data::Sample> samples;
  for (std::size_t i = 0; i < per_mac; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    samples.push_back(make_sample(x, y, z, kMacA, -50.0 - 4.0 * x + rng.gaussian(0, 0.5), 1));
    samples.push_back(make_sample(x, y, z, kMacB, -60.0 - 3.0 * y + rng.gaussian(0, 0.5), 6));
    samples.push_back(make_sample(x, y, z, kMacC, -70.0 - 2.0 * z + rng.gaussian(0, 0.5), 11));
  }
  return samples;
}

/// A query mix that exercises every batch-kernel special case: training
/// points (exact-hit early-out), off-grid points, runs of equal MACs (the
/// REM sweep's access pattern, which the kernels hoist lookups across),
/// MAC alternation (run boundaries), and an unknown MAC (fallback path).
std::vector<data::Sample> mixed_queries(std::span<const data::Sample> train,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<data::Sample> queries;
  for (std::size_t i = 0; i < 8 && i < train.size(); ++i) queries.push_back(train[i * 3]);
  for (const char* mac : {kMacA, kMacA, kMacA, kMacB, kMacA, kMacC, kMacC, kMacUnknown, kMacB}) {
    queries.push_back(make_sample(rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0),
                                  rng.uniform(0.0, 2.0), mac, 0.0,
                                  mac == kMacUnknown ? 13 : 6));
  }
  return queries;
}

void expect_batch_matches_scalar(const Estimator& model,
                                 std::span<const data::Sample> queries,
                                 const std::string& label) {
  std::vector<double> batched(queries.size(), 0.0);
  model.predict_batch(queries, batched);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    // EXPECT_EQ on doubles is bitwise for non-NaN values — the contract is
    // bit-identity, not closeness.
    EXPECT_EQ(model.predict(queries[i]), batched[i]) << label << " query " << i;
  }
}

TEST(MlBatch, BatchMatchesScalarForEveryZooModel) {
  const auto train = multi_mac_train(30, 11);
  const auto queries = mixed_queries(train, 12);
  for (const ModelKind kind :
       {ModelKind::BaselineMeanPerMac, ModelKind::KnnK3Distance, ModelKind::KnnScaled16,
        ModelKind::PerMacKnn, ModelKind::NeuralNet16, ModelKind::Idw, ModelKind::Kriging}) {
    const std::unique_ptr<Estimator> model = make_model(kind);
    model->fit(train);
    expect_batch_matches_scalar(*model, queries, std::string(model_kind_name(kind)));
  }
}

TEST(MlBatch, KnnBatchMatchesScalarAcrossKernelVariants) {
  const auto train = multi_mac_train(25, 21);
  const auto queries = mixed_queries(train, 22);
  for (const KnnWeights weights : {KnnWeights::Uniform, KnnWeights::Distance}) {
    // KD-tree path: raw positions with p=2 admit the exact Euclidean tree.
    {
      KnnConfig config;
      config.n_neighbors = 4;
      config.weights = weights;
      config.features = {.include_mac_onehot = false};
      KnnRegressor knn(config);
      knn.fit(train);
      expect_batch_matches_scalar(knn, queries, "knn-tree");
    }
    // Brute path: the one-hot blocks force the linear scan, and each p picks
    // a different hoisted Minkowski dispatch (L1 / L2 / general).
    for (const double p : {1.0, 2.0, 3.0}) {
      KnnConfig config;
      config.n_neighbors = 5;
      config.weights = weights;
      config.minkowski_p = p;
      config.features = {.mac_onehot_scale = 3.0, .include_channel_onehot = true};
      KnnRegressor knn(config);
      knn.fit(train);
      expect_batch_matches_scalar(knn, queries, "knn-brute-p" + std::to_string(p));
    }
  }
}

TEST(MlBatch, KrigingSigmaBatchMatchesScalar) {
  const auto train = multi_mac_train(30, 31);
  const auto queries = mixed_queries(train, 32);
  KrigingRegressor kriging;
  kriging.fit(train);
  std::vector<KrigingRegressor::Prediction> batched(queries.size());
  kriging.predict_with_sigma_batch(queries, batched);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const KrigingRegressor::Prediction scalar = kriging.predict_with_sigma(queries[i]);
    EXPECT_EQ(scalar.value, batched[i].value) << "query " << i;
    EXPECT_EQ(scalar.sigma, batched[i].sigma) << "query " << i;
  }
}

TEST(MlBatch, FeatureMatrixSnapshotRoundTrip) {
  util::Rng rng(41);
  data::FeatureMatrix m(7, 5);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (double& v : m.row(i)) v = rng.uniform(-100.0, 100.0);
  }
  util::BinaryWriter w;
  m.save(w);
  util::BinaryReader r(w.buffer());
  const data::FeatureMatrix loaded = data::FeatureMatrix::load(r);
  ASSERT_EQ(loaded.rows(), m.rows());
  ASSERT_EQ(loaded.cols(), m.cols());
  for (std::size_t i = 0; i < m.values().size(); ++i) {
    EXPECT_EQ(loaded.values()[i], m.values()[i]);
  }
}

TEST(MlBatch, KnnSnapshotRoundTripPredictsBitIdentically) {
  const auto train = multi_mac_train(20, 51);
  const auto queries = mixed_queries(train, 52);
  KnnConfig config;
  config.features = {.mac_onehot_scale = 3.0, .include_channel_onehot = true};
  KnnRegressor original(config);
  original.fit(train);

  util::BinaryWriter w;
  original.save(w);
  util::BinaryReader r(w.buffer());
  KnnRegressor restored;
  restored.load(r);

  std::vector<double> expected(queries.size(), 0.0);
  std::vector<double> actual(queries.size(), 0.0);
  original.predict_batch(queries, expected);
  restored.predict_batch(queries, actual);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "query " << i;
  }
}

/// Restores the configured width after each test so suites don't leak state.
class MlBatchThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = exec::thread_count(); }
  void TearDown() override { exec::set_thread_count(previous_); }

 private:
  std::size_t previous_ = 1;
};

TEST_F(MlBatchThreadsTest, BlockedRemSweepIsByteIdenticalAcrossThreadCounts) {
  data::Dataset ds;
  for (data::Sample& s : multi_mac_train(35, 61)) ds.add(std::move(s));
  core::RemBuilderConfig config;
  config.voxel_m = 0.25;  // Fine enough for several z-slabs and y-rows per MAC.
  config.min_samples_per_mac = 1;
  const auto rem_csv = [&](ModelKind kind) {
    const core::RadioEnvironmentMap rem =
        core::build_rem(ds, kind, geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}), config);
    std::ostringstream out;
    rem.write_csv(out);
    return out.str();
  };
  // Kriging exercises the sigma sweep; KnnScaled16 the brute batch kernel.
  for (const ModelKind kind : {ModelKind::KnnScaled16, ModelKind::Kriging}) {
    exec::set_thread_count(1);
    const std::string sequential = rem_csv(kind);
    exec::set_thread_count(4);
    const std::string parallel = rem_csv(kind);
    EXPECT_EQ(sequential, parallel) << model_kind_name(kind);
  }
}

}  // namespace
}  // namespace remgen::ml
