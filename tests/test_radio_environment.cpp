#include <gtest/gtest.h>

#include "radio/environment.hpp"
#include "util/stats.hpp"

namespace remgen::radio {
namespace {

/// Free-space environment with a single controllable AP.
struct SingleApWorld {
  geom::Floorplan floorplan;
  std::vector<AccessPoint> aps;
  EnvironmentConfig config;
  util::Rng rng{11};

  explicit SingleApWorld(double tx_power = 15.0, int channel = 6) {
    AccessPoint ap;
    ap.mac = *MacAddress::parse("02:00:00:00:00:01");
    ap.ssid = "test-net";
    ap.channel = channel;
    ap.tx_power_dbm = tx_power;
    ap.position = {0.0, 0.0, 1.0};
    aps.push_back(ap);
    config.shadowing_sigma_db = 0.0;  // deterministic unless a test wants it
    config.clutter_db_per_m = 0.0;
  }

  RadioEnvironment build() {
    return RadioEnvironment(floorplan, aps, geom::Aabb({-1, -1, 0}, {11, 11, 3}), config, rng);
  }
};

TEST(Environment, MeanRssIsTxMinusPathLoss) {
  SingleApWorld world(15.0);
  const RadioEnvironment env = world.build();
  // At 1 m: 15 - 40.2 = -25.2 dBm.
  EXPECT_NEAR(env.mean_rss_dbm(0, {1.0, 0.0, 1.0}), -25.2, 1e-9);
  // At 10 m: 20 dB more loss.
  EXPECT_NEAR(env.mean_rss_dbm(0, {10.0, 0.0, 1.0}), -45.2, 1e-9);
}

TEST(Environment, ClutterTermAppliesBeyondOneMetre) {
  SingleApWorld world(15.0);
  world.config.clutter_db_per_m = 2.0;
  const RadioEnvironment env = world.build();
  // At 1 m no clutter; at 3 m clutter adds 2 * 2 = 4 dB on top of log-distance.
  EXPECT_NEAR(env.mean_rss_dbm(0, {1.0, 0.0, 1.0}), -25.2, 1e-9);
  const double log_part = -25.2 - 10.0 * 2.0 * std::log10(3.0);
  EXPECT_NEAR(env.mean_rss_dbm(0, {3.0, 0.0, 1.0}), log_part - 4.0, 1e-9);
}

TEST(Environment, SampleVariesAroundMean) {
  SingleApWorld world;
  world.config.fading_sigma_db = 4.0;
  const RadioEnvironment env = world.build();
  const geom::Vec3 p{3.0, 0.0, 1.0};
  const double mean = env.mean_rss_dbm(0, p);
  util::Rng rng(7);
  util::OnlineStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(env.sample_rss_dbm(0, p, rng));
  EXPECT_NEAR(stats.mean(), mean, 0.2);
  EXPECT_NEAR(stats.stddev(), 4.0, 0.2);
}

TEST(Environment, DecodeProbabilityIsLogisticInRss) {
  SingleApWorld world;
  const RadioEnvironment env = world.build();
  // Noise floor -95, snr50 4 -> 50% point at -91 dBm.
  EXPECT_NEAR(env.beacon_decode_probability(-91.0), 0.5, 1e-9);
  EXPECT_GT(env.beacon_decode_probability(-80.0), 0.99);
  EXPECT_LT(env.beacon_decode_probability(-103.0), 0.01);
  EXPECT_LT(env.beacon_decode_probability(-93.0), env.beacon_decode_probability(-89.0));
}

TEST(Environment, StrongApAlmostAlwaysDetected) {
  SingleApWorld world(15.0);
  const RadioEnvironment env = world.build();
  util::Rng rng(3);
  int detections = 0;
  for (int i = 0; i < 50; ++i) {
    detections += static_cast<int>(env.scan({2.0, 0.0, 1.0}, 2.1, nullptr, rng).size());
  }
  // Detection is bounded by beacon-capture statistics: the per-channel dwell
  // is 2.1/13 s against a 102.4 ms beacon interval, so P(>=1 beacon) ~ 0.79.
  EXPECT_GT(detections, 30);
}

TEST(Environment, HopelesslyWeakApNeverDetected) {
  SingleApWorld world(-60.0);  // absurdly weak transmitter
  const RadioEnvironment env = world.build();
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(env.scan({9.0, 9.0, 1.0}, 2.1, nullptr, rng).empty());
  }
}

TEST(Environment, DetectionReportsCorrectChannelAndIndex) {
  SingleApWorld world(15.0, 11);
  const RadioEnvironment env = world.build();
  util::Rng rng(5);
  const auto detections = env.scan({1.0, 0.0, 1.0}, 2.1, nullptr, rng);
  ASSERT_FALSE(detections.empty());
  EXPECT_EQ(detections[0].ap_index, 0u);
  EXPECT_EQ(detections[0].channel, 11);
}

TEST(Environment, ReportedRssNearMean) {
  SingleApWorld world(15.0);
  world.config.fading_sigma_db = 2.0;
  const RadioEnvironment env = world.build();
  util::Rng rng(5);
  const geom::Vec3 p{2.0, 0.0, 1.0};
  util::OnlineStats reported;
  for (int i = 0; i < 200; ++i) {
    for (const Detection& d : env.scan(p, 2.1, nullptr, rng)) reported.add(d.rss_dbm);
  }
  // Reported RSS is the max over decoded beacons, hence biased a little high.
  EXPECT_NEAR(reported.mean(), env.mean_rss_dbm(0, p), 3.0);
}

TEST(Environment, InterferenceReducesDetections) {
  SingleApWorld world(-5.0);  // marginal AP
  const RadioEnvironment env = world.build();
  const geom::Vec3 p{8.0, 0.0, 1.0};

  util::Rng rng_off(9);
  util::Rng rng_on(9);
  int detected_off = 0;
  int detected_on = 0;
  CrazyradioInterference interference;
  interference.set_carrier_mhz(2437.0);  // co-channel with ch 6
  for (int i = 0; i < 300; ++i) {
    detected_off += static_cast<int>(env.scan(p, 2.1, nullptr, rng_off).size());
    detected_on += static_cast<int>(env.scan(p, 2.1, &interference, rng_on).size());
  }
  EXPECT_GT(detected_off, detected_on + 30);
}

TEST(Environment, LongerScanDetectsMore) {
  SingleApWorld world(-9.0);  // marginal
  const RadioEnvironment env = world.build();
  const geom::Vec3 p{8.0, 0.0, 1.0};
  util::Rng rng_short(13);
  util::Rng rng_long(13);
  int short_detections = 0;
  int long_detections = 0;
  for (int i = 0; i < 300; ++i) {
    short_detections += static_cast<int>(env.scan(p, 0.5, nullptr, rng_short).size());
    long_detections += static_cast<int>(env.scan(p, 6.0, nullptr, rng_long).size());
  }
  EXPECT_GT(long_detections, short_detections);
}

TEST(Environment, WallReducesMeanRss) {
  SingleApWorld world(15.0);
  world.floorplan.add_wall(geom::Wall::vertical({1.0, -10.0, 0.0}, {1.0, 10.0, 0.0}, 0.0, 3.0,
                                                geom::WallMaterial::Concrete));
  const RadioEnvironment env = world.build();
  const double behind_wall = env.mean_rss_dbm(0, {2.0, 0.0, 1.0});
  EXPECT_NEAR(behind_wall, 15.0 - (40.2 + 10.0 * 2.0 * std::log10(2.0)) - 12.0, 1e-9);
}

TEST(Environment, ShadowingIsFrozenPerAp) {
  SingleApWorld world;
  world.config.shadowing_sigma_db = 3.0;
  const RadioEnvironment env = world.build();
  const geom::Vec3 p{4.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(env.mean_rss_dbm(0, p), env.mean_rss_dbm(0, p));
}

}  // namespace
}  // namespace remgen::radio
