#include <gtest/gtest.h>

#include <cmath>

#include "uav/battery.hpp"

namespace remgen::uav {
namespace {

TEST(Battery, StartsFull) {
  const Battery battery;
  EXPECT_DOUBLE_EQ(battery.fraction_remaining(), 1.0);
  EXPECT_FALSE(battery.exhausted());
  EXPECT_DOUBLE_EQ(battery.consumed_mah(), 0.0);
}

TEST(Battery, DrainAccountsChargeCorrectly) {
  Battery battery;
  battery.drain(3600.0, 100.0);  // 100 mA for one hour = 100 mAh
  EXPECT_NEAR(battery.consumed_mah(), 100.0, 1e-9);
  EXPECT_NEAR(battery.fraction_remaining(), 1.0 - 100.0 / 250.0, 1e-9);
}

TEST(Battery, FractionClampedAtZero) {
  Battery battery;
  battery.drain(3600.0, 10000.0);
  EXPECT_DOUBLE_EQ(battery.fraction_remaining(), 0.0);
}

TEST(Battery, ExhaustedAtUsableFraction) {
  BatteryConfig config;
  config.capacity_mah = 100.0;
  config.usable_fraction = 0.9;
  Battery battery(config);
  battery.drain(3600.0, 89.0);
  EXPECT_FALSE(battery.exhausted());
  battery.drain(3600.0, 2.0);  // now 91 consumed > 90 usable
  EXPECT_TRUE(battery.exhausted());
}

TEST(Battery, CurrentComposition) {
  const Battery battery;
  const BatteryConfig& c = battery.config();
  EXPECT_DOUBLE_EQ(battery.current_ma(false, 0.0, false), c.base_current_ma);
  EXPECT_DOUBLE_EQ(battery.current_ma(true, 0.0, false),
                   c.base_current_ma + c.hover_current_ma);
  EXPECT_DOUBLE_EQ(battery.current_ma(true, 1.0, false),
                   c.base_current_ma + c.hover_current_ma + c.move_extra_ma_per_mps);
  EXPECT_DOUBLE_EQ(battery.current_ma(true, 0.0, true),
                   c.base_current_ma + c.hover_current_ma + c.scan_current_ma);
}

TEST(Battery, PaperEnduranceScenario) {
  // Hovering with scans every ~10.3 s (2 s scan + 8 s gap) must deplete the
  // usable charge in roughly 6 minutes (paper: 6 min 12 s).
  Battery battery;
  double t = 0.0;
  const double dt = 0.1;
  while (!battery.exhausted() && t < 1000.0) {
    const double cycle_pos = std::fmod(t, 10.3);
    const bool scanning = cycle_pos < 2.1;
    battery.drain(dt, battery.current_ma(true, 0.05, scanning));
    t += dt;
  }
  EXPECT_GT(t, 300.0);  // more than 5 minutes
  EXPECT_LT(t, 450.0);  // less than 7.5 minutes
}

TEST(Battery, MonotonicDischarge) {
  Battery battery;
  double prev = battery.fraction_remaining();
  for (int i = 0; i < 100; ++i) {
    battery.drain(1.0, 2000.0);
    EXPECT_LE(battery.fraction_remaining(), prev);
    prev = battery.fraction_remaining();
  }
}

TEST(Battery, ZeroDtIsNoop) {
  Battery battery;
  battery.drain(0.0, 5000.0);
  EXPECT_DOUBLE_EQ(battery.consumed_mah(), 0.0);
}

}  // namespace
}  // namespace remgen::uav
