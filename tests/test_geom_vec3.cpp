#include <gtest/gtest.h>

#include "geom/vec3.hpp"

namespace remgen::geom {
namespace {

TEST(Vec3Test, Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  EXPECT_EQ(a + b, Vec3(5.0, 7.0, 9.0));
  EXPECT_EQ(b - a, Vec3(3.0, 3.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec3(2.0, 4.0, 6.0));
  EXPECT_EQ(2.0 * a, Vec3(2.0, 4.0, 6.0));
  EXPECT_EQ(a / 2.0, Vec3(0.5, 1.0, 1.5));
  EXPECT_EQ(-a, Vec3(-1.0, -2.0, -3.0));
}

TEST(Vec3Test, CompoundAssignment) {
  Vec3 v{1.0, 1.0, 1.0};
  v += {1.0, 2.0, 3.0};
  EXPECT_EQ(v, Vec3(2.0, 3.0, 4.0));
  v -= {1.0, 1.0, 1.0};
  EXPECT_EQ(v, Vec3(1.0, 2.0, 3.0));
  v *= 3.0;
  EXPECT_EQ(v, Vec3(3.0, 6.0, 9.0));
}

TEST(Vec3Test, DotAndCross) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), Vec3(0.0, 0.0, 1.0));
  EXPECT_EQ(y.cross(x), Vec3(0.0, 0.0, -1.0));
  EXPECT_EQ(Vec3(1, 2, 3).dot(Vec3(4, 5, 6)), 32.0);
}

TEST(Vec3Test, NormsAndDistance) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec3(0, 0, 0).distance_to({0, 0, 2}), 2.0);
}

TEST(Vec3Test, Normalized) {
  const Vec3 v{0.0, 0.0, 5.0};
  EXPECT_EQ(v.normalized(), Vec3(0.0, 0.0, 1.0));
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});  // zero vector stays zero
}

TEST(Vec3Test, Lerp) {
  const Vec3 a{0.0, 0.0, 0.0};
  const Vec3 b{10.0, 20.0, 30.0};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), Vec3(5.0, 10.0, 15.0));
}

TEST(Vec3Test, ToString) {
  EXPECT_EQ(Vec3(1.0, -2.5, 0.125).to_string(), "(1.000, -2.500, 0.125)");
}

}  // namespace
}  // namespace remgen::geom
