#include <gtest/gtest.h>

#include <set>

#include "data/encoding.hpp"

namespace remgen::data {
namespace {

Sample make_sample(double x, double y, double z, const char* mac, int channel = 6,
                   double rss = -70.0) {
  Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = channel;
  s.rss_dbm = rss;
  return s;
}

std::vector<Sample> three_macs() {
  return {make_sample(0, 0, 0, "02:00:00:00:00:01", 1, -60),
          make_sample(1, 2, 0.5, "02:00:00:00:00:02", 6, -70),
          make_sample(2, 1, 1.0, "02:00:00:00:00:03", 11, -80)};
}

TEST(FeatureEncoder, DimensionPositionPlusOneHot) {
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, FeatureConfig{});
  EXPECT_EQ(enc.dimension(), 3u + 3u);
  EXPECT_EQ(enc.mac_vocabulary_size(), 3u);
}

TEST(FeatureEncoder, PositionOnly) {
  FeatureConfig config;
  config.include_mac_onehot = false;
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, config);
  EXPECT_EQ(enc.dimension(), 3u);
  const auto f = enc.encode(samples[1]);
  EXPECT_EQ(f, (std::vector<double>{1.0, 2.0, 0.5}));
}

TEST(FeatureEncoder, OneHotIsExactlyOneHot) {
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, FeatureConfig{});
  for (const Sample& s : samples) {
    const auto f = enc.encode(s);
    int ones = 0;
    for (std::size_t i = 3; i < f.size(); ++i) {
      if (f[i] == 1.0) ++ones;
      else EXPECT_EQ(f[i], 0.0);
    }
    EXPECT_EQ(ones, 1);
  }
}

TEST(FeatureEncoder, DistinctMacsGetDistinctSlots) {
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, FeatureConfig{});
  std::set<std::vector<double>> onehots;
  for (const Sample& s : samples) {
    auto f = enc.encode(s);
    onehots.insert(std::vector<double>(f.begin() + 3, f.end()));
  }
  EXPECT_EQ(onehots.size(), 3u);
}

TEST(FeatureEncoder, ScaleMultipliesOneHotBlock) {
  FeatureConfig config;
  config.mac_onehot_scale = 3.0;
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, config);
  const auto f = enc.encode(samples[0]);
  double max_onehot = 0.0;
  for (std::size_t i = 3; i < f.size(); ++i) max_onehot = std::max(max_onehot, f[i]);
  EXPECT_DOUBLE_EQ(max_onehot, 3.0);
}

TEST(FeatureEncoder, UnknownMacEncodesAllZeros) {
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, FeatureConfig{});
  const Sample unknown = make_sample(0, 0, 0, "02:ff:ff:ff:ff:ff");
  EXPECT_EQ(enc.mac_index(unknown.mac), -1);
  const auto f = enc.encode(unknown);
  for (std::size_t i = 3; i < f.size(); ++i) EXPECT_EQ(f[i], 0.0);
}

TEST(FeatureEncoder, NormalizedPositionInUnitCube) {
  FeatureConfig config;
  config.normalize_position = true;
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, config);
  for (const Sample& s : samples) {
    const auto f = enc.encode(s);
    for (int d = 0; d < 3; ++d) {
      EXPECT_GE(f[d], 0.0);
      EXPECT_LE(f[d], 1.0);
    }
  }
  // Extremes map to 0 and 1.
  EXPECT_DOUBLE_EQ(enc.encode(samples[0])[0], 0.0);
  EXPECT_DOUBLE_EQ(enc.encode(samples[2])[0], 1.0);
}

TEST(FeatureEncoder, ChannelOneHot) {
  FeatureConfig config;
  config.include_channel_onehot = true;
  const auto samples = three_macs();  // channels 1, 6, 11
  const FeatureEncoder enc = FeatureEncoder::fit(samples, config);
  EXPECT_EQ(enc.dimension(), 3u + 3u + 3u);
  const auto f = enc.encode(samples[0]);
  double channel_sum = 0.0;
  for (std::size_t i = 6; i < 9; ++i) channel_sum += f[i];
  EXPECT_DOUBLE_EQ(channel_sum, 1.0);
}

TEST(FeatureEncoder, EncodingIndependentOfSampleOrder) {
  auto samples = three_macs();
  const FeatureEncoder enc1 = FeatureEncoder::fit(samples, FeatureConfig{});
  std::swap(samples[0], samples[2]);
  const FeatureEncoder enc2 = FeatureEncoder::fit(samples, FeatureConfig{});
  // The vocabulary is sorted, so the encodings agree.
  EXPECT_EQ(enc1.encode(samples[0]), enc2.encode(samples[0]));
}

TEST(FeatureEncoder, EncodeAllMatchesEncode) {
  const auto samples = three_macs();
  const FeatureEncoder enc = FeatureEncoder::fit(samples, FeatureConfig{});
  const auto all = enc.encode_all(samples);
  ASSERT_EQ(all.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(all[i], enc.encode(samples[i]));
  }
}

TEST(TargetScaler, StandardizesAndInverts) {
  const std::vector<double> values{-60.0, -70.0, -80.0};
  const TargetScaler scaler = TargetScaler::fit(values);
  EXPECT_DOUBLE_EQ(scaler.mean(), -70.0);
  EXPECT_NEAR(scaler.transform(-70.0), 0.0, 1e-12);
  for (const double v : values) {
    EXPECT_NEAR(scaler.inverse(scaler.transform(v)), v, 1e-12);
  }
}

TEST(TargetScaler, ConstantTargetsDoNotDivideByZero) {
  const std::vector<double> values{-70.0, -70.0, -70.0};
  const TargetScaler scaler = TargetScaler::fit(values);
  EXPECT_DOUBLE_EQ(scaler.transform(-70.0), 0.0);
  EXPECT_DOUBLE_EQ(scaler.inverse(0.0), -70.0);
}

TEST(RssTargets, ExtractsValues) {
  const auto samples = three_macs();
  const std::vector<double> targets = rss_targets(samples);
  EXPECT_EQ(targets, (std::vector<double>{-60.0, -70.0, -80.0}));
}

}  // namespace
}  // namespace remgen::data
