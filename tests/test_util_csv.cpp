#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hpp"

namespace remgen::util {
namespace {

TEST(CsvParse, SimpleTable) {
  const CsvTable t = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(t.header.size(), 3u);
  EXPECT_EQ(t.header[0], "a");
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][1], "2");
  EXPECT_EQ(t.rows[1][2], "6");
}

TEST(CsvParse, MissingTrailingNewline) {
  const CsvTable t = parse_csv("h1,h2\nx,y");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][1], "y");
}

TEST(CsvParse, QuotedFieldWithComma) {
  const CsvTable t = parse_csv("h\n\"a,b\"\n");
  EXPECT_EQ(t.rows[0][0], "a,b");
}

TEST(CsvParse, QuotedFieldWithEscapedQuote) {
  const CsvTable t = parse_csv("h\n\"say \"\"hi\"\"\"\n");
  EXPECT_EQ(t.rows[0][0], "say \"hi\"");
}

TEST(CsvParse, QuotedFieldWithNewline) {
  const CsvTable t = parse_csv("h\n\"line1\nline2\"\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "line1\nline2");
}

TEST(CsvParse, ToleratesCrlf) {
  const CsvTable t = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "1");
}

TEST(CsvParse, EmptyFields) {
  const CsvTable t = parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "");
  EXPECT_EQ(t.rows[0][2], "");
}

TEST(CsvParse, EmptyInputYieldsEmptyTable) {
  const CsvTable t = parse_csv("");
  EXPECT_TRUE(t.header.empty());
  EXPECT_TRUE(t.rows.empty());
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW((void)parse_csv("h\n\"oops\n"), std::runtime_error);
}

TEST(CsvParse, QuoteInsideUnquotedFieldThrows) {
  EXPECT_THROW((void)parse_csv("h\nab\"cd\n"), std::runtime_error);
}

TEST(CsvTableTest, ColumnIndex) {
  const CsvTable t = parse_csv("x,y,z\n1,2,3\n");
  EXPECT_EQ(t.column_index("x"), 0);
  EXPECT_EQ(t.column_index("z"), 2);
  EXPECT_EQ(t.column_index("missing"), -1);
}

TEST(CsvEscape, PlainFieldUnchanged) { EXPECT_EQ(csv_escape("hello"), "hello"); }

TEST(CsvEscape, CommaTriggersQuoting) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubling) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

TEST(CsvEscape, NewlineTriggersQuoting) { EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\""); }

TEST(CsvWriterTest, RoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"name", "value"});
  writer.write_row({"with,comma", "with\"quote"});
  writer.write_row({"plain", "multi\nline"});

  const CsvTable t = parse_csv(out.str());
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][0], "with,comma");
  EXPECT_EQ(t.rows[0][1], "with\"quote");
  EXPECT_EQ(t.rows[1][1], "multi\nline");
}

TEST(CsvFile, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/path/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace remgen::util
