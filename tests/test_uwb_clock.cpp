#include <gtest/gtest.h>

#include <cmath>

#include "uwb/clock.hpp"
#include "util/units.hpp"

namespace remgen::uwb {
namespace {

TEST(Clock, UncalibratedClocksHaveSpread) {
  util::Rng rng(3);
  const CalibrationConfig config;
  const auto clocks = make_uncalibrated_clocks(8, config, rng);
  ASSERT_EQ(clocks.size(), 8u);
  // Anchor 0 is the reference.
  EXPECT_EQ(clocks[0].offset_s, 0.0);
  EXPECT_EQ(clocks[0].drift_ppm, 0.0);
  double spread = 0.0;
  for (const AnchorClock& c : clocks) spread += std::abs(c.offset_s);
  EXPECT_GT(spread, 0.0);
}

TEST(Clock, SelfCalibrationShrinksOffsets) {
  util::Rng rng(5);
  const CalibrationConfig config;
  const auto clocks = make_uncalibrated_clocks(8, config, rng);
  double uncal_rms = 0.0;
  for (std::size_t i = 1; i < clocks.size(); ++i) {
    uncal_rms += clocks[i].offset_s * clocks[i].offset_s;
  }
  uncal_rms = std::sqrt(uncal_rms / 7.0);

  util::Rng cal_rng(6);
  const CalibrationResult result = self_calibrate(clocks, config, cal_rng);
  EXPECT_LT(result.rms_residual_s, uncal_rms / 100.0);
}

TEST(Clock, MoreRoundsBetterSync) {
  util::Rng rng(7);
  CalibrationConfig few;
  few.rounds = 2;
  CalibrationConfig many = few;
  many.rounds = 256;
  const auto clocks = make_uncalibrated_clocks(8, few, rng);

  double rms_few = 0.0;
  double rms_many = 0.0;
  // Average over repetitions (single draws are noisy).
  for (int rep = 0; rep < 30; ++rep) {
    util::Rng r1(100 + rep);
    util::Rng r2(100 + rep);
    rms_few += self_calibrate(clocks, few, r1).rms_residual_s;
    rms_many += self_calibrate(clocks, many, r2).rms_residual_s;
  }
  EXPECT_LT(rms_many, rms_few);
}

TEST(Clock, ResidualRangingErrorIsSubCentimetre) {
  // The paper's TDoA works because post-calibration sync error contributes
  // less than the UWB timestamp floor: c * residual << 1 cm.
  util::Rng rng(9);
  const CalibrationConfig config;
  const auto clocks = make_uncalibrated_clocks(8, config, rng);
  util::Rng cal_rng(10);
  const CalibrationResult result = self_calibrate(clocks, config, cal_rng);
  EXPECT_LT(result.ranging_error_m(), 0.01);
}

TEST(Clock, RangingErrorConversionUsesSpeedOfLight) {
  CalibrationResult result;
  result.rms_residual_s = 1e-9;  // 1 ns
  EXPECT_NEAR(result.ranging_error_m(), 0.2998, 0.001);
}

TEST(Clock, SingleAnchorTrivial) {
  util::Rng rng(1);
  const CalibrationConfig config;
  const auto clocks = make_uncalibrated_clocks(1, config, rng);
  util::Rng cal_rng(2);
  const CalibrationResult result = self_calibrate(clocks, config, cal_rng);
  EXPECT_EQ(result.rms_residual_s, 0.0);
}

}  // namespace
}  // namespace remgen::uwb
