#include <gtest/gtest.h>

#include "geom/aabb.hpp"

namespace remgen::geom {
namespace {

TEST(AabbTest, SizeCenterVolume) {
  const Aabb box({1.0, 2.0, 3.0}, {3.0, 6.0, 4.0});
  EXPECT_EQ(box.size(), Vec3(2.0, 4.0, 1.0));
  EXPECT_EQ(box.center(), Vec3(2.0, 4.0, 3.5));
  EXPECT_DOUBLE_EQ(box.volume(), 8.0);
}

TEST(AabbTest, FromSize) {
  const Aabb box = Aabb::from_size({1.0, 1.0, 1.0}, {2.0, 3.0, 4.0});
  EXPECT_EQ(box.max, Vec3(3.0, 4.0, 5.0));
}

TEST(AabbTest, ContainsInteriorAndBoundary) {
  const Aabb box({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  EXPECT_TRUE(box.contains({0.5, 0.5, 0.5}));
  EXPECT_TRUE(box.contains({0.0, 0.0, 0.0}));
  EXPECT_TRUE(box.contains({1.0, 1.0, 1.0}));
  EXPECT_FALSE(box.contains({1.0001, 0.5, 0.5}));
  EXPECT_FALSE(box.contains({0.5, -0.0001, 0.5}));
}

TEST(AabbTest, Clamp) {
  const Aabb box({0.0, 0.0, 0.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(box.clamp({-1.0, 1.0, 5.0}), Vec3(0.0, 1.0, 3.0));
  EXPECT_EQ(box.clamp({0.5, 0.5, 0.5}), Vec3(0.5, 0.5, 0.5));
}

TEST(AabbTest, CornersAreAllDistinctAndContained) {
  const Aabb box({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  const auto corners = box.corners();
  EXPECT_EQ(corners.size(), 8u);
  for (std::size_t i = 0; i < corners.size(); ++i) {
    EXPECT_TRUE(box.contains(corners[i]));
    for (std::size_t j = i + 1; j < corners.size(); ++j) {
      EXPECT_NE(corners[i], corners[j]);
    }
  }
}

TEST(AabbTest, United) {
  const Aabb a({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  const Aabb b({2.0, -1.0, 0.5}, {3.0, 0.5, 2.0});
  const Aabb u = a.united(b);
  EXPECT_EQ(u.min, Vec3(0.0, -1.0, 0.0));
  EXPECT_EQ(u.max, Vec3(3.0, 1.0, 2.0));
}

TEST(AabbTest, DegenerateFlatBoxIsAllowed) {
  const Aabb flat({0.0, 0.0, 1.0}, {2.0, 2.0, 1.0});
  EXPECT_DOUBLE_EQ(flat.volume(), 0.0);
  EXPECT_TRUE(flat.contains({1.0, 1.0, 1.0}));
}

}  // namespace
}  // namespace remgen::geom
