// In-process tests for the net::Server event loop: pipelined in-order
// delivery, admission control, named maps, admin stats, hot reload with zero
// dropped in-flight requests, and graceful drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/rem_builder.hpp"
#include "exec/config.hpp"
#include "ingest/pipeline.hpp"
#include "ml/model_zoo.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace remgen::net {
namespace {

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";

data::Dataset synthetic_dataset(std::uint64_t seed) {
  util::Rng rng(seed);
  data::Dataset ds;
  for (std::size_t i = 0; i < 40; ++i) {
    data::Sample s;
    s.position = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)};
    s.mac = *radio::MacAddress::parse(kMacA);
    s.channel = 6;
    s.rss_dbm = -55.0 - 4.0 * s.position.x + rng.gaussian(0, 1.0);
    ds.add(s);
    s.mac = *radio::MacAddress::parse(kMacB);
    s.channel = 11;
    s.rss_dbm = -75.0 - 2.0 * s.position.y + rng.gaussian(0, 1.0);
    ds.add(s);
  }
  return ds;
}

store::Snapshot make_snapshot(std::uint64_t seed = 21) {
  const data::Dataset ds = synthetic_dataset(seed);
  store::Snapshot snapshot;
  snapshot.dataset = ds;
  auto model = ml::make_model(ml::ModelKind::PerMacKnn);
  core::RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  snapshot.rem.emplace(
      core::build_rem(ds, *model, geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}), config));
  snapshot.model = std::move(model);
  return snapshot;
}

std::shared_ptr<const serve::QueryEngine> make_engine(std::uint64_t seed = 21) {
  return std::make_shared<const serve::QueryEngine>(make_snapshot(seed), 1 << 20);
}

/// Blocking loopback client speaking the newline-delimited protocol.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  void send_all(const std::string& text) {
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t n = ::send(fd_, text.data() + off, text.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until `count` lines arrived, EOF, or the deadline (seconds).
  std::vector<std::string> read_lines(std::size_t count, int deadline_s = 20) {
    std::vector<std::string> lines;
    const auto harvest = [this, &lines, count] {
      std::size_t start = 0;
      while (lines.size() < count) {  // Surplus stays buffered for later calls.
        const std::size_t nl = pending_.find('\n', start);
        if (nl == std::string::npos) break;
        lines.push_back(pending_.substr(start, nl - start));
        start = nl + 1;
      }
      pending_.erase(0, start);
    };
    // Lines a previous call buffered come first: a fast server may deliver
    // many responses in one recv, and EOF after them must not hide them.
    harvest();
    const auto deadline_ms = deadline_s * 1000;
    int waited_ms = 0;
    while (lines.size() < count && waited_ms < deadline_ms) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready == 0) {
        waited_ms += 100;
        continue;
      }
      char buffer[16384];
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n <= 0) break;  // EOF or error: return what we have.
      pending_.append(buffer, static_cast<std::size_t>(n));
      harvest();
    }
    return lines;
  }

  /// Everything received but not yet returned as lines (raw bytes; used by
  /// the HTTP tests where the response is not newline-framed).
  std::string take_pending() { return std::exchange(pending_, {}); }

  /// True once recv reports EOF (server closed its side).
  bool wait_eof(int deadline_s = 20) {
    int waited_ms = 0;
    while (waited_ms < deadline_s * 1000) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 100) > 0) {
        char buffer[4096];
        const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
        if (n == 0) return true;
        if (n < 0) return false;
        pending_.append(buffer, static_cast<std::size_t>(n));
      } else {
        waited_ms += 100;
      }
    }
    return false;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string pending_;
};

/// Runs a Server on an ephemeral loopback port in a background thread and
/// guarantees shutdown + join on scope exit.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config = {}) : server_(std::move(config)) {}
  ~ServerHarness() { stop(); }

  Server& server() { return server_; }

  std::uint16_t start() {
    const std::uint16_t port = server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
    return port;
  }

  void stop() {
    if (thread_.joinable()) {
      server_.request_shutdown();
      thread_.join();
    }
  }

 private:
  Server server_;
  std::thread thread_;
};

std::string point_line(std::int64_t id, double x, const char* map = nullptr) {
  std::string line = "{\"id\":" + std::to_string(id) + ",\"type\":\"point\",\"top\":2,\"x\":" +
                     std::to_string(x) + ",\"y\":1.0,\"z\":1.0";
  if (map != nullptr) line += std::string(",\"map\":\"") + map + "\"";
  return line + "}\n";
}

std::int64_t line_id(const std::string& line) {
  return obs::Json::parse(line).at("id").as_int64();
}

bool line_ok(const std::string& line) { return obs::Json::parse(line).at("ok").as_bool(); }

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = exec::thread_count();
    exec::set_thread_count(2);
  }
  void TearDown() override { exec::set_thread_count(previous_threads_); }
  std::size_t previous_threads_ = 1;
};

TEST_F(NetServerTest, PipelinedResponsesArriveInRequestOrderByteIdentical) {
  const std::shared_ptr<const serve::QueryEngine> engine = make_engine();
  ServerHarness harness;
  harness.server().add_engine("default", engine);
  const std::uint16_t port = harness.start();

  // Pipelined burst with a garbage line in the middle: every line gets a
  // response, in exactly the order sent.
  std::vector<std::string> requests;
  std::string burst;
  for (int i = 0; i < 25; ++i) {
    requests.push_back(point_line(100 - i, 0.25 * i));
    burst += requests.back();
    if (i == 10) burst += "garbage line\n";
  }
  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(burst);
  const std::vector<std::string> lines = client.read_lines(26);
  ASSERT_EQ(lines.size(), 26u);

  std::size_t request_index = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i == 11) {  // The garbage line's error response, slotted in order.
      EXPECT_FALSE(line_ok(lines[i]));
      EXPECT_EQ(line_id(lines[i]), -1);
      continue;
    }
    const serve::Request request = serve::parse_request(requests[request_index]);
    EXPECT_EQ(lines[i], engine->execute(request).to_jsonl()) << "line " << i;
    ++request_index;
  }
}

TEST_F(NetServerTest, NamedMapsRouteAndUnknownMapIsAnError) {
  ServerHarness harness;
  harness.server().add_engine("default", make_engine(21));
  harness.server().add_engine("floor2", make_engine(77));
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(point_line(1, 1.0) + point_line(2, 1.0, "floor2") +
                  point_line(3, 1.0, "nowhere"));
  const std::vector<std::string> lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(line_ok(lines[0]));
  EXPECT_TRUE(line_ok(lines[1]));
  // Different seeds -> different snapshots -> different predictions.
  EXPECT_NE(lines[0].substr(lines[0].find("best")), lines[1].substr(lines[1].find("best")));
  EXPECT_FALSE(line_ok(lines[2]));
  EXPECT_NE(lines[2].find("unknown map 'nowhere'"), std::string::npos);
}

TEST_F(NetServerTest, StatsAdminReportsCountersAndMaps) {
  ServerHarness harness;
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(point_line(1, 1.0) + "{\"id\":2,\"type\":\"stats\"}\n");
  const std::vector<std::string> lines = client.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  const obs::Json stats = obs::Json::parse(lines[1]);
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("id").as_int64(), 2);
  EXPECT_GE(stats.at("requests").as_int64(), 1);
  EXPECT_EQ(stats.at("maps").as_array().size(), 1u);
  EXPECT_EQ(stats.at("maps").as_array()[0].as_string(), "default");
  EXPECT_EQ(stats.at("reload_swaps").as_int64(), 0);
}

TEST_F(NetServerTest, StatsAdminReportsEnrichedSchema) {
  ServerConfig config;
  config.max_inflight = 123;
  config.max_batch = 17;
  config.cache_bytes = 8 << 20;
  ServerHarness harness(std::move(config));
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  // Stats snapshots are taken at admission: wait for the point's response so
  // its execution-side counters (cache, per-map responses) are in.
  client.send_all(point_line(1, 1.0));
  ASSERT_EQ(client.read_lines(1).size(), 1u);
  client.send_all("{\"id\":2,\"type\":\"stats\"}\n");
  const std::vector<std::string> lines = client.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  const obs::Json stats = obs::Json::parse(lines[0]);
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_GE(stats.at("uptime_seconds").as_double(), 0.0);
  EXPECT_GE(stats.at("cache_hits").as_int64() + stats.at("cache_misses").as_int64(), 1);
  const obs::Json& limits = stats.at("limits");
  EXPECT_EQ(limits.at("max_inflight").as_int64(), 123);
  EXPECT_EQ(limits.at("max_batch").as_int64(), 17);
  EXPECT_EQ(limits.at("cache_mb").as_int64(), 8);
  const obs::Json& window = stats.at("window");
  EXPECT_DOUBLE_EQ(window.at("span_seconds").as_double(), 60.0);  // 12 x 5 s.
  EXPECT_GE(window.at("qps").as_double(), 0.0);
  EXPECT_TRUE(window.at("latency_us").contains("p50"));
  EXPECT_TRUE(window.at("latency_us").contains("p99.9"));
  const obs::Json& loop = stats.at("loop");
  EXPECT_TRUE(loop.contains("stalled"));
  EXPECT_GE(loop.at("lag_p99_us").as_double(), 0.0);
  const obs::Json& per_map = stats.at("map_stats").at("default");
  EXPECT_GE(per_map.at("requests").as_int64(), 1);
  EXPECT_EQ(per_map.at("errors").as_int64(), 0);
}

namespace prom {

/// First sample value for `name` in a text exposition, or -1 when absent.
double sample_value(const std::string& text, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = text.find(name + " ", pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::stod(text.substr(pos + name.size() + 1));
    }
    pos += name.size();
  }
  return -1.0;
}

/// The sorted set of series names (# TYPE lines) in a text exposition.
std::vector<std::string> series_names(const std::string& text) {
  std::vector<std::string> names;
  std::size_t pos = 0;
  while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
    const std::size_t start = pos + 7;
    const std::size_t end = text.find(' ', start);
    names.push_back(text.substr(start, end - start));
    pos = end;
  }
  return names;
}

}  // namespace prom

TEST_F(NetServerTest, MetricsAdminScrapesMidPipelineWithoutBlocking) {
  ServerHarness harness;
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  // Pipelined burst with the scrape in the middle: the scrape's reply slots
  // into per-connection order like any other response — it never jumps the
  // queue and never waits on engine work beyond its queue position.
  std::string burst;
  for (int i = 1; i <= 8; ++i) burst += point_line(i, 0.25 * i);
  burst += "{\"id\":99,\"type\":\"metrics\"}\n";
  for (int i = 9; i <= 16; ++i) burst += point_line(i, 0.25 * i);
  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(burst);
  const std::vector<std::string> lines = client.read_lines(17);
  ASSERT_EQ(lines.size(), 17u);
  ASSERT_EQ(line_id(lines[8]), 99);  // In order: after the first 8 points.

  const obs::Json scrape = obs::Json::parse(lines[8]);
  EXPECT_TRUE(scrape.at("ok").as_bool());
  EXPECT_EQ(scrape.at("content_type").as_string(), "text/plain; version=0.0.4");
  const std::string text = scrape.at("prometheus").as_string();
  // Windowed tail gauges and per-map series are present mid-load.
  EXPECT_GE(prom::sample_value(text, "remgen_net_window_latency_p99_us"), 0.0);
  EXPECT_GE(prom::sample_value(text, "remgen_net_window_qps"), 0.0);
  EXPECT_GE(prom::sample_value(text, "remgen_net_map_default_requests"), 1.0);
  EXPECT_DOUBLE_EQ(prom::sample_value(text, "remgen_net_limit_max_batch"), 512.0);

  // Second scrape after more traffic: the series set is stable and the
  // monotonic values never step backwards.
  client.send_all(point_line(17, 3.0) + "{\"id\":100,\"type\":\"metrics\"}\n");
  const std::vector<std::string> more = client.read_lines(2);
  ASSERT_EQ(more.size(), 2u);
  const std::string text2 = obs::Json::parse(more[1]).at("prometheus").as_string();
  EXPECT_EQ(prom::series_names(text), prom::series_names(text2));
  EXPECT_GT(prom::sample_value(text2, "remgen_net_map_default_requests"),
            prom::sample_value(text, "remgen_net_map_default_requests"));
  EXPECT_GE(prom::sample_value(text2, "remgen_net_map_default_responses"),
            prom::sample_value(text, "remgen_net_map_default_responses"));
  EXPECT_EQ(harness.server().stats().metrics_scrapes, 2u);
}

TEST_F(NetServerTest, HttpMetricsEndpointServesPrometheusText) {
  ServerConfig config;
  config.http_metrics_port = 0;  // Ephemeral.
  ServerHarness harness(std::move(config));
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();
  const std::uint16_t http_port = harness.server().http_port();
  ASSERT_NE(http_port, 0);
  ASSERT_NE(http_port, port);

  Client data(port);
  ASSERT_TRUE(data.connected());
  data.send_all(point_line(1, 1.0));
  ASSERT_EQ(data.read_lines(1).size(), 1u);

  Client scraper(http_port);
  ASSERT_TRUE(scraper.connected());
  scraper.send_all("GET /metrics HTTP/1.0\r\n\r\n");
  std::string body;
  EXPECT_TRUE(scraper.wait_eof());  // Server closes after the response.
  // Everything buffered before EOF is the full HTTP response.
  const std::string response = scraper.take_pending();
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << response.substr(0, 64);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  const std::size_t split = response.find("\r\n\r\n");
  ASSERT_NE(split, std::string::npos);
  EXPECT_GE(prom::sample_value(response.substr(split + 4),
                               "remgen_net_map_default_requests"),
            1.0);

  // Unknown paths get a 404, not a hang.
  Client missing(http_port);
  ASSERT_TRUE(missing.connected());
  missing.send_all("GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_TRUE(missing.wait_eof());
  EXPECT_EQ(missing.take_pending().rfind("HTTP/1.0 404", 0), 0u);
  EXPECT_GE(harness.server().stats().metrics_scrapes, 1u);
}

TEST_F(NetServerTest, SlowLogRecordsLifecycleStampsAsJsonl) {
  const std::string path = ::testing::TempDir() + "net_slow.jsonl";
  std::remove(path.c_str());
  ServerConfig config;
  config.slow_log_path = path;
  config.slow_ms = 0.0;  // Log every request: deterministic under test.
  ServerHarness harness(std::move(config));
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 1; i <= 5; ++i) burst += point_line(i, 0.3 * i);
  client.send_all(burst);
  ASSERT_EQ(client.read_lines(5).size(), 5u);
  harness.stop();  // Drain closes the log; every entry is flushed.

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t entries = 0;
  while (std::getline(in, line)) {
    const obs::Json entry = obs::Json::parse(line);  // Throws on a torn line.
    EXPECT_EQ(entry.at("map").as_string(), "default");
    EXPECT_EQ(entry.at("type").as_string(), "point");
    EXPECT_GE(entry.at("queue_wait_us").as_double(), 0.0);
    EXPECT_GE(entry.at("exec_us").as_double(), 0.0);
    EXPECT_GE(entry.at("write_stall_us").as_double(), 0.0);
    EXPECT_GE(entry.at("total_us").as_double(),
              entry.at("exec_us").as_double());  // Total spans all stages.
    EXPECT_GE(entry.at("round_size").as_int64(), 1);
    EXPECT_GE(entry.at("id").as_int64(), 1);
    ++entries;
  }
  EXPECT_EQ(entries, 5u);
  EXPECT_EQ(harness.server().stats().slow_logged, 5u);
}

TEST_F(NetServerTest, OverloadedRequestsGetErrorsNotUnboundedQueueing) {
  ServerConfig config;
  config.max_inflight = 1;
  ServerHarness harness(std::move(config));
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  // One write delivers many lines in a single read: the first is admitted,
  // the rest of that buffer must be rejected, and every line still gets a
  // response in order.
  constexpr int kBurst = 64;
  std::string burst;
  for (int i = 1; i <= kBurst; ++i) burst += point_line(i, 0.1 * i);
  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(burst);
  const std::vector<std::string> lines = client.read_lines(kBurst);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBurst));

  std::size_t overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(line_id(lines[static_cast<std::size_t>(i)]), i + 1);  // Order preserved.
    if (!line_ok(lines[static_cast<std::size_t>(i)])) {
      EXPECT_NE(lines[static_cast<std::size_t>(i)].find("overloaded"), std::string::npos);
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0u);
  EXPECT_LT(overloaded, static_cast<std::size_t>(kBurst));  // Some were served.
  EXPECT_EQ(harness.server().stats().overload_rejections, overloaded);
}

TEST_F(NetServerTest, HotReloadSwapsWithZeroDroppedRequests) {
  const std::string path = ::testing::TempDir() + "net_reload.snap";
  store::save_snapshot_file(path, make_snapshot(77));

  ServerHarness harness;
  harness.server().add_engine("default", make_engine(21));
  const std::uint16_t port = harness.start();

  Client data(port);
  Client admin(port);
  ASSERT_TRUE(data.connected());
  ASSERT_TRUE(admin.connected());

  // Keep queries flowing while the reload loads + swaps in the background.
  std::string before;
  for (int i = 1; i <= 30; ++i) before += point_line(i, 0.1 * i);
  data.send_all(before);
  admin.send_all("{\"id\":900,\"type\":\"reload\",\"snapshot\":\"" + path + "\"}\n");
  std::string after;
  for (int i = 31; i <= 60; ++i) after += point_line(i, 0.1 * i);
  data.send_all(after);

  const std::vector<std::string> reload_lines = admin.read_lines(1);
  ASSERT_EQ(reload_lines.size(), 1u);
  EXPECT_TRUE(line_ok(reload_lines[0])) << reload_lines[0];
  EXPECT_EQ(line_id(reload_lines[0]), 900);
  EXPECT_NE(reload_lines[0].find("\"reloaded\":true"), std::string::npos);

  // Zero drops: all 60 data responses arrive, in order, all ok.
  const std::vector<std::string> lines = data.read_lines(60);
  ASSERT_EQ(lines.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(line_id(lines[static_cast<std::size_t>(i)]), i + 1);
    EXPECT_TRUE(line_ok(lines[static_cast<std::size_t>(i)])) << lines[static_cast<std::size_t>(i)];
  }

  // Queries sent after the swap acknowledgement run on the new snapshot.
  const std::shared_ptr<const serve::QueryEngine> reloaded =
      std::make_shared<const serve::QueryEngine>(store::load_snapshot_file(path), 1 << 20);
  data.send_all(point_line(61, 1.25));
  const std::vector<std::string> swapped = data.read_lines(1);
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0],
            reloaded->execute(serve::parse_request(point_line(61, 1.25))).to_jsonl());
  EXPECT_EQ(harness.server().stats().reload_swaps, 1u);

  // A reload of a bogus file fails cleanly and swaps nothing.
  admin.send_all("{\"id\":901,\"type\":\"reload\",\"snapshot\":\"/nonexistent.snap\"}\n");
  const std::vector<std::string> failed = admin.read_lines(1);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_FALSE(line_ok(failed[0]));
  EXPECT_NE(failed[0].find("reload failed"), std::string::npos);
  EXPECT_EQ(harness.server().stats().reload_failures, 1u);
}

TEST_F(NetServerTest, IngestPublishServesAcrossEpochsWithZeroDrops) {
  // A live IngestPipeline hot-publishes into the running server while a
  // client pipelines point queries across two epoch swaps: no request may
  // drop, every response must be byte-identical to the engine pinned at its
  // admission, and stats must surface the new epoch id after each swap.
  ingest::IngestConfig config;
  config.volume = geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0});
  config.rem.voxel_m = 0.5;
  config.rem.min_samples_per_mac = 1;
  config.cache_bytes = 1 << 20;
  config.map = "default";

  ServerHarness harness;
  config.server = &harness.server();
  ingest::IngestPipeline pipeline(std::move(config));

  // An engine equivalent to what each publish installed, rebuilt from the
  // same serialised epoch bytes.
  const auto engine_for = [&pipeline] {
    std::istringstream in(pipeline.latest_snapshot_bytes());
    return std::make_shared<const serve::QueryEngine>(store::load_snapshot(in), 1 << 20);
  };

  pipeline.push_batch(synthetic_dataset(21).samples());
  ASSERT_TRUE(pipeline.flush().has_value());  // Epoch 1 published pre-bind.
  const auto engine1 = engine_for();
  const std::uint16_t port = harness.start();

  Client data(port);
  ASSERT_TRUE(data.connected());
  std::vector<std::string> requests;
  const auto burst = [&requests](int from, int to) {
    std::string text;
    for (int i = from; i <= to; ++i) {
      requests.push_back(point_line(i, 0.05 * i));
      text += requests.back();
    }
    return text;
  };

  data.send_all(burst(1, 20));
  pipeline.push_batch(synthetic_dataset(33).samples());
  const auto epoch2 = pipeline.flush();  // Epoch 2, live under traffic.
  ASSERT_TRUE(epoch2.has_value() && epoch2->published);
  const auto engine2 = engine_for();
  data.send_all(burst(21, 40));
  pipeline.push_batch(synthetic_dataset(44).samples());
  const auto epoch3 = pipeline.flush();  // Epoch 3.
  ASSERT_TRUE(epoch3.has_value() && epoch3->published);
  const auto engine3 = engine_for();
  data.send_all(burst(41, 60));

  // Zero drops across both swaps: all 60 responses, in order, all ok.
  const std::vector<std::string> lines = data.read_lines(60);
  ASSERT_EQ(lines.size(), 60u);
  const std::vector<std::shared_ptr<const serve::QueryEngine>> engines{engine1, engine2,
                                                                       engine3};
  std::size_t epoch_floor = 0;  // Swaps only move forward, never back.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(line_id(lines[i]), static_cast<std::int64_t>(i) + 1);
    EXPECT_TRUE(line_ok(lines[i])) << lines[i];
    const serve::Request request = serve::parse_request(requests[i]);
    std::size_t matched = engines.size();
    for (std::size_t e = epoch_floor; e < engines.size(); ++e) {
      if (lines[i] == engines[e]->execute(request).to_jsonl()) {
        matched = e;
        break;
      }
    }
    ASSERT_LT(matched, engines.size()) << "line " << i << " matches no epoch: " << lines[i];
    epoch_floor = matched;
  }

  // Queries sent after the last publish run on the epoch-3 engine.
  data.send_all(point_line(61, 1.25));
  const std::vector<std::string> swapped = data.read_lines(1);
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0],
            engine3->execute(serve::parse_request(point_line(61, 1.25))).to_jsonl());

  // The admin plane reports the publishes and the live epoch id.
  Client admin(port);
  ASSERT_TRUE(admin.connected());
  admin.send_all("{\"id\":900,\"type\":\"stats\"}\n");
  const std::vector<std::string> stats_lines = admin.read_lines(1);
  ASSERT_EQ(stats_lines.size(), 1u);
  const obs::Json stats = obs::Json::parse(stats_lines[0]);
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("publish_swaps").as_int64(), 3);
  EXPECT_EQ(stats.at("map_stats").at("default").at("epoch").as_int64(), 3);

  harness.stop();  // Join first: the epoch map is loop-thread state.
  EXPECT_EQ(harness.server().stats().publish_swaps, 3u);
  EXPECT_EQ(harness.server().map_epochs().at("default"), 3u);
}

TEST_F(NetServerTest, GracefulDrainFinishesQueuedWorkThenCloses) {
  // max_batch 1: one request executes per loop round, so receiving the first
  // response proves the remaining pipelined requests are still queued when
  // shutdown fires — the drain owes them all.
  ServerConfig config;
  config.max_batch = 1;
  ServerHarness harness(std::move(config));
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 1; i <= 40; ++i) burst += point_line(i, 0.1 * i);
  client.send_all(burst);
  client.half_close();  // Pipelined client done sending; responses still owed.
  const std::vector<std::string> first = client.read_lines(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(line_id(first[0]), 1);
  harness.server().request_shutdown();

  const std::vector<std::string> rest = client.read_lines(39);
  ASSERT_EQ(rest.size(), 39u);
  for (int i = 0; i < 39; ++i) {
    EXPECT_EQ(line_id(rest[static_cast<std::size_t>(i)]), i + 2);
    EXPECT_TRUE(line_ok(rest[static_cast<std::size_t>(i)]));
  }
  EXPECT_TRUE(client.wait_eof());
  harness.stop();  // run() must have exited; join would hang otherwise.
  EXPECT_EQ(harness.server().stats().responses, 40u);
}

}  // namespace
}  // namespace remgen::net
