// In-process tests for the net::Server event loop: pipelined in-order
// delivery, admission control, named maps, admin stats, hot reload with zero
// dropped in-flight requests, and graceful drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/rem_builder.hpp"
#include "exec/config.hpp"
#include "ml/model_zoo.hpp"
#include "net/server.hpp"
#include "serve/engine.hpp"
#include "serve/request.hpp"
#include "store/snapshot.hpp"
#include "util/rng.hpp"

namespace remgen::net {
namespace {

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";

data::Dataset synthetic_dataset(std::uint64_t seed) {
  util::Rng rng(seed);
  data::Dataset ds;
  for (std::size_t i = 0; i < 40; ++i) {
    data::Sample s;
    s.position = {rng.uniform(0.0, 4.0), rng.uniform(0.0, 3.0), rng.uniform(0.0, 2.0)};
    s.mac = *radio::MacAddress::parse(kMacA);
    s.channel = 6;
    s.rss_dbm = -55.0 - 4.0 * s.position.x + rng.gaussian(0, 1.0);
    ds.add(s);
    s.mac = *radio::MacAddress::parse(kMacB);
    s.channel = 11;
    s.rss_dbm = -75.0 - 2.0 * s.position.y + rng.gaussian(0, 1.0);
    ds.add(s);
  }
  return ds;
}

store::Snapshot make_snapshot(std::uint64_t seed = 21) {
  const data::Dataset ds = synthetic_dataset(seed);
  store::Snapshot snapshot;
  snapshot.dataset = ds;
  auto model = ml::make_model(ml::ModelKind::PerMacKnn);
  core::RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  snapshot.rem.emplace(
      core::build_rem(ds, *model, geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}), config));
  snapshot.model = std::move(model);
  return snapshot;
}

std::shared_ptr<const serve::QueryEngine> make_engine(std::uint64_t seed = 21) {
  return std::make_shared<const serve::QueryEngine>(make_snapshot(seed), 1 << 20);
}

/// Blocking loopback client speaking the newline-delimited protocol.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  void send_all(const std::string& text) {
    std::size_t off = 0;
    while (off < text.size()) {
      const ssize_t n = ::send(fd_, text.data() + off, text.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  void half_close() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until `count` lines arrived, EOF, or the deadline (seconds).
  std::vector<std::string> read_lines(std::size_t count, int deadline_s = 20) {
    std::vector<std::string> lines;
    const auto deadline_ms = deadline_s * 1000;
    int waited_ms = 0;
    while (lines.size() < count && waited_ms < deadline_ms) {
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 100);
      if (ready == 0) {
        waited_ms += 100;
        continue;
      }
      char buffer[16384];
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n <= 0) break;  // EOF or error: return what we have.
      pending_.append(buffer, static_cast<std::size_t>(n));
      std::size_t start = 0;
      while (lines.size() < count) {  // Surplus stays buffered for later calls.
        const std::size_t nl = pending_.find('\n', start);
        if (nl == std::string::npos) break;
        lines.push_back(pending_.substr(start, nl - start));
        start = nl + 1;
      }
      pending_.erase(0, start);
    }
    return lines;
  }

  /// True once recv reports EOF (server closed its side).
  bool wait_eof(int deadline_s = 20) {
    int waited_ms = 0;
    while (waited_ms < deadline_s * 1000) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 100) > 0) {
        char buffer[4096];
        const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
        if (n == 0) return true;
        if (n < 0) return false;
        pending_.append(buffer, static_cast<std::size_t>(n));
      } else {
        waited_ms += 100;
      }
    }
    return false;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string pending_;
};

/// Runs a Server on an ephemeral loopback port in a background thread and
/// guarantees shutdown + join on scope exit.
class ServerHarness {
 public:
  explicit ServerHarness(ServerConfig config = {}) : server_(std::move(config)) {}
  ~ServerHarness() { stop(); }

  Server& server() { return server_; }

  std::uint16_t start() {
    const std::uint16_t port = server_.bind_and_listen();
    thread_ = std::thread([this] { server_.run(); });
    return port;
  }

  void stop() {
    if (thread_.joinable()) {
      server_.request_shutdown();
      thread_.join();
    }
  }

 private:
  Server server_;
  std::thread thread_;
};

std::string point_line(std::int64_t id, double x, const char* map = nullptr) {
  std::string line = "{\"id\":" + std::to_string(id) + ",\"type\":\"point\",\"top\":2,\"x\":" +
                     std::to_string(x) + ",\"y\":1.0,\"z\":1.0";
  if (map != nullptr) line += std::string(",\"map\":\"") + map + "\"";
  return line + "}\n";
}

std::int64_t line_id(const std::string& line) {
  return obs::Json::parse(line).at("id").as_int64();
}

bool line_ok(const std::string& line) { return obs::Json::parse(line).at("ok").as_bool(); }

class NetServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = exec::thread_count();
    exec::set_thread_count(2);
  }
  void TearDown() override { exec::set_thread_count(previous_threads_); }
  std::size_t previous_threads_ = 1;
};

TEST_F(NetServerTest, PipelinedResponsesArriveInRequestOrderByteIdentical) {
  const std::shared_ptr<const serve::QueryEngine> engine = make_engine();
  ServerHarness harness;
  harness.server().add_engine("default", engine);
  const std::uint16_t port = harness.start();

  // Pipelined burst with a garbage line in the middle: every line gets a
  // response, in exactly the order sent.
  std::vector<std::string> requests;
  std::string burst;
  for (int i = 0; i < 25; ++i) {
    requests.push_back(point_line(100 - i, 0.25 * i));
    burst += requests.back();
    if (i == 10) burst += "garbage line\n";
  }
  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(burst);
  const std::vector<std::string> lines = client.read_lines(26);
  ASSERT_EQ(lines.size(), 26u);

  std::size_t request_index = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i == 11) {  // The garbage line's error response, slotted in order.
      EXPECT_FALSE(line_ok(lines[i]));
      EXPECT_EQ(line_id(lines[i]), -1);
      continue;
    }
    const serve::Request request = serve::parse_request(requests[request_index]);
    EXPECT_EQ(lines[i], engine->execute(request).to_jsonl()) << "line " << i;
    ++request_index;
  }
}

TEST_F(NetServerTest, NamedMapsRouteAndUnknownMapIsAnError) {
  ServerHarness harness;
  harness.server().add_engine("default", make_engine(21));
  harness.server().add_engine("floor2", make_engine(77));
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(point_line(1, 1.0) + point_line(2, 1.0, "floor2") +
                  point_line(3, 1.0, "nowhere"));
  const std::vector<std::string> lines = client.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(line_ok(lines[0]));
  EXPECT_TRUE(line_ok(lines[1]));
  // Different seeds -> different snapshots -> different predictions.
  EXPECT_NE(lines[0].substr(lines[0].find("best")), lines[1].substr(lines[1].find("best")));
  EXPECT_FALSE(line_ok(lines[2]));
  EXPECT_NE(lines[2].find("unknown map 'nowhere'"), std::string::npos);
}

TEST_F(NetServerTest, StatsAdminReportsCountersAndMaps) {
  ServerHarness harness;
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(point_line(1, 1.0) + "{\"id\":2,\"type\":\"stats\"}\n");
  const std::vector<std::string> lines = client.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  const obs::Json stats = obs::Json::parse(lines[1]);
  EXPECT_TRUE(stats.at("ok").as_bool());
  EXPECT_EQ(stats.at("id").as_int64(), 2);
  EXPECT_GE(stats.at("requests").as_int64(), 1);
  EXPECT_EQ(stats.at("maps").as_array().size(), 1u);
  EXPECT_EQ(stats.at("maps").as_array()[0].as_string(), "default");
  EXPECT_EQ(stats.at("reload_swaps").as_int64(), 0);
}

TEST_F(NetServerTest, OverloadedRequestsGetErrorsNotUnboundedQueueing) {
  ServerConfig config;
  config.max_inflight = 1;
  ServerHarness harness(std::move(config));
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  // One write delivers many lines in a single read: the first is admitted,
  // the rest of that buffer must be rejected, and every line still gets a
  // response in order.
  constexpr int kBurst = 64;
  std::string burst;
  for (int i = 1; i <= kBurst; ++i) burst += point_line(i, 0.1 * i);
  Client client(port);
  ASSERT_TRUE(client.connected());
  client.send_all(burst);
  const std::vector<std::string> lines = client.read_lines(kBurst);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kBurst));

  std::size_t overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    EXPECT_EQ(line_id(lines[static_cast<std::size_t>(i)]), i + 1);  // Order preserved.
    if (!line_ok(lines[static_cast<std::size_t>(i)])) {
      EXPECT_NE(lines[static_cast<std::size_t>(i)].find("overloaded"), std::string::npos);
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0u);
  EXPECT_LT(overloaded, static_cast<std::size_t>(kBurst));  // Some were served.
  EXPECT_EQ(harness.server().stats().overload_rejections, overloaded);
}

TEST_F(NetServerTest, HotReloadSwapsWithZeroDroppedRequests) {
  const std::string path = ::testing::TempDir() + "net_reload.snap";
  store::save_snapshot_file(path, make_snapshot(77));

  ServerHarness harness;
  harness.server().add_engine("default", make_engine(21));
  const std::uint16_t port = harness.start();

  Client data(port);
  Client admin(port);
  ASSERT_TRUE(data.connected());
  ASSERT_TRUE(admin.connected());

  // Keep queries flowing while the reload loads + swaps in the background.
  std::string before;
  for (int i = 1; i <= 30; ++i) before += point_line(i, 0.1 * i);
  data.send_all(before);
  admin.send_all("{\"id\":900,\"type\":\"reload\",\"snapshot\":\"" + path + "\"}\n");
  std::string after;
  for (int i = 31; i <= 60; ++i) after += point_line(i, 0.1 * i);
  data.send_all(after);

  const std::vector<std::string> reload_lines = admin.read_lines(1);
  ASSERT_EQ(reload_lines.size(), 1u);
  EXPECT_TRUE(line_ok(reload_lines[0])) << reload_lines[0];
  EXPECT_EQ(line_id(reload_lines[0]), 900);
  EXPECT_NE(reload_lines[0].find("\"reloaded\":true"), std::string::npos);

  // Zero drops: all 60 data responses arrive, in order, all ok.
  const std::vector<std::string> lines = data.read_lines(60);
  ASSERT_EQ(lines.size(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(line_id(lines[static_cast<std::size_t>(i)]), i + 1);
    EXPECT_TRUE(line_ok(lines[static_cast<std::size_t>(i)])) << lines[static_cast<std::size_t>(i)];
  }

  // Queries sent after the swap acknowledgement run on the new snapshot.
  const std::shared_ptr<const serve::QueryEngine> reloaded =
      std::make_shared<const serve::QueryEngine>(store::load_snapshot_file(path), 1 << 20);
  data.send_all(point_line(61, 1.25));
  const std::vector<std::string> swapped = data.read_lines(1);
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0],
            reloaded->execute(serve::parse_request(point_line(61, 1.25))).to_jsonl());
  EXPECT_EQ(harness.server().stats().reload_swaps, 1u);

  // A reload of a bogus file fails cleanly and swaps nothing.
  admin.send_all("{\"id\":901,\"type\":\"reload\",\"snapshot\":\"/nonexistent.snap\"}\n");
  const std::vector<std::string> failed = admin.read_lines(1);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_FALSE(line_ok(failed[0]));
  EXPECT_NE(failed[0].find("reload failed"), std::string::npos);
  EXPECT_EQ(harness.server().stats().reload_failures, 1u);
}

TEST_F(NetServerTest, GracefulDrainFinishesQueuedWorkThenCloses) {
  // max_batch 1: one request executes per loop round, so receiving the first
  // response proves the remaining pipelined requests are still queued when
  // shutdown fires — the drain owes them all.
  ServerConfig config;
  config.max_batch = 1;
  ServerHarness harness(std::move(config));
  harness.server().add_engine("default", make_engine());
  const std::uint16_t port = harness.start();

  Client client(port);
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (int i = 1; i <= 40; ++i) burst += point_line(i, 0.1 * i);
  client.send_all(burst);
  client.half_close();  // Pipelined client done sending; responses still owed.
  const std::vector<std::string> first = client.read_lines(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(line_id(first[0]), 1);
  harness.server().request_shutdown();

  const std::vector<std::string> rest = client.read_lines(39);
  ASSERT_EQ(rest.size(), 39u);
  for (int i = 0; i < 39; ++i) {
    EXPECT_EQ(line_id(rest[static_cast<std::size_t>(i)]), i + 2);
    EXPECT_TRUE(line_ok(rest[static_cast<std::size_t>(i)]));
  }
  EXPECT_TRUE(client.wait_eof());
  harness.stop();  // run() must have exited; join would hang otherwise.
  EXPECT_EQ(harness.server().stats().responses, 40u);
}

}  // namespace
}  // namespace remgen::net
