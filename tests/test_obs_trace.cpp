// Telemetry trace spans: nesting, simulated-vs-wall time capture, instant
// events, runtime gating, and the Chrome trace_event exporter round-tripped
// through the JSON parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace {

using namespace remgen;

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::trace().clear();
    obs::set_sim_time(0.0);
  }
  void TearDown() override { obs::set_enabled(false); }
};

const obs::SpanRecord* find_record(const std::vector<obs::SpanRecord>& records,
                                   std::string_view name) {
  const auto it = std::find_if(records.begin(), records.end(),
                               [name](const obs::SpanRecord& r) { return r.name == name; });
  return it == records.end() ? nullptr : &*it;
}

TEST_F(ObsTraceTest, SpansNestIntoATree) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  {
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
      obs::instant("ping");
    }
  }
  const std::vector<obs::SpanRecord> records = obs::trace().snapshot();
  ASSERT_EQ(records.size(), 3u);

  const obs::SpanRecord* outer = find_record(records, "outer");
  const obs::SpanRecord* inner = find_record(records, "inner");
  const obs::SpanRecord* ping = find_record(records, "ping");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(ping, nullptr);

  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->parent_id, outer->id);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(ping->parent_id, inner->id);
  EXPECT_EQ(ping->phase, 'i');
  // Children complete (and therefore record) before their parent.
  EXPECT_LE(outer->start_us, inner->start_us);
  EXPECT_GE(outer->start_us + outer->dur_us, inner->start_us + inner->dur_us);
}

TEST_F(ObsTraceTest, SpansCaptureSimAndWallTime) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  obs::set_sim_time(10.0);
  {
    obs::Span span("mission");
    obs::set_sim_time(14.5);  // the co-simulation loop advances the clock
  }
  const std::vector<obs::SpanRecord> records = obs::trace().snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].sim_start_s, 10.0);
  EXPECT_DOUBLE_EQ(records[0].sim_end_s, 14.5);
  // Wall time is on the process-wide steady epoch, duration >= 0.
  EXPECT_GE(records[0].dur_us, 0u);
}

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  obs::set_enabled(false);
  {
    obs::Span span("invisible");
    span.arg("key", "value");
    obs::instant("also-invisible");
  }
  EXPECT_EQ(obs::trace().size(), 0u);
}

TEST_F(ObsTraceTest, CapacityBoundsTheBuffer) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  obs::trace().set_capacity(2);
  for (int i = 0; i < 5; ++i) obs::instant("burst");
  EXPECT_EQ(obs::trace().size(), 2u);
  EXPECT_EQ(obs::trace().dropped(), 3u);
  obs::trace().set_capacity(1u << 18);
  obs::trace().clear();
}

TEST_F(ObsTraceTest, ChromeTraceExportRoundTrips) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  obs::set_sim_time(3.0);
  {
    obs::Span campaign("campaign");
    campaign.arg("uav_count", 2);
    {
      obs::Span mission("campaign.uav_mission");
      mission.arg("uav", 0);
      obs::set_sim_time(7.0);
    }
    obs::instant("crtp.radio_off", "crtp");
  }

  std::ostringstream out;
  const std::vector<obs::SpanRecord> records = obs::trace().snapshot();
  obs::write_chrome_trace(out, records);
  const obs::Json parsed = obs::Json::parse(out.str());

  ASSERT_TRUE(parsed.contains("traceEvents"));
  const obs::Json::Array& events = parsed.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 3u);

  // Every event carries the Chrome trace_event required fields.
  for (const obs::Json& event : events) {
    EXPECT_TRUE(event.at("ph").is_string());
    EXPECT_TRUE(event.at("ts").is_number());
    EXPECT_TRUE(event.at("pid").is_number());
    EXPECT_TRUE(event.at("tid").is_number());
    EXPECT_TRUE(event.at("args").is_object());
  }

  const auto find_event = [&events](std::string_view name) -> const obs::Json& {
    const auto it =
        std::find_if(events.begin(), events.end(), [name](const obs::Json& event) {
          return event.at("name").as_string() == name;
        });
    EXPECT_NE(it, events.end());
    return *it;
  };

  const obs::Json& mission = find_event("campaign.uav_mission");
  EXPECT_EQ(mission.at("ph").as_string(), "X");
  EXPECT_EQ(mission.at("args").at("uav").as_string(), "0");
  EXPECT_DOUBLE_EQ(mission.at("args").at("sim_start_s").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(mission.at("args").at("sim_end_s").as_double(), 7.0);

  const obs::Json& campaign = find_event("campaign");
  const obs::Json& radio_off = find_event("crtp.radio_off");
  EXPECT_EQ(radio_off.at("ph").as_string(), "i");
  EXPECT_EQ(radio_off.at("cat").as_string(), "crtp");
  // The mission nests under the campaign span in the exported tree.
  EXPECT_DOUBLE_EQ(mission.at("args").at("parent_id").as_double(),
                   campaign.at("args").at("span_id").as_double());
}

TEST_F(ObsTraceTest, SpanArgsFormatValues) {
  if (!obs::compiled()) GTEST_SKIP() << "telemetry compiled out";
  {
    obs::Span span("typed-args");
    span.arg("count", std::size_t{42});
    span.arg("ratio", 2.5);
    span.arg("label", "uav-a");
  }
  const std::vector<obs::SpanRecord> records = obs::trace().snapshot();
  ASSERT_EQ(records.size(), 1u);
  ASSERT_EQ(records[0].args.size(), 3u);
  EXPECT_EQ(records[0].args[0].second, "42");
  EXPECT_EQ(records[0].args[1].second, "2.500000");
  EXPECT_EQ(records[0].args[2].second, "uav-a");
}

}  // namespace
