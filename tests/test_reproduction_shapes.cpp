// Regression tests for the reproduced result *shapes* — the claims
// EXPERIMENTS.md makes must keep holding as the code evolves. Each test mirrors
// one figure/finding of the paper at reduced cost.
#include <gtest/gtest.h>

#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"
#include "util/fmt.hpp"
#include "uwb/anchor.hpp"

namespace remgen {
namespace {

/// One shared full campaign (the expensive part) for the dataset-level shapes.
struct PaperRun {
  util::Rng rng{2022};
  radio::Scenario scenario{radio::Scenario::make_apartment(rng)};
  mission::CampaignResult campaign{
      mission::run_campaign(scenario, mission::CampaignConfig{}, rng)};
};

const PaperRun& paper_run() {
  static PaperRun run;
  return run;
}

TEST(ReproFig5, RadioOffDetectsMoreOnEveryCarrier) {
  const auto& env = paper_run().scenario.environment();
  const geom::Vec3 p = paper_run().scenario.scan_volume().center();

  auto total = [&](const radio::CrazyradioInterference* source, std::uint64_t seed) {
    util::Rng rng(seed);
    std::size_t n = 0;
    for (int i = 0; i < 6; ++i) n += env.scan(p, 2.1, source, rng).size();
    return n;
  };
  const std::size_t off = total(nullptr, 1);
  for (const double carrier : {2400.0, 2425.0, 2450.0, 2475.0, 2500.0, 2525.0}) {
    radio::CrazyradioInterference interference;
    interference.set_carrier_mhz(carrier);
    EXPECT_LT(total(&interference, 1), off) << "carrier " << carrier;
  }
}

TEST(ReproFig6, DroneAOutcollectsDroneB) {
  const auto per_uav = paper_run().campaign.dataset.samples_per_uav();
  ASSERT_TRUE(per_uav.count(0) && per_uav.count(1));
  EXPECT_GT(per_uav.at(0), per_uav.at(1));
  // And in the paper's ballpark: ratio between 1.05 and 1.6.
  const double ratio =
      static_cast<double>(per_uav.at(0)) / static_cast<double>(per_uav.at(1));
  EXPECT_GT(ratio, 1.05);
  EXPECT_LT(ratio, 1.6);
}

TEST(ReproFig7, SampleCountTrendsFollowBuildingCore) {
  // Regress per-scan sample count on scan position along x and y.
  std::map<std::pair<int, int>, std::pair<geom::Vec3, std::size_t>> scans;
  for (const data::Sample& s : paper_run().campaign.dataset.samples()) {
    auto& [pos, count] = scans[{s.uav_id, s.waypoint_index}];
    pos = s.position;
    ++count;
  }
  auto slope = [&](int axis) {
    double n = 0, sx = 0, sy = 0, sxy = 0, sxx = 0;
    for (const auto& [key, value] : scans) {
      const double x = axis == 0 ? value.first.x : value.first.y;
      const double y = static_cast<double>(value.second);
      n += 1;
      sx += x;
      sy += y;
      sxy += x * y;
      sxx += x * x;
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
  };
  EXPECT_GT(slope(0), 1.0);   // counts grow with x
  EXPECT_LT(slope(1), -0.2);  // counts shrink with y
}

TEST(ReproFig8, BaselineLosesToEverySpatialModel) {
  const data::Dataset prepared =
      paper_run().campaign.dataset.filter_min_samples_per_mac(16);
  ASSERT_GT(prepared.size(), 1000u);
  util::Rng split_rng(99);
  const data::DatasetSplit split = prepared.split(0.75, split_rng);

  const auto baseline = ml::make_model(ml::ModelKind::BaselineMeanPerMac);
  baseline->fit(split.train);
  const double baseline_rmse = ml::evaluate(*baseline, split.test).rmse;

  for (const ml::ModelKind kind :
       {ml::ModelKind::KnnK3Distance, ml::ModelKind::KnnScaled16, ml::ModelKind::PerMacKnn,
        ml::ModelKind::NeuralNet16, ml::ModelKind::Kriging}) {
    const auto model = ml::make_model(kind);
    model->fit(split.train);
    const double rmse = ml::evaluate(*model, split.test).rmse;
    EXPECT_LT(rmse, baseline_rmse) << ml::model_kind_name(kind);
    // And in the paper's ballpark: a few dB, not an order of magnitude.
    EXPECT_GT(rmse, 2.5) << ml::model_kind_name(kind);
    EXPECT_LT(rmse, 7.0) << ml::model_kind_name(kind);
  }
}

TEST(ReproEndurance, HoverScanCycleSustainsRoughly36Scans) {
  util::Rng rng(2022);
  const radio::Scenario& scenario = paper_run().scenario;
  uav::CrazyflieConfig config;
  config.lps.mode = uwb::LocalizationMode::Twr;
  uav::Crazyflie uav(0, scenario.environment(), &scenario.floorplan(),
                     uwb::corner_anchors(scenario.scan_volume()), config, {1.8, 1.6, 0.0},
                     rng.fork("uav"));
  for (int i = 0; i < 100; ++i) uav.step(0.01);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());

  double next_setpoint = 0.0;
  double next_scan = 5.0;
  std::size_t seen = 0;
  double elapsed = 0.0;
  while (elapsed < 900.0 && !uav.erratic()) {
    if (elapsed >= next_setpoint) {
      uav.link().base_send({"cmd", "goto 1.8 1.6 1.0"}, uav.now());
      next_setpoint = elapsed + 0.2;
    }
    if (next_scan >= 0.0 && elapsed >= next_scan) {
      uav.link().base_send({"cmd", util::format("scan {}", uav.completed_scans())}, uav.now());
      next_scan = -1.0;
    }
    uav.step(0.01);
    (void)uav.link().base_receive(uav.now());
    if (uav.completed_scans() > seen) {
      seen = uav.completed_scans();
      next_scan = elapsed + 8.0;
    }
    elapsed += 0.01;
  }
  // Paper: 36 scans over 6 min 12 s.
  EXPECT_GE(seen, 30u);
  EXPECT_LE(seen, 42u);
  EXPECT_GT(elapsed, 330.0);
  EXPECT_LT(elapsed, 420.0);
}

TEST(ReproStats, DatasetMatchesPaperBallpark) {
  const data::Dataset& ds = paper_run().campaign.dataset;
  EXPECT_GT(ds.size(), 2200u);
  EXPECT_LT(ds.size(), 3600u);
  EXPECT_GE(ds.distinct_macs().size(), 60u);
  EXPECT_LE(ds.distinct_macs().size(), 73u);
  EXPECT_GE(ds.distinct_ssids().size(), 44u);
  EXPECT_LE(ds.distinct_ssids().size(), 49u);
  EXPECT_GT(ds.mean_rss_dbm(), -80.0);
  EXPECT_LT(ds.mean_rss_dbm(), -68.0);
}

}  // namespace
}  // namespace remgen
