#include <gtest/gtest.h>

#include <sstream>

#include "data/dataset.hpp"

namespace remgen::data {
namespace {

Sample make_sample(double x, double y, double z, const char* mac, double rss, int uav = 0,
                   int waypoint = 0, const char* ssid = "net") {
  Sample s;
  s.position = {x, y, z};
  s.ssid = ssid;
  s.rss_dbm = rss;
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.uav_id = uav;
  s.waypoint_index = waypoint;
  return s;
}

Dataset sample_dataset() {
  Dataset ds;
  ds.add(make_sample(0, 0, 0, "02:00:00:00:00:01", -70.0, 0, 0, "a"));
  ds.add(make_sample(1, 0, 0, "02:00:00:00:00:01", -72.0, 0, 1, "a"));
  ds.add(make_sample(0, 1, 0, "02:00:00:00:00:02", -80.0, 1, 0, "b"));
  ds.add(make_sample(1, 1, 0, "02:00:00:00:00:02", -82.0, 1, 1, "b"));
  ds.add(make_sample(2, 2, 1, "02:00:00:00:00:03", -90.0, 1, 2, "a"));
  return ds;
}

TEST(Dataset, SizeAndEmpty) {
  Dataset ds;
  EXPECT_TRUE(ds.empty());
  ds = sample_dataset();
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_FALSE(ds.empty());
}

TEST(Dataset, DistinctCounts) {
  const Dataset ds = sample_dataset();
  EXPECT_EQ(ds.distinct_macs().size(), 3u);
  EXPECT_EQ(ds.distinct_ssids().size(), 2u);
}

TEST(Dataset, MeanRss) {
  const Dataset ds = sample_dataset();
  EXPECT_DOUBLE_EQ(ds.mean_rss_dbm(), (-70.0 - 72.0 - 80.0 - 82.0 - 90.0) / 5.0);
}

TEST(Dataset, SamplesPerMacAndUavAndWaypoint) {
  const Dataset ds = sample_dataset();
  const auto per_mac = ds.samples_per_mac();
  EXPECT_EQ(per_mac.at(*radio::MacAddress::parse("02:00:00:00:00:01")), 2u);
  EXPECT_EQ(per_mac.at(*radio::MacAddress::parse("02:00:00:00:00:03")), 1u);
  const auto per_uav = ds.samples_per_uav();
  EXPECT_EQ(per_uav.at(0), 2u);
  EXPECT_EQ(per_uav.at(1), 3u);
  const auto per_wp = ds.samples_per_waypoint();
  EXPECT_EQ(per_wp.at(0), 2u);
  EXPECT_EQ(per_wp.at(2), 1u);
}

TEST(Dataset, FilterMinSamplesPerMac) {
  const Dataset ds = sample_dataset();
  std::size_t dropped = 0;
  const Dataset filtered = ds.filter_min_samples_per_mac(2, &dropped);
  EXPECT_EQ(filtered.size(), 4u);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(filtered.distinct_macs().size(), 2u);
}

TEST(Dataset, FilterKeepsEverythingAtThresholdOne) {
  const Dataset ds = sample_dataset();
  std::size_t dropped = 0;
  EXPECT_EQ(ds.filter_min_samples_per_mac(1, &dropped).size(), 5u);
  EXPECT_EQ(dropped, 0u);
}

TEST(Dataset, FilterCanDropEverything) {
  const Dataset ds = sample_dataset();
  EXPECT_TRUE(ds.filter_min_samples_per_mac(100).empty());
}

TEST(Dataset, AxisHistogram) {
  const Dataset ds = sample_dataset();
  const auto bins = ds.axis_histogram(0, 1.0);  // x in {0,0,1,1,2}
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0].second, 2u);
  EXPECT_EQ(bins[1].second, 2u);
  EXPECT_EQ(bins[2].second, 1u);
  EXPECT_DOUBLE_EQ(bins[0].first, 0.0);
}

TEST(Dataset, AxisHistogramNegativeCoordinates) {
  Dataset ds;
  ds.add(make_sample(-1.2, 0, 0, "02:00:00:00:00:01", -70.0));
  ds.add(make_sample(0.3, 0, 0, "02:00:00:00:00:01", -70.0));
  const auto bins = ds.axis_histogram(0, 0.5);
  EXPECT_DOUBLE_EQ(bins.front().first, -1.5);
  EXPECT_EQ(bins.front().second, 1u);
}

TEST(Dataset, SplitProportionsAndCompleteness) {
  Dataset ds;
  for (int i = 0; i < 100; ++i) {
    ds.add(make_sample(i, 0, 0, "02:00:00:00:00:01", -70.0 - i));
  }
  util::Rng rng(5);
  const DatasetSplit split = ds.split(0.75, rng);
  EXPECT_EQ(split.train.size(), 75u);
  EXPECT_EQ(split.test.size(), 25u);
  // Every sample appears exactly once across the two sides.
  std::set<double> rss;
  for (const Sample& s : split.train) rss.insert(s.rss_dbm);
  for (const Sample& s : split.test) rss.insert(s.rss_dbm);
  EXPECT_EQ(rss.size(), 100u);
}

TEST(Dataset, SplitIsDeterministicGivenRng) {
  const Dataset ds = sample_dataset();
  util::Rng rng1(9);
  util::Rng rng2(9);
  const DatasetSplit s1 = ds.split(0.6, rng1);
  const DatasetSplit s2 = ds.split(0.6, rng2);
  ASSERT_EQ(s1.train.size(), s2.train.size());
  for (std::size_t i = 0; i < s1.train.size(); ++i) {
    EXPECT_EQ(s1.train[i].rss_dbm, s2.train[i].rss_dbm);
  }
}

TEST(Dataset, CsvRoundTrip) {
  const Dataset ds = sample_dataset();
  std::stringstream buffer;
  ds.write_csv(buffer);
  const Dataset loaded = Dataset::read_csv(buffer);
  ASSERT_EQ(loaded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.samples()[i].mac, ds.samples()[i].mac);
    EXPECT_EQ(loaded.samples()[i].ssid, ds.samples()[i].ssid);
    EXPECT_NEAR(loaded.samples()[i].rss_dbm, ds.samples()[i].rss_dbm, 0.01);
    EXPECT_NEAR(loaded.samples()[i].position.x, ds.samples()[i].position.x, 1e-4);
    EXPECT_EQ(loaded.samples()[i].uav_id, ds.samples()[i].uav_id);
    EXPECT_EQ(loaded.samples()[i].waypoint_index, ds.samples()[i].waypoint_index);
  }
}

TEST(Dataset, CsvMissingColumnThrows) {
  std::stringstream buffer("x,y\n1,2\n");
  EXPECT_THROW((void)Dataset::read_csv(buffer), std::runtime_error);
}

TEST(Dataset, Append) {
  Dataset a = sample_dataset();
  const Dataset b = sample_dataset();
  a.append(b);
  EXPECT_EQ(a.size(), 10u);
}

}  // namespace
}  // namespace remgen::data
