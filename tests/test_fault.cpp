// The fault-injection subsystem: profile parsing/composition, injector
// determinism, the mission layer's survival of injected faults, and the
// campaign's graceful-degradation contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exec/config.hpp"
#include "fault/fault.hpp"
#include "mission/base_station.hpp"
#include "mission/campaign.hpp"
#include "radio/scenario.hpp"
#include "uwb/anchor.hpp"
#include "util/fmt.hpp"

namespace remgen {
namespace {

TEST(FaultPlan, NoneIsDisabled) {
  const auto plan = fault::make_fault_plan("none");
  ASSERT_TRUE(plan);
  EXPECT_FALSE(plan->enabled());
  EXPECT_EQ(plan->profile, "none");
}

TEST(FaultPlan, EmptyStringIsNone) {
  const auto plan = fault::make_fault_plan("");
  ASSERT_TRUE(plan);
  EXPECT_FALSE(plan->enabled());
  EXPECT_EQ(plan->profile, "none");
}

TEST(FaultPlan, UnknownProfileIsRejected) {
  EXPECT_FALSE(fault::make_fault_plan("bogus"));
  EXPECT_FALSE(fault::make_fault_plan("lossy,bogus"));
}

TEST(FaultPlan, SingleProfilesEnableTheirSubsystemOnly) {
  const auto lossy = fault::make_fault_plan("lossy");
  ASSERT_TRUE(lossy);
  EXPECT_TRUE(lossy->crtp.enabled());
  EXPECT_FALSE(lossy->uart.enabled());
  EXPECT_FALSE(lossy->scan.enabled());
  EXPECT_FALSE(lossy->uwb.enabled());
  EXPECT_FALSE(lossy->battery.enabled());

  const auto flaky = fault::make_fault_plan("flaky-scanner");
  ASSERT_TRUE(flaky);
  EXPECT_FALSE(flaky->crtp.enabled());
  EXPECT_TRUE(flaky->uart.enabled());
  EXPECT_TRUE(flaky->scan.enabled());

  const auto brownout = fault::make_fault_plan("brownout");
  ASSERT_TRUE(brownout);
  EXPECT_TRUE(brownout->battery.enabled());
  EXPECT_LT(brownout->battery.capacity_scale, 1.0);
}

TEST(FaultPlan, CompositionTakesTheHarsherValue) {
  const auto composed = fault::make_fault_plan("lossy,brownout", 7);
  ASSERT_TRUE(composed);
  EXPECT_EQ(composed->profile, "lossy,brownout");
  EXPECT_EQ(composed->seed, 7u);
  EXPECT_EQ(composed->crtp.seed, 7u);
  const auto lossy = fault::make_fault_plan("lossy");
  EXPECT_DOUBLE_EQ(composed->crtp.extra_loss_probability,
                   lossy->crtp.extra_loss_probability);
  const auto brownout = fault::make_fault_plan("brownout");
  EXPECT_DOUBLE_EQ(composed->battery.capacity_scale, brownout->battery.capacity_scale);
}

TEST(FaultPlan, HarshIsAtLeastAsAdverseAsEveryProfile) {
  const auto harsh = fault::make_fault_plan("harsh");
  ASSERT_TRUE(harsh);
  for (const std::string& name : fault::fault_profile_names()) {
    const auto p = fault::make_fault_plan(name);
    ASSERT_TRUE(p) << name;
    EXPECT_GE(harsh->crtp.extra_loss_probability, p->crtp.extra_loss_probability) << name;
    EXPECT_GE(harsh->uart.garble_byte_probability, p->uart.garble_byte_probability) << name;
    EXPECT_GE(harsh->scan.stall_probability, p->scan.stall_probability) << name;
    EXPECT_GE(harsh->uwb.dead_anchors, p->uwb.dead_anchors) << name;
    EXPECT_LE(harsh->battery.capacity_scale, p->battery.capacity_scale) << name;
  }
}

TEST(FaultRng, SamePlanSeedSameStream) {
  util::Rng a(42);
  util::Rng b(42);
  util::Rng fa = fault::fault_rng(a, 5, "crtp");
  util::Rng fb = fault::fault_rng(b, 5, "crtp");
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(fa.uniform(0.0, 1.0), fb.uniform(0.0, 1.0));
  }
}

TEST(FaultRng, DifferentPlanSeedsDecorrelate) {
  util::Rng a(42);
  util::Rng b(42);
  util::Rng fa = fault::fault_rng(a, 5, "crtp");
  util::Rng fb = fault::fault_rng(b, 6, "crtp");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (fa.bernoulli(0.5) == fb.bernoulli(0.5)) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(CrtpFaultInjector, DeterministicPerSeed) {
  const auto plan = fault::make_fault_plan("lossy", 3);
  ASSERT_TRUE(plan);
  fault::CrtpFaultInjector a(plan->crtp, util::Rng(9));
  fault::CrtpFaultInjector b(plan->crtp, util::Rng(9));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.drop_packet(), b.drop_packet()) << i;
    EXPECT_DOUBLE_EQ(a.extra_latency_s(), b.extra_latency_s()) << i;
  }
}

TEST(CrtpFaultInjector, BurstsDropConsecutivePackets) {
  fault::CrtpFaults faults;
  faults.burst_start_probability = 1.0;  // always in a burst
  faults.burst_min_packets = 4;
  faults.burst_max_packets = 4;
  faults.burst_drop_probability = 1.0;
  fault::CrtpFaultInjector injector(faults, util::Rng(1));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(injector.drop_packet()) << i;
}

TEST(CrtpFaultInjector, LossRateTracksConfiguredProbability) {
  fault::CrtpFaults faults;
  faults.extra_loss_probability = 0.3;
  fault::CrtpFaultInjector injector(faults, util::Rng(17));
  int dropped = 0;
  for (int i = 0; i < 2000; ++i) {
    if (injector.drop_packet()) ++dropped;
  }
  EXPECT_GT(dropped, 480);
  EXPECT_LT(dropped, 720);
}

TEST(UartFaultInjector, TruncationKeepsAStrictPrefix) {
  fault::UartFaults faults;
  faults.truncate_write_probability = 1.0;
  fault::UartFaultInjector injector(faults, util::Rng(5));
  const std::string original = "+CWLAP:(\"net\",-70,\"aa:bb:cc:dd:ee:ff\",6)\r\n";
  for (int i = 0; i < 50; ++i) {
    const std::string corrupted = injector.corrupt(original);
    EXPECT_LT(corrupted.size(), original.size());
    EXPECT_EQ(corrupted, original.substr(0, corrupted.size()));
  }
}

TEST(UartFaultInjector, GarblingPreservesLength) {
  fault::UartFaults faults;
  faults.garble_byte_probability = 1.0;
  fault::UartFaultInjector injector(faults, util::Rng(5));
  const std::string original = "0123456789abcdef";
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string corrupted = injector.corrupt(original);
    ASSERT_EQ(corrupted.size(), original.size());
    std::size_t diff = 0;
    for (std::size_t j = 0; j < original.size(); ++j) {
      if (corrupted[j] != original[j]) ++diff;
    }
    EXPECT_LE(diff, 1u);
    if (diff == 1) ++changed;
  }
  EXPECT_GT(changed, 0);
}

/// Shared scenario for the mission-level tests.
const radio::Scenario& scenario() {
  static util::Rng rng(4242);
  static radio::Scenario s = radio::Scenario::make_apartment(rng);
  return s;
}

uav::Crazyflie make_uav(const uav::CrazyflieConfig& config) {
  return uav::Crazyflie(0, scenario().environment(), &scenario().floorplan(),
                        uwb::corner_anchors(scenario().scan_volume()), config,
                        {1.0, 1.0, 0.0}, util::Rng(99));
}

// The headline telemetry-path regression: a 1-slot TX queue keeps the
// scanmeta packet (queued first) and overflows every scanres behind it. The
// old retry gate broke as soon as the metadata arrived, silently accepting a
// waypoint with zero stored samples; the fixed gate keeps retrying and then
// reports the waypoint uncovered.
TEST(FaultMission, MetadataAloneDoesNotSatisfyTheRetryGate) {
  uav::CrazyflieConfig config;
  config.crtp.tx_queue_size = 1;
  config.crtp.loss_probability = 0.0;
  uav::Crazyflie uav = make_uav(config);
  for (int i = 0; i < 100; ++i) uav.step(0.01);  // deck AT handshake

  mission::MissionConfig mission;
  mission.scan_retries = 2;
  mission::BaseStation station(mission);
  data::Dataset out;
  const mission::UavMissionStats stats =
      station.run_mission(uav, {{1.5, 1.5, 1.0}}, out);

  ASSERT_EQ(stats.waypoint_reports.size(), 1u);
  const mission::WaypointReport& report = stats.waypoint_reports[0];
  EXPECT_TRUE(report.commanded);
  EXPECT_EQ(report.attempts, 3u);  // scan_retries + 1: every attempt was spent
  EXPECT_FALSE(report.covered);
  EXPECT_EQ(report.samples, 0u);
  EXPECT_GT(stats.tx_queue_drops, 0u);
  EXPECT_TRUE(out.empty());
}

TEST(FaultMission, HealthyLinkCoversInOneAttempt) {
  uav::CrazyflieConfig config;
  config.crtp.loss_probability = 0.0;
  uav::Crazyflie uav = make_uav(config);
  for (int i = 0; i < 100; ++i) uav.step(0.01);

  mission::MissionConfig mission;
  mission.scan_retries = 2;
  mission::BaseStation station(mission);
  data::Dataset out;
  const mission::UavMissionStats stats =
      station.run_mission(uav, {{1.5, 1.5, 1.0}}, out);

  ASSERT_EQ(stats.waypoint_reports.size(), 1u);
  EXPECT_TRUE(stats.waypoint_reports[0].covered);
  EXPECT_EQ(stats.waypoint_reports[0].attempts, 1u);
  EXPECT_GT(stats.waypoint_reports[0].samples, 0u);
  EXPECT_FALSE(out.empty());
}

mission::CampaignConfig faulted_config(const char* profile) {
  mission::CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  config.faults = *fault::make_fault_plan(profile, 11);
  config.mission.scan_retries = 3;
  config.mission.scan_retry_backoff_s = 0.2;
  config.mission.scan_watchdog_s = 15.0;
  return config;
}

std::string campaign_fingerprint(const mission::CampaignResult& result) {
  std::ostringstream out;
  result.dataset.write_csv(out);
  for (const mission::WaypointCoverage& c : result.coverage) {
    out << c.uav << ' ' << c.waypoint_index << ' ' << c.covered << ' ' << c.rescued << ' '
        << c.samples << ' ' << c.attempts << '\n';
  }
  for (const mission::UavMissionStats& s : result.uav_stats) {
    out << s.uav_id << ' ' << s.samples_collected << ' ' << s.scans_completed << ' '
        << s.tx_queue_drops << '\n';
  }
  return out.str();
}

mission::CampaignResult run_faulted(const char* profile) {
  util::Rng rng(2024);
  const radio::Scenario s = radio::Scenario::make_apartment(rng);
  return mission::run_campaign(s, faulted_config(profile), rng);
}

TEST(FaultCampaign, LossyCampaignStillProducesADataset) {
  const mission::CampaignResult result = run_faulted("lossy");
  EXPECT_GT(result.dataset.size(), 100u);
  EXPECT_EQ(result.coverage.size(), 12u);
}

TEST(FaultCampaign, EveryWaypointIsCoveredOrExplicitlyReported) {
  const mission::CampaignResult result = run_faulted("harsh");
  ASSERT_EQ(result.coverage.size(), 12u);
  const auto open = result.uncovered_waypoints();
  std::size_t uncovered = 0;
  for (const mission::WaypointCoverage& c : result.coverage) {
    if (c.covered) {
      EXPECT_TRUE(c.samples > 0 || c.attempts > 0);
    } else {
      ++uncovered;
    }
  }
  EXPECT_EQ(open.size(), uncovered);  // no silent gaps
}

TEST(FaultCampaign, FaultFreeRunMatchesAPlanlessRun) {
  // A "none" plan must be byte-identical to not wiring the fault layer at
  // all: the injector streams are only forked when a profile enables them.
  auto fingerprint = [](bool with_plan) {
    util::Rng rng(2024);
    const radio::Scenario s = radio::Scenario::make_apartment(rng);
    mission::CampaignConfig config;
    config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
    if (with_plan) config.faults = *fault::make_fault_plan("none", 99);
    return campaign_fingerprint(mission::run_campaign(s, config, rng));
  };
  EXPECT_EQ(fingerprint(false), fingerprint(true));
}

/// Restores the configured width after each test so suites don't leak state.
class FaultDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = exec::thread_count(); }
  void TearDown() override { exec::set_thread_count(previous_); }

 private:
  std::size_t previous_ = 1;
};

TEST_F(FaultDeterminismTest, FaultedCampaignIsByteIdenticalAcrossThreadCounts) {
  exec::set_thread_count(1);
  const std::string sequential = campaign_fingerprint(run_faulted("lossy,flaky-scanner"));
  exec::set_thread_count(4);
  const std::string parallel = campaign_fingerprint(run_faulted("lossy,flaky-scanner"));
  EXPECT_EQ(sequential, parallel);
}

TEST_F(FaultDeterminismTest, FaultedCampaignIsReproducibleForAFixedSeed) {
  exec::set_thread_count(2);
  const std::string first = campaign_fingerprint(run_faulted("lossy"));
  const std::string second = campaign_fingerprint(run_faulted("lossy"));
  EXPECT_EQ(first, second);
}

TEST(FaultCampaign, BrownoutTriggersRescueCoverage) {
  // A sagged cell plus a full-size slab forces a battery abort; the rescue
  // round must pick up the abandoned waypoints in the coverage report.
  util::Rng rng(305);
  const radio::Scenario s = radio::Scenario::make_apartment(rng);
  mission::CampaignConfig config;
  config.grid = {.nx = 6, .ny = 4, .nz = 3, .margin_m = 0.25};
  config.uav_count = 1;
  config.faults = *fault::make_fault_plan("brownout", 1);
  const mission::CampaignResult result = mission::run_campaign(s, config, rng);
  ASSERT_FALSE(result.uav_stats.empty());
  EXPECT_TRUE(result.uav_stats[0].aborted_on_battery);
  EXPECT_GT(result.uav_stats.size(), 1u);  // at least one rescue mission ran
  EXPECT_EQ(result.coverage.size(), 72u);
  std::size_t rescued = 0;
  for (const mission::WaypointCoverage& c : result.coverage) {
    if (c.rescued) ++rescued;
  }
  EXPECT_GT(rescued, 0u);
  // Rescue assignments ride along so sample.uav_id indexes stay valid.
  EXPECT_EQ(result.assignments.size(), result.uav_stats.size());
  for (const data::Sample& sample : result.dataset.samples()) {
    ASSERT_LT(static_cast<std::size_t>(sample.uav_id), result.assignments.size());
    ASSERT_LT(static_cast<std::size_t>(sample.waypoint_index),
              result.assignments[static_cast<std::size_t>(sample.uav_id)].size());
  }
}

}  // namespace
}  // namespace remgen
