// Property tests of the beacon-scan process against the full apartment
// scenario: structural invariants that must hold for every seed.
#include <gtest/gtest.h>

#include <set>

#include "radio/scenario.hpp"

namespace remgen::radio {
namespace {

const Scenario& scenario() {
  static util::Rng rng(31337);
  static Scenario s = Scenario::make_apartment(rng);
  return s;
}

class ScanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScanProperty, DetectionsAreWellFormed) {
  util::Rng rng(GetParam());
  const auto& env = scenario().environment();
  const geom::Vec3 p{rng.uniform(0.2, 3.5), rng.uniform(0.2, 3.0), rng.uniform(0.2, 1.9)};
  const auto detections = env.scan(p, 2.1, nullptr, rng);

  std::set<std::size_t> seen;
  for (const Detection& d : detections) {
    ASSERT_LT(d.ap_index, env.access_points().size());
    // Each AP appears at most once per sweep.
    EXPECT_TRUE(seen.insert(d.ap_index).second);
    // The reported channel is the AP's own channel.
    EXPECT_EQ(d.channel, env.access_points()[d.ap_index].channel);
    // Reported RSS is plausible: within a few sigmas of the mean.
    const double mean = env.mean_rss_dbm(d.ap_index, p);
    EXPECT_NEAR(d.rss_dbm, mean, 6.0 * env.config().fading_sigma_db);
  }
}

TEST_P(ScanProperty, SameRngSameScan) {
  util::Rng rng_a(GetParam());
  util::Rng rng_b(GetParam());
  const auto& env = scenario().environment();
  const geom::Vec3 p{1.5, 1.5, 1.0};
  const auto a = env.scan(p, 2.1, nullptr, rng_a);
  const auto b = env.scan(p, 2.1, nullptr, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ap_index, b[i].ap_index);
    EXPECT_DOUBLE_EQ(a[i].rss_dbm, b[i].rss_dbm);
  }
}

TEST_P(ScanProperty, InterferenceNeverIncreasesDetections) {
  // Statistically: over repeated sweeps with paired seeds, the interfered
  // total never exceeds the clean total by more than noise.
  util::Rng rng_clean(GetParam());
  util::Rng rng_interfered(GetParam());
  const auto& env = scenario().environment();
  CrazyradioInterference interference;
  interference.set_carrier_mhz(2450.0);
  std::size_t clean = 0;
  std::size_t interfered = 0;
  for (int i = 0; i < 20; ++i) {
    clean += env.scan({1.5, 1.5, 1.0}, 2.1, nullptr, rng_clean).size();
    interfered += env.scan({1.5, 1.5, 1.0}, 2.1, &interference, rng_interfered).size();
  }
  EXPECT_GT(clean, interfered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScanProperty, ::testing::Values(1, 7, 42, 1234, 99999));

TEST(ScanStatistics, DetectionCountScalesWithSensitivity) {
  // A more sensitive receiver (lower noise floor) detects at least as many
  // APs in expectation.
  const geom::ApartmentModel model = geom::make_apartment_model();
  util::Rng pop_rng(5);
  const auto aps = make_ap_population(model.building_bounds, ScenarioConfig{}, pop_rng);
  const geom::Aabb bounds(model.scan_volume.min - geom::Vec3{1, 1, 1},
                          model.scan_volume.max + geom::Vec3{1, 1, 1});

  auto total_detections = [&](double noise_floor) {
    EnvironmentConfig config;
    config.noise_floor_dbm = noise_floor;
    util::Rng env_rng(9);
    const RadioEnvironment env(model.floorplan, aps, bounds, config, env_rng);
    util::Rng scan_rng(11);
    std::size_t total = 0;
    for (int i = 0; i < 30; ++i) {
      total += env.scan({1.8, 1.6, 1.0}, 2.1, nullptr, scan_rng).size();
    }
    return total;
  };
  EXPECT_GT(total_detections(-98.0), total_detections(-90.0));
}

TEST(ScanStatistics, FasterBeaconsDetectedMoreReliably) {
  // Same AP, shorter beacon interval -> higher per-sweep detection rate.
  geom::Floorplan empty;
  EnvironmentConfig config;
  config.shadowing_sigma_db = 0.0;
  config.clutter_db_per_m = 0.0;

  auto detection_rate = [&](double interval) {
    AccessPoint ap;
    util::Rng mac_rng(1);
    ap.mac = MacAddress::random(mac_rng);
    ap.ssid = "x";
    ap.channel = 6;
    ap.tx_power_dbm = 15.0;
    ap.position = {0, 0, 1};
    ap.beacon_interval_s = interval;
    util::Rng env_rng(2);
    const RadioEnvironment env(empty, {ap}, geom::Aabb({-1, -1, 0}, {5, 5, 3}), config,
                               env_rng);
    util::Rng scan_rng(3);
    int hits = 0;
    for (int i = 0; i < 300; ++i) {
      hits += static_cast<int>(env.scan({2, 0, 1}, 1.0, nullptr, scan_rng).size());
    }
    return hits;
  };
  EXPECT_GT(detection_rate(0.02), detection_rate(0.3));
}

}  // namespace
}  // namespace remgen::radio
