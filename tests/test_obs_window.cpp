// Rolling-window metrics: sub-window rotation, expiry of stale slots, merge
// determinism under the explicit-time API, quantile interpolation, and the
// windowed counter's rate bookkeeping.
#include <gtest/gtest.h>

#include <vector>

#include "obs/window.hpp"

namespace {

using namespace remgen;

const std::vector<double> kBounds{10.0, 100.0, 1000.0};

TEST(ObsWindowTest, ObservationsAccumulateWithinTheWindow) {
  obs::WindowedHistogram window(kBounds, 4, 5.0);
  window.observe(5.0, 1.0);
  window.observe(50.0, 2.0);
  window.observe(5000.0, 3.0);  // +Inf bucket.
  const obs::HistogramSnapshot merged = window.merged(3.5);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.sum, 5055.0);
  ASSERT_EQ(merged.bucket_counts.size(), 4u);
  EXPECT_EQ(merged.bucket_counts[0], 1u);
  EXPECT_EQ(merged.bucket_counts[1], 1u);
  EXPECT_EQ(merged.bucket_counts[2], 0u);
  EXPECT_EQ(merged.bucket_counts[3], 1u);
  EXPECT_DOUBLE_EQ(window.span_seconds(), 20.0);
}

TEST(ObsWindowTest, RotationRecyclesTheOldestSubWindow) {
  // 3 sub-windows of 1 s: an observation at t=0 must survive merges at
  // t=1 and t=2 and vanish at t=3 when its slot leaves the ring.
  obs::WindowedHistogram window(kBounds, 3, 1.0);
  window.observe(5.0, 0.5);
  EXPECT_EQ(window.count(0.9), 1u);
  window.observe(5.0, 1.5);
  window.observe(5.0, 2.5);
  EXPECT_EQ(window.count(2.9), 3u);
  // t=3.5: slot index 0 expired; indices 1..3 remain (2 observations + the
  // empty current slot).
  EXPECT_EQ(window.count(3.5), 2u);
  // Writing at t=3.5 recycles slot 0's storage without disturbing the rest.
  window.observe(5.0, 3.5);
  EXPECT_EQ(window.count(3.5), 3u);
  EXPECT_EQ(window.count(100.0), 0u);  // Far future: everything expired.
}

TEST(ObsWindowTest, MergedIsConstAndDeterministic) {
  obs::WindowedHistogram window(kBounds, 4, 5.0);
  for (int i = 0; i < 100; ++i) window.observe(static_cast<double>(i), 0.1 * i);
  const obs::HistogramSnapshot a = window.merged(10.0);
  const obs::HistogramSnapshot b = window.merged(10.0);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.bucket_counts, b.bucket_counts);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  // Querying a different now_s never mutates state: asking about the far
  // future (everything expired) and then re-asking at t=10 must agree.
  EXPECT_EQ(window.merged(1000.0).count, 0u);
  EXPECT_EQ(window.merged(10.0).count, a.count);
}

TEST(ObsWindowTest, SkippedSubWindowsDoNotResurrectStaleCounts) {
  obs::WindowedHistogram window(kBounds, 3, 1.0);
  window.observe(5.0, 0.5);
  // Jump far ahead without writing: the old slot still holds its counts but
  // its index is out of the live range, so merges must mask it.
  EXPECT_EQ(window.count(50.0), 0u);
  window.observe(7.0, 50.5);
  EXPECT_EQ(window.count(50.9), 1u);
  EXPECT_DOUBLE_EQ(window.merged(50.9).sum, 7.0);
}

TEST(ObsWindowTest, QuantileInterpolatesWithinBuckets) {
  obs::WindowedHistogram window(kBounds, 2, 60.0);
  // 10 observations, all in the (10, 100] bucket.
  for (int i = 0; i < 10; ++i) window.observe(50.0, 1.0);
  const obs::HistogramSnapshot merged = window.merged(1.0);
  // Prometheus-style: linear interpolation between the bucket's bounds.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(merged, 0.5), 10.0 + 0.5 * 90.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(merged, 1.0), 100.0);
  // Empty snapshot -> 0; +Inf bucket clamps to the largest finite bound.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(obs::HistogramSnapshot{}, 0.99), 0.0);
  obs::WindowedHistogram inf_window(kBounds, 2, 60.0);
  inf_window.observe(1e9, 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(inf_window.merged(1.0), 0.99), 1000.0);
}

TEST(ObsWindowTest, WindowedCounterTracksRecentAndLifetimeSeparately) {
  obs::WindowedCounter counter(3, 1.0);
  counter.add(10, 0.5);
  counter.add(5, 1.5);
  EXPECT_EQ(counter.windowed(1.9), 15u);
  EXPECT_DOUBLE_EQ(counter.rate_per_second(1.9), 15.0 / 3.0);
  // The first sub-window expires; the lifetime total never does.
  EXPECT_EQ(counter.windowed(3.5), 5u);
  EXPECT_EQ(counter.windowed(100.0), 0u);
  EXPECT_EQ(counter.total(), 15u);
  // Re-entering an index region after a long gap starts clean.
  counter.add(1, 100.5);
  EXPECT_EQ(counter.windowed(100.9), 1u);
}

TEST(ObsWindowTest, RejectsDegenerateConfiguration) {
  EXPECT_THROW(obs::WindowedHistogram({}, 4, 5.0), std::invalid_argument);
  EXPECT_THROW(obs::WindowedHistogram({2.0, 1.0}, 4, 5.0), std::invalid_argument);
  EXPECT_THROW(obs::WindowedHistogram(kBounds, 0, 5.0), std::invalid_argument);
  EXPECT_THROW(obs::WindowedHistogram(kBounds, 4, 0.0), std::invalid_argument);
  EXPECT_THROW(obs::WindowedCounter(0, 1.0), std::invalid_argument);
  EXPECT_THROW(obs::WindowedCounter(3, -1.0), std::invalid_argument);
}

}  // namespace
