// Strict sample-row parsing: malformed CSV/JSONL rows are rejected with a
// line-numbered reason instead of being folded into the dataset. These are
// the bad-row fixtures the streaming ingest path leans on.
#include <gtest/gtest.h>

#include <string>

#include "data/sample_io.hpp"

namespace remgen::data {
namespace {

constexpr std::string_view kHeader =
    "x,y,z,ssid,rss_dbm,mac,channel,timestamp_s,uav_id,waypoint_index";
constexpr std::string_view kGoodCsv =
    "1.5,2.25,0.75,lab,-52.5,02:00:00:00:00:0a,6,12.5,1,3";
constexpr std::string_view kGoodJsonl =
    "{\"x\":1.5,\"y\":2.25,\"z\":0.75,\"ssid\":\"lab\",\"rss_dbm\":-52.5,"
    "\"mac\":\"02:00:00:00:00:0a\",\"channel\":6,\"timestamp_s\":12.5,"
    "\"uav_id\":1,\"waypoint_index\":3}";

void expect_rejected(std::string_view text, std::size_t line, const std::string& reason,
                     bool jsonl = false) {
  Sample sample;
  std::string error;
  const bool ok = jsonl ? parse_jsonl_sample_line(text, line, &sample, &error)
                        : parse_csv_sample_line(text, line, &sample, &error);
  EXPECT_FALSE(ok) << text;
  EXPECT_NE(error.find("line " + std::to_string(line) + ":"), std::string::npos) << error;
  EXPECT_NE(error.find(reason), std::string::npos) << error;
}

TEST(IngestSampleIo, GoodCsvRowParsesEveryField) {
  Sample s;
  std::string error;
  ASSERT_TRUE(parse_csv_sample_line(kGoodCsv, 1, &s, &error)) << error;
  EXPECT_DOUBLE_EQ(s.position.x, 1.5);
  EXPECT_DOUBLE_EQ(s.position.y, 2.25);
  EXPECT_DOUBLE_EQ(s.position.z, 0.75);
  EXPECT_EQ(s.ssid, "lab");
  EXPECT_DOUBLE_EQ(s.rss_dbm, -52.5);
  EXPECT_EQ(s.mac.to_string(), "02:00:00:00:00:0a");
  EXPECT_EQ(s.channel, 6);
  EXPECT_DOUBLE_EQ(s.timestamp_s, 12.5);
  EXPECT_EQ(s.uav_id, 1);
  EXPECT_EQ(s.waypoint_index, 3);
}

TEST(IngestSampleIo, GoodJsonlRowMatchesCsvExactly) {
  Sample csv;
  Sample jsonl;
  std::string error;
  ASSERT_TRUE(parse_csv_sample_line(kGoodCsv, 1, &csv, &error)) << error;
  ASSERT_TRUE(parse_jsonl_sample_line(kGoodJsonl, 1, &jsonl, &error)) << error;
  EXPECT_EQ(csv.position.x, jsonl.position.x);
  EXPECT_EQ(csv.position.y, jsonl.position.y);
  EXPECT_EQ(csv.position.z, jsonl.position.z);
  EXPECT_EQ(csv.ssid, jsonl.ssid);
  EXPECT_EQ(csv.rss_dbm, jsonl.rss_dbm);
  EXPECT_EQ(csv.mac, jsonl.mac);
  EXPECT_EQ(csv.channel, jsonl.channel);
  EXPECT_EQ(csv.timestamp_s, jsonl.timestamp_s);
  EXPECT_EQ(csv.uav_id, jsonl.uav_id);
  EXPECT_EQ(csv.waypoint_index, jsonl.waypoint_index);
}

TEST(IngestSampleIo, WrongColumnCountRejectedWithLineNumber) {
  expect_rejected("1.0,2.0,3.0", 7, "expected 10 columns, got 3");
  expect_rejected(std::string(kGoodCsv) + ",extra", 8, "expected 10 columns, got 11");
}

TEST(IngestSampleIo, NonNumericAndTrailingGarbageCoordinatesRejected) {
  expect_rejected("abc,2.25,0.75,lab,-52.5,02:00:00:00:00:0a,6,12.5,1,3", 2,
                  "bad x coordinate 'abc'");
  expect_rejected("1.5,2.25xyz,0.75,lab,-52.5,02:00:00:00:00:0a,6,12.5,1,3", 3,
                  "bad y coordinate '2.25xyz'");
  expect_rejected("1.5,2.25,,lab,-52.5,02:00:00:00:00:0a,6,12.5,1,3", 4,
                  "bad z coordinate ''");
}

TEST(IngestSampleIo, NonFiniteValuesRejected) {
  expect_rejected("1.5,2.25,0.75,lab,nan,02:00:00:00:00:0a,6,12.5,1,3", 5, "bad rss_dbm 'nan'");
  expect_rejected("1.5,2.25,inf,lab,-52.5,02:00:00:00:00:0a,6,12.5,1,3", 6,
                  "bad z coordinate 'inf'");
  expect_rejected("1.5,2.25,0.75,lab,-52.5,02:00:00:00:00:0a,6,-inf,1,3", 7,
                  "bad timestamp_s '-inf'");
}

TEST(IngestSampleIo, BadMacChannelAndIndicesRejected) {
  expect_rejected("1.5,2.25,0.75,lab,-52.5,zz:00:00:00:00:0a,6,12.5,1,3", 2,
                  "bad mac 'zz:00:00:00:00:0a'");
  expect_rejected("1.5,2.25,0.75,lab,-52.5,02:00:00:00:00:0a,6.5,12.5,1,3", 3,
                  "bad channel '6.5'");
  expect_rejected("1.5,2.25,0.75,lab,-52.5,02:00:00:00:00:0a,6,12.5,one,3", 4,
                  "bad uav_id 'one'");
  expect_rejected("1.5,2.25,0.75,lab,-52.5,02:00:00:00:00:0a,6,12.5,1,3.0", 5,
                  "bad waypoint_index '3.0'");
}

TEST(IngestSampleIo, JsonlUnknownFieldRejected) {
  expect_rejected(
      "{\"x\":1.0,\"y\":1.0,\"z\":1.0,\"ssid\":\"lab\",\"rssi\":-40,"
      "\"mac\":\"02:00:00:00:00:0a\",\"channel\":6,\"timestamp_s\":1.0,"
      "\"uav_id\":1,\"waypoint_index\":0}",
      3, "unknown field 'rssi'", /*jsonl=*/true);
}

TEST(IngestSampleIo, JsonlMissingFieldRejected) {
  expect_rejected(
      "{\"x\":1.0,\"y\":1.0,\"z\":1.0,\"ssid\":\"lab\",\"rss_dbm\":-40,"
      "\"channel\":6,\"timestamp_s\":1.0,\"uav_id\":1,\"waypoint_index\":0}",
      4, "missing field 'mac'", /*jsonl=*/true);
}

TEST(IngestSampleIo, JsonlWrongValueKindAndMalformedDocumentRejected) {
  expect_rejected(
      "{\"x\":true,\"y\":1.0,\"z\":1.0,\"ssid\":\"lab\",\"rss_dbm\":-40,"
      "\"mac\":\"02:00:00:00:00:0a\",\"channel\":6,\"timestamp_s\":1.0,"
      "\"uav_id\":1,\"waypoint_index\":0}",
      5, "field 'x' must be a number or string", /*jsonl=*/true);
  Sample s;
  std::string error;
  EXPECT_FALSE(parse_jsonl_sample_line("{not json", 6, &s, &error));
  EXPECT_NE(error.find("line 6:"), std::string::npos) << error;
  EXPECT_FALSE(parse_jsonl_sample_line("[1,2,3]", 7, &s, &error));
  EXPECT_NE(error.find("expected a JSON object"), std::string::npos) << error;
}

TEST(IngestSampleIo, HeaderRowIsDetectedAndIsNotASample) {
  EXPECT_TRUE(is_sample_csv_header(kHeader));
  EXPECT_FALSE(is_sample_csv_header(kGoodCsv));
  EXPECT_FALSE(is_sample_csv_header("x,y,z"));
  Sample s;
  std::string error;
  EXPECT_FALSE(parse_csv_sample_line(kHeader, 1, &s, &error));
  EXPECT_NE(error.find("bad x coordinate 'x'"), std::string::npos) << error;
}

TEST(IngestSampleIo, StrictNumericTokenParsers) {
  double d = 0.0;
  EXPECT_TRUE(parse_finite_double("-52.5", &d));
  EXPECT_DOUBLE_EQ(d, -52.5);
  EXPECT_TRUE(parse_finite_double("1e3", &d));
  EXPECT_DOUBLE_EQ(d, 1000.0);
  EXPECT_FALSE(parse_finite_double("", &d));
  EXPECT_FALSE(parse_finite_double("1e", &d));
  EXPECT_FALSE(parse_finite_double("nan", &d));
  EXPECT_FALSE(parse_finite_double("-inf", &d));
  EXPECT_FALSE(parse_finite_double("3.2abc", &d));
  int i = 0;
  EXPECT_TRUE(parse_int("-3", &i));
  EXPECT_EQ(i, -3);
  EXPECT_FALSE(parse_int("3.5", &i));
  EXPECT_FALSE(parse_int("", &i));
  EXPECT_FALSE(parse_int("99999999999999999999", &i));
}

}  // namespace
}  // namespace remgen::data
