#include <gtest/gtest.h>

#include "core/drift.hpp"
#include "util/rng.hpp"

namespace remgen::core {
namespace {

radio::MacAddress mac_a() { return *radio::MacAddress::parse("02:00:00:00:00:0a"); }
radio::MacAddress mac_b() { return *radio::MacAddress::parse("02:00:00:00:00:0b"); }

/// A flat REM: every voxel of every MAC predicts the given value.
RadioEnvironmentMap flat_rem(double rss_a, double rss_b) {
  const geom::GridGeometry g(geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}), 4, 3, 2);
  RadioEnvironmentMap rem(g, {mac_a(), mac_b()});
  for (std::size_t iz = 0; iz < g.nz(); ++iz) {
    for (std::size_t iy = 0; iy < g.ny(); ++iy) {
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        rem.set_cell(mac_a(), {ix, iy, iz}, {rss_a, 0.0});
        rem.set_cell(mac_b(), {ix, iy, iz}, {rss_b, 0.0});
      }
    }
  }
  return rem;
}

std::vector<data::Sample> probe(const radio::MacAddress& mac, double rss, std::size_t n,
                                double noise_sigma = 0.0, std::uint64_t seed = 1) {
  util::Rng rng(seed);
  std::vector<data::Sample> out;
  for (std::size_t i = 0; i < n; ++i) {
    data::Sample s;
    s.mac = mac;
    s.position = {rng.uniform(0.1, 3.9), rng.uniform(0.1, 2.9), rng.uniform(0.1, 1.9)};
    s.rss_dbm = rss + rng.gaussian(0.0, noise_sigma);
    out.push_back(s);
  }
  return out;
}

TEST(Drift, FreshRemShowsNoDrift) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  auto samples = probe(mac_a(), -70.0, 20, 2.0);
  const auto more = probe(mac_b(), -80.0, 20, 2.0, 2);
  samples.insert(samples.end(), more.begin(), more.end());
  const DriftReport report = detect_drift(rem, samples);
  EXPECT_EQ(report.judged_macs, 2u);
  EXPECT_EQ(report.drifted_macs, 0u);
  EXPECT_FALSE(report.rem_stale);
  EXPECT_LT(report.overall_rms_db, 3.0);
}

TEST(Drift, ShiftedTransmitterIsFlagged) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  auto samples = probe(mac_a(), -58.0, 20, 2.0);  // +12 dB: moved much closer
  const auto stable = probe(mac_b(), -80.0, 20, 2.0, 2);
  samples.insert(samples.end(), stable.begin(), stable.end());
  const DriftReport report = detect_drift(rem, samples);
  ASSERT_EQ(report.judged_macs, 2u);
  EXPECT_EQ(report.drifted_macs, 1u);
  EXPECT_EQ(report.per_mac.front().mac, mac_a());  // worst first
  EXPECT_NEAR(report.per_mac.front().mean_residual_db, 12.0, 1.5);
  EXPECT_TRUE(report.per_mac.front().drifted);
}

TEST(Drift, NegativeShiftAlsoFlagged) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  const DriftReport report = detect_drift(rem, probe(mac_a(), -82.0, 15, 1.0));
  ASSERT_EQ(report.judged_macs, 1u);
  EXPECT_TRUE(report.per_mac[0].drifted);
  EXPECT_LT(report.per_mac[0].mean_residual_db, 0.0);
}

TEST(Drift, FewSamplesAreNotJudged) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  const DriftReport report = detect_drift(rem, probe(mac_a(), -40.0, 3));
  EXPECT_EQ(report.judged_macs, 0u);
  EXPECT_FALSE(report.rem_stale);
}

TEST(Drift, UnknownMacsCounted) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  const auto samples = probe(*radio::MacAddress::parse("02:ff:ff:ff:ff:ff"), -60.0, 10);
  const DriftReport report = detect_drift(rem, samples);
  EXPECT_EQ(report.unknown_macs, 1u);
  EXPECT_EQ(report.judged_macs, 0u);
}

TEST(Drift, StaleFractionTriggersRemStale) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  // Both MACs drifted -> fraction 1.0 >= 0.25.
  auto samples = probe(mac_a(), -55.0, 10, 1.0);
  const auto more = probe(mac_b(), -95.0, 10, 1.0, 2);
  samples.insert(samples.end(), more.begin(), more.end());
  const DriftReport report = detect_drift(rem, samples);
  EXPECT_TRUE(report.rem_stale);
}

TEST(Drift, NoiseAloneDoesNotTrigger) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  // Zero-mean noise with realistic fading sigma: rms is high, mean is not.
  const DriftReport report = detect_drift(rem, probe(mac_a(), -70.0, 60, 4.5));
  ASSERT_EQ(report.judged_macs, 1u);
  EXPECT_FALSE(report.per_mac[0].drifted);
  EXPECT_GT(report.per_mac[0].rms_residual_db, 3.0);
}

TEST(Drift, ConfigurableThreshold) {
  const RadioEnvironmentMap rem = flat_rem(-70.0, -80.0);
  DriftConfig strict;
  strict.mean_residual_threshold_db = 1.0;
  const DriftReport report = detect_drift(rem, probe(mac_a(), -67.5, 30, 0.5), strict);
  ASSERT_EQ(report.judged_macs, 1u);
  EXPECT_TRUE(report.per_mac[0].drifted);  // 2.5 dB > 1.0 dB threshold
}

}  // namespace
}  // namespace remgen::core
