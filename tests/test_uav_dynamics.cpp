#include <gtest/gtest.h>

#include "uav/dynamics.hpp"

namespace remgen::uav {
namespace {

DynamicsConfig quiet_config() {
  DynamicsConfig config;
  config.hover_jitter_mps2 = 0.0;  // deterministic for most tests
  return config;
}

TEST(Dynamics, StartsAtInitialPosition) {
  QuadrotorDynamics dyn(quiet_config(), {1.0, 2.0, 0.5});
  EXPECT_EQ(dyn.position(), geom::Vec3(1.0, 2.0, 0.5));
  EXPECT_EQ(dyn.velocity(), geom::Vec3());
}

TEST(Dynamics, TracksVelocityCommand) {
  QuadrotorDynamics dyn(quiet_config(), {});
  util::Rng rng(1);
  for (int i = 0; i < 300; ++i) dyn.step(0.01, {0.5, 0.0, 0.0}, false, rng);
  EXPECT_NEAR(dyn.velocity().x, 0.5, 0.05);
  EXPECT_GT(dyn.position().x, 1.0);
}

TEST(Dynamics, SpeedClampedToEnvelope) {
  DynamicsConfig config = quiet_config();
  config.max_speed_mps = 1.0;
  QuadrotorDynamics dyn(config, {});
  util::Rng rng(1);
  for (int i = 0; i < 500; ++i) dyn.step(0.01, {100.0, 0.0, 0.0}, false, rng);
  EXPECT_LE(dyn.velocity().norm(), 1.05);
}

TEST(Dynamics, AccelerationLimited) {
  DynamicsConfig config = quiet_config();
  config.max_accel_mps2 = 2.0;
  QuadrotorDynamics dyn(config, {});
  util::Rng rng(1);
  dyn.step(0.01, {100.0, 0.0, 0.0}, false, rng);
  EXPECT_LE(dyn.acceleration().norm(), 2.0 + 1e-9);
}

TEST(Dynamics, HaltZeroesMotion) {
  QuadrotorDynamics dyn(quiet_config(), {});
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) dyn.step(0.01, {1.0, 1.0, 0.0}, false, rng);
  dyn.halt();
  EXPECT_EQ(dyn.velocity(), geom::Vec3());
  EXPECT_EQ(dyn.acceleration(), geom::Vec3());
}

TEST(Dynamics, ErraticModeIsNoisier) {
  DynamicsConfig config;
  config.hover_jitter_mps2 = 0.05;
  config.erratic_jitter_mps2 = 3.0;

  auto wander = [&](bool erratic) {
    QuadrotorDynamics dyn(config, {});
    util::Rng rng(17);
    double max_dev = 0.0;
    for (int i = 0; i < 1000; ++i) {
      dyn.step(0.01, {}, erratic, rng);
      max_dev = std::max(max_dev, dyn.position().norm());
    }
    return max_dev;
  };
  EXPECT_GT(wander(true), 3.0 * wander(false));
}

TEST(Dynamics, ZeroCommandDecaysVelocity) {
  QuadrotorDynamics dyn(quiet_config(), {});
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) dyn.step(0.01, {1.0, 0.0, 0.0}, false, rng);
  const double moving = dyn.velocity().norm();
  for (int i = 0; i < 300; ++i) dyn.step(0.01, {}, false, rng);
  EXPECT_LT(dyn.velocity().norm(), 0.05 * moving);
}

}  // namespace
}  // namespace remgen::uav
