// The technology-agnostic deck contract, exercised polymorphically over both
// receiver technologies, plus Crazyflie integration with each deck kind.
#include <gtest/gtest.h>

#include "radio/scenario.hpp"
#include "uav/crazyflie.hpp"
#include "uav/remdeck.hpp"
#include "util/fmt.hpp"
#include "uwb/anchor.hpp"

namespace remgen::uav {
namespace {

const radio::Scenario& scenario() {
  static util::Rng rng(777);
  static radio::Scenario s = radio::Scenario::make_apartment(rng);
  return s;
}

std::unique_ptr<RemReceiverDeck> make_deck(bool ble) {
  if (ble) {
    return std::make_unique<BleScannerDeck>(scenario().ble_environment(),
                                            scanner::BleModuleConfig{}, util::Rng(5));
  }
  return std::make_unique<WifiScannerDeck>(scenario().environment(), scanner::Esp8266Config{},
                                           util::Rng(5));
}

class DeckContract : public ::testing::TestWithParam<bool> {};

TEST_P(DeckContract, FourInstructionLifecycle) {
  const std::unique_ptr<RemReceiverDeck> deck = make_deck(GetParam());
  deck->set_position_provider([] { return geom::Vec3{1.8, 1.6, 1.0}; });

  // (i) initialize.
  deck->initialize(0.0);
  double now = 0.0;
  for (int i = 0; i < 100 && deck->state() != DeckState::Ready; ++i) {
    now += 0.01;
    deck->step(now);
  }
  ASSERT_EQ(deck->state(), DeckState::Ready);

  // (iii) measure.
  ASSERT_TRUE(deck->start_measurement(now));
  EXPECT_EQ(deck->state(), DeckState::Measuring);
  EXPECT_FALSE(deck->start_measurement(now));  // busy

  // (ii) check state until results are ready.
  const double deadline = now + deck->scan_duration_s() + 1.0;
  while (now < deadline && deck->state() == DeckState::Measuring) {
    now += 0.01;
    deck->step(now);
  }
  ASSERT_EQ(deck->state(), DeckState::ResultsReady);

  // (iv) parse.
  const std::vector<scanner::ScanTuple> results = deck->parse_results();
  EXPECT_FALSE(results.empty());
  for (const scanner::ScanTuple& t : results) {
    EXPECT_LT(t.rssi_dbm, 0);
    EXPECT_GT(t.rssi_dbm, -100);
    EXPECT_GT(t.channel, 0);
  }
  EXPECT_EQ(deck->state(), DeckState::Ready);

  // A second measurement works identically.
  ASSERT_TRUE(deck->start_measurement(now));
}

TEST_P(DeckContract, ReportsScanDuration) {
  const std::unique_ptr<RemReceiverDeck> deck = make_deck(GetParam());
  EXPECT_GT(deck->scan_duration_s(), 0.5);
  EXPECT_LT(deck->scan_duration_s(), 5.0);
}

INSTANTIATE_TEST_SUITE_P(WifiAndBle, DeckContract, ::testing::Values(false, true),
                         [](const auto& info) { return info.param ? "Ble" : "Wifi"; });

TEST(CrazyflieWithBleDeck, FullScanFlow) {
  CrazyflieConfig config;
  auto positioning = std::make_unique<uwb::LocoPositioningSystem>(
      uwb::corner_anchors(scenario().scan_volume()), &scenario().floorplan(), config.lps,
      util::Rng(6));
  auto deck = std::make_unique<BleScannerDeck>(scenario().ble_environment(),
                                               scanner::BleModuleConfig{}, util::Rng(7));
  Crazyflie uav(0, scenario().environment(), std::move(positioning), config, {1.0, 1.0, 0.0},
                util::Rng(8), std::move(deck));

  for (int i = 0; i < 100; ++i) uav.step(0.01);
  uav.link().base_send({"cmd", "takeoff 1.0"}, uav.now());
  for (int i = 0; i < 300; ++i) {
    if (i % 20 == 0) uav.link().base_send({"cmd", "goto 1.5 1.5 1.0"}, uav.now());
    uav.step(0.01);
  }
  (void)uav.link().base_receive(uav.now());

  uav.link().base_send({"cmd", "scan 3"}, uav.now());
  for (int i = 0; i < 30; ++i) uav.step(0.01);
  uav.link().set_radio_enabled(false, uav.now());
  for (int i = 0; i < 250; ++i) uav.step(0.01);
  uav.link().set_radio_enabled(true, uav.now());
  for (int i = 0; i < 50; ++i) uav.step(0.01);

  EXPECT_EQ(uav.completed_scans(), 1u);
  int ble_results = 0;
  for (const CrtpPacket& p : uav.link().base_receive(uav.now())) {
    if (p.payload.rfind("scanres 3", 0) == 0) ++ble_results;
  }
  EXPECT_GT(ble_results, 2);
}

}  // namespace
}  // namespace remgen::uav
