#include <gtest/gtest.h>

#include "util/units.hpp"

namespace remgen::util {
namespace {

TEST(Units, DbmToMwKnownValues) {
  EXPECT_DOUBLE_EQ(dbm_to_mw(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(10.0), 10.0);
  EXPECT_DOUBLE_EQ(dbm_to_mw(-30.0), 0.001);
}

TEST(Units, MwToDbmKnownValues) {
  EXPECT_DOUBLE_EQ(mw_to_dbm(1.0), 0.0);
  EXPECT_DOUBLE_EQ(mw_to_dbm(100.0), 20.0);
}

TEST(Units, RoundTrip) {
  for (double dbm = -100.0; dbm <= 30.0; dbm += 7.3) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, DbmSumOfEqualPowers) {
  // Two equal powers sum to +3.0103 dB.
  EXPECT_NEAR(dbm_sum(-70.0, -70.0), -70.0 + 10.0 * std::log10(2.0), 1e-9);
}

TEST(Units, DbmSumDominatedByStronger) {
  EXPECT_NEAR(dbm_sum(-40.0, -90.0), -40.0, 0.01);
}

TEST(Units, FsplGrowsWithDistance) {
  const double f = 2.44e9;
  EXPECT_LT(fspl_db(1.0, f), fspl_db(2.0, f));
  // +6 dB per doubling in free space.
  EXPECT_NEAR(fspl_db(2.0, f) - fspl_db(1.0, f), 6.0206, 0.01);
}

TEST(Units, FsplAt1m24GHz) {
  // Textbook value: ~40.2 dB at 1 m, 2.44 GHz.
  EXPECT_NEAR(fspl_db(1.0, 2.44e9), 40.2, 0.2);
}

TEST(Units, FsplClampsTinyDistance) {
  EXPECT_DOUBLE_EQ(fspl_db(0.0, 2.44e9), fspl_db(1e-3, 2.44e9));
}

}  // namespace
}  // namespace remgen::util
