#include <gtest/gtest.h>

#include <set>

#include "uwb/anchor.hpp"

namespace remgen::uwb {
namespace {

geom::Aabb volume() { return geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}); }

TEST(Anchors, EightCornerDeployment) {
  const std::vector<Anchor> anchors = corner_anchors(volume());
  ASSERT_EQ(anchors.size(), 8u);
  std::set<int> ids;
  for (const Anchor& a : anchors) {
    ids.insert(a.id);
    // Every anchor sits at a corner: each coordinate is an extreme.
    EXPECT_TRUE(a.position.x == 0.0 || a.position.x == 3.74);
    EXPECT_TRUE(a.position.y == 0.0 || a.position.y == 3.20);
    EXPECT_TRUE(a.position.z == 0.0 || a.position.z == 2.10);
  }
  EXPECT_EQ(ids.size(), 8u);
}

TEST(Anchors, SubsetSizes) {
  for (std::size_t n = 4; n <= 8; ++n) {
    EXPECT_EQ(corner_anchors_subset(volume(), n).size(), n);
  }
}

TEST(Anchors, SubsetSpansBothFloorsForGoodGeometry) {
  // Even the minimal 4-anchor subset must include floor and ceiling corners,
  // otherwise z is unobservable.
  const auto anchors = corner_anchors_subset(volume(), 4);
  bool has_floor = false;
  bool has_ceiling = false;
  for (const Anchor& a : anchors) {
    if (a.position.z == 0.0) has_floor = true;
    if (a.position.z == 2.10) has_ceiling = true;
  }
  EXPECT_TRUE(has_floor);
  EXPECT_TRUE(has_ceiling);
}

TEST(Anchors, SubsetPositionsAreDistinct) {
  const auto anchors = corner_anchors_subset(volume(), 8);
  for (std::size_t i = 0; i < anchors.size(); ++i) {
    for (std::size_t j = i + 1; j < anchors.size(); ++j) {
      EXPECT_NE(anchors[i].position, anchors[j].position);
    }
  }
}

}  // namespace
}  // namespace remgen::uwb
