#include <gtest/gtest.h>

#include "uwb/anchor.hpp"
#include "uwb/ekf.hpp"
#include "util/rng.hpp"

namespace remgen::uwb {
namespace {

std::vector<Anchor> cube_anchors() {
  return corner_anchors(geom::Aabb({0, 0, 0}, {4, 4, 3}));
}

TEST(Ekf, ResetSetsStateAndCovariance) {
  Ekf ekf;
  ekf.reset({1, 2, 3}, {0.1, 0.2, 0.3});
  EXPECT_EQ(ekf.position(), geom::Vec3(1, 2, 3));
  EXPECT_EQ(ekf.velocity(), geom::Vec3(0.1, 0.2, 0.3));
  EXPECT_GT(ekf.position_sigma(), 0.0);
}

TEST(Ekf, PredictIntegratesKinematics) {
  EkfConfig config;
  Ekf ekf(config);
  ekf.reset({0, 0, 0}, {1.0, 0.0, 0.0});
  ekf.predict(1.0, {0.0, 2.0, 0.0});
  EXPECT_NEAR(ekf.position().x, 1.0, 1e-12);
  EXPECT_NEAR(ekf.position().y, 1.0, 1e-12);  // 0.5 * a * t^2
  EXPECT_NEAR(ekf.velocity().y, 2.0, 1e-12);
}

TEST(Ekf, PredictGrowsUncertainty) {
  Ekf ekf;
  ekf.reset({0, 0, 0});
  const double before = ekf.position_sigma();
  for (int i = 0; i < 100; ++i) ekf.predict(0.01, {});
  EXPECT_GT(ekf.position_sigma(), before);
}

TEST(Ekf, RangeUpdatesShrinkUncertainty) {
  Ekf ekf;
  const geom::Vec3 truth{2.0, 2.0, 1.5};
  ekf.reset(truth);
  const auto anchors = cube_anchors();
  for (int i = 0; i < 20; ++i) ekf.predict(0.01, {});
  const double before = ekf.position_sigma();
  for (const Anchor& a : anchors) {
    EXPECT_TRUE(ekf.update_range(a, a.position.distance_to(truth)));
  }
  EXPECT_LT(ekf.position_sigma(), before);
}

TEST(Ekf, ConvergesToTruePositionFromOffset) {
  Ekf ekf;
  const geom::Vec3 truth{1.0, 3.0, 1.0};
  ekf.reset({2.5, 2.0, 1.5});  // start ~1.9 m off
  const auto anchors = cube_anchors();
  util::Rng rng(3);
  for (int step = 0; step < 500; ++step) {
    ekf.predict(0.01, {});
    const Anchor& a = anchors[step % anchors.size()];
    ekf.update_range(a, a.position.distance_to(truth) + rng.gaussian(0.0, 0.05));
  }
  EXPECT_LT(ekf.position().distance_to(truth), 0.1);
}

TEST(Ekf, TrksMovingTargetWithAccelInput) {
  Ekf ekf;
  geom::Vec3 truth{1.0, 1.0, 1.0};
  geom::Vec3 velocity{0.3, -0.2, 0.1};
  ekf.reset(truth, velocity);
  const auto anchors = cube_anchors();
  util::Rng rng(5);
  const double dt = 0.01;
  for (int step = 0; step < 1000; ++step) {
    truth += velocity * dt;
    ekf.predict(dt, {});
    const Anchor& a = anchors[step % anchors.size()];
    ekf.update_range(a, a.position.distance_to(truth) + rng.gaussian(0.0, 0.05));
  }
  EXPECT_LT(ekf.position().distance_to(truth), 0.15);
  EXPECT_LT((ekf.velocity() - velocity).norm(), 0.15);
}

TEST(Ekf, TdoaUpdatesConverge) {
  Ekf ekf;
  const geom::Vec3 truth{2.5, 1.5, 2.0};
  ekf.reset({2.0, 2.0, 1.5});
  const auto anchors = cube_anchors();
  util::Rng rng(7);
  for (int step = 0; step < 2000; ++step) {
    ekf.predict(0.01, {});
    const Anchor& a = anchors[step % anchors.size()];
    const Anchor& b = anchors[(step + 1) % anchors.size()];
    const double diff =
        a.position.distance_to(truth) - b.position.distance_to(truth);
    ekf.update_tdoa(a, b, diff + rng.gaussian(0.0, 0.04));
  }
  EXPECT_LT(ekf.position().distance_to(truth), 0.12);
}

TEST(Ekf, GateRejectsGrossOutlier) {
  Ekf ekf;
  const geom::Vec3 truth{2.0, 2.0, 1.5};
  ekf.reset(truth);
  const auto anchors = cube_anchors();
  // Converge first so the covariance is tight.
  for (int i = 0; i < 200; ++i) {
    ekf.predict(0.01, {});
    const Anchor& a = anchors[i % anchors.size()];
    ekf.update_range(a, a.position.distance_to(truth));
  }
  const geom::Vec3 before = ekf.position();
  // A 5 m outlier must be gated out and leave the state untouched.
  EXPECT_FALSE(ekf.update_range(anchors[0], anchors[0].position.distance_to(truth) + 5.0));
  EXPECT_EQ(ekf.position(), before);
}

TEST(Ekf, GateRecoveryReanchorsDivergedFilter) {
  EkfConfig config;
  config.gate_recovery_count = 10;
  Ekf ekf(config);
  const geom::Vec3 truth{2.0, 2.0, 1.5};
  ekf.reset(truth);
  const auto anchors = cube_anchors();
  for (int i = 0; i < 200; ++i) {
    ekf.predict(0.01, {});
    ekf.update_range(anchors[i % 8], anchors[i % 8].position.distance_to(truth));
  }
  // Teleport the truth far away: measurements now look like outliers.
  const geom::Vec3 new_truth{0.3, 0.3, 0.3};
  for (int i = 0; i < 600; ++i) {
    ekf.predict(0.01, {});
    ekf.update_range(anchors[i % 8], anchors[i % 8].position.distance_to(new_truth));
  }
  EXPECT_LT(ekf.position().distance_to(new_truth), 0.3);
}

TEST(Ekf, CovarianceStaysSymmetric) {
  Ekf ekf;
  ekf.reset({2, 2, 1});
  const auto anchors = cube_anchors();
  util::Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    ekf.predict(0.01, {rng.gaussian(0, 0.2), rng.gaussian(0, 0.2), rng.gaussian(0, 0.2)});
    ekf.update_range(anchors[i % 8],
                     anchors[i % 8].position.distance_to({2, 2, 1}) + rng.gaussian(0, 0.05));
  }
  const math::Matrix& p = ekf.covariance();
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(p(r, c), p(c, r), 1e-9);
    }
    EXPECT_GT(p(r, r), 0.0);  // positive diagonal
  }
}

}  // namespace
}  // namespace remgen::uwb
