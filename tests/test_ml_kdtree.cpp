#include <gtest/gtest.h>

#include <algorithm>

#include "ml/kdtree.hpp"
#include "util/rng.hpp"

namespace remgen::ml {
namespace {

std::vector<geom::Vec3> random_points(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geom::Vec3> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)});
  }
  return points;
}

std::vector<KdHit> brute_force(const std::vector<geom::Vec3>& points, const geom::Vec3& q,
                               std::size_t k) {
  std::vector<KdHit> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    hits.push_back({i, points[i].distance_to(q)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const KdHit& a, const KdHit& b) { return a.distance < b.distance; });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

TEST(KdTree, SinglePoint) {
  const std::vector<geom::Vec3> points{{1, 2, 3}};
  const KdTree tree(points);
  const auto hits = tree.nearest({0, 0, 0}, 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_NEAR(hits[0].distance, std::sqrt(14.0), 1e-12);
}

TEST(KdTree, EmptySetYieldsNoHits) {
  const KdTree tree(std::vector<geom::Vec3>{});
  EXPECT_TRUE(tree.nearest({0, 0, 0}, 3).empty());
  EXPECT_TRUE(tree.within({0, 0, 0}, 10.0).empty());
}

TEST(KdTree, NearestIsSorted) {
  const auto points = random_points(100, 1);
  const KdTree tree(points);
  const auto hits = tree.nearest({0, 0, 0}, 10);
  ASSERT_EQ(hits.size(), 10u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST(KdTree, DuplicatePointsAllFound) {
  std::vector<geom::Vec3> points(5, geom::Vec3{1, 1, 1});
  const KdTree tree(points);
  const auto hits = tree.nearest({1, 1, 1}, 5);
  ASSERT_EQ(hits.size(), 5u);
  std::set<std::size_t> indices;
  for (const KdHit& h : hits) {
    EXPECT_DOUBLE_EQ(h.distance, 0.0);
    indices.insert(h.index);
  }
  EXPECT_EQ(indices.size(), 5u);
}

TEST(KdTree, WithinRadius) {
  const std::vector<geom::Vec3> points{{0, 0, 0}, {1, 0, 0}, {3, 0, 0}, {10, 0, 0}};
  const KdTree tree(points);
  const auto hits = tree.within({0, 0, 0}, 3.0);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[2].index, 2u);  // at exactly radius 3 (inclusive)
}

TEST(KdTree, WithinZeroRadiusFindsExactMatches) {
  const std::vector<geom::Vec3> points{{1, 1, 1}, {2, 2, 2}};
  const KdTree tree(points);
  const auto hits = tree.within({1, 1, 1}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 0u);
}

// Property: KD-tree results match brute force for random sets and queries.
class KdTreeVsBruteForce : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdTreeVsBruteForce, NearestMatches) {
  const std::size_t n = GetParam();
  const auto points = random_points(n, 42 + n);
  const KdTree tree(points);
  util::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const geom::Vec3 q{rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0)};
    const std::size_t k = 1 + rng.index(std::min<std::size_t>(n, 12));
    const auto tree_hits = tree.nearest(q, k);
    const auto brute_hits = brute_force(points, q, k);
    ASSERT_EQ(tree_hits.size(), brute_hits.size());
    for (std::size_t i = 0; i < tree_hits.size(); ++i) {
      // Distances must agree exactly (ties may swap indices).
      EXPECT_DOUBLE_EQ(tree_hits[i].distance, brute_hits[i].distance);
    }
  }
}

TEST_P(KdTreeVsBruteForce, WithinMatches) {
  const std::size_t n = GetParam();
  const auto points = random_points(n, 1000 + n);
  const KdTree tree(points);
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Vec3 q{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const double radius = rng.uniform(0.5, 6.0);
    const auto hits = tree.within(q, radius);
    std::size_t brute_count = 0;
    for (const geom::Vec3& p : points) {
      if (p.distance_to(q) <= radius) ++brute_count;
    }
    EXPECT_EQ(hits.size(), brute_count);
    for (const KdHit& h : hits) EXPECT_LE(h.distance, radius);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeVsBruteForce, ::testing::Values(2, 5, 17, 64, 257, 1000));

}  // namespace
}  // namespace remgen::ml
