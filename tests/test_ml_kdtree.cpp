#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "ml/kdtree.hpp"
#include "ml/kdtree_dynamic.hpp"
#include "util/rng.hpp"

namespace remgen::ml {
namespace {

std::vector<geom::Vec3> random_points(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geom::Vec3> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)});
  }
  return points;
}

std::vector<KdHit> brute_force(const std::vector<geom::Vec3>& points, const geom::Vec3& q,
                               std::size_t k) {
  std::vector<KdHit> hits;
  for (std::size_t i = 0; i < points.size(); ++i) {
    hits.push_back({i, points[i].distance_to(q)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const KdHit& a, const KdHit& b) { return a.distance < b.distance; });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

TEST(KdTree, SinglePoint) {
  const std::vector<geom::Vec3> points{{1, 2, 3}};
  const KdTree tree(points);
  const auto hits = tree.nearest({0, 0, 0}, 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_NEAR(hits[0].distance, std::sqrt(14.0), 1e-12);
}

TEST(KdTree, EmptySetYieldsNoHits) {
  const KdTree tree(std::vector<geom::Vec3>{});
  EXPECT_TRUE(tree.nearest({0, 0, 0}, 3).empty());
  EXPECT_TRUE(tree.within({0, 0, 0}, 10.0).empty());
}

TEST(KdTree, NearestIsSorted) {
  const auto points = random_points(100, 1);
  const KdTree tree(points);
  const auto hits = tree.nearest({0, 0, 0}, 10);
  ASSERT_EQ(hits.size(), 10u);
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].distance, hits[i].distance);
  }
}

TEST(KdTree, DuplicatePointsAllFound) {
  std::vector<geom::Vec3> points(5, geom::Vec3{1, 1, 1});
  const KdTree tree(points);
  const auto hits = tree.nearest({1, 1, 1}, 5);
  ASSERT_EQ(hits.size(), 5u);
  std::set<std::size_t> indices;
  for (const KdHit& h : hits) {
    EXPECT_DOUBLE_EQ(h.distance, 0.0);
    indices.insert(h.index);
  }
  EXPECT_EQ(indices.size(), 5u);
}

TEST(KdTree, WithinRadius) {
  const std::vector<geom::Vec3> points{{0, 0, 0}, {1, 0, 0}, {3, 0, 0}, {10, 0, 0}};
  const KdTree tree(points);
  const auto hits = tree.within({0, 0, 0}, 3.0);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].index, 0u);
  EXPECT_EQ(hits[2].index, 2u);  // at exactly radius 3 (inclusive)
}

TEST(KdTree, WithinZeroRadiusFindsExactMatches) {
  const std::vector<geom::Vec3> points{{1, 1, 1}, {2, 2, 2}};
  const KdTree tree(points);
  const auto hits = tree.within({1, 1, 1}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 0u);
}

// Property: KD-tree results match brute force for random sets and queries.
class KdTreeVsBruteForce : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KdTreeVsBruteForce, NearestMatches) {
  const std::size_t n = GetParam();
  const auto points = random_points(n, 42 + n);
  const KdTree tree(points);
  util::Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const geom::Vec3 q{rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0)};
    const std::size_t k = 1 + rng.index(std::min<std::size_t>(n, 12));
    const auto tree_hits = tree.nearest(q, k);
    const auto brute_hits = brute_force(points, q, k);
    ASSERT_EQ(tree_hits.size(), brute_hits.size());
    for (std::size_t i = 0; i < tree_hits.size(); ++i) {
      // Distances must agree exactly (ties may swap indices).
      EXPECT_DOUBLE_EQ(tree_hits[i].distance, brute_hits[i].distance);
    }
  }
}

TEST_P(KdTreeVsBruteForce, WithinMatches) {
  const std::size_t n = GetParam();
  const auto points = random_points(n, 1000 + n);
  const KdTree tree(points);
  util::Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const geom::Vec3 q{rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const double radius = rng.uniform(0.5, 6.0);
    const auto hits = tree.within(q, radius);
    std::size_t brute_count = 0;
    for (const geom::Vec3& p : points) {
      if (p.distance_to(q) <= radius) ++brute_count;
    }
    EXPECT_EQ(hits.size(), brute_count);
    for (const KdHit& h : hits) EXPECT_LE(h.distance, radius);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KdTreeVsBruteForce, ::testing::Values(2, 5, 17, 64, 257, 1000));

std::uint64_t bits(double value) { return std::bit_cast<std::uint64_t>(value); }

// The ingest staleness invariant: after buffered inserts and any number of
// automatic rebuilds, a quiesced DynamicKdTree answers nearest() with the
// exact bits a from-scratch KdTree over the same point stream produces.
TEST(KdTreeDynamic, BufferedInsertThenRebuildMatchesFromScratchBitExactly) {
  const auto points = random_points(700, 123);
  DynamicKdTree dynamic(64);  // Crosses the rebuild interval many times.
  for (const geom::Vec3& p : points) dynamic.insert(p);
  dynamic.rebuild();
  ASSERT_EQ(dynamic.pending(), 0u);
  ASSERT_EQ(dynamic.size(), points.size());
  ASSERT_EQ(dynamic.tree_size(), points.size());
  EXPECT_GE(dynamic.rebuilds(), points.size() / 64);

  const KdTree scratch(points);
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const geom::Vec3 q{rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0)};
    const std::size_t k = 1 + rng.index(12);
    const auto expected = scratch.nearest(q, k);
    const auto actual = dynamic.nearest(q, k);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].index, actual[i].index) << "trial " << trial << " hit " << i;
      EXPECT_EQ(bits(expected[i].distance), bits(actual[i].distance))
          << "trial " << trial << " hit " << i;
    }
  }
}

TEST(KdTreeDynamic, PendingMergeIsIndependentOfRebuildTiming) {
  // Same stream, different rebuild schedules: all pending vs. a mid-stream
  // rebuild. Query answers must agree bit-for-bit, because the merge orders
  // by (distance, insertion index) and both paths share distance_to.
  const auto points = random_points(40, 5);
  DynamicKdTree all_pending(1024);
  all_pending.insert_batch(points);
  EXPECT_EQ(all_pending.tree_size(), 0u);
  EXPECT_EQ(all_pending.pending(), 40u);

  DynamicKdTree half_built(1024);
  half_built.insert_batch(std::span<const geom::Vec3>(points.data(), 20));
  half_built.rebuild();
  half_built.insert_batch(std::span<const geom::Vec3>(points.data() + 20, 20));
  EXPECT_EQ(half_built.tree_size(), 20u);
  EXPECT_EQ(half_built.pending(), 20u);

  util::Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const geom::Vec3 q{rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0), rng.uniform(-6.0, 6.0)};
    const std::size_t k = 1 + rng.index(10);
    const auto a = all_pending.nearest(q, k);
    const auto b = half_built.nearest(q, k);
    const auto brute = brute_force(points, q, k);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), brute.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].index, b[i].index);
      EXPECT_EQ(bits(a[i].distance), bits(b[i].distance));
      EXPECT_DOUBLE_EQ(a[i].distance, brute[i].distance);
    }
  }
}

TEST(KdTreeDynamic, AutoRebuildFiresAtIntervalAndIdleRebuildIsANoOp) {
  const auto points = random_points(11, 9);
  DynamicKdTree dynamic(8);
  for (std::size_t i = 0; i < 8; ++i) dynamic.insert(points[i]);
  EXPECT_EQ(dynamic.rebuilds(), 1u);  // The 8th insert filled the buffer.
  EXPECT_EQ(dynamic.pending(), 0u);
  EXPECT_EQ(dynamic.tree_size(), 8u);

  for (std::size_t i = 8; i < 11; ++i) dynamic.insert(points[i]);
  EXPECT_EQ(dynamic.pending(), 3u);
  EXPECT_EQ(dynamic.size(), 11u);

  dynamic.rebuild();
  EXPECT_EQ(dynamic.rebuilds(), 2u);
  EXPECT_EQ(dynamic.pending(), 0u);
  dynamic.rebuild();  // Nothing new: publishes nothing, counts nothing.
  EXPECT_EQ(dynamic.rebuilds(), 2u);
}

TEST(KdTreeDynamic, EmptyAndScratchQueries) {
  DynamicKdTree dynamic(16);
  EXPECT_EQ(dynamic.size(), 0u);
  EXPECT_TRUE(dynamic.nearest({0, 0, 0}, 4).empty());

  const auto points = random_points(30, 3);
  dynamic.insert_batch(points);
  KdQueryScratch scratch;
  const std::size_t count = dynamic.nearest({0, 0, 0}, 5, scratch);
  const auto expected = dynamic.nearest({0, 0, 0}, 5);
  ASSERT_EQ(count, expected.size());
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(scratch.heap[i].index, expected[i].index);
    EXPECT_EQ(bits(scratch.heap[i].distance), bits(expected[i].distance));
  }
}

}  // namespace
}  // namespace remgen::ml
