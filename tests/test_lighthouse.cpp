#include <gtest/gtest.h>

#include <cmath>

#include "lighthouse/lighthouse.hpp"
#include "util/stats.hpp"

namespace remgen::lighthouse {
namespace {

geom::Aabb volume() { return geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10}); }

TEST(LighthouseSetup, TwoStationsInOppositeUpperCorners) {
  const auto stations = standard_two_station_setup(volume());
  ASSERT_EQ(stations.size(), 2u);
  EXPECT_EQ(stations[0].position, geom::Vec3(0.0, 0.0, 2.10));
  EXPECT_EQ(stations[1].position, geom::Vec3(3.74, 3.20, 2.10));
  // Both face the centre: azimuth of the centre in each station frame is ~0.
  for (const BaseStation& s : stations) {
    const SweepMeasurement m = SweepModel::true_bearing(s, volume().center());
    EXPECT_NEAR(m.azimuth_rad, 0.0, 1e-9);
  }
}

TEST(SweepModelTest, TrueBearingKnownGeometry) {
  const BaseStation station{0, {0, 0, 0}, 0.0};
  const SweepMeasurement ahead = SweepModel::true_bearing(station, {2.0, 0.0, 0.0});
  EXPECT_NEAR(ahead.azimuth_rad, 0.0, 1e-12);
  EXPECT_NEAR(ahead.elevation_rad, 0.0, 1e-12);

  const SweepMeasurement left = SweepModel::true_bearing(station, {0.0, 2.0, 0.0});
  EXPECT_NEAR(left.azimuth_rad, M_PI / 2.0, 1e-12);

  const SweepMeasurement up = SweepModel::true_bearing(station, {2.0, 0.0, 2.0});
  EXPECT_NEAR(up.elevation_rad, M_PI / 4.0, 1e-12);
}

TEST(SweepModelTest, YawRotatesFrame) {
  const BaseStation station{0, {0, 0, 0}, M_PI / 2.0};  // facing +y
  const SweepMeasurement m = SweepModel::true_bearing(station, {0.0, 2.0, 0.0});
  EXPECT_NEAR(m.azimuth_rad, 0.0, 1e-12);
}

TEST(SweepModelTest, VisibilityRangeAndFov) {
  LighthouseConfig config;
  config.max_range_m = 6.0;
  config.fov_rad = 2.0;
  const SweepModel model(nullptr, config);
  const BaseStation station{0, {0, 0, 0}, 0.0};
  EXPECT_TRUE(model.visible(station, {3.0, 0.0, 0.0}));
  EXPECT_FALSE(model.visible(station, {7.0, 0.0, 0.0}));   // out of range
  EXPECT_FALSE(model.visible(station, {-3.0, 0.0, 0.0}));  // behind
  EXPECT_FALSE(model.visible(station, {0.5, 3.0, 0.0}));   // outside FoV (80 deg off)
}

TEST(SweepModelTest, WallsBlockInfrared) {
  geom::Floorplan fp;
  fp.add_wall(geom::Wall::vertical({1.0, -5.0, -3.0}, {1.0, 5.0, -3.0}, -3.0, 3.0,
                                   geom::WallMaterial::Glass));  // even glass blocks IR sweeps
  LighthouseConfig config;
  const SweepModel model(&fp, config);
  const BaseStation station{0, {0, 0, 0}, 0.0};
  EXPECT_FALSE(model.visible(station, {2.0, 0.0, 0.0}));
  // Without the wall the same tag is visible.
  const SweepModel open(nullptr, config);
  EXPECT_TRUE(open.visible(station, {2.0, 0.0, 0.0}));
}

TEST(SweepModelTest, MeasurementNoiseMagnitude) {
  LighthouseConfig config;
  config.angle_noise_rad = 0.001;
  config.dropout_probability = 0.0;
  const SweepModel model(nullptr, config);
  const BaseStation station{0, {0, 0, 0}, 0.0};
  const geom::Vec3 tag{3.0, 0.5, -0.5};
  const SweepMeasurement truth = SweepModel::true_bearing(station, tag);

  util::Rng rng(5);
  util::OnlineStats az;
  for (int i = 0; i < 3000; ++i) {
    const auto m = model.measure(station, tag, rng);
    ASSERT_TRUE(m.has_value());
    az.add(m->azimuth_rad);
  }
  EXPECT_NEAR(az.mean(), truth.azimuth_rad, 1e-4);
  EXPECT_NEAR(az.stddev(), 0.001, 1e-4);
}

TEST(LighthouseSystemTest, HoverAccuracyCentimetreLevel) {
  // The paper claims "comparable precision" to UWB with fewer anchors; the
  // optical system actually lands well under the UWB error.
  auto system = LighthouseSystem(standard_two_station_setup(volume()), nullptr,
                                 LighthouseConfig{}, util::Rng(3));
  const geom::Vec3 truth{1.8, 1.6, 1.0};
  system.initialize_at(truth);
  util::OnlineStats error;
  for (int i = 0; i < 3000; ++i) {
    system.step(0.01, truth, {});
    if (i > 500) error.add(system.estimated_position().distance_to(truth));
  }
  EXPECT_LT(error.mean(), 0.05);
  EXPECT_GT(system.sweeps_fused(), 1000u);
}

TEST(LighthouseSystemTest, TracksMovingTag) {
  auto system = LighthouseSystem(standard_two_station_setup(volume()), nullptr,
                                 LighthouseConfig{}, util::Rng(7));
  const geom::Vec3 centre = volume().center();
  auto truth_at = [&](double t) {
    // A slow circle through the interior of the volume.
    return centre + geom::Vec3{std::cos(0.4 * t), std::sin(0.4 * t), 0.4 * std::sin(0.2 * t)};
  };
  system.initialize_at(truth_at(0.0));
  util::OnlineStats error;
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 0.01;
    system.step(0.01, truth_at(t), {});
    if (i > 300) error.add(system.estimated_position().distance_to(truth_at(t)));
  }
  EXPECT_LT(error.mean(), 0.08);
}

TEST(LighthouseSystemTest, SingleStationStillConverges) {
  // Range from a single station is observable only through the 4-photodiode
  // angular disparity; the filter must still reach centimetre accuracy.
  auto one = LighthouseSystem({standard_two_station_setup(volume())[0]}, nullptr,
                              LighthouseConfig{}, util::Rng(9));
  const geom::Vec3 truth{1.8, 1.6, 1.0};
  one.initialize_at({1.6, 1.4, 0.9});  // slightly wrong start
  util::OnlineStats err_one;
  for (int i = 0; i < 3000; ++i) {
    one.step(0.01, truth, {});
    if (i > 1000) err_one.add(one.estimated_position().distance_to(truth));
  }
  EXPECT_LT(err_one.mean(), 0.05);
}

TEST(LighthouseSystemTest, DiodeDisparityProvidesRange) {
  // Shrinking the deck to a point sensor removes range observability from a
  // single station: the drift must be far larger than with the real deck.
  auto run = [](double deck_size) {
    LighthouseConfig config;
    config.deck_size_m = deck_size;
    auto system = LighthouseSystem({standard_two_station_setup(volume())[0]}, nullptr, config,
                                   util::Rng(31));
    const geom::Vec3 truth{1.8, 1.6, 1.0};
    system.initialize_at(truth);
    util::OnlineStats error;
    for (int i = 0; i < 3000; ++i) {
      system.step(0.01, truth, {});
      if (i > 1000) error.add(system.estimated_position().distance_to(truth));
    }
    return error.mean();
  };
  EXPECT_GT(run(0.0), 5.0 * run(0.03));
}

TEST(LighthouseSystemTest, OcclusionDegradesGracefully) {
  // A wall hides one station from the tag: accuracy drops but the filter
  // keeps a usable estimate from the other station.
  geom::Floorplan fp;
  fp.add_wall(geom::Wall::vertical({1.0, 1.0, 0.0}, {3.0, 1.0, 0.0}, 0.0, 2.1,
                                   geom::WallMaterial::Drywall));
  auto system = LighthouseSystem(standard_two_station_setup(volume()), &fp,
                                 LighthouseConfig{}, util::Rng(11));
  const geom::Vec3 truth{1.8, 0.5, 1.0};  // south of the wall: station 1 occluded
  system.initialize_at(truth);
  util::OnlineStats error;
  for (int i = 0; i < 2000; ++i) {
    system.step(0.01, truth, {});
    if (i > 500) error.add(system.estimated_position().distance_to(truth));
  }
  EXPECT_LT(error.mean(), 0.15);
}

TEST(LighthouseSystemTest, DeterministicGivenSeed) {
  auto run = [] {
    auto system = LighthouseSystem(standard_two_station_setup(volume()), nullptr,
                                   LighthouseConfig{}, util::Rng(13));
    const geom::Vec3 truth{2.0, 1.0, 1.2};
    system.initialize_at(truth);
    for (int i = 0; i < 500; ++i) system.step(0.01, truth, {});
    return system.estimated_position();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace remgen::lighthouse
