#include <gtest/gtest.h>

#include "geom/grid3.hpp"

namespace remgen::geom {
namespace {

GridGeometry unit_grid() {
  return GridGeometry(Aabb({0, 0, 0}, {4.0, 2.0, 1.0}), 4, 2, 1);
}

TEST(GridGeometryTest, Counts) {
  const GridGeometry g = unit_grid();
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 2u);
  EXPECT_EQ(g.nz(), 1u);
  EXPECT_EQ(g.voxel_count(), 8u);
}

TEST(GridGeometryTest, WithResolution) {
  const GridGeometry g = GridGeometry::with_resolution(Aabb({0, 0, 0}, {1.0, 0.5, 0.25}), 0.25);
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 2u);
  EXPECT_EQ(g.nz(), 1u);
}

TEST(GridGeometryTest, WithResolutionNeverZeroVoxels) {
  const GridGeometry g = GridGeometry::with_resolution(Aabb({0, 0, 0}, {0.1, 0.1, 0.1}), 10.0);
  EXPECT_EQ(g.voxel_count(), 1u);
}

TEST(GridGeometryTest, VoxelOfInteriorPoints) {
  const GridGeometry g = unit_grid();
  EXPECT_EQ(g.voxel_of({0.5, 0.5, 0.5}), (VoxelIndex{0, 0, 0}));
  EXPECT_EQ(g.voxel_of({3.5, 1.5, 0.5}), (VoxelIndex{3, 1, 0}));
  EXPECT_EQ(g.voxel_of({1.0, 0.0, 0.0}), (VoxelIndex{1, 0, 0}));  // on edge -> upper voxel
}

TEST(GridGeometryTest, VoxelOfClampsOutside) {
  const GridGeometry g = unit_grid();
  EXPECT_EQ(g.voxel_of({-5.0, -5.0, -5.0}), (VoxelIndex{0, 0, 0}));
  EXPECT_EQ(g.voxel_of({100.0, 100.0, 100.0}), (VoxelIndex{3, 1, 0}));
}

TEST(GridGeometryTest, VoxelCenterRoundTrip) {
  const GridGeometry g = unit_grid();
  for (std::size_t iz = 0; iz < g.nz(); ++iz) {
    for (std::size_t iy = 0; iy < g.ny(); ++iy) {
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        const VoxelIndex v{ix, iy, iz};
        EXPECT_EQ(g.voxel_of(g.voxel_center(v)), v);
      }
    }
  }
}

TEST(GridGeometryTest, FlatIndexIsBijective) {
  const GridGeometry g(Aabb({0, 0, 0}, {1, 1, 1}), 3, 4, 5);
  std::vector<bool> seen(g.voxel_count(), false);
  for (std::size_t iz = 0; iz < g.nz(); ++iz) {
    for (std::size_t iy = 0; iy < g.ny(); ++iy) {
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        const std::size_t flat = g.flat({ix, iy, iz});
        ASSERT_LT(flat, seen.size());
        EXPECT_FALSE(seen[flat]);
        seen[flat] = true;
      }
    }
  }
}

TEST(VoxelFieldTest, DefaultFillAndWrite) {
  VoxelField<double> field(unit_grid(), -1.0);
  EXPECT_EQ(field.at({0, 0, 0}), -1.0);
  field.at({2, 1, 0}) = 7.5;
  EXPECT_EQ(field.at({2, 1, 0}), 7.5);
}

TEST(VoxelFieldTest, AtPointUsesContainingVoxel) {
  VoxelField<int> field(unit_grid(), 0);
  field.at({1, 0, 0}) = 42;
  EXPECT_EQ(field.at_point({1.5, 0.5, 0.5}), 42);
  EXPECT_EQ(field.at_point({0.5, 0.5, 0.5}), 0);
}

}  // namespace
}  // namespace remgen::geom
