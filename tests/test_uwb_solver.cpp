#include <gtest/gtest.h>

#include "uwb/anchor.hpp"
#include "uwb/solver.hpp"
#include "util/rng.hpp"

namespace remgen::uwb {
namespace {

std::vector<Anchor> cube_anchors() {
  return corner_anchors(geom::Aabb({0, 0, 0}, {4, 4, 3}));
}

std::vector<RangeObservation> exact_ranges(const std::vector<Anchor>& anchors,
                                           const geom::Vec3& truth) {
  std::vector<RangeObservation> obs;
  for (const Anchor& a : anchors) obs.push_back({a, a.position.distance_to(truth)});
  return obs;
}

TEST(SolverTwr, ExactRecoveryFromPerfectRanges) {
  const auto anchors = cube_anchors();
  const geom::Vec3 truth{1.3, 2.2, 1.1};
  const PositionFix fix = solve_twr(exact_ranges(anchors, truth), {2, 2, 1.5});
  EXPECT_TRUE(fix.converged);
  EXPECT_LT(fix.position.distance_to(truth), 1e-6);
  EXPECT_LT(fix.residual_rms_m, 1e-6);
}

TEST(SolverTwr, ConvergesFromPoorInitialGuess) {
  const auto anchors = cube_anchors();
  const geom::Vec3 truth{0.5, 3.5, 0.4};
  const PositionFix fix = solve_twr(exact_ranges(anchors, truth), {10.0, -10.0, 5.0});
  EXPECT_LT(fix.position.distance_to(truth), 1e-5);
}

TEST(SolverTwr, NoisyRangesGiveSmallError) {
  const auto anchors = cube_anchors();
  const geom::Vec3 truth{2.0, 1.0, 1.5};
  util::Rng rng(7);
  auto obs = exact_ranges(anchors, truth);
  for (auto& o : obs) o.range_m += rng.gaussian(0.0, 0.05);
  const PositionFix fix = solve_twr(obs, {2, 2, 1});
  EXPECT_LT(fix.position.distance_to(truth), 0.15);
  EXPECT_GT(fix.residual_rms_m, 0.0);
}

TEST(SolverTwr, FourAnchorsMinimum) {
  const auto anchors = corner_anchors_subset(geom::Aabb({0, 0, 0}, {4, 4, 3}), 4);
  const geom::Vec3 truth{1.0, 1.0, 1.0};
  const PositionFix fix = solve_twr(exact_ranges(anchors, truth), {2, 2, 1.5});
  EXPECT_LT(fix.position.distance_to(truth), 1e-5);
}

TEST(SolverTdoa, ExactRecovery) {
  const auto anchors = cube_anchors();
  const geom::Vec3 truth{1.7, 0.9, 2.0};
  std::vector<TdoaObservation> obs;
  for (std::size_t i = 1; i < anchors.size(); ++i) {
    obs.push_back({anchors[i], anchors[0],
                   anchors[i].position.distance_to(truth) -
                       anchors[0].position.distance_to(truth)});
  }
  const PositionFix fix = solve_tdoa(obs, {2, 2, 1.5});
  EXPECT_LT(fix.position.distance_to(truth), 1e-5);
}

TEST(SolverTdoa, NoisyDifferences) {
  const auto anchors = cube_anchors();
  const geom::Vec3 truth{3.0, 3.0, 1.0};
  util::Rng rng(11);
  std::vector<TdoaObservation> obs;
  for (std::size_t i = 1; i < anchors.size(); ++i) {
    obs.push_back({anchors[i], anchors[0],
                   anchors[i].position.distance_to(truth) -
                       anchors[0].position.distance_to(truth) + rng.gaussian(0.0, 0.03)});
  }
  const PositionFix fix = solve_tdoa(obs, {2, 2, 1.5});
  EXPECT_LT(fix.position.distance_to(truth), 0.25);
}

// Property: exact recovery across random tag positions inside the volume.
class SolverRecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverRecoveryProperty, TwrRecoversRandomPositions) {
  util::Rng rng(100 + GetParam());
  const auto anchors = cube_anchors();
  const geom::Vec3 truth{rng.uniform(0.2, 3.8), rng.uniform(0.2, 3.8), rng.uniform(0.2, 2.8)};
  const PositionFix fix = solve_twr(exact_ranges(anchors, truth), {2, 2, 1.5});
  EXPECT_LT(fix.position.distance_to(truth), 1e-5) << truth.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomPositions, SolverRecoveryProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace remgen::uwb
