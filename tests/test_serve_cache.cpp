// ResultCache edge cases the engine tests don't pin down: the zero-budget
// disable path and LRU bounds under concurrent get/put from the pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exec/config.hpp"
#include "exec/parallel.hpp"
#include "serve/cache.hpp"

namespace remgen::serve {
namespace {

const radio::MacAddress kMac = *radio::MacAddress::parse("02:00:00:00:00:0a");

TEST(ServeCacheBudget, ZeroBudgetDisablesWithoutCountingMisses) {
  ResultCache cache(0);
  EXPECT_EQ(cache.capacity_entries(), 0u);
  cache.put(kMac, {1, 2, 3}, -42.0);
  EXPECT_FALSE(cache.get(kMac, {1, 2, 3}).has_value());
  EXPECT_EQ(cache.size(), 0u);
  // A disabled cache is not "always missing" — lookups are no-ops, so the
  // hit ratio of a budgeted deployment is not polluted by disabled runs.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(ServeCacheBudget, SubEntryBudgetBehavesLikeZero) {
  ResultCache cache(ResultCache::kBytesPerEntry - 1);
  EXPECT_EQ(cache.capacity_entries(), 0u);
  cache.put(kMac, {1, 2, 3}, -42.0);
  EXPECT_FALSE(cache.get(kMac, {1, 2, 3}).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ServeCacheConcurrency, LruBoundHoldsUnderConcurrentGetPut) {
  const std::size_t previous = exec::thread_count();
  exec::set_thread_count(4);

  // All keys share one MAC, so every worker contends on the same shard —
  // the worst case for the LRU list/index invariants.
  ResultCache cache(ResultCache::kBytesPerEntry * 16 * 4);  // 4 entries/shard.
  const std::size_t capacity = cache.capacity_entries();
  ASSERT_GT(capacity, 0u);

  constexpr std::size_t kWorkItems = 4000;
  constexpr std::size_t kDistinctKeys = 64;  // >> per-shard capacity: constant eviction.
  std::vector<int> seen_wrong_value(kWorkItems, 0);
  exec::parallel_for(
      kWorkItems,
      [&](std::size_t i) {
        const auto key = static_cast<double>(i % kDistinctKeys);
        const geom::Vec3 point{key, 0.0, 0.0};
        if (const auto hit = cache.get(kMac, point); hit.has_value()) {
          // Values are a pure function of the key, so a hit may only ever
          // return the value every writer stores for that key.
          seen_wrong_value[i] = *hit == -key ? 0 : 1;
        }
        cache.put(kMac, point, -key);
      },
      /*chunk=*/7);

  exec::set_thread_count(previous);
  for (std::size_t i = 0; i < kWorkItems; ++i) {
    EXPECT_EQ(seen_wrong_value[i], 0) << "stale or torn value at item " << i;
  }
  EXPECT_LE(cache.size(), capacity);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_GT(cache.hits() + cache.misses(), 0u);

  // The survivors are retrievable and still carry their writer's value.
  std::size_t retrievable = 0;
  for (std::size_t k = 0; k < kDistinctKeys; ++k) {
    const auto key = static_cast<double>(k);
    if (const auto hit = cache.get(kMac, {key, 0.0, 0.0}); hit.has_value()) {
      EXPECT_EQ(*hit, -key);
      ++retrievable;
    }
  }
  EXPECT_GT(retrievable, 0u);
  EXPECT_LE(retrievable, capacity);
}

}  // namespace
}  // namespace remgen::serve
