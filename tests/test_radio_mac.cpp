#include <gtest/gtest.h>

#include <set>

#include "radio/mac_address.hpp"

namespace remgen::radio {
namespace {

TEST(MacAddress, DefaultIsZero) {
  EXPECT_EQ(MacAddress{}.to_string(), "00:00:00:00:00:00");
  EXPECT_EQ(MacAddress{}.to_u64(), 0u);
}

TEST(MacAddress, ParseValid) {
  const auto mac = MacAddress::parse("aa:bb:cc:dd:ee:ff");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(MacAddress, ParseUppercase) {
  const auto mac = MacAddress::parse("AA:BB:CC:DD:EE:FF");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->to_string(), "aa:bb:cc:dd:ee:ff");  // canonical lower case
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::parse("").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:ff:00").has_value());
  EXPECT_FALSE(MacAddress::parse("aa-bb-cc-dd-ee-ff").has_value());
  EXPECT_FALSE(MacAddress::parse("gg:bb:cc:dd:ee:ff").has_value());
  EXPECT_FALSE(MacAddress::parse("aa:bb:cc:dd:ee:f").has_value());
  EXPECT_FALSE(MacAddress::parse("aabbccddeeff____x").has_value());
}

TEST(MacAddress, RoundTrip) {
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const MacAddress mac = MacAddress::random(rng);
    const auto parsed = MacAddress::parse(mac.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mac);
  }
}

TEST(MacAddress, RandomIsLocallyAdministeredUnicast) {
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const MacAddress mac = MacAddress::random(rng);
    const std::uint8_t first = mac.octets()[0];
    EXPECT_EQ(first & 0x02u, 0x02u);  // locally administered
    EXPECT_EQ(first & 0x01u, 0x00u);  // unicast
  }
}

TEST(MacAddress, RandomIsDistinct) {
  util::Rng rng(9);
  std::set<MacAddress> macs;
  for (int i = 0; i < 1000; ++i) macs.insert(MacAddress::random(rng));
  EXPECT_EQ(macs.size(), 1000u);
}

TEST(MacAddress, OrderingAndHash) {
  const auto a = *MacAddress::parse("00:00:00:00:00:01");
  const auto b = *MacAddress::parse("00:00:00:00:00:02");
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<MacAddress>{}(a), std::hash<MacAddress>{}(b));
  EXPECT_EQ(std::hash<MacAddress>{}(a), std::hash<MacAddress>{}(a));
}

TEST(MacAddress, ToU64BigEndianOctets) {
  const auto mac = *MacAddress::parse("01:02:03:04:05:06");
  EXPECT_EQ(mac.to_u64(), 0x010203040506ull);
}

}  // namespace
}  // namespace remgen::radio
