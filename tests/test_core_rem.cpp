#include <gtest/gtest.h>

#include <sstream>

#include "core/coverage.hpp"
#include "core/rem.hpp"

namespace remgen::core {
namespace {

radio::MacAddress mac_a() { return *radio::MacAddress::parse("02:00:00:00:00:0a"); }
radio::MacAddress mac_b() { return *radio::MacAddress::parse("02:00:00:00:00:0b"); }

RadioEnvironmentMap small_rem() {
  const geom::GridGeometry g(geom::Aabb({0, 0, 0}, {2.0, 2.0, 1.0}), 2, 2, 1);
  return RadioEnvironmentMap(g, {mac_a(), mac_b()});
}

TEST(Rem, CellsDefaultToVeryWeak) {
  const RadioEnvironmentMap rem = small_rem();
  EXPECT_DOUBLE_EQ(rem.cell(mac_a(), {0, 0, 0}).rss_dbm, -120.0);
}

TEST(Rem, SetAndGetCell) {
  RadioEnvironmentMap rem = small_rem();
  rem.set_cell(mac_a(), {1, 0, 0}, {-62.5, 1.5});
  const RemCell c = rem.cell(mac_a(), {1, 0, 0});
  EXPECT_DOUBLE_EQ(c.rss_dbm, -62.5);
  EXPECT_DOUBLE_EQ(c.sigma_db, 1.5);
  // Other MAC unaffected.
  EXPECT_DOUBLE_EQ(rem.cell(mac_b(), {1, 0, 0}).rss_dbm, -120.0);
}

TEST(Rem, QueryUsesContainingVoxel) {
  RadioEnvironmentMap rem = small_rem();
  rem.set_cell(mac_a(), {0, 0, 0}, {-70.0, 0.0});
  rem.set_cell(mac_a(), {1, 1, 0}, {-50.0, 0.0});
  const auto q1 = rem.query(mac_a(), {0.4, 0.4, 0.5});
  ASSERT_TRUE(q1.has_value());
  EXPECT_DOUBLE_EQ(q1->rss_dbm, -70.0);
  const auto q2 = rem.query(mac_a(), {1.6, 1.6, 0.5});
  ASSERT_TRUE(q2.has_value());
  EXPECT_DOUBLE_EQ(q2->rss_dbm, -50.0);
}

TEST(Rem, QueryUnknownMacIsNull) {
  const RadioEnvironmentMap rem = small_rem();
  EXPECT_FALSE(rem.query(*radio::MacAddress::parse("02:ff:ff:ff:ff:ff"), {1, 1, 0.5}));
}

TEST(Rem, BestApPicksStrongest) {
  RadioEnvironmentMap rem = small_rem();
  rem.set_cell(mac_a(), {0, 0, 0}, {-70.0, 0.0});
  rem.set_cell(mac_b(), {0, 0, 0}, {-55.0, 0.0});
  const auto best = rem.best_ap({0.4, 0.4, 0.5});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->mac, mac_b());
  EXPECT_DOUBLE_EQ(best->cell.rss_dbm, -55.0);
}

TEST(Rem, CoverageFraction) {
  RadioEnvironmentMap rem = small_rem();
  // Cover two of the four voxels at -60.
  rem.set_cell(mac_a(), {0, 0, 0}, {-60.0, 0.0});
  rem.set_cell(mac_b(), {1, 1, 0}, {-60.0, 0.0});
  EXPECT_DOUBLE_EQ(rem.coverage_fraction(-70.0), 0.5);
  EXPECT_DOUBLE_EQ(rem.coverage_fraction(-50.0), 0.0);
  EXPECT_DOUBLE_EQ(rem.coverage_fraction(-130.0), 1.0);
}

TEST(Rem, DarkVoxelsComplementCoverage) {
  RadioEnvironmentMap rem = small_rem();
  rem.set_cell(mac_a(), {0, 0, 0}, {-60.0, 0.0});
  const auto dark = rem.dark_voxels(-70.0);
  EXPECT_EQ(dark.size(), 3u);
  for (const geom::VoxelIndex& v : dark) {
    EXPECT_FALSE(v == (geom::VoxelIndex{0, 0, 0}));
  }
}

TEST(Rem, CsvContainsEveryCell) {
  RadioEnvironmentMap rem = small_rem();
  std::ostringstream out;
  rem.write_csv(out);
  const std::string text = out.str();
  // Header + 2 macs * 4 voxels = 9 lines.
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 9u);
  EXPECT_NE(text.find("02:00:00:00:00:0a"), std::string::npos);
  EXPECT_NE(text.find("rss_dbm"), std::string::npos);
}

TEST(Coverage, ReportMatchesRem) {
  RadioEnvironmentMap rem = small_rem();
  rem.set_cell(mac_a(), {0, 0, 0}, {-60.0, 0.0});
  const CoverageReport report = analyze_coverage(rem, -70.0);
  EXPECT_DOUBLE_EQ(report.covered_fraction, 0.25);
  EXPECT_EQ(report.dark_voxel_count, 3u);
  EXPECT_DOUBLE_EQ(report.threshold_dbm, -70.0);
}

TEST(Coverage, PlacementCandidateInDarkRegionWins) {
  // One covered corner; the dark region is the rest of the box. A candidate
  // AP amid the dark voxels must newly cover more than one far away corner
  // that is attenuated by a wall.
  const geom::GridGeometry g(geom::Aabb({0, 0, 0}, {8.0, 2.0, 1.0}), 8, 2, 1);
  RadioEnvironmentMap rem(g, {mac_a()});
  rem.set_cell(mac_a(), {0, 0, 0}, {-50.0, 0.0});

  geom::Floorplan fp;
  fp.add_wall(geom::Wall::vertical({4.0, -1.0, 0.0}, {4.0, 3.0, 0.0}, 0.0, 1.0,
                                   geom::WallMaterial::ReinforcedConcrete, 20.0));

  PlacementConfig config;
  config.threshold_dbm = -60.0;
  config.tx_power_dbm = 5.0;
  const std::vector<geom::Vec3> candidates{{6.0, 1.0, 0.5},   // amid the dark voxels
                                           {0.5, 0.5, 0.5}};  // behind the wall from most
  const auto ranked = rank_ap_placements(rem, fp, candidates, config);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].position, geom::Vec3(6.0, 1.0, 0.5));
  EXPECT_GT(ranked[0].newly_covered_voxels, ranked[1].newly_covered_voxels);
  EXPECT_GE(ranked[0].predicted_coverage_fraction, ranked[1].predicted_coverage_fraction);
}

}  // namespace
}  // namespace remgen::core
