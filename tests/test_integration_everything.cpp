// "Everything on" cross-feature integration: the office environment, the
// Lighthouse positioning stack, a mixed Wi-Fi/BLE fleet, optimized routes and
// adaptive leg timing — all at once, through the ordinary campaign API.
#include <gtest/gtest.h>

#include <set>

#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

namespace remgen::mission {
namespace {

TEST(EverythingOn, OfficeLighthouseMixedFleetOptimizedRoutes) {
  util::Rng rng(2026);
  const radio::Scenario office = radio::Scenario::make_office(rng);

  CampaignConfig config;
  config.grid = {.nx = 4, .ny = 3, .nz = 2, .margin_m = 0.35};
  config.uav_count = 2;
  config.positioning = PositioningKind::Lighthouse;
  config.receivers = {ReceiverKind::Wifi, ReceiverKind::Ble};
  config.optimize_route = true;
  config.mission.adaptive_leg_timing = true;

  const CampaignResult result = run_campaign(office, config, rng);
  ASSERT_EQ(result.uav_stats.size(), 2u);
  for (const UavMissionStats& s : result.uav_stats) {
    EXPECT_EQ(s.waypoints_commanded, 12u);
    EXPECT_GE(s.scans_completed, 12u);
    EXPECT_FALSE(s.aborted_on_battery);
    EXPECT_EQ(s.tx_queue_drops, 0u);
  }

  // Both technologies contributed.
  std::set<radio::MacAddress> wifi_macs;
  for (const auto& ap : office.environment().access_points()) wifi_macs.insert(ap.mac);
  std::size_t wifi = 0;
  std::size_t ble = 0;
  for (const data::Sample& s : result.dataset.samples()) {
    (wifi_macs.count(s.mac) ? wifi : ble) += 1;
  }
  EXPECT_GT(wifi, 50u);
  EXPECT_GT(ble, 10u);

  // The multi-technology REM builds and answers queries over the office
  // volume.
  const auto model = ml::make_model(ml::ModelKind::PerMacKnn);
  core::RemBuilderConfig rem_config;
  rem_config.voxel_m = 0.5;
  rem_config.min_samples_per_mac = 6;
  const core::RadioEnvironmentMap rem =
      core::build_rem(result.dataset, *model, office.scan_volume(), rem_config);
  EXPECT_GE(rem.macs().size(), 10u);
  const auto best = rem.best_ap(office.scan_volume().center());
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(best->cell.rss_dbm, -70.0);  // a ceiling AP is close overhead
}

TEST(EverythingOn, DeterministicAcrossRuns) {
  auto run_once = [] {
    util::Rng rng(2027);
    const radio::Scenario office = radio::Scenario::make_office(rng);
    CampaignConfig config;
    config.grid = {.nx = 3, .ny = 2, .nz = 1, .margin_m = 0.4};
    config.positioning = PositioningKind::Lighthouse;
    config.receivers = {ReceiverKind::Wifi, ReceiverKind::Ble};
    config.optimize_route = true;
    config.mission.adaptive_leg_timing = true;
    return run_campaign(office, config, rng).dataset;
  };
  const data::Dataset a = run_once();
  const data::Dataset b = run_once();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples()[i].mac, b.samples()[i].mac);
    EXPECT_DOUBLE_EQ(a.samples()[i].rss_dbm, b.samples()[i].rss_dbm);
    EXPECT_EQ(a.samples()[i].position, b.samples()[i].position);
  }
}

}  // namespace
}  // namespace remgen::mission
