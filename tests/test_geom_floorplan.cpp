#include <gtest/gtest.h>

#include "geom/floorplan.hpp"

namespace remgen::geom {
namespace {

Floorplan two_walls() {
  Floorplan fp;
  fp.add_wall(Wall::vertical({1.0, -5.0, 0.0}, {1.0, 5.0, 0.0}, 0.0, 3.0,
                             WallMaterial::Drywall));
  fp.add_wall(Wall::vertical({2.0, -5.0, 0.0}, {2.0, 5.0, 0.0}, 0.0, 3.0,
                             WallMaterial::Concrete));
  return fp;
}

TEST(FloorplanTest, AddWallReturnsIndex) {
  Floorplan fp;
  EXPECT_EQ(fp.add_wall(Wall::slab(0, 0, 1, 1, 0.0, WallMaterial::Wood)), 0u);
  EXPECT_EQ(fp.add_wall(Wall::slab(0, 0, 1, 1, 1.0, WallMaterial::Wood)), 1u);
  EXPECT_EQ(fp.walls().size(), 2u);
}

TEST(FloorplanTest, CrossingsSortedByT) {
  const Floorplan fp = two_walls();
  const auto crossings = fp.crossings({0.0, 0.0, 1.0}, {3.0, 0.0, 1.0});
  ASSERT_EQ(crossings.size(), 2u);
  EXPECT_LT(crossings[0].t, crossings[1].t);
  EXPECT_EQ(crossings[0].wall_index, 0u);
  EXPECT_EQ(crossings[1].wall_index, 1u);
}

TEST(FloorplanTest, CrossingsReverseDirection) {
  const Floorplan fp = two_walls();
  const auto crossings = fp.crossings({3.0, 0.0, 1.0}, {0.0, 0.0, 1.0});
  ASSERT_EQ(crossings.size(), 2u);
  EXPECT_EQ(crossings[0].wall_index, 1u);  // concrete wall hit first going back
}

TEST(FloorplanTest, TotalPenetrationLossSumsMaterials) {
  const Floorplan fp = two_walls();
  const double loss = fp.total_penetration_loss_db({0.0, 0.0, 1.0}, {3.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(loss, material_loss_db(WallMaterial::Drywall) +
                             material_loss_db(WallMaterial::Concrete));
}

TEST(FloorplanTest, WallCountAndLineOfSight) {
  const Floorplan fp = two_walls();
  EXPECT_EQ(fp.wall_count_between({0.0, 0.0, 1.0}, {3.0, 0.0, 1.0}), 2u);
  EXPECT_EQ(fp.wall_count_between({1.2, 0.0, 1.0}, {1.8, 0.0, 1.0}), 0u);
  EXPECT_TRUE(fp.line_of_sight({1.2, 0.0, 1.0}, {1.8, 0.0, 1.0}));
  EXPECT_FALSE(fp.line_of_sight({0.0, 0.0, 1.0}, {1.5, 0.0, 1.0}));
}

TEST(FloorplanTest, EmptyFloorplanHasLineOfSight) {
  Floorplan fp;
  EXPECT_TRUE(fp.line_of_sight({0, 0, 0}, {10, 10, 10}));
  EXPECT_DOUBLE_EQ(fp.total_penetration_loss_db({0, 0, 0}, {10, 10, 10}), 0.0);
}

TEST(ApartmentModelTest, ScanVolumeMatchesPaper) {
  const ApartmentModel model = make_apartment_model();
  const Vec3 size = model.scan_volume.size();
  EXPECT_NEAR(size.x, 3.74, 1e-9);
  EXPECT_NEAR(size.y, 3.20, 1e-9);
  EXPECT_NEAR(size.z, 2.10, 1e-9);
}

TEST(ApartmentModelTest, BuildingContainsScanVolume) {
  const ApartmentModel model = make_apartment_model();
  EXPECT_TRUE(model.building_bounds.contains(model.scan_volume.min));
  EXPECT_TRUE(model.building_bounds.contains(model.scan_volume.max));
}

TEST(ApartmentModelTest, HasThickSegmentOnUavBSide) {
  const ApartmentModel model = make_apartment_model();
  bool found = false;
  for (const Wall& w : model.floorplan.walls()) {
    if (w.name() == "corridor-south-thick") {
      found = true;
      EXPECT_GT(w.loss_db(), material_loss_db(WallMaterial::Concrete));
    }
  }
  EXPECT_TRUE(found);
}

TEST(ApartmentModelTest, ThickSegmentBlocksOnlyLowXHalf) {
  const ApartmentModel model = make_apartment_model();
  // Straight-south path from UAV B's half crosses the thick segment...
  const double loss_b = model.floorplan.total_penetration_loss_db({0.9, 1.0, 1.0},
                                                                  {0.9, -3.0, 1.0});
  // ...while the same path from UAV A's half crosses the thin partition.
  const double loss_a = model.floorplan.total_penetration_loss_db({2.8, 1.0, 1.0},
                                                                  {2.8, -3.0, 1.0});
  EXPECT_GT(loss_b, loss_a + 10.0);
}

TEST(ApartmentModelTest, FloorSlabSeparatesStoreys) {
  const ApartmentModel model = make_apartment_model();
  const double within_floor =
      model.floorplan.total_penetration_loss_db({1.0, 1.0, 0.5}, {1.0, 1.0, 2.0});
  const double across_floor =
      model.floorplan.total_penetration_loss_db({1.0, 1.0, 1.0}, {1.0, 1.0, 3.5});
  EXPECT_DOUBLE_EQ(within_floor, 0.0);
  EXPECT_GE(across_floor, material_loss_db(WallMaterial::ReinforcedConcrete));
}

TEST(ApartmentModelTest, InteriorOfScanVolumeIsOpenSpace) {
  const ApartmentModel model = make_apartment_model();
  // No wall crosses the interior of the room itself.
  EXPECT_TRUE(model.floorplan.line_of_sight({0.3, 0.3, 0.3}, {3.4, 2.9, 1.8}));
}

}  // namespace
}  // namespace remgen::geom
