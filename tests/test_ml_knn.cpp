#include <gtest/gtest.h>

#include "ml/baseline.hpp"
#include "ml/knn.hpp"
#include "ml/metrics.hpp"
#include "ml/per_mac_knn.hpp"
#include "util/rng.hpp"

namespace remgen::ml {
namespace {

data::Sample make_sample(double x, double y, double z, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

constexpr const char* kMacA = "02:00:00:00:00:0a";
constexpr const char* kMacB = "02:00:00:00:00:0b";

TEST(MinkowskiDistance, EuclideanAndManhattan) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(minkowski_distance(a, b, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(minkowski_distance(a, b, 1.0), 7.0);
}

TEST(MinkowskiDistance, HigherOrderApproachesChebyshev) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_NEAR(minkowski_distance(a, b, 16.0), 4.0, 0.15);
}

TEST(Knn, KOneReturnsNearestTarget) {
  KnnConfig config;
  config.n_neighbors = 1;
  config.features.include_mac_onehot = false;
  KnnRegressor knn(config);
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(10, 0, 0, kMacA, -90)};
  knn.fit(train);
  EXPECT_DOUBLE_EQ(knn.predict(make_sample(1, 0, 0, kMacA, 0)), -60.0);
  EXPECT_DOUBLE_EQ(knn.predict(make_sample(9, 0, 0, kMacA, 0)), -90.0);
}

TEST(Knn, ExactMatchDominatesWithDistanceWeights) {
  KnnConfig config;
  config.n_neighbors = 3;
  config.weights = KnnWeights::Distance;
  config.features.include_mac_onehot = false;
  KnnRegressor knn(config);
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(1, 0, 0, kMacA, -70),
                                  make_sample(2, 0, 0, kMacA, -80)};
  knn.fit(train);
  EXPECT_DOUBLE_EQ(knn.predict(make_sample(1, 0, 0, kMacA, 0)), -70.0);
}

TEST(Knn, UniformWeightsAverage) {
  KnnConfig config;
  config.n_neighbors = 2;
  config.weights = KnnWeights::Uniform;
  config.features.include_mac_onehot = false;
  KnnRegressor knn(config);
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(1, 0, 0, kMacA, -80),
                                  make_sample(50, 0, 0, kMacA, -100)};
  knn.fit(train);
  EXPECT_DOUBLE_EQ(knn.predict(make_sample(0.5, 0, 0, kMacA, 0)), -70.0);
}

TEST(Knn, DistanceWeightsBiasTowardCloser) {
  KnnConfig config;
  config.n_neighbors = 2;
  config.weights = KnnWeights::Distance;
  config.features.include_mac_onehot = false;
  KnnRegressor knn(config);
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(3, 0, 0, kMacA, -90)};
  knn.fit(train);
  // Query at x=1: weights 1/1 and 1/2 -> (-60 - 45) / 1.5 = -70.
  EXPECT_NEAR(knn.predict(make_sample(1, 0, 0, kMacA, 0)), -70.0, 1e-9);
}

TEST(Knn, KLargerThanTrainingSetIsClamped) {
  KnnConfig config;
  config.n_neighbors = 50;
  config.weights = KnnWeights::Uniform;
  config.features.include_mac_onehot = false;
  KnnRegressor knn(config);
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(1, 0, 0, kMacA, -80)};
  knn.fit(train);
  EXPECT_DOUBLE_EQ(knn.predict(make_sample(0, 0, 0, kMacA, 0)), -70.0);
}

TEST(Knn, OneHotSeparatesMacs) {
  // Same location, two different MACs with very different RSS: with the
  // one-hot feature, the prediction for MAC A must come from A's samples.
  KnnConfig config;
  config.n_neighbors = 1;
  config.features.mac_onehot_scale = 3.0;
  KnnRegressor knn(config);
  std::vector<data::Sample> train{make_sample(1, 1, 1, kMacA, -50),
                                  make_sample(1, 1, 1, kMacB, -90)};
  knn.fit(train);
  EXPECT_DOUBLE_EQ(knn.predict(make_sample(1, 1, 1, kMacA, 0)), -50.0);
  EXPECT_DOUBLE_EQ(knn.predict(make_sample(1, 1, 1, kMacB, 0)), -90.0);
}

TEST(Knn, LargerOneHotScalePreventsCrossMacLeakage) {
  // With a weak scale a same-position other-MAC sample can be "nearer" than a
  // distant same-MAC one; the paper multiplies the one-hot by 3 to avoid it.
  auto leakage = [](double scale) {
    KnnConfig config;
    config.n_neighbors = 1;
    config.features.mac_onehot_scale = scale;
    KnnRegressor knn(config);
    std::vector<data::Sample> train{make_sample(0, 0, 0, kMacB, -90),
                                    make_sample(3.0, 0, 0, kMacA, -50)};
    knn.fit(train);
    // Query MAC A at the B sample's position.
    return knn.predict(make_sample(0, 0, 0, kMacA, 0));
  };
  EXPECT_DOUBLE_EQ(leakage(0.1), -90.0);  // leaks across MACs
  EXPECT_DOUBLE_EQ(leakage(3.0), -50.0);  // paper's scale keeps MACs apart
}

TEST(Knn, NameReflectsConfig) {
  KnnConfig config;
  config.n_neighbors = 16;
  config.features.mac_onehot_scale = 3.0;
  EXPECT_EQ(KnnRegressor(config).name(), "knn(k=16,weights=distance,p=2,mac_scale=3.0)");
}

TEST(PerMacKnnTest, InterpolatesWithinMac) {
  PerMacKnn model{KnnConfig{.n_neighbors = 2, .weights = KnnWeights::Uniform}};
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(2, 0, 0, kMacA, -80),
                                  make_sample(0, 0, 0, kMacB, -40),
                                  make_sample(2, 0, 0, kMacB, -50)};
  model.fit(train);
  EXPECT_DOUBLE_EQ(model.predict(make_sample(1, 0, 0, kMacA, 0)), -70.0);
  EXPECT_DOUBLE_EQ(model.predict(make_sample(1, 0, 0, kMacB, 0)), -45.0);
}

TEST(PerMacKnnTest, UnknownMacFallsBackToGlobalMean) {
  PerMacKnn model;
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(1, 0, 0, kMacA, -80)};
  model.fit(train);
  const data::Sample query = make_sample(0, 0, 0, "02:aa:aa:aa:aa:aa", 0);
  EXPECT_DOUBLE_EQ(model.predict(query), -70.0);
}

TEST(Baseline, ExactPerMacMeans) {
  MeanPerMacBaseline baseline;
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(1, 0, 0, kMacA, -70),
                                  make_sample(0, 0, 0, kMacB, -90)};
  baseline.fit(train);
  EXPECT_DOUBLE_EQ(baseline.predict(make_sample(9, 9, 9, kMacA, 0)), -65.0);
  EXPECT_DOUBLE_EQ(baseline.predict(make_sample(9, 9, 9, kMacB, 0)), -90.0);
}

TEST(Baseline, UnseenMacGetsGlobalMean) {
  MeanPerMacBaseline baseline;
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(0, 0, 0, kMacB, -80)};
  baseline.fit(train);
  EXPECT_DOUBLE_EQ(baseline.predict(make_sample(0, 0, 0, "02:cc:cc:cc:cc:cc", 0)), -70.0);
}

TEST(Metrics, PerfectPredictorScoresZeroRmse) {
  MeanPerMacBaseline baseline;
  std::vector<data::Sample> train{make_sample(0, 0, 0, kMacA, -60),
                                  make_sample(1, 0, 0, kMacA, -60)};
  baseline.fit(train);
  const RegressionMetrics m = evaluate(baseline, train);
  EXPECT_DOUBLE_EQ(m.rmse, 0.0);
  EXPECT_DOUBLE_EQ(m.mae, 0.0);
}

TEST(Metrics, R2OfMeanPredictorOnSpreadData) {
  // Predicting the mean of a two-point set gives R^2 = 0.
  MeanPerMacBaseline baseline;
  std::vector<data::Sample> test{make_sample(0, 0, 0, kMacA, -60),
                                 make_sample(1, 0, 0, kMacA, -80)};
  baseline.fit(test);
  const RegressionMetrics m = evaluate(baseline, test);
  EXPECT_NEAR(m.r2, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.rmse, 10.0);
}

TEST(Knn, KnnBeatsBaselineOnSpatialField) {
  // Synthetic spatially structured field: RSS = -60 - 5x + noise.
  util::Rng rng(3);
  std::vector<data::Sample> train;
  std::vector<data::Sample> test;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    data::Sample s = make_sample(x, y, 1.0, kMacA, -60.0 - 5.0 * x + rng.gaussian(0, 1.0));
    (i % 4 == 0 ? test : train).push_back(s);
  }
  MeanPerMacBaseline baseline;
  baseline.fit(train);
  KnnConfig config;
  config.n_neighbors = 5;
  KnnRegressor knn(config);
  knn.fit(train);
  EXPECT_LT(evaluate(knn, test).rmse, 0.5 * evaluate(baseline, test).rmse);
}

}  // namespace
}  // namespace remgen::ml
