#include <gtest/gtest.h>

#include "uwb/ranging.hpp"
#include "util/stats.hpp"

namespace remgen::uwb {
namespace {

TEST(Ranging, TwrUnbiasedInFreeSpace) {
  RangingConfig config;
  config.twr_noise_sigma_m = 0.05;
  config.dropout_probability = 0.0;
  const RangingModel model(nullptr, config);
  const Anchor anchor{0, {0, 0, 0}};
  const geom::Vec3 tag{3.0, 4.0, 0.0};  // true distance 5 m

  util::Rng rng(3);
  util::OnlineStats stats;
  for (int i = 0; i < 5000; ++i) {
    const auto r = model.twr_range(anchor, tag, rng);
    ASSERT_TRUE(r.has_value());
    stats.add(*r);
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.05, 0.005);
}

TEST(Ranging, BeyondMaxRangeIsLost) {
  RangingConfig config;
  config.max_range_m = 10.0;
  config.dropout_probability = 0.0;
  const RangingModel model(nullptr, config);
  util::Rng rng(1);
  EXPECT_FALSE(model.twr_range({0, {0, 0, 0}}, {11.0, 0.0, 0.0}, rng).has_value());
  EXPECT_TRUE(model.twr_range({0, {0, 0, 0}}, {9.0, 0.0, 0.0}, rng).has_value());
}

TEST(Ranging, DropoutRateHonoured) {
  RangingConfig config;
  config.dropout_probability = 0.25;
  const RangingModel model(nullptr, config);
  util::Rng rng(5);
  int lost = 0;
  constexpr int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    if (!model.twr_range({0, {0, 0, 0}}, {2, 0, 0}, rng)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / kTrials, 0.25, 0.03);
}

TEST(Ranging, NlosWallAddsPositiveBias) {
  geom::Floorplan fp;
  fp.add_wall(geom::Wall::vertical({1.0, -5.0, 0.0}, {1.0, 5.0, 0.0}, 0.0, 3.0,
                                   geom::WallMaterial::Concrete));
  RangingConfig config;
  config.twr_noise_sigma_m = 0.01;
  config.nlos_bias_per_wall_m = 0.2;
  config.dropout_probability = 0.0;
  const RangingModel model(&fp, config);
  const Anchor anchor{0, {0, 0, 1}};

  util::Rng rng(7);
  util::OnlineStats through_wall;
  for (int i = 0; i < 2000; ++i) {
    through_wall.add(*model.twr_range(anchor, {2.0, 0.0, 1.0}, rng));
  }
  EXPECT_NEAR(through_wall.mean(), 2.0 + 0.2, 0.01);
}

TEST(Ranging, TdoaIsDifferenceOfDistances) {
  RangingConfig config;
  config.tdoa_noise_sigma_m = 0.02;
  config.dropout_probability = 0.0;
  const RangingModel model(nullptr, config);
  const Anchor a{0, {0, 0, 0}};
  const Anchor b{1, {10, 0, 0}};
  const geom::Vec3 tag{2.0, 0.0, 0.0};  // d(a)=2, d(b)=8 -> diff -6

  util::Rng rng(9);
  util::OnlineStats stats;
  for (int i = 0; i < 5000; ++i) {
    stats.add(*model.tdoa(a, b, tag, rng));
  }
  EXPECT_NEAR(stats.mean(), -6.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.02, 0.003);
}

TEST(Ranging, TdoaLostWhenEitherAnchorOutOfRange) {
  RangingConfig config;
  config.max_range_m = 5.0;
  config.dropout_probability = 0.0;
  const RangingModel model(nullptr, config);
  util::Rng rng(11);
  EXPECT_FALSE(
      model.tdoa({0, {0, 0, 0}}, {1, {10, 0, 0}}, {2.0, 0.0, 0.0}, rng).has_value());
}

TEST(Ranging, RangeNeverNegative) {
  RangingConfig config;
  config.twr_noise_sigma_m = 1.0;  // large noise, tiny distance
  config.dropout_probability = 0.0;
  const RangingModel model(nullptr, config);
  util::Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const auto r = model.twr_range({0, {0, 0, 0}}, {0.01, 0, 0}, rng);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(*r, 0.0);
  }
}

}  // namespace
}  // namespace remgen::uwb
