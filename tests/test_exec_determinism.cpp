// The determinism contract of the execution layer: every parallel path —
// fleet campaigns, REM voxel prediction, hyperparameter grid search — must
// produce output byte-identical to the sequential REMGEN_THREADS=1 run.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/rem_builder.hpp"
#include "exec/config.hpp"
#include "mission/campaign.hpp"
#include "ml/grid_search.hpp"
#include "ml/knn.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"

namespace remgen {
namespace {

/// Restores the configured width after each test so suites don't leak state.
class ExecDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = exec::thread_count(); }
  void TearDown() override { exec::set_thread_count(previous_); }

 private:
  std::size_t previous_ = 1;
};

std::string campaign_csv() {
  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  mission::CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);
  std::ostringstream out;
  result.dataset.write_csv(out);
  return out.str();
}

data::Sample make_sample(double x, double y, double z, const char* mac, double rss) {
  data::Sample s;
  s.position = {x, y, z};
  s.mac = *radio::MacAddress::parse(mac);
  s.channel = 6;
  s.rss_dbm = rss;
  return s;
}

data::Dataset synthetic_dataset(std::size_t per_mac = 40) {
  util::Rng rng(21);
  data::Dataset ds;
  for (std::size_t i = 0; i < per_mac; ++i) {
    const double x = rng.uniform(0.0, 4.0);
    const double y = rng.uniform(0.0, 3.0);
    const double z = rng.uniform(0.0, 2.0);
    ds.add(make_sample(x, y, z, "02:00:00:00:00:0a", -55.0 - 4.0 * x + rng.gaussian(0, 1.0)));
    ds.add(make_sample(x, y, z, "02:00:00:00:00:0b", -75.0 - 2.0 * y + rng.gaussian(0, 1.0)));
  }
  return ds;
}

std::string rem_csv(const data::Dataset& ds, ml::ModelKind kind) {
  core::RemBuilderConfig config;
  config.voxel_m = 0.5;
  config.min_samples_per_mac = 1;
  const core::RadioEnvironmentMap rem =
      core::build_rem(ds, kind, geom::Aabb({0, 0, 0}, {4.0, 3.0, 2.0}), config);
  std::ostringstream out;
  rem.write_csv(out);
  return out.str();
}

TEST_F(ExecDeterminismTest, CampaignDatasetIsByteIdenticalAcrossThreadCounts) {
  exec::set_thread_count(1);
  const std::string sequential = campaign_csv();
  exec::set_thread_count(4);
  const std::string parallel = campaign_csv();
  EXPECT_EQ(sequential, parallel);
}

TEST_F(ExecDeterminismTest, RemCellsAreByteIdenticalAcrossThreadCounts) {
  const data::Dataset ds = synthetic_dataset();
  for (const ml::ModelKind kind :
       {ml::ModelKind::PerMacKnn, ml::ModelKind::KnnScaled16, ml::ModelKind::Idw,
        ml::ModelKind::Kriging}) {
    exec::set_thread_count(1);
    const std::string sequential = rem_csv(ds, kind);
    exec::set_thread_count(4);
    const std::string parallel = rem_csv(ds, kind);
    EXPECT_EQ(sequential, parallel) << ml::model_kind_name(kind);
  }
}

TEST_F(ExecDeterminismTest, GridSearchResultIsIdenticalAcrossThreadCounts) {
  const data::Dataset ds = synthetic_dataset(60);
  std::vector<ml::KnnConfig> candidates;
  for (const std::size_t k : {1u, 3u, 5u, 7u}) {
    for (const ml::KnnWeights w : {ml::KnnWeights::Uniform, ml::KnnWeights::Distance}) {
      ml::KnnConfig config;
      config.n_neighbors = k;
      config.weights = w;
      candidates.push_back(config);
    }
  }
  const auto make = [](const ml::KnnConfig& config) {
    return std::make_unique<ml::KnnRegressor>(config);
  };

  const auto run = [&] {
    util::Rng rng(7);
    return ml::grid_search(candidates, make, ds.samples(), 0.25, rng);
  };
  exec::set_thread_count(1);
  const auto sequential = run();
  exec::set_thread_count(4);
  const auto parallel = run();

  ASSERT_EQ(sequential.evaluated.size(), parallel.evaluated.size());
  for (std::size_t i = 0; i < sequential.evaluated.size(); ++i) {
    // Bitwise equality: the per-candidate evaluation is single-threaded and
    // identical, only the scheduling differs.
    EXPECT_EQ(sequential.evaluated[i].validation_rmse, parallel.evaluated[i].validation_rmse);
    EXPECT_EQ(sequential.evaluated[i].config.n_neighbors,
              parallel.evaluated[i].config.n_neighbors);
  }
  EXPECT_EQ(sequential.best_rmse, parallel.best_rmse);
  EXPECT_EQ(sequential.best.n_neighbors, parallel.best.n_neighbors);
  EXPECT_EQ(sequential.best.weights, parallel.best.weights);
}

}  // namespace
}  // namespace remgen
