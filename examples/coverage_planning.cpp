// Coverage planning: the application the paper's introduction motivates —
// using the REM to find "dark" connectivity regions and plan where to add an
// access point to cover them.
#include <cstdio>
#include <vector>

#include "core/coverage.hpp"
#include "util/stats.hpp"
#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "radio/scenario.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);

  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const mission::CampaignConfig campaign_config;
  std::printf("running two-UAV campaign...\n");
  const mission::CampaignResult campaign = mission::run_campaign(scenario, campaign_config, rng);

  const auto model = ml::make_model(ml::ModelKind::KnnScaled16);
  core::RemBuilderConfig rem_config;
  rem_config.voxel_m = 0.25;
  const core::RadioEnvironmentMap rem =
      core::build_rem(campaign.dataset, *model, scenario.scan_volume(), rem_config);

  // Pick the planning threshold from the REM itself: the 25th percentile of
  // the predicted best-AP signal. Everything below it is the "dark" quartile
  // we want a new AP to serve (a real deployment would use its MCS target).
  std::vector<double> best_rss;
  const geom::GridGeometry& g = rem.geometry();
  for (std::size_t iz = 0; iz < g.nz(); ++iz) {
    for (std::size_t iy = 0; iy < g.ny(); ++iy) {
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        if (const auto best = rem.best_ap(g.voxel_center({ix, iy, iz}))) {
          best_rss.push_back(best->cell.rss_dbm);
        }
      }
    }
  }
  const double threshold_dbm = util::percentile(best_rss, 25.0);
  std::printf("planning threshold: %.1f dBm (25th percentile of predicted best-AP RSS)\n",
              threshold_dbm);
  const core::CoverageReport before = core::analyze_coverage(rem, threshold_dbm);
  std::printf("coverage at %.0f dBm: %.1f%%, %zu dark voxels\n", threshold_dbm,
              before.covered_fraction * 100.0, before.dark_voxel_count);
  if (!before.dark_voxels.empty()) {
    // Centroid of the dark region.
    geom::Vec3 centroid;
    for (const geom::VoxelIndex& v : before.dark_voxels) {
      centroid += rem.geometry().voxel_center(v);
    }
    centroid = centroid / static_cast<double>(before.dark_voxels.size());
    std::printf("dark-region centroid: %s\n", centroid.to_string().c_str());
  }

  // Candidate AP positions: a coarse grid of wall- and shelf-mountable spots.
  std::vector<geom::Vec3> candidates;
  for (const double x : {0.3, 1.2, 2.5, 3.4}) {
    for (const double y : {0.3, 1.6, 2.9}) {
      candidates.push_back({x, y, 1.9});
    }
  }
  core::PlacementConfig placement;
  placement.threshold_dbm = threshold_dbm;
  placement.tx_power_dbm = 10.0;  // a modest mesh-extender node
  const auto ranked =
      core::rank_ap_placements(rem, scenario.floorplan(), candidates, placement);

  std::printf("\ncandidate AP placements, best first (%zu candidates):\n", ranked.size());
  std::printf("%-24s %18s %18s\n", "position", "newly-covered", "coverage-after");
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (i >= 5 && i + 2 < ranked.size()) {
      if (i == 5) std::printf("  ...\n");
      continue;
    }
    std::printf("%-24s %18zu %17.1f%%\n", ranked[i].position.to_string().c_str(),
                ranked[i].newly_covered_voxels,
                ranked[i].predicted_coverage_fraction * 100.0);
  }
  return 0;
}
