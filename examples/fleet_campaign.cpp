// Fleet campaign: reproduces the paper's validation data collection — two
// Crazyflies sequentially visiting 72 waypoints (36 each) over the
// 3.74 x 3.20 x 2.10 m living-room volume, collecting Wi-Fi beacon samples
// with the Crazyradio shut down during every scan. Prints the campaign
// statistics the paper reports (Section III-A) and writes the dataset CSV.
#include <cstdio>
#include <fstream>

#include "mission/campaign.hpp"
#include "radio/scenario.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);

  using namespace remgen;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2022;
  util::Rng rng(seed);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);

  mission::CampaignConfig config;  // defaults: 72 waypoints, 2 UAVs, radio-off scans
  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);

  std::printf("=== campaign summary (seed %llu) ===\n",
              static_cast<unsigned long long>(seed));
  std::size_t total = 0;
  for (const mission::UavMissionStats& s : result.uav_stats) {
    const char uav_name = static_cast<char>('A' + s.uav_id);
    std::printf(
        "UAV %c: %zu waypoints, %zu scans, %zu samples, active %dm%02ds, "
        "battery left %.0f%%, tx-queue drops %zu\n",
        uav_name, s.waypoints_commanded, s.scans_completed, s.samples_collected,
        static_cast<int>(s.active_time_s) / 60, static_cast<int>(s.active_time_s) % 60,
        s.battery_remaining_fraction * 100.0, s.tx_queue_drops);
    total += s.samples_collected;
  }
  const data::Dataset& ds = result.dataset;
  std::printf("total samples: %zu\n", total);
  std::printf("distinct MACs: %zu, distinct SSIDs: %zu, mean RSS %.1f dBm\n",
              ds.distinct_macs().size(), ds.distinct_ssids().size(), ds.mean_rss_dbm());

  std::size_t dropped = 0;
  const data::Dataset retained = ds.filter_min_samples_per_mac(16, &dropped);
  std::printf("preprocessing (MACs with >= 16 samples): %zu retained, %zu dropped\n",
              retained.size(), dropped);

  std::ofstream csv("campaign_dataset.csv");
  ds.write_csv(csv);
  std::printf("dataset written to campaign_dataset.csv\n");
  return 0;
}
