// Quickstart: the smallest end-to-end use of the remgen public API.
//
// Builds the apartment scenario, flies a single UAV over a coarse waypoint
// grid, trains the paper's best kNN model on the collected samples, builds a
// REM and queries it at a location the UAV never visited.
#include <cstdio>

#include "core/pipeline.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);

  using namespace remgen;

  // 1. A simulated indoor environment (apartment + neighbouring Wi-Fi APs).
  util::Rng rng(/*seed=*/7);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  std::printf("scenario: %zu access points, scan volume %.2f x %.2f x %.2f m\n",
              scenario.environment().access_points().size(), scenario.scan_volume().size().x,
              scenario.scan_volume().size().y, scenario.scan_volume().size().z);

  // 2. A small single-UAV campaign: 3x2x2 = 12 waypoints.
  core::PipelineConfig config;
  config.campaign.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.4};
  config.campaign.uav_count = 1;
  config.min_samples_per_mac = 8;  // the tiny campaign yields fewer samples
  config.model = ml::ModelKind::KnnScaled16;
  config.rem.voxel_m = 0.4;

  const core::PipelineResult result = core::run_pipeline(scenario, config, rng);

  std::printf("campaign: %zu samples from %zu scans (%.1f s flight)\n",
              result.campaign.dataset.size(), result.campaign.uav_stats.at(0).scans_completed,
              result.campaign.uav_stats.at(0).active_time_s);
  std::printf("model holdout RMSE: %.3f dBm\n", result.holdout.rmse);

  // 3. Query the REM at an unvisited point.
  const geom::Vec3 query_point{1.7, 1.1, 0.9};
  if (const auto best = result.rem->best_ap(query_point)) {
    std::printf("strongest AP at %s: %s, predicted %.1f dBm\n",
                query_point.to_string().c_str(), best->mac.to_string().c_str(),
                best->cell.rss_dbm);
  }
  std::printf("coverage at -80 dBm: %.1f%% of the volume\n",
              result.rem->coverage_fraction(-80.0) * 100.0);
  return 0;
}
