// REM heatmap: builds a full fine-grained 3D REM from a campaign dataset and
// renders ASCII heatmap slices of the strongest-AP field per height layer;
// exports the complete raster as CSV for external plotting.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/coverage.hpp"
#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "radio/scenario.hpp"
#include "util/log.hpp"

namespace {

// 10-step intensity ramp from weak to strong signal.
char intensity_char(double rss_dbm) {
  static const char* ramp = " .:-=+*#%@";
  const double lo = -90.0;
  const double hi = -40.0;
  int idx = static_cast<int>((rss_dbm - lo) / (hi - lo) * 9.0 + 0.5);
  if (idx < 0) idx = 0;
  if (idx > 9) idx = 9;
  return ramp[idx];
}

}  // namespace

int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);

  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const mission::CampaignConfig campaign_config;
  std::printf("running two-UAV campaign...\n");
  const mission::CampaignResult campaign = mission::run_campaign(scenario, campaign_config, rng);
  std::printf("collected %zu samples\n", campaign.dataset.size());

  // Build a 20 cm REM with per-cell kriging uncertainty.
  const auto model = ml::make_model(ml::ModelKind::Kriging);
  core::RemBuilderConfig rem_config;
  rem_config.voxel_m = 0.20;
  const core::RadioEnvironmentMap rem =
      core::build_rem(campaign.dataset, *model, scenario.scan_volume(), rem_config);
  const geom::GridGeometry& g = rem.geometry();
  std::printf("REM raster: %zu x %zu x %zu voxels (%.2f m), %zu mapped transmitters\n\n",
              g.nx(), g.ny(), g.nz(), 0.20, rem.macs().size());

  // Pick three representative transmitters (weakest / median / strongest by
  // their mean predicted RSS) and draw each one's mid-height slice — the
  // per-transmitter field is what a REM stores.
  std::vector<std::pair<double, radio::MacAddress>> ranked;
  for (const radio::MacAddress& mac : rem.macs()) {
    double acc = 0.0;
    std::size_t n = 0;
    for (std::size_t iz = 0; iz < g.nz(); ++iz) {
      for (std::size_t iy = 0; iy < g.ny(); ++iy) {
        for (std::size_t ix = 0; ix < g.nx(); ++ix) {
          acc += rem.cell(mac, {ix, iy, iz}).rss_dbm;
          ++n;
        }
      }
    }
    ranked.emplace_back(acc / static_cast<double>(n), mac);
  }
  std::sort(ranked.begin(), ranked.end());
  const std::size_t mid_z = g.nz() / 2;
  for (const std::size_t pick : {std::size_t{0}, ranked.size() / 2, ranked.size() - 1}) {
    const auto& [mean_rss, mac] = ranked[pick];
    std::printf("predicted RSS field of %s (mean %.1f dBm) at z = %.2f m (x ->, y v):\n",
                mac.to_string().c_str(), mean_rss, g.voxel_center({0, 0, mid_z}).z);
    for (std::size_t iyr = g.ny(); iyr-- > 0;) {
      std::printf("  ");
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        std::printf("%c", intensity_char(rem.cell(mac, {ix, iyr, mid_z}).rss_dbm));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("legend: ' ' <= -90 dBm ... '@' >= -40 dBm\n\n");

  const core::CoverageReport coverage = core::analyze_coverage(rem, -80.0);
  std::printf("coverage at -80 dBm: %.1f%% (%zu dark voxels)\n",
              coverage.covered_fraction * 100.0, coverage.dark_voxel_count);

  std::ofstream csv("rem_raster.csv");
  rem.write_csv(csv);
  std::printf("full raster written to rem_raster.csv\n");
  return 0;
}
