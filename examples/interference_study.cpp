// Interference study: explores the Crazyradio self-interference model that
// motivates the paper's radio-off-during-scan design — per-channel beacon
// loss probability across the Crazyradio's tunable range, and the end effect
// on a single scan.
#include <cstdio>

#include "radio/interference.hpp"
#include "radio/scenario.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);

  using namespace remgen;

  // 1. The analytical loss surface.
  std::printf("beacon loss probability by Wi-Fi channel and Crazyradio carrier:\n%-8s",
              "carrier");
  for (int ch = 1; ch <= radio::kNumWifiChannels; ++ch) std::printf(" ch%-3d", ch);
  std::printf("\n");
  radio::CrazyradioInterference interference;
  for (double carrier = 2400.0; carrier <= 2525.0; carrier += 25.0) {
    interference.set_carrier_mhz(carrier);
    std::printf("%-8.0f", carrier);
    for (int ch = 1; ch <= radio::kNumWifiChannels; ++ch) {
      std::printf(" %5.2f", interference.beacon_loss_probability(ch));
    }
    std::printf("\n");
  }
  interference.set_enabled(false);
  std::printf("%-8s", "off");
  for (int ch = 1; ch <= radio::kNumWifiChannels; ++ch) {
    std::printf(" %5.2f", interference.beacon_loss_probability(ch));
  }
  std::printf("\n\n");

  // 2. Effect on actual scans in the demo apartment.
  util::Rng rng(7);
  const radio::Scenario scenario = radio::Scenario::make_apartment(rng);
  const geom::Vec3 p = scenario.scan_volume().center();
  util::Rng scan_rng(11);

  auto avg_detections = [&](const radio::CrazyradioInterference* source) {
    std::size_t total = 0;
    constexpr int kRuns = 20;
    for (int i = 0; i < kRuns; ++i) {
      total += scenario.environment().scan(p, 2.1, source, scan_rng).size();
    }
    return static_cast<double>(total) / kRuns;
  };

  std::printf("average APs detected per scan at the room centre:\n");
  std::printf("  radio off : %.1f\n", avg_detections(nullptr));
  for (const double carrier : {2400.0, 2450.0, 2500.0}) {
    radio::CrazyradioInterference on;
    on.set_carrier_mhz(carrier);
    std::printf("  %4.0f MHz  : %.1f\n", carrier, avg_detections(&on));
  }
  std::printf("\nthe gap is why the toolchain shuts the Crazyradio down for every scan\n");
  return 0;
}
