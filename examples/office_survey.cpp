// Office survey: deploying the toolchain in a brand-new environment (design
// requirement ii) — an open-plan office floor with ceiling-mounted enterprise
// APs — and answering the questions an IT team would ask: which AP serves
// each zone, where the corporate SSID is weakest, and how the per-AP fields
// look.
#include <algorithm>
#include <cstdio>
#include <map>

#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);

  using namespace remgen;

  util::Rng rng(2022);
  const radio::Scenario office = radio::Scenario::make_office(rng);
  std::printf("office floor: %zu transmitters, scan volume %.1f x %.1f x %.1f m\n",
              office.environment().access_points().size(), office.scan_volume().size().x,
              office.scan_volume().size().y, office.scan_volume().size().z);

  // Three sequential UAVs survey the open-plan area with optimized routes.
  mission::CampaignConfig config;
  config.uav_count = 3;
  config.optimize_route = true;
  config.mission.adaptive_leg_timing = true;
  const mission::CampaignResult campaign = mission::run_campaign(office, config, rng);
  std::printf("survey: %zu samples across %zu flights\n\n", campaign.dataset.size(),
              campaign.uav_stats.size());

  const auto model = ml::make_model(ml::ModelKind::Kriging);
  core::RemBuilderConfig rem_config;
  rem_config.voxel_m = 0.5;
  const core::RadioEnvironmentMap rem =
      core::build_rem(campaign.dataset, *model, office.scan_volume(), rem_config);

  // Zone report: which AP dominates each quadrant of the floor section, and
  // the weakest best-AP signal in it (the IT team's "is this zone covered?").
  const geom::Aabb& vol = office.scan_volume();
  std::printf("%-14s %-20s %12s %14s\n", "zone", "dominant AP", "best(dBm)", "weakest(dBm)");
  for (int qx = 0; qx < 2; ++qx) {
    for (int qy = 0; qy < 2; ++qy) {
      const double x0 = vol.min.x + qx * vol.size().x / 2.0;
      const double y0 = vol.min.y + qy * vol.size().y / 2.0;
      std::map<radio::MacAddress, int> votes;
      double weakest = 0.0;
      double strongest = -200.0;
      for (double x = x0 + 0.3; x < x0 + vol.size().x / 2.0; x += 0.6) {
        for (double y = y0 + 0.3; y < y0 + vol.size().y / 2.0; y += 0.6) {
          const auto best = rem.best_ap({x, y, 1.2});
          if (!best) continue;
          ++votes[best->mac];
          weakest = std::min(weakest, best->cell.rss_dbm);
          strongest = std::max(strongest, best->cell.rss_dbm);
        }
      }
      const auto dominant = std::max_element(
          votes.begin(), votes.end(),
          [](const auto& a, const auto& b) { return a.second < b.second; });
      std::printf("  (%d,%d)%8s %-20s %12.1f %14.1f\n", qx, qy, "",
                  dominant == votes.end() ? "-" : dominant->first.to_string().c_str(),
                  strongest, weakest);
    }
  }

  std::printf("\ncoverage at -67 dBm (VoIP-grade): %.1f%% of the surveyed volume\n",
              rem.coverage_fraction(-67.0) * 100.0);
  return 0;
}
