// REM lifecycle: build the map, live with it, notice when it goes stale,
// re-fly only what changed.
//
// The paper motivates periodic REM regeneration because "the REMs can become
// obsolete due to long-term changes in the signal propagation". This example
// shows the full loop the library supports: a full campaign builds the REM;
// cheap 12-waypoint probe flights monitor it; when the environment changes
// (here: the apartment's router is moved), the drift detector flags the
// transmitter and a fresh campaign restores the map.
#include <cstdio>

#include "core/drift.hpp"
#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"
#include "util/log.hpp"

namespace {

using namespace remgen;

data::Dataset probe_flight(const radio::Scenario& scenario, std::uint64_t seed) {
  util::Rng rng(seed);
  mission::CampaignConfig config;
  config.grid = {.nx = 3, .ny = 2, .nz = 2, .margin_m = 0.3};
  config.uav_count = 1;
  config.mission.adaptive_leg_timing = true;
  return mission::run_campaign(scenario, config, rng).dataset;
}

core::RadioEnvironmentMap build_map(const radio::Scenario& scenario,
                                    const data::Dataset& dataset) {
  const auto model = ml::make_model(ml::ModelKind::PerMacKnn);
  return core::build_rem(dataset, *model, scenario.scan_volume(), core::RemBuilderConfig{});
}

void report(const char* when, const core::DriftReport& r) {
  std::printf("%-28s judged %2zu MACs | drifted %zu | vanished %zu | unknown %zu -> %s\n",
              when, r.judged_macs, r.drifted_macs, r.vanished.size(), r.unknown_macs,
              r.rem_stale || r.drifted_macs > 0 ? "ATTENTION" : "map is healthy");
}

}  // namespace

int main(int argc, char** argv) {
  remgen::util::init_log_level_from_args(argc, argv);

  using namespace remgen;

  // Month 0: full campaign, build the REM.
  util::Rng rng(2022);
  const radio::Scenario world = radio::Scenario::make_apartment(rng);
  util::Rng campaign_rng(7);
  const mission::CampaignResult campaign =
      mission::run_campaign(world, mission::CampaignConfig{}, campaign_rng);
  const core::RadioEnvironmentMap rem = build_map(world, campaign.dataset);
  std::printf("month 0: REM built from %zu samples (%zu transmitters)\n\n",
              campaign.dataset.size(), rem.macs().size());

  // Months 1-2: routine probe flights against the unchanged world.
  report("month 1 probe:", core::detect_drift(rem, probe_flight(world, 111).samples()));
  report("month 2 probe:", core::detect_drift(rem, probe_flight(world, 102).samples()));

  // Month 3: the tenant moves the router to the other end of the room.
  util::Rng variant_rng(2022);
  radio::MacAddress moved_mac;
  const radio::Scenario changed = radio::Scenario::make_apartment(
      variant_rng, radio::ScenarioConfig{}, radio::EnvironmentConfig{},
      [&](std::vector<radio::AccessPoint>& aps) {
        aps[0].position = {0.4, 2.9, 0.4};
        moved_mac = aps[0].mac;
      });
  const core::DriftReport month3 =
      core::detect_drift(rem, probe_flight(changed, 103).samples());
  report("month 3 probe:", month3);
  for (const core::MacDrift& d : month3.per_mac) {
    if (!d.drifted) continue;
    std::printf("  -> %s drifted (mean %+.1f dB, rms %.1f dB)%s\n",
                d.mac.to_string().c_str(), d.mean_residual_db, d.rms_residual_db,
                d.mac == moved_mac ? "  <- the moved router" : "");
  }

  // Re-fly and rebuild: the fresh map absorbs the change.
  util::Rng refly_rng(8);
  const mission::CampaignResult refly =
      mission::run_campaign(changed, mission::CampaignConfig{}, refly_rng);
  const core::RadioEnvironmentMap fresh = build_map(changed, refly.dataset);
  report("after re-fly:", core::detect_drift(fresh, probe_flight(changed, 104).samples()));
  return 0;
}
