// remgen — command-line front end to the toolchain.
//
//   remgen campaign  --seed 2022 --grid 6x4x3 --uavs 2 --out dataset.csv
//                    [--radio-on] [--optimize-route] [--adaptive-legs]
//                    [--positioning uwb|lighthouse] [--receivers wifi,ble]
//                    [--fault-profile none|lossy|flaky-scanner|uwb-degraded|
//                     brownout|harsh|<comma list>] [--fault-seed N]
//   remgen info      --in dataset.csv
//   remgen evaluate  --in dataset.csv [--model all|<name>] [--split 0.75]
//                    [--min-samples 16] [--seed 99]
//   remgen rem       --in dataset.csv --out rem.csv [--model <name>]
//                    [--voxel 0.25] [--min-samples 16] [--snapshot-out rem.snap]
//   remgen query     --in dataset.csv --at x,y,z [--model <name>] [--top 5]
//   remgen drift     --baseline old.csv --probe new.csv [--model <name>]
//
// Every command that consumes a dataset reads the CSV produced by
// `remgen campaign` (or by the library's Dataset::write_csv).
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "core/drift.hpp"
#include "core/health_report.hpp"
#include "core/rem_builder.hpp"
#include "exec/config.hpp"
#include "flightlog/flightlog.hpp"
#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "obs/export.hpp"
#include "radio/scenario.hpp"
#include "store/snapshot.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

namespace {

using namespace remgen;

int usage() {
  std::printf(
      "remgen — autonomous 3D indoor radio environmental maps\n\n"
      "commands:\n"
      "  campaign  run the two-UAV measurement campaign, write the dataset CSV\n"
      "  info      dataset statistics (the paper's Section III-A numbers)\n"
      "  evaluate  train/test RMSE for the estimator suite (Figure 8)\n"
      "  rem       build the REM raster and write it as CSV\n"
      "  query     predict per-transmitter RSS at a point\n"
      "  drift     compare a probe dataset against a baseline REM\n\n"
      "snapshot store (campaign, rem):\n"
      "  --snapshot-out FILE  write dataset+REM+model as a binary snapshot that\n"
      "                       remgen-serve loads for concurrent query serving\n\n"
      "execution (every command):\n"
      "  --threads N          parallel execution width (default: REMGEN_THREADS env,\n"
      "                       then hardware concurrency; 1 = sequential; output is\n"
      "                       identical at every width)\n\n"
      "fault injection (campaign):\n"
      "  --fault-profile P    inject faults: none, lossy, flaky-scanner, uwb-degraded,\n"
      "                       brownout, harsh, or a comma list (merged, harsher wins);\n"
      "                       also arms scan retries/backoff/watchdog + rescue missions\n"
      "  --fault-seed N       seed for the injected fault streams (default 0)\n\n"
      "telemetry (every command):\n"
      "  --log-level trace|debug|info|warn|error|off   stderr log filter (default warn)\n"
      "  --metrics-out FILE   enable telemetry, write a JSON metrics snapshot\n"
      "  --metrics-prom FILE  enable telemetry, write Prometheus text exposition\n"
      "  --trace-out FILE     enable telemetry, write Chrome trace_event JSON\n"
      "                       (open in chrome://tracing or Perfetto)\n"
      "  --profile-out FILE   enable the phase profiler, write the per-phase\n"
      "                       timing tree + Amdahl breakdown as JSON (inspect\n"
      "                       with remgen-profile)\n\n"
      "flight recorder (campaign):\n"
      "  --flightlog-out FILE enable the flight recorder, write the event log as\n"
      "                       JSONL (inspect with remgen-flightlog)\n"
      "  --report-out FILE    enable recorder+telemetry, write a markdown campaign\n"
      "                       health report after the run\n\n"
      "run `remgen <command> --help` semantics: see the header of tools/remgen_cli.cpp\n");
  return 2;
}

ml::ModelKind model_by_name(const std::string& name) {
  for (const ml::ModelKind kind : ml::all_model_kinds(true)) {
    if (name == ml::model_kind_name(kind)) return kind;
  }
  std::fprintf(stderr, "unknown model '%s'; available:", name.c_str());
  for (const ml::ModelKind kind : ml::all_model_kinds(true)) {
    std::fprintf(stderr, " %s", ml::model_kind_name(kind));
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

data::Dataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return data::Dataset::read_csv(in);
}

/// Writes the preprocessed dataset + baked REM + fitted model as a snapshot
/// for remgen-serve. Returns 0 on success, 1 on write failure.
int write_snapshot(const std::string& path, const data::Dataset& prepared,
                   std::optional<core::RadioEnvironmentMap> rem,
                   std::unique_ptr<ml::Estimator> model) {
  store::Snapshot snapshot;
  snapshot.dataset = prepared;
  snapshot.rem = std::move(rem);
  snapshot.model = std::move(model);
  try {
    store::save_snapshot_file(path, snapshot);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("snapshot written to %s\n", path.c_str());
  return 0;
}

geom::Aabb volume_for(const util::Args& args) {
  // The raster bounds of the REM; matches the scan volume of the chosen
  // environment.
  if (args.value("env", "apartment") == "office") {
    return geom::make_office_model().scan_volume;
  }
  return geom::Aabb({0, 0, 0}, {3.74, 3.20, 2.10});
}

int cmd_campaign(const util::Args& args) {
  util::Rng rng(static_cast<std::uint64_t>(args.value_int("seed", 2022)));
  const radio::Scenario scenario = args.value("env", "apartment") == "office"
                                       ? radio::Scenario::make_office(rng)
                                       : radio::Scenario::make_apartment(rng);

  mission::CampaignConfig config;
  const auto grid = util::split_list(args.value("grid", "6x4x3"), 'x');
  if (grid.size() == 3) {
    config.grid.nx = static_cast<std::size_t>(std::stoul(grid[0]));
    config.grid.ny = static_cast<std::size_t>(std::stoul(grid[1]));
    config.grid.nz = static_cast<std::size_t>(std::stoul(grid[2]));
  }
  config.uav_count = static_cast<std::size_t>(args.value_int("uavs", 2));
  config.mission.radio_off_during_scan = !args.flag("radio-on");
  config.mission.adaptive_leg_timing = args.flag("adaptive-legs");
  config.optimize_route = args.flag("optimize-route");
  if (args.value("positioning", "uwb") == "lighthouse") {
    config.positioning = mission::PositioningKind::Lighthouse;
  }
  config.receivers.clear();
  for (const std::string& r : util::split_list(args.value("receivers", "wifi"))) {
    config.receivers.push_back(r == "ble" ? mission::ReceiverKind::Ble
                                          : mission::ReceiverKind::Wifi);
  }
  const std::string fault_profile = args.value("fault-profile", "none");
  const auto plan = fault::make_fault_plan(
      fault_profile, static_cast<std::uint64_t>(args.value_int("fault-seed", 0)));
  if (!plan) {
    std::fprintf(stderr, "unknown fault profile '%s'; available:", fault_profile.c_str());
    for (const std::string& name : fault::fault_profile_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, " (or a comma list)\n");
    return 2;
  }
  config.faults = *plan;
  if (config.faults.enabled()) {
    // A faulted campaign gets the resilience knobs the fault layer is built
    // for: more retries with backoff, a watchdog for stalled scans.
    config.mission.scan_retries = 3;
    config.mission.scan_retry_backoff_s = 0.2;
    config.mission.scan_watchdog_s = 15.0;
  }

  const mission::CampaignResult result = mission::run_campaign(scenario, config, rng);
  for (const mission::UavMissionStats& s : result.uav_stats) {
    std::printf("UAV %c: %zu waypoints, %zu scans, %zu samples, active %dm%02ds%s\n",
                static_cast<char>('A' + s.uav_id), s.waypoints_commanded, s.scans_completed,
                s.samples_collected, static_cast<int>(s.active_time_s) / 60,
                static_cast<int>(s.active_time_s) % 60,
                s.aborted_on_battery ? " (battery abort)" : "");
  }
  std::size_t covered = 0;
  std::size_t rescued = 0;
  for (const mission::WaypointCoverage& c : result.coverage) {
    if (c.covered) ++covered;
    if (c.rescued) ++rescued;
  }
  std::printf("coverage: %zu/%zu waypoints", covered, result.coverage.size());
  if (rescued > 0) std::printf(" (%zu by rescue missions)", rescued);
  std::printf("\n");
  for (const mission::WaypointCoverage& c : result.uncovered_waypoints()) {
    std::printf("  uncovered: waypoint %zu of UAV %c at (%.2f, %.2f, %.2f)\n",
                c.waypoint_index, static_cast<char>('A' + static_cast<int>(c.uav)),
                c.position.x, c.position.y, c.position.z);
  }
  const std::string out = args.value("out", "dataset.csv");
  std::ofstream file(out);
  result.dataset.write_csv(file);
  std::printf("%zu samples written to %s\n", result.dataset.size(), out.c_str());

  int status = 0;
  if (const std::string flight_out = args.value("flightlog-out"); !flight_out.empty()) {
    if (flightlog::export_jsonl_file(flight_out)) {
      std::printf("flight log (%zu events) written to %s\n", flightlog::recorder().size(),
                  flight_out.c_str());
    } else {
      status = 1;
    }
  }
  if (const std::string report_out = args.value("report-out"); !report_out.empty()) {
    core::HealthReportOptions options;
    options.min_samples_per_mac = static_cast<std::size_t>(args.value_int("min-samples", 16));
    // A quick holdout evaluation for the error-summary section. Uses an RNG
    // stream forked after the campaign finished, so the campaign itself is
    // byte-identical with and without --report-out.
    const data::Dataset prepared =
        result.dataset.filter_min_samples_per_mac(options.min_samples_per_mac);
    if (prepared.size() >= 8) {
      util::Rng eval_rng = rng.fork("report-eval");
      const data::DatasetSplit split = prepared.split(0.75, eval_rng);
      if (!split.train.empty() && !split.test.empty()) {
        const ml::ModelKind kind = model_by_name(args.value("model", "knn-onehot-x3-k16"));
        const auto model = ml::make_model(kind);
        model->fit(split.train);
        options.model_name = ml::model_kind_name(kind);
        options.holdout = ml::evaluate(*model, split.test);
      }
    }
    const std::vector<flightlog::Event> events = flightlog::recorder().merged();
    if (core::export_health_report_file(report_out, result, events,
                                        obs::registry().snapshot(), options)) {
      std::printf("health report written to %s\n", report_out.c_str());
    } else {
      status = 1;
    }
  }
  if (const std::string snap = args.value("snapshot-out"); !snap.empty()) {
    core::RemBuilderConfig rem_config;
    rem_config.voxel_m = args.value_double("voxel", 0.25);
    rem_config.min_samples_per_mac =
        static_cast<std::size_t>(args.value_int("min-samples", 16));
    const data::Dataset prepared =
        result.dataset.filter_min_samples_per_mac(rem_config.min_samples_per_mac);
    if (prepared.empty()) {
      std::fprintf(stderr, "no samples survive the min-samples rule; snapshot not written\n");
      status = 1;
    } else {
      auto model = ml::make_model(model_by_name(args.value("model", "knn-onehot-x3-k16")));
      core::RadioEnvironmentMap rem =
          core::build_rem(result.dataset, *model, volume_for(args), rem_config);
      if (write_snapshot(snap, prepared, std::move(rem), std::move(model)) != 0) status = 1;
    }
  }
  return status;
}

int cmd_info(const util::Args& args) {
  const data::Dataset ds = load_dataset(args.value("in", "dataset.csv"));
  if (ds.empty()) {
    std::printf("dataset is empty\n");
    return 1;
  }
  std::size_t dropped = 0;
  const data::Dataset retained = ds.filter_min_samples_per_mac(
      static_cast<std::size_t>(args.value_int("min-samples", 16)), &dropped);
  std::printf("samples        : %zu\n", ds.size());
  std::printf("distinct MACs  : %zu\n", ds.distinct_macs().size());
  std::printf("distinct SSIDs : %zu\n", ds.distinct_ssids().size());
  std::printf("mean RSS       : %.1f dBm\n", ds.mean_rss_dbm());
  std::printf("retained       : %zu (%zu dropped by the min-samples rule)\n", retained.size(),
              dropped);
  for (const auto& [uav, count] : ds.samples_per_uav()) {
    std::printf("UAV %c samples  : %zu\n", static_cast<char>('A' + uav), count);
  }
  return 0;
}

int cmd_evaluate(const util::Args& args) {
  const data::Dataset ds = load_dataset(args.value("in", "dataset.csv"));
  const data::Dataset prepared = ds.filter_min_samples_per_mac(
      static_cast<std::size_t>(args.value_int("min-samples", 16)));
  if (prepared.empty()) {
    std::fprintf(stderr, "no samples survive the min-samples rule\n");
    return 1;
  }
  util::Rng rng(static_cast<std::uint64_t>(args.value_int("seed", 99)));
  const data::DatasetSplit split = prepared.split(args.value_double("split", 0.75), rng);

  std::vector<ml::ModelKind> kinds;
  const std::string requested = args.value("model", "all");
  if (requested == "all") {
    kinds = ml::all_model_kinds(true);
  } else {
    kinds.push_back(model_by_name(requested));
  }
  std::printf("%-28s %10s %10s %8s\n", "model", "RMSE(dBm)", "MAE(dBm)", "R2");
  for (const ml::ModelKind kind : kinds) {
    const auto model = ml::make_model(kind);
    model->fit(split.train);
    const ml::RegressionMetrics m = ml::evaluate(*model, split.test);
    std::printf("%-28s %10.4f %10.4f %8.4f\n", ml::model_kind_name(kind), m.rmse, m.mae, m.r2);
  }
  return 0;
}

int cmd_rem(const util::Args& args) {
  const data::Dataset ds = load_dataset(args.value("in", "dataset.csv"));
  auto model = ml::make_model(model_by_name(args.value("model", "knn-onehot-x3-k16")));
  core::RemBuilderConfig config;
  config.voxel_m = args.value_double("voxel", 0.25);
  config.min_samples_per_mac = static_cast<std::size_t>(args.value_int("min-samples", 16));
  core::RadioEnvironmentMap rem = core::build_rem(ds, *model, volume_for(args), config);
  const std::string out = args.value("out", "rem.csv");
  std::ofstream file(out);
  rem.write_csv(file);
  std::printf("REM: %zu transmitters over %zux%zux%zu voxels written to %s\n",
              rem.macs().size(), rem.geometry().nx(), rem.geometry().ny(), rem.geometry().nz(),
              out.c_str());
  std::printf("coverage at -80 dBm: %.1f%%\n", rem.coverage_fraction(-80.0) * 100.0);
  if (const std::string snap = args.value("snapshot-out"); !snap.empty()) {
    // build_rem fitted the model on the preprocessed dataset; bundle that
    // same dataset so remgen-serve reconstructs identical query context.
    const data::Dataset prepared = ds.filter_min_samples_per_mac(config.min_samples_per_mac);
    return write_snapshot(snap, prepared, std::move(rem), std::move(model));
  }
  return 0;
}

int cmd_query(const util::Args& args) {
  const data::Dataset ds = load_dataset(args.value("in", "dataset.csv"));
  const auto at = util::parse_triple(args.value("at", ""));
  if (!at.has_value()) {
    std::fprintf(stderr, "--at needs x,y,z as three finite numbers (got '%s')\n",
                 args.value("at", "").c_str());
    return 2;
  }
  const geom::Vec3 point{(*at)[0], (*at)[1], (*at)[2]};
  const auto model = ml::make_model(model_by_name(args.value("model", "knn-onehot-x3-k16")));
  const data::Dataset prepared = ds.filter_min_samples_per_mac(
      static_cast<std::size_t>(args.value_int("min-samples", 16)));
  model->fit(prepared.samples());

  // Predict every MAC at the point and print the strongest first.
  std::map<radio::MacAddress, int> channel_of;
  for (const data::Sample& s : prepared.samples()) channel_of[s.mac] = s.channel;
  std::vector<std::pair<double, radio::MacAddress>> predictions;
  for (const auto& [mac, channel] : channel_of) {
    data::Sample query;
    query.mac = mac;
    query.channel = channel;
    query.position = point;
    predictions.emplace_back(model->predict(query), mac);
  }
  std::sort(predictions.rbegin(), predictions.rend());
  const auto top = static_cast<std::size_t>(args.value_int("top", 5));
  std::printf("predicted RSS at %s:\n", point.to_string().c_str());
  for (std::size_t i = 0; i < std::min(top, predictions.size()); ++i) {
    std::printf("  %s  %7.1f dBm\n", predictions[i].second.to_string().c_str(),
                predictions[i].first);
  }
  return 0;
}

int cmd_drift(const util::Args& args) {
  const data::Dataset baseline = load_dataset(args.value("baseline", "dataset.csv"));
  const data::Dataset probe = load_dataset(args.value("probe", "probe.csv"));
  const auto model = ml::make_model(model_by_name(args.value("model", "per-mac-knn")));
  core::RemBuilderConfig config;
  config.min_samples_per_mac = static_cast<std::size_t>(args.value_int("min-samples", 16));
  if (baseline.filter_min_samples_per_mac(config.min_samples_per_mac).empty()) {
    std::fprintf(stderr,
                 "no baseline samples survive the min-samples rule; lower --min-samples\n");
    return 1;
  }
  const core::RadioEnvironmentMap rem =
      core::build_rem(baseline, *model, volume_for(args), config);
  const core::DriftReport report = core::detect_drift(rem, probe.samples());
  if (report.judged_macs == 0) {
    std::fprintf(stderr,
                 "note: no MAC reached the %zu-sample judging threshold — fly a probe with "
                 "more waypoints\n",
                 core::DriftConfig{}.min_samples_per_mac);
  }
  std::printf("judged %zu MACs: %zu drifted, %zu unknown, %zu vanished -> REM %s\n",
              report.judged_macs, report.drifted_macs, report.unknown_macs,
              report.vanished.size(), report.rem_stale ? "STALE" : "still valid");
  for (const core::MacDrift& d : report.per_mac) {
    if (!d.drifted) continue;
    std::printf("  drifted: %s  mean %+.1f dB, rms %.1f dB over %zu samples\n",
                d.mac.to_string().c_str(), d.mean_residual_db, d.rms_residual_db, d.samples);
  }
  for (const radio::MacAddress& mac : report.vanished) {
    std::printf("  vanished: %s\n", mac.to_string().c_str());
  }
  return 0;
}

}  // namespace

namespace {

int dispatch(const util::Args& args) {
  if (args.command() == "campaign") return cmd_campaign(args);
  if (args.command() == "info") return cmd_info(args);
  if (args.command() == "evaluate") return cmd_evaluate(args);
  if (args.command() == "rem") return cmd_rem(args);
  if (args.command() == "query") return cmd_query(args);
  if (args.command() == "drift") return cmd_drift(args);
  return usage();
}

/// Writes the requested telemetry sinks after the command has run. Returns
/// false when any sink could not be written, so the process can exit nonzero
/// and CI catches unwritable paths instead of silently passing.
[[nodiscard]] bool export_telemetry(const util::Args& args) {
  bool ok = true;
  if (const std::string path = args.value("metrics-out"); !path.empty()) {
    if (obs::export_metrics_json_file(path)) {
      std::printf("metrics snapshot written to %s\n", path.c_str());
    } else {
      ok = false;
    }
  }
  if (const std::string path = args.value("metrics-prom"); !path.empty()) {
    if (obs::export_prometheus_file(path)) {
      std::printf("prometheus metrics written to %s\n", path.c_str());
    } else {
      ok = false;
    }
  }
  if (const std::string path = args.value("trace-out"); !path.empty()) {
    if (obs::export_trace_file(path)) {
      std::printf("chrome trace (%zu events) written to %s\n", obs::trace().size(),
                  path.c_str());
    } else {
      ok = false;
    }
  }
  if (const std::string path = args.value("profile-out"); !path.empty()) {
    if (obs::export_profile_json_file(path)) {
      std::printf("profile written to %s (inspect with remgen-profile)\n", path.c_str());
    } else {
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{"seed",      "grid",  "uavs",   "out",   "in",
                                         "model",     "split", "voxel",  "at",    "top",
                                         "baseline",  "probe", "min-samples", "positioning",
                                         "receivers", "env",   "log-level", "metrics-out",
                                         "metrics-prom", "trace-out", "profile-out",
                                         "threads",
                                         "fault-profile", "fault-seed",
                                         "flightlog-out", "report-out", "snapshot-out"};
  const std::set<std::string> flag_keys{"radio-on", "optimize-route", "adaptive-legs", "help"};
  std::string error;
  const auto args = remgen::util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }

  if (args->has("threads")) {
    const int threads = args->value_int("threads", 0);
    if (threads <= 0) {
      std::fprintf(stderr, "--threads needs a positive integer\n");
      return 2;
    }
    exec::set_thread_count(static_cast<std::size_t>(threads));
  }

  if (args->has("log-level")) {
    if (const auto level = util::log_level_from_string(args->value("log-level"))) {
      util::set_log_level(*level);
    } else {
      std::fprintf(stderr, "unknown log level '%s' (want trace|debug|info|warn|error|off)\n",
                   args->value("log-level").c_str());
      return 2;
    }
  }

  const bool telemetry = args->has("metrics-out") || args->has("metrics-prom") ||
                         args->has("trace-out");
  if (telemetry) {
    if (!obs::compiled()) {
      std::fprintf(stderr,
                   "warning: telemetry was compiled out (-DREMGEN_OBS=OFF); "
                   "exports will be empty\n");
    }
    obs::set_enabled(true);
  }
  if (args->has("profile-out")) {
    // Profiling is gated separately from span/metric telemetry: --profile-out
    // alone pays only the phase-timer cost, not the trace-buffer cost.
    if (!obs::compiled()) {
      std::fprintf(stderr,
                   "warning: the profiler was compiled out (-DREMGEN_OBS=OFF); "
                   "the profile will be empty\n");
    }
    obs::set_profiling_enabled(true);
  }
  obs::name_current_thread("main");

  if (args->has("flightlog-out") || args->has("report-out")) {
    if (!flightlog::compiled()) {
      std::fprintf(stderr,
                   "warning: the flight recorder was compiled out (-DREMGEN_OBS=OFF); "
                   "the log and report will be empty\n");
    }
    flightlog::set_enabled(true);
    // The health report joins the event log with the metrics registry, so
    // recording implies metrics collection.
    obs::set_enabled(true);
  }

  int status = 0;
  {
    // Root phase: everything the command does hangs under cli.<command> in
    // the profile tree.
    const std::string root_phase = "cli." + args->command();
    REMGEN_PROFILE_PHASE(root_phase.c_str());
    status = dispatch(*args);
  }
  if ((telemetry || args->has("profile-out")) && !export_telemetry(*args) && status == 0) {
    status = 1;
  }
  return status;
}
