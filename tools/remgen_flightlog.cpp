// remgen-flightlog — read and inspect a flight-recorder JSONL log.
//
//   remgen-flightlog summary  LOG.jsonl          campaign-level digest
//   remgen-flightlog timeline LOG.jsonl --uav N  one UAV's events in order
//   remgen-flightlog waypoint X Y Z LOG.jsonl    everything at one position
//   remgen-flightlog faults   LOG.jsonl          fault-injection timeline
//
// The log is what `remgen campaign --flightlog-out LOG.jsonl` wrote: one
// compact JSON object per line, streams merged in (uav, seq) order.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "flightlog/flightlog.hpp"
#include "util/log.hpp"

namespace {

using namespace remgen;

int usage() {
  std::fprintf(stderr,
               "remgen-flightlog — inspect a flight-recorder JSONL log\n\n"
               "usage:\n"
               "  remgen-flightlog summary  LOG.jsonl\n"
               "  remgen-flightlog timeline LOG.jsonl --uav N\n"
               "  remgen-flightlog waypoint X Y Z LOG.jsonl\n"
               "  remgen-flightlog faults   LOG.jsonl\n");
  return 2;
}

std::optional<std::vector<flightlog::Event>> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  try {
    return flightlog::read_jsonl(in);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.what());
    return std::nullopt;
  }
}

std::string describe(const flightlog::Event& e) {
  std::string text = flightlog::event_kind_name(e.kind);
  if (const auto* wp = std::get_if<flightlog::WaypointEvent>(&e.payload)) {
    text += util::format(" wp={} at ({:.2f}, {:.2f}, {:.2f})", wp->index, wp->position.x,
                         wp->position.y, wp->position.z);
    if (e.kind == flightlog::EventKind::WaypointLeave) {
      text += util::format(" samples={} attempts={} covered={}", wp->samples, wp->attempts,
                           wp->covered ? "yes" : "NO");
    }
  } else if (const auto* link = std::get_if<flightlog::LinkEvent>(&e.payload)) {
    text += util::format(" queue_depth={} queue_drops={}", link->queue_depth, link->queue_drops);
  } else if (const auto* uwb = std::get_if<flightlog::UwbEvent>(&e.payload)) {
    if (uwb->anchor >= 0) text += util::format(" anchor={}", uwb->anchor);
    if (e.kind == flightlog::EventKind::UwbFix) {
      text += util::format(" sigma={:.3f}m", uwb->sigma_m);
    }
    if (uwb->dropouts > 0) text += util::format(" dropouts={}", uwb->dropouts);
  } else if (const auto* scan = std::get_if<flightlog::ScanEvent>(&e.payload)) {
    text += util::format(" wp={} attempt={}", scan->waypoint, scan->attempt);
    if (scan->wait_s > 0.0) text += util::format(" wait={:.2f}s", scan->wait_s);
  } else if (const auto* sample = std::get_if<flightlog::SampleEvent>(&e.payload)) {
    text += util::format(" wp={}", sample->waypoint);
    if (!sample->mac.empty()) {
      text += util::format(" mac={} rss={:.0f}dBm", sample->mac, sample->rss_dbm);
    }
    if (!sample->reason.empty()) text += util::format(" reason={}", sample->reason);
  } else if (const auto* fault = std::get_if<flightlog::FaultEvent>(&e.payload)) {
    text += util::format(" {} {}", fault->subsystem, fault->detail);
  } else if (const auto* battery = std::get_if<flightlog::BatteryEvent>(&e.payload)) {
    text += util::format(" fraction={:.2f}{}", battery->fraction,
                         battery->abort ? " ABORT" : "");
  } else if (const auto* campaign = std::get_if<flightlog::CampaignEvent>(&e.payload)) {
    if (e.kind == flightlog::EventKind::RescueRound) {
      text += util::format(" round={} open_waypoints={}", campaign->round, campaign->waypoints);
    } else if (e.kind == flightlog::EventKind::CoverageSummary) {
      text += util::format(" covered={}/{} rescued={}", campaign->covered, campaign->waypoints,
                           campaign->rescued);
    } else {
      text += util::format(" stage={} items={}", campaign->stage, campaign->waypoints);
    }
  }
  return text;
}

void print_event(const flightlog::Event& e) {
  std::printf("  t=%8.2fs  %s\n", e.t_s, describe(e).c_str());
}

int cmd_summary(const std::vector<flightlog::Event>& events) {
  std::map<std::int32_t, std::size_t> per_uav;
  std::map<std::string, std::size_t> faults;
  std::size_t radio_off = 0;
  const flightlog::CampaignEvent* coverage = nullptr;
  for (const flightlog::Event& e : events) {
    ++per_uav[e.uav];
    if (e.kind == flightlog::EventKind::RadioOff) ++radio_off;
    if (e.kind == flightlog::EventKind::FaultInjected) {
      const auto& f = std::get<flightlog::FaultEvent>(e.payload);
      ++faults[f.subsystem + "/" + f.detail];
    }
    if (e.kind == flightlog::EventKind::CoverageSummary) {
      coverage = &std::get<flightlog::CampaignEvent>(e.payload);
    }
  }
  const std::size_t uav_streams = per_uav.size() - (per_uav.count(-1) ? 1 : 0);
  std::printf("flight log: %zu events across %zu uav streams\n", events.size(), uav_streams);
  if (coverage != nullptr) {
    std::printf("coverage: %llu/%llu waypoints covered (%llu by rescue)\n",
                static_cast<unsigned long long>(coverage->covered),
                static_cast<unsigned long long>(coverage->waypoints),
                static_cast<unsigned long long>(coverage->rescued));
  }

  // Per-waypoint coverage, from each stream's WaypointLeave entries.
  std::printf("\nper-waypoint coverage:\n");
  for (const flightlog::Event& e : events) {
    if (e.kind != flightlog::EventKind::WaypointLeave) continue;
    const auto& wp = std::get<flightlog::WaypointEvent>(e.payload);
    std::printf("  uav %d wp %d at (%.2f, %.2f, %.2f): %s, %llu samples, %llu attempts\n",
                e.uav, wp.index, wp.position.x, wp.position.y, wp.position.z,
                wp.covered ? "covered" : "UNCOVERED",
                static_cast<unsigned long long>(wp.samples),
                static_cast<unsigned long long>(wp.attempts));
  }

  std::printf("\nradio-off windows: %zu\n", radio_off);
  std::size_t fault_total = 0;
  for (const auto& [name, count] : faults) fault_total += count;
  std::printf("fault injections: %zu\n", fault_total);
  for (const auto& [name, count] : faults) {
    std::printf("  %s: %zu\n", name.c_str(), count);
  }
  std::printf("\nevents per stream:\n");
  for (const auto& [uav, count] : per_uav) {
    if (uav < 0) {
      std::printf("  campaign: %zu\n", count);
    } else {
      std::printf("  uav %d: %zu\n", uav, count);
    }
  }
  return 0;
}

int cmd_timeline(const std::vector<flightlog::Event>& events, std::int32_t uav) {
  std::size_t printed = 0;
  for (const flightlog::Event& e : events) {
    if (e.uav != uav) continue;
    print_event(e);
    ++printed;
  }
  if (printed == 0) {
    std::fprintf(stderr, "no events for uav %d\n", uav);
    return 1;
  }
  return 0;
}

int cmd_waypoint(const std::vector<flightlog::Event>& events, const geom::Vec3& at) {
  // Find (uav, index) pairs whose waypoint events sit at the position, then
  // print every event tagged with one of those pairs.
  constexpr double kTolerance = 1e-6;
  auto matches = [&](const geom::Vec3& p) {
    return std::abs(p.x - at.x) < kTolerance && std::abs(p.y - at.y) < kTolerance &&
           std::abs(p.z - at.z) < kTolerance;
  };
  std::map<std::int32_t, std::int32_t> pair_of;  // uav -> waypoint index there
  for (const flightlog::Event& e : events) {
    const auto* wp = std::get_if<flightlog::WaypointEvent>(&e.payload);
    if (wp != nullptr && matches(wp->position)) pair_of[e.uav] = wp->index;
  }
  if (pair_of.empty()) {
    std::fprintf(stderr, "no waypoint events at (%.3f, %.3f, %.3f)\n", at.x, at.y, at.z);
    return 1;
  }
  std::size_t printed = 0;
  for (const flightlog::Event& e : events) {
    const auto it = pair_of.find(e.uav);
    if (it == pair_of.end()) continue;
    std::int32_t waypoint = -1;
    if (const auto* wp = std::get_if<flightlog::WaypointEvent>(&e.payload)) {
      waypoint = wp->index;
    } else if (const auto* scan = std::get_if<flightlog::ScanEvent>(&e.payload)) {
      waypoint = scan->waypoint;
    } else if (const auto* sample = std::get_if<flightlog::SampleEvent>(&e.payload)) {
      waypoint = sample->waypoint;
    } else {
      continue;
    }
    if (waypoint != it->second) continue;
    std::printf("uav %d", e.uav);
    print_event(e);
    ++printed;
  }
  std::printf("%zu events at (%.2f, %.2f, %.2f)\n", printed, at.x, at.y, at.z);
  return 0;
}

int cmd_faults(const std::vector<flightlog::Event>& events) {
  std::map<std::string, std::size_t> tally;
  std::size_t total = 0;
  for (const flightlog::Event& e : events) {
    if (e.kind != flightlog::EventKind::FaultInjected) continue;
    const auto& f = std::get<flightlog::FaultEvent>(e.payload);
    ++tally[f.subsystem + "/" + f.detail];
    ++total;
    std::printf("uav %d", e.uav);
    print_event(e);
  }
  std::printf("%zu fault injections\n", total);
  for (const auto& [name, count] : tally) {
    std::printf("  %s: %zu\n", name.c_str(), count);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::init_log_level_from_args(argc, argv);
  if (argc < 2) return usage();
  const std::string command = argv[1];

  // Collect positionals and the one --uav option; the grammar is small enough
  // that util::Args' declared-keys model doesn't fit (waypoint takes X Y Z).
  std::vector<std::string> positionals;
  std::optional<long> uav;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--uav") {
      if (i + 1 >= argc) return usage();
      uav = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--log-level") {
      ++i;  // consumed by init_log_level_from_args
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return usage();
    } else {
      positionals.push_back(arg);
    }
  }

  if (command == "summary" || command == "faults") {
    if (positionals.size() != 1) return usage();
    const auto events = load(positionals[0]);
    if (!events) return 1;
    return command == "summary" ? cmd_summary(*events) : cmd_faults(*events);
  }
  if (command == "timeline") {
    if (positionals.size() != 1 || !uav) return usage();
    const auto events = load(positionals[0]);
    if (!events) return 1;
    return cmd_timeline(*events, static_cast<std::int32_t>(*uav));
  }
  if (command == "waypoint") {
    if (positionals.size() != 4) return usage();
    const auto events = load(positionals[3]);
    if (!events) return 1;
    geom::Vec3 at;
    try {
      at = {std::stod(positionals[0]), std::stod(positionals[1]), std::stod(positionals[2])};
    } catch (const std::exception&) {
      std::fprintf(stderr, "waypoint needs numeric X Y Z\n");
      return 2;
    }
    return cmd_waypoint(*events, at);
  }
  return usage();
}
