// remgen-top — live terminal dashboard for a running remgen-served.
//
//   remgen-top --port N [--host 127.0.0.1] [--interval 2] [--frames 0]
//              [--no-clear]
//
// Polls the server's {"type":"stats"} admin request over the JSONL protocol
// and renders the reply as a refreshing terminal view: rolling-window qps and
// p50/p90/p99/p99.9 tail latency, cache hit rate, lifetime counters, loop
// health, configured limits, and a per-map table. One TCP connection per
// poll — the probe doubles as a liveness check; a failed connect exits
// non-zero. --frames 1 --no-clear prints a single snapshot (scriptable);
// --frames 0 runs until interrupted.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "util/args.hpp"

namespace {

using namespace remgen;

int usage() {
  std::fprintf(stderr,
               "remgen-top — live dashboard for remgen-served\n\n"
               "  --port N        server port (required)\n"
               "  --host ADDR     server address (default 127.0.0.1)\n"
               "  --interval S    seconds between polls (default 2)\n"
               "  --frames N      stop after N frames (default 0 = run forever)\n"
               "  --no-clear      append frames instead of redrawing in place\n");
  return 2;
}

/// One stats round trip on a fresh connection; returns false on any socket
/// or protocol failure (with the reason on stderr).
bool poll_stats(const std::string& host, std::uint16_t port, std::uint64_t poll_id,
                obs::Json* reply) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "remgen-top: socket: %s\n", std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "remgen-top: bad host '%s'\n", host.c_str());
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    std::fprintf(stderr, "remgen-top: connect %s:%u: %s\n", host.c_str(),
                 static_cast<unsigned>(port), std::strerror(errno));
    ::close(fd);
    return false;
  }
  const std::string request =
      "{\"id\":" + std::to_string(poll_id) + ",\"type\":\"stats\"}\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "remgen-top: send: %s\n", std::strerror(errno));
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string line;
  char buffer[8192];
  while (line.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    line.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t newline = line.find('\n');
  if (newline == std::string::npos) {
    std::fprintf(stderr, "remgen-top: server closed without a response\n");
    return false;
  }
  try {
    *reply = obs::Json::parse(line.substr(0, newline));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "remgen-top: bad response: %s\n", e.what());
    return false;
  }
  return true;
}

double num(const obs::Json& doc, const std::string& key, double fallback = 0.0) {
  if (!doc.is_object() || !doc.contains(key)) return fallback;
  const obs::Json& v = doc.at(key);
  if (v.is_int()) return static_cast<double>(v.as_int64());
  if (v.is_number()) return v.as_double();
  return fallback;
}

void render(const obs::Json& stats, bool clear, std::uint64_t frame) {
  if (clear) std::printf("\x1b[2J\x1b[H");
  const double uptime = num(stats, "uptime_seconds");
  std::printf("remgen-top — frame %llu   uptime %.1fs\n",
              static_cast<unsigned long long>(frame), uptime);
  std::printf("─────────────────────────────────────────────────────────────\n");

  if (stats.contains("window") && stats.at("window").is_object()) {
    const obs::Json& window = stats.at("window");
    std::printf("window (%.0fs)   qps %8.1f   requests %8.0f   cache hit %5.1f%%\n",
                num(window, "span_seconds"), num(window, "qps"),
                num(window, "requests"), 100.0 * num(window, "cache_hit_rate"));
    if (window.contains("latency_us") && window.at("latency_us").is_object()) {
      const obs::Json& lat = window.at("latency_us");
      std::printf("latency (us)   p50 %8.0f   p90 %8.0f   p99 %8.0f   p99.9 %8.0f\n",
                  num(lat, "p50"), num(lat, "p90"), num(lat, "p99"), num(lat, "p99.9"));
    }
  }
  if (stats.contains("loop") && stats.at("loop").is_object()) {
    const obs::Json& loop = stats.at("loop");
    const bool stalled = loop.contains("stalled") && loop.at("stalled").is_bool() &&
                         loop.at("stalled").as_bool();
    std::printf("loop           lag p99 %6.0f us   stalled %s   stalled rounds %.0f\n",
                num(loop, "lag_p99_us"), stalled ? "YES" : "no ",
                num(loop, "stalled_rounds"));
  }
  std::printf("lifetime       requests %10.0f   responses %10.0f   errors %6.0f\n",
              num(stats, "requests"), num(stats, "responses"),
              num(stats, "parse_errors") + num(stats, "overload_rejections"));
  std::printf("               cache hits %8.0f   misses %8.0f   scrapes %6.0f\n",
              num(stats, "cache_hits"), num(stats, "cache_misses"),
              num(stats, "metrics_scrapes"));
  std::printf("now            connections %4.0f   inflight %6.0f   buffered %8.0f B\n",
              num(stats, "connections"), num(stats, "inflight"),
              num(stats, "buffered_bytes"));
  std::printf("reloads        swaps %4.0f   failures %4.0f   slow-logged %6.0f\n",
              num(stats, "reload_swaps"), num(stats, "reload_failures"),
              num(stats, "slow_logged"));
  if (stats.contains("limits") && stats.at("limits").is_object()) {
    const obs::Json& limits = stats.at("limits");
    std::printf("limits         inflight %6.0f   batch %5.0f   conns %5.0f   cache %4.0f MiB\n",
                num(limits, "max_inflight"), num(limits, "max_batch"),
                num(limits, "max_connections"), num(limits, "cache_mb"));
  }
  if (stats.contains("map_stats") && stats.at("map_stats").is_object()) {
    std::printf("─────────────────────────────────────────────────────────────\n");
    std::printf("%-16s %10s %10s %8s %10s %10s\n", "map", "requests", "responses",
                "errors", "cache hit", "cache miss");
    for (const auto& [name, ms] : stats.at("map_stats").as_object()) {
      std::printf("%-16s %10.0f %10.0f %8.0f %10.0f %10.0f\n", name.c_str(),
                  num(ms, "requests"), num(ms, "responses"), num(ms, "errors"),
                  num(ms, "cache_hits"), num(ms, "cache_misses"));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{"port", "host", "interval", "frames"};
  const std::set<std::string> flag_keys{"help", "no-clear"};
  std::string error;
  const auto args = util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }
  if (args->flag("help") || !args->has("port")) return usage();
  const long port = args->value_int("port", 0);
  const double interval = args->value_double("interval", 2.0);
  const long frames = args->value_int("frames", 0);
  if (port < 1 || port > 65535 || interval < 0 || frames < 0) {
    std::fprintf(stderr, "error: invalid --port/--interval/--frames value\n");
    return 2;
  }
  const std::string host = args->value("host", "127.0.0.1");
  const bool clear = !args->flag("no-clear");

  std::uint64_t frame = 0;
  while (frames == 0 || frame < static_cast<std::uint64_t>(frames)) {
    obs::Json reply;
    if (!poll_stats(host, static_cast<std::uint16_t>(port), frame, &reply)) return 1;
    if (!reply.is_object() || !reply.contains("ok") || !reply.at("ok").is_bool() ||
        !reply.at("ok").as_bool()) {
      std::fprintf(stderr, "remgen-top: server replied with an error\n");
      return 1;
    }
    render(reply, clear, frame);
    ++frame;
    if (frames != 0 && frame >= static_cast<std::uint64_t>(frames)) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}
