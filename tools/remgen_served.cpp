// remgen-served — long-running network query server over REM snapshots.
//
//   remgen-served --snapshot [NAME=]FILE[,NAME=FILE...] [--port N] [--bind A]
//                 [--port-file FILE] [--threads N] [--cache-mb 64]
//                 [--max-inflight N] [--max-batch N] [--max-connections N]
//                 [--http-metrics PORT] [--slow-log FILE] [--slow-ms N]
//                 [--log-level warn] [--metrics-out FILE] [...]
//
// Speaks the serve JSONL protocol (src/serve/request.hpp) over TCP, one JSON
// object per line, responses per connection in request order. Multiple
// snapshots are served as named maps (select with a "map" request field; the
// first name is the default). Admin requests: {"id":N,"type":"stats"},
// {"id":N,"type":"metrics"} (in-flight Prometheus scrape) and
// {"id":N,"type":"reload","snapshot":"path"[,"map":"m"]} — reload loads the
// new snapshot in the background and hot-swaps it with zero dropped
// in-flight requests. The live observability plane (rolling-window tails,
// lifecycle histograms, slow-request log) is always on; --http-metrics adds
// a plain-HTTP GET /metrics scrape endpoint in the same event loop.
// SIGTERM/SIGINT drain gracefully: admitted requests finish, buffers flush,
// then the process exits 0. Telemetry files are exported even when the drain
// fails, so a crashed run still leaves its metrics behind.
#include <csignal>
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "exec/config.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "store/snapshot.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

namespace {

using namespace remgen;

int usage() {
  std::fprintf(stderr,
               "remgen-served — network query serving over REM snapshots\n\n"
               "  --snapshot LIST       comma-separated [name=]file snapshots; the first\n"
               "                        entry is the default map (required)\n"
               "  --bind ADDR           listen address (default 127.0.0.1)\n"
               "  --port N              listen port (default 0 = ephemeral)\n"
               "  --port-file FILE      write the bound port to FILE once listening\n"
               "  --http-metrics N      serve Prometheus text on HTTP GET /metrics at\n"
               "                        port N (0 = ephemeral; disabled when absent)\n"
               "  --http-port-file FILE write the bound HTTP metrics port to FILE\n"
               "  --slow-log FILE       append slow-request records as JSONL to FILE\n"
               "  --slow-ms N           slow threshold on total latency in ms\n"
               "                        (default 100; 0 logs every request)\n"
               "  --slow-sample N       log every Nth request over the threshold (default 1)\n"
               "  --threads N           execution width for request rounds (default:\n"
               "                        REMGEN_THREADS env, then hardware concurrency)\n"
               "  --cache-mb N          per-map result cache budget in MiB (default 64)\n"
               "  --max-inflight N      admitted-request bound; beyond it requests get\n"
               "                        an ok=false overload response (default 4096)\n"
               "  --max-batch N         requests per execution round (default 512)\n"
               "  --max-connections N   concurrent connection cap (default 1024)\n"
               "  --log-level L         trace|debug|info|warn|error|off (default warn)\n"
               "  --metrics-out FILE    write a JSON metrics snapshot after the drain\n"
               "  --metrics-prom FILE   write Prometheus text exposition after the drain\n"
               "  --trace-out FILE      write Chrome trace_event JSON after the drain\n"
               "  --profile-out FILE    write the phase profile as JSON after the drain\n");
  return 2;
}

net::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

bool write_port_file(const std::string& path, std::uint16_t port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write port file '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return true;
}

/// Writes the post-drain telemetry files. Runs on both the clean and the
/// error path so a failed drain still leaves its evidence behind; reports
/// dropped spans / task events on stderr so a truncated trace is visible.
bool export_telemetry(const util::Args& args) {
  bool ok = true;
  if (const std::string path = args.value("metrics-out"); !path.empty()) {
    ok = obs::export_metrics_json_file(path) && ok;
  }
  if (const std::string path = args.value("metrics-prom"); !path.empty()) {
    ok = obs::export_prometheus_file(path) && ok;
  }
  if (const std::string path = args.value("trace-out"); !path.empty()) {
    ok = obs::export_trace_file(path) && ok;
  }
  if (const std::string path = args.value("profile-out"); !path.empty()) {
    ok = obs::export_profile_json_file(path) && ok;
  }
  const std::uint64_t dropped_spans = obs::trace().dropped();
  const std::uint64_t dropped_tasks = obs::task_events_dropped();
  if (dropped_spans > 0 || dropped_tasks > 0) {
    std::fprintf(stderr, "telemetry: dropped %llu span(s), %llu task event(s)\n",
                 static_cast<unsigned long long>(dropped_spans),
                 static_cast<unsigned long long>(dropped_tasks));
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{
      "snapshot",     "bind",        "port",         "port-file",       "threads",
      "cache-mb",     "max-inflight", "max-batch",   "max-connections", "log-level",
      "metrics-out",  "metrics-prom", "trace-out",   "profile-out",     "http-metrics",
      "http-port-file", "slow-log",   "slow-ms",     "slow-sample"};
  const std::set<std::string> flag_keys{"help"};
  std::string error;
  const auto args = util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }
  if (args->flag("help") || !args->has("snapshot")) return usage();

  if (args->has("threads")) {
    const long threads = args->value_int("threads", 0);
    if (threads <= 0) {
      std::fprintf(stderr, "--threads needs a positive integer\n");
      return 2;
    }
    exec::set_thread_count(static_cast<std::size_t>(threads));
  }
  if (args->has("log-level")) {
    if (const auto level = util::log_level_from_string(args->value("log-level"))) {
      util::set_log_level(*level);
    } else {
      std::fprintf(stderr, "unknown log level '%s'\n", args->value("log-level").c_str());
      return 2;
    }
  }
  // The live plane (lifecycle histograms, scrape endpoints) is always on: a
  // server you cannot observe is not a server you can run.
  obs::set_enabled(true);
  if (args->has("profile-out")) obs::set_profiling_enabled(true);
  obs::name_current_thread("main");

  const long cache_mb = args->value_int("cache-mb", 64);
  const long port = args->value_int("port", 0);
  const long max_inflight = args->value_int("max-inflight", 4096);
  const long max_batch = args->value_int("max-batch", 512);
  const long max_connections = args->value_int("max-connections", 1024);
  const long http_metrics = args->value_int("http-metrics", -1);
  const double slow_ms = args->value_double("slow-ms", 100.0);
  const long slow_sample = args->value_int("slow-sample", 1);
  if (cache_mb < 0 || port < 0 || port > 65535 || max_inflight < 1 || max_batch < 1 ||
      max_connections < 1 || http_metrics > 65535 || slow_ms < 0 || slow_sample < 1) {
    std::fprintf(stderr, "error: invalid --cache-mb/--port/--max-*/--http-metrics/"
                         "--slow-* value\n");
    return 2;
  }

  net::ServerConfig config;
  config.bind_address = args->value("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(port);
  config.max_inflight = static_cast<std::size_t>(max_inflight);
  config.max_batch = static_cast<std::size_t>(max_batch);
  config.max_connections = static_cast<std::size_t>(max_connections);
  config.cache_bytes = static_cast<std::size_t>(cache_mb) * 1024 * 1024;
  config.http_metrics_port = args->has("http-metrics") ? static_cast<int>(http_metrics) : -1;
  config.slow_log_path = args->value("slow-log");
  config.slow_ms = slow_ms;
  config.slow_log_sample = static_cast<std::size_t>(slow_sample);
  net::Server server(config);

  // --snapshot a.snap,floor2=b.snap: bare paths get map name "default" (first
  // bare path) or their position; explicit NAME=PATH names the map.
  std::size_t loaded = 0;
  for (const std::string& entry : util::split_list(args->value("snapshot"))) {
    std::string name;
    std::string path = entry;
    if (const std::size_t eq = entry.find('='); eq != std::string::npos) {
      name = entry.substr(0, eq);
      path = entry.substr(eq + 1);
    } else {
      name = loaded == 0 ? "default" : "map" + std::to_string(loaded);
    }
    if (name.empty() || path.empty()) {
      std::fprintf(stderr, "error: malformed --snapshot entry '%s'\n", entry.c_str());
      return 2;
    }
    try {
      store::Snapshot snapshot = store::load_snapshot_file(path);
      server.add_engine(name, std::make_shared<const serve::QueryEngine>(
                                  std::move(snapshot), config.cache_bytes));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    ++loaded;
  }

  std::uint16_t bound = 0;
  try {
    bound = server.bind_and_listen();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (const std::string port_file = args->value("port-file"); !port_file.empty()) {
    if (!write_port_file(port_file, bound)) return 1;
  }
  if (const std::string http_port_file = args->value("http-port-file");
      !http_port_file.empty()) {
    if (!write_port_file(http_port_file, server.http_port())) return 1;
  }
  std::printf("listening on %s:%u\n", config.bind_address.c_str(), static_cast<unsigned>(bound));
  if (server.http_port() != 0) {
    std::printf("metrics on http://%s:%u/metrics\n", config.bind_address.c_str(),
                static_cast<unsigned>(server.http_port()));
  }
  std::fflush(stdout);

  g_server = &server;
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  int exit_code = 0;
  try {
    server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    exit_code = 1;
  }
  g_server = nullptr;

  const net::ServerStats& stats = server.stats();
  std::fprintf(stderr,
               "drained: %llu connections, %llu requests, %llu responses, "
               "%llu parse errors, %llu overloads, %llu reload swaps (%llu failed), "
               "%llu scrapes, %llu slow-logged, %llu stalled rounds\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.responses),
               static_cast<unsigned long long>(stats.parse_errors),
               static_cast<unsigned long long>(stats.overload_rejections),
               static_cast<unsigned long long>(stats.reload_swaps),
               static_cast<unsigned long long>(stats.reload_failures),
               static_cast<unsigned long long>(stats.metrics_scrapes),
               static_cast<unsigned long long>(stats.slow_logged),
               static_cast<unsigned long long>(stats.stalled_rounds));

  if (!export_telemetry(*args)) exit_code = exit_code == 0 ? 1 : exit_code;
  return exit_code;
}
