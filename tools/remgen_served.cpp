// remgen-served — long-running network query server over REM snapshots.
//
//   remgen-served --snapshot [NAME=]FILE[,NAME=FILE...] [--port N] [--bind A]
//                 [--port-file FILE] [--threads N] [--cache-mb 64]
//                 [--max-inflight N] [--max-batch N] [--max-connections N]
//                 [--log-level warn] [--metrics-out FILE] [...]
//
// Speaks the serve JSONL protocol (src/serve/request.hpp) over TCP, one JSON
// object per line, responses per connection in request order. Multiple
// snapshots are served as named maps (select with a "map" request field; the
// first name is the default). Admin requests: {"id":N,"type":"stats"} and
// {"id":N,"type":"reload","snapshot":"path"[,"map":"m"]} — reload loads the
// new snapshot in the background and hot-swaps it with zero dropped
// in-flight requests. SIGTERM/SIGINT drain gracefully: admitted requests
// finish, buffers flush, then the process exits 0.
#include <csignal>
#include <cstdio>
#include <memory>
#include <set>
#include <string>

#include "exec/config.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "serve/engine.hpp"
#include "store/snapshot.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

namespace {

using namespace remgen;

int usage() {
  std::fprintf(stderr,
               "remgen-served — network query serving over REM snapshots\n\n"
               "  --snapshot LIST       comma-separated [name=]file snapshots; the first\n"
               "                        entry is the default map (required)\n"
               "  --bind ADDR           listen address (default 127.0.0.1)\n"
               "  --port N              listen port (default 0 = ephemeral)\n"
               "  --port-file FILE      write the bound port to FILE once listening\n"
               "  --threads N           execution width for request rounds (default:\n"
               "                        REMGEN_THREADS env, then hardware concurrency)\n"
               "  --cache-mb N          per-map result cache budget in MiB (default 64)\n"
               "  --max-inflight N      admitted-request bound; beyond it requests get\n"
               "                        an ok=false overload response (default 4096)\n"
               "  --max-batch N         requests per execution round (default 512)\n"
               "  --max-connections N   concurrent connection cap (default 1024)\n"
               "  --log-level L         trace|debug|info|warn|error|off (default warn)\n"
               "  --metrics-out FILE    write a JSON metrics snapshot after the drain\n"
               "  --metrics-prom FILE   write Prometheus text exposition after the drain\n"
               "  --trace-out FILE      write Chrome trace_event JSON after the drain\n"
               "  --profile-out FILE    write the phase profile as JSON after the drain\n");
  return 2;
}

net::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{
      "snapshot",     "bind",      "port",        "port-file",    "threads",
      "cache-mb",     "max-inflight", "max-batch", "max-connections",
      "log-level",    "metrics-out", "metrics-prom", "trace-out", "profile-out"};
  const std::set<std::string> flag_keys{"help"};
  std::string error;
  const auto args = util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }
  if (args->flag("help") || !args->has("snapshot")) return usage();

  if (args->has("threads")) {
    const long threads = args->value_int("threads", 0);
    if (threads <= 0) {
      std::fprintf(stderr, "--threads needs a positive integer\n");
      return 2;
    }
    exec::set_thread_count(static_cast<std::size_t>(threads));
  }
  if (args->has("log-level")) {
    if (const auto level = util::log_level_from_string(args->value("log-level"))) {
      util::set_log_level(*level);
    } else {
      std::fprintf(stderr, "unknown log level '%s'\n", args->value("log-level").c_str());
      return 2;
    }
  }
  const bool telemetry =
      args->has("metrics-out") || args->has("metrics-prom") || args->has("trace-out");
  if (telemetry) obs::set_enabled(true);
  if (args->has("profile-out")) obs::set_profiling_enabled(true);
  obs::name_current_thread("main");

  const long cache_mb = args->value_int("cache-mb", 64);
  const long port = args->value_int("port", 0);
  const long max_inflight = args->value_int("max-inflight", 4096);
  const long max_batch = args->value_int("max-batch", 512);
  const long max_connections = args->value_int("max-connections", 1024);
  if (cache_mb < 0 || port < 0 || port > 65535 || max_inflight < 1 || max_batch < 1 ||
      max_connections < 1) {
    std::fprintf(stderr, "error: invalid --cache-mb/--port/--max-* value\n");
    return 2;
  }

  net::ServerConfig config;
  config.bind_address = args->value("bind", "127.0.0.1");
  config.port = static_cast<std::uint16_t>(port);
  config.max_inflight = static_cast<std::size_t>(max_inflight);
  config.max_batch = static_cast<std::size_t>(max_batch);
  config.max_connections = static_cast<std::size_t>(max_connections);
  config.cache_bytes = static_cast<std::size_t>(cache_mb) * 1024 * 1024;
  net::Server server(config);

  // --snapshot a.snap,floor2=b.snap: bare paths get map name "default" (first
  // bare path) or their position; explicit NAME=PATH names the map.
  std::size_t loaded = 0;
  for (const std::string& entry : util::split_list(args->value("snapshot"))) {
    std::string name;
    std::string path = entry;
    if (const std::size_t eq = entry.find('='); eq != std::string::npos) {
      name = entry.substr(0, eq);
      path = entry.substr(eq + 1);
    } else {
      name = loaded == 0 ? "default" : "map" + std::to_string(loaded);
    }
    if (name.empty() || path.empty()) {
      std::fprintf(stderr, "error: malformed --snapshot entry '%s'\n", entry.c_str());
      return 2;
    }
    try {
      store::Snapshot snapshot = store::load_snapshot_file(path);
      server.add_engine(name, std::make_shared<const serve::QueryEngine>(
                                  std::move(snapshot), config.cache_bytes));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    ++loaded;
  }

  std::uint16_t bound = 0;
  try {
    bound = server.bind_and_listen();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (const std::string port_file = args->value("port-file"); !port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write port file '%s'\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(bound));
    std::fclose(f);
  }
  std::printf("listening on %s:%u\n", config.bind_address.c_str(), static_cast<unsigned>(bound));
  std::fflush(stdout);

  g_server = &server;
  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  try {
    server.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  g_server = nullptr;

  const net::ServerStats& stats = server.stats();
  std::fprintf(stderr,
               "drained: %llu connections, %llu requests, %llu responses, "
               "%llu parse errors, %llu overloads, %llu reload swaps (%llu failed)\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.responses),
               static_cast<unsigned long long>(stats.parse_errors),
               static_cast<unsigned long long>(stats.overload_rejections),
               static_cast<unsigned long long>(stats.reload_swaps),
               static_cast<unsigned long long>(stats.reload_failures));

  if (telemetry || args->has("profile-out")) {
    bool ok = true;
    if (const std::string path = args->value("metrics-out"); !path.empty()) {
      ok = obs::export_metrics_json_file(path) && ok;
    }
    if (const std::string path = args->value("metrics-prom"); !path.empty()) {
      ok = obs::export_prometheus_file(path) && ok;
    }
    if (const std::string path = args->value("trace-out"); !path.empty()) {
      ok = obs::export_trace_file(path) && ok;
    }
    if (const std::string path = args->value("profile-out"); !path.empty()) {
      ok = obs::export_profile_json_file(path) && ok;
    }
    if (!ok) return 1;
  }
  return 0;
}
