// remgen-ingestd — streaming ingestion daemon: tail sample files into live
// REM epochs and (optionally) serve them over the network as they land.
//
//   remgen-ingestd --input FILE[,FILE...] [--follow] [--serve] [--out-dir D]
//                  [--epoch-samples N] [--epoch-seconds T] [--no-deltas]
//                  [--model knn-onehot-x3-k16] [--env apartment|office]
//                  [--voxel 0.25] [--min-samples 16] [--map rem]
//                  [--bind A] [--port N] [--port-file FILE] [--cache-mb 64]
//                  [--threads N] [--poll-ms 200] [--log-level warn] [...]
//
// Inputs are tailed CSV or JSONL sample streams (format guessed from the
// extension; a canonical CSV header line is skipped). Files are drained in
// the order given and each file boundary is an explicit epoch flush, so
// feeding a dataset in two halves yields two epochs whose final snapshot is
// byte-identical to the one-shot batch build over the whole file — the
// determinism contract tests and CI pin. Malformed rows are rejected with
// line-numbered reasons (ingest.rejected_rows) and never enter the live
// dataset.
//
// Epochs: every trigger (--epoch-samples / --epoch-seconds of sample time /
// end-of-input flush) refits the model, re-rasterises the REM, and emits a
// versioned snapshot into --out-dir — epoch 1 as a full REMSNAP1, later
// epochs as CRC-checked REMDELT1 deltas replayable on top of their base
// (store::load_delta / apply_delta). With --serve, each epoch is also
// hot-published into the embedded net::Server with zero dropped in-flight
// requests; the current epoch id is visible in the "stats" admin response
// and the net.map.<name>.epoch gauge. With --follow the daemon keeps
// polling for appended rows until SIGTERM/SIGINT; without it, ingestion
// stops at end-of-input (and --serve keeps serving the final epoch until a
// signal arrives).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/config.hpp"
#include "geom/floorplan.hpp"
#include "ingest/pipeline.hpp"
#include "ingest/source.hpp"
#include "net/server.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

namespace {

using namespace remgen;

int usage() {
  std::fprintf(
      stderr,
      "remgen-ingestd — streaming ingestion into live REM epochs\n\n"
      "  --input LIST          comma-separated CSV/JSONL sample files, drained in\n"
      "                        order; each file boundary flushes an epoch (required)\n"
      "  --follow              keep tailing the inputs for appended rows until\n"
      "                        SIGTERM/SIGINT (default: stop at end of input)\n"
      "  --poll-ms N           tail poll interval with --follow (default 200)\n"
      "  --epoch-samples N     also cut an epoch every N accepted samples\n"
      "  --epoch-seconds T     also cut an epoch every T seconds of sample time\n"
      "  --no-deltas           emit every epoch as a full snapshot (no REMDELT1)\n"
      "  --out-dir DIR         write epoch-N.snap / delta-N.delta files to DIR\n"
      "  --model NAME          estimator refitted each epoch (default knn-onehot-x3-k16)\n"
      "  --env NAME            apartment|office raster volume (default apartment)\n"
      "  --voxel M             raster voxel edge in metres (default 0.25)\n"
      "  --min-samples N       per-MAC sample gate (default 16)\n"
      "serving (optional):\n"
      "  --serve               embed a net::Server and hot-publish each epoch\n"
      "  --map NAME            map name published under (default rem)\n"
      "  --bind ADDR           listen address (default 127.0.0.1)\n"
      "  --port N              listen port (default 0 = ephemeral)\n"
      "  --port-file FILE      write the bound port to FILE once listening\n"
      "  --cache-mb N          result-cache budget per published engine (default 64)\n"
      "  --threads N           execution width for epoch builds and request rounds\n"
      "telemetry:\n"
      "  --log-level L         trace|debug|info|warn|error|off (default warn)\n"
      "  --metrics-out FILE    write a JSON metrics snapshot on exit\n"
      "  --metrics-prom FILE   write Prometheus text exposition on exit\n"
      "  --trace-out FILE      write Chrome trace_event JSON on exit\n"
      "  --profile-out FILE    write the phase profile as JSON on exit\n");
  return 2;
}

std::atomic<bool> g_stop{false};
net::Server* g_server = nullptr;

void handle_signal(int) {
  g_stop.store(true);
  if (g_server != nullptr) g_server->request_shutdown();
}

ml::ModelKind model_by_name(const std::string& name) {
  for (const ml::ModelKind kind : ml::all_model_kinds(true)) {
    if (name == ml::model_kind_name(kind)) return kind;
  }
  std::fprintf(stderr, "unknown model '%s'; available:", name.c_str());
  for (const ml::ModelKind kind : ml::all_model_kinds(true)) {
    std::fprintf(stderr, " %s", ml::model_kind_name(kind));
  }
  std::fprintf(stderr, "\n");
  std::exit(2);
}

bool write_port_file(const std::string& path, std::uint16_t port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write port file '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return true;
}

bool export_telemetry(const util::Args& args) {
  bool ok = true;
  if (const std::string path = args.value("metrics-out"); !path.empty()) {
    ok = obs::export_metrics_json_file(path) && ok;
  }
  if (const std::string path = args.value("metrics-prom"); !path.empty()) {
    ok = obs::export_prometheus_file(path) && ok;
  }
  if (const std::string path = args.value("trace-out"); !path.empty()) {
    ok = obs::export_trace_file(path) && ok;
  }
  if (const std::string path = args.value("profile-out"); !path.empty()) {
    ok = obs::export_profile_json_file(path) && ok;
  }
  return ok;
}

void print_epoch(const ingest::EpochInfo& info) {
  std::printf("epoch %llu: %zu rows (%zu below gate), snapshot %zu B",
              static_cast<unsigned long long>(info.epoch), info.rows, info.dropped_rows,
              info.snapshot_bytes);
  if (info.delta) std::printf(", delta %zu B", info.delta_bytes);
  if (!info.snapshot_path.empty()) std::printf(" -> %s", info.snapshot_path.c_str());
  if (!info.delta_path.empty()) std::printf(" -> %s", info.delta_path.c_str());
  if (info.published) std::printf(" [published]");
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{
      "input",      "poll-ms",      "epoch-samples", "epoch-seconds", "out-dir",
      "model",      "env",          "voxel",         "min-samples",   "map",
      "bind",       "port",         "port-file",     "cache-mb",      "threads",
      "log-level",  "metrics-out",  "metrics-prom",  "trace-out",     "profile-out"};
  const std::set<std::string> flag_keys{"help", "follow", "serve", "no-deltas"};
  std::string error;
  const auto args = util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }
  if (args->flag("help") || !args->has("input")) return usage();

  if (args->has("threads")) {
    const long threads = args->value_int("threads", 0);
    if (threads <= 0) {
      std::fprintf(stderr, "--threads needs a positive integer\n");
      return 2;
    }
    exec::set_thread_count(static_cast<std::size_t>(threads));
  }
  if (args->has("log-level")) {
    if (const auto level = util::log_level_from_string(args->value("log-level"))) {
      util::set_log_level(*level);
    } else {
      std::fprintf(stderr, "unknown log level '%s'\n", args->value("log-level").c_str());
      return 2;
    }
  }
  obs::set_enabled(true);
  if (args->has("profile-out")) obs::set_profiling_enabled(true);
  obs::name_current_thread("main");

  const long epoch_samples = args->value_int("epoch-samples", 0);
  const double epoch_seconds = args->value_double("epoch-seconds", 0.0);
  const double voxel = args->value_double("voxel", 0.25);
  const long min_samples = args->value_int("min-samples", 16);
  const long cache_mb = args->value_int("cache-mb", 64);
  const long port = args->value_int("port", 0);
  const long poll_ms = args->value_int("poll-ms", 200);
  if (epoch_samples < 0 || epoch_seconds < 0 || voxel <= 0 || min_samples < 1 ||
      cache_mb < 0 || port < 0 || port > 65535 || poll_ms < 1) {
    std::fprintf(stderr, "error: invalid --epoch-*/--voxel/--min-samples/--cache-mb/"
                         "--port/--poll-ms value\n");
    return 2;
  }

  const bool serve = args->flag("serve");
  net::ServerConfig server_config;
  server_config.bind_address = args->value("bind", "127.0.0.1");
  server_config.port = static_cast<std::uint16_t>(port);
  server_config.cache_bytes = static_cast<std::size_t>(cache_mb) * 1024 * 1024;
  net::Server server(server_config);

  ingest::IngestConfig config;
  config.model = model_by_name(args->value("model", "knn-onehot-x3-k16"));
  if (args->value("env", "apartment") == "office") {
    config.volume = geom::make_office_model().scan_volume;
  }
  config.rem.voxel_m = voxel;
  config.rem.min_samples_per_mac = static_cast<std::size_t>(min_samples);
  config.epoch_samples = static_cast<std::size_t>(epoch_samples);
  config.epoch_sim_seconds = epoch_seconds;
  config.emit_deltas = !args->flag("no-deltas");
  config.out_dir = args->value("out-dir");
  config.cache_bytes = server_config.cache_bytes;
  config.server = serve ? &server : nullptr;
  config.map = args->value("map", "rem");
  ingest::IngestPipeline pipeline(config);

  struct sigaction action {};
  action.sa_handler = handle_signal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);

  std::vector<ingest::FileTailSource> sources;
  for (const std::string& path : util::split_list(args->value("input"))) {
    sources.emplace_back(path, ingest::stream_format_for_path(path));
  }
  if (sources.empty()) return usage();

  // Drain pass: each input in order, flushing an epoch at every file
  // boundary — the stream-vs-batch byte-identity anchor.
  const std::size_t epochs_before = pipeline.history().size();
  for (ingest::FileTailSource& source : sources) {
    while (source.poll(pipeline) > 0 && !g_stop.load()) {
    }
    if (const auto info = pipeline.flush()) print_epoch(*info);
    if (g_stop.load()) break;
  }
  if (pipeline.history().size() == epochs_before && !args->flag("follow")) {
    std::fprintf(stderr, "error: no epoch built (no input rows, or no MAC reached the "
                         "%ld-sample gate)\n", min_samples);
    if (!serve) return 1;
  }

  std::thread server_thread;
  int exit_code = 0;
  if (serve) {
    std::uint16_t bound = 0;
    try {
      bound = server.bind_and_listen();  // Drains the pre-bind epoch publish.
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    if (const std::string port_file = args->value("port-file"); !port_file.empty()) {
      if (!write_port_file(port_file, bound)) return 1;
    }
    std::printf("listening on %s:%u (map '%s', epoch %llu)\n",
                server_config.bind_address.c_str(), static_cast<unsigned>(bound),
                config.map.c_str(), static_cast<unsigned long long>(pipeline.epoch()));
    std::fflush(stdout);
    g_server = &server;
    server_thread = std::thread([&server, &exit_code] {
      try {
        server.run();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        exit_code = 1;
        g_stop.store(true);
      }
    });
  }

  if (args->flag("follow")) {
    // Tail loop: poll every input for appended rows; count/time triggers cut
    // epochs mid-file, and a quiet interval costs one poll round per source.
    while (!g_stop.load()) {
      std::size_t accepted = 0;
      for (ingest::FileTailSource& source : sources) accepted += source.poll(pipeline);
      if (accepted == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      }
    }
    if (const auto info = pipeline.flush()) print_epoch(*info);
  }

  if (serve) {
    if (!args->flag("follow")) {
      // Ingestion is done; keep serving the final epoch until a signal.
      while (!g_stop.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      }
    }
    server.request_shutdown();
    server_thread.join();
    g_server = nullptr;
  }

  std::uint64_t rejected = 0;
  std::uint64_t lines = 0;
  for (const ingest::FileTailSource& source : sources) {
    rejected += source.stats().rejected;
    lines += source.stats().lines;
  }
  std::fprintf(stderr,
               "ingested: %zu samples over %llu epochs (%llu lines, %llu rejected)\n",
               pipeline.samples(), static_cast<unsigned long long>(pipeline.epoch()),
               static_cast<unsigned long long>(lines),
               static_cast<unsigned long long>(rejected));
  if (serve) {
    std::fprintf(stderr, "served: %llu requests, %llu responses, %llu publish swaps\n",
                 static_cast<unsigned long long>(server.stats().requests),
                 static_cast<unsigned long long>(server.stats().responses),
                 static_cast<unsigned long long>(server.stats().publish_swaps));
  }

  if (!export_telemetry(*args)) exit_code = exit_code == 0 ? 1 : exit_code;
  return exit_code;
}
