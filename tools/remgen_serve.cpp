// remgen-serve — concurrent query serving over a baked REM snapshot.
//
//   remgen-serve --snapshot rem.snap [--requests queries.jsonl]
//                [--responses-out responses.jsonl] [--threads N]
//                [--cache-mb 64] [--log-level warn] [--metrics-out FILE]
//                [--metrics-prom FILE] [--trace-out FILE]
//
// Requests are JSONL (one JSON object per line; see src/serve/request.hpp
// for the wire format), read from --requests or stdin ("-"). Responses are
// JSONL on --responses-out or stdout, ordered by request id — byte-identical
// at every --threads value. The process exits non-zero when the snapshot
// cannot be loaded (missing file, bad magic, wrong version, CRC mismatch),
// so corrupted stores fail loudly instead of serving garbage.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "exec/config.hpp"
#include "obs/export.hpp"
#include "serve/engine.hpp"
#include "store/snapshot.hpp"
#include "util/args.hpp"
#include "util/log.hpp"

namespace {

using namespace remgen;

int usage() {
  std::fprintf(stderr,
               "remgen-serve — query serving over a REM snapshot\n\n"
               "  --snapshot FILE       snapshot written by `remgen rem --snapshot-out` "
               "(required)\n"
               "  --requests FILE       JSONL request stream; '-' = stdin (default)\n"
               "  --responses-out FILE  JSONL response stream; '-' = stdout (default)\n"
               "  --threads N           worker threads (default: REMGEN_THREADS env, then\n"
               "                        hardware concurrency); responses are identical at\n"
               "                        every width\n"
               "  --cache-mb N          result cache budget in MiB (default 64; 0 disables)\n"
               "  --log-level L         trace|debug|info|warn|error|off (default warn)\n"
               "  --metrics-out FILE    write a JSON metrics snapshot after the run\n"
               "  --metrics-prom FILE   write Prometheus text exposition after the run\n"
               "  --trace-out FILE      write Chrome trace_event JSON after the run\n"
               "  --profile-out FILE    write the phase profile + Amdahl breakdown as\n"
               "                        JSON after the run (inspect with remgen-profile)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{"snapshot",    "requests",  "responses-out",
                                         "threads",     "cache-mb",  "log-level",
                                         "metrics-out", "metrics-prom", "trace-out",
                                         "profile-out"};
  const std::set<std::string> flag_keys{"help"};
  std::string error;
  const auto args = util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }
  if (args->flag("help") || !args->has("snapshot")) return usage();

  if (args->has("threads")) {
    const long threads = args->value_int("threads", 0);
    if (threads <= 0) {
      std::fprintf(stderr, "--threads needs a positive integer\n");
      return 2;
    }
    exec::set_thread_count(static_cast<std::size_t>(threads));
  }
  if (args->has("log-level")) {
    if (const auto level = util::log_level_from_string(args->value("log-level"))) {
      util::set_log_level(*level);
    } else {
      std::fprintf(stderr, "unknown log level '%s'\n", args->value("log-level").c_str());
      return 2;
    }
  }
  const bool telemetry =
      args->has("metrics-out") || args->has("metrics-prom") || args->has("trace-out");
  if (telemetry) obs::set_enabled(true);
  if (args->has("profile-out")) obs::set_profiling_enabled(true);
  obs::name_current_thread("main");

  const long cache_mb = args->value_int("cache-mb", 64);
  if (cache_mb < 0) {
    std::fprintf(stderr, "--cache-mb must be >= 0\n");
    return 2;
  }

  std::unique_ptr<serve::QueryEngine> engine;
  try {
    store::Snapshot snapshot = store::load_snapshot_file(args->value("snapshot"));
    engine = std::make_unique<serve::QueryEngine>(
        std::move(snapshot), static_cast<std::size_t>(cache_mb) * 1024 * 1024);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const std::string requests_path = args->value("requests", "-");
  const std::string responses_path = args->value("responses-out", "-");

  std::ifstream request_file;
  if (requests_path != "-") {
    request_file.open(requests_path);
    if (!request_file) {
      std::fprintf(stderr, "error: cannot open requests file '%s'\n", requests_path.c_str());
      return 1;
    }
  }
  std::istream& in = requests_path == "-" ? std::cin : request_file;

  // Responses are buffered and written in one pass so a failing open is
  // detected before any request work, and stdout stays line-clean.
  std::ofstream response_file;
  if (responses_path != "-") {
    response_file.open(responses_path);
    if (!response_file) {
      std::fprintf(stderr, "error: cannot open responses file '%s'\n", responses_path.c_str());
      return 1;
    }
  }
  std::ostream& out = responses_path == "-" ? std::cout : response_file;

  const serve::ReplayStats stats = engine->replay_jsonl(in, out);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: writing responses failed\n");
    return 1;
  }

  std::fprintf(stderr,
               "served %zu requests (%zu errors) in %.3fs — %.0f qps, "
               "latency p50 %.1fus p99 %.1fus p99.9 %.1fus, "
               "cache %llu hits / %llu misses\n",
               stats.requests, stats.errors, stats.wall_seconds, stats.qps,
               stats.latency_us.p50, stats.latency_us.p99, stats.latency_us.p999,
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.cache_misses));

  if (telemetry || args->has("profile-out")) {
    bool ok = true;
    if (const std::string path = args->value("metrics-out"); !path.empty()) {
      ok = obs::export_metrics_json_file(path) && ok;
    }
    if (const std::string path = args->value("metrics-prom"); !path.empty()) {
      ok = obs::export_prometheus_file(path) && ok;
    }
    if (const std::string path = args->value("trace-out"); !path.empty()) {
      ok = obs::export_trace_file(path) && ok;
    }
    if (const std::string path = args->value("profile-out"); !path.empty()) {
      ok = obs::export_profile_json_file(path) && ok;
    }
    if (!ok) return 1;
  }
  return 0;
}
