#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json against checked-in baselines.

Usage:
    tools/check_bench.py [--baseline-dir bench/baselines] [--fresh-dir .]
                         [--tolerance 0.25] [--time-tolerance 1.0]
                         [--min-speedup name:threads:factor ...]
                         [--update] [BENCH_perf.json BENCH_parallel.json ...]

Compares the benchmark artifacts written by bench_perf_micro against the
baselines committed under bench/baselines/ and exits non-zero when any
metric regressed beyond tolerance. Two tolerance tiers:

  * ratio metrics (speedup_at_max, qps, samples_per_sec) are machine-relative,
    so they get the tight --tolerance (default 0.25: a 25% drop fails);
  * absolute time metrics (seconds_per_iteration, wall_seconds, latency
    percentiles, per-width seconds) vary wildly across machines, so they get
    the loose --time-tolerance (default 1.0: only a 2x slowdown fails).

A fresh metric missing from the baseline is reported but never fails the
gate (new benchmarks land before their baseline); a baseline metric missing
from the fresh run fails it (a silently dropped benchmark is a regression).

--min-speedup name:threads:factor asserts an absolute parallel-scaling floor
on the fresh BENCH_parallel.json: path `name` must reach at least `factor`x
speedup at `threads` threads over its own 1-thread time. The assertion is
enforced only when the artifact's recorded hardware_threads is >= `threads`
— a 1-core recording machine cannot scale, and skipping (with a note) beats
asserting the impossible. Repeatable.

--update refreshes the baselines from the fresh files instead of comparing.
"""

import argparse
import json
import shutil
import sys
from pathlib import Path

DEFAULT_FILES = ["BENCH_perf.json", "BENCH_parallel.json", "BENCH_serve.json",
                 "BENCH_serve_net.json", "BENCH_ingest.json"]

# Provenance fields that legitimately differ between runs.
IGNORED_KEYS = {"commit", "threads", "threads_max", "hardware_threads",
                "iterations", "errors", "requests",
                # Open-loop loadgen provenance: the workload definition and its
                # zero-on-success counters, not performance measurements.
                "rate", "duration_seconds", "connections", "sent", "completed",
                "dropped", "overload_rejections"}

# Metrics where HIGHER is better and the unit is machine-relative.
# stream_matches_batch is a 0/1 correctness flag: baseline 1, any drop to 0
# falls below the floor at every sane tolerance, failing the gate.
RATIO_KEYS = {"speedup_at_max", "qps", "samples_per_sec", "stream_matches_batch"}


def flatten(doc, prefix=""):
    """Yields (path, value) for every numeric leaf, keying list rows by their
    "name"/"threads" field so row order never affects the comparison."""
    if isinstance(doc, dict):
        for key, value in doc.items():
            if key in IGNORED_KEYS:
                continue
            yield from flatten(value, f"{prefix}{key}." if prefix or key else key)
    elif isinstance(doc, list):
        for index, row in enumerate(doc):
            label = str(index)
            if isinstance(row, dict):
                label = str(row.get("name", row.get("threads", index)))
            yield from flatten(row, f"{prefix}{label}.")
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        yield prefix.rstrip("."), float(doc)


def load(path):
    with open(path, encoding="utf-8") as handle:
        return dict(flatten(json.load(handle)))


def is_ratio_metric(path):
    leaf = path.rsplit(".", 1)[-1]
    return leaf in RATIO_KEYS


def compare(name, baseline, fresh, tolerance, time_tolerance):
    """Returns (regressions, notes) comparing one artifact's flat metrics."""
    regressions = []
    notes = []
    for path, base_value in sorted(baseline.items()):
        if path not in fresh:
            regressions.append(f"{name}: {path} missing from the fresh run "
                               f"(baseline {base_value:g})")
            continue
        fresh_value = fresh[path]
        if is_ratio_metric(path):
            # Higher is better; fail when the fresh value dropped too far.
            floor = base_value * (1.0 - tolerance)
            if fresh_value < floor:
                regressions.append(
                    f"{name}: {path} regressed {base_value:g} -> {fresh_value:g} "
                    f"(floor {floor:g}, tolerance {tolerance:.0%})")
        else:
            # Lower is better (wall time); fail when it grew too much.
            ceiling = base_value * (1.0 + time_tolerance)
            if base_value > 0 and fresh_value > ceiling:
                regressions.append(
                    f"{name}: {path} regressed {base_value:g}s -> {fresh_value:g}s "
                    f"(ceiling {ceiling:g}s, tolerance {time_tolerance:.0%})")
    for path in sorted(set(fresh) - set(baseline)):
        notes.append(f"{name}: new metric {path} = {fresh[path]:g} (no baseline yet)")
    return regressions, notes


def parse_min_speedup(spec):
    """Parses one name:threads:factor assertion; exits with a usage error on
    a malformed spec rather than silently skipping a gate."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--min-speedup expects name:threads:factor, got {spec!r}")
    name, threads, factor = parts
    try:
        return name, int(threads), float(factor)
    except ValueError as error:
        raise argparse.ArgumentTypeError(
            f"--min-speedup {spec!r}: {error}") from error


def check_min_speedups(fresh_dir, specs):
    """Returns (failures, notes) for the --min-speedup assertions against the
    fresh BENCH_parallel.json (raw document — the per-width seconds)."""
    failures = []
    notes = []
    path = fresh_dir / "BENCH_parallel.json"
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (json.JSONDecodeError, OSError) as error:
        return [f"min-speedup: cannot read {path}: {error}"], notes

    hardware = int(doc.get("hardware_threads", 0))
    rows = {row.get("name"): row for row in doc.get("paths", [])}
    for name, threads, factor in specs:
        if hardware < threads:
            notes.append(
                f"min-speedup: skipping {name}:{threads}:{factor:g} — recorder "
                f"has {hardware} hardware thread(s), cannot scale to {threads}")
            continue
        row = rows.get(name)
        if row is None:
            failures.append(f"min-speedup: path {name!r} missing from {path}")
            continue
        seconds = row.get("seconds", {})
        t1 = seconds.get("1")
        tn = seconds.get(str(threads))
        if t1 is None or tn is None or tn <= 0:
            failures.append(
                f"min-speedup: {name} lacks timings at widths 1 and {threads}")
            continue
        speedup = t1 / tn
        if speedup < factor:
            failures.append(
                f"min-speedup: {name} reached {speedup:.2f}x at {threads} "
                f"threads (floor {factor:g}x; 1t={t1:g}s, {threads}t={tn:g}s)")
        else:
            notes.append(
                f"min-speedup: {name} ok — {speedup:.2f}x at {threads} threads "
                f"(floor {factor:g}x)")
    return failures, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", default=None,
                        help=f"artifact file names (default: {' '.join(DEFAULT_FILES)})")
    parser.add_argument("--baseline-dir", default="bench/baselines", type=Path)
    parser.add_argument("--fresh-dir", default=".", type=Path)
    parser.add_argument("--tolerance", default=0.25, type=float,
                        help="allowed fractional drop for ratio metrics (default 0.25)")
    parser.add_argument("--time-tolerance", default=1.0, type=float,
                        help="allowed fractional growth for time metrics (default 1.0 = 2x)")
    parser.add_argument("--min-speedup", action="append", default=[],
                        type=parse_min_speedup, metavar="NAME:THREADS:FACTOR",
                        help="assert NAME reaches FACTORx speedup at THREADS "
                             "threads in the fresh BENCH_parallel.json "
                             "(skipped when the recorder has fewer hardware "
                             "threads); repeatable")
    parser.add_argument("--update", action="store_true",
                        help="refresh the baselines from the fresh files and exit")
    args = parser.parse_args()

    files = args.files or DEFAULT_FILES
    all_regressions = []
    compared = 0

    for file_name in files:
        fresh_path = args.fresh_dir / file_name
        baseline_path = args.baseline_dir / file_name
        if not fresh_path.is_file():
            print(f"error: fresh artifact {fresh_path} not found", file=sys.stderr)
            return 2

        if args.update:
            args.baseline_dir.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(fresh_path, baseline_path)
            print(f"updated {baseline_path} from {fresh_path}")
            continue

        if not baseline_path.is_file():
            print(f"error: baseline {baseline_path} not found "
                  f"(run with --update to create it)", file=sys.stderr)
            return 2

        try:
            baseline = load(baseline_path)
            fresh = load(fresh_path)
        except (json.JSONDecodeError, OSError) as error:
            print(f"error: cannot read {file_name}: {error}", file=sys.stderr)
            return 2

        regressions, notes = compare(file_name, baseline, fresh,
                                     args.tolerance, args.time_tolerance)
        for note in notes:
            print(f"note: {note}")
        if regressions:
            all_regressions.extend(regressions)
        else:
            print(f"ok: {file_name} — {len(baseline)} metrics within tolerance")
        compared += 1

    if args.update:
        return 0

    if args.min_speedup:
        failures, notes = check_min_speedups(args.fresh_dir, args.min_speedup)
        for note in notes:
            print(f"note: {note}")
        all_regressions.extend(failures)

    if all_regressions:
        print(f"\n{len(all_regressions)} perf regression(s):", file=sys.stderr)
        for regression in all_regressions:
            print(f"  FAIL {regression}", file=sys.stderr)
        return 1
    print(f"perf gate passed: {compared} artifact(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
