// remgen-loadgen — replay and open-loop load driver for remgen-served.
//
// Replay mode (byte-identity harness):
//   remgen-loadgen --port N --replay requests.jsonl --out responses.jsonl
// pipelines every line over one connection, collects one response per line,
// stable-sorts by id and writes them — the same deterministic order offline
// `remgen-serve` replay produces, so `cmp` proves byte-identity.
//
// Open-loop mode (latency under load):
//   remgen-loadgen --port N --rate 2000 --duration 10 --connections 4 \
//                  [--reload-at 5 --reload-snapshot new.snap [--reload-map m]] \
//                  --bench-out BENCH_serve_net.json
// sends deterministic best-AP point queries on a fixed schedule (open loop:
// send times never wait for responses, so queueing delay shows up in the
// latency tail instead of silently throttling the generator), optionally
// firing a hot reload mid-run on a dedicated admin connection, then drains
// and reports qps + p50/p90/p99/p99.9 for the perf gate.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/args.hpp"
#include "util/fmt.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace remgen;
using Clock = std::chrono::steady_clock;

int usage() {
  std::fprintf(stderr,
               "remgen-loadgen — drive a remgen-served instance\n\n"
               "  --host ADDR           server address (default 127.0.0.1)\n"
               "  --port N              server port (required)\n\n"
               "replay mode:\n"
               "  --replay FILE         pipeline FILE's request lines over one connection\n"
               "  --out FILE            write responses stable-sorted by id\n\n"
               "open-loop mode:\n"
               "  --rate N              requests per second across all connections\n"
               "  --duration S          seconds to keep sending (default 10)\n"
               "  --connections N       data connections, round-robin (default 4)\n"
               "  --top N               best-AP list length per query (default 3)\n"
               "  --extent X,Y,Z        query volume upper corner (default 10,10,3)\n"
               "  --quantize STEP       snap coordinates to a STEP lattice (0 = off);\n"
               "                        repeats then hit the server's result cache\n"
               "  --seed N              query-position RNG seed (default 42)\n"
               "  --reload-at S         send a hot reload S seconds into the run\n"
               "  --reload-snapshot F   snapshot file for the reload\n"
               "  --reload-map NAME     map to swap (default: server default map)\n"
               "  --bench-out FILE      write the qps/latency report as JSON\n");
  return 2;
}

std::string bench_commit() {
  for (const char* key : {"REMGEN_GIT_COMMIT", "GITHUB_SHA"}) {
    if (const char* value = std::getenv(key); value != nullptr && *value != '\0') return value;
  }
  return "unknown";
}

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// One nonblocking connection with line-framed buffers on both sides.
struct Conn {
  int fd = -1;
  std::string out;          ///< Bytes not yet written.
  std::size_t sent = 0;     ///< Prefix of `out` already written.
  std::string in;           ///< Bytes read, not yet split into lines.
  bool eof = false;
};

bool pump_write(Conn& conn) {
  while (conn.sent < conn.out.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data() + conn.sent, conn.out.size() - conn.sent, MSG_DONTWAIT);
    if (n > 0) {
      conn.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  if (conn.sent == conn.out.size() && conn.sent > (1u << 20)) {
    conn.out.clear();
    conn.sent = 0;
  }
  return true;
}

bool pump_read(Conn& conn, std::vector<std::string>& lines) {
  char buffer[65536];
  while (true) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (n > 0) {
      conn.in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) conn.eof = true;
    if (n < 0 && !(errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    break;
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) break;
    lines.push_back(conn.in.substr(start, newline - start));
    start = newline + 1;
  }
  conn.in.erase(0, start);
  return true;
}

int run_replay(const std::string& host, std::uint16_t port, const std::string& replay_path,
               const std::string& out_path) {
  std::ifstream input(replay_path);
  if (!input) {
    std::fprintf(stderr, "error: cannot open '%s'\n", replay_path.c_str());
    return 1;
  }
  std::size_t expected = 0;
  Conn conn;
  conn.fd = connect_to(host, port);
  if (conn.fd < 0) {
    std::fprintf(stderr, "error: cannot connect to %s:%u\n", host.c_str(), unsigned{port});
    return 1;
  }
  for (std::string line; std::getline(input, line);) {
    conn.out += line;
    conn.out += '\n';
    ++expected;
  }

  std::vector<std::string> responses;
  bool sent_all = false;
  while (responses.size() < expected) {
    if (!pump_write(conn)) {
      std::fprintf(stderr, "error: write failed: %s\n", std::strerror(errno));
      ::close(conn.fd);
      return 1;
    }
    if (!sent_all && conn.sent == conn.out.size()) {
      ::shutdown(conn.fd, SHUT_WR);  // All pipelined; tell the server we're done.
      sent_all = true;
    }
    pollfd pfd{conn.fd, POLLIN, 0};
    if (!sent_all) pfd.events |= POLLOUT;
    if (::poll(&pfd, 1, 10000) < 0 && errno != EINTR) break;
    if (!pump_read(conn, responses)) {
      std::fprintf(stderr, "error: read failed: %s\n", std::strerror(errno));
      ::close(conn.fd);
      return 1;
    }
    if (conn.eof) break;
  }
  ::close(conn.fd);
  if (responses.size() != expected) {
    std::fprintf(stderr, "error: got %zu of %zu responses before EOF\n", responses.size(),
                 expected);
    return 1;
  }

  // Stable sort by id mirrors remgen-serve's deterministic offline ordering
  // (errors with the -1 sentinel keep their arrival order, like replay_jsonl).
  std::vector<std::pair<std::int64_t, std::size_t>> order;
  order.reserve(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    std::int64_t id = -1;
    try {
      id = obs::Json::parse(responses[i]).at("id").as_int64();
    } catch (const std::exception&) {
    }
    order.emplace_back(id, i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::ofstream output(out_path);
  if (!output) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  for (const auto& [id, index] : order) output << responses[index] << '\n';
  std::fprintf(stderr, "replayed %zu lines, %zu responses\n", expected, responses.size());
  return 0;
}

struct OpenLoopOptions {
  double rate = 1000.0;
  double duration_s = 10.0;
  std::size_t connections = 4;
  long top = 3;
  double extent[3] = {10.0, 10.0, 3.0};
  double quantize = 0.0;  ///< >0 snaps coordinates to this lattice so repeats
                          ///< hit the server's result cache (stable CI rates).
  std::uint64_t seed = 42;
  double reload_at_s = -1.0;
  std::string reload_snapshot;
  std::string reload_map;
  std::string bench_out;
};

int run_open_loop(const std::string& host, std::uint16_t port, const OpenLoopOptions& options) {
  std::vector<Conn> conns(options.connections);
  for (Conn& conn : conns) {
    conn.fd = connect_to(host, port);
    if (conn.fd < 0) {
      std::fprintf(stderr, "error: cannot connect to %s:%u\n", host.c_str(), unsigned{port});
      return 1;
    }
  }
  Conn admin;  // Reload rides a dedicated connection so its (single) response
               // cannot interleave with data-connection ordering checks.
  const bool want_reload = options.reload_at_s >= 0.0 && !options.reload_snapshot.empty();
  if (want_reload) {
    admin.fd = connect_to(host, port);
    if (admin.fd < 0) {
      std::fprintf(stderr, "error: cannot connect admin connection\n");
      return 1;
    }
  }

  util::Rng rng(options.seed);
  const auto total = static_cast<std::size_t>(options.rate * options.duration_s);
  std::vector<double> send_us(total + 1, 0.0);  // send_us[id]; ids are 1-based.
  std::vector<double> latencies_us;
  latencies_us.reserve(total);
  std::size_t sent = 0;
  std::size_t completed = 0;
  std::size_t errors = 0;
  std::size_t overloads = 0;
  bool reload_sent = false;
  bool reload_ok = false;

  const auto start = Clock::now();
  const auto elapsed_us = [&start] {
    return std::chrono::duration<double, std::micro>(Clock::now() - start).count();
  };
  const double period_us = 1e6 / options.rate;
  const double duration_us = options.duration_s * 1e6;
  const double drain_deadline_us = duration_us + 15e6;

  std::vector<std::string> lines;
  std::vector<pollfd> pfds;
  while (true) {
    const double now_us = elapsed_us();
    // Open loop: emit every request whose scheduled time has passed.
    while (sent < total && static_cast<double>(sent) * period_us <= now_us) {
      const std::size_t id = sent + 1;
      Conn& conn = conns[sent % conns.size()];
      double coords[3];
      for (std::size_t axis = 0; axis < 3; ++axis) {
        coords[axis] = rng.uniform(0.0, options.extent[axis]);
        if (options.quantize > 0.0) {
          coords[axis] = std::round(coords[axis] / options.quantize) * options.quantize;
        }
      }
      conn.out += util::format(
          R"({{"id":{},"type":"point","top":{},"x":{},"y":{},"z":{}}})", id, options.top,
          coords[0], coords[1], coords[2]);
      conn.out += '\n';
      send_us[id] = elapsed_us();
      ++sent;
    }
    if (want_reload && !reload_sent && now_us >= options.reload_at_s * 1e6) {
      obs::Json::Object object;
      object["id"] = obs::Json(std::int64_t{0});
      object["type"] = obs::Json(std::string("reload"));
      object["snapshot"] = obs::Json(options.reload_snapshot);
      if (!options.reload_map.empty()) object["map"] = obs::Json(options.reload_map);
      admin.out += obs::Json(std::move(object)).dump();
      admin.out += '\n';
      reload_sent = true;
    }

    pfds.clear();
    for (Conn& conn : conns) {
      short events = POLLIN;
      if (conn.sent < conn.out.size()) events |= POLLOUT;
      pfds.push_back({conn.fd, events, 0});
    }
    if (want_reload) {
      short events = POLLIN;
      if (admin.sent < admin.out.size()) events |= POLLOUT;
      pfds.push_back({admin.fd, events, 0});
    }
    const double until_next_send =
        sent < total ? std::max(0.0, static_cast<double>(sent) * period_us - elapsed_us()) : 5000.0;
    const int timeout_ms = std::min(5, static_cast<int>(until_next_send / 1000.0));
    if (::poll(pfds.data(), pfds.size(), timeout_ms) < 0 && errno != EINTR) {
      std::fprintf(stderr, "error: poll failed: %s\n", std::strerror(errno));
      return 1;
    }

    for (Conn& conn : conns) {
      if (!pump_write(conn) || !pump_read(conn, lines)) {
        std::fprintf(stderr, "error: connection i/o failed: %s\n", std::strerror(errno));
        return 1;
      }
      if (conn.eof && completed < sent) {
        std::fprintf(stderr, "error: server closed a connection mid-run\n");
        return 1;
      }
    }
    if (want_reload && reload_sent && !(pump_write(admin) && pump_read(admin, lines))) {
      std::fprintf(stderr, "error: admin connection i/o failed\n");
      return 1;
    }
    const double receive_us = elapsed_us();
    for (const std::string& line : lines) {
      try {
        const obs::Json doc = obs::Json::parse(line);
        const std::int64_t id = doc.at("id").as_int64();
        const bool ok = doc.at("ok").as_bool();
        if (id == 0) {  // The admin reload response.
          reload_ok = ok;
          if (!ok) std::fprintf(stderr, "reload failed: %s\n", doc.at("error").as_string().c_str());
          continue;
        }
        ++completed;
        if (ok) {
          latencies_us.push_back(receive_us - send_us[static_cast<std::size_t>(id)]);
        } else if (doc.at("error").as_string().find("overloaded") != std::string::npos) {
          ++overloads;
        } else {
          ++errors;
          if (errors <= 5) {
            std::fprintf(stderr, "error response: %s\n", line.c_str());
          }
        }
      } catch (const std::exception& e) {
        ++errors;
        std::fprintf(stderr, "bad response line (%s): %s\n", e.what(), line.c_str());
      }
    }
    lines.clear();

    if (sent == total && completed == sent && (!reload_sent || reload_ok || receive_us > drain_deadline_us)) break;
    if (receive_us > drain_deadline_us) break;
  }
  const double wall_s = elapsed_us() / 1e6;
  for (Conn& conn : conns) ::close(conn.fd);
  if (want_reload) ::close(admin.fd);

  const std::size_t dropped = sent - completed;
  const util::Percentiles latency = util::percentiles(latencies_us);
  const double qps = wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0;
  std::fprintf(stderr,
               "sent %zu, completed %zu (%.0f qps), errors %zu, overloads %zu, dropped %zu\n"
               "latency us: p50 %.1f  p90 %.1f  p99 %.1f  p99.9 %.1f\n",
               sent, completed, qps, errors, overloads, dropped, latency.p50, latency.p90,
               latency.p99, latency.p999);
  if (want_reload) {
    std::fprintf(stderr, "hot reload: %s\n", reload_ok ? "ok" : "FAILED");
  }

  if (!options.bench_out.empty()) {
    obs::Json::Object latency_obj;
    latency_obj["p50"] = obs::Json(latency.p50);
    latency_obj["p90"] = obs::Json(latency.p90);
    latency_obj["p99"] = obs::Json(latency.p99);
    latency_obj["p99.9"] = obs::Json(latency.p999);
    obs::Json::Object report;
    report["commit"] = obs::Json(bench_commit());
    report["rate"] = obs::Json(options.rate);
    report["duration_seconds"] = obs::Json(options.duration_s);
    report["connections"] = obs::Json(static_cast<std::int64_t>(options.connections));
    report["sent"] = obs::Json(static_cast<std::int64_t>(sent));
    report["completed"] = obs::Json(static_cast<std::int64_t>(completed));
    report["errors"] = obs::Json(static_cast<std::int64_t>(errors));
    report["overload_rejections"] = obs::Json(static_cast<std::int64_t>(overloads));
    report["dropped"] = obs::Json(static_cast<std::int64_t>(dropped));
    report["qps"] = obs::Json(qps);
    report["latency_us"] = obs::Json(std::move(latency_obj));
    std::ofstream out(options.bench_out);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", options.bench_out.c_str());
      return 1;
    }
    out << obs::Json(std::move(report)).dump(2) << '\n';
    std::fprintf(stderr, "wrote %s\n", options.bench_out.c_str());
  }

  if (errors > 0 || dropped > 0) return 1;
  if (want_reload && !reload_ok) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{
      "host",       "port",      "replay",          "out",        "rate",
      "duration",   "connections", "top",           "extent",     "quantize",
      "seed",       "reload-at",  "reload-snapshot", "reload-map", "bench-out"};
  const std::set<std::string> flag_keys{"help"};
  std::string error;
  const auto args = util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }
  if (args->flag("help") || !args->has("port")) return usage();
  const std::string host = args->value("host", "127.0.0.1");
  const long port = args->value_int("port", 0);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: --port needs a value in [1, 65535]\n");
    return 2;
  }

  if (args->has("replay")) {
    if (!args->has("out")) {
      std::fprintf(stderr, "error: --replay needs --out\n");
      return 2;
    }
    return run_replay(host, static_cast<std::uint16_t>(port), args->value("replay"),
                      args->value("out"));
  }

  OpenLoopOptions options;
  options.rate = args->value_double("rate", 1000.0);
  options.duration_s = args->value_double("duration", 10.0);
  options.connections = static_cast<std::size_t>(args->value_int("connections", 4));
  options.top = args->value_int("top", 3);
  options.quantize = args->value_double("quantize", 0.0);
  options.seed = static_cast<std::uint64_t>(args->value_int("seed", 42));
  options.reload_at_s = args->value_double("reload-at", -1.0);
  options.reload_snapshot = args->value("reload-snapshot");
  options.reload_map = args->value("reload-map");
  options.bench_out = args->value("bench-out");
  if (options.rate <= 0.0 || options.duration_s <= 0.0 || options.connections == 0 ||
      options.top < 1) {
    std::fprintf(stderr, "error: invalid --rate/--duration/--connections/--top\n");
    return 2;
  }
  if (args->has("extent")) {
    const auto parts = util::split_list(args->value("extent"));
    if (parts.size() != 3) {
      std::fprintf(stderr, "error: --extent needs X,Y,Z\n");
      return 2;
    }
    for (std::size_t i = 0; i < 3; ++i) options.extent[i] = std::stod(parts[i]);
  }
  return run_open_loop(host, static_cast<std::uint16_t>(port), options);
}
