// remgen-profile — inspect a profile JSON written by --profile-out.
//
//   remgen-profile report --in profile.json
//   remgen-profile amdahl --in profile.json [--contexts N]
//
// `report` prints the merged per-phase table (count, total/self wall time,
// % of parent) followed by the Amdahl breakdown. `amdahl` prints only the
// breakdown, with the projected speedup at --contexts execution contexts.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "obs/profile.hpp"
#include "util/args.hpp"

namespace {

using namespace remgen;

int usage() {
  std::fprintf(stderr,
               "remgen-profile — phase-profile inspector\n\n"
               "commands:\n"
               "  report   per-phase timing table + Amdahl breakdown\n"
               "  amdahl   Amdahl breakdown only\n\n"
               "  --in FILE      profile JSON written by --profile-out (required)\n"
               "  --contexts N   project the Amdahl speedup at N contexts\n"
               "                 (default: the contexts recorded in the profile)\n");
  return 2;
}

bool load_report(const std::string& path, obs::ProfileReport& report) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  try {
    report = obs::profile_from_json(obs::Json::parse(buffer.str()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: '%s' is not a profile JSON: %s\n", path.c_str(), e.what());
    return false;
  }
  return true;
}

void print_amdahl(const obs::AmdahlReport& a, std::size_t contexts) {
  std::printf("wall clock       : %.3f s\n", static_cast<double>(a.total_wall_us) / 1e6);
  std::printf("parallel wall    : %.3f s over %llu regions (busy %.3f s)\n",
              static_cast<double>(a.parallel_wall_us) / 1e6,
              static_cast<unsigned long long>(a.regions),
              static_cast<double>(a.parallel_busy_us) / 1e6);
  std::printf("serial fraction  : %.3f\n", a.serial_fraction);
  std::printf("max speedup      : %.2fx (Amdahl limit)\n", a.max_speedup);
  std::printf("speedup at %-5zu : %.2fx\n", contexts, a.speedup_at(contexts));
}

}  // namespace

int main(int argc, char** argv) {
  const std::set<std::string> value_keys{"in", "contexts"};
  const std::set<std::string> flag_keys{"help"};
  std::string error;
  const auto args = util::Args::parse(argc, argv, value_keys, flag_keys, &error);
  if (!args) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return usage();
  }
  const std::string command = args->command();
  if (args->flag("help") || (command != "report" && command != "amdahl")) return usage();
  if (!args->has("in")) {
    std::fprintf(stderr, "error: --in FILE is required\n");
    return usage();
  }

  obs::ProfileReport report;
  if (!load_report(args->value("in"), report)) return 1;

  std::size_t contexts = report.amdahl.contexts;
  if (args->has("contexts")) {
    const long parsed = args->value_int("contexts", 0);
    if (parsed <= 0) {
      std::fprintf(stderr, "--contexts needs a positive integer\n");
      return 2;
    }
    contexts = static_cast<std::size_t>(parsed);
  }

  if (command == "report") {
    if (report.phases.empty()) {
      std::printf("no phases recorded (was profiling enabled?)\n\n");
    } else {
      obs::write_profile_table(std::cout, report);
      std::cout << '\n';
    }
  }
  print_amdahl(report.amdahl, contexts);
  return 0;
}
