#include "lighthouse/lighthouse.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace remgen::lighthouse {

std::vector<BaseStation> standard_two_station_setup(const geom::Aabb& volume) {
  // Opposite upper corners, each yawed to face the volume centre.
  const geom::Vec3 c = volume.center();
  const geom::Vec3 p0{volume.min.x, volume.min.y, volume.max.z};
  const geom::Vec3 p1{volume.max.x, volume.max.y, volume.max.z};
  return {
      {0, p0, std::atan2(c.y - p0.y, c.x - p0.x)},
      {1, p1, std::atan2(c.y - p1.y, c.x - p1.x)},
  };
}

SweepMeasurement SweepModel::true_bearing(const BaseStation& station, const geom::Vec3& tag) {
  const geom::Vec3 d = tag - station.position;
  const double c = std::cos(station.yaw_rad);
  const double s = std::sin(station.yaw_rad);
  const double rx = c * d.x + s * d.y;
  const double ry = -s * d.x + c * d.y;
  SweepMeasurement m;
  m.station_id = station.id;
  m.azimuth_rad = std::atan2(ry, rx);
  m.elevation_rad = std::atan2(d.z, std::sqrt(rx * rx + ry * ry));
  return m;
}

bool SweepModel::visible(const BaseStation& station, const geom::Vec3& tag) const {
  const double distance = station.position.distance_to(tag);
  if (distance > config_.max_range_m || distance < 0.05) return false;
  const SweepMeasurement bearing = true_bearing(station, tag);
  if (std::abs(bearing.azimuth_rad) > config_.fov_rad / 2.0) return false;
  if (std::abs(bearing.elevation_rad) > config_.fov_rad / 2.0) return false;
  // Infrared: any wall blocks the sweep entirely.
  if (floorplan_ != nullptr && !floorplan_->line_of_sight(station.position, tag)) return false;
  return true;
}

std::optional<SweepMeasurement> SweepModel::measure(const BaseStation& station,
                                                    const geom::Vec3& tag,
                                                    util::Rng& rng) const {
  if (!visible(station, tag)) return std::nullopt;
  if (rng.bernoulli(config_.dropout_probability)) return std::nullopt;
  SweepMeasurement m = true_bearing(station, tag);
  m.azimuth_rad += rng.gaussian(0.0, config_.angle_noise_rad);
  m.elevation_rad += rng.gaussian(0.0, config_.angle_noise_rad);
  return m;
}

LighthouseSystem::LighthouseSystem(std::vector<BaseStation> stations,
                                   const geom::Floorplan* floorplan,
                                   const LighthouseConfig& config, util::Rng rng)
    : stations_(std::move(stations)),
      model_(floorplan, config),
      config_(config),
      ekf_(config.ekf),
      rng_(rng) {
  REMGEN_EXPECTS(!stations_.empty());
  REMGEN_EXPECTS(config.sweeps_per_second > 0.0);
  REMGEN_EXPECTS(config.deck_size_m >= 0.0);
  // The 4 photodiodes at the corners of the deck (the UAV flies near-level
  // with yaw 0, so the offsets are world-fixed).
  const double h = config.deck_size_m / 2.0;
  diode_offsets_ = {{-h, -h, 0.0}, {h, -h, 0.0}, {h, h, 0.0}, {-h, h, 0.0}};
  surveyed_stations_ = stations_;
  for (BaseStation& s : surveyed_stations_) {
    s.position += {rng_.gaussian(0.0, config.station_survey_sigma_m),
                   rng_.gaussian(0.0, config.station_survey_sigma_m),
                   rng_.gaussian(0.0, config.station_survey_sigma_m)};
  }
}

void LighthouseSystem::initialize_at(const geom::Vec3& true_position) {
  ekf_.reset(true_position);
}

void LighthouseSystem::step(double dt, const geom::Vec3& true_position,
                            const geom::Vec3& accel_world) {
  REMGEN_EXPECTS(dt > 0.0);
  ekf_.predict(dt, accel_world);
  sweep_debt_ += dt * config_.sweeps_per_second;
  while (sweep_debt_ >= 1.0) {
    sweep_debt_ -= 1.0;
    const std::size_t i = next_station_;
    next_station_ = (next_station_ + 1) % stations_.size();
    const geom::Vec3& diode = diode_offsets_[next_diode_];
    next_diode_ = (next_diode_ + 1) % diode_offsets_.size();

    // The sweep illuminates one photodiode at true_position + diode.
    const auto sweep = model_.measure(stations_[i], true_position + diode, rng_);
    if (!sweep) continue;
    const BaseStation& believed = surveyed_stations_[i];
    // A bearing to (p + diode) from station b equals a bearing to p from a
    // virtual station at (b - diode), which keeps the EKF update generic.
    const geom::Vec3 virtual_origin = believed.position - diode;
    // Honest measurement noise: the optical sweep noise plus the angular
    // bias induced by the station survey error at the current range. Without
    // the survey term the filter becomes overconfident and its innovation
    // gate starts rejecting the (biased) sweeps of the other station.
    const double range =
        std::max(0.3, (ekf_.position() - believed.position).norm());
    const double survey_rad = config_.station_survey_sigma_m / range;
    const double sigma = std::sqrt(config_.angle_noise_rad * config_.angle_noise_rad +
                                   survey_rad * survey_rad);
    bool fused =
        ekf_.update_azimuth(virtual_origin, believed.yaw_rad, sweep->azimuth_rad, sigma);
    fused |= ekf_.update_elevation(virtual_origin, believed.yaw_rad, sweep->elevation_rad,
                                   sigma);
    if (fused) ++sweeps_fused_;
  }
}

}  // namespace remgen::lighthouse
