// Lighthouse infrared positioning — the paper's named future work.
//
// "Future work will focus on integrating the BitCraze's infrared system
// called Lighthouse for UAV localization, which features comparable
// precision, while requiring less anchors and being cheaper. In addition to
// further self-interference mitigation, this effort is expected to make the
// system even easier to deploy."
//
// Model: SteamVR-style base stations sweep the volume with rotating infrared
// planes; the tag's photodiodes recover, per visible station, an azimuth and
// an elevation angle with sub-milliradian noise. The tag fuses these bearing
// measurements in the same EKF the UWB stack uses. Infrared needs line of
// sight (any wall blocks it) and — crucially for REM generation — emits no
// RF, so it cannot interfere with any REM-sampling receiver, in any band.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/floorplan.hpp"
#include "uwb/ekf.hpp"
#include "uwb/positioning.hpp"
#include "util/rng.hpp"

namespace remgen::lighthouse {

/// One wall/tripod-mounted base station. `yaw_rad` is the horizontal facing
/// direction of its optical axis (x-axis of the station frame).
struct BaseStation {
  int id = 0;
  geom::Vec3 position;
  double yaw_rad = 0.0;
};

/// Optical and scheduling parameters of the sweep system.
struct LighthouseConfig {
  double angle_noise_rad = 0.0005;   ///< Per-sweep bearing noise (~0.03 deg).
  double sweeps_per_second = 120.0;  ///< Azimuth+elevation pairs delivered/s
                                     ///< (both stations combined).
  double fov_rad = 2.0;              ///< ~115 deg usable field of view.
  double max_range_m = 6.0;          ///< Optical range of the V2 stations.
  double dropout_probability = 0.02; ///< Occlusion glitches.
  double deck_size_m = 0.03;         ///< Side of the square 4-photodiode deck.
                                     ///< The angular disparity across the
                                     ///< diodes is what makes range observable
                                     ///< from a single base station.
  double station_survey_sigma_m = 0.01;  ///< Stations are surveyed optically,
                                         ///< much tighter than UWB anchors.
  uwb::EkfConfig ekf;
};

/// Places two base stations in opposite upper corners of the volume, facing
/// its centre — the standard two-station deployment.
[[nodiscard]] std::vector<BaseStation> standard_two_station_setup(const geom::Aabb& volume);

/// One simulated sweep observation.
struct SweepMeasurement {
  int station_id = 0;
  double azimuth_rad = 0.0;
  double elevation_rad = 0.0;
};

/// Generates sweep measurements against ground truth (exposed for tests).
class SweepModel {
 public:
  /// `floorplan` may be null (no occlusion checks) and must otherwise
  /// outlive the model.
  SweepModel(const geom::Floorplan* floorplan, const LighthouseConfig& config)
      : floorplan_(floorplan), config_(config) {}

  /// True bearing angles from `station` to `tag` in the station frame.
  [[nodiscard]] static SweepMeasurement true_bearing(const BaseStation& station,
                                                     const geom::Vec3& tag);

  /// True iff the tag is visible: in range, inside the FoV cone, and with
  /// line of sight.
  [[nodiscard]] bool visible(const BaseStation& station, const geom::Vec3& tag) const;

  /// One noisy sweep, or nullopt when the tag is not visible or the sweep
  /// glitched.
  [[nodiscard]] std::optional<SweepMeasurement> measure(const BaseStation& station,
                                                        const geom::Vec3& tag,
                                                        util::Rng& rng) const;

 private:
  const geom::Floorplan* floorplan_;
  LighthouseConfig config_;
};

/// The tag-side Lighthouse stack: sweeps from the visible stations fused by
/// the shared EKF. Drop-in replacement for the UWB LPS on the Crazyflie.
class LighthouseSystem final : public uwb::PositioningSystem {
 public:
  /// Requires at least one station; `floorplan` may be null.
  LighthouseSystem(std::vector<BaseStation> stations, const geom::Floorplan* floorplan,
                   const LighthouseConfig& config, util::Rng rng);

  void initialize_at(const geom::Vec3& true_position) override;
  void step(double dt, const geom::Vec3& true_position,
            const geom::Vec3& accel_world) override;

  [[nodiscard]] geom::Vec3 estimated_position() const override { return ekf_.position(); }
  [[nodiscard]] geom::Vec3 estimated_velocity() const override { return ekf_.velocity(); }
  [[nodiscard]] double position_sigma() const override { return ekf_.position_sigma(); }

  [[nodiscard]] const std::vector<BaseStation>& stations() const noexcept { return stations_; }
  [[nodiscard]] const LighthouseConfig& config() const noexcept { return config_; }

  /// Sweeps accepted by the filter since construction (diagnostics).
  [[nodiscard]] std::size_t sweeps_fused() const noexcept { return sweeps_fused_; }

 private:
  std::vector<BaseStation> stations_;           ///< True poses (generate sweeps).
  std::vector<BaseStation> surveyed_stations_;  ///< What the filter is told.
  SweepModel model_;
  LighthouseConfig config_;
  uwb::Ekf ekf_;
  util::Rng rng_;
  std::vector<geom::Vec3> diode_offsets_;  ///< Photodiode positions on the deck.
  double sweep_debt_ = 0.0;
  std::size_t next_station_ = 0;
  std::size_t next_diode_ = 0;
  std::size_t sweeps_fused_ = 0;
};

}  // namespace remgen::lighthouse
