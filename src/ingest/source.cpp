#include "ingest/source.hpp"

#include <fstream>

#include "data/sample_io.hpp"
#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace remgen::ingest {

StreamFormat stream_format_for_path(std::string_view path) {
  const auto dot = path.rfind('.');
  if (dot == std::string_view::npos) return StreamFormat::Csv;
  const std::string_view ext = path.substr(dot);
  if (ext == ".jsonl" || ext == ".ndjson" || ext == ".json") return StreamFormat::Jsonl;
  return StreamFormat::Csv;
}

FileTailSource::FileTailSource(std::string path, StreamFormat format)
    : path_(std::move(path)), format_(format) {}

std::size_t FileTailSource::poll(data::SampleSink& sink) {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return 0;  // Not created yet; try again next poll.
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in) return 0;

  std::size_t accepted = 0;
  char chunk[1 << 16];
  while (in.read(chunk, sizeof chunk) || in.gcount() > 0) {
    const std::size_t got = static_cast<std::size_t>(in.gcount());
    offset_ += got;
    carry_.append(chunk, got);
    std::size_t start = 0;
    for (std::size_t nl = carry_.find('\n', start); nl != std::string::npos;
         nl = carry_.find('\n', start)) {
      std::string_view line(carry_.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (consume_line(line, sink)) ++accepted;
      start = nl + 1;
    }
    carry_.erase(0, start);
    if (got < sizeof chunk) break;
  }
  return accepted;
}

bool FileTailSource::consume_line(std::string_view text, data::SampleSink& sink) {
  ++stats_.lines;
  if (text.empty()) return false;
  if (format_ == StreamFormat::Csv && stats_.lines == 1 && data::is_sample_csv_header(text)) {
    return false;
  }
  data::Sample sample;
  std::string error;
  const bool ok = format_ == StreamFormat::Csv
                      ? data::parse_csv_sample_line(text, stats_.lines, &sample, &error)
                      : data::parse_jsonl_sample_line(text, stats_.lines, &sample, &error);
  if (!ok) {
    ++stats_.rejected;
    REMGEN_COUNTER_ADD("ingest.rejected_rows", 1);
    util::logf(util::LogLevel::Warn, "ingest", "{}: rejected {}", path_, error);
    return false;
  }
  sink.push(sample);
  ++stats_.accepted;
  return true;
}

}  // namespace remgen::ingest
