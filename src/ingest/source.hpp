// Streaming sample sources: where live rows come from.
//
// The ingest pipeline is a data::SampleSink; a source is whatever feeds it.
// The in-process feed is mission::CampaignConfig::sample_sink (the campaign
// pushes every collected sample during its deterministic merge). This header
// adds the out-of-process feed: FileTailSource follows a growing CSV or
// JSONL file — the idiom of a ground station appending rows as UAVs report —
// delivering each complete new line exactly once. Parsing is the strict
// data/sample_io path: a malformed row is rejected with a line-numbered
// reason, counted in ingest.rejected_rows, and never reaches the live
// dataset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "data/sink.hpp"

namespace remgen::ingest {

/// Wire format of a tailed stream.
enum class StreamFormat {
  Csv,    ///< Canonical dataset CSV (header line optional).
  Jsonl,  ///< One JSON object per line, canonical field names.
};

/// Guesses the format from the file extension (.jsonl/.ndjson/.json ->
/// Jsonl, anything else -> Csv).
[[nodiscard]] StreamFormat stream_format_for_path(std::string_view path);

/// Lifetime tallies of one tail source.
struct TailStats {
  std::uint64_t lines = 0;     ///< Complete lines consumed (header included).
  std::uint64_t accepted = 0;  ///< Samples delivered to the sink.
  std::uint64_t rejected = 0;  ///< Malformed rows dropped (and counted in
                               ///< the ingest.rejected_rows metric).
};

/// Follows a growing file, delivering each complete new line exactly once.
///
/// poll() reads everything appended since the last call, keeps any trailing
/// partial line buffered until its newline arrives, and pushes parsed
/// samples into the sink in file order. A leading canonical CSV header is
/// skipped. Not thread-safe; poll from one thread.
class FileTailSource {
 public:
  FileTailSource(std::string path, StreamFormat format);

  /// Drains newly appended complete lines into `sink`; returns the number of
  /// samples accepted this call. A missing file is "nothing new yet", not an
  /// error (the writer may not have created it).
  std::size_t poll(data::SampleSink& sink);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] StreamFormat format() const noexcept { return format_; }
  [[nodiscard]] const TailStats& stats() const noexcept { return stats_; }

 private:
  /// Parses one complete line; pushes into `sink` on success.
  bool consume_line(std::string_view text, data::SampleSink& sink);

  std::string path_;
  StreamFormat format_;
  std::uint64_t offset_ = 0;  ///< Bytes of the file already consumed.
  std::string carry_;         ///< Trailing partial line awaiting its newline.
  TailStats stats_;
};

}  // namespace remgen::ingest
