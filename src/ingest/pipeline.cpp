#include "ingest/pipeline.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "store/delta.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::ingest {

IngestPipeline::IngestPipeline(IngestConfig config)
    : config_(std::move(config)), index_(config_.kdtree_rebuild_interval) {
  if (!config_.out_dir.empty()) {
    std::filesystem::create_directories(config_.out_dir);
  }
}

void IngestPipeline::push(const data::Sample& sample) {
  live_.push(sample);
  index_.insert(sample.position);
  ++samples_since_epoch_;
  REMGEN_COUNTER_ADD("ingest.samples", 1);

  if (config_.epoch_sim_seconds > 0.0) {
    if (!have_epoch_start_ts_) {
      have_epoch_start_ts_ = true;
      epoch_start_ts_ = sample.timestamp_s;
      max_ts_ = sample.timestamp_s;
    } else if (sample.timestamp_s > max_ts_) {
      max_ts_ = sample.timestamp_s;
    }
  }

  // Triggers read only stream state (counts and sample timestamps), so an
  // epoch cut lands on the same sample no matter how the stream was batched.
  const bool by_count =
      config_.epoch_samples > 0 && samples_since_epoch_ >= config_.epoch_samples;
  const bool by_time = config_.epoch_sim_seconds > 0.0 && have_epoch_start_ts_ &&
                       max_ts_ - epoch_start_ts_ >= config_.epoch_sim_seconds;
  if (by_count || by_time) {
    (void)build_epoch();
  }
}

void IngestPipeline::push_batch(std::span<const data::Sample> samples) {
  for (const data::Sample& sample : samples) push(sample);
}

std::optional<EpochInfo> IngestPipeline::flush() { return build_epoch(); }

std::optional<EpochInfo> IngestPipeline::build_epoch() {
  // Reset the triggers first: even when no MAC passes the gate yet, the
  // decision not to emit consumed this window — the next one starts fresh.
  const std::size_t new_samples = samples_since_epoch_;
  samples_since_epoch_ = 0;
  have_epoch_start_ts_ = false;
  if (new_samples == 0) return std::nullopt;

  EpochInfo info;
  info.total_samples = live_.size();
  const data::Dataset raw = live_.dataset();
  const data::Dataset prepared = live_.prepared(config_.rem.min_samples_per_mac,
                                                &info.dropped_rows);
  if (prepared.empty()) {
    util::logf(util::LogLevel::Info, "ingest",
               "epoch skipped: no MAC at the {}-sample gate yet ({} samples)",
               config_.rem.min_samples_per_mac, live_.size());
    return std::nullopt;
  }

  REMGEN_SPAN("ingest.epoch");
  REMGEN_PROFILE_PHASE("ingest.epoch");
  info.epoch = ++epoch_;
  info.rows = prepared.size();

  // Exactly the batch recipe (remgen campaign --snapshot-out): fresh
  // estimator, fitted + rasterised over the raw stream inside build_rem —
  // the byte-identity anchor against the one-shot build.
  std::unique_ptr<ml::Estimator> model = ml::make_model(config_.model);
  core::RadioEnvironmentMap rem = core::build_rem(raw, *model, config_.volume, config_.rem);

  store::Snapshot snapshot;
  snapshot.dataset = prepared;
  snapshot.rem.emplace(std::move(rem));
  snapshot.model = std::move(model);

  std::ostringstream snap_out;
  store::save_snapshot(snap_out, snapshot);
  latest_snapshot_bytes_ = std::move(snap_out).str();
  latest_delta_bytes_.clear();
  info.snapshot_bytes = latest_snapshot_bytes_.size();

  // Epochs after the first ride as deltas when the pair is delta-able (it
  // always is under the monotone gate; a geometry change falls back to a
  // full emit).
  if (config_.emit_deltas && epoch_ > 1) {
    try {
      const store::SnapshotDelta delta =
          store::make_delta(previous_, snapshot, epoch_ - 1, epoch_);
      std::ostringstream delta_out;
      store::save_delta(delta_out, delta);
      latest_delta_bytes_ = std::move(delta_out).str();
      info.delta = true;
      info.delta_bytes = latest_delta_bytes_.size();
      REMGEN_COUNTER_ADD("ingest.deltas", 1);
    } catch (const std::exception& e) {
      util::logf(util::LogLevel::Warn, "ingest",
                 "epoch {} not delta-able ({}); emitting full snapshot", epoch_, e.what());
    }
  }

  if (!config_.out_dir.empty()) {
    if (info.delta) {
      info.delta_path = util::format("{}/delta-{}.delta", config_.out_dir, epoch_);
      std::ofstream out(info.delta_path, std::ios::binary);
      out.write(latest_delta_bytes_.data(),
                static_cast<std::streamsize>(latest_delta_bytes_.size()));
      if (!out) throw std::runtime_error("ingest: cannot write " + info.delta_path);
    } else {
      info.snapshot_path = util::format("{}/epoch-{}.snap", config_.out_dir, epoch_);
      std::ofstream out(info.snapshot_path, std::ios::binary);
      out.write(latest_snapshot_bytes_.data(),
                static_cast<std::streamsize>(latest_snapshot_bytes_.size()));
      if (!out) throw std::runtime_error("ingest: cannot write " + info.snapshot_path);
    }
  }

  if (config_.server != nullptr) {
    // Build the engine from the serialised bytes: proves the round-trip on
    // every publish and gives the engine its own snapshot copy.
    std::istringstream in(latest_snapshot_bytes_);
    auto engine = std::make_shared<const serve::QueryEngine>(store::load_snapshot(in),
                                                             config_.cache_bytes);
    config_.server->publish(config_.map, std::move(engine), epoch_);
    info.published = true;
    REMGEN_COUNTER_ADD("ingest.publishes", 1);
  }

  previous_ = std::move(snapshot);
  REMGEN_COUNTER_ADD("ingest.epochs", 1);
  REMGEN_GAUGE_SET("ingest.epoch", static_cast<double>(epoch_));
  REMGEN_GAUGE_SET("ingest.live_samples", static_cast<double>(live_.size()));
  util::logf(util::LogLevel::Info, "ingest",
             "epoch {}: {} rows ({} below gate), snapshot {} B{}{}", epoch_, info.rows,
             info.dropped_rows, info.snapshot_bytes,
             info.delta ? util::format(", delta {} B", info.delta_bytes) : std::string(),
             info.published ? ", published" : "");
  history_.push_back(info);
  return info;
}

}  // namespace remgen::ingest
