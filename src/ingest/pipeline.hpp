// IngestPipeline: streaming ingestion with incremental REM epochs.
//
// The batch pipeline is collect -> filter -> fit -> rasterise -> snapshot,
// run once. This subsystem runs the same pipeline continuously: samples
// stream in (from a live mission::Campaign via CampaignConfig::sample_sink,
// or a tailed CSV/JSONL file via ingest::FileTailSource), accumulate in a
// data::LiveDataset (per-MAC incremental stats, arrival order preserved) and
// an ml::DynamicKdTree (buffered inserts, rebuild behind an atomic swap so
// concurrent readers never block). When an epoch trigger fires — every N
// samples, every T sim-seconds of sample timestamps, or an explicit flush()
// — the estimator is refitted (fanning out on the shared exec pool), the REM
// re-rasterised, and a versioned snapshot emitted: the first epoch as a full
// REMSNAP1, later epochs additionally as a REMDELT1 delta against the
// previous epoch (store/delta.hpp), both CRC-checked. The snapshot is
// hot-published into a net::Server as a ready QueryEngine tagged with the
// monotonic epoch id (surfaced in "stats" and net.map.<name>.epoch).
//
// Determinism: every trigger depends only on the sample stream, never on
// wall clock or thread timing, and each epoch build takes exactly the batch
// path (same filter, fresh estimator, same rasteriser). Identical streams +
// seeds therefore produce byte-identical epoch artefacts at any --threads,
// and the final flushed epoch is byte-identical to the one-shot batch build
// over the union of the stream — regardless of how the stream was split
// into pushes. Not thread-safe: one producer thread pushes; the published
// engines and the KD index are the concurrent-reader surfaces.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/rem_builder.hpp"
#include "data/live_dataset.hpp"
#include "data/sink.hpp"
#include "geom/aabb.hpp"
#include "ml/kdtree_dynamic.hpp"
#include "ml/model_zoo.hpp"
#include "store/snapshot.hpp"

namespace remgen::net {
class Server;
}  // namespace remgen::net

namespace remgen::ingest {

struct IngestConfig {
  ml::ModelKind model = ml::ModelKind::KnnScaled16;  ///< Refitted every epoch.
  geom::Aabb volume{{0.0, 0.0, 0.0}, {3.74, 3.20, 2.10}};  ///< Raster bounds
                                                           ///< (paper apartment).
  core::RemBuilderConfig rem;        ///< Voxel size + the >= 16-sample MAC gate.

  // Epoch triggers (both optional; either firing builds an epoch).
  std::size_t epoch_samples = 0;     ///< Build every N accepted samples (0 = off).
  double epoch_sim_seconds = 0.0;    ///< Build every T seconds of sample
                                     ///< timestamps (0 = off). Sim time, not
                                     ///< wall clock: deterministic.

  bool emit_deltas = true;           ///< Emit REMDELT1 for epochs after the first.
  std::size_t kdtree_rebuild_interval = 1024;  ///< DynamicKdTree buffer bound.
  std::string out_dir;               ///< Write epoch files here ("" = in-memory only).
  std::size_t cache_bytes = 64 << 20;  ///< Result-cache budget of published engines.

  net::Server* server = nullptr;     ///< Hot-publish target (not owned; optional).
  std::string map = "rem";           ///< Map name published under.
};

/// What one epoch produced.
struct EpochInfo {
  std::uint64_t epoch = 0;           ///< Monotonic, starting at 1.
  std::size_t total_samples = 0;     ///< Live samples when the epoch was cut.
  std::size_t rows = 0;              ///< Prepared rows in the snapshot.
  std::size_t dropped_rows = 0;      ///< Rows below the MAC gate this epoch.
  std::size_t snapshot_bytes = 0;    ///< Serialised REMSNAP1 size.
  bool delta = false;                ///< A REMDELT1 was emitted for this epoch.
  std::size_t delta_bytes = 0;       ///< Serialised delta size (0 when !delta).
  std::string snapshot_path;         ///< File written ("" unless out_dir set;
                                     ///< full epochs only).
  std::string delta_path;            ///< Delta file written ("" when !delta).
  bool published = false;            ///< Handed to the net::Server.
};

/// The streaming half of REM generation. See the header comment.
class IngestPipeline final : public data::SampleSink {
 public:
  explicit IngestPipeline(IngestConfig config);

  /// Accepts one sample; builds + publishes an epoch when a trigger fires.
  void push(const data::Sample& sample) override;
  void push_batch(std::span<const data::Sample> samples) override;

  /// Explicit epoch trigger: builds from everything ingested since the last
  /// epoch. Returns the epoch's info, or nullopt when there is nothing new
  /// or no MAC passes the gate yet.
  std::optional<EpochInfo> flush();

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t samples() const noexcept { return live_.size(); }
  [[nodiscard]] const data::LiveDataset& live() const noexcept { return live_; }
  /// Concurrent-reader point index over every ingested sample position.
  [[nodiscard]] const ml::DynamicKdTree& index() const noexcept { return index_; }
  [[nodiscard]] ml::DynamicKdTree& index() noexcept { return index_; }
  /// Serialised REMSNAP1 of the latest epoch (empty before the first).
  [[nodiscard]] const std::string& latest_snapshot_bytes() const noexcept {
    return latest_snapshot_bytes_;
  }
  /// Serialised REMDELT1 of the latest epoch ("" when it was a full emit).
  [[nodiscard]] const std::string& latest_delta_bytes() const noexcept {
    return latest_delta_bytes_;
  }
  [[nodiscard]] const std::vector<EpochInfo>& history() const noexcept { return history_; }
  [[nodiscard]] const IngestConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] std::optional<EpochInfo> build_epoch();

  IngestConfig config_;
  data::LiveDataset live_;
  ml::DynamicKdTree index_;
  std::uint64_t epoch_ = 0;
  std::size_t samples_since_epoch_ = 0;
  bool have_epoch_start_ts_ = false;
  double epoch_start_ts_ = 0.0;    ///< First timestamp after the last epoch.
  double max_ts_ = 0.0;            ///< Largest timestamp seen (stream clock).
  store::Snapshot previous_;       ///< Base for the next delta.
  std::string latest_snapshot_bytes_;
  std::string latest_delta_bytes_;
  std::vector<EpochInfo> history_;
};

}  // namespace remgen::ingest
