// Minimal JSON document: build, serialise, parse.
//
// Covers exactly what the telemetry exporters and their tests need — objects
// (sorted keys, so serialisation is deterministic), arrays, strings with the
// standard escapes, finite doubles, booleans and null. Integer tokens that
// fit std::int64_t are kept as integers end to end (parse, store, dump), so
// 64-bit identifiers — serve-protocol request ids above 2^53, for one —
// round-trip exactly instead of being flattened through double. parse()
// accepts the exporters' own output plus ordinary hand-written JSON; errors
// throw std::runtime_error with an offset. Not a general-purpose library: no
// comments, no NaN/Inf literals, no duplicate-key preservation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace remgen::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool value) : value_(value) {}
  Json(double value) : value_(value) {}
  Json(int value) : value_(static_cast<std::int64_t>(value)) {}
  Json(std::int64_t value) : value_(value) {}
  // Unsigned values beyond int64 range fall back to double (lossy, as
  // before); everything smaller stays exact.
  Json(std::uint64_t value)
      : value_(value <= 0x7fffffffffffffffULL
                   ? Value(static_cast<std::int64_t>(value))
                   : Value(static_cast<double>(value))) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(Array value) : value_(std::move(value)) {}
  Json(Object value) : value_(std::move(value)) {}

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(value_) ||
           std::holds_alternative<std::int64_t>(value_);
  }
  /// True only for numbers held as exact integers (integer token on parse,
  /// or an integer-typed constructor).
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(value_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(value_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  /// as_double() accepts either number representation (integers convert, so
  /// existing numeric callers never care which one parse() chose);
  /// as_int64() requires the exact-integer representation.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  /// Object member access; at() throws when missing, contains() probes.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Inserts null (converting this value to an object if null) when missing.
  [[nodiscard]] Json& operator[](const std::string& key);

  /// Serialises. indent < 0 -> compact one-line; otherwise pretty-printed
  /// with `indent` spaces per level. Object keys come out sorted.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete JSON document (trailing whitespace allowed, trailing
  /// garbage is an error). Throws std::runtime_error on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  using Value =
      std::variant<std::nullptr_t, bool, double, std::int64_t, std::string, Array, Object>;
  Value value_;
};

/// Escapes `text` into a quoted JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace remgen::obs
