#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <set>
#include <span>
#include <string_view>

#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::obs {

namespace {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
/// map onto a "remgen_" prefix with separators folded to underscores.
std::string prometheus_name(std::string_view name) {
  std::string out = "remgen_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Sanitisation is lossy ("a.b" and "a_b" both fold to "remgen_a_b"), so
/// emitted names are assigned through this collision tracker: the first raw
/// name wins the plain form, later colliders get a "_dup2"/"_dup3" suffix —
/// a scrape therefore never contains duplicate series. Histograms reserve
/// their whole derived family (_bucket/_sum/_count) so a gauge named e.g.
/// "x_count" cannot collide with histogram "x"'s count series either.
class PrometheusNamer {
 public:
  /// Returns a unique emitted base name for `raw` (+ optional type suffix,
  /// e.g. "_total"), reserving `family` suffixes derived from it too.
  std::string assign(std::string_view raw, std::string_view type_suffix,
                     std::span<const std::string_view> family = {}) {
    const std::string base = prometheus_name(raw) + std::string(type_suffix);
    for (int attempt = 1;; ++attempt) {
      const std::string candidate =
          attempt == 1 ? base : base + "_dup" + std::to_string(attempt);
      if (is_free(candidate, family)) {
        reserve(candidate, family);
        return candidate;
      }
    }
  }

 private:
  [[nodiscard]] bool is_free(const std::string& candidate,
                             std::span<const std::string_view> family) const {
    if (used_.count(candidate) != 0) return false;
    for (const std::string_view suffix : family) {
      if (used_.count(candidate + std::string(suffix)) != 0) return false;
    }
    return true;
  }

  void reserve(const std::string& candidate, std::span<const std::string_view> family) {
    used_.insert(candidate);
    for (const std::string_view suffix : family) used_.insert(candidate + std::string(suffix));
  }

  std::set<std::string> used_;
};

constexpr std::string_view kHistogramFamily[] = {"_bucket", "_sum", "_count"};

std::string bound_label(double bound) {
  if (bound == static_cast<double>(static_cast<long long>(bound))) {
    return util::format("{}", static_cast<long long>(bound));
  }
  // Shortest %g form that round-trips, so le="1.5" rather than le="1.500000"
  // and scrape labels stay stable across writers.
  for (int precision = 1; precision <= 17; ++precision) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, bound);
    if (std::strtod(buffer, nullptr) == bound) return buffer;
  }
  return util::format("{:.17g}", bound);
}

}  // namespace

Json metrics_to_json(const MetricsSnapshot& snapshot) {
  Json::Object counters;
  for (const auto& [name, value] : snapshot.counters) counters[name] = value;
  Json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) gauges[name] = value;
  Json::Object histograms;
  for (const auto& [name, h] : snapshot.histograms) {
    Json::Array bounds;
    for (const double b : h.upper_bounds) bounds.emplace_back(b);
    Json::Array buckets;
    for (const std::uint64_t c : h.bucket_counts) buckets.emplace_back(c);
    Json::Object entry;
    entry["upper_bounds"] = Json(std::move(bounds));
    entry["bucket_counts"] = Json(std::move(buckets));
    entry["count"] = h.count;
    entry["sum"] = h.sum;
    histograms[name] = Json(std::move(entry));
  }
  Json::Object root;
  root["counters"] = Json(std::move(counters));
  root["gauges"] = Json(std::move(gauges));
  root["histograms"] = Json(std::move(histograms));
  return Json(std::move(root));
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << metrics_to_json(snapshot).dump(2) << '\n';
}

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  PrometheusNamer namer;
  const auto help = [&out](const std::string& pname, const std::string& raw) {
    out << "# HELP " << pname << " remgen metric '" << raw << "'\n";
  };
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = namer.assign(name, "_total");
    help(pname, name);
    out << "# TYPE " << pname << " counter\n" << pname << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = namer.assign(name, "");
    help(pname, name);
    out << "# TYPE " << pname << " gauge\n"
        << pname << ' ' << util::format("{:.17g}", value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string pname = namer.assign(name, "", kHistogramFamily);
    help(pname, name);
    out << "# TYPE " << pname << " histogram\n";
    // Prometheus buckets are cumulative.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out << pname << "_bucket{le=\"" << bound_label(h.upper_bounds[i]) << "\"} " << cumulative
          << '\n';
    }
    out << pname << "_bucket{le=\"+Inf\"} " << h.count << '\n';
    out << pname << "_sum " << util::format("{:.17g}", h.sum) << '\n';
    out << pname << "_count " << h.count << '\n';
  }
}

Json trace_to_json(const TraceExport& input) {
  Json::Array events;
  events.reserve(input.spans.size() + input.tasks.size() + input.thread_names.size());
  // thread_name metadata first: chrome://tracing applies it to the whole
  // document regardless of position, but leading with it keeps the file
  // human-skimmable.
  for (const auto& [tid, name] : input.thread_names) {
    Json::Object event;
    event["name"] = "thread_name";
    event["ph"] = "M";
    event["pid"] = 1;
    event["tid"] = static_cast<std::uint64_t>(tid);
    event["args"] = Json(Json::Object{{"name", Json(name)}});
    events.push_back(Json(std::move(event)));
  }
  for (const SpanRecord& r : input.spans) {
    Json::Object event;
    event["name"] = r.name;
    event["cat"] = r.category;
    event["ph"] = std::string(1, r.phase);
    event["pid"] = 1;
    event["tid"] = static_cast<std::uint64_t>(r.tid);
    event["ts"] = r.start_us;
    if (r.phase == 'X') event["dur"] = r.dur_us;
    if (r.phase == 'i') event["s"] = "t";  // thread-scoped instant
    Json::Object args;
    args["span_id"] = r.id;
    if (r.parent_id != 0) args["parent_id"] = r.parent_id;
    args["depth"] = static_cast<std::uint64_t>(r.depth);
    args["sim_start_s"] = r.sim_start_s;
    if (r.phase == 'X') {
      args["sim_end_s"] = r.sim_end_s;
      args["sim_dur_s"] = r.sim_end_s - r.sim_start_s;
    }
    for (const auto& [key, value] : r.args) args[key] = value;
    event["args"] = Json(std::move(args));
    events.push_back(Json(std::move(event)));
  }
  // Thread-pool chunks as per-thread lanes: each event renders on the lane
  // of the thread that executed it, alongside any spans that thread opened.
  for (const TaskEvent& t : input.tasks) {
    Json::Object event;
    event["name"] = t.label;
    event["cat"] = "exec.task";
    event["ph"] = "X";
    event["pid"] = 1;
    event["tid"] = static_cast<std::uint64_t>(t.tid);
    event["ts"] = t.start_us;
    event["dur"] = t.end_us - t.start_us;
    Json::Object args;
    args["region"] = t.region_id;
    args["chunk"] = static_cast<std::uint64_t>(t.chunk_index);
    args["worker"] = static_cast<std::uint64_t>(t.worker);
    args["wait_us"] = t.wait_us;
    args["idle_us"] = t.idle_us;
    event["args"] = Json(std::move(args));
    events.push_back(Json(std::move(event)));
  }
  Json::Object root;
  root["traceEvents"] = Json(std::move(events));
  root["displayTimeUnit"] = "ms";
  root["droppedSpans"] = input.dropped_spans;
  Json::Object dropped_by_thread;
  for (const auto& [tid, count] : input.dropped_by_thread) {
    dropped_by_thread[util::format("{}", tid)] = count;
  }
  root["droppedSpansByThread"] = Json(std::move(dropped_by_thread));
  root["droppedTaskEvents"] = input.dropped_task_events;
  return Json(std::move(root));
}

Json trace_to_json(std::span<const SpanRecord> records, std::uint64_t dropped_spans) {
  TraceExport input;
  input.spans = records;
  input.dropped_spans = dropped_spans;
  return trace_to_json(input);
}

void write_chrome_trace(std::ostream& out, const TraceExport& input) {
  out << trace_to_json(input).dump(1) << '\n';
}

void write_chrome_trace(std::ostream& out, std::span<const SpanRecord> records,
                        std::uint64_t dropped_spans) {
  TraceExport input;
  input.spans = records;
  input.dropped_spans = dropped_spans;
  write_chrome_trace(out, input);
}

namespace {

template <typename WriteFn>
bool export_to_file(const std::string& path, const char* what, WriteFn&& write) {
  std::ofstream out(path);
  if (!out) {
    util::logf(util::LogLevel::Warn, "obs", "cannot open {} for {} export", path, what);
    return false;
  }
  write(out);
  return bool(out);
}

}  // namespace

bool export_metrics_json_file(const std::string& path) {
  return export_to_file(path, "metrics", [](std::ostream& out) {
    write_metrics_json(out, registry().snapshot());
  });
}

bool export_prometheus_file(const std::string& path) {
  return export_to_file(path, "prometheus", [](std::ostream& out) {
    write_prometheus(out, registry().snapshot());
  });
}

bool export_trace_file(const std::string& path) {
  if (trace().dropped() > 0) {
    util::logf(util::LogLevel::Warn, "obs", "trace buffer overflowed; {} spans dropped",
               trace().dropped());
  }
  const std::vector<SpanRecord> records = trace().snapshot();
  const std::vector<TaskEvent> tasks = task_events_snapshot();
  TraceExport input;
  input.spans = records;
  input.tasks = tasks;
  input.thread_names = trace().thread_names();
  input.dropped_spans = trace().dropped();
  input.dropped_by_thread = trace().dropped_by_thread();
  input.dropped_task_events = task_events_dropped();
  return export_to_file(path, "trace", [&input](std::ostream& out) {
    write_chrome_trace(out, input);
  });
}

}  // namespace remgen::obs
