// Telemetry exporters: Prometheus text exposition for the metrics registry,
// a JSON metrics snapshot, and Chrome trace_event JSON that opens directly in
// chrome://tracing / Perfetto.
#pragma once

#include <iosfwd>
#include <map>
#include <span>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"

namespace remgen::obs {

/// Metrics snapshot as a JSON document:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"buckets": ...}}}.
[[nodiscard]] Json metrics_to_json(const MetricsSnapshot& snapshot);
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// Prometheus text exposition (# HELP/# TYPE lines, histograms with
/// _bucket/_sum/_count series). Metric names are sanitised
/// ("campaign.samples_collected" -> "remgen_campaign_samples_collected_total");
/// sanitisation collisions ("a.b" vs "a_b") are detected and deduplicated
/// with a "_dupN" suffix so a scrape never contains duplicate series.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

/// Everything one Chrome-trace document carries: spans, per-chunk task
/// events from the thread pool (rendered as per-thread lanes), registered
/// thread names (emitted as thread_name metadata events), and drop counts.
struct TraceExport {
  std::span<const SpanRecord> spans;
  std::span<const TaskEvent> tasks;
  std::map<std::uint32_t, std::string> thread_names;
  std::uint64_t dropped_spans = 0;
  std::map<std::uint32_t, std::uint64_t> dropped_by_thread;
  std::uint64_t dropped_task_events = 0;
};

/// Chrome trace_event JSON ({"traceEvents": [...], "droppedSpans": N,
/// "droppedSpansByThread": {...}}); complete spans become "ph":"X" events and
/// instants "ph":"i", with sim-clock bounds and span ids/parents carried in
/// "args". Task events become "cat":"exec.task" X events on their executing
/// thread's lane; thread names come out as "thread_name" metadata so lanes
/// read as main / worker-N in chrome://tracing and Perfetto. The drop counts
/// are surfaced in the document root so a trace that stops mid-run is
/// distinguishable from a short run.
[[nodiscard]] Json trace_to_json(const TraceExport& input);
[[nodiscard]] Json trace_to_json(std::span<const SpanRecord> records,
                                 std::uint64_t dropped_spans = 0);
void write_chrome_trace(std::ostream& out, const TraceExport& input);
void write_chrome_trace(std::ostream& out, std::span<const SpanRecord> records,
                        std::uint64_t dropped_spans = 0);

/// Convenience file sinks over the global registry / trace buffer. Return
/// false (and log a warning) when the file cannot be written.
bool export_metrics_json_file(const std::string& path);
bool export_prometheus_file(const std::string& path);
bool export_trace_file(const std::string& path);

}  // namespace remgen::obs
