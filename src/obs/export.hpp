// Telemetry exporters: Prometheus text exposition for the metrics registry,
// a JSON metrics snapshot, and Chrome trace_event JSON that opens directly in
// chrome://tracing / Perfetto.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace remgen::obs {

/// Metrics snapshot as a JSON document:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {"buckets": ...}}}.
[[nodiscard]] Json metrics_to_json(const MetricsSnapshot& snapshot);
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// Prometheus text exposition (# TYPE lines, histograms with _bucket/_sum/
/// _count series). Metric names are sanitised ("campaign.samples_collected"
/// -> "remgen_campaign_samples_collected_total").
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

/// Chrome trace_event JSON ({"traceEvents": [...], "droppedSpans": N});
/// complete spans become "ph":"X" events and instants "ph":"i", with
/// sim-clock bounds and span ids/parents carried in "args". `dropped_spans`
/// is the recorder's saturation count, surfaced in the document root so a
/// trace that stops mid-run is distinguishable from a short run.
[[nodiscard]] Json trace_to_json(std::span<const SpanRecord> records,
                                 std::uint64_t dropped_spans = 0);
void write_chrome_trace(std::ostream& out, std::span<const SpanRecord> records,
                        std::uint64_t dropped_spans = 0);

/// Convenience file sinks over the global registry / trace buffer. Return
/// false (and log a warning) when the file cannot be written.
bool export_metrics_json_file(const std::string& path);
bool export_prometheus_file(const std::string& path);
bool export_trace_file(const std::string& path);

}  // namespace remgen::obs
