#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/fmt.hpp"

namespace remgen::obs {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t offset) {
  throw std::runtime_error(util::format("json: {} at offset {}", what, offset));
}

/// Shortest representation that round-trips a double and stays valid JSON.
std::string number_to_string(double value) {
  if (!std::isfinite(value)) throw std::runtime_error("json: non-finite number");
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::abs(value) < 1e15) {
    return util::format("{}", static_cast<long long>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(util::format("expected '{}'", std::string(1, c)), pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal", pos_);
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal", pos_);
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal", pos_);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(object));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out); break;
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  void append_codepoint(std::string& out) {
    if (pos_ + 4 > text_.size()) fail("bad \\u escape", pos_);
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad \\u escape", pos_ - 1);
    }
    // UTF-8 encode the BMP codepoint (surrogate pairs are passed through as
    // two separate 3-byte sequences; the exporters never emit them).
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected value", pos_);
    const std::string token(text_.substr(start, pos_ - start));
    // Integer tokens that fit int64 keep their exact value; everything else
    // (fractions, exponents, out-of-range integers) falls back to double.
    if (token.find_first_of(".eE") == std::string::npos) {
      try {
        std::size_t consumed = 0;
        const std::int64_t value = std::stoll(token, &consumed);
        if (consumed == token.size()) return Json(value);
      } catch (const std::out_of_range&) {
        // Magnitude beyond int64: double below is the best representation.
      } catch (const std::invalid_argument&) {
        // Malformed (e.g. lone '-'): the double path rejects it too.
      }
    }
    try {
      std::size_t consumed = 0;
      const double value = std::stod(token, &consumed);
      if (consumed != token.size()) fail("bad number", start);
      return Json(value);
    } catch (const std::logic_error&) {
      fail("bad number", start);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_value(const Json& value, std::string& out, int indent, int depth);

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(const Json& value, std::string& out, int indent, int depth) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_int()) {
    out += std::to_string(value.as_int64());
  } else if (value.is_number()) {
    out += number_to_string(value.as_double());
  } else if (value.is_string()) {
    out += json_escape(value.as_string());
  } else if (value.is_array()) {
    const Json::Array& array = value.as_array();
    if (array.empty()) {
      out += "[]";
      return;
    }
    out.push_back('[');
    for (std::size_t i = 0; i < array.size(); ++i) {
      if (i != 0) out.push_back(',');
      append_newline_indent(out, indent, depth + 1);
      dump_value(array[i], out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back(']');
  } else {
    const Json::Object& object = value.as_object();
    if (object.empty()) {
      out += "{}";
      return;
    }
    out.push_back('{');
    bool first = true;
    for (const auto& [key, member] : object) {
      if (!first) out.push_back(',');
      first = false;
      append_newline_indent(out, indent, depth + 1);
      out += json_escape(key);
      out.push_back(':');
      if (indent >= 0) out.push_back(' ');
      dump_value(member, out, indent, depth + 1);
    }
    append_newline_indent(out, indent, depth);
    out.push_back('}');
  }
}

}  // namespace

bool Json::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (!is_number()) throw std::runtime_error("json: not a number");
  return std::get<double>(value_);
}

std::int64_t Json::as_int64() const {
  if (!is_int()) throw std::runtime_error("json: not an integer");
  return std::get<std::int64_t>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
  const Object& object = as_object();
  const auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  return as_object()[key];
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace remgen::obs
