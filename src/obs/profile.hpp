// Performance profiler: scoped phase accumulation, per-task execution
// tracing, and an Amdahl (serial-fraction) breakdown.
//
// Three cooperating pieces, all opt-in at runtime:
//
//  * Phases — REMGEN_PROFILE_PHASE("rem.predict.knn") opens an RAII scope
//    that accumulates count and inclusive wall time into a thread-local
//    phase tree. Trees from every thread (pool workers included) merge by
//    name into one deterministic report: sibling order is sorted, counts
//    are schedule-independent, so the aggregated phase structure is
//    identical at every --threads value (wall times are, of course, honest
//    measurements and vary run to run). Pool workers adopt the submitting
//    thread's open phase path, so a phase entered inside a parallel body
//    lands under the same ancestors at any width.
//
//  * Task trace — exec::ThreadPool records one TaskEvent per executed chunk
//    (enqueue/start/end timestamps, worker id, region label) into lock-free
//    per-thread buffers (single-producer append with a release-published
//    size; the exporter is the only reader). Events compose with --trace-out
//    as per-thread lanes in Chrome tracing.
//
//  * Amdahl accounting — every parallelizable region (a parallel_for, at any
//    width, including the width-1 sequential fallback) reports its wall
//    time; the report derives the measured serial fraction
//    s = 1 - parallel_wall / total_wall and the implied max speedup 1/s.
//
// Like the metrics registry, everything is gated: compiled out entirely
// under -DREMGEN_OBS=OFF, and a disabled phase costs one relaxed load and a
// branch at runtime.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace remgen::obs {

namespace detail {
inline std::atomic<bool> g_profiling_enabled{false};
}  // namespace detail

#if defined(REMGEN_OBS_DISABLED)
inline constexpr bool profiling_enabled() noexcept { return false; }
inline void set_profiling_enabled(bool) noexcept {}
#else
inline bool profiling_enabled() noexcept {
  return detail::g_profiling_enabled.load(std::memory_order_relaxed);
}
/// Enabling (re)starts the profile wall-clock epoch; disabling freezes it.
void set_profiling_enabled(bool on) noexcept;
#endif

/// RAII scoped phase. Inactive (one relaxed load + branch) when profiling is
/// off at construction time.
class ProfilePhase {
 public:
  explicit ProfilePhase(std::string_view name);
  ~ProfilePhase();
  ProfilePhase(const ProfilePhase&) = delete;
  ProfilePhase& operator=(const ProfilePhase&) = delete;

 private:
  bool active_ = false;
};

/// The chain of open phase names on the calling thread, outermost first.
/// Captured by exec::ThreadPool when a region is submitted so workers can
/// adopt it.
[[nodiscard]] std::vector<std::string> current_phase_path();

/// Installs a phase path as context (no timing) for the current thread while
/// in scope — a no-op when the thread already has open phases (the
/// submitting thread draining its own region) or when profiling is off.
class ProfileContext {
 public:
  explicit ProfileContext(const std::vector<std::string>* path);
  ~ProfileContext();
  ProfileContext(const ProfileContext&) = delete;
  ProfileContext& operator=(const ProfileContext&) = delete;

 private:
  int pushed_ = 0;
};

/// One executed thread-pool chunk.
struct TaskEvent {
  std::string label;          ///< Region label ("rem.voxel_sweep", ...).
  std::uint64_t region_id = 0;
  std::uint32_t chunk_index = 0;
  std::uint32_t worker = 0;       ///< 0 = submitting thread, 1..N = pool worker.
  std::uint32_t tid = 0;          ///< obs trace tid of the executing thread.
  std::uint64_t enqueue_us = 0;   ///< Region submission time.
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  std::uint64_t wait_us = 0;      ///< start - enqueue (queue wait).
  std::uint64_t idle_us = 0;      ///< Gap since this worker's previous chunk
                                  ///< in the same region (0 for its first).
};

/// Appends into the calling thread's buffer (single-producer, lock-free).
void record_task_event(TaskEvent event);

/// Every recorded task event, sorted by (region_id, chunk_index) — a
/// deterministic order at any thread count.
[[nodiscard]] std::vector<TaskEvent> task_events_snapshot();

/// Events dropped across all per-thread buffers (capacity saturation).
[[nodiscard]] std::uint64_t task_events_dropped();

/// Amdahl accounting hook: exec reports each top-level parallelizable
/// region's wall time and summed busy (chunk execution) time.
void note_parallel_region(std::uint64_t wall_us, std::uint64_t busy_us,
                          std::size_t contexts);

/// One row of the merged phase table, in depth-first order with siblings
/// sorted by name.
struct PhaseStats {
  std::string path;   ///< "rem.build/rem.voxel_sweep/ml.knn.predict".
  std::string name;   ///< Leaf component of `path`.
  std::uint32_t depth = 0;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;  ///< Inclusive wall time, summed over threads.
  std::uint64_t self_us = 0;   ///< total - children (clamped at 0: parallel
                               ///< children can overlap the parent's wall).
  double percent_of_parent = 0.0;  ///< 100 * total / parent total (of the
                                   ///< profiled wall clock for root phases;
                                   ///< can exceed 100 under parallelism).
};

/// The measured serial fraction and what it implies.
struct AmdahlReport {
  std::uint64_t total_wall_us = 0;     ///< Profiling-enabled epoch to report.
  std::uint64_t parallel_wall_us = 0;  ///< Sum of parallelizable-region walls.
  std::uint64_t parallel_busy_us = 0;  ///< Summed chunk execution time.
  std::uint64_t regions = 0;
  std::size_t contexts = 1;        ///< Execution contexts of the last region.
  double serial_fraction = 1.0;    ///< 1 - parallel_wall / total_wall.
  double max_speedup = 1.0;        ///< 1 / serial_fraction (Amdahl limit).
  /// Amdahl's law at `n` contexts: 1 / (s + (1-s)/n).
  [[nodiscard]] double speedup_at(std::size_t n) const;
};

/// The merged profile: phase table + Amdahl breakdown + task-trace tallies.
struct ProfileReport {
  std::vector<PhaseStats> phases;
  AmdahlReport amdahl;
  double coverage = 0.0;  ///< Root-phase wall over total wall, 0..1+.
  std::uint64_t task_events = 0;
  std::uint64_t task_events_dropped = 0;
};

/// Merges every thread's phase tree and task buffer into one report.
/// Deterministic: phases come out in sorted depth-first order with
/// schedule-independent counts. Call after parallel regions have drained.
[[nodiscard]] ProfileReport profile_report();

/// Clears phase trees, task buffers and Amdahl accumulators, and restarts
/// the profile wall-clock epoch.
void reset_profiling();

/// JSON round-trip for --profile-out and the remgen-profile report tool.
[[nodiscard]] Json profile_to_json(const ProfileReport& report);
[[nodiscard]] ProfileReport profile_from_json(const Json& doc);

/// Human-readable per-phase table plus the Amdahl breakdown.
void write_profile_table(std::ostream& out, const ProfileReport& report);

/// Writes profile_report() as JSON. False (with a warning) on I/O failure.
bool export_profile_json_file(const std::string& path);

}  // namespace remgen::obs

/// Scoped profile phase covering the rest of the enclosing block.
#define REMGEN_PROFILE_PHASE(name) \
  ::remgen::obs::ProfilePhase REMGEN_OBS_CONCAT_(remgen_obs_phase_, __LINE__)(name)
