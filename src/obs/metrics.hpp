// Process-wide telemetry: a thread-safe metrics registry of monotonic
// counters, gauges and fixed-bucket histograms.
//
// Recording is lock-free (relaxed atomics) so future parallel stages can
// record without contention; only the first name lookup takes the registry
// mutex, and the instrumentation macros cache that lookup in a function-local
// static. Telemetry is gated twice:
//
//  * compile time — configure with -DREMGEN_OBS=OFF to define
//    REMGEN_OBS_DISABLED; `enabled()` becomes a constant `false` and every
//    instrumentation site folds away;
//  * run time — off by default, switched on with obs::set_enabled(true)
//    (the CLI does this when --metrics-out/--trace-out is given). When off,
//    an instrumentation site costs one relaxed load and a branch.
//
// Registered metrics live for the lifetime of the process: references
// returned by the registry are never invalidated (reset() zeroes values, it
// does not remove metrics), which is what makes the static caching sound.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace remgen::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

#if defined(REMGEN_OBS_DISABLED)
/// True when instrumentation was compiled in (-DREMGEN_OBS=ON, the default).
inline constexpr bool compiled() noexcept { return false; }
/// Runtime master switch; constant false when compiled out.
inline constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
inline constexpr bool compiled() noexcept { return true; }
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus semantics: bucket i counts observations
/// <= upper_bounds[i]; one implicit +Inf bucket catches the rest).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size() == upper_bounds().size() + 1 (last is +Inf).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Read-only copy of one histogram, for exporters.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< One extra for +Inf.
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Deterministic (name-sorted) copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Thread-safe name -> metric map. Lookup takes a mutex; the returned
/// references stay valid for the process lifetime.
class Registry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// The bounds are fixed by the first registration of `name`; later calls
  /// ignore `upper_bounds` and return the existing histogram.
  [[nodiscard]] Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric's value. Does NOT remove metrics (references stay
  /// valid), so cached instrumentation sites keep working.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every instrumentation site records into.
[[nodiscard]] Registry& registry();

}  // namespace remgen::obs

// Instrumentation macros. Each expansion caches its registry lookup in a
// block-scoped static, so steady state is one relaxed load, one branch and
// one relaxed atomic RMW. Names must be literals (the cache binds to the
// first name seen); use obs::registry() directly for dynamic names.
#define REMGEN_COUNTER_ADD(name, delta)                                             \
  do {                                                                              \
    if (::remgen::obs::enabled()) {                                                 \
      static ::remgen::obs::Counter& remgen_obs_counter_ =                          \
          ::remgen::obs::registry().counter(name);                                  \
      remgen_obs_counter_.add(static_cast<std::uint64_t>(delta));                   \
    }                                                                               \
  } while (0)

#define REMGEN_GAUGE_SET(name, value)                                               \
  do {                                                                              \
    if (::remgen::obs::enabled()) {                                                 \
      static ::remgen::obs::Gauge& remgen_obs_gauge_ =                              \
          ::remgen::obs::registry().gauge(name);                                    \
      remgen_obs_gauge_.set(static_cast<double>(value));                            \
    }                                                                               \
  } while (0)

// Trailing argument is the bucket list as a braced initializer, e.g.
//   REMGEN_HISTOGRAM_OBSERVE("radio.scan_detections", n, {1, 2, 4, 8, 16});
#define REMGEN_HISTOGRAM_OBSERVE(name, value, ...)                                  \
  do {                                                                              \
    if (::remgen::obs::enabled()) {                                                 \
      static ::remgen::obs::Histogram& remgen_obs_histogram_ =                      \
          ::remgen::obs::registry().histogram(name, std::vector<double>__VA_ARGS__); \
      remgen_obs_histogram_.observe(static_cast<double>(value));                    \
    }                                                                               \
  } while (0)
