#include "obs/trace.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace remgen::obs {

namespace {

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> counter{0};
  thread_local const std::uint32_t tid = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

/// Per-thread stack of open span ids; RAII guarantees strict nesting.
std::vector<std::uint64_t>& span_stack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

}  // namespace

std::uint32_t current_tid() { return this_thread_tid(); }

void name_current_thread(std::string_view name) {
  trace().set_thread_name(this_thread_tid(), std::string(name));
}

std::uint64_t wall_clock_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch).count());
}

void TraceRecorder::record(SpanRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ++dropped_by_tid_[record.tid];
    // Surface the saturation in the metrics snapshot too, so an exported
    // trace that silently stops mid-run is explainable from the metrics.
    REMGEN_COUNTER_ADD("obs.trace_dropped_spans", 1);
    return;
  }
  records_.push_back(std::move(record));
}

std::map<std::uint32_t, std::uint64_t> TraceRecorder::dropped_by_thread() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_by_tid_;
}

std::map<std::uint32_t, std::string> TraceRecorder::thread_names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return thread_names_;
}

void TraceRecorder::set_thread_name(std::uint32_t tid, std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[tid] = std::move(name);
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

void TraceRecorder::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
  dropped_by_tid_.clear();
  // Thread names survive clear(): the threads still exist, and a fresh trace
  // from the same process should stay readable.
}

TraceRecorder& trace() {
  static TraceRecorder instance;
  return instance;
}

Span::Span(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  active_ = true;
  record_.name = std::string(name);
  record_.category = std::string(category);
  record_.start_us = wall_clock_us();
  record_.sim_start_s = sim_time();
  record_.tid = this_thread_tid();
  record_.id = next_span_id();
  std::vector<std::uint64_t>& stack = span_stack();
  record_.parent_id = stack.empty() ? 0 : stack.back();
  record_.depth = static_cast<std::uint32_t>(stack.size());
  stack.push_back(record_.id);
}

Span::~Span() {
  if (!active_) return;
  span_stack().pop_back();
  record_.dur_us = wall_clock_us() - record_.start_us;
  record_.sim_end_s = sim_time();
  trace().record(std::move(record_));
}

void Span::arg(std::string_view key, std::string_view value) {
  if (!active_) return;
  record_.args.emplace_back(std::string(key), std::string(value));
}

void instant(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  SpanRecord record;
  record.name = std::string(name);
  record.category = std::string(category);
  record.phase = 'i';
  record.start_us = wall_clock_us();
  record.sim_start_s = record.sim_end_s = sim_time();
  record.tid = this_thread_tid();
  record.id = next_span_id();
  const std::vector<std::uint64_t>& stack = span_stack();
  record.parent_id = stack.empty() ? 0 : stack.back();
  record.depth = static_cast<std::uint32_t>(stack.size());
  trace().record(std::move(record));
}

}  // namespace remgen::obs
