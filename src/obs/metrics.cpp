#include "obs/metrics.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace remgen::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  REMGEN_EXPECTS(!bounds_.empty());
  REMGEN_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>()).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name), std::make_unique<Histogram>(std::move(upper_bounds)))
              .first->second;
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, metric] : counters_) out.counters.emplace(name, metric->value());
  for (const auto& [name, metric] : gauges_) out.gauges.emplace(name, metric->value());
  for (const auto& [name, metric] : histograms_) {
    out.histograms.emplace(name, HistogramSnapshot{metric->upper_bounds(),
                                                   metric->bucket_counts(), metric->count(),
                                                   metric->sum()});
  }
  return out;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) entry.second->reset();
  for (const auto& entry : gauges_) entry.second->reset();
  for (const auto& entry : histograms_) entry.second->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace remgen::obs
