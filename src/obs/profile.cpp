#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/log.hpp"

namespace remgen::obs {

namespace {

/// One node of a thread's phase tree. std::map keeps children name-sorted
/// (deterministic merge order) and gives stable node addresses.
struct PhaseNode {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::map<std::string, PhaseNode, std::less<>> children;
};

constexpr std::size_t kTaskBufferCapacity = 1u << 14;

/// Single-producer task buffer: the owning thread appends and publishes the
/// new size with a release store; snapshot readers acquire the size and read
/// only the published prefix. No locks on the append path.
struct TaskBuffer {
  std::vector<TaskEvent> events{kTaskBufferCapacity};
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
};

/// Everything one thread records. The mutex guards the phase tree (owner
/// writes on phase exit, the aggregator reads); the task buffer synchronises
/// through its own atomics.
struct ThreadTable {
  std::mutex mutex;
  PhaseNode root;
  TaskBuffer tasks;
};

struct ProfileRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTable>> tables;
};

ProfileRegistry& registry_instance() {
  static ProfileRegistry* instance = new ProfileRegistry;  // leaked: outlives all threads
  return *instance;
}

struct Frame {
  PhaseNode* node = nullptr;
  const std::string* name = nullptr;  ///< Points at the map key (stable).
  std::uint64_t start_us = 0;
};

/// Thread-local view: the shared table (also reachable by the aggregator)
/// plus the open-phase stack only this thread touches.
struct Local {
  std::shared_ptr<ThreadTable> table;
  std::vector<Frame> stack;

  Local() : table(std::make_shared<ThreadTable>()) {
    ProfileRegistry& reg = registry_instance();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.tables.push_back(table);
  }
};

Local& local_state() {
  thread_local Local local;
  return local;
}

/// Finds or creates `name` under `parent`. Caller holds the table mutex.
std::pair<PhaseNode*, const std::string*> child_node(PhaseNode& parent,
                                                     std::string_view name) {
  auto it = parent.children.find(name);
  if (it == parent.children.end()) {
    it = parent.children.emplace(std::string(name), PhaseNode{}).first;
  }
  return {&it->second, &it->first};
}

// Amdahl accumulators + the profiling wall-clock epoch.
std::atomic<std::uint64_t> g_parallel_wall_us{0};
std::atomic<std::uint64_t> g_parallel_busy_us{0};
std::atomic<std::uint64_t> g_regions{0};
std::atomic<std::size_t> g_contexts{1};
std::atomic<std::uint64_t> g_epoch_us{0};
std::atomic<std::uint64_t> g_frozen_us{0};  ///< End of epoch once disabled.

void merge_node(PhaseNode& dst, const PhaseNode& src) {
  dst.count += src.count;
  dst.total_us += src.total_us;
  for (const auto& [name, child] : src.children) {
    merge_node(dst.children[name], child);
  }
}

void emit_phases(const PhaseNode& node, const std::string& path, std::uint32_t depth,
                 std::uint64_t parent_total_us, std::vector<PhaseStats>& out) {
  for (const auto& [name, child] : node.children) {
    PhaseStats stats;
    stats.path = path.empty() ? name : path + "/" + name;
    stats.name = name;
    stats.depth = depth;
    stats.count = child.count;
    stats.total_us = child.total_us;
    std::uint64_t children_total = 0;
    for (const auto& [child_name, grandchild] : child.children) {
      (void)child_name;
      children_total += grandchild.total_us;
    }
    stats.self_us = child.total_us > children_total ? child.total_us - children_total : 0;
    stats.percent_of_parent =
        parent_total_us > 0
            ? 100.0 * static_cast<double>(child.total_us) / static_cast<double>(parent_total_us)
            : 0.0;
    // Recurse with a copy: pushing grandchildren may reallocate `out`, so a
    // reference into it would dangle.
    const std::string child_path = stats.path;
    out.push_back(std::move(stats));
    emit_phases(child, child_path, depth + 1, child.total_us, out);
  }
}

}  // namespace

#if !defined(REMGEN_OBS_DISABLED)
void set_profiling_enabled(bool on) noexcept {
  const bool was = detail::g_profiling_enabled.exchange(on, std::memory_order_relaxed);
  if (on && !was) {
    g_epoch_us.store(wall_clock_us(), std::memory_order_relaxed);
    g_frozen_us.store(0, std::memory_order_relaxed);
  } else if (!on && was) {
    g_frozen_us.store(wall_clock_us(), std::memory_order_relaxed);
  }
}
#endif

ProfilePhase::ProfilePhase(std::string_view name) {
  if (!profiling_enabled()) return;
  active_ = true;
  Local& local = local_state();
  PhaseNode* parent = local.stack.empty() ? &local.table->root : local.stack.back().node;
  Frame frame;
  {
    const std::lock_guard<std::mutex> lock(local.table->mutex);
    const auto [node, key] = child_node(*parent, name);
    frame.node = node;
    frame.name = key;
  }
  frame.start_us = wall_clock_us();
  local.stack.push_back(frame);
}

ProfilePhase::~ProfilePhase() {
  if (!active_) return;
  Local& local = local_state();
  const Frame frame = local.stack.back();
  local.stack.pop_back();
  const std::uint64_t dur = wall_clock_us() - frame.start_us;
  const std::lock_guard<std::mutex> lock(local.table->mutex);
  frame.node->count += 1;
  frame.node->total_us += dur;
}

std::vector<std::string> current_phase_path() {
  std::vector<std::string> path;
  if (!profiling_enabled()) return path;
  const Local& local = local_state();
  path.reserve(local.stack.size());
  for (const Frame& frame : local.stack) path.push_back(*frame.name);
  return path;
}

ProfileContext::ProfileContext(const std::vector<std::string>* path) {
  if (!profiling_enabled() || path == nullptr || path->empty()) return;
  Local& local = local_state();
  // The submitting thread drains its own region with the path already on its
  // stack; adopting it again would double the nesting.
  if (!local.stack.empty()) return;
  const std::lock_guard<std::mutex> lock(local.table->mutex);
  PhaseNode* parent = &local.table->root;
  for (const std::string& name : *path) {
    Frame frame;
    const auto [node, key] = child_node(*parent, name);
    frame.node = node;
    frame.name = key;
    local.stack.push_back(frame);
    parent = node;
    ++pushed_;
  }
}

ProfileContext::~ProfileContext() {
  if (pushed_ == 0) return;
  Local& local = local_state();
  // Context frames carry no timing of their own: the ancestors' wall time is
  // measured once, on the thread that actually opened them.
  local.stack.resize(local.stack.size() - static_cast<std::size_t>(pushed_));
}

void record_task_event(TaskEvent event) {
  TaskBuffer& buffer = local_state().table->tasks;
  const std::size_t n = buffer.size.load(std::memory_order_relaxed);
  if (n >= buffer.events.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buffer.events[n] = std::move(event);
  buffer.size.store(n + 1, std::memory_order_release);
}

std::vector<TaskEvent> task_events_snapshot() {
  std::vector<TaskEvent> out;
  ProfileRegistry& reg = registry_instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const std::shared_ptr<ThreadTable>& table : reg.tables) {
    const std::size_t n = table->tasks.size.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) out.push_back(table->tasks.events[i]);
  }
  std::sort(out.begin(), out.end(), [](const TaskEvent& a, const TaskEvent& b) {
    if (a.region_id != b.region_id) return a.region_id < b.region_id;
    return a.chunk_index < b.chunk_index;
  });
  return out;
}

std::uint64_t task_events_dropped() {
  std::uint64_t dropped = 0;
  ProfileRegistry& reg = registry_instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const std::shared_ptr<ThreadTable>& table : reg.tables) {
    dropped += table->tasks.dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

void note_parallel_region(std::uint64_t wall_us, std::uint64_t busy_us,
                          std::size_t contexts) {
  if (!profiling_enabled()) return;
  g_parallel_wall_us.fetch_add(wall_us, std::memory_order_relaxed);
  g_parallel_busy_us.fetch_add(busy_us, std::memory_order_relaxed);
  g_regions.fetch_add(1, std::memory_order_relaxed);
  g_contexts.store(contexts, std::memory_order_relaxed);
}

double AmdahlReport::speedup_at(std::size_t n) const {
  if (n == 0) return 1.0;
  const double s = std::clamp(serial_fraction, 0.0, 1.0);
  return 1.0 / (s + (1.0 - s) / static_cast<double>(n));
}

ProfileReport profile_report() {
  ProfileReport report;

  PhaseNode merged;
  {
    ProfileRegistry& reg = registry_instance();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const std::shared_ptr<ThreadTable>& table : reg.tables) {
      const std::lock_guard<std::mutex> table_lock(table->mutex);
      merge_node(merged, table->root);
      const std::size_t n = table->tasks.size.load(std::memory_order_acquire);
      report.task_events += n;
      report.task_events_dropped += table->tasks.dropped.load(std::memory_order_relaxed);
    }
  }

  const std::uint64_t epoch = g_epoch_us.load(std::memory_order_relaxed);
  const std::uint64_t frozen = g_frozen_us.load(std::memory_order_relaxed);
  const std::uint64_t end = frozen != 0 ? frozen : wall_clock_us();
  report.amdahl.total_wall_us = end > epoch ? end - epoch : 0;
  report.amdahl.parallel_wall_us = g_parallel_wall_us.load(std::memory_order_relaxed);
  report.amdahl.parallel_busy_us = g_parallel_busy_us.load(std::memory_order_relaxed);
  report.amdahl.regions = g_regions.load(std::memory_order_relaxed);
  report.amdahl.contexts = g_contexts.load(std::memory_order_relaxed);
  if (report.amdahl.total_wall_us > 0) {
    const double parallel =
        std::min<double>(static_cast<double>(report.amdahl.parallel_wall_us),
                         static_cast<double>(report.amdahl.total_wall_us));
    report.amdahl.serial_fraction =
        1.0 - parallel / static_cast<double>(report.amdahl.total_wall_us);
  }
  report.amdahl.max_speedup =
      1.0 / std::max(report.amdahl.serial_fraction, 1e-9);

  emit_phases(merged, "", 0, report.amdahl.total_wall_us, report.phases);

  std::uint64_t root_total = 0;
  for (const auto& [name, child] : merged.children) {
    (void)name;
    root_total += child.total_us;
  }
  if (report.amdahl.total_wall_us > 0) {
    report.coverage =
        static_cast<double>(root_total) / static_cast<double>(report.amdahl.total_wall_us);
  }
  return report;
}

void reset_profiling() {
  ProfileRegistry& reg = registry_instance();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const std::shared_ptr<ThreadTable>& table : reg.tables) {
    const std::lock_guard<std::mutex> table_lock(table->mutex);
    table->root.count = 0;
    table->root.total_us = 0;
    table->root.children.clear();
    table->tasks.size.store(0, std::memory_order_relaxed);
    table->tasks.dropped.store(0, std::memory_order_relaxed);
  }
  g_parallel_wall_us.store(0, std::memory_order_relaxed);
  g_parallel_busy_us.store(0, std::memory_order_relaxed);
  g_regions.store(0, std::memory_order_relaxed);
  g_contexts.store(1, std::memory_order_relaxed);
  g_epoch_us.store(wall_clock_us(), std::memory_order_relaxed);
  g_frozen_us.store(0, std::memory_order_relaxed);
}

Json profile_to_json(const ProfileReport& report) {
  Json::Object amdahl;
  amdahl["total_wall_us"] = report.amdahl.total_wall_us;
  amdahl["parallel_wall_us"] = report.amdahl.parallel_wall_us;
  amdahl["parallel_busy_us"] = report.amdahl.parallel_busy_us;
  amdahl["regions"] = report.amdahl.regions;
  amdahl["contexts"] = static_cast<std::uint64_t>(report.amdahl.contexts);
  amdahl["serial_fraction"] = report.amdahl.serial_fraction;
  amdahl["max_speedup"] = report.amdahl.max_speedup;
  amdahl["speedup_at_contexts"] = report.amdahl.speedup_at(report.amdahl.contexts);

  Json::Array phases;
  phases.reserve(report.phases.size());
  for (const PhaseStats& phase : report.phases) {
    Json::Object row;
    row["path"] = phase.path;
    row["name"] = phase.name;
    row["depth"] = static_cast<std::uint64_t>(phase.depth);
    row["count"] = phase.count;
    row["total_us"] = phase.total_us;
    row["self_us"] = phase.self_us;
    row["percent_of_parent"] = phase.percent_of_parent;
    phases.push_back(Json(std::move(row)));
  }

  Json::Object root;
  root["amdahl"] = Json(std::move(amdahl));
  root["phases"] = Json(std::move(phases));
  root["coverage"] = report.coverage;
  root["task_events"] = report.task_events;
  root["task_events_dropped"] = report.task_events_dropped;
  return Json(std::move(root));
}

ProfileReport profile_from_json(const Json& doc) {
  ProfileReport report;
  const Json& amdahl = doc.at("amdahl");
  report.amdahl.total_wall_us = static_cast<std::uint64_t>(amdahl.at("total_wall_us").as_double());
  report.amdahl.parallel_wall_us =
      static_cast<std::uint64_t>(amdahl.at("parallel_wall_us").as_double());
  report.amdahl.parallel_busy_us =
      static_cast<std::uint64_t>(amdahl.at("parallel_busy_us").as_double());
  report.amdahl.regions = static_cast<std::uint64_t>(amdahl.at("regions").as_double());
  report.amdahl.contexts = static_cast<std::size_t>(amdahl.at("contexts").as_double());
  report.amdahl.serial_fraction = amdahl.at("serial_fraction").as_double();
  report.amdahl.max_speedup = amdahl.at("max_speedup").as_double();
  for (const Json& row : doc.at("phases").as_array()) {
    PhaseStats phase;
    phase.path = row.at("path").as_string();
    phase.name = row.at("name").as_string();
    phase.depth = static_cast<std::uint32_t>(row.at("depth").as_double());
    phase.count = static_cast<std::uint64_t>(row.at("count").as_double());
    phase.total_us = static_cast<std::uint64_t>(row.at("total_us").as_double());
    phase.self_us = static_cast<std::uint64_t>(row.at("self_us").as_double());
    phase.percent_of_parent = row.at("percent_of_parent").as_double();
    report.phases.push_back(std::move(phase));
  }
  report.coverage = doc.at("coverage").as_double();
  report.task_events = static_cast<std::uint64_t>(doc.at("task_events").as_double());
  report.task_events_dropped =
      static_cast<std::uint64_t>(doc.at("task_events_dropped").as_double());
  return report;
}

void write_profile_table(std::ostream& out, const ProfileReport& report) {
  out << std::left << std::setw(52) << "phase" << std::right << std::setw(10) << "count"
      << std::setw(13) << "total(ms)" << std::setw(12) << "self(ms)" << std::setw(10)
      << "%parent" << '\n';
  for (const PhaseStats& phase : report.phases) {
    std::string label(static_cast<std::size_t>(phase.depth) * 2, ' ');
    label += phase.name;
    if (label.size() > 51) label = label.substr(0, 48) + "...";
    out << std::left << std::setw(52) << label << std::right << std::setw(10) << phase.count
        << std::setw(13) << std::fixed << std::setprecision(3)
        << static_cast<double>(phase.total_us) / 1000.0 << std::setw(12)
        << static_cast<double>(phase.self_us) / 1000.0 << std::setw(9) << std::setprecision(1)
        << phase.percent_of_parent << "%" << '\n';
  }
  const AmdahlReport& a = report.amdahl;
  out << '\n'
      << "wall clock       : " << std::fixed << std::setprecision(3)
      << static_cast<double>(a.total_wall_us) / 1e6 << " s  (phase coverage "
      << std::setprecision(1) << report.coverage * 100.0 << "%)\n"
      << "parallel regions : " << a.regions << "  (wall " << std::setprecision(3)
      << static_cast<double>(a.parallel_wall_us) / 1e6 << " s, busy "
      << static_cast<double>(a.parallel_busy_us) / 1e6 << " s, " << a.contexts
      << " contexts)\n"
      << "serial fraction  : " << std::setprecision(3) << a.serial_fraction << '\n'
      << "max speedup      : " << std::setprecision(2) << a.max_speedup << "x (Amdahl limit; "
      << a.speedup_at(a.contexts) << "x at " << a.contexts << " contexts)\n";
  if (report.task_events > 0 || report.task_events_dropped > 0) {
    out << "task events      : " << report.task_events << " (" << report.task_events_dropped
        << " dropped)\n";
  }
}

bool export_profile_json_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    util::logf(util::LogLevel::Warn, "obs", "cannot open {} for profile export", path);
    return false;
  }
  out << profile_to_json(profile_report()).dump(2) << '\n';
  return bool(out);
}

}  // namespace remgen::obs
