// Scoped spans that nest into a trace tree.
//
// A Span is an RAII guard: construction captures wall-clock (microseconds on
// the process-wide steady epoch) and the current simulated time (seconds, as
// last published by obs::set_sim_time — the co-simulation loop publishes the
// UAV clock every tick); destruction records the completed span into the
// global TraceRecorder. A thread-local stack provides parent/child nesting,
// so traces export directly as a tree in Chrome trace_event JSON
// (chrome://tracing, Perfetto).
//
// Like the metrics registry, spans are runtime-gated by obs::enabled(): a
// disabled span costs one relaxed load and a branch, and records nothing.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/fmt.hpp"

namespace remgen::obs {

namespace detail {
inline std::atomic<double> g_sim_time_s{0.0};
}  // namespace detail

/// Publishes the current simulated time; spans sample it at their start/end.
inline void set_sim_time(double now_s) noexcept {
  detail::g_sim_time_s.store(now_s, std::memory_order_relaxed);
}
[[nodiscard]] inline double sim_time() noexcept {
  return detail::g_sim_time_s.load(std::memory_order_relaxed);
}

/// Microseconds since the process trace epoch (steady clock; first use).
[[nodiscard]] std::uint64_t wall_clock_us();

/// Small dense id of the calling thread (1, 2, ... in first-use order); the
/// same id spans and task events carry, and the Chrome-trace "tid".
[[nodiscard]] std::uint32_t current_tid();

/// Registers a human-readable name for the calling thread ("main",
/// "worker-3"); exported as Chrome-trace thread_name metadata so trace lanes
/// are readable in chrome://tracing / Perfetto.
void name_current_thread(std::string_view name);

/// One recorded trace event.
struct SpanRecord {
  std::string name;
  std::string category = "remgen";
  char phase = 'X';  ///< 'X' complete span, 'i' instant event.
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  double sim_start_s = 0.0;
  double sim_end_s = 0.0;
  std::uint32_t tid = 0;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  ///< 0 when the span has no parent.
  std::uint32_t depth = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe, bounded buffer of completed spans. Records past the capacity
/// are dropped (and counted) instead of growing without bound.
class TraceRecorder {
 public:
  void record(SpanRecord record);
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Saturation drops broken down by the recording thread's tid.
  [[nodiscard]] std::map<std::uint32_t, std::uint64_t> dropped_by_thread() const;
  /// tid -> registered thread name (see name_current_thread).
  [[nodiscard]] std::map<std::uint32_t, std::string> thread_names() const;
  void set_thread_name(std::uint32_t tid, std::string name);
  void set_capacity(std::size_t capacity);
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
  std::size_t capacity_ = 1u << 18;
  std::atomic<std::size_t> dropped_{0};
  std::map<std::uint32_t, std::uint64_t> dropped_by_tid_;
  std::map<std::uint32_t, std::string> thread_names_;
};

/// The process-wide trace buffer.
[[nodiscard]] TraceRecorder& trace();

/// RAII scoped span. Inactive (and free apart from the enabled() check) when
/// telemetry is off at construction time.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "remgen");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key/value pair exported under the Chrome-trace "args" object.
  void arg(std::string_view key, std::string_view value);
  template <typename T>
  void arg(std::string_view key, const T& value) {
    if (active_) arg(key, std::string_view(util::format("{}", value)));
  }

 private:
  bool active_ = false;
  SpanRecord record_;
};

/// Records a zero-duration instant event (e.g. "crtp.radio_off").
void instant(std::string_view name, std::string_view category = "remgen");

}  // namespace remgen::obs

#define REMGEN_OBS_CONCAT_INNER_(a, b) a##b
#define REMGEN_OBS_CONCAT_(a, b) REMGEN_OBS_CONCAT_INNER_(a, b)

/// Scoped span covering the rest of the enclosing block.
#define REMGEN_SPAN(name) \
  ::remgen::obs::Span REMGEN_OBS_CONCAT_(remgen_obs_span_, __LINE__)(name)
