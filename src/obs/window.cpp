#include "obs/window.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace remgen::obs {

namespace {

void validate_bounds(const std::vector<double>& bounds) {
  if (bounds.empty()) throw std::invalid_argument("obs: windowed histogram needs bounds");
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument("obs: histogram bounds must be strictly increasing");
    }
  }
}

}  // namespace

WindowedHistogram::WindowedHistogram(std::vector<double> upper_bounds, std::size_t windows,
                                     double window_span_s)
    : bounds_(std::move(upper_bounds)), window_span_s_(window_span_s) {
  validate_bounds(bounds_);
  if (windows == 0 || window_span_s <= 0.0) {
    throw std::invalid_argument("obs: windowed histogram needs positive windows and span");
  }
  slots_.resize(windows);
  for (Slot& slot : slots_) slot.buckets.assign(bounds_.size() + 1, 0);
}

std::int64_t WindowedHistogram::window_index(double now_s) const {
  return static_cast<std::int64_t>(std::floor(now_s / window_span_s_));
}

WindowedHistogram::Slot& WindowedHistogram::slot_for(std::int64_t index) {
  Slot& slot = slots_[static_cast<std::size_t>(index % static_cast<std::int64_t>(slots_.size()) +
                                               static_cast<std::int64_t>(slots_.size())) %
                      slots_.size()];
  if (slot.index != index) {
    // The ring wrapped onto a stale sub-window: recycle it.
    slot.index = index;
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.count = 0;
    slot.sum = 0.0;
  }
  return slot;
}

void WindowedHistogram::observe(double value, double now_s) {
  Slot& slot = slot_for(window_index(now_s));
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  // NaN compares false against every bound: lower_bound lands on end(), the
  // +Inf bucket, matching obs::Histogram's convention.
  ++slot.buckets[static_cast<std::size_t>(it - bounds_.begin())];
  ++slot.count;
  slot.sum += value;
}

HistogramSnapshot WindowedHistogram::merged(double now_s) const {
  HistogramSnapshot out;
  out.upper_bounds = bounds_;
  out.bucket_counts.assign(bounds_.size() + 1, 0);
  const std::int64_t newest = window_index(now_s);
  const std::int64_t oldest = newest - static_cast<std::int64_t>(slots_.size()) + 1;
  for (const Slot& slot : slots_) {
    if (slot.index < oldest || slot.index > newest) continue;  // Expired or unused.
    for (std::size_t b = 0; b < slot.buckets.size(); ++b) out.bucket_counts[b] += slot.buckets[b];
    out.count += slot.count;
    out.sum += slot.sum;
  }
  return out;
}

std::uint64_t WindowedHistogram::count(double now_s) const { return merged(now_s).count; }

double WindowedHistogram::rate_per_second(double now_s) const {
  return static_cast<double>(count(now_s)) / span_seconds();
}

WindowedCounter::WindowedCounter(std::size_t windows, double window_span_s)
    : window_span_s_(window_span_s) {
  if (windows == 0 || window_span_s <= 0.0) {
    throw std::invalid_argument("obs: windowed counter needs positive windows and span");
  }
  slots_.resize(windows);
}

std::int64_t WindowedCounter::window_index(double now_s) const {
  return static_cast<std::int64_t>(std::floor(now_s / window_span_s_));
}

void WindowedCounter::add(std::uint64_t delta, double now_s) {
  const std::int64_t index = window_index(now_s);
  Slot& slot = slots_[static_cast<std::size_t>(index % static_cast<std::int64_t>(slots_.size()) +
                                               static_cast<std::int64_t>(slots_.size())) %
                      slots_.size()];
  if (slot.index != index) {
    slot.index = index;
    slot.count = 0;
  }
  slot.count += delta;
  total_ += delta;
}

std::uint64_t WindowedCounter::windowed(double now_s) const {
  const std::int64_t newest = window_index(now_s);
  const std::int64_t oldest = newest - static_cast<std::int64_t>(slots_.size()) + 1;
  std::uint64_t sum = 0;
  for (const Slot& slot : slots_) {
    if (slot.index >= oldest && slot.index <= newest) sum += slot.count;
  }
  return sum;
}

double WindowedCounter::rate_per_second(double now_s) const {
  return static_cast<double>(windowed(now_s)) / span_seconds();
}

double histogram_quantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0 || snapshot.upper_bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(snapshot.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snapshot.upper_bounds.size(); ++i) {
    const std::uint64_t in_bucket = snapshot.bucket_counts[i];
    if (static_cast<double>(cumulative + in_bucket) >= target && in_bucket > 0) {
      const double lo = i == 0 ? 0.0 : snapshot.upper_bounds[i - 1];
      const double hi = snapshot.upper_bounds[i];
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  // Target lands in +Inf: clamp to the largest finite bound.
  return snapshot.upper_bounds.back();
}

}  // namespace remgen::obs
