// Rolling-window metrics: histograms and counters whose reported values
// cover only the recent past instead of the whole process lifetime.
//
// A WindowedHistogram is a ring of fixed-bucket sub-windows (e.g. 12 windows
// of 5 s = one minute of history). Observations land in the sub-window their
// timestamp falls into; merged() sums every sub-window still inside the
// rolling span and returns an ordinary HistogramSnapshot, so the existing
// exporters and quantile estimation apply unchanged. Sub-windows older than
// the span are excluded by index comparison — merged() never mutates, which
// makes it safe to call from a const context and keeps results a pure
// function of (observations, now).
//
// Time is an explicit parameter everywhere (seconds on the caller's clock,
// typically a steady-clock offset from process start). That keeps the type
// deterministic under test — no hidden clock reads — and lets a single
// event-loop thread drive many windows off one timestamp per iteration.
//
// Not internally synchronised: callers that record from multiple threads
// must serialise access themselves. The intended discipline (see net::Server)
// is single-writer — everything happens on the event-loop thread.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace remgen::obs {

/// Fixed-bucket histogram over the last `windows * window_span_s` seconds.
class WindowedHistogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing; `windows` and
  /// `window_span_s` must be positive.
  WindowedHistogram(std::vector<double> upper_bounds, std::size_t windows,
                    double window_span_s);

  /// Records `value` into the sub-window containing `now_s`. Time must not
  /// run backwards across calls (same-window repeats are fine).
  void observe(double value, double now_s);

  /// Sum of every sub-window still inside the rolling span at `now_s`.
  [[nodiscard]] HistogramSnapshot merged(double now_s) const;

  /// Observations inside the rolling span at `now_s`.
  [[nodiscard]] std::uint64_t count(double now_s) const;

  /// Observations per second over the rolling span (count / span).
  [[nodiscard]] double rate_per_second(double now_s) const;

  [[nodiscard]] const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  [[nodiscard]] double span_seconds() const noexcept {
    return window_span_s_ * static_cast<double>(slots_.size());
  }

 private:
  struct Slot {
    std::int64_t index = -1;  ///< floor(time / window_span_s); -1 = never used.
    std::vector<std::uint64_t> buckets;  ///< bounds_.size() + 1 (last is +Inf).
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  [[nodiscard]] std::int64_t window_index(double now_s) const;
  Slot& slot_for(std::int64_t index);

  std::vector<double> bounds_;
  double window_span_s_;
  std::vector<Slot> slots_;
};

/// Monotonic counter with a rolling-window view: lifetime total plus the sum
/// of increments over the last `windows * window_span_s` seconds.
class WindowedCounter {
 public:
  WindowedCounter(std::size_t windows, double window_span_s);

  void add(std::uint64_t delta, double now_s);

  /// Sum of increments inside the rolling span at `now_s`.
  [[nodiscard]] std::uint64_t windowed(double now_s) const;

  /// Increments per second over the rolling span.
  [[nodiscard]] double rate_per_second(double now_s) const;

  /// Lifetime total, independent of the window.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] double span_seconds() const noexcept {
    return window_span_s_ * static_cast<double>(slots_.size());
  }

 private:
  struct Slot {
    std::int64_t index = -1;
    std::uint64_t count = 0;
  };

  [[nodiscard]] std::int64_t window_index(double now_s) const;

  double window_span_s_;
  std::vector<Slot> slots_;
  std::uint64_t total_ = 0;
};

/// Prometheus-style quantile estimate from cumulative histogram buckets:
/// finds the bucket holding the q-th observation and interpolates linearly
/// inside it (the first bucket interpolates up from zero). q is in [0, 1].
/// Returns 0 for an empty snapshot; observations beyond the last finite
/// bound clamp to it (the +Inf bucket has no width to interpolate over).
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& snapshot, double q);

}  // namespace remgen::obs
