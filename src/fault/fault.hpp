// Deterministic, seeded fault injection.
//
// The paper's collection pipeline is exercised by real radio adversity: CRTP
// packets drop in bursts when the 2.4 GHz band is busy, the UART to the ESP-01
// garbles or truncates bytes, AT+CWLAP sweeps stall or answer spurious ERRORs,
// UWB anchors drop out or pick up NLOS bias, and tired cells sag. This module
// models those faults behind small config structs that component configs embed
// (CrtpConfig, Esp8266Config, LpsConfig, BatteryConfig consumers) and a
// FaultPlan that names composable profiles for campaigns and the CLI
// (--fault-profile / --fault-seed).
//
// Determinism contract: every injector draws from its own Rng derived from
// (component stream, plan seed, tag) via fault_rng(). A disabled fault struct
// must cost zero draws from the component stream — callers only fork the
// injector stream when enabled() — so a run without faults is byte-identical
// to a build without this module, and a run with faults is byte-identical for
// a fixed (seed, profile) at any --threads width.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace remgen::fault {

/// CRTP on-air faults: correlated loss bursts plus latency spikes.
struct CrtpFaults {
  std::uint64_t seed = 0;                 ///< Plan seed (mixed into the injector stream).
  double extra_loss_probability = 0.0;    ///< Memoryless loss on top of CrtpConfig's.
  double burst_start_probability = 0.0;   ///< Per packet, when no burst is active.
  std::size_t burst_min_packets = 2;      ///< Burst length drawn uniformly from
  std::size_t burst_max_packets = 8;      ///< [min, max] packets.
  double burst_drop_probability = 1.0;    ///< Per-packet loss inside a burst.
  double latency_spike_probability = 0.0; ///< Per delivered packet.
  double latency_spike_min_s = 0.0;       ///< Spike drawn uniformly from
  double latency_spike_max_s = 0.0;       ///< [min, max] seconds.
  [[nodiscard]] bool enabled() const noexcept {
    return extra_loss_probability > 0.0 || burst_start_probability > 0.0 ||
           latency_spike_probability > 0.0;
  }
};

/// UART byte-level faults on the device->host direction.
struct UartFaults {
  std::uint64_t seed = 0;
  double garble_byte_probability = 0.0;    ///< Per write: flip one random byte.
  double truncate_write_probability = 0.0; ///< Per write: drop a random suffix.
  [[nodiscard]] bool enabled() const noexcept {
    return garble_byte_probability > 0.0 || truncate_write_probability > 0.0;
  }
};

/// ESP8266 scan-level faults.
struct ScanFaults {
  std::uint64_t seed = 0;
  double spurious_error_probability = 0.0; ///< AT+CWLAP answers ERROR immediately.
  double stall_probability = 0.0;          ///< Sweep takes stall_extra_s longer than
  double stall_extra_s = 12.0;             ///< nominal (beyond the driver timeout).
  [[nodiscard]] bool enabled() const noexcept {
    return spurious_error_probability > 0.0 || stall_probability > 0.0;
  }
};

/// UWB ranging faults: dead anchors, extra dropout, NLOS range bias.
struct UwbFaults {
  std::uint64_t seed = 0;
  std::size_t dead_anchors = 0;            ///< Anchors that stop ranging entirely.
  double extra_dropout_probability = 0.0;  ///< Per measurement, on top of RangingConfig's.
  double nlos_bias_probability = 0.0;      ///< Per measurement.
  double nlos_bias_m = 0.0;                ///< Positive range bias when it strikes.
  [[nodiscard]] bool enabled() const noexcept {
    return dead_anchors > 0 || extra_dropout_probability > 0.0 ||
           nlos_bias_probability > 0.0;
  }
};

/// Battery degradation (deterministic, no stream needed).
struct BatteryFaults {
  double capacity_scale = 1.0;         ///< Sagged cell: usable charge shrinks.
  double extra_base_current_ma = 0.0;  ///< Parasitic draw (worn connectors, cold).
  [[nodiscard]] bool enabled() const noexcept {
    return capacity_scale < 1.0 || extra_base_current_ma > 0.0;
  }
};

/// A composed, named, seeded fault scenario for a whole campaign.
struct FaultPlan {
  std::string profile = "none";  ///< Canonical comma-joined profile list.
  std::uint64_t seed = 0;        ///< Decorrelates fault draws from the campaign seed.
  CrtpFaults crtp;
  UartFaults uart;
  ScanFaults scan;
  UwbFaults uwb;
  BatteryFaults battery;
  [[nodiscard]] bool enabled() const noexcept {
    return crtp.enabled() || uart.enabled() || scan.enabled() || uwb.enabled() ||
           battery.enabled();
  }
};

/// Builds a plan from a comma-separated list of profile names (composition
/// takes the harsher value per field). Known profiles: none, lossy,
/// flaky-scanner, uwb-degraded, brownout, harsh. Returns nullopt on an
/// unknown name. `seed` is stamped into every sub-struct.
[[nodiscard]] std::optional<FaultPlan> make_fault_plan(std::string_view profiles,
                                                       std::uint64_t seed = 0);

/// The profile names make_fault_plan accepts, for CLI help/errors.
[[nodiscard]] const std::vector<std::string>& fault_profile_names();

/// Derives the injector stream for one component: forks the component's own
/// stream (so each UAV's faults are independent) and mixes in the plan seed
/// and a subsystem tag. Call ONLY when the corresponding faults are enabled —
/// forking consumes parent state.
[[nodiscard]] util::Rng fault_rng(util::Rng& component_rng, std::uint64_t plan_seed,
                                  std::string_view tag);

/// Stateful CRTP injector: drives the burst state machine and latency spikes.
class CrtpFaultInjector {
 public:
  CrtpFaultInjector(const CrtpFaults& faults, util::Rng rng)
      : faults_(faults), rng_(rng) {}

  /// One decision per packet offered to the air; advances the burst state.
  [[nodiscard]] bool drop_packet();

  /// Extra one-way latency for a packet that survived, in seconds.
  [[nodiscard]] double extra_latency_s();

 private:
  CrtpFaults faults_;
  util::Rng rng_;
  std::size_t burst_left_ = 0;
};

/// Stateful UART injector: corrupts device->host writes.
class UartFaultInjector {
 public:
  UartFaultInjector(const UartFaults& faults, util::Rng rng)
      : faults_(faults), rng_(rng) {}

  /// Returns the (possibly garbled/truncated) bytes actually delivered.
  [[nodiscard]] std::string corrupt(std::string bytes);

 private:
  UartFaults faults_;
  util::Rng rng_;
};

}  // namespace remgen::fault
