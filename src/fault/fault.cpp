#include "fault/fault.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace remgen::fault {

namespace {

/// SplitMix64 finalizer (same construction the Rng fork path uses) so nearby
/// plan seeds land on decorrelated injector streams.
std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

FaultPlan lossy_profile() {
  FaultPlan p;
  p.crtp.extra_loss_probability = 0.08;
  p.crtp.burst_start_probability = 0.02;
  p.crtp.burst_min_packets = 3;
  p.crtp.burst_max_packets = 10;
  p.crtp.burst_drop_probability = 0.9;
  p.crtp.latency_spike_probability = 0.05;
  p.crtp.latency_spike_min_s = 0.01;
  p.crtp.latency_spike_max_s = 0.08;
  return p;
}

FaultPlan flaky_scanner_profile() {
  FaultPlan p;
  p.uart.garble_byte_probability = 0.02;
  p.uart.truncate_write_probability = 0.01;
  p.scan.spurious_error_probability = 0.10;
  p.scan.stall_probability = 0.05;
  p.scan.stall_extra_s = 12.0;
  return p;
}

FaultPlan uwb_degraded_profile() {
  FaultPlan p;
  p.uwb.dead_anchors = 2;
  p.uwb.extra_dropout_probability = 0.15;
  p.uwb.nlos_bias_probability = 0.20;
  p.uwb.nlos_bias_m = 0.30;
  return p;
}

FaultPlan brownout_profile() {
  FaultPlan p;
  p.battery.capacity_scale = 0.80;
  p.battery.extra_base_current_ma = 120.0;
  return p;
}

/// Composition takes the harsher value per field so "lossy,brownout" is at
/// least as adverse as either profile alone.
void merge(FaultPlan& into, const FaultPlan& from) {
  auto worse = [](double& a, double b) { a = std::max(a, b); };
  worse(into.crtp.extra_loss_probability, from.crtp.extra_loss_probability);
  if (from.crtp.burst_start_probability > into.crtp.burst_start_probability) {
    into.crtp.burst_start_probability = from.crtp.burst_start_probability;
    into.crtp.burst_min_packets = from.crtp.burst_min_packets;
    into.crtp.burst_max_packets = from.crtp.burst_max_packets;
    into.crtp.burst_drop_probability = from.crtp.burst_drop_probability;
  }
  if (from.crtp.latency_spike_probability > into.crtp.latency_spike_probability) {
    into.crtp.latency_spike_probability = from.crtp.latency_spike_probability;
    into.crtp.latency_spike_min_s = from.crtp.latency_spike_min_s;
    into.crtp.latency_spike_max_s = from.crtp.latency_spike_max_s;
  }
  worse(into.uart.garble_byte_probability, from.uart.garble_byte_probability);
  worse(into.uart.truncate_write_probability, from.uart.truncate_write_probability);
  worse(into.scan.spurious_error_probability, from.scan.spurious_error_probability);
  if (from.scan.stall_probability > into.scan.stall_probability) {
    into.scan.stall_probability = from.scan.stall_probability;
    into.scan.stall_extra_s = from.scan.stall_extra_s;
  }
  into.uwb.dead_anchors = std::max(into.uwb.dead_anchors, from.uwb.dead_anchors);
  worse(into.uwb.extra_dropout_probability, from.uwb.extra_dropout_probability);
  if (from.uwb.nlos_bias_probability > into.uwb.nlos_bias_probability) {
    into.uwb.nlos_bias_probability = from.uwb.nlos_bias_probability;
    into.uwb.nlos_bias_m = from.uwb.nlos_bias_m;
  }
  into.battery.capacity_scale = std::min(into.battery.capacity_scale,
                                         from.battery.capacity_scale);
  into.battery.extra_base_current_ma = std::max(into.battery.extra_base_current_ma,
                                                from.battery.extra_base_current_ma);
}

std::optional<FaultPlan> profile_by_name(std::string_view name) {
  if (name == "none") return FaultPlan{};
  if (name == "lossy") return lossy_profile();
  if (name == "flaky-scanner") return flaky_scanner_profile();
  if (name == "uwb-degraded") return uwb_degraded_profile();
  if (name == "brownout") return brownout_profile();
  if (name == "harsh") {
    FaultPlan p = lossy_profile();
    merge(p, flaky_scanner_profile());
    merge(p, uwb_degraded_profile());
    merge(p, brownout_profile());
    return p;
  }
  return std::nullopt;
}

}  // namespace

const std::vector<std::string>& fault_profile_names() {
  static const std::vector<std::string> names{"none",         "lossy", "flaky-scanner",
                                              "uwb-degraded", "brownout", "harsh"};
  return names;
}

std::optional<FaultPlan> make_fault_plan(std::string_view profiles, std::uint64_t seed) {
  FaultPlan plan;
  std::string canonical;
  std::size_t start = 0;
  while (start <= profiles.size()) {
    std::size_t end = profiles.find(',', start);
    if (end == std::string_view::npos) end = profiles.size();
    const std::string_view name = profiles.substr(start, end - start);
    start = end + 1;
    if (name.empty()) continue;
    const auto piece = profile_by_name(name);
    if (!piece) return std::nullopt;
    merge(plan, *piece);
    if (!canonical.empty()) canonical += ',';
    canonical += name;
  }
  plan.profile = canonical.empty() ? "none" : canonical;
  plan.seed = seed;
  plan.crtp.seed = seed;
  plan.uart.seed = seed;
  plan.scan.seed = seed;
  plan.uwb.seed = seed;
  return plan;
}

util::Rng fault_rng(util::Rng& component_rng, std::uint64_t plan_seed, std::string_view tag) {
  return util::Rng(component_rng.fork(tag).seed() ^ splitmix(plan_seed));
}

bool CrtpFaultInjector::drop_packet() {
  if (burst_left_ > 0) {
    --burst_left_;
    if (rng_.bernoulli(faults_.burst_drop_probability)) {
      REMGEN_COUNTER_ADD("fault.crtp.burst_drops", 1);
      return true;
    }
    return false;
  }
  if (faults_.burst_start_probability > 0.0 &&
      rng_.bernoulli(faults_.burst_start_probability)) {
    const auto lo = static_cast<std::int64_t>(faults_.burst_min_packets);
    const auto hi = static_cast<std::int64_t>(
        std::max(faults_.burst_max_packets, faults_.burst_min_packets));
    burst_left_ = static_cast<std::size_t>(rng_.uniform_int(lo, hi));
    REMGEN_COUNTER_ADD("fault.crtp.bursts", 1);
    if (burst_left_ > 0) {
      --burst_left_;
      if (rng_.bernoulli(faults_.burst_drop_probability)) {
        REMGEN_COUNTER_ADD("fault.crtp.burst_drops", 1);
        return true;
      }
      return false;
    }
  }
  if (faults_.extra_loss_probability > 0.0 &&
      rng_.bernoulli(faults_.extra_loss_probability)) {
    REMGEN_COUNTER_ADD("fault.crtp.extra_drops", 1);
    return true;
  }
  return false;
}

double CrtpFaultInjector::extra_latency_s() {
  if (faults_.latency_spike_probability <= 0.0 ||
      !rng_.bernoulli(faults_.latency_spike_probability)) {
    return 0.0;
  }
  REMGEN_COUNTER_ADD("fault.crtp.latency_spikes", 1);
  if (faults_.latency_spike_max_s <= faults_.latency_spike_min_s) {
    return faults_.latency_spike_min_s;
  }
  return rng_.uniform(faults_.latency_spike_min_s, faults_.latency_spike_max_s);
}

std::string UartFaultInjector::corrupt(std::string bytes) {
  if (bytes.empty()) return bytes;
  if (faults_.truncate_write_probability > 0.0 &&
      rng_.bernoulli(faults_.truncate_write_probability)) {
    // Keep a strict prefix: at least one byte gone, possibly everything.
    const auto keep = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes.resize(keep);
    REMGEN_COUNTER_ADD("fault.uart.truncated_writes", 1);
    if (bytes.empty()) return bytes;
  }
  if (faults_.garble_byte_probability > 0.0 &&
      rng_.bernoulli(faults_.garble_byte_probability)) {
    const std::size_t at = rng_.index(bytes.size());
    bytes[at] = static_cast<char>(rng_.uniform_int(0x20, 0x7e));
    REMGEN_COUNTER_ADD("fault.uart.garbled_bytes", 1);
  }
  return bytes;
}

}  // namespace remgen::fault
