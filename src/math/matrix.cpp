#include "math/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace remgen::math {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    REMGEN_EXPECTS(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::column(const std::vector<double>& values) {
  Matrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

Matrix Matrix::diagonal(const std::vector<double>& values) {
  Matrix m(values.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) m(i, i) = values[i];
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  REMGEN_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  REMGEN_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  REMGEN_EXPECTS(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = data_[i * cols_ + k];
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out.data_[i * other.cols_ + j] += aik * other.data_[k * other.cols_ + j];
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  REMGEN_EXPECTS(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (const double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::vector<double> Matrix::column_vector(std::size_t c) const {
  REMGEN_EXPECTS(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix lu_solve(Matrix a, Matrix b) {
  REMGEN_EXPECTS(a.rows() == a.cols());
  REMGEN_EXPECTS(a.rows() == b.rows());
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();

  // Partial-pivoting Gaussian elimination on the augmented system.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) throw std::runtime_error("lu_solve: singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      for (std::size_t c = 0; c < m; ++c) std::swap(b(col, c), b(pivot, c));
    }
    const double inv_pivot = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_pivot;
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a(r, c) -= factor * a(col, c);
      for (std::size_t c = 0; c < m; ++c) b(r, c) -= factor * b(col, c);
    }
  }
  // Back substitution.
  Matrix x(n, m);
  for (std::size_t ri = n; ri-- > 0;) {
    for (std::size_t c = 0; c < m; ++c) {
      double acc = b(ri, c);
      for (std::size_t k = ri + 1; k < n; ++k) acc -= a(ri, k) * x(k, c);
      x(ri, c) = acc / a(ri, ri);
    }
  }
  return x;
}

Matrix inverse(const Matrix& a) { return lu_solve(a, Matrix::identity(a.rows())); }

Matrix cholesky_solve(Matrix a, Matrix b) {
  REMGEN_EXPECTS(a.rows() == a.cols());
  REMGEN_EXPECTS(a.rows() == b.rows());
  const std::size_t n = a.rows();
  const std::size_t m = b.cols();

  // In-place lower Cholesky factor.
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (diag <= 0.0) throw std::runtime_error("cholesky_solve: not positive definite");
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a(i, k) * a(j, k);
      a(i, j) = v / ljj;
    }
  }
  // Forward solve L y = b, then backward solve L^T x = y.
  for (std::size_t c = 0; c < m; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = b(i, c);
      for (std::size_t k = 0; k < i; ++k) acc -= a(i, k) * b(k, c);
      b(i, c) = acc / a(i, i);
    }
    for (std::size_t ii = n; ii-- > 0;) {
      double acc = b(ii, c);
      for (std::size_t k = ii + 1; k < n; ++k) acc -= a(k, ii) * b(k, c);
      b(ii, c) = acc / a(ii, ii);
    }
  }
  return b;
}

Matrix least_squares(const Matrix& a, const Matrix& b, double lambda) {
  REMGEN_EXPECTS(lambda >= 0.0);
  REMGEN_EXPECTS(a.rows() == b.rows());
  const Matrix at = a.transposed();
  Matrix normal = at * a;
  for (std::size_t i = 0; i < normal.rows(); ++i) normal(i, i) += lambda;
  return lu_solve(std::move(normal), at * b);
}

}  // namespace remgen::math
