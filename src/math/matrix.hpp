// Small dense row-major matrix of doubles.
//
// This is not a general-purpose BLAS: it provides exactly the operations the
// estimation and learning code needs (products, transpose, LU/Cholesky solves,
// inverses of small systems) with contract-checked dimensions.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/contracts.hpp"

namespace remgen::math {

/// Dense row-major matrix. Value semantics; sizes fixed at construction but
/// reassignable by copy/move.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Column vector from values.
  [[nodiscard]] static Matrix column(const std::vector<double>& values);

  /// Diagonal matrix from values.
  [[nodiscard]] static Matrix diagonal(const std::vector<double>& values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Element access with bounds contracts.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    REMGEN_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    REMGEN_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major), e.g. for tests.
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  /// Matrix sum; dimensions must match.
  [[nodiscard]] Matrix operator+(const Matrix& other) const;

  /// Matrix difference; dimensions must match.
  [[nodiscard]] Matrix operator-(const Matrix& other) const;

  /// Matrix product; inner dimensions must match.
  [[nodiscard]] Matrix operator*(const Matrix& other) const;

  /// Scalar product.
  [[nodiscard]] Matrix operator*(double s) const;

  /// In-place sum.
  Matrix& operator+=(const Matrix& other);

  /// Transpose.
  [[nodiscard]] Matrix transposed() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Maximum absolute element.
  [[nodiscard]] double max_abs() const;

  /// Extracts a single column as a std::vector.
  [[nodiscard]] std::vector<double> column_vector(std::size_t c) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b via LU decomposition with partial pivoting.
/// A must be square and b must have A.rows() rows. Throws std::runtime_error
/// if A is (numerically) singular.
[[nodiscard]] Matrix lu_solve(Matrix a, Matrix b);

/// Inverse of a square matrix via LU. Throws std::runtime_error if singular.
[[nodiscard]] Matrix inverse(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Throws std::runtime_error if A is not positive definite.
[[nodiscard]] Matrix cholesky_solve(Matrix a, Matrix b);

/// Solves the linear least-squares problem min ||A x - b||_2 via the normal
/// equations with Tikhonov damping `lambda` (>= 0) on the diagonal.
[[nodiscard]] Matrix least_squares(const Matrix& a, const Matrix& b, double lambda = 0.0);

}  // namespace remgen::math
