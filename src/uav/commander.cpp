#include "uav/commander.hpp"

#include <limits>

namespace remgen::uav {

const char* commander_mode_name(CommanderMode mode) {
  switch (mode) {
    case CommanderMode::Idle: return "idle";
    case CommanderMode::Active: return "active";
    case CommanderMode::LevelOut: return "level-out";
    case CommanderMode::EmergencyStop: return "emergency-stop";
  }
  return "?";
}

void Commander::set_setpoint(const geom::Vec3& position, double yaw_rad, double now_s) {
  if (mode_ == CommanderMode::EmergencyStop) return;
  setpoint_ = position;
  yaw_rad_ = yaw_rad;
  last_setpoint_time_ = now_s;
  mode_ = CommanderMode::Active;
}

void Commander::step(double now_s) {
  if (mode_ == CommanderMode::Idle || mode_ == CommanderMode::EmergencyStop) return;
  const double age = now_s - last_setpoint_time_;
  if (age > config_.wdt_timeout_shutdown_s) {
    mode_ = CommanderMode::EmergencyStop;
  } else if (age > config_.level_out_timeout_s) {
    mode_ = CommanderMode::LevelOut;
  } else {
    mode_ = CommanderMode::Active;
  }
}

void Commander::reboot() {
  mode_ = CommanderMode::Idle;
  setpoint_.reset();
  yaw_rad_ = 0.0;
  last_setpoint_time_ = 0.0;
}

double Commander::setpoint_age(double now_s) const {
  if (!setpoint_) return std::numeric_limits<double>::infinity();
  return now_s - last_setpoint_time_;
}

}  // namespace remgen::uav
