// Simplified quadrotor translational dynamics.
//
// The behaviours under study (waypoint visiting, hover hold during scans,
// endurance) are captured by a velocity-tracking point-mass model with
// acceleration limits and hover turbulence; attitude dynamics are abstracted
// away (the commander's level-out behaviour is modelled at the velocity
// level).
#pragma once

#include "geom/vec3.hpp"
#include "util/rng.hpp"

namespace remgen::uav {

/// Flight envelope and control-loop parameters.
struct DynamicsConfig {
  double max_speed_mps = 1.0;       ///< Conservative indoor speed.
  double max_accel_mps2 = 2.5;      ///< Thrust-limited acceleration.
  double velocity_gain = 4.0;       ///< P gain, velocity error -> acceleration.
  double hover_jitter_mps2 = 0.15;  ///< Turbulence/controller noise (accel).
  double erratic_jitter_mps2 = 2.0; ///< Extra noise once the battery is gone.
};

/// Point-mass quadrotor state integrator.
class QuadrotorDynamics {
 public:
  QuadrotorDynamics(const DynamicsConfig& config, const geom::Vec3& initial_position)
      : config_(config), position_(initial_position) {}

  /// One integration step tracking `velocity_command` (clamped to the
  /// envelope). `erratic` injects the end-of-battery instability.
  void step(double dt, const geom::Vec3& velocity_command, bool erratic, util::Rng& rng);

  /// Immediately zeroes velocity (motors off on the ground).
  void halt() { velocity_ = {}; acceleration_ = {}; }

  [[nodiscard]] const geom::Vec3& position() const noexcept { return position_; }
  [[nodiscard]] const geom::Vec3& velocity() const noexcept { return velocity_; }

  /// Acceleration applied in the last step (world frame; what an ideal IMU
  /// would report after gravity compensation).
  [[nodiscard]] const geom::Vec3& acceleration() const noexcept { return acceleration_; }

  [[nodiscard]] const DynamicsConfig& config() const noexcept { return config_; }

 private:
  DynamicsConfig config_;
  geom::Vec3 position_;
  geom::Vec3 velocity_;
  geom::Vec3 acceleration_;
};

}  // namespace remgen::uav
