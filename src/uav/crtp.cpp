#include "uav/crtp.hpp"

#include "flightlog/flightlog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace remgen::uav {

bool CrtpLink::on_air_loss() {
  if (rng_.bernoulli(config_.loss_probability)) return true;
  if (injector_ && injector_->drop_packet()) {
    REMGEN_COUNTER_ADD("fault.crtp.injected_drops", 1);
    REMGEN_FLIGHTLOG(flightlog::EventKind::FaultInjected,
                     flightlog::FaultEvent{"crtp", "injected_drop"});
    return true;
  }
  return false;
}

double CrtpLink::delivery_latency_s() {
  double latency = config_.latency_s;
  if (injector_) latency += injector_->extra_latency_s();
  return latency;
}

void CrtpLink::set_radio_enabled(bool enabled, double now_s) {
  if (enabled == radio_on_) return;
  radio_on_ = enabled;
  if (obs::enabled()) {
    obs::set_sim_time(now_s);
    obs::instant(enabled ? "crtp.radio_on" : "crtp.radio_off", "crtp");
    obs::registry().counter(enabled ? "crtp.radio_on_events" : "crtp.radio_off_events").add(1);
  }
  // Link down/up with the TX backlog at the toggle: at radio-on this is the
  // number of frames about to flush through the lossy link.
  REMGEN_FLIGHTLOG_AT(enabled ? flightlog::EventKind::RadioOn : flightlog::EventKind::RadioOff,
                      now_s, flightlog::LinkEvent{tx_queue_.size(), tx_queue_drops_});
  if (enabled) {
    // Flush the UAV TX queue through the restored link.
    while (!tx_queue_.empty()) {
      CrtpPacket packet = std::move(tx_queue_.front());
      tx_queue_.pop_front();
      if (on_air_loss()) {
        ++link_drops_;
        REMGEN_COUNTER_ADD("crtp.link_drops", 1);
        continue;
      }
      to_base_.push_back({std::move(packet), now_s + delivery_latency_s()});
    }
  }
}

bool CrtpLink::uav_send(CrtpPacket packet, double now_s) {
  packet.sent_at_s = now_s;
  if (!radio_on_) {
    if (tx_queue_.size() >= config_.tx_queue_size) {
      ++tx_queue_drops_;
      REMGEN_COUNTER_ADD("crtp.tx_queue_drops", 1);
      return false;
    }
    tx_queue_.push_back(std::move(packet));
    return true;
  }
  if (on_air_loss()) {
    ++link_drops_;
    REMGEN_COUNTER_ADD("crtp.link_drops", 1);
    return false;
  }
  to_base_.push_back({std::move(packet), now_s + delivery_latency_s()});
  return true;
}

bool CrtpLink::base_send(CrtpPacket packet, double now_s) {
  packet.sent_at_s = now_s;
  if (!radio_on_) {
    ++link_drops_;
    REMGEN_COUNTER_ADD("crtp.link_drops", 1);
    return false;
  }
  if (on_air_loss()) {
    ++link_drops_;
    REMGEN_COUNTER_ADD("crtp.link_drops", 1);
    return false;
  }
  to_uav_.push_back({std::move(packet), now_s + delivery_latency_s()});
  return true;
}

std::vector<CrtpPacket> CrtpLink::base_receive(double now_s) {
  std::vector<CrtpPacket> out;
  while (!to_base_.empty() && to_base_.front().deliver_at_s <= now_s) {
    out.push_back(std::move(to_base_.front().packet));
    to_base_.pop_front();
  }
  return out;
}

std::vector<CrtpPacket> CrtpLink::uav_receive(double now_s) {
  std::vector<CrtpPacket> out;
  while (!to_uav_.empty() && to_uav_.front().deliver_at_s <= now_s) {
    out.push_back(std::move(to_uav_.front().packet));
    to_uav_.pop_front();
  }
  return out;
}

}  // namespace remgen::uav
