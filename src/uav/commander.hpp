// The Crazyflie commander framework (Figure 4 of the paper): consumes
// position setpoints, levels out when setpoints stop arriving for 500 ms, and
// shuts the platform down when none arrive within the commander watchdog
// timeout. The paper raises COMMANDER_WDT_TIMEOUT_SHUTDOWN to 10 s so the
// radio-off scan window can be bridged by the deck's position-hold feedback
// task.
#pragma once

#include <optional>

#include "geom/vec3.hpp"
#include "util/contracts.hpp"

namespace remgen::uav {

/// Commander timeouts (names mirror the firmware constants).
struct CommanderConfig {
  double level_out_timeout_s = 0.5;     ///< Attitude-zero after this gap.
  double wdt_timeout_shutdown_s = 2.0;  ///< Firmware default; the paper sets 10 s.
};

/// Commander operating mode.
enum class CommanderMode {
  Idle,           ///< Never received a setpoint (on the ground).
  Active,         ///< Tracking the latest setpoint.
  LevelOut,       ///< Setpoints stale > 500 ms: attitude zeroed, drifting.
  EmergencyStop,  ///< Watchdog fired: motors off.
};

/// Human-readable mode name.
[[nodiscard]] const char* commander_mode_name(CommanderMode mode);

/// Setpoint consumer with the firmware's staleness semantics.
class Commander {
 public:
  explicit Commander(const CommanderConfig& config = {}) : config_(config) {
    REMGEN_EXPECTS(config.level_out_timeout_s > 0.0);
    REMGEN_EXPECTS(config.wdt_timeout_shutdown_s > config.level_out_timeout_s);
  }

  /// Feeds a position setpoint (from the radio link or the deck's hold task).
  /// Ignored after an emergency stop — the platform must be rebooted.
  void set_setpoint(const geom::Vec3& position, double yaw_rad, double now_s);

  /// Re-evaluates staleness at time `now_s`. Call every firmware tick.
  void step(double now_s);

  /// Clears state for a new flight (power cycle).
  void reboot();

  [[nodiscard]] CommanderMode mode() const noexcept { return mode_; }

  /// Latest setpoint, if any was ever received.
  [[nodiscard]] std::optional<geom::Vec3> setpoint() const noexcept { return setpoint_; }

  [[nodiscard]] double yaw() const noexcept { return yaw_rad_; }

  /// Seconds since the last setpoint (infinity if none yet).
  [[nodiscard]] double setpoint_age(double now_s) const;

  [[nodiscard]] const CommanderConfig& config() const noexcept { return config_; }

 private:
  CommanderConfig config_;
  CommanderMode mode_ = CommanderMode::Idle;
  std::optional<geom::Vec3> setpoint_;
  double yaw_rad_ = 0.0;
  double last_setpoint_time_ = 0.0;
};

}  // namespace remgen::uav
