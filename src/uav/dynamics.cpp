#include "uav/dynamics.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace remgen::uav {

namespace {
geom::Vec3 clamp_norm(const geom::Vec3& v, double limit) {
  const double n = v.norm();
  if (n <= limit || n < 1e-12) return v;
  return v * (limit / n);
}
}  // namespace

void QuadrotorDynamics::step(double dt, const geom::Vec3& velocity_command, bool erratic,
                             util::Rng& rng) {
  REMGEN_EXPECTS(dt > 0.0);
  const geom::Vec3 v_cmd = clamp_norm(velocity_command, config_.max_speed_mps);

  geom::Vec3 accel = (v_cmd - velocity_) * config_.velocity_gain;
  accel = clamp_norm(accel, config_.max_accel_mps2);

  const double jitter =
      config_.hover_jitter_mps2 + (erratic ? config_.erratic_jitter_mps2 : 0.0);
  accel += {rng.gaussian(0.0, jitter), rng.gaussian(0.0, jitter), rng.gaussian(0.0, jitter)};

  position_ += velocity_ * dt + accel * (0.5 * dt * dt);
  velocity_ += accel * dt;
  acceleration_ = accel;
}

}  // namespace remgen::uav
