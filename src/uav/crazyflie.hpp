// The Crazyflie 2.1 aggregate: dynamics + battery + commander + LPS (UWB tag
// deck) + REM-receiver deck + CRTP link, stepped as one firmware loop.
//
// The base station talks to the UAV exclusively through the CrtpLink using a
// small textual command set on port "cmd":
//   takeoff <z>        rise to height z at the current position
//   goto <x> <y> <z>   position setpoint (resent continuously by the client)
//   scan <wp>          start a REM measurement tagged with waypoint index wp
//   land               descend and cut motors near the floor
//   stop               cut motors immediately
// The UAV emits on port "tlm":
//   state <x> <y> <z> <battery> <mode>            (periodic, radio on only)
//   scanmeta <wp> <x> <y> <z> <n>                 (estimated scan position)
//   scanres <wp> <ssid> <rssi> <mac> <channel>    (one per detected AP)
// Scan telemetry is sent through the CRTP TX queue, so it survives the
// radio-off window iff CRTP_TX_QUEUE_SIZE is large enough — exactly the
// firmware change the paper describes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "geom/floorplan.hpp"
#include "radio/environment.hpp"
#include "radio/interference.hpp"
#include "scanner/esp8266.hpp"
#include "uav/battery.hpp"
#include "uav/commander.hpp"
#include "uav/crtp.hpp"
#include "uav/dynamics.hpp"
#include "uav/remdeck.hpp"
#include "uwb/lps.hpp"
#include "uwb/positioning.hpp"
#include "util/rng.hpp"

namespace remgen::uav {

/// Full per-UAV configuration.
struct CrazyflieConfig {
  BatteryConfig battery;
  DynamicsConfig dynamics;
  CommanderConfig commander{.level_out_timeout_s = 0.5,
                            .wdt_timeout_shutdown_s = 10.0};  // the paper's raised WDT
  CrtpConfig crtp{.tx_queue_size = 128};  // the paper's enlarged TX queue
  uwb::LpsConfig lps;
  scanner::Esp8266Config esp;
  double position_gain = 1.5;        ///< P gain, position error -> velocity cmd.
  double imu_accel_noise = 0.25;     ///< m/s^2 accelerometer noise fed to the EKF.
  double telemetry_period_s = 0.5;   ///< State telemetry rate (radio on).
  double hold_feed_period_s = 0.1;   ///< The deck hold task's 100 ms feedback.
  double landing_height_m = 0.12;    ///< Motors cut below this during landing.
  fault::BatteryFaults battery_faults;  ///< Injected cell degradation.
};

/// Distributes a campaign-level fault plan into the per-subsystem fault
/// configs this UAV's components read (CRTP link, ESP module/UART, LPS,
/// battery). A disabled plan leaves the config untouched.
void apply_fault_plan(const fault::FaultPlan& plan, CrazyflieConfig& config);

/// One simulated Crazyflie.
class Crazyflie {
 public:
  /// `environment` and `floorplan` must outlive the UAV. Builds a UWB Loco
  /// Positioning stack from the given anchors.
  Crazyflie(int id, const radio::RadioEnvironment& environment,
            const geom::Floorplan* floorplan, std::vector<uwb::Anchor> anchors,
            const CrazyflieConfig& config, const geom::Vec3& start_position, util::Rng rng);

  /// Same, but with a caller-supplied positioning stack (e.g. the Lighthouse
  /// system) instead of UWB, and optionally a caller-supplied REM-receiver
  /// deck (e.g. the BLE observer) instead of the Wi-Fi scanner.
  Crazyflie(int id, const radio::RadioEnvironment& environment,
            std::unique_ptr<uwb::PositioningSystem> positioning, const CrazyflieConfig& config,
            const geom::Vec3& start_position, util::Rng rng,
            std::unique_ptr<RemReceiverDeck> deck = nullptr);

  /// Advances the firmware loop by one tick of dt seconds.
  void step(double dt);

  /// Simulation time as seen by this UAV's firmware.
  [[nodiscard]] double now() const noexcept { return now_s_; }

  /// The radio link (the base station's handle on this UAV).
  [[nodiscard]] CrtpLink& link() noexcept { return link_; }

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] const geom::Vec3& true_position() const noexcept { return dynamics_.position(); }
  [[nodiscard]] geom::Vec3 estimated_position() const {
    return positioning_->estimated_position();
  }
  [[nodiscard]] const Battery& battery() const noexcept { return battery_; }
  [[nodiscard]] const Commander& commander() const noexcept { return commander_; }
  [[nodiscard]] const RemReceiverDeck& deck() const noexcept { return *deck_; }
  [[nodiscard]] bool flying() const noexcept { return flying_; }
  [[nodiscard]] bool erratic() const noexcept { return battery_.exhausted(); }
  [[nodiscard]] const radio::CrazyradioInterference& interference() const noexcept {
    return interference_;
  }
  [[nodiscard]] const uwb::PositioningSystem& positioning() const noexcept {
    return *positioning_;
  }

  /// Number of completed measurements since boot.
  [[nodiscard]] std::size_t completed_scans() const noexcept { return completed_scans_; }

 private:
  void process_command(const std::string& payload);
  void collect_scan_results();
  void send_state_telemetry();
  [[nodiscard]] geom::Vec3 velocity_command() const;

  int id_;
  CrazyflieConfig config_;
  util::Rng rng_;
  double now_s_ = 0.0;

  QuadrotorDynamics dynamics_;
  Battery battery_;
  Commander commander_;
  CrtpLink link_;
  radio::CrazyradioInterference interference_;
  std::unique_ptr<uwb::PositioningSystem> positioning_;
  std::unique_ptr<RemReceiverDeck> deck_;

  bool flying_ = false;
  bool landing_ = false;
  bool measuring_ = false;
  int current_waypoint_ = -1;
  geom::Vec3 hold_position_;        ///< Estimated position latched at scan start.
  double next_hold_feed_s_ = 0.0;
  double next_telemetry_s_ = 0.0;
  double next_fix_log_s_ = 0.0;     ///< Flight-recorder UWB fix-quality cadence.
  double deck_error_since_ = -1.0;  ///< Start of the current deck-error episode.
  std::size_t completed_scans_ = 0;
};

}  // namespace remgen::uav
