// Crazyradio RealTime Protocol (CRTP) link simulation.
//
// Models the properties the paper's design depends on: the link can be
// switched off at the base station (Crazyradio dongle) to avoid
// self-interference during scans; while it is off, UAV-originated packets
// accumulate in a bounded firmware TX queue (CRTP_TX_QUEUE_SIZE — the paper
// enlarges it so a full scan result survives the radio-off window) and
// base-originated packets are simply lost; when the radio comes back, queued
// packets flush in order after the link latency.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace remgen::uav {

/// One CRTP packet (payload abstracted as a string; `port` mirrors CRTP's
/// port multiplexing).
struct CrtpPacket {
  std::string port;
  std::string payload;
  double sent_at_s = 0.0;
};

/// Link parameters.
struct CrtpConfig {
  std::size_t tx_queue_size = 16;    ///< Firmware default; the paper enlarges it.
  double latency_s = 0.004;          ///< One-way delivery latency.
  double loss_probability = 0.005;   ///< Random on-air loss when the radio is on.
  double carrier_mhz = 2450.0;       ///< nRF24 channel (interference source).
  fault::CrtpFaults faults;          ///< Injected adversity (disabled by default).
};

/// Bidirectional CRTP link between one UAV and the base station.
class CrtpLink {
 public:
  CrtpLink(const CrtpConfig& config, util::Rng rng) : config_(config), rng_(rng) {
    REMGEN_EXPECTS(config.tx_queue_size > 0);
    REMGEN_EXPECTS(config.latency_s >= 0.0);
    // Only fork the injector stream when faults are active: forking consumes
    // parent state, and a fault-free link must stay byte-identical.
    if (config.faults.enabled()) {
      injector_.emplace(config.faults,
                        fault::fault_rng(rng_, config.faults.seed, "crtp"));
    }
  }

  [[nodiscard]] const CrtpConfig& config() const noexcept { return config_; }

  /// Switches the base-station dongle on/off. Turning it on flushes the UAV's
  /// TX queue (packets become deliverable after the link latency from `now_s`).
  void set_radio_enabled(bool enabled, double now_s);
  [[nodiscard]] bool radio_enabled() const noexcept { return radio_on_; }

  /// UAV -> base. Returns false if the packet was dropped (queue overflow
  /// while the radio is off, or on-air loss).
  bool uav_send(CrtpPacket packet, double now_s);

  /// Base -> UAV. Returns false if dropped (radio off, or on-air loss).
  bool base_send(CrtpPacket packet, double now_s);

  /// Packets that have arrived at the base station by `now_s`, in order.
  [[nodiscard]] std::vector<CrtpPacket> base_receive(double now_s);

  /// Packets that have arrived at the UAV by `now_s`, in order.
  [[nodiscard]] std::vector<CrtpPacket> uav_receive(double now_s);

  /// Packets currently waiting in the UAV's TX queue (radio off).
  [[nodiscard]] std::size_t tx_queue_depth() const noexcept { return tx_queue_.size(); }

  /// Total packets dropped due to TX queue overflow (the failure mode the
  /// paper's CRTP_TX_QUEUE_SIZE increase prevents).
  [[nodiscard]] std::size_t tx_queue_drops() const noexcept { return tx_queue_drops_; }

  /// Total packets lost on air or while the radio was off (base->UAV).
  [[nodiscard]] std::size_t link_drops() const noexcept { return link_drops_; }

 private:
  struct InFlight {
    CrtpPacket packet;
    double deliver_at_s;
  };

  /// True when an on-air packet is lost (base loss model + injected faults).
  [[nodiscard]] bool on_air_loss();
  /// One-way latency for a surviving packet (base + injected spike).
  [[nodiscard]] double delivery_latency_s();

  CrtpConfig config_;
  util::Rng rng_;
  std::optional<fault::CrtpFaultInjector> injector_;
  bool radio_on_ = true;
  std::deque<CrtpPacket> tx_queue_;       ///< UAV-side queue while radio off.
  std::deque<InFlight> to_base_;
  std::deque<InFlight> to_uav_;
  std::size_t tx_queue_drops_ = 0;
  std::size_t link_drops_ = 0;
};

}  // namespace remgen::uav
