// Technology-agnostic REM-sampling receiver deck interface.
//
// One of the paper's two extra design requirements over prior work is a
// modular interface between the UAV and any REM-sampling device (Wi-Fi,
// LoRa, BLE, mmWave, ...): the user provides a driver that reacts to four
// instructions — initialize, check state, collect a measurement, parse the
// output — over UART or I2C, and the receiver must fit the deck's size and
// weight budget. This header is that contract; WifiScannerDeck is the paper's
// ESP-01 instantiation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "radio/ble.hpp"
#include "radio/environment.hpp"
#include "scanner/ble_driver.hpp"
#include "scanner/ble_module.hpp"
#include "scanner/driver.hpp"
#include "scanner/esp8266.hpp"
#include "scanner/i2c.hpp"
#include "scanner/uart.hpp"
#include "util/rng.hpp"

namespace remgen::uav {

/// Deck-level receiver state (a technology-neutral view of the driver).
enum class DeckState {
  Uninitialized,
  Initializing,
  Ready,
  Measuring,
  ResultsReady,
  Error,
};

/// Physical integration constraints the paper states for carried receivers.
struct DeckBudget {
  double max_weight_g = 20.0;  ///< "up to 20 grams"
  double max_length_mm = 30.0; ///< "USB-dongle dimensions"
};

/// The four-instruction driver contract.
class RemReceiverDeck {
 public:
  virtual ~RemReceiverDeck() = default;

  /// Instruction (i): initialize the receiver.
  virtual void initialize(double now_s) = 0;

  /// Instruction (ii): check the receiver state.
  [[nodiscard]] virtual DeckState state() const = 0;

  /// Instruction (iii): instruct the receiver to collect a measurement.
  /// Returns false unless the deck is Ready.
  virtual bool start_measurement(double now_s) = 0;

  /// Instruction (iv): parse the output of the previous instruction.
  /// Valid only in ResultsReady; transitions back to Ready.
  [[nodiscard]] virtual std::vector<scanner::ScanTuple> parse_results() = 0;

  /// Advances the deck's internals one firmware tick.
  virtual void step(double now_s) = 0;

  // --- simulation harness hooks ---------------------------------------------

  /// Supplies the antenna position used when a measurement completes.
  virtual void set_position_provider(std::function<geom::Vec3()> provider) = 0;

  /// Couples/decouples the co-located Crazyradio interferer (nullptr = none).
  virtual void set_interference(const radio::CrazyradioInterference* interference) = 0;

  /// Nominal measurement duration (used by mission timing).
  [[nodiscard]] virtual double scan_duration_s() const = 0;
};

/// The paper's instantiation: ESP-01 module soldered on a prototyping deck,
/// driven over UART with AT commands.
class WifiScannerDeck final : public RemReceiverDeck {
 public:
  WifiScannerDeck(const radio::RadioEnvironment& environment,
                  const scanner::Esp8266Config& config, util::Rng rng);

  void initialize(double now_s) override { driver_.request_init(now_s); }
  [[nodiscard]] DeckState state() const override;
  bool start_measurement(double now_s) override { return driver_.request_scan(now_s); }
  [[nodiscard]] std::vector<scanner::ScanTuple> parse_results() override {
    return driver_.take_results();
  }
  void step(double now_s) override {
    module_.step(now_s);
    driver_.step(now_s);
  }

  void set_position_provider(std::function<geom::Vec3()> provider) override {
    module_.set_position_provider(std::move(provider));
  }
  void set_interference(const radio::CrazyradioInterference* interference) override {
    module_.set_interference(interference);
  }
  [[nodiscard]] double scan_duration_s() const override { return scan_duration_s_; }

 private:
  scanner::SimUart uart_;
  scanner::Esp8266Module module_;
  scanner::ScannerDriver driver_;
  double scan_duration_s_;
};

/// The BLE instantiation: an I2C register module observing the three BLE
/// advertising channels. Integrating it required exactly the four driver
/// instructions — the modularity claim of the paper, demonstrated with a
/// second wireless technology and a second hardware interface.
class BleScannerDeck final : public RemReceiverDeck {
 public:
  BleScannerDeck(const radio::BleEnvironment& environment,
                 const scanner::BleModuleConfig& config, util::Rng rng);

  void initialize(double now_s) override { driver_.request_init(now_s); }
  [[nodiscard]] DeckState state() const override;
  bool start_measurement(double now_s) override { return driver_.request_scan(now_s); }
  [[nodiscard]] std::vector<scanner::ScanTuple> parse_results() override {
    return driver_.take_results();
  }
  void step(double now_s) override {
    module_.step(now_s);
    driver_.step(now_s);
  }

  void set_position_provider(std::function<geom::Vec3()> provider) override {
    module_.set_position_provider(std::move(provider));
  }
  void set_interference(const radio::CrazyradioInterference* interference) override {
    module_.set_interference(interference);
  }
  [[nodiscard]] double scan_duration_s() const override { return scan_duration_s_; }

 private:
  scanner::SimI2cBus bus_;
  scanner::BleObserverModule module_;
  scanner::BleScannerDriver driver_;
  double scan_duration_s_;
};

}  // namespace remgen::uav
