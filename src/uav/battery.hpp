// Crazyflie battery/endurance model.
//
// The paper's endurance experiment: a fully loaded Crazyflie (LPS deck +
// custom ESP8266 deck) hovering at 1 m, scanning every 8 s with ~2 s scans,
// performed 36 scans over 6 min 12 s before becoming erratic. The default
// parameters below are calibrated so that exact scenario depletes the usable
// charge in ~372 s (see bench_endurance).
#pragma once

#include "fault/fault.hpp"
#include "util/contracts.hpp"

namespace remgen::uav {

/// Electrical parameters of the powertrain and payload.
struct BatteryConfig {
  double capacity_mah = 250.0;        ///< Stock Crazyflie 2.1 cell.
  double usable_fraction = 0.92;      ///< Below this the UAV flies erratically.
  double base_current_ma = 150.0;     ///< MCU, radios, decks idle.
  double hover_current_ma = 1950.0;   ///< Motors at hover with deck payload.
  double move_extra_ma_per_mps = 220.0;  ///< Extra draw when translating.
  double scan_current_ma = 450.0;     ///< ESP8266 receiver during a sweep.
};

/// Applies injected degradation (sagged capacity, parasitic draw) to a cell's
/// electrical parameters. The identity plan returns the config unchanged.
[[nodiscard]] inline BatteryConfig with_faults(BatteryConfig config,
                                               const fault::BatteryFaults& faults) {
  config.capacity_mah *= faults.capacity_scale;
  config.base_current_ma += faults.extra_base_current_ma;
  return config;
}

/// Integrates charge consumption over the flight.
class Battery {
 public:
  explicit Battery(const BatteryConfig& config = {}) : config_(config) {
    REMGEN_EXPECTS(config.capacity_mah > 0.0);
    REMGEN_EXPECTS(config.usable_fraction > 0.0 && config.usable_fraction <= 1.0);
  }

  [[nodiscard]] const BatteryConfig& config() const noexcept { return config_; }

  /// Draws `current_ma` for `dt` seconds.
  void drain(double dt_s, double current_ma) {
    REMGEN_EXPECTS(dt_s >= 0.0);
    REMGEN_EXPECTS(current_ma >= 0.0);
    consumed_mah_ += current_ma * dt_s / 3600.0;
  }

  /// Instantaneous current draw for a flight condition, in mA.
  [[nodiscard]] double current_ma(bool flying, double speed_mps, bool scanning) const {
    double current = config_.base_current_ma;
    if (flying) current += config_.hover_current_ma + config_.move_extra_ma_per_mps * speed_mps;
    if (scanning) current += config_.scan_current_ma;
    return current;
  }

  /// Charge consumed so far in mAh.
  [[nodiscard]] double consumed_mah() const noexcept { return consumed_mah_; }

  /// Remaining fraction of total capacity, clamped to [0, 1].
  [[nodiscard]] double fraction_remaining() const noexcept {
    const double f = 1.0 - consumed_mah_ / config_.capacity_mah;
    return f < 0.0 ? 0.0 : f;
  }

  /// True once the usable charge is gone: flight becomes erratic (the paper's
  /// "less responsive and its motions erratic").
  [[nodiscard]] bool exhausted() const noexcept {
    return fraction_remaining() < 1.0 - config_.usable_fraction;
  }

 private:
  BatteryConfig config_;
  double consumed_mah_ = 0.0;
};

}  // namespace remgen::uav
