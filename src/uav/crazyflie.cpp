#include "uav/crazyflie.hpp"

#include <sstream>

#include "flightlog/flightlog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/quoted.hpp"

namespace remgen::uav {

void apply_fault_plan(const fault::FaultPlan& plan, CrazyflieConfig& config) {
  if (!plan.enabled()) return;
  config.crtp.faults = plan.crtp;
  config.esp.scan_faults = plan.scan;
  config.esp.uart_faults = plan.uart;
  config.lps.faults = plan.uwb;
  config.battery_faults = plan.battery;
}

Crazyflie::Crazyflie(int id, const radio::RadioEnvironment& environment,
                     const geom::Floorplan* floorplan, std::vector<uwb::Anchor> anchors,
                     const CrazyflieConfig& config, const geom::Vec3& start_position,
                     util::Rng rng)
    : id_(id),
      config_(config),
      rng_(rng),
      dynamics_(config.dynamics, start_position),
      battery_(with_faults(config.battery, config.battery_faults)),
      commander_(config.commander),
      link_(config.crtp, rng_.fork("crtp")),
      interference_(radio::CrazyradioConfig{.carrier_mhz = config.crtp.carrier_mhz}),
      positioning_(std::make_unique<uwb::LocoPositioningSystem>(
          std::move(anchors), floorplan, config.lps, rng_.fork("lps"))),
      deck_(std::make_unique<WifiScannerDeck>(environment, config.esp, rng_.fork("deck"))) {
  deck_->set_position_provider([this] { return dynamics_.position(); });
  deck_->set_interference(&interference_);
  positioning_->initialize_at(start_position);
  deck_->initialize(now_s_);
}

Crazyflie::Crazyflie(int id, const radio::RadioEnvironment& environment,
                     std::unique_ptr<uwb::PositioningSystem> positioning,
                     const CrazyflieConfig& config, const geom::Vec3& start_position,
                     util::Rng rng, std::unique_ptr<RemReceiverDeck> deck)
    : id_(id),
      config_(config),
      rng_(rng),
      dynamics_(config.dynamics, start_position),
      battery_(with_faults(config.battery, config.battery_faults)),
      commander_(config.commander),
      link_(config.crtp, rng_.fork("crtp")),
      interference_(radio::CrazyradioConfig{.carrier_mhz = config.crtp.carrier_mhz}),
      positioning_(std::move(positioning)),
      deck_(deck != nullptr
                ? std::move(deck)
                : std::make_unique<WifiScannerDeck>(environment, config.esp, rng_.fork("deck"))) {
  REMGEN_EXPECTS(positioning_ != nullptr);
  deck_->set_position_provider([this] { return dynamics_.position(); });
  deck_->set_interference(&interference_);
  positioning_->initialize_at(start_position);
  deck_->initialize(now_s_);
}

geom::Vec3 Crazyflie::velocity_command() const {
  if (!flying_) return {};
  switch (commander_.mode()) {
    case CommanderMode::Active:
      if (const auto sp = commander_.setpoint()) {
        return (*sp - positioning_->estimated_position()) * config_.position_gain;
      }
      return {};
    case CommanderMode::LevelOut:
    case CommanderMode::Idle:
      return {};  // attitude zeroed: no commanded translation, only drift
    case CommanderMode::EmergencyStop:
      return {};
  }
  return {};
}

void Crazyflie::process_command(const std::string& payload) {
  std::istringstream in(payload);
  std::string verb;
  in >> verb;
  if (verb == "takeoff") {
    double z = 1.0;
    in >> z;
    flying_ = true;
    landing_ = false;
    const geom::Vec3 here = positioning_->estimated_position();
    commander_.set_setpoint({here.x, here.y, z}, 0.0, now_s_);
  } else if (verb == "goto") {
    geom::Vec3 target;
    if (in >> target.x >> target.y >> target.z) {
      commander_.set_setpoint(target, 0.0, now_s_);
    }
  } else if (verb == "scan") {
    int waypoint = -1;
    in >> waypoint;
    if (!measuring_ && deck_->state() == DeckState::Ready &&
        deck_->start_measurement(now_s_)) {
      measuring_ = true;
      current_waypoint_ = waypoint;
      // Latch the hold position: the deck's FreeRTOS task will feed it back
      // to the commander every 100 ms while the radio is down.
      hold_position_ = positioning_->estimated_position();
      next_hold_feed_s_ = now_s_;
      REMGEN_FLIGHTLOG_AT(flightlog::EventKind::WaypointHold, now_s_,
                          flightlog::WaypointEvent{waypoint, hold_position_});
    }
  } else if (verb == "land") {
    if (flying_) {
      landing_ = true;
      // Command straight down to the floor; motors cut at landing_height_m
      // based on the true altitude, so an estimate bias cannot stall the
      // descent above the cut height.
      const geom::Vec3 here = positioning_->estimated_position();
      commander_.set_setpoint({here.x, here.y, -0.2}, 0.0, now_s_);
    }
  } else if (verb == "stop") {
    flying_ = false;
    landing_ = false;
    dynamics_.halt();
  } else {
    util::logf(util::LogLevel::Warn, "crazyflie", "uav {}: unknown command '{}'", id_, payload);
  }
}

void Crazyflie::collect_scan_results() {
  const std::vector<scanner::ScanTuple> tuples = deck_->parse_results();
  // Location annotation: the position estimate latched when the scan began —
  // the UAV was holding that position for the duration of the sweep.
  link_.uav_send({"tlm", util::format("scanmeta {} {:.4f} {:.4f} {:.4f} {}", current_waypoint_,
                                      hold_position_.x, hold_position_.y, hold_position_.z,
                                      tuples.size())},
                 now_s_);
  for (const scanner::ScanTuple& t : tuples) {
    // The SSID is free text: quote it so spaces, empty (hidden) SSIDs, and
    // embedded quotes survive the space-delimited telemetry framing.
    link_.uav_send({"tlm", util::format("scanres {} {} {} {} {}", current_waypoint_,
                                        util::quote_field(t.ssid), t.rssi_dbm,
                                        t.mac.to_string(), t.channel)},
                   now_s_);
  }
  measuring_ = false;
  ++completed_scans_;
  REMGEN_COUNTER_ADD("uav.scans_completed", 1);
  REMGEN_COUNTER_ADD("uav.scan_tuples", tuples.size());
}

void Crazyflie::send_state_telemetry() {
  const geom::Vec3 p = positioning_->estimated_position();
  link_.uav_send({"tlm", util::format("state {:.4f} {:.4f} {:.4f} {:.3f} {}", p.x, p.y, p.z,
                                      battery_.fraction_remaining(),
                                      commander_mode_name(commander_.mode()))},
                 now_s_);
}

void Crazyflie::step(double dt) {
  REMGEN_EXPECTS(dt > 0.0);
  now_s_ += dt;
  // Publish the co-simulation clock so spans can carry simulated time.
  if (obs::enabled()) obs::set_sim_time(now_s_);
  // And to the flight recorder, whose events are stamped with this UAV's
  // clock via the thread-local mission context.
  if (flightlog::enabled()) flightlog::set_sim_time(now_s_);
  REMGEN_COUNTER_ADD("uav.ticks", 1);

  // The nRF on-air interferer exists only while the base's dongle is up.
  interference_.set_enabled(link_.radio_enabled());

  // 1. Radio RX: commands from the base station.
  for (const CrtpPacket& packet : link_.uav_receive(now_s_)) {
    if (packet.port == "cmd") process_command(packet.payload);
  }

  // 2. Expansion deck (ESP module + driver).
  deck_->step(now_s_);
  if (measuring_ && deck_->state() == DeckState::ResultsReady) collect_scan_results();
  if (measuring_ && deck_->state() == DeckState::Error) {
    util::logf(util::LogLevel::Warn, "crazyflie", "uav {}: scan failed at waypoint {}", id_,
               current_waypoint_);
    REMGEN_COUNTER_ADD("uav.scan_failures", 1);
    measuring_ = false;
  }
  // Deck self-healing: a driver error (timeout, garbled reply) re-runs the
  // init handshake after a short backoff instead of bricking the receiver
  // for the rest of the flight.
  if (deck_->state() == DeckState::Error && !measuring_) {
    if (deck_error_since_ < 0.0) deck_error_since_ = now_s_;
    if (now_s_ - deck_error_since_ > 0.5) {
      util::logf(util::LogLevel::Info, "crazyflie", "uav {}: reinitializing receiver deck",
                 id_);
      REMGEN_COUNTER_ADD("uav.deck_reinits", 1);
      deck_->initialize(now_s_);
      deck_error_since_ = -1.0;
    }
  } else if (deck_->state() != DeckState::Error) {
    deck_error_since_ = -1.0;
  }

  // 3. Hold-position feedback task (active only while measuring).
  if (measuring_ && now_s_ >= next_hold_feed_s_) {
    commander_.set_setpoint(hold_position_, 0.0, now_s_);
    next_hold_feed_s_ = now_s_ + config_.hold_feed_period_s;
    REMGEN_COUNTER_ADD("uav.hold_position_feeds", 1);
  }

  // 4. Commander staleness / watchdog.
  commander_.step(now_s_);
  if (commander_.mode() == CommanderMode::EmergencyStop && flying_) {
    flying_ = false;
    dynamics_.halt();
  }

  // 5. Flight control + physics.
  if (flying_) {
    dynamics_.step(dt, velocity_command(), erratic(), rng_);
    if (landing_ && dynamics_.position().z <= config_.landing_height_m) {
      flying_ = false;
      landing_ = false;
      dynamics_.halt();
    }
  }

  // 6. State estimation: EKF prediction from the noisy IMU + UWB updates.
  const geom::Vec3 accel_measured =
      dynamics_.acceleration() + geom::Vec3{rng_.gaussian(0.0, config_.imu_accel_noise),
                                            rng_.gaussian(0.0, config_.imu_accel_noise),
                                            rng_.gaussian(0.0, config_.imu_accel_noise)};
  positioning_->step(dt, dynamics_.position(), flying_ ? accel_measured : geom::Vec3{});
  // Fix-quality samples at the telemetry cadence — enough to reconstruct the
  // estimator's health over a mission without drowning the recorder.
  if (flightlog::enabled() && now_s_ >= next_fix_log_s_) {
    flightlog::emit_at(flightlog::EventKind::UwbFix, now_s_,
                       flightlog::UwbEvent{-1, positioning_->position_sigma(), 0});
    next_fix_log_s_ = now_s_ + config_.telemetry_period_s;
  }

  // 7. Battery.
  battery_.drain(dt, battery_.current_ma(flying_, dynamics_.velocity().norm(), measuring_));

  // 8. Periodic telemetry (only useful when the radio is up; the real nRF
  // drops unacked console traffic on the floor, so we do not queue it).
  if (link_.radio_enabled() && now_s_ >= next_telemetry_s_) {
    send_state_telemetry();
    next_telemetry_s_ = now_s_ + config_.telemetry_period_s;
  }
}

}  // namespace remgen::uav
