#include "uav/remdeck.hpp"

namespace remgen::uav {

WifiScannerDeck::WifiScannerDeck(const radio::RadioEnvironment& environment,
                                 const scanner::Esp8266Config& config, util::Rng rng)
    : module_(uart_, environment, config, rng),
      driver_(uart_, /*timeout_s=*/config.scan_duration_s + 4.0),
      scan_duration_s_(config.scan_duration_s) {}

namespace {
DeckState from_driver_state(scanner::DriverState state) {
  switch (state) {
    case scanner::DriverState::Uninitialized: return DeckState::Uninitialized;
    case scanner::DriverState::Initializing: return DeckState::Initializing;
    case scanner::DriverState::Ready: return DeckState::Ready;
    case scanner::DriverState::Scanning: return DeckState::Measuring;
    case scanner::DriverState::ResultsReady: return DeckState::ResultsReady;
    case scanner::DriverState::Error: return DeckState::Error;
  }
  return DeckState::Error;
}
}  // namespace

DeckState WifiScannerDeck::state() const { return from_driver_state(driver_.state()); }

BleScannerDeck::BleScannerDeck(const radio::BleEnvironment& environment,
                               const scanner::BleModuleConfig& config, util::Rng rng)
    : module_(bus_, environment, config, rng),
      driver_(bus_, /*timeout_s=*/config.scan_duration_s + 4.0),
      scan_duration_s_(config.scan_duration_s) {}

DeckState BleScannerDeck::state() const { return from_driver_state(driver_.state()); }

}  // namespace remgen::uav
