// Simulated I2C register bus.
//
// The Crazyflie deck header exposes I2C alongside UART; the paper's driver
// contract explicitly allows either. Unlike the UART byte pipe, I2C is a
// synchronous master/slave register protocol, which this models directly:
// the master performs register reads/writes that the attached device answers
// immediately (bus timing is far below the simulation tick).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace remgen::scanner {

/// Device-side register interface.
class I2cDevice {
 public:
  virtual ~I2cDevice() = default;

  /// Handles a single-register write.
  virtual void on_write(std::uint8_t reg, std::uint8_t value) = 0;

  /// Handles a single-register read.
  [[nodiscard]] virtual std::uint8_t on_read(std::uint8_t reg) = 0;

  /// Handles a block read starting at `reg` (auto-incrementing).
  [[nodiscard]] virtual std::vector<std::uint8_t> on_read_block(std::uint8_t reg,
                                                                std::size_t length) = 0;
};

/// Single-master bus with one attached device.
class SimI2cBus {
 public:
  /// Attaches the (single) device; it must outlive the bus or be detached.
  void attach(I2cDevice* device) { device_ = device; }
  void detach() { device_ = nullptr; }

  /// Master write; returns false when no device ACKs (none attached).
  bool write_register(std::uint8_t reg, std::uint8_t value) {
    if (device_ == nullptr) return false;
    device_->on_write(reg, value);
    return true;
  }

  /// Master read; nullopt when no device ACKs.
  [[nodiscard]] std::optional<std::uint8_t> read_register(std::uint8_t reg) {
    if (device_ == nullptr) return std::nullopt;
    return device_->on_read(reg);
  }

  /// Master block read; empty when no device ACKs.
  [[nodiscard]] std::vector<std::uint8_t> read_block(std::uint8_t reg, std::size_t length) {
    if (device_ == nullptr) return {};
    return device_->on_read_block(reg, length);
  }

 private:
  I2cDevice* device_ = nullptr;
};

}  // namespace remgen::scanner
