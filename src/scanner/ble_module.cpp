#include "scanner/ble_module.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace remgen::scanner {

BleObserverModule::BleObserverModule(SimI2cBus& bus, const radio::BleEnvironment& environment,
                                     const BleModuleConfig& config, util::Rng rng)
    : bus_(&bus), environment_(&environment), config_(config), rng_(rng) {
  REMGEN_EXPECTS(config.scan_duration_s > 0.0);
  bus_->attach(this);
}

BleObserverModule::~BleObserverModule() { bus_->detach(); }

void BleObserverModule::step(double now_s) {
  now_s_ = now_s;
  if (scan_deadline_ && now_s >= *scan_deadline_) {
    scan_deadline_.reset();
    results_ = environment_->scan(scan_position_, config_.scan_duration_s, interference_, rng_);
    std::sort(results_.begin(), results_.end(),
              [](const radio::BleDetection& a, const radio::BleDetection& b) {
                return a.rss_dbm > b.rss_dbm;
              });
    if (results_.size() > 255) results_.resize(255);
    status_ = ble_reg::kStatusReady;
  }
}

void BleObserverModule::on_write(std::uint8_t reg, std::uint8_t value) {
  switch (reg) {
    case ble_reg::kCtrl:
      if (value == ble_reg::kCtrlStartScan) {
        if (status_ == ble_reg::kStatusScanning) {
          status_ = ble_reg::kStatusError;  // double-start is a client bug
          break;
        }
        scan_position_ = position_provider_ ? position_provider_() : geom::Vec3{};
        scan_deadline_ = now_s_ + config_.scan_duration_s;
        results_.clear();
        result_index_ = 0;
        status_ = ble_reg::kStatusScanning;
      } else if (value == ble_reg::kCtrlReset) {
        scan_deadline_.reset();
        results_.clear();
        result_index_ = 0;
        status_ = ble_reg::kStatusIdle;
      } else {
        status_ = ble_reg::kStatusError;
      }
      break;
    case ble_reg::kResultIndex:
      result_index_ = value;
      break;
    default:
      break;  // writes to read-only registers are ignored, as real parts do
  }
}

std::uint8_t BleObserverModule::on_read(std::uint8_t reg) {
  switch (reg) {
    case ble_reg::kWhoAmI: return ble_reg::kWhoAmIValue;
    case ble_reg::kStatus: return status_;
    case ble_reg::kCount: return static_cast<std::uint8_t>(results_.size());
    case ble_reg::kResultIndex: return result_index_;
    default: return 0xFF;
  }
}

std::vector<std::uint8_t> BleObserverModule::on_read_block(std::uint8_t reg,
                                                           std::size_t length) {
  if (reg != ble_reg::kResultData || status_ != ble_reg::kStatusReady ||
      result_index_ >= results_.size()) {
    return std::vector<std::uint8_t>(length, 0xFF);
  }
  const radio::BleDetection& d = results_[result_index_];
  const radio::BleDevice& device = environment_->devices()[d.device_index];

  std::vector<std::uint8_t> out;
  out.reserve(9 + device.name.size());
  for (const std::uint8_t octet : device.address.octets()) out.push_back(octet);
  const int rssi = static_cast<int>(std::lround(d.rss_dbm));
  out.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(std::clamp(rssi, -127, 20))));
  out.push_back(static_cast<std::uint8_t>(d.channel));
  const std::size_t name_len = std::min<std::size_t>(device.name.size(), 20);
  out.push_back(static_cast<std::uint8_t>(name_len));
  for (std::size_t i = 0; i < name_len; ++i) {
    out.push_back(static_cast<std::uint8_t>(device.name[i]));
  }
  out.resize(length, 0x00);
  return out;
}

}  // namespace remgen::scanner
