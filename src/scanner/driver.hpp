// Crazyflie-side REM-receiver driver.
//
// The paper's integration contract is a "four instructions long C-flavored
// driver": (i) initialize the receiver, (ii) check its state, (iii) instruct
// it to collect a measurement, (iv) parse the output. This class implements
// that contract for the ESP-01 over UART; any REM-sampling receiver can be
// integrated by providing the same four operations (see remdeck.hpp in
// src/uav for the deck-level interface).
#pragma once

#include <string>
#include <vector>

#include "radio/mac_address.hpp"
#include "scanner/uart.hpp"

namespace remgen::scanner {

/// One parsed (ssid, rssi, mac, channel) tuple from AT+CWLAP output.
struct ScanTuple {
  std::string ssid;
  int rssi_dbm = 0;
  radio::MacAddress mac;
  int channel = 0;
};

/// Driver state, exposed as the paper's "check the state" instruction.
enum class DriverState {
  Uninitialized,  ///< No contact with the module yet.
  Initializing,   ///< AT / CWMODE / CWLAPOPT handshake in progress.
  Ready,          ///< Module idle, scan can be requested.
  Scanning,       ///< AT+CWLAP issued, waiting for OK.
  ResultsReady,   ///< Parsed tuples waiting to be taken.
  Error,          ///< Handshake or scan failed (timeout or ERROR reply).
};

/// Human-readable driver state name.
[[nodiscard]] const char* driver_state_name(DriverState state);

/// Poll-driven AT driver for the ESP-01 module.
class ScannerDriver {
 public:
  /// `uart` must outlive the driver. `timeout_s` bounds every handshake step
  /// and the scan itself.
  explicit ScannerDriver(SimUart& uart, double timeout_s = 8.0);

  /// Instruction (i): begins the init handshake (AT, CWMODE_CUR=1,
  /// CWLAPOPT=1,30). Completion is observed via state().
  void request_init(double now_s);

  /// Instruction (ii): current driver state.
  [[nodiscard]] DriverState state() const noexcept { return state_; }

  /// Instruction (iii): starts a measurement. Only valid in Ready state;
  /// returns false otherwise.
  bool request_scan(double now_s);

  /// Instruction (iv): takes the parsed tuples after a completed scan and
  /// returns the driver to Ready. Only valid in ResultsReady state.
  [[nodiscard]] std::vector<ScanTuple> take_results();

  /// Clears an Error state back to Uninitialized so init can be retried.
  void reset();

  /// Advances the state machine: reads UART bytes, matches replies,
  /// enforces timeouts. Call every firmware tick.
  void step(double now_s);

  /// Parses one "+CWLAP:(...)" payload. Exposed for tests; returns false on
  /// malformed input.
  [[nodiscard]] static bool parse_cwlap_line(const std::string& line, ScanTuple& out);

 private:
  enum class InitPhase { At, Mode, LapOpt, Done };

  void send_line(const std::string& line, double now_s);
  void on_line(const std::string& line, double now_s);
  void fail();

  SimUart* uart_;
  double timeout_s_;
  DriverState state_ = DriverState::Uninitialized;
  InitPhase init_phase_ = InitPhase::At;
  std::string rx_buffer_;
  std::vector<ScanTuple> results_;
  double deadline_ = 0.0;
};

}  // namespace remgen::scanner
