// Simulated AI-Thinker ESP-01 (ESP8266) running the Espressif AT firmware.
//
// Implements the exact AT subset the paper's driver uses:
//   AT              - liveness test
//   AT+CWMODE_CUR=1 - set station mode (required before scanning)
//   AT+CWLAPOPT=... - configure CWLAP output (sort-by-RSSI + field mask)
//   AT+CWLAP        - scan for beacons; replies one "+CWLAP:(...)" line per
//                     detected AP followed by "OK"
// The scan itself takes Esp8266Config::scan_duration_s of simulated time and
// samples the RadioEnvironment at the position reported by the position
// provider, subject to the attached Crazyradio interference model.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "fault/fault.hpp"
#include "radio/environment.hpp"
#include "scanner/uart.hpp"
#include "util/rng.hpp"

namespace remgen::scanner {

/// Module timing parameters.
struct Esp8266Config {
  double scan_duration_s = 2.1;  ///< Wall time of one AT+CWLAP sweep.
  double boot_time_s = 0.3;      ///< Time before the module answers AT.
  fault::ScanFaults scan_faults;  ///< Injected sweep stalls / spurious ERRORs.
  fault::UartFaults uart_faults;  ///< Injected device->host byte corruption.
};

/// CWLAP output field mask bits (Espressif AT semantics).
struct CwlapOptions {
  bool sort_by_rssi = false;
  unsigned mask = 0x7FF;  ///< Default: all fields.
};

/// The simulated module. Step it from the firmware loop with the current
/// simulation time; it consumes bytes from the device side of the UART and
/// produces replies there.
class Esp8266Module {
 public:
  /// `uart` and `environment` must outlive the module.
  Esp8266Module(SimUart& uart, const radio::RadioEnvironment& environment,
                const Esp8266Config& config, util::Rng rng);

  /// Supplies the antenna position used when a scan completes (the UAV's true
  /// position — physics does not care about the estimate).
  void set_position_provider(std::function<geom::Vec3()> provider) {
    position_provider_ = std::move(provider);
  }

  /// Attaches/detaches the co-located Crazyradio interference source
  /// (nullptr = none). The pointer must outlive the module or be reset.
  void set_interference(const radio::CrazyradioInterference* interference) {
    interference_ = interference;
  }

  /// Advances the module to simulation time `now_s`: processes pending
  /// commands and completes an in-flight scan whose deadline has passed.
  void step(double now_s);

  /// True while a CWLAP sweep is in progress.
  [[nodiscard]] bool scanning() const noexcept { return scan_deadline_.has_value(); }

 private:
  enum class WifiMode { Unset, Station, SoftAp, Both };

  void handle_line(const std::string& line, double now_s);
  void finish_scan(double now_s);
  void reply(std::string_view text) { uart_->device_write(text); }

  SimUart* uart_;
  const radio::RadioEnvironment* environment_;
  Esp8266Config config_;
  util::Rng rng_;
  std::function<geom::Vec3()> position_provider_;
  const radio::CrazyradioInterference* interference_ = nullptr;

  std::string rx_buffer_;
  WifiMode mode_ = WifiMode::Unset;
  CwlapOptions cwlap_options_;
  std::optional<double> scan_deadline_;
  geom::Vec3 scan_position_;
  double boot_ready_at_;
  std::optional<util::Rng> fault_rng_;  ///< Present iff scan faults are enabled.
};

}  // namespace remgen::scanner
