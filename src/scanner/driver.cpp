#include "scanner/driver.hpp"

#include <cstdlib>

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace remgen::scanner {

const char* driver_state_name(DriverState state) {
  switch (state) {
    case DriverState::Uninitialized: return "uninitialized";
    case DriverState::Initializing: return "initializing";
    case DriverState::Ready: return "ready";
    case DriverState::Scanning: return "scanning";
    case DriverState::ResultsReady: return "results-ready";
    case DriverState::Error: return "error";
  }
  return "?";
}

ScannerDriver::ScannerDriver(SimUart& uart, double timeout_s)
    : uart_(&uart), timeout_s_(timeout_s) {
  REMGEN_EXPECTS(timeout_s > 0.0);
}

void ScannerDriver::send_line(const std::string& line, double now_s) {
  uart_->host_write(line + "\r\n");
  deadline_ = now_s + timeout_s_;
}

void ScannerDriver::request_init(double now_s) {
  state_ = DriverState::Initializing;
  init_phase_ = InitPhase::At;
  results_.clear();
  send_line("AT", now_s);
}

bool ScannerDriver::request_scan(double now_s) {
  if (state_ != DriverState::Ready) return false;
  results_.clear();
  state_ = DriverState::Scanning;
  send_line("AT+CWLAP", now_s);
  return true;
}

std::vector<ScanTuple> ScannerDriver::take_results() {
  REMGEN_EXPECTS(state_ == DriverState::ResultsReady);
  state_ = DriverState::Ready;
  return std::move(results_);
}

void ScannerDriver::reset() {
  state_ = DriverState::Uninitialized;
  init_phase_ = InitPhase::At;
  rx_buffer_.clear();
  results_.clear();
}

void ScannerDriver::fail() {
  util::logf(util::LogLevel::Warn, "scanner-driver", "entering error state while {}",
             driver_state_name(state_));
  state_ = DriverState::Error;
}

void ScannerDriver::step(double now_s) {
  rx_buffer_ += uart_->host_read();
  std::size_t pos;
  while ((pos = rx_buffer_.find('\n')) != std::string::npos) {
    std::string line = rx_buffer_.substr(0, pos);
    rx_buffer_.erase(0, pos + 1);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty()) continue;
    on_line(line, now_s);
  }

  const bool waiting =
      state_ == DriverState::Initializing || state_ == DriverState::Scanning;
  if (waiting && now_s > deadline_) fail();
}

void ScannerDriver::on_line(const std::string& line, double now_s) {
  switch (state_) {
    case DriverState::Initializing:
      if (line == "OK") {
        switch (init_phase_) {
          case InitPhase::At:
            init_phase_ = InitPhase::Mode;
            send_line("AT+CWMODE_CUR=1", now_s);
            break;
          case InitPhase::Mode:
            init_phase_ = InitPhase::LapOpt;
            // sort by RSSI; mask 30 = ssid|rssi|mac|channel.
            send_line("AT+CWLAPOPT=1,30", now_s);
            break;
          case InitPhase::LapOpt:
            init_phase_ = InitPhase::Done;
            state_ = DriverState::Ready;
            break;
          case InitPhase::Done:
            break;
        }
      } else if (line == "ERROR") {
        fail();
      }
      break;

    case DriverState::Scanning:
      if (line.rfind("+CWLAP:(", 0) == 0 && line.back() == ')') {
        ScanTuple tuple;
        const std::string payload = line.substr(8, line.size() - 9);
        if (parse_cwlap_line(payload, tuple)) {
          results_.push_back(std::move(tuple));
        } else {
          util::logf(util::LogLevel::Warn, "scanner-driver", "unparseable CWLAP line: {}", line);
        }
      } else if (line == "OK") {
        state_ = DriverState::ResultsReady;
      } else if (line == "ERROR" || line == "busy p...") {
        fail();
      }
      break;

    case DriverState::Uninitialized:
    case DriverState::Ready:
    case DriverState::ResultsReady:
    case DriverState::Error:
      // Unsolicited output (boot banners etc.) is ignored.
      break;
  }
}

bool ScannerDriver::parse_cwlap_line(const std::string& line, ScanTuple& out) {
  // Expected payload: "ssid",-73,"aa:bb:cc:dd:ee:ff",6
  std::size_t i = 0;
  auto parse_quoted = [&](std::string& value) {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    value.clear();
    while (i < line.size() && line[i] != '"') value.push_back(line[i++]);
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };
  auto expect_comma = [&] {
    if (i >= line.size() || line[i] != ',') return false;
    ++i;
    return true;
  };
  auto parse_int = [&](int& value) {
    const std::size_t start = i;
    if (i < line.size() && (line[i] == '-' || line[i] == '+')) ++i;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
    if (i == start) return false;
    value = std::atoi(line.substr(start, i - start).c_str());
    return true;
  };

  std::string mac_text;
  if (!parse_quoted(out.ssid)) return false;
  if (!expect_comma()) return false;
  if (!parse_int(out.rssi_dbm)) return false;
  if (!expect_comma()) return false;
  if (!parse_quoted(mac_text)) return false;
  if (!expect_comma()) return false;
  if (!parse_int(out.channel)) return false;
  if (i != line.size()) return false;

  const auto mac = radio::MacAddress::parse(mac_text);
  if (!mac) return false;
  out.mac = *mac;
  return true;
}

}  // namespace remgen::scanner
