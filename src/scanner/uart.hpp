// Simulated UART: a bidirectional byte pipe between the Crazyflie expansion
// deck header (host side) and the REM-sampling receiver (device side).
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "fault/fault.hpp"

namespace remgen::scanner {

/// Bidirectional byte pipe. "Host" is the UAV/driver side, "device" the
/// receiver module side. Both directions are unbounded FIFOs (the real UART
/// has flow control; buffer overrun is not the failure mode under study).
/// An attached fault injector corrupts device->host traffic — the direction
/// carrying scan results, where a flipped byte loses a whole tuple.
class SimUart {
 public:
  /// Host -> device bytes.
  void host_write(std::string_view bytes) { to_device_.append(bytes); }

  /// Device -> host bytes, through the fault injector when one is attached.
  void device_write(std::string_view bytes) {
    if (device_injector_) {
      to_host_.append(device_injector_->corrupt(std::string(bytes)));
      return;
    }
    to_host_.append(bytes);
  }

  /// Attaches a device->host fault injector (byte garbling/truncation).
  void attach_device_fault_injector(fault::UartFaultInjector injector) {
    device_injector_.emplace(std::move(injector));
  }

  /// Drains everything the device has sent to the host.
  [[nodiscard]] std::string host_read() { return drain(to_host_); }

  /// Drains everything the host has sent to the device.
  [[nodiscard]] std::string device_read() { return drain(to_device_); }

  /// Bytes pending toward the host.
  [[nodiscard]] std::size_t host_pending() const noexcept { return to_host_.size(); }

  /// Bytes pending toward the device.
  [[nodiscard]] std::size_t device_pending() const noexcept { return to_device_.size(); }

 private:
  static std::string drain(std::string& buffer) {
    std::string out = std::move(buffer);
    buffer.clear();
    return out;
  }

  std::string to_device_;
  std::string to_host_;
  std::optional<fault::UartFaultInjector> device_injector_;
};

}  // namespace remgen::scanner
