#include "scanner/ble_driver.hpp"

#include <array>

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace remgen::scanner {

BleScannerDriver::BleScannerDriver(SimI2cBus& bus, double timeout_s)
    : bus_(&bus), timeout_s_(timeout_s) {
  REMGEN_EXPECTS(timeout_s > 0.0);
}

void BleScannerDriver::request_init(double /*now_s*/) {
  // I2C is synchronous: the handshake completes within the call.
  const auto who = bus_->read_register(ble_reg::kWhoAmI);
  if (!who || *who != ble_reg::kWhoAmIValue) {
    state_ = DriverState::Error;
    return;
  }
  bus_->write_register(ble_reg::kCtrl, ble_reg::kCtrlReset);
  results_.clear();
  state_ = DriverState::Ready;
}

bool BleScannerDriver::request_scan(double now_s) {
  if (state_ != DriverState::Ready) return false;
  if (!bus_->write_register(ble_reg::kCtrl, ble_reg::kCtrlStartScan)) {
    state_ = DriverState::Error;
    return false;
  }
  results_.clear();
  state_ = DriverState::Scanning;
  deadline_ = now_s + timeout_s_;
  return true;
}

std::vector<ScanTuple> BleScannerDriver::take_results() {
  REMGEN_EXPECTS(state_ == DriverState::ResultsReady);
  state_ = DriverState::Ready;
  return std::move(results_);
}

void BleScannerDriver::reset() {
  state_ = DriverState::Uninitialized;
  results_.clear();
}

void BleScannerDriver::fetch_results() {
  const auto count = bus_->read_register(ble_reg::kCount);
  if (!count) {
    state_ = DriverState::Error;
    return;
  }
  results_.clear();
  results_.reserve(*count);
  for (std::uint8_t i = 0; i < *count; ++i) {
    bus_->write_register(ble_reg::kResultIndex, i);
    // Fixed-size record: addr[6] rssi[1] channel[1] name_len[1] name[<=20].
    const std::vector<std::uint8_t> record = bus_->read_block(ble_reg::kResultData, 29);
    if (record.size() < 9) continue;
    ScanTuple tuple;
    std::array<std::uint8_t, 6> octets{};
    for (int b = 0; b < 6; ++b) octets[static_cast<std::size_t>(b)] = record[b];
    tuple.mac = radio::MacAddress(octets);
    tuple.rssi_dbm = static_cast<std::int8_t>(record[6]);
    tuple.channel = record[7];
    const std::size_t name_len = std::min<std::size_t>(record[8], 20);
    tuple.ssid.assign(record.begin() + 9,
                      record.begin() + 9 + static_cast<std::ptrdiff_t>(
                                               std::min(name_len, record.size() - 9)));
    results_.push_back(std::move(tuple));
  }
  state_ = DriverState::ResultsReady;
}

void BleScannerDriver::step(double now_s) {
  if (state_ != DriverState::Scanning) return;
  const auto status = bus_->read_register(ble_reg::kStatus);
  if (!status || *status == ble_reg::kStatusError) {
    state_ = DriverState::Error;
    return;
  }
  if (*status == ble_reg::kStatusReady) {
    fetch_results();
    return;
  }
  if (now_s > deadline_) {
    util::logf(util::LogLevel::Warn, "ble-driver", "scan timed out");
    state_ = DriverState::Error;
  }
}

}  // namespace remgen::scanner
