#include "scanner/esp8266.hpp"

#include <algorithm>
#include <cmath>

#include "flightlog/flightlog.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"

namespace remgen::scanner {

Esp8266Module::Esp8266Module(SimUart& uart, const radio::RadioEnvironment& environment,
                             const Esp8266Config& config, util::Rng rng)
    : uart_(&uart),
      environment_(&environment),
      config_(config),
      rng_(rng),
      boot_ready_at_(config.boot_time_s) {
  REMGEN_EXPECTS(config.scan_duration_s > 0.0);
  // Fault streams are forked only when a profile enables them, so a fault-free
  // module consumes exactly the draws it always did.
  if (config.scan_faults.enabled()) {
    fault_rng_.emplace(fault::fault_rng(rng_, config.scan_faults.seed, "esp-scan"));
  }
  if (config.uart_faults.enabled()) {
    uart.attach_device_fault_injector(fault::UartFaultInjector(
        config.uart_faults, fault::fault_rng(rng_, config.uart_faults.seed, "esp-uart")));
  }
}

void Esp8266Module::step(double now_s) {
  if (now_s < boot_ready_at_) return;

  if (scan_deadline_ && now_s >= *scan_deadline_) finish_scan(now_s);

  rx_buffer_ += uart_->device_read();
  std::size_t pos;
  while ((pos = rx_buffer_.find('\n')) != std::string::npos) {
    std::string line = rx_buffer_.substr(0, pos);
    rx_buffer_.erase(0, pos + 1);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
    if (line.empty()) continue;
    if (scan_deadline_) {
      reply("\r\nbusy p...\r\n");  // real firmware answers this mid-operation
      continue;
    }
    handle_line(line, now_s);
  }
}

void Esp8266Module::handle_line(const std::string& line, double now_s) {
  if (line == "AT") {
    reply("\r\nOK\r\n");
    return;
  }
  if (line.rfind("AT+CWMODE_CUR=", 0) == 0 || line.rfind("AT+CWMODE=", 0) == 0) {
    const std::string arg = line.substr(line.find('=') + 1);
    if (arg == "1") {
      mode_ = WifiMode::Station;
    } else if (arg == "2") {
      mode_ = WifiMode::SoftAp;
    } else if (arg == "3") {
      mode_ = WifiMode::Both;
    } else {
      reply("\r\nERROR\r\n");
      return;
    }
    reply("\r\nOK\r\n");
    return;
  }
  if (line.rfind("AT+CWLAPOPT=", 0) == 0) {
    // AT+CWLAPOPT=<sort_enable>,<mask>
    const std::string args = line.substr(line.find('=') + 1);
    const std::size_t comma = args.find(',');
    if (comma == std::string::npos) {
      reply("\r\nERROR\r\n");
      return;
    }
    try {
      cwlap_options_.sort_by_rssi = std::stoi(args.substr(0, comma)) != 0;
      cwlap_options_.mask = static_cast<unsigned>(std::stoul(args.substr(comma + 1)));
    } catch (const std::exception&) {
      reply("\r\nERROR\r\n");
      return;
    }
    reply("\r\nOK\r\n");
    return;
  }
  if (line == "AT+CWLAP") {
    if (mode_ != WifiMode::Station && mode_ != WifiMode::Both) {
      reply("\r\nERROR\r\n");
      return;
    }
    if (fault_rng_) {
      // Injected scan faults: the firmware rejects the sweep outright, or the
      // sweep stalls well past the driver timeout (the driver fails and the
      // deck self-heals; the late reply lands as unsolicited output).
      if (fault_rng_->bernoulli(config_.scan_faults.spurious_error_probability)) {
        REMGEN_COUNTER_ADD("fault.scan.spurious_errors", 1);
        REMGEN_FLIGHTLOG_AT(flightlog::EventKind::FaultInjected, now_s,
                            flightlog::FaultEvent{"scan", "spurious_error"});
        reply("\r\nERROR\r\n");
        return;
      }
      if (fault_rng_->bernoulli(config_.scan_faults.stall_probability)) {
        REMGEN_COUNTER_ADD("fault.scan.stalls", 1);
        REMGEN_FLIGHTLOG_AT(flightlog::EventKind::FaultInjected, now_s,
                            flightlog::FaultEvent{"scan", "stall"});
        scan_position_ = position_provider_ ? position_provider_() : geom::Vec3{};
        scan_deadline_ = now_s + config_.scan_duration_s + config_.scan_faults.stall_extra_s;
        return;
      }
    }
    scan_position_ = position_provider_ ? position_provider_() : geom::Vec3{};
    scan_deadline_ = now_s + config_.scan_duration_s;
    return;  // reply comes when the sweep completes
  }
  reply("\r\nERROR\r\n");
}

void Esp8266Module::finish_scan(double /*now_s*/) {
  scan_deadline_.reset();
  std::vector<radio::Detection> detections =
      environment_->scan(scan_position_, config_.scan_duration_s, interference_, rng_);

  if (cwlap_options_.sort_by_rssi) {
    std::sort(detections.begin(), detections.end(),
              [](const radio::Detection& a, const radio::Detection& b) {
                return a.rss_dbm > b.rss_dbm;
              });
  }

  const auto& aps = environment_->access_points();
  std::string out = "\r\n";
  for (const radio::Detection& d : detections) {
    const radio::AccessPoint& ap = aps[d.ap_index];
    // Field mask (Espressif semantics): bit1 ssid, bit2 rssi, bit3 mac,
    // bit4 channel. The paper's tuple is (ssid, rssi, mac, channel).
    std::string fields;
    auto append = [&fields](std::string text) {
      if (!fields.empty()) fields += ',';
      fields += text;
    };
    if (cwlap_options_.mask & 0x2u) append(util::format("\"{}\"", ap.ssid));
    if (cwlap_options_.mask & 0x4u)
      append(util::format("{}", static_cast<int>(std::lround(d.rss_dbm))));
    if (cwlap_options_.mask & 0x8u) append(util::format("\"{}\"", ap.mac.to_string()));
    if (cwlap_options_.mask & 0x10u) append(util::format("{}", d.channel));
    out += util::format("+CWLAP:({})\r\n", fields);
  }
  out += "\r\nOK\r\n";
  reply(out);
}

}  // namespace remgen::scanner
