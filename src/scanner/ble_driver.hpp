// Crazyflie-side driver for the BLE observer module: the same four-
// instruction contract as the Wi-Fi driver (initialize / check state /
// measure / parse), implemented against the I2C register map instead of
// UART AT commands.
#pragma once

#include "scanner/ble_module.hpp"
#include "scanner/driver.hpp"
#include "scanner/i2c.hpp"

namespace remgen::scanner {

/// Poll-driven register driver for the BLE module. Reuses the driver state
/// and result-tuple vocabulary of the Wi-Fi driver; the BLE device name maps
/// onto the tuple's ssid field.
class BleScannerDriver {
 public:
  /// `bus` must outlive the driver. `timeout_s` bounds the scan.
  explicit BleScannerDriver(SimI2cBus& bus, double timeout_s = 8.0);

  /// Instruction (i): probes WHO_AM_I and resets the module.
  void request_init(double now_s);

  /// Instruction (ii): current driver state.
  [[nodiscard]] DriverState state() const noexcept { return state_; }

  /// Instruction (iii): starts a measurement. Only valid in Ready state.
  bool request_scan(double now_s);

  /// Instruction (iv): takes the parsed tuples; returns to Ready.
  [[nodiscard]] std::vector<ScanTuple> take_results();

  /// Clears an Error state back to Uninitialized.
  void reset();

  /// Polls the module's status register; call every firmware tick.
  void step(double now_s);

 private:
  void fetch_results();

  SimI2cBus* bus_;
  double timeout_s_;
  DriverState state_ = DriverState::Uninitialized;
  std::vector<ScanTuple> results_;
  double deadline_ = 0.0;
};

}  // namespace remgen::scanner
