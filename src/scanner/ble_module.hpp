// Simulated BLE observer module with an I2C register interface — the second
// REM-sampling receiver technology, demonstrating the paper's modular
// integration requirement with a completely different hardware interface
// than the ESP-01's UART/AT protocol.
//
// Register map:
//   0x00 WHO_AM_I      reads 0xB5
//   0x01 CTRL          write 0x01: start scan; write 0x02: reset
//   0x02 STATUS        0 idle, 1 scanning, 2 results-ready, 3 error
//   0x03 COUNT         number of detections after a scan
//   0x04 RESULT_INDEX  selects which detection RESULT_DATA serves
//   0x10 RESULT_DATA   block read: addr[6] rssi[1,int8] channel[1]
//                      name_len[1] name[name_len]
#pragma once

#include <functional>
#include <optional>

#include "radio/ble.hpp"
#include "scanner/i2c.hpp"
#include "util/rng.hpp"

namespace remgen::scanner {

/// Register addresses of the BLE observer module.
namespace ble_reg {
inline constexpr std::uint8_t kWhoAmI = 0x00;
inline constexpr std::uint8_t kCtrl = 0x01;
inline constexpr std::uint8_t kStatus = 0x02;
inline constexpr std::uint8_t kCount = 0x03;
inline constexpr std::uint8_t kResultIndex = 0x04;
inline constexpr std::uint8_t kResultData = 0x10;

inline constexpr std::uint8_t kWhoAmIValue = 0xB5;
inline constexpr std::uint8_t kCtrlStartScan = 0x01;
inline constexpr std::uint8_t kCtrlReset = 0x02;

inline constexpr std::uint8_t kStatusIdle = 0;
inline constexpr std::uint8_t kStatusScanning = 1;
inline constexpr std::uint8_t kStatusReady = 2;
inline constexpr std::uint8_t kStatusError = 3;
}  // namespace ble_reg

/// Module timing.
struct BleModuleConfig {
  double scan_duration_s = 1.8;  ///< One observation window over ch 37/38/39.
};

/// The simulated module; step it with simulation time like the ESP model.
class BleObserverModule final : public I2cDevice {
 public:
  /// `bus` and `environment` must outlive the module.
  BleObserverModule(SimI2cBus& bus, const radio::BleEnvironment& environment,
                    const BleModuleConfig& config, util::Rng rng);
  ~BleObserverModule() override;

  BleObserverModule(const BleObserverModule&) = delete;
  BleObserverModule& operator=(const BleObserverModule&) = delete;

  void set_position_provider(std::function<geom::Vec3()> provider) {
    position_provider_ = std::move(provider);
  }
  void set_interference(const radio::CrazyradioInterference* interference) {
    interference_ = interference;
  }

  /// Completes an in-flight scan whose deadline has passed.
  void step(double now_s);

  // I2cDevice:
  void on_write(std::uint8_t reg, std::uint8_t value) override;
  [[nodiscard]] std::uint8_t on_read(std::uint8_t reg) override;
  [[nodiscard]] std::vector<std::uint8_t> on_read_block(std::uint8_t reg,
                                                        std::size_t length) override;

 private:
  SimI2cBus* bus_;
  const radio::BleEnvironment* environment_;
  BleModuleConfig config_;
  util::Rng rng_;
  std::function<geom::Vec3()> position_provider_;
  const radio::CrazyradioInterference* interference_ = nullptr;

  std::uint8_t status_ = ble_reg::kStatusIdle;
  std::optional<double> scan_deadline_;
  double now_s_ = 0.0;
  geom::Vec3 scan_position_;
  std::vector<radio::BleDetection> results_;
  std::uint8_t result_index_ = 0;
};

}  // namespace remgen::scanner
