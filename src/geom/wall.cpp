#include "geom/wall.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace remgen::geom {

double material_loss_db(WallMaterial material) {
  switch (material) {
    case WallMaterial::Drywall: return 3.0;
    case WallMaterial::Brick: return 8.0;
    case WallMaterial::Concrete: return 12.0;
    case WallMaterial::ReinforcedConcrete: return 20.0;
    case WallMaterial::Glass: return 2.0;
    case WallMaterial::Wood: return 4.0;
  }
  return 0.0;
}

const char* material_name(WallMaterial material) {
  switch (material) {
    case WallMaterial::Drywall: return "drywall";
    case WallMaterial::Brick: return "brick";
    case WallMaterial::Concrete: return "concrete";
    case WallMaterial::ReinforcedConcrete: return "reinforced-concrete";
    case WallMaterial::Glass: return "glass";
    case WallMaterial::Wood: return "wood";
  }
  return "?";
}

Wall::Wall(Vec3 origin, Vec3 edge_u, Vec3 edge_v, WallMaterial material, double extra_loss_db,
           std::string name)
    : origin_(origin),
      u_(edge_u),
      v_(edge_v),
      material_(material),
      extra_loss_db_(extra_loss_db),
      name_(std::move(name)) {
  REMGEN_EXPECTS(extra_loss_db >= 0.0);
  normal_ = u_.cross(v_).normalized();
  REMGEN_EXPECTS(normal_.norm2() > 0.5);  // non-degenerate rectangle
}

Wall Wall::vertical(const Vec3& p0, const Vec3& p1, double z0, double z1, WallMaterial material,
                    double extra_loss_db, std::string name) {
  REMGEN_EXPECTS(z1 > z0);
  const Vec3 base{p0.x, p0.y, z0};
  const Vec3 u{p1.x - p0.x, p1.y - p0.y, 0.0};
  const Vec3 v{0.0, 0.0, z1 - z0};
  return Wall(base, u, v, material, extra_loss_db, std::move(name));
}

Wall Wall::slab(double x0, double y0, double x1, double y1, double z, WallMaterial material,
                double extra_loss_db, std::string name) {
  REMGEN_EXPECTS(x1 > x0 && y1 > y0);
  return Wall({x0, y0, z}, {x1 - x0, 0.0, 0.0}, {0.0, y1 - y0, 0.0}, material, extra_loss_db,
              std::move(name));
}

double Wall::loss_db() const noexcept { return material_loss_db(material_) + extra_loss_db_; }

std::optional<double> Wall::intersect_segment(const Vec3& a, const Vec3& b) const {
  const Vec3 dir = b - a;
  const double denom = dir.dot(normal_);
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel to the plane
  const double t = (origin_ - a).dot(normal_) / denom;
  // Strict interior crossing: endpoints touching the plane do not count.
  if (t <= 1e-9 || t >= 1.0 - 1e-9) return std::nullopt;
  const Vec3 p = a + dir * t;
  // Express p - origin in the (u, v) basis via normal equations of the 2x2 system.
  const Vec3 w = p - origin_;
  const double uu = u_.dot(u_);
  const double uv = u_.dot(v_);
  const double vv = v_.dot(v_);
  const double wu = w.dot(u_);
  const double wv = w.dot(v_);
  const double det = uu * vv - uv * uv;
  if (std::abs(det) < 1e-15) return std::nullopt;
  const double su = (wu * vv - wv * uv) / det;
  const double sv = (wv * uu - wu * uv) / det;
  if (su < 0.0 || su > 1.0 || sv < 0.0 || sv > 1.0) return std::nullopt;
  return t;
}

}  // namespace remgen::geom
