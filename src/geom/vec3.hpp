// 3D vector type used throughout the simulator (positions, velocities).
#pragma once

#include <cmath>
#include <string>

#include "util/fmt.hpp"

namespace remgen::geom {

/// Plain 3D vector of doubles with value semantics.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3&) const = default;

  /// Dot product.
  [[nodiscard]] constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

  /// Cross product.
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  /// Squared Euclidean norm.
  [[nodiscard]] constexpr double norm2() const { return dot(*this); }

  /// Euclidean norm.
  [[nodiscard]] double norm() const { return std::sqrt(norm2()); }

  /// Unit vector in this direction; returns zero vector for (near-)zero input.
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    if (n < 1e-12) return {};
    return *this / n;
  }

  /// Euclidean distance to another point.
  [[nodiscard]] double distance_to(const Vec3& o) const { return (*this - o).norm(); }

  /// "(x, y, z)" with 3 decimals, for logs and debugging.
  [[nodiscard]] std::string to_string() const {
    return util::format("({:.3f}, {:.3f}, {:.3f})", x, y, z);
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Linear interpolation between a and b at parameter t in [0, 1].
[[nodiscard]] constexpr Vec3 lerp(const Vec3& a, const Vec3& b, double t) {
  return a + (b - a) * t;
}

}  // namespace remgen::geom
