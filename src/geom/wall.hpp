// Walls: finite planar rectangles with material attenuation, used by the
// multi-wall path-loss model and the UWB NLoS model.
#pragma once

#include <optional>
#include <string>

#include "geom/vec3.hpp"

namespace remgen::geom {

/// Common indoor construction materials with typical 2.4 GHz attenuations.
enum class WallMaterial {
  Drywall,        // interior partition, ~3 dB
  Brick,          // ~8 dB
  Concrete,       // load-bearing, ~12 dB
  ReinforcedConcrete,  // floor slabs, ~20 dB
  Glass,          // window, ~2 dB
  Wood,           // door, ~4 dB
};

/// Typical penetration loss in dB at 2.4 GHz for a material.
[[nodiscard]] double material_loss_db(WallMaterial material);

/// Human-readable material name.
[[nodiscard]] const char* material_name(WallMaterial material);

/// A finite rectangular wall. The rectangle is described by an origin corner
/// and two edge vectors (u, v) that must be non-degenerate and orthogonal
/// enough for the param test; thickness contributes extra attenuation for
/// thick walls.
class Wall {
 public:
  /// Builds a wall; `extra_loss_db` is added on top of the material loss
  /// (e.g. the paper's "40 cm wider wall segment" carries extra loss).
  Wall(Vec3 origin, Vec3 edge_u, Vec3 edge_v, WallMaterial material,
       double extra_loss_db = 0.0, std::string name = {});

  /// Convenience: vertical wall spanning [p0..p1] horizontally and
  /// [z0..z1] vertically (p0/p1 must differ in exactly one of x or y... any
  /// horizontal direction is allowed).
  [[nodiscard]] static Wall vertical(const Vec3& p0, const Vec3& p1, double z0, double z1,
                                     WallMaterial material, double extra_loss_db = 0.0,
                                     std::string name = {});

  /// Convenience: horizontal slab (floor/ceiling) covering the rectangle
  /// [x0,x1] x [y0,y1] at height z.
  [[nodiscard]] static Wall slab(double x0, double y0, double x1, double y1, double z,
                                 WallMaterial material, double extra_loss_db = 0.0,
                                 std::string name = {});

  /// Total penetration loss of this wall in dB.
  [[nodiscard]] double loss_db() const noexcept;

  [[nodiscard]] WallMaterial material() const noexcept { return material_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Vec3& origin() const noexcept { return origin_; }
  [[nodiscard]] const Vec3& edge_u() const noexcept { return u_; }
  [[nodiscard]] const Vec3& edge_v() const noexcept { return v_; }
  [[nodiscard]] Vec3 normal() const noexcept { return normal_; }

  /// Parameter t in (0,1) where segment a->b crosses the wall rectangle, or
  /// nullopt if it does not cross. Touching endpoints do not count as a
  /// crossing (a transmitter mounted on a wall is not attenuated by it).
  [[nodiscard]] std::optional<double> intersect_segment(const Vec3& a, const Vec3& b) const;

 private:
  Vec3 origin_;
  Vec3 u_;
  Vec3 v_;
  Vec3 normal_;
  WallMaterial material_;
  double extra_loss_db_;
  std::string name_;
};

}  // namespace remgen::geom
