#include "geom/floorplan.hpp"

#include <algorithm>

namespace remgen::geom {

std::size_t Floorplan::add_wall(Wall wall) {
  walls_.push_back(std::move(wall));
  return walls_.size() - 1;
}

std::vector<WallCrossing> Floorplan::crossings(const Vec3& a, const Vec3& b) const {
  std::vector<WallCrossing> out;
  for (std::size_t i = 0; i < walls_.size(); ++i) {
    if (const auto t = walls_[i].intersect_segment(a, b)) {
      out.push_back({i, *t, walls_[i].loss_db()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const WallCrossing& l, const WallCrossing& r) { return l.t < r.t; });
  return out;
}

double Floorplan::total_penetration_loss_db(const Vec3& a, const Vec3& b) const {
  double acc = 0.0;
  for (const Wall& w : walls_) {
    if (w.intersect_segment(a, b)) acc += w.loss_db();
  }
  return acc;
}

std::size_t Floorplan::wall_count_between(const Vec3& a, const Vec3& b) const {
  std::size_t n = 0;
  for (const Wall& w : walls_) {
    if (w.intersect_segment(a, b)) ++n;
  }
  return n;
}

ApartmentModel make_apartment_model() {
  // Coordinate frame: the scan volume's origin corner is (0, 0, 0); x grows
  // along the 3.74 m edge, y along the 3.20 m edge, z up. The building core
  // (with most neighbours' APs) lies toward +x and -y, matching the paper's
  // observation that sample counts grow with x and shrink with y.
  ApartmentModel model;
  model.scan_volume = Aabb({0.0, 0.0, 0.0}, {3.74, 3.20, 2.10});

  Floorplan& fp = model.floorplan;
  constexpr double kFloorHeight = 2.6;  // storey height in the building

  // --- Living-room envelope -------------------------------------------------
  // Exterior facade behind -x (street side): brick.
  fp.add_wall(Wall::vertical({-0.15, -4.0, 0.0}, {-0.15, 8.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Brick, 0.0, "facade-west"));
  // Interior wall toward the rest of the apartment/building at +x: drywall.
  fp.add_wall(Wall::vertical({3.95, -4.0, 0.0}, {3.95, 8.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "interior-east"));
  // Wall at +y (away from building centre): concrete party wall to the
  // neighbouring unit on the quieter side.
  fp.add_wall(Wall::vertical({-4.0, 3.40, 0.0}, {8.0, 3.40, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Concrete, 0.0, "party-north"));
  // Wall at -y (toward building centre / corridor). "There is a wall segment
  // that is 40 cm wider where UAV B's measurements are taken compared to UAV
  // A": the low-x half is a thick load-bearing segment, the high-x half an
  // ordinary partition. Units directly south of the room lie behind the
  // thick segment for UAV B's half and behind the thin one for UAV A's half.
  fp.add_wall(Wall::vertical({-4.0, -0.20, 0.0}, {1.87, -0.20, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Concrete, 6.0, "corridor-south-thick"));
  fp.add_wall(Wall::vertical({1.87, -0.20, 0.0}, {8.0, -0.20, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "corridor-south"));

  // --- Further interior partitions toward the building core -----------------
  fp.add_wall(Wall::vertical({6.5, -10.0, 0.0}, {6.5, 8.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "interior-east-2"));
  fp.add_wall(Wall::vertical({-4.0, -5.0, 0.0}, {10.0, -5.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "corridor-south-2"));
  fp.add_wall(Wall::vertical({10.5, -10.0, 0.0}, {10.5, 8.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "core-east"));
  fp.add_wall(Wall::vertical({15.0, -10.0, 0.0}, {15.0, 8.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "core-east-2"));
  
  // --- Floor slabs above and below (APs on other storeys) --------------------
  for (const double z : {-0.05, kFloorHeight, -kFloorHeight, 2.0 * kFloorHeight}) {
    fp.add_wall(Wall::slab(-6.0, -10.0, 20.0, 10.0, z, WallMaterial::ReinforcedConcrete, 0.0,
                           "slab"));
  }

  // Vertical extent: one storey below, the ground storey, and routers up to
  // two storeys above (the topmost reachable through two slabs).
  model.building_bounds = Aabb({-6.0, -10.0, -kFloorHeight}, {20.0, 10.0, 3.0 * kFloorHeight});
  return model;
}

ApartmentModel make_office_model() {
  // Frame: the scan volume's origin corner is (0, 0, 0); x runs along the
  // open-plan area, y toward the meeting-room block, z up. The floor is one
  // slice of a multi-storey office tower.
  ApartmentModel model;
  model.scan_volume = Aabb({0.0, 0.0, 0.0}, {6.0, 4.5, 2.4});

  Floorplan& fp = model.floorplan;
  constexpr double kFloorHeight = 3.0;

  // Curtain-wall facade (glass) behind -x.
  fp.add_wall(Wall::vertical({-0.2, -6.0, 0.0}, {-0.2, 12.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Glass, 0.0, "facade"));
  // Glazed meeting-room front at +y with a drywall back wall behind it.
  fp.add_wall(Wall::vertical({-4.0, 4.8, 0.0}, {14.0, 4.8, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Glass, 0.0, "meeting-front"));
  fp.add_wall(Wall::vertical({-4.0, 8.0, 0.0}, {14.0, 8.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "meeting-back"));
  // Meeting-room dividers (drywall) slicing the block along y.
  for (const double x : {0.0, 4.0, 8.0}) {
    fp.add_wall(Wall::vertical({x, 4.8, 0.0}, {x, 8.0, 0.0}, 0.0, kFloorHeight,
                               WallMaterial::Drywall, 0.0, "meeting-divider"));
  }
  // Concrete service core at the far +x end (lifts, risers).
  fp.add_wall(Wall::vertical({10.0, -6.0, 0.0}, {10.0, 12.0, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Concrete, 0.0, "core-wall"));
  // Corridor partition at -y toward the other wing.
  fp.add_wall(Wall::vertical({-4.0, -1.5, 0.0}, {14.0, -1.5, 0.0}, 0.0, kFloorHeight,
                             WallMaterial::Drywall, 0.0, "corridor"));

  // Floor slabs above and below.
  for (const double z : {-0.05, kFloorHeight, -kFloorHeight, 2.0 * kFloorHeight}) {
    fp.add_wall(Wall::slab(-4.0, -6.0, 14.0, 12.0, z, WallMaterial::ReinforcedConcrete, 0.0,
                           "slab"));
  }

  model.building_bounds = Aabb({-4.0, -6.0, -kFloorHeight}, {14.0, 12.0, 2.0 * kFloorHeight});
  return model;
}

}  // namespace remgen::geom
