// Floorplan: the set of walls making up an indoor environment, with queries
// used by the propagation and UWB models (wall crossings along a segment).
#pragma once

#include <string>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/wall.hpp"

namespace remgen::geom {

/// One wall crossing along a segment.
struct WallCrossing {
  std::size_t wall_index;  ///< Index into Floorplan::walls().
  double t;                ///< Segment parameter in (0, 1).
  double loss_db;          ///< Penetration loss of the crossed wall.
};

/// Immutable-after-construction collection of walls plus overall bounds.
class Floorplan {
 public:
  Floorplan() = default;

  /// Adds a wall; returns its index.
  std::size_t add_wall(Wall wall);

  /// All walls.
  [[nodiscard]] const std::vector<Wall>& walls() const noexcept { return walls_; }

  /// Crossings of segment a->b sorted by t. Endpoints touching a wall plane
  /// do not count (see Wall::intersect_segment).
  [[nodiscard]] std::vector<WallCrossing> crossings(const Vec3& a, const Vec3& b) const;

  /// Sum of penetration losses of all walls crossed by segment a->b, in dB.
  [[nodiscard]] double total_penetration_loss_db(const Vec3& a, const Vec3& b) const;

  /// Number of walls crossed by segment a->b.
  [[nodiscard]] std::size_t wall_count_between(const Vec3& a, const Vec3& b) const;

  /// True iff no wall lies between the two points.
  [[nodiscard]] bool line_of_sight(const Vec3& a, const Vec3& b) const {
    return wall_count_between(a, b) == 0;
  }

 private:
  std::vector<Wall> walls_;
};

/// Builds the demonstration environment modelled after the paper: a living
/// room (3.74 m x 3.20 m x 2.10 m scan volume) inside a condo apartment in a
/// larger apartment building. The building extends toward +x / -y (the paper
/// observes more APs in that direction); the wall segment on UAV B's side
/// (low x) is 40 cm thicker. `scan_volume` receives the cuboid the UAVs scan.
struct ApartmentModel {
  Floorplan floorplan;
  Aabb scan_volume;       ///< The 3.74 x 3.20 x 2.10 m cuboid.
  Aabb building_bounds;   ///< Extent of the whole modelled building.
};

/// Constructs the apartment/building model used by the validation campaign.
[[nodiscard]] ApartmentModel make_apartment_model();

/// A second, structurally different environment — an open-plan office floor
/// with a meeting-room block — exercising the paper's design requirement (ii):
/// "straightforward deployment of the system in unknown complex indoor
/// environments". The scan volume is a 6.0 x 4.5 x 2.4 m section of the
/// open-plan area next to the glazed meeting rooms.
[[nodiscard]] ApartmentModel make_office_model();

}  // namespace remgen::geom
