// Axis-aligned bounding box: the scan volume and room extents.
#pragma once

#include <algorithm>
#include <array>

#include "geom/vec3.hpp"
#include "util/contracts.hpp"

namespace remgen::geom {

/// Axis-aligned box defined by min/max corners (min <= max componentwise).
struct Aabb {
  Vec3 min;
  Vec3 max;

  constexpr Aabb() = default;
  Aabb(const Vec3& min_, const Vec3& max_) : min(min_), max(max_) {
    REMGEN_EXPECTS(min.x <= max.x && min.y <= max.y && min.z <= max.z);
  }

  /// Box from an origin corner and positive sizes.
  [[nodiscard]] static Aabb from_size(const Vec3& origin, const Vec3& size) {
    return Aabb(origin, origin + size);
  }

  /// Edge lengths.
  [[nodiscard]] Vec3 size() const { return max - min; }

  /// Geometric centre.
  [[nodiscard]] Vec3 center() const { return (min + max) * 0.5; }

  /// Volume in cubic meters.
  [[nodiscard]] double volume() const {
    const Vec3 s = size();
    return s.x * s.y * s.z;
  }

  /// True iff the point lies inside or on the boundary.
  [[nodiscard]] bool contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y && p.z >= min.z &&
           p.z <= max.z;
  }

  /// Componentwise clamp of a point into the box.
  [[nodiscard]] Vec3 clamp(const Vec3& p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y),
            std::clamp(p.z, min.z, max.z)};
  }

  /// The 8 corner points, in z-major order.
  [[nodiscard]] std::array<Vec3, 8> corners() const {
    return {Vec3{min.x, min.y, min.z}, Vec3{max.x, min.y, min.z}, Vec3{min.x, max.y, min.z},
            Vec3{max.x, max.y, min.z}, Vec3{min.x, min.y, max.z}, Vec3{max.x, min.y, max.z},
            Vec3{min.x, max.y, max.z}, Vec3{max.x, max.y, max.z}};
  }

  /// Smallest box containing both boxes.
  [[nodiscard]] Aabb united(const Aabb& o) const {
    return Aabb({std::min(min.x, o.min.x), std::min(min.y, o.min.y), std::min(min.z, o.min.z)},
                {std::max(max.x, o.max.x), std::max(max.y, o.max.y), std::max(max.z, o.max.z)});
  }
};

}  // namespace remgen::geom
