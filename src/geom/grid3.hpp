// Regular 3D voxel grid over an AABB: the spatial index backing REM rasters
// and the correlated shadowing field.
#pragma once

#include <cstddef>
#include <vector>

#include "geom/aabb.hpp"
#include "util/contracts.hpp"

namespace remgen::geom {

/// Integer voxel coordinate.
struct VoxelIndex {
  std::size_t ix = 0;
  std::size_t iy = 0;
  std::size_t iz = 0;
  constexpr bool operator==(const VoxelIndex&) const = default;
};

/// Geometry of a regular grid over a box: voxel counts per axis and the
/// mapping between world points and voxels.
class GridGeometry {
 public:
  /// Grid with the given voxel counts (all > 0) over `bounds`.
  GridGeometry(const Aabb& bounds, std::size_t nx, std::size_t ny, std::size_t nz)
      : bounds_(bounds), nx_(nx), ny_(ny), nz_(nz) {
    REMGEN_EXPECTS(nx > 0 && ny > 0 && nz > 0);
  }

  /// Grid with (approximately) the given voxel edge length; at least one
  /// voxel per axis.
  [[nodiscard]] static GridGeometry with_resolution(const Aabb& bounds, double voxel_m) {
    REMGEN_EXPECTS(voxel_m > 0.0);
    const Vec3 s = bounds.size();
    auto count = [voxel_m](double extent) {
      const auto n = static_cast<std::size_t>(extent / voxel_m + 0.5);
      return n == 0 ? std::size_t{1} : n;
    };
    return GridGeometry(bounds, count(s.x), count(s.y), count(s.z));
  }

  [[nodiscard]] const Aabb& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
  [[nodiscard]] std::size_t nz() const noexcept { return nz_; }
  [[nodiscard]] std::size_t voxel_count() const noexcept { return nx_ * ny_ * nz_; }

  /// Flat index of a voxel.
  [[nodiscard]] std::size_t flat(const VoxelIndex& v) const {
    REMGEN_EXPECTS(v.ix < nx_ && v.iy < ny_ && v.iz < nz_);
    return (v.iz * ny_ + v.iy) * nx_ + v.ix;
  }

  /// Voxel containing a point (points outside are clamped to the border).
  [[nodiscard]] VoxelIndex voxel_of(const Vec3& p) const {
    const Vec3 q = bounds_.clamp(p);
    const Vec3 s = bounds_.size();
    auto axis = [](double value, double lo, double extent, std::size_t n) {
      if (extent <= 0.0) return std::size_t{0};
      auto i = static_cast<std::size_t>((value - lo) / extent * static_cast<double>(n));
      return i >= n ? n - 1 : i;
    };
    return {axis(q.x, bounds_.min.x, s.x, nx_), axis(q.y, bounds_.min.y, s.y, ny_),
            axis(q.z, bounds_.min.z, s.z, nz_)};
  }

  /// World-space centre of a voxel.
  [[nodiscard]] Vec3 voxel_center(const VoxelIndex& v) const {
    REMGEN_EXPECTS(v.ix < nx_ && v.iy < ny_ && v.iz < nz_);
    const Vec3 s = bounds_.size();
    return {bounds_.min.x + s.x * (static_cast<double>(v.ix) + 0.5) / static_cast<double>(nx_),
            bounds_.min.y + s.y * (static_cast<double>(v.iy) + 0.5) / static_cast<double>(ny_),
            bounds_.min.z + s.z * (static_cast<double>(v.iz) + 0.5) / static_cast<double>(nz_)};
  }

 private:
  Aabb bounds_;
  std::size_t nx_;
  std::size_t ny_;
  std::size_t nz_;
};

/// Dense per-voxel scalar field over a GridGeometry.
template <typename T>
class VoxelField {
 public:
  VoxelField(GridGeometry geometry, T fill = T{})
      : geometry_(std::move(geometry)), values_(geometry_.voxel_count(), fill) {}

  [[nodiscard]] const GridGeometry& geometry() const noexcept { return geometry_; }

  [[nodiscard]] T& at(const VoxelIndex& v) { return values_[geometry_.flat(v)]; }
  [[nodiscard]] const T& at(const VoxelIndex& v) const { return values_[geometry_.flat(v)]; }

  /// Value of the voxel containing a world point.
  [[nodiscard]] const T& at_point(const Vec3& p) const { return at(geometry_.voxel_of(p)); }
  [[nodiscard]] T& at_point(const Vec3& p) { return at(geometry_.voxel_of(p)); }

  [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }
  [[nodiscard]] std::vector<T>& values() noexcept { return values_; }

 private:
  GridGeometry geometry_;
  std::vector<T> values_;
};

}  // namespace remgen::geom
