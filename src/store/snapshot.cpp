#include "store/snapshot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ml/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/binary_io.hpp"
#include "util/fmt.hpp"

namespace remgen::store {

void write_sample_row(util::BinaryWriter& w, const data::Sample& s) {
  w.f64(s.position.x);
  w.f64(s.position.y);
  w.f64(s.position.z);
  w.str(s.ssid);
  w.f64(s.rss_dbm);
  ml::save_mac(w, s.mac);
  w.i64(s.channel);
  w.f64(s.timestamp_s);
  w.i64(s.uav_id);
  w.i64(s.waypoint_index);
}

data::Sample read_sample_row(util::BinaryReader& r) {
  data::Sample s;
  s.position.x = r.f64();
  s.position.y = r.f64();
  s.position.z = r.f64();
  s.ssid = r.str();
  s.rss_dbm = r.f64();
  s.mac = ml::load_mac(r);
  s.channel = static_cast<int>(r.i64());
  s.timestamp_s = r.f64();
  s.uav_id = static_cast<int>(r.i64());
  s.waypoint_index = static_cast<int>(r.i64());
  return s;
}

void write_dataset_payload(util::BinaryWriter& w, const data::Dataset& dataset) {
  w.u64(dataset.size());
  for (const data::Sample& s : dataset.samples()) write_sample_row(w, s);
}

namespace {

data::Dataset read_dataset(util::BinaryReader& r) {
  std::vector<data::Sample> samples(r.u64());
  for (data::Sample& s : samples) s = read_sample_row(r);
  return data::Dataset(std::move(samples));
}

void write_rem(util::BinaryWriter& w, const core::RadioEnvironmentMap& rem) {
  const geom::GridGeometry& g = rem.geometry();
  w.f64(g.bounds().min.x);
  w.f64(g.bounds().min.y);
  w.f64(g.bounds().min.z);
  w.f64(g.bounds().max.x);
  w.f64(g.bounds().max.y);
  w.f64(g.bounds().max.z);
  w.u64(g.nx());
  w.u64(g.ny());
  w.u64(g.nz());
  w.u64(rem.macs().size());
  for (const radio::MacAddress& mac : rem.macs()) ml::save_mac(w, mac);
  for (const radio::MacAddress& mac : rem.macs()) {
    for (std::size_t iz = 0; iz < g.nz(); ++iz) {
      for (std::size_t iy = 0; iy < g.ny(); ++iy) {
        for (std::size_t ix = 0; ix < g.nx(); ++ix) {
          const core::RemCell cell = rem.cell(mac, {ix, iy, iz});
          w.f64(cell.rss_dbm);
          w.f64(cell.sigma_db);
        }
      }
    }
  }
}

core::RadioEnvironmentMap read_rem(util::BinaryReader& r) {
  geom::Aabb bounds;
  bounds.min.x = r.f64();
  bounds.min.y = r.f64();
  bounds.min.z = r.f64();
  bounds.max.x = r.f64();
  bounds.max.y = r.f64();
  bounds.max.z = r.f64();
  const std::uint64_t nx = r.u64();
  const std::uint64_t ny = r.u64();
  const std::uint64_t nz = r.u64();
  std::vector<radio::MacAddress> macs(r.u64());
  for (radio::MacAddress& mac : macs) mac = ml::load_mac(r);
  core::RadioEnvironmentMap rem(geom::GridGeometry(bounds, nx, ny, nz), macs);
  for (const radio::MacAddress& mac : macs) {
    for (std::size_t iz = 0; iz < nz; ++iz) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
          core::RemCell cell;
          cell.rss_dbm = r.f64();
          cell.sigma_db = r.f64();
          rem.set_cell(mac, {ix, iy, iz}, cell);
        }
      }
    }
  }
  return rem;
}

void write_section(util::BinaryWriter& out, SectionId id, const util::BinaryWriter& payload) {
  out.u32(static_cast<std::uint32_t>(id));
  out.u64(payload.size());
  out.u32(util::crc32(payload.buffer()));
  out.bytes(payload.buffer().data(), payload.size());
}

}  // namespace

void save_snapshot(std::ostream& out, const Snapshot& snapshot) {
  REMGEN_SPAN("store.snapshot.save");
  util::BinaryWriter w;
  w.bytes(kSnapshotMagic.data(), kSnapshotMagic.size());
  w.u32(kSnapshotVersion);

  std::uint32_t sections = 1;
  if (snapshot.rem.has_value()) ++sections;
  if (snapshot.model != nullptr) ++sections;
  w.u32(sections);

  {
    util::BinaryWriter payload;
    write_dataset_payload(payload, snapshot.dataset);
    write_section(w, SectionId::Dataset, payload);
  }
  if (snapshot.rem.has_value()) {
    util::BinaryWriter payload;
    write_rem(payload, *snapshot.rem);
    write_section(w, SectionId::Rem, payload);
  }
  if (snapshot.model != nullptr) {
    util::BinaryWriter payload;
    ml::save_model(payload, *snapshot.model);
    write_section(w, SectionId::Model, payload);
  }

  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  if (!out) throw std::runtime_error("snapshot: write failed");
  REMGEN_COUNTER_ADD("store.snapshot.saves", 1);
  REMGEN_COUNTER_ADD("store.snapshot.bytes_written", static_cast<std::int64_t>(w.size()));
}

Snapshot load_snapshot(std::istream& in) {
  REMGEN_SPAN("store.snapshot.load");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  util::BinaryReader r(bytes);

  if (r.remaining() < kSnapshotMagic.size() ||
      r.view(kSnapshotMagic.size()) != kSnapshotMagic) {
    throw std::runtime_error("snapshot: bad magic (not a REM snapshot)");
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw std::runtime_error(
        util::format("snapshot: unsupported version {} (expected {})", version, kSnapshotVersion));
  }

  Snapshot snapshot;
  const std::uint32_t sections = r.u32();
  for (std::uint32_t i = 0; i < sections; ++i) {
    const std::uint32_t id = r.u32();
    const std::uint64_t size = r.u64();
    const std::uint32_t crc = r.u32();
    const std::string_view payload = r.view(size);
    if (util::crc32(payload) != crc) {
      throw std::runtime_error(util::format("snapshot: CRC mismatch in section {}", id));
    }
    util::BinaryReader section(payload);
    switch (static_cast<SectionId>(id)) {
      case SectionId::Dataset: snapshot.dataset = read_dataset(section); break;
      case SectionId::Rem: snapshot.rem.emplace(read_rem(section)); break;
      case SectionId::Model: snapshot.model = ml::load_model(section); break;
      default: break;  // Unknown section from a newer writer: CRC-checked, skipped.
    }
  }
  REMGEN_COUNTER_ADD("store.snapshot.loads", 1);
  return snapshot;
}

void save_snapshot_file(const std::string& path, const Snapshot& snapshot) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error(util::format("snapshot: cannot open '{}' for write", path));
  save_snapshot(out, snapshot);
}

Snapshot load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(util::format("snapshot: cannot open '{}' for read", path));
  return load_snapshot(in);
}

}  // namespace remgen::store
