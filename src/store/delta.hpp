// REMDELT1: a versioned snapshot delta — what changed between two epochs.
//
// Streaming ingestion refits and re-rasters every epoch, but most of the
// resulting full snapshot is bytes the previous epoch already shipped: the
// paper's >= 16-samples gate is monotone, so the previous prepared dataset
// is a strict subsequence of the next one, and per-MAC model families only
// move the raster layers whose sample sets changed. A delta captures
// exactly that difference and is replayable: apply_delta(base, delta)
// reconstructs the next epoch's full snapshot byte-identically (enforced by
// tests), so a consumer can follow a stream of deltas and at any point
// serialise state indistinguishable from the one-shot batch build.
//
// Layout mirrors REMSNAP1 (util::BinaryWriter little-endian framing):
//   magic   "REMDELT1"                      8 bytes
//   version u32 (currently 1)
//   count   u32 number of sections
//   section u32 id | u64 payload size | u32 crc32(payload) | payload
// Sections:
//   1 Meta        base_epoch u64 | epoch u64 | base_rows u64 |
//                 base_dataset_crc u32 (crc32 of the base snapshot's dataset
//                 section payload — binds the delta to its exact base) |
//                 final_rows u64
//   2 DatasetRows count u64, then per row: u64 position in the final
//                 prepared dataset | the REMSNAP1 row encoding. Rows absent
//                 here are the base rows, in base order, filling the
//                 remaining positions.
//   3 Model       the full refitted model (ml::save_model framing). Models
//                 are small next to the raster; carrying them whole keeps
//                 byte-identity trivially exact for every model family.
//   4 RemPatch    grid bounds + dims | full MAC list of the new REM |
//                 changed-layer count, then per changed MAC: mac | the
//                 z-major cell run. Layers absent here are copied from the
//                 base REM. Changed = any cell differs bitwise, so per-MAC
//                 families ship only the layers that moved and global
//                 families degrade gracefully to a full patch.
// Unknown ids are CRC-checked and skipped, as in REMSNAP1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "store/snapshot.hpp"

namespace remgen::store {

inline constexpr std::string_view kDeltaMagic = "REMDELT1";
inline constexpr std::uint32_t kDeltaVersion = 1;

/// Section identifiers within a delta.
enum class DeltaSectionId : std::uint32_t {
  Meta = 1,
  DatasetRows = 2,
  Model = 3,
  RemPatch = 4,
};

/// One inserted prepared-dataset row and its position in the final dataset.
struct DeltaRow {
  std::uint64_t position = 0;
  data::Sample sample;
};

/// One replaced/added REM layer (z-major cell order, as in REMSNAP1).
struct DeltaRemLayer {
  radio::MacAddress mac;
  std::vector<core::RemCell> cells;
};

/// The REM patch: the new grid + MAC list, with only the changed layers.
struct DeltaRemPatch {
  geom::Aabb bounds;
  std::uint64_t nx = 0;
  std::uint64_t ny = 0;
  std::uint64_t nz = 0;
  std::vector<radio::MacAddress> macs;    ///< Full MAC list of the new REM.
  std::vector<DeltaRemLayer> layers;      ///< Changed/new layers only.
};

/// An epoch-to-epoch snapshot difference.
struct SnapshotDelta {
  std::uint64_t base_epoch = 0;
  std::uint64_t epoch = 0;
  std::uint64_t base_rows = 0;
  std::uint32_t base_dataset_crc = 0;
  std::uint64_t final_rows = 0;
  std::vector<DeltaRow> added_rows;
  std::string model_bytes;                ///< ml::save_model framing; empty = no model.
  std::optional<DeltaRemPatch> rem;       ///< Absent when neither epoch has a REM.
};

/// CRC of a snapshot's serialised dataset section payload — the token that
/// binds a delta to its exact base.
[[nodiscard]] std::uint32_t dataset_payload_crc(const Snapshot& snapshot);

/// Computes the delta from `base` to `next`. Throws std::runtime_error when
/// the pair is not delta-able: base dataset rows are not a subsequence of
/// next's, grid geometry changed, or a base REM layer disappeared.
[[nodiscard]] SnapshotDelta make_delta(const Snapshot& base, const Snapshot& next,
                                       std::uint64_t base_epoch, std::uint64_t epoch);

/// Replays `delta` on top of `base`. Throws std::runtime_error when the base
/// does not match the delta's recorded row count / CRC, or on internal
/// inconsistencies. The result serialises byte-identically to the full
/// snapshot the delta was computed against.
[[nodiscard]] Snapshot apply_delta(const Snapshot& base, const SnapshotDelta& delta);

/// Serialises / parses the wire format. load_delta throws std::runtime_error
/// on bad magic, unsupported version, truncation, or CRC mismatch.
void save_delta(std::ostream& out, const SnapshotDelta& delta);
[[nodiscard]] SnapshotDelta load_delta(std::istream& in);

void save_delta_file(const std::string& path, const SnapshotDelta& delta);
[[nodiscard]] SnapshotDelta load_delta_file(const std::string& path);

}  // namespace remgen::store
