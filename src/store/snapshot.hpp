// Versioned binary snapshot of a REM campaign's durable state.
//
// A snapshot bundles the three artefacts a serving process needs: the
// preprocessed dataset (with its MAC/channel context), the baked
// RadioEnvironmentMap voxel grid, and the trained model parameters. The
// on-disk format is endian-safe (explicit little-endian fields), versioned,
// and integrity-checked: every section carries a CRC-32 so truncation and
// bit-rot fail loudly at load time instead of silently corrupting
// predictions. Loading a model from a snapshot yields bit-identical
// predictions to the in-process original (see ml::Serializable).
//
// Layout:
//   magic   "REMSNAP1"                      8 bytes
//   version u32 (currently 1)
//   count   u32 number of sections
//   section u32 id | u64 payload size | u32 crc32(payload) | payload
// Section ids: 1 = dataset, 2 = REM raster, 3 = model. Unknown ids are
// skipped (their CRC is still verified), so older readers tolerate newer
// writers that append sections.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "core/rem.hpp"
#include "data/dataset.hpp"
#include "ml/estimator.hpp"

namespace remgen::util {
class BinaryWriter;
class BinaryReader;
}  // namespace remgen::util

namespace remgen::store {

/// Format constants, exposed for tests and tooling.
inline constexpr std::string_view kSnapshotMagic = "REMSNAP1";
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Section identifiers within a snapshot.
enum class SectionId : std::uint32_t {
  Dataset = 1,
  Rem = 2,
  Model = 3,
};

/// The durable state of a campaign: what a query-serving process loads.
struct Snapshot {
  data::Dataset dataset;
  std::optional<core::RadioEnvironmentMap> rem;
  std::unique_ptr<ml::Estimator> model;
};

/// Serialises `snapshot` to `out`. Sections are written for every present
/// member (the dataset always, REM and model when set).
void save_snapshot(std::ostream& out, const Snapshot& snapshot);

/// Parses a snapshot from `in`. Throws std::runtime_error on bad magic,
/// unsupported version, truncated input, or CRC mismatch.
[[nodiscard]] Snapshot load_snapshot(std::istream& in);

/// save_snapshot to a file; throws std::runtime_error if unwritable.
void save_snapshot_file(const std::string& path, const Snapshot& snapshot);

/// load_snapshot from a file; throws std::runtime_error if unreadable.
[[nodiscard]] Snapshot load_snapshot_file(const std::string& path);

/// The dataset row / section payload encodings, shared with the REMDELT1
/// delta format (store/delta.hpp) so both formats stay bit-compatible.
void write_sample_row(util::BinaryWriter& w, const data::Sample& s);
[[nodiscard]] data::Sample read_sample_row(util::BinaryReader& r);
void write_dataset_payload(util::BinaryWriter& w, const data::Dataset& dataset);

}  // namespace remgen::store
