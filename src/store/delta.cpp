#include "store/delta.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ml/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/binary_io.hpp"
#include "util/fmt.hpp"

namespace remgen::store {

namespace {

void write_section(util::BinaryWriter& out, DeltaSectionId id, const util::BinaryWriter& payload) {
  out.u32(static_cast<std::uint32_t>(id));
  out.u64(payload.size());
  out.u32(util::crc32(payload.buffer()));
  out.bytes(payload.buffer().data(), payload.size());
}

/// One row's REMSNAP1 encoding as a comparable byte string.
std::string row_bytes(const data::Sample& s) {
  util::BinaryWriter w;
  write_sample_row(w, s);
  return std::string(w.buffer().data(), w.size());
}

/// Reads the z-major cell run of one REM layer into `cells`.
std::vector<core::RemCell> layer_cells(const core::RadioEnvironmentMap& rem,
                                       const radio::MacAddress& mac) {
  const geom::GridGeometry& g = rem.geometry();
  std::vector<core::RemCell> cells;
  cells.reserve(g.nx() * g.ny() * g.nz());
  for (std::size_t iz = 0; iz < g.nz(); ++iz) {
    for (std::size_t iy = 0; iy < g.ny(); ++iy) {
      for (std::size_t ix = 0; ix < g.nx(); ++ix) {
        cells.push_back(rem.cell(mac, {ix, iy, iz}));
      }
    }
  }
  return cells;
}

/// Bitwise cell equality: byte-identity of the serialised raster is the
/// contract, so comparisons must be on the f64 bit patterns, not ==.
bool cells_equal(const std::vector<core::RemCell>& a, const std::vector<core::RemCell>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].rss_dbm) != std::bit_cast<std::uint64_t>(b[i].rss_dbm) ||
        std::bit_cast<std::uint64_t>(a[i].sigma_db) !=
            std::bit_cast<std::uint64_t>(b[i].sigma_db)) {
      return false;
    }
  }
  return true;
}

bool geometry_equal(const geom::GridGeometry& a, const geom::GridGeometry& b) {
  return std::bit_cast<std::uint64_t>(a.bounds().min.x) ==
             std::bit_cast<std::uint64_t>(b.bounds().min.x) &&
         std::bit_cast<std::uint64_t>(a.bounds().min.y) ==
             std::bit_cast<std::uint64_t>(b.bounds().min.y) &&
         std::bit_cast<std::uint64_t>(a.bounds().min.z) ==
             std::bit_cast<std::uint64_t>(b.bounds().min.z) &&
         std::bit_cast<std::uint64_t>(a.bounds().max.x) ==
             std::bit_cast<std::uint64_t>(b.bounds().max.x) &&
         std::bit_cast<std::uint64_t>(a.bounds().max.y) ==
             std::bit_cast<std::uint64_t>(b.bounds().max.y) &&
         std::bit_cast<std::uint64_t>(a.bounds().max.z) ==
             std::bit_cast<std::uint64_t>(b.bounds().max.z) &&
         a.nx() == b.nx() && a.ny() == b.ny() && a.nz() == b.nz();
}

}  // namespace

std::uint32_t dataset_payload_crc(const Snapshot& snapshot) {
  util::BinaryWriter payload;
  write_dataset_payload(payload, snapshot.dataset);
  return util::crc32(payload.buffer());
}

SnapshotDelta make_delta(const Snapshot& base, const Snapshot& next, std::uint64_t base_epoch,
                         std::uint64_t epoch) {
  REMGEN_SPAN("store.delta.make");
  SnapshotDelta delta;
  delta.base_epoch = base_epoch;
  delta.epoch = epoch;
  delta.base_rows = base.dataset.size();
  delta.base_dataset_crc = dataset_payload_crc(base);
  delta.final_rows = next.dataset.size();

  // The monotone gate means base rows appear in next in the same relative
  // order; a greedy subsequence walk recovers the inserted rows and their
  // final positions. Comparison is on the serialised row bytes, the same
  // encoding byte-identity is measured in.
  const auto& base_rows = base.dataset.samples();
  const auto& next_rows = next.dataset.samples();
  std::size_t b = 0;
  for (std::size_t i = 0; i < next_rows.size(); ++i) {
    if (b < base_rows.size() && row_bytes(next_rows[i]) == row_bytes(base_rows[b])) {
      ++b;
      continue;
    }
    delta.added_rows.push_back(DeltaRow{i, next_rows[i]});
  }
  if (b != base_rows.size()) {
    throw std::runtime_error(
        util::format("delta: base dataset is not a subsequence of the next epoch "
                     "({} of {} base rows matched)",
                     b, base_rows.size()));
  }

  if (next.model != nullptr) {
    util::BinaryWriter w;
    ml::save_model(w, *next.model);
    delta.model_bytes.assign(w.buffer().data(), w.size());
  }

  if (next.rem.has_value()) {
    const core::RadioEnvironmentMap& next_rem = *next.rem;
    const geom::GridGeometry& g = next_rem.geometry();
    if (base.rem.has_value() && !geometry_equal(base.rem->geometry(), g)) {
      throw std::runtime_error("delta: REM grid geometry changed between epochs");
    }
    DeltaRemPatch patch;
    patch.bounds = g.bounds();
    patch.nx = g.nx();
    patch.ny = g.ny();
    patch.nz = g.nz();
    patch.macs = next_rem.macs();
    for (const radio::MacAddress& mac : patch.macs) {
      std::vector<core::RemCell> cells = layer_cells(next_rem, mac);
      bool changed = true;
      if (base.rem.has_value()) {
        const auto& base_macs = base.rem->macs();
        const bool in_base =
            std::find(base_macs.begin(), base_macs.end(), mac) != base_macs.end();
        if (in_base) changed = !cells_equal(cells, layer_cells(*base.rem, mac));
      }
      if (changed) patch.layers.push_back(DeltaRemLayer{mac, std::move(cells)});
    }
    delta.rem = std::move(patch);
  }
  REMGEN_COUNTER_ADD("store.delta.makes", 1);
  return delta;
}

Snapshot apply_delta(const Snapshot& base, const SnapshotDelta& delta) {
  REMGEN_SPAN("store.delta.apply");
  if (base.dataset.size() != delta.base_rows) {
    throw std::runtime_error(util::format("delta: base has {} rows, delta expects {}",
                                          base.dataset.size(), delta.base_rows));
  }
  if (dataset_payload_crc(base) != delta.base_dataset_crc) {
    throw std::runtime_error("delta: base dataset CRC mismatch (wrong base snapshot)");
  }
  if (delta.base_rows + delta.added_rows.size() != delta.final_rows) {
    throw std::runtime_error("delta: row counts are inconsistent");
  }

  Snapshot out;
  {
    std::vector<data::Sample> rows(delta.final_rows);
    std::vector<bool> filled(delta.final_rows, false);
    for (const DeltaRow& added : delta.added_rows) {
      if (added.position >= delta.final_rows || filled[added.position]) {
        throw std::runtime_error("delta: bad inserted-row position");
      }
      rows[added.position] = added.sample;
      filled[added.position] = true;
    }
    std::size_t b = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (filled[i]) continue;
      rows[i] = base.dataset.samples()[b++];
    }
    out.dataset = data::Dataset(std::move(rows));
  }

  if (!delta.model_bytes.empty()) {
    util::BinaryReader r(delta.model_bytes);
    out.model = ml::load_model(r);
  }

  if (delta.rem.has_value()) {
    const DeltaRemPatch& patch = *delta.rem;
    core::RadioEnvironmentMap rem(
        geom::GridGeometry(patch.bounds, patch.nx, patch.ny, patch.nz), patch.macs);
    const geom::GridGeometry& g = rem.geometry();
    for (const radio::MacAddress& mac : patch.macs) {
      const DeltaRemLayer* layer = nullptr;
      for (const DeltaRemLayer& l : patch.layers) {
        if (l.mac == mac) {
          layer = &l;
          break;
        }
      }
      std::vector<core::RemCell> cells;
      if (layer != nullptr) {
        cells = layer->cells;
      } else {
        if (!base.rem.has_value()) {
          throw std::runtime_error("delta: unchanged layer but base has no REM");
        }
        const auto& base_macs = base.rem->macs();
        if (std::find(base_macs.begin(), base_macs.end(), mac) == base_macs.end()) {
          throw std::runtime_error(
              util::format("delta: unchanged layer for mac {} missing from base",
                           mac.to_string()));
        }
        cells = layer_cells(*base.rem, mac);
      }
      if (cells.size() != g.nx() * g.ny() * g.nz()) {
        throw std::runtime_error("delta: layer cell count does not match the grid");
      }
      std::size_t c = 0;
      for (std::size_t iz = 0; iz < g.nz(); ++iz) {
        for (std::size_t iy = 0; iy < g.ny(); ++iy) {
          for (std::size_t ix = 0; ix < g.nx(); ++ix) {
            rem.set_cell(mac, {ix, iy, iz}, cells[c++]);
          }
        }
      }
    }
    out.rem.emplace(std::move(rem));
  }
  REMGEN_COUNTER_ADD("store.delta.applies", 1);
  return out;
}

void save_delta(std::ostream& out, const SnapshotDelta& delta) {
  REMGEN_SPAN("store.delta.save");
  util::BinaryWriter w;
  w.bytes(kDeltaMagic.data(), kDeltaMagic.size());
  w.u32(kDeltaVersion);

  std::uint32_t sections = 1;  // Meta is always present.
  if (!delta.added_rows.empty()) ++sections;
  if (!delta.model_bytes.empty()) ++sections;
  if (delta.rem.has_value()) ++sections;
  w.u32(sections);

  {
    util::BinaryWriter payload;
    payload.u64(delta.base_epoch);
    payload.u64(delta.epoch);
    payload.u64(delta.base_rows);
    payload.u32(delta.base_dataset_crc);
    payload.u64(delta.final_rows);
    write_section(w, DeltaSectionId::Meta, payload);
  }
  if (!delta.added_rows.empty()) {
    util::BinaryWriter payload;
    payload.u64(delta.added_rows.size());
    for (const DeltaRow& row : delta.added_rows) {
      payload.u64(row.position);
      write_sample_row(payload, row.sample);
    }
    write_section(w, DeltaSectionId::DatasetRows, payload);
  }
  if (!delta.model_bytes.empty()) {
    util::BinaryWriter payload;
    payload.bytes(delta.model_bytes.data(), delta.model_bytes.size());
    write_section(w, DeltaSectionId::Model, payload);
  }
  if (delta.rem.has_value()) {
    const DeltaRemPatch& patch = *delta.rem;
    util::BinaryWriter payload;
    payload.f64(patch.bounds.min.x);
    payload.f64(patch.bounds.min.y);
    payload.f64(patch.bounds.min.z);
    payload.f64(patch.bounds.max.x);
    payload.f64(patch.bounds.max.y);
    payload.f64(patch.bounds.max.z);
    payload.u64(patch.nx);
    payload.u64(patch.ny);
    payload.u64(patch.nz);
    payload.u64(patch.macs.size());
    for (const radio::MacAddress& mac : patch.macs) ml::save_mac(payload, mac);
    payload.u64(patch.layers.size());
    for (const DeltaRemLayer& layer : patch.layers) {
      ml::save_mac(payload, layer.mac);
      payload.u64(layer.cells.size());
      for (const core::RemCell& cell : layer.cells) {
        payload.f64(cell.rss_dbm);
        payload.f64(cell.sigma_db);
      }
    }
    write_section(w, DeltaSectionId::RemPatch, payload);
  }

  out.write(w.buffer().data(), static_cast<std::streamsize>(w.size()));
  if (!out) throw std::runtime_error("delta: write failed");
  REMGEN_COUNTER_ADD("store.delta.saves", 1);
  REMGEN_COUNTER_ADD("store.delta.bytes_written", static_cast<std::int64_t>(w.size()));
}

SnapshotDelta load_delta(std::istream& in) {
  REMGEN_SPAN("store.delta.load");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  util::BinaryReader r(bytes);

  if (r.remaining() < kDeltaMagic.size() || r.view(kDeltaMagic.size()) != kDeltaMagic) {
    throw std::runtime_error("delta: bad magic (not a REM delta)");
  }
  const std::uint32_t version = r.u32();
  if (version != kDeltaVersion) {
    throw std::runtime_error(
        util::format("delta: unsupported version {} (expected {})", version, kDeltaVersion));
  }

  SnapshotDelta delta;
  const std::uint32_t sections = r.u32();
  for (std::uint32_t i = 0; i < sections; ++i) {
    const std::uint32_t id = r.u32();
    const std::uint64_t size = r.u64();
    const std::uint32_t crc = r.u32();
    const std::string_view payload = r.view(size);
    if (util::crc32(payload) != crc) {
      throw std::runtime_error(util::format("delta: CRC mismatch in section {}", id));
    }
    util::BinaryReader section(payload);
    switch (static_cast<DeltaSectionId>(id)) {
      case DeltaSectionId::Meta:
        delta.base_epoch = section.u64();
        delta.epoch = section.u64();
        delta.base_rows = section.u64();
        delta.base_dataset_crc = section.u32();
        delta.final_rows = section.u64();
        break;
      case DeltaSectionId::DatasetRows: {
        delta.added_rows.resize(section.u64());
        for (DeltaRow& row : delta.added_rows) {
          row.position = section.u64();
          row.sample = read_sample_row(section);
        }
        break;
      }
      case DeltaSectionId::Model:
        delta.model_bytes.assign(payload.data(), payload.size());
        break;
      case DeltaSectionId::RemPatch: {
        DeltaRemPatch patch;
        patch.bounds.min.x = section.f64();
        patch.bounds.min.y = section.f64();
        patch.bounds.min.z = section.f64();
        patch.bounds.max.x = section.f64();
        patch.bounds.max.y = section.f64();
        patch.bounds.max.z = section.f64();
        patch.nx = section.u64();
        patch.ny = section.u64();
        patch.nz = section.u64();
        patch.macs.resize(section.u64());
        for (radio::MacAddress& mac : patch.macs) mac = ml::load_mac(section);
        patch.layers.resize(section.u64());
        for (DeltaRemLayer& layer : patch.layers) {
          layer.mac = ml::load_mac(section);
          layer.cells.resize(section.u64());
          for (core::RemCell& cell : layer.cells) {
            cell.rss_dbm = section.f64();
            cell.sigma_db = section.f64();
          }
        }
        delta.rem = std::move(patch);
        break;
      }
      default: break;  // Unknown section from a newer writer: CRC-checked, skipped.
    }
  }
  REMGEN_COUNTER_ADD("store.delta.loads", 1);
  return delta;
}

void save_delta_file(const std::string& path, const SnapshotDelta& delta) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error(util::format("delta: cannot open '{}' for write", path));
  save_delta(out, delta);
}

SnapshotDelta load_delta_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(util::format("delta: cannot open '{}' for read", path));
  return load_delta(in);
}

}  // namespace remgen::store
