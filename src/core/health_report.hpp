// Post-campaign health report: a human-readable markdown debrief that joins
// the flight recorder's event log with the metrics registry and the
// campaign's WaypointCoverage, so a lost waypoint (or a suspicious REM) can
// be diagnosed without re-running anything.
//
// Sections: campaign overview, per-waypoint coverage with retry/backoff/
// watchdog history reconstructed from scan events, the fault-injection
// timeline, CRTP loss and scan-stall tallies, per-MAC sample counts against
// the >=16-sample preprocessing gate, and the REM model's holdout error.
#pragma once

#include <optional>
#include <ostream>
#include <span>
#include <string>

#include "flightlog/flightlog.hpp"
#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "obs/metrics.hpp"

namespace remgen::core {

struct HealthReportOptions {
  /// The paper's preprocessing gate: MACs with fewer samples are dropped.
  std::size_t min_samples_per_mac = 16;
  /// Model name for the error-summary section (empty when not evaluated).
  std::string model_name;
  /// Holdout error of `model_name`, when an evaluation was run.
  std::optional<ml::RegressionMetrics> holdout;
  /// Fault-timeline rows before the listing is elided to a count.
  std::size_t max_fault_lines = 80;
};

/// Writes the markdown report. `events` is a merged flight log (typically
/// flightlog::recorder().merged() or a parsed JSONL file); it may be empty,
/// in which case the event-derived sections degrade to "(no events)".
void write_health_report(std::ostream& out, const mission::CampaignResult& result,
                         std::span<const flightlog::Event> events,
                         const obs::MetricsSnapshot& metrics,
                         const HealthReportOptions& options = {});

/// Same, to a file. Returns false (and logs a warning) on I/O failure.
[[nodiscard]] bool export_health_report_file(const std::string& path,
                                             const mission::CampaignResult& result,
                                             std::span<const flightlog::Event> events,
                                             const obs::MetricsSnapshot& metrics,
                                             const HealthReportOptions& options = {});

}  // namespace remgen::core
