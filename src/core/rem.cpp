#include "core/rem.hpp"

#include <ostream>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/fmt.hpp"

namespace remgen::core {

RadioEnvironmentMap::RadioEnvironmentMap(geom::GridGeometry geometry,
                                         std::vector<radio::MacAddress> macs)
    : geometry_(std::move(geometry)), macs_(std::move(macs)) {
  REMGEN_EXPECTS(!macs_.empty());
  for (const radio::MacAddress& mac : macs_) {
    fields_.emplace(mac, geom::VoxelField<RemCell>(geometry_));
  }
}

const geom::VoxelField<RemCell>& RadioEnvironmentMap::field_of(
    const radio::MacAddress& mac) const {
  const auto it = fields_.find(mac);
  REMGEN_EXPECTS(it != fields_.end());
  return it->second;
}

void RadioEnvironmentMap::set_cell(const radio::MacAddress& mac, const geom::VoxelIndex& voxel,
                                   RemCell cell) {
  const auto it = fields_.find(mac);
  REMGEN_EXPECTS(it != fields_.end());
  it->second.at(voxel) = cell;
}

geom::VoxelField<RemCell>& RadioEnvironmentMap::field(const radio::MacAddress& mac) {
  const auto it = fields_.find(mac);
  REMGEN_EXPECTS(it != fields_.end());
  return it->second;
}

RemCell RadioEnvironmentMap::cell(const radio::MacAddress& mac,
                                  const geom::VoxelIndex& voxel) const {
  return field_of(mac).at(voxel);
}

std::optional<RemCell> RadioEnvironmentMap::query(const radio::MacAddress& mac,
                                                  const geom::Vec3& point) const {
  const auto it = fields_.find(mac);
  if (it == fields_.end()) return std::nullopt;
  return it->second.at_point(point);
}

std::optional<RadioEnvironmentMap::BestAp> RadioEnvironmentMap::best_ap(
    const geom::Vec3& point) const {
  std::optional<BestAp> best;
  for (const radio::MacAddress& mac : macs_) {
    const RemCell c = fields_.at(mac).at_point(point);
    if (!best || c.rss_dbm > best->cell.rss_dbm) best = BestAp{mac, c};
  }
  return best;
}

double RadioEnvironmentMap::coverage_fraction(double threshold_dbm) const {
  std::size_t covered = 0;
  const std::size_t total = geometry_.voxel_count();
  for (std::size_t iz = 0; iz < geometry_.nz(); ++iz) {
    for (std::size_t iy = 0; iy < geometry_.ny(); ++iy) {
      for (std::size_t ix = 0; ix < geometry_.nx(); ++ix) {
        const geom::VoxelIndex v{ix, iy, iz};
        for (const radio::MacAddress& mac : macs_) {
          if (fields_.at(mac).at(v).rss_dbm >= threshold_dbm) {
            ++covered;
            break;
          }
        }
      }
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(covered) / static_cast<double>(total);
}

std::vector<geom::VoxelIndex> RadioEnvironmentMap::dark_voxels(double threshold_dbm) const {
  std::vector<geom::VoxelIndex> out;
  for (std::size_t iz = 0; iz < geometry_.nz(); ++iz) {
    for (std::size_t iy = 0; iy < geometry_.ny(); ++iy) {
      for (std::size_t ix = 0; ix < geometry_.nx(); ++ix) {
        const geom::VoxelIndex v{ix, iy, iz};
        bool covered = false;
        for (const radio::MacAddress& mac : macs_) {
          if (fields_.at(mac).at(v).rss_dbm >= threshold_dbm) {
            covered = true;
            break;
          }
        }
        if (!covered) out.push_back(v);
      }
    }
  }
  return out;
}

void RadioEnvironmentMap::write_csv(std::ostream& out) const {
  util::CsvWriter writer(out);
  writer.write_row({"mac", "ix", "iy", "iz", "x", "y", "z", "rss_dbm", "sigma_db"});
  for (const radio::MacAddress& mac : macs_) {
    const auto& field = fields_.at(mac);
    for (std::size_t iz = 0; iz < geometry_.nz(); ++iz) {
      for (std::size_t iy = 0; iy < geometry_.ny(); ++iy) {
        for (std::size_t ix = 0; ix < geometry_.nx(); ++ix) {
          const geom::VoxelIndex v{ix, iy, iz};
          const geom::Vec3 c = geometry_.voxel_center(v);
          const RemCell cell = field.at(v);
          writer.write_row({mac.to_string(), util::format("{}", ix), util::format("{}", iy),
                            util::format("{}", iz), util::format("{:.3f}", c.x),
                            util::format("{:.3f}", c.y), util::format("{:.3f}", c.z),
                            util::format("{:.2f}", cell.rss_dbm),
                            util::format("{:.2f}", cell.sigma_db)});
        }
      }
    }
  }
}

}  // namespace remgen::core
