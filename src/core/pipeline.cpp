#include "core/pipeline.hpp"

#include "flightlog/flightlog.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

namespace remgen::core {

PipelineResult run_pipeline(const radio::Scenario& scenario, const PipelineConfig& config,
                            util::Rng& rng) {
  obs::Span pipeline_span("pipeline");
  PipelineResult result;
  {
    REMGEN_SPAN("pipeline.campaign");
    result.campaign = mission::run_campaign(scenario, config.campaign, rng);
  }
  REMGEN_EXPECTS(!result.campaign.dataset.empty());
  REMGEN_FLIGHTLOG_CAMPAIGN(
      flightlog::EventKind::PipelineStage,
      flightlog::CampaignEvent{0, result.campaign.dataset.size(), 0, 0, "campaign"});

  {
    REMGEN_SPAN("pipeline.preprocess");
    result.preprocessed = result.campaign.dataset.filter_min_samples_per_mac(
        config.min_samples_per_mac, &result.dropped_samples);
  }
  REMGEN_EXPECTS(!result.preprocessed.empty());
  REMGEN_COUNTER_ADD("pipeline.dropped_samples", result.dropped_samples);
  REMGEN_COUNTER_ADD("pipeline.preprocessed_samples", result.preprocessed.size());
  REMGEN_FLIGHTLOG_CAMPAIGN(
      flightlog::EventKind::PipelineStage,
      flightlog::CampaignEvent{0, result.preprocessed.size(), 0, 0, "preprocess"});

  // Held-out evaluation of the configured model.
  util::Rng split_rng = rng.fork("train-test-split");
  const data::DatasetSplit split = result.preprocessed.split(config.train_fraction, split_rng);
  const std::unique_ptr<ml::Estimator> estimator = ml::make_model(config.model);
  {
    REMGEN_SPAN("pipeline.train");
    estimator->fit(split.train);
  }
  {
    REMGEN_SPAN("pipeline.eval");
    result.holdout = ml::evaluate(*estimator, split.test);
  }
  REMGEN_GAUGE_SET("pipeline.holdout_rmse_dbm", result.holdout.rmse);
  REMGEN_GAUGE_SET("pipeline.holdout_mae_dbm", result.holdout.mae);
  util::logf(util::LogLevel::Info, "pipeline", "{}: holdout RMSE {:.3f} dBm",
             estimator->name(), result.holdout.rmse);
  REMGEN_FLIGHTLOG_CAMPAIGN(
      flightlog::EventKind::PipelineStage,
      flightlog::CampaignEvent{0, split.test.size(), 0, 0, "evaluate"});

  // The deliverable REM is built on all preprocessed data.
  {
    REMGEN_SPAN("pipeline.rem_build");
    RemBuilderConfig rem_config = config.rem;
    rem_config.min_samples_per_mac = config.min_samples_per_mac;
    result.rem =
        build_rem(result.preprocessed, config.model, scenario.scan_volume(), rem_config);
  }
  REMGEN_COUNTER_ADD("pipeline.runs", 1);
  REMGEN_FLIGHTLOG_CAMPAIGN(flightlog::EventKind::PipelineStage,
                            flightlog::CampaignEvent{0, 0, 0, 0, "rem_build"});
  return result;
}

}  // namespace remgen::core
