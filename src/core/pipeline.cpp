#include "core/pipeline.hpp"

#include "util/contracts.hpp"
#include "util/log.hpp"

namespace remgen::core {

PipelineResult run_pipeline(const radio::Scenario& scenario, const PipelineConfig& config,
                            util::Rng& rng) {
  PipelineResult result;
  result.campaign = mission::run_campaign(scenario, config.campaign, rng);
  REMGEN_EXPECTS(!result.campaign.dataset.empty());

  result.preprocessed = result.campaign.dataset.filter_min_samples_per_mac(
      config.min_samples_per_mac, &result.dropped_samples);
  REMGEN_EXPECTS(!result.preprocessed.empty());

  // Held-out evaluation of the configured model.
  util::Rng split_rng = rng.fork("train-test-split");
  const data::DatasetSplit split = result.preprocessed.split(config.train_fraction, split_rng);
  const std::unique_ptr<ml::Estimator> estimator = ml::make_model(config.model);
  estimator->fit(split.train);
  result.holdout = ml::evaluate(*estimator, split.test);
  util::logf(util::LogLevel::Info, "pipeline", "{}: holdout RMSE {:.3f} dBm",
             estimator->name(), result.holdout.rmse);

  // The deliverable REM is built on all preprocessed data.
  RemBuilderConfig rem_config = config.rem;
  rem_config.min_samples_per_mac = config.min_samples_per_mac;
  result.rem = build_rem(result.preprocessed, config.model, scenario.scan_volume(), rem_config);
  return result;
}

}  // namespace remgen::core
