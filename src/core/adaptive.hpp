// Uncertainty-driven adaptive REM sampling.
//
// The paper samples a fixed, evenly spread waypoint grid and names "deriving
// the fundamental limitations on the density of 3D REMs" as future work. This
// extension spends the same flight budget smarter: after an initial coarse
// grid, each subsequent (sequential-fleet) flight visits the locations where
// the current REM is most uncertain — the kriging posterior standard
// deviation — so measurements go where the map needs them.
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "mission/base_station.hpp"
#include "radio/scenario.hpp"
#include "util/rng.hpp"

namespace remgen::core {

/// Adaptive campaign parameters.
struct AdaptiveSamplingConfig {
  std::size_t initial_nx = 3;          ///< Coarse bootstrap grid.
  std::size_t initial_ny = 2;
  std::size_t initial_nz = 2;
  std::size_t rounds = 3;              ///< Refinement flights after bootstrap.
  std::size_t waypoints_per_round = 6; ///< Locations per refinement flight.
  double min_separation_m = 0.45;      ///< Spacing between picked locations.
  double candidate_voxel_m = 0.35;     ///< Resolution of the uncertainty scan.
  std::size_t min_samples_per_mac = 8; ///< Kriging fit threshold.
  mission::MissionConfig mission{.adaptive_leg_timing = true};
  uav::CrazyflieConfig uav;
};

/// Outcome of an adaptive campaign.
struct AdaptiveSamplingResult {
  data::Dataset dataset;
  std::vector<geom::Vec3> visited;            ///< All waypoints, flight order.
  std::vector<std::size_t> waypoints_per_flight;
  double final_mean_sigma_db = 0.0;           ///< Mean kriging sigma at the end.
};

/// Runs bootstrap + `rounds` uncertainty-driven refinement flights (each on a
/// fresh UAV, as in the paper's sequential fleet).
[[nodiscard]] AdaptiveSamplingResult run_adaptive_campaign(const radio::Scenario& scenario,
                                                           const AdaptiveSamplingConfig& config,
                                                           util::Rng& rng);

/// Scores candidate locations by mean kriging sigma over the fitted
/// transmitters and greedily picks `count` well-separated maxima. Exposed for
/// tests. `dataset` must be non-empty.
[[nodiscard]] std::vector<geom::Vec3> pick_uncertain_locations(
    const data::Dataset& dataset, const geom::Aabb& volume, std::size_t count,
    double min_separation_m, double candidate_voxel_m, std::size_t min_samples_per_mac);

}  // namespace remgen::core
