#include "core/health_report.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <tuple>
#include <variant>
#include <vector>

#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::core {

namespace {

using PositionKey = std::tuple<double, double, double>;

PositionKey key_of(const geom::Vec3& p) { return {p.x, p.y, p.z}; }

/// Scan history for one grid position, reconstructed from every UAV's events
/// (rescue missions index the same position under their own waypoint list, so
/// the join has to go through the per-UAV assignments).
struct WaypointHistory {
  std::size_t visits = 0;      ///< WaypointArrive events.
  std::size_t attempts = 0;    ///< ScanAttempt events.
  std::size_t retries = 0;     ///< ScanRetry events.
  std::size_t backoffs = 0;    ///< ScanBackoff events.
  std::size_t watchdogs = 0;   ///< ScanWatchdog events.
  std::size_t accepted = 0;    ///< ScanresAccepted events.
};

std::uint64_t counter_or_zero(const obs::MetricsSnapshot& metrics, const std::string& name) {
  const auto it = metrics.counters.find(name);
  return it == metrics.counters.end() ? 0 : it->second;
}

const geom::Vec3* event_position(const mission::CampaignResult& result, std::int32_t uav,
                                 std::int32_t waypoint) {
  if (uav < 0 || waypoint < 0) return nullptr;
  const auto u = static_cast<std::size_t>(uav);
  const auto w = static_cast<std::size_t>(waypoint);
  if (u >= result.assignments.size() || w >= result.assignments[u].size()) return nullptr;
  return &result.assignments[u][w];
}

std::map<PositionKey, WaypointHistory> build_history(const mission::CampaignResult& result,
                                                     std::span<const flightlog::Event> events) {
  std::map<PositionKey, WaypointHistory> history;
  for (const flightlog::Event& event : events) {
    std::int32_t waypoint = -1;
    if (const auto* scan = std::get_if<flightlog::ScanEvent>(&event.payload)) {
      waypoint = scan->waypoint;
    } else if (const auto* sample = std::get_if<flightlog::SampleEvent>(&event.payload)) {
      waypoint = sample->waypoint;
    } else if (const auto* wp = std::get_if<flightlog::WaypointEvent>(&event.payload)) {
      waypoint = wp->index;
    }
    const geom::Vec3* position = event_position(result, event.uav, waypoint);
    if (position == nullptr) continue;
    WaypointHistory& h = history[key_of(*position)];
    switch (event.kind) {
      case flightlog::EventKind::WaypointArrive: ++h.visits; break;
      case flightlog::EventKind::ScanAttempt: ++h.attempts; break;
      case flightlog::EventKind::ScanRetry: ++h.retries; break;
      case flightlog::EventKind::ScanBackoff: ++h.backoffs; break;
      case flightlog::EventKind::ScanWatchdog: ++h.watchdogs; break;
      case flightlog::EventKind::ScanresAccepted: ++h.accepted; break;
      default: break;
    }
  }
  return history;
}

}  // namespace

void write_health_report(std::ostream& out, const mission::CampaignResult& result,
                         std::span<const flightlog::Event> events,
                         const obs::MetricsSnapshot& metrics,
                         const HealthReportOptions& options) {
  // --- Overview -----------------------------------------------------------
  std::size_t covered = 0;
  std::size_t rescued = 0;
  for (const mission::WaypointCoverage& c : result.coverage) {
    if (c.covered) ++covered;
    if (c.rescued) ++rescued;
  }
  std::size_t battery_aborts = 0;
  for (const mission::UavMissionStats& s : result.uav_stats) {
    if (s.aborted_on_battery) ++battery_aborts;
  }

  out << "# Campaign health report\n\n";
  out << "## Overview\n\n";
  out << util::format("- Missions flown: {} ({} aborted on battery)\n", result.uav_stats.size(),
                      battery_aborts);
  out << util::format("- Waypoints: {}/{} covered ({} by rescue rounds)\n", covered,
                      result.coverage.size(), rescued);
  out << util::format("- Samples collected: {}\n", result.dataset.size());
  out << util::format("- Flight-recorder events: {}\n", events.size());

  // --- Per-waypoint coverage + scan history --------------------------------
  const std::map<PositionKey, WaypointHistory> history = build_history(result, events);
  out << "\n## Per-waypoint coverage\n\n";
  if (result.coverage.empty()) {
    out << "(no waypoints)\n";
  } else {
    out << "| uav | wp | position | covered | rescued | samples | attempts | retries | "
           "backoffs | watchdogs |\n";
    out << "|---|---|---|---|---|---|---|---|---|---|\n";
    for (const mission::WaypointCoverage& c : result.coverage) {
      WaypointHistory h;
      if (const auto it = history.find(key_of(c.position)); it != history.end()) {
        h = it->second;
      }
      out << util::format("| {} | {} | ({:.2f}, {:.2f}, {:.2f}) | {} | {} | {} | {} | {} | {} | "
                          "{} |\n",
                          c.uav, c.waypoint_index, c.position.x, c.position.y, c.position.z,
                          c.covered ? "yes" : "NO", c.rescued ? "yes" : "-", c.samples,
                          c.attempts, h.retries, h.backoffs, h.watchdogs);
    }
  }

  // --- Fault timeline -------------------------------------------------------
  out << "\n## Fault-injection timeline\n\n";
  std::map<std::string, std::size_t> fault_tally;
  std::size_t fault_count = 0;
  std::size_t listed = 0;
  std::string listing;
  for (const flightlog::Event& event : events) {
    if (event.kind != flightlog::EventKind::FaultInjected) continue;
    const auto& fault = std::get<flightlog::FaultEvent>(event.payload);
    ++fault_count;
    ++fault_tally[fault.subsystem + "/" + fault.detail];
    if (listed < options.max_fault_lines) {
      listing += util::format("- t={:.2f}s uav {}: {} {}\n", event.t_s, event.uav,
                              fault.subsystem, fault.detail);
      ++listed;
    }
  }
  if (fault_count == 0) {
    out << "(no fault injections recorded)\n";
  } else {
    for (const auto& [name, count] : fault_tally) {
      out << util::format("- {}: {}\n", name, count);
    }
    out << util::format("\n{} events{}:\n\n", fault_count,
                        fault_count > listed
                            ? util::format(" (first {} listed)", listed)
                            : std::string{});
    out << listing;
  }

  // --- Link & scan health ---------------------------------------------------
  out << "\n## Link & scan health\n\n";
  out << util::format("- CRTP on-air drops: {} (injected: {})\n",
                      counter_or_zero(metrics, "crtp.link_drops"),
                      counter_or_zero(metrics, "fault.crtp.injected_drops"));
  out << util::format("- CRTP TX-queue overflow drops: {}\n",
                      counter_or_zero(metrics, "crtp.tx_queue_drops"));
  out << util::format("- Radio windows: {} off / {} on\n",
                      counter_or_zero(metrics, "crtp.radio_off_events"),
                      counter_or_zero(metrics, "crtp.radio_on_events"));
  out << util::format("- Scan stalls: {}, spurious scan errors: {}\n",
                      counter_or_zero(metrics, "fault.scan.stalls"),
                      counter_or_zero(metrics, "fault.scan.spurious_errors"));
  out << util::format("- Scan retries: {}, watchdog waits: {}, malformed scanres: {}\n",
                      counter_or_zero(metrics, "mission.scan_retries"),
                      counter_or_zero(metrics, "mission.scan_watchdog_waits"),
                      counter_or_zero(metrics, "mission.malformed_scanres"));
  out << util::format("- UWB injected dropouts: {}, NLOS biases: {}, dead-anchor skips: {}\n",
                      counter_or_zero(metrics, "fault.uwb.injected_dropouts"),
                      counter_or_zero(metrics, "fault.uwb.nlos_biases"),
                      counter_or_zero(metrics, "fault.uwb.dead_anchor_skips"));

  // --- Per-MAC sample counts vs the preprocessing gate ----------------------
  out << util::format("\n## Per-MAC sample counts (gate: >={} samples)\n\n",
                      options.min_samples_per_mac);
  const auto per_mac = result.dataset.samples_per_mac();
  if (per_mac.empty()) {
    out << "(no samples)\n";
  } else {
    std::size_t passing = 0;
    out << "| mac | samples | gate |\n|---|---|---|\n";
    for (const auto& [mac, count] : per_mac) {
      const bool pass = count >= options.min_samples_per_mac;
      if (pass) ++passing;
      out << util::format("| {} | {} | {} |\n", mac.to_string(), count,
                          pass ? "pass" : "DROP");
    }
    out << util::format("\n{}/{} MACs pass the gate.\n", passing, per_mac.size());
  }

  // --- REM model error ------------------------------------------------------
  out << "\n## REM model error\n\n";
  if (options.holdout) {
    out << util::format("- Model: {}\n", options.model_name.empty() ? "?" : options.model_name);
    out << util::format("- Holdout RMSE: {:.3f} dBm\n", options.holdout->rmse);
    out << util::format("- Holdout MAE: {:.3f} dBm\n", options.holdout->mae);
    out << util::format("- Holdout R^2: {:.3f}\n", options.holdout->r2);
  } else {
    out << "(not evaluated — run with --report-out on a campaign large enough to split)\n";
  }
}

bool export_health_report_file(const std::string& path, const mission::CampaignResult& result,
                               std::span<const flightlog::Event> events,
                               const obs::MetricsSnapshot& metrics,
                               const HealthReportOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    util::logf(util::LogLevel::Warn, "flightlog", "cannot open {} for health report", path);
    return false;
  }
  write_health_report(out, result, events, metrics, options);
  out.flush();
  if (!out) {
    util::logf(util::LogLevel::Warn, "flightlog", "short write exporting health report to {}",
               path);
    return false;
  }
  return true;
}

}  // namespace remgen::core
