// REM builder: trains an estimator on a sample dataset and rasterises its
// predictions onto a voxel grid over the scan volume.
#pragma once

#include <memory>

#include "core/rem.hpp"
#include "data/dataset.hpp"
#include "ml/estimator.hpp"
#include "ml/model_zoo.hpp"

namespace remgen::core {

/// Builder parameters.
struct RemBuilderConfig {
  double voxel_m = 0.25;            ///< Raster resolution.
  std::size_t min_samples_per_mac = 16;  ///< The paper's preprocessing rule.
};

/// Builds a REM from a dataset with the given (unfitted) estimator. The
/// estimator is fitted on the preprocessed dataset inside this call. Kriging
/// estimators additionally populate per-cell uncertainty.
[[nodiscard]] RadioEnvironmentMap build_rem(const data::Dataset& dataset,
                                            ml::Estimator& estimator, const geom::Aabb& volume,
                                            const RemBuilderConfig& config = {});

/// Convenience: builds with a model-zoo kind.
[[nodiscard]] RadioEnvironmentMap build_rem(const data::Dataset& dataset, ml::ModelKind kind,
                                            const geom::Aabb& volume,
                                            const RemBuilderConfig& config = {});

}  // namespace remgen::core
