// REM staleness detection.
//
// The paper's introduction motivates periodic REM regeneration: "the REMs can
// become obsolete due to long-term changes in the signal propagation". This
// module closes that loop: given a (small) set of freshly collected probe
// samples, it compares them against the REM's predictions and reports, per
// transmitter, whether the map still describes reality — so a fleet operator
// can re-fly only when (and, per MAC, where) it is actually needed.
#pragma once

#include <span>
#include <vector>

#include "core/rem.hpp"
#include "data/sample.hpp"

namespace remgen::core {

/// Detection thresholds.
struct DriftConfig {
  double mean_residual_threshold_db = 6.0;  ///< |mean(new - predicted)| above
                                            ///< this flags a drifted MAC
                                            ///< (power change / vanishing).
  double rms_residual_threshold_db = 11.0;   ///< RMS above this flags a drifted
                                            ///< MAC even with small mean — the
                                            ///< signature of a *relocated*
                                            ///< transmitter, whose residuals
                                            ///< change sign across the room.
  std::size_t min_samples_per_mac = 5;      ///< Below this a MAC is not judged.
  double stale_fraction = 0.25;             ///< REM is stale when this fraction
                                            ///< of judged MACs drifted.
  double vanished_predicted_dbm = -78.0;    ///< A mapped MAC whose predicted
                                            ///< RSS at the probed locations is
                                            ///< above this but which produced
                                            ///< zero probe samples is reported
                                            ///< as vanished.
};

/// Per-transmitter drift verdict.
struct MacDrift {
  radio::MacAddress mac;
  std::size_t samples = 0;
  double mean_residual_db = 0.0;  ///< mean(observed - predicted); signed.
  double rms_residual_db = 0.0;
  bool drifted = false;
};

/// Whole-map verdict.
struct DriftReport {
  std::vector<MacDrift> per_mac;   ///< Judged MACs, worst first.
  std::size_t judged_macs = 0;
  std::size_t drifted_macs = 0;
  std::size_t unknown_macs = 0;    ///< Probe MACs the REM has never seen
                                   ///< (new transmitters in the environment).
  std::vector<radio::MacAddress> vanished;  ///< Mapped MACs the REM expects to
                                            ///< hear at the probed locations
                                            ///< but which produced no samples.
  double overall_rms_db = 0.0;     ///< RMS residual over all judged samples.
  bool rem_stale = false;
};

/// Compares probe samples against the REM and returns the drift report.
/// Probe samples whose MAC the REM does not map count toward unknown_macs.
[[nodiscard]] DriftReport detect_drift(const RadioEnvironmentMap& rem,
                                       std::span<const data::Sample> probe,
                                       const DriftConfig& config = {});

}  // namespace remgen::core
