// The Radio Environmental Map: the system's primary output.
//
// A REM is a per-transmitter raster of predicted signal quality (here: RSS in
// dBm, with optional prediction uncertainty) over a 3D voxel grid, built from
// the location-annotated samples the UAV fleet collected and a fitted
// regression model. It answers the queries the paper motivates: signal
// quality at unvisited locations, strongest-AP maps, and "dark" region
// detection for network planning.
#pragma once

#include <iosfwd>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geom/grid3.hpp"
#include "radio/mac_address.hpp"

namespace remgen::core {

/// One voxel's predicted signal for one transmitter.
struct RemCell {
  double rss_dbm = -120.0;
  double sigma_db = 0.0;  ///< Prediction uncertainty (0 when unavailable).
};

/// Per-MAC rasterised REM over a common grid.
class RadioEnvironmentMap {
 public:
  /// An empty map over the given grid for the given transmitters.
  RadioEnvironmentMap(geom::GridGeometry geometry, std::vector<radio::MacAddress> macs);

  [[nodiscard]] const geom::GridGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] const std::vector<radio::MacAddress>& macs() const noexcept { return macs_; }

  /// Writes one cell. `mac` must be one of macs().
  void set_cell(const radio::MacAddress& mac, const geom::VoxelIndex& voxel, RemCell cell);

  /// Mutable raster for one MAC — the builder's bulk-write path (one hash
  /// lookup per MAC instead of one per voxel). `mac` must be one of macs().
  [[nodiscard]] geom::VoxelField<RemCell>& field(const radio::MacAddress& mac);

  /// Reads one cell. `mac` must be one of macs().
  [[nodiscard]] RemCell cell(const radio::MacAddress& mac, const geom::VoxelIndex& voxel) const;

  /// Predicted RSS for `mac` at a world point (containing-voxel lookup);
  /// nullopt if the MAC is not mapped.
  [[nodiscard]] std::optional<RemCell> query(const radio::MacAddress& mac,
                                             const geom::Vec3& point) const;

  /// The strongest transmitter and its predicted RSS at a world point.
  struct BestAp {
    radio::MacAddress mac;
    RemCell cell;
  };
  [[nodiscard]] std::optional<BestAp> best_ap(const geom::Vec3& point) const;

  /// Fraction of voxels whose best predicted RSS is at least `threshold_dbm`.
  [[nodiscard]] double coverage_fraction(double threshold_dbm) const;

  /// Voxel indices whose best predicted RSS is below `threshold_dbm` —
  /// the "dark" connectivity regions of the environment.
  [[nodiscard]] std::vector<geom::VoxelIndex> dark_voxels(double threshold_dbm) const;

  /// Writes the full raster as CSV (mac,ix,iy,iz,x,y,z,rss_dbm,sigma_db).
  void write_csv(std::ostream& out) const;

 private:
  [[nodiscard]] const geom::VoxelField<RemCell>& field_of(const radio::MacAddress& mac) const;

  geom::GridGeometry geometry_;
  std::vector<radio::MacAddress> macs_;
  std::unordered_map<radio::MacAddress, geom::VoxelField<RemCell>> fields_;
};

}  // namespace remgen::core
