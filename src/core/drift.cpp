#include "core/drift.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/contracts.hpp"

namespace remgen::core {

DriftReport detect_drift(const RadioEnvironmentMap& rem, std::span<const data::Sample> probe,
                         const DriftConfig& config) {
  REMGEN_EXPECTS(config.min_samples_per_mac > 0);

  struct Accumulator {
    std::size_t n = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
  };
  std::map<radio::MacAddress, Accumulator> residuals;
  std::set<radio::MacAddress> unknown;

  for (const data::Sample& s : probe) {
    const auto cell = rem.query(s.mac, s.position);
    if (!cell) {
      unknown.insert(s.mac);
      continue;
    }
    Accumulator& acc = residuals[s.mac];
    const double r = s.rss_dbm - cell->rss_dbm;
    ++acc.n;
    acc.sum += r;
    acc.sum_sq += r * r;
  }

  DriftReport report;
  report.unknown_macs = unknown.size();
  double total_sq = 0.0;
  std::size_t total_n = 0;
  for (const auto& [mac, acc] : residuals) {
    if (acc.n < config.min_samples_per_mac) continue;
    MacDrift d;
    d.mac = mac;
    d.samples = acc.n;
    d.mean_residual_db = acc.sum / static_cast<double>(acc.n);
    d.rms_residual_db = std::sqrt(acc.sum_sq / static_cast<double>(acc.n));
    d.drifted = std::abs(d.mean_residual_db) > config.mean_residual_threshold_db ||
                d.rms_residual_db > config.rms_residual_threshold_db;
    report.per_mac.push_back(d);
    total_sq += acc.sum_sq;
    total_n += acc.n;
  }
  std::sort(report.per_mac.begin(), report.per_mac.end(),
            [](const MacDrift& a, const MacDrift& b) {
              return std::max(std::abs(a.mean_residual_db), a.rms_residual_db) >
                     std::max(std::abs(b.mean_residual_db), b.rms_residual_db);
            });

  // Vanished transmitters: mapped, loudly predicted at the probed locations,
  // yet completely absent from the probe.
  std::vector<geom::Vec3> probed_positions;
  {
    std::set<std::pair<int, int>> seen_scans;
    for (const data::Sample& s : probe) {
      if (seen_scans.insert({s.uav_id, s.waypoint_index}).second) {
        probed_positions.push_back(s.position);
      }
    }
  }
  for (const radio::MacAddress& mac : rem.macs()) {
    if (residuals.count(mac) || probed_positions.empty()) continue;
    double best_predicted = -1e9;
    for (const geom::Vec3& p : probed_positions) {
      if (const auto cell = rem.query(mac, p)) {
        best_predicted = std::max(best_predicted, cell->rss_dbm);
      }
    }
    if (best_predicted > config.vanished_predicted_dbm) report.vanished.push_back(mac);
  }

  report.judged_macs = report.per_mac.size();
  for (const MacDrift& d : report.per_mac) {
    if (d.drifted) ++report.drifted_macs;
  }
  report.overall_rms_db =
      total_n > 0 ? std::sqrt(total_sq / static_cast<double>(total_n)) : 0.0;
  report.rem_stale =
      report.judged_macs > 0 &&
      static_cast<double>(report.drifted_macs) >=
          config.stale_fraction * static_cast<double>(report.judged_macs);
  return report;
}

}  // namespace remgen::core
