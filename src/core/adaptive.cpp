#include "core/adaptive.hpp"

#include <algorithm>

#include "geom/grid3.hpp"
#include "mission/planner.hpp"
#include "mission/waypoint.hpp"
#include "ml/kriging.hpp"
#include "util/contracts.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "uwb/anchor.hpp"
#include "uwb/lps.hpp"

namespace remgen::core {

std::vector<geom::Vec3> pick_uncertain_locations(const data::Dataset& dataset,
                                                 const geom::Aabb& volume, std::size_t count,
                                                 double min_separation_m,
                                                 double candidate_voxel_m,
                                                 std::size_t min_samples_per_mac) {
  REMGEN_EXPECTS(!dataset.empty());
  REMGEN_EXPECTS(count > 0);

  const data::Dataset prepared = dataset.filter_min_samples_per_mac(min_samples_per_mac);
  if (prepared.empty()) return {};

  ml::KrigingRegressor kriging;
  kriging.fit(prepared.samples());

  // Representative query sample per MAC (channel matters only for encoders).
  std::vector<data::Sample> queries;
  for (const radio::MacAddress& mac : prepared.distinct_macs()) {
    data::Sample q;
    q.mac = mac;
    queries.push_back(q);
  }

  // Mean kriging sigma per candidate voxel, with a margin inside the volume.
  const geom::Aabb inset(volume.min + geom::Vec3{0.25, 0.25, 0.25},
                         volume.max - geom::Vec3{0.25, 0.25, 0.25});
  const geom::GridGeometry grid =
      geom::GridGeometry::with_resolution(inset, candidate_voxel_m);
  std::vector<std::pair<double, geom::Vec3>> scored;
  scored.reserve(grid.voxel_count());
  for (std::size_t iz = 0; iz < grid.nz(); ++iz) {
    for (std::size_t iy = 0; iy < grid.ny(); ++iy) {
      for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
        const geom::Vec3 p = grid.voxel_center({ix, iy, iz});
        double sigma_sum = 0.0;
        for (data::Sample& q : queries) {
          q.position = p;
          sigma_sum += kriging.predict_with_sigma(q).sigma;
        }
        scored.emplace_back(sigma_sum / static_cast<double>(queries.size()), p);
      }
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  // Greedy pick with minimum separation.
  std::vector<geom::Vec3> picked;
  for (const auto& [sigma, p] : scored) {
    if (picked.size() >= count) break;
    bool ok = true;
    for (const geom::Vec3& q : picked) {
      if (p.distance_to(q) < min_separation_m) {
        ok = false;
        break;
      }
    }
    if (ok) picked.push_back(p);
  }
  return picked;
}

namespace {

using namespace mission;

/// Flies one fresh UAV over `waypoints`, appending samples to `dataset`.
void fly_round(const radio::Scenario& scenario, const AdaptiveSamplingConfig& config,
               const std::vector<geom::Vec3>& waypoints, int uav_id, util::Rng& rng,
               data::Dataset& dataset) {
  geom::Vec3 start = waypoints.front();
  start.z = 0.0;
  util::Rng uav_rng = rng.fork(util::format("adaptive-uav-{}", uav_id));
  auto positioning = std::make_unique<uwb::LocoPositioningSystem>(
      uwb::corner_anchors(scenario.scan_volume()), &scenario.floorplan(), config.uav.lps,
      uav_rng.fork("lps"));
  uav::Crazyflie uav(uav_id, scenario.environment(), std::move(positioning), config.uav, start,
                     uav_rng);
  for (int i = 0; i < 100; ++i) uav.step(config.mission.tick_s);
  BaseStation station(config.mission);
  const UavMissionStats stats = station.run_mission(uav, waypoints, dataset);
  util::logf(util::LogLevel::Info, "adaptive", "flight {}: {} waypoints, {} samples", uav_id,
             stats.waypoints_commanded, stats.samples_collected);
}

}  // namespace

AdaptiveSamplingResult run_adaptive_campaign(const radio::Scenario& scenario,
                                             const AdaptiveSamplingConfig& config,
                                             util::Rng& rng) {
  REMGEN_EXPECTS(config.rounds > 0);
  REMGEN_EXPECTS(config.waypoints_per_round > 0);
  AdaptiveSamplingResult result;

  // Bootstrap: coarse even grid, as a regular (single-UAV) flight.
  WaypointGridConfig bootstrap;
  bootstrap.nx = config.initial_nx;
  bootstrap.ny = config.initial_ny;
  bootstrap.nz = config.initial_nz;
  bootstrap.margin_m = 0.3;
  std::vector<geom::Vec3> waypoints =
      generate_waypoint_grid(scenario.scan_volume(), bootstrap);
  fly_round(scenario, config, waypoints, 0, rng, result.dataset);
  result.visited = waypoints;
  result.waypoints_per_flight.push_back(waypoints.size());

  // Refinement flights: go where the kriging posterior is widest.
  for (std::size_t round = 1; round <= config.rounds; ++round) {
    if (result.dataset.empty()) break;
    std::vector<geom::Vec3> next = pick_uncertain_locations(
        result.dataset, scenario.scan_volume(), config.waypoints_per_round,
        config.min_separation_m, config.candidate_voxel_m, config.min_samples_per_mac);
    if (next.empty()) break;
    geom::Vec3 start = next.front();
    start.z = config.mission.takeoff_height_m;
    next = plan_route(next, start);
    fly_round(scenario, config, next, static_cast<int>(round), rng, result.dataset);
    result.visited.insert(result.visited.end(), next.begin(), next.end());
    result.waypoints_per_flight.push_back(next.size());
  }

  // Final uncertainty level (for reporting).
  const data::Dataset prepared =
      result.dataset.filter_min_samples_per_mac(config.min_samples_per_mac);
  if (!prepared.empty()) {
    ml::KrigingRegressor kriging;
    kriging.fit(prepared.samples());
    double sigma_sum = 0.0;
    std::size_t n = 0;
    const geom::GridGeometry grid =
        geom::GridGeometry::with_resolution(scenario.scan_volume(), 0.5);
    for (std::size_t iz = 0; iz < grid.nz(); ++iz) {
      for (std::size_t iy = 0; iy < grid.ny(); ++iy) {
        for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
          data::Sample q;
          q.mac = *prepared.distinct_macs().begin();
          q.position = grid.voxel_center({ix, iy, iz});
          sigma_sum += kriging.predict_with_sigma(q).sigma;
          ++n;
        }
      }
    }
    result.final_mean_sigma_db = n > 0 ? sigma_sum / static_cast<double>(n) : 0.0;
  }
  return result;
}

}  // namespace remgen::core
