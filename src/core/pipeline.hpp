// End-to-end pipeline facade: scenario -> UAV campaign -> preprocessing ->
// model training/evaluation -> REM. This is the one-call version of the
// paper's full toolchain.
#pragma once

#include <optional>

#include "core/rem.hpp"
#include "core/rem_builder.hpp"
#include "mission/campaign.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "radio/scenario.hpp"
#include "util/rng.hpp"

namespace remgen::core {

/// Full-pipeline configuration.
struct PipelineConfig {
  mission::CampaignConfig campaign;
  std::size_t min_samples_per_mac = 16;  ///< Preprocessing (paper: 16).
  double train_fraction = 0.75;          ///< The paper's 75/25 split.
  ml::ModelKind model = ml::ModelKind::KnnScaled16;  ///< Paper's best model.
  RemBuilderConfig rem;
};

/// Everything the pipeline produces.
struct PipelineResult {
  mission::CampaignResult campaign;
  data::Dataset preprocessed;          ///< After the min-samples-per-MAC rule.
  std::size_t dropped_samples = 0;
  ml::RegressionMetrics holdout;       ///< On the 25% test split.
  std::optional<RadioEnvironmentMap> rem;  ///< Built on the full dataset.
};

/// Runs campaign, preprocessing, model evaluation and REM construction.
[[nodiscard]] PipelineResult run_pipeline(const radio::Scenario& scenario,
                                          const PipelineConfig& config, util::Rng& rng);

}  // namespace remgen::core
