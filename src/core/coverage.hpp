// Coverage analysis and AP-placement planning on top of a REM — the
// applications the paper's introduction motivates ("planning the extensions
// of any wireless networking infrastructure by adding APs or base stations to
// cover 'dark' connectivity regions").
#pragma once

#include <vector>

#include "core/rem.hpp"
#include "geom/floorplan.hpp"

namespace remgen::core {

/// Summary of REM coverage at a threshold.
struct CoverageReport {
  double threshold_dbm = -80.0;
  double covered_fraction = 0.0;
  std::size_t dark_voxel_count = 0;
  std::vector<geom::VoxelIndex> dark_voxels;
};

/// Computes the coverage report of a REM at `threshold_dbm`.
[[nodiscard]] CoverageReport analyze_coverage(const RadioEnvironmentMap& rem,
                                              double threshold_dbm);

/// One evaluated AP placement candidate.
struct PlacementCandidate {
  geom::Vec3 position;
  double predicted_coverage_fraction = 0.0;  ///< Coverage if an AP were added here.
  std::size_t newly_covered_voxels = 0;
};

/// Parameters for placement evaluation.
struct PlacementConfig {
  double threshold_dbm = -80.0;
  double tx_power_dbm = 17.0;
  double pathloss_exponent = 2.0;
  double reference_loss_db = 40.2;
};

/// Evaluates candidate AP positions against the REM's dark voxels using a
/// multi-wall path-loss prediction for the hypothetical new AP, and returns
/// candidates ordered best-first.
[[nodiscard]] std::vector<PlacementCandidate> rank_ap_placements(
    const RadioEnvironmentMap& rem, const geom::Floorplan& floorplan,
    const std::vector<geom::Vec3>& candidates, const PlacementConfig& config = {});

}  // namespace remgen::core
