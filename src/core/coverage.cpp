#include "core/coverage.hpp"

#include <algorithm>

#include "radio/pathloss.hpp"

namespace remgen::core {

CoverageReport analyze_coverage(const RadioEnvironmentMap& rem, double threshold_dbm) {
  CoverageReport report;
  report.threshold_dbm = threshold_dbm;
  report.covered_fraction = rem.coverage_fraction(threshold_dbm);
  report.dark_voxels = rem.dark_voxels(threshold_dbm);
  report.dark_voxel_count = report.dark_voxels.size();
  return report;
}

std::vector<PlacementCandidate> rank_ap_placements(const RadioEnvironmentMap& rem,
                                                   const geom::Floorplan& floorplan,
                                                   const std::vector<geom::Vec3>& candidates,
                                                   const PlacementConfig& config) {
  const CoverageReport before = analyze_coverage(rem, config.threshold_dbm);
  const radio::MultiWallModel model(floorplan, config.pathloss_exponent,
                                    config.reference_loss_db);
  const geom::GridGeometry& g = rem.geometry();
  const std::size_t total = g.voxel_count();

  std::vector<PlacementCandidate> out;
  out.reserve(candidates.size());
  for (const geom::Vec3& c : candidates) {
    std::size_t newly = 0;
    for (const geom::VoxelIndex& v : before.dark_voxels) {
      const geom::Vec3 p = g.voxel_center(v);
      const double rss = config.tx_power_dbm - model.loss_db(c, p);
      if (rss >= config.threshold_dbm) ++newly;
    }
    PlacementCandidate cand;
    cand.position = c;
    cand.newly_covered_voxels = newly;
    const double covered_voxels =
        before.covered_fraction * static_cast<double>(total) + static_cast<double>(newly);
    cand.predicted_coverage_fraction = covered_voxels / static_cast<double>(total);
    out.push_back(cand);
  }
  std::sort(out.begin(), out.end(), [](const PlacementCandidate& a, const PlacementCandidate& b) {
    return a.newly_covered_voxels > b.newly_covered_voxels;
  });
  return out;
}

}  // namespace remgen::core
