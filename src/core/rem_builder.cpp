#include "core/rem_builder.hpp"

#include <algorithm>
#include <unordered_map>

#include "exec/parallel.hpp"
#include "ml/kriging.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/contracts.hpp"

namespace remgen::core {

RadioEnvironmentMap build_rem(const data::Dataset& dataset, ml::Estimator& estimator,
                              const geom::Aabb& volume, const RemBuilderConfig& config) {
  REMGEN_EXPECTS(!dataset.empty());
  obs::Span build_span("rem.build");
  REMGEN_PROFILE_PHASE("rem.build");
  const data::Dataset prepared =
      dataset.filter_min_samples_per_mac(config.min_samples_per_mac);
  REMGEN_EXPECTS(!prepared.empty());

  {
    REMGEN_PROFILE_PHASE("rem.fit");
    estimator.fit(prepared.samples());
  }

  // Representative channel per MAC (most frequent) so estimators with channel
  // features can be queried sensibly. Single hashed pass over the samples;
  // ties break toward the lowest channel, as the ordered-map scan used to.
  std::unordered_map<radio::MacAddress, std::unordered_map<int, std::size_t>> channel_counts;
  channel_counts.reserve(64);
  for (const data::Sample& s : prepared.samples()) ++channel_counts[s.mac][s.channel];
  std::unordered_map<radio::MacAddress, int> channel_of;
  channel_of.reserve(channel_counts.size());
  std::vector<radio::MacAddress> macs;
  macs.reserve(channel_counts.size());
  for (const auto& [mac, counts] : channel_counts) {
    int best_channel = 1;
    std::size_t best_count = 0;
    for (const auto& [channel, count] : counts) {
      if (count > best_count || (count == best_count && channel < best_channel)) {
        best_count = count;
        best_channel = channel;
      }
    }
    channel_of[mac] = best_channel;
    macs.push_back(mac);
  }
  std::sort(macs.begin(), macs.end());

  const auto* kriging = dynamic_cast<const ml::KrigingRegressor*>(&estimator);

  RadioEnvironmentMap rem(geom::GridGeometry::with_resolution(volume, config.voxel_m), macs);
  const geom::GridGeometry& g = rem.geometry();

  // One task per (mac, z-slab), issuing one predict_batch per y-row of nx
  // queries. Estimator::predict_batch is const and every task writes a
  // disjoint set of cells, so tasks are independent; the cell values do not
  // depend on evaluation order, so any schedule produces the same REM. The
  // chunk size is cost-derived instead of the old blanket chunk = 1: a z-slab
  // costs roughly nx*ny predicts, each on the order of a few microseconds.
  const std::size_t nz = g.nz();
  const std::size_t nx = g.nx();
  const std::size_t ny = g.ny();
  {
    REMGEN_PROFILE_PHASE("rem.voxel_sweep");
    const double est_slab_us = static_cast<double>(nx * ny) * 4.0;
    exec::parallel_for(
        macs.size() * nz,
        [&](std::size_t t) {
          const radio::MacAddress& mac = macs[t / nz];
          const std::size_t iz = t % nz;
          // One REM field lookup per slab (not one hash probe per voxel); a
          // y-row of cells is contiguous in the field's row-major storage.
          geom::VoxelField<RemCell>& field = rem.field(mac);
          // Per-thread batch buffers, reused across rows, slabs, and MACs.
          thread_local std::vector<data::Sample> queries;
          thread_local std::vector<double> values;
          thread_local std::vector<ml::KrigingRegressor::Prediction> predictions;
          if (queries.size() != nx) queries.resize(nx);
          const int channel = channel_of.at(mac);
          for (data::Sample& q : queries) {
            q.mac = mac;
            q.channel = channel;
          }
          for (std::size_t iy = 0; iy < ny; ++iy) {
            for (std::size_t ix = 0; ix < nx; ++ix) {
              queries[ix].position = g.voxel_center({ix, iy, iz});
            }
            RemCell* row = field.values().data() + g.flat({0, iy, iz});
            if (kriging != nullptr) {
              predictions.resize(nx);
              kriging->predict_with_sigma_batch(queries, predictions);
              for (std::size_t ix = 0; ix < nx; ++ix) {
                row[ix] = RemCell{predictions[ix].value, predictions[ix].sigma};
              }
            } else {
              values.resize(nx);
              estimator.predict_batch(queries, values);
              for (std::size_t ix = 0; ix < nx; ++ix) {
                row[ix] = RemCell{values[ix], 0.0};
              }
            }
          }
        },
        exec::chunk_for_cost(macs.size() * nz, est_slab_us), "rem.voxel_sweep");
  }

  REMGEN_COUNTER_ADD("rem.builds", 1);
  REMGEN_COUNTER_ADD("rem.voxels_predicted", macs.size() * g.nx() * g.ny() * g.nz());
  build_span.arg("macs", macs.size());
  build_span.arg("voxels", g.nx() * g.ny() * g.nz());
  return rem;
}

RadioEnvironmentMap build_rem(const data::Dataset& dataset, ml::ModelKind kind,
                              const geom::Aabb& volume, const RemBuilderConfig& config) {
  const std::unique_ptr<ml::Estimator> estimator = ml::make_model(kind);
  return build_rem(dataset, *estimator, volume, config);
}

}  // namespace remgen::core
