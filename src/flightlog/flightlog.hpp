// Flight recorder: a typed, sim-clock-stamped event log of one campaign.
//
// Mirrors the Crazyflie's on-board logging workflow: every mission-level
// moment the paper's pipeline hinges on (waypoint arrive/hold/leave, CRTP
// radio windows, UWB fix quality and anchor dropouts, scan attempt/retry/
// backoff/watchdog, scanres accepted/dropped, fault injections, battery
// state, rescue rounds, pipeline stages) is recorded as an enum-tagged
// `Event` with a small payload union, so a lost waypoint can be explained
// post-hoc from the log alone.
//
// Determinism contract (same as exec/fault, PR 2/3): events carry only the
// per-UAV simulated clock and a per-stream sequence number — never wall
// clock — and emission draws no randomness, so a recorded campaign is
// byte-identical across `--threads` and recording can never perturb the
// simulation. Each UAV mission runs single-threaded (exec::parallel_map
// chunk=1) and appends to its own ring buffer; merged() interleaves streams
// in (uav, seq) order, which is schedule-free.
//
// Gating mirrors obs::metrics: off by default (one relaxed load + branch per
// site via REMGEN_FLIGHTLOG), constexpr-false under REMGEN_OBS_DISABLED so
// every hook folds away at compile time.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "geom/vec3.hpp"
#include "obs/json.hpp"

namespace remgen::flightlog {

// ---------------------------------------------------------------------------
// Event taxonomy.

enum class EventKind : std::uint8_t {
  WaypointArrive,    ///< Fly leg to a waypoint finished (payload: Waypoint).
  WaypointHold,      ///< UAV latched hold for a scan command (Waypoint).
  WaypointLeave,     ///< Waypoint closed out with its report (Waypoint).
  RadioOff,          ///< CRTP link disabled for a scan window (Link).
  RadioOn,           ///< CRTP link re-enabled; queued frames flush (Link).
  UwbFix,            ///< Periodic position-fix quality sample (Uwb).
  UwbAnchorDropout,  ///< Anchor dead at start-up or ranging dropouts (Uwb).
  ScanAttempt,       ///< Scan attempt issued at a waypoint (Scan).
  ScanRetry,         ///< Attempt failed the sample gate; retrying (Scan).
  ScanBackoff,       ///< Exponential backoff hover before a retry (Scan).
  ScanWatchdog,      ///< Watchdog expired waiting for scan results (Scan).
  ScanresAccepted,   ///< One scanres telemetry line became a sample (Sample).
  ScanresDropped,    ///< A scanres line was rejected (Sample, with reason).
  FaultInjected,     ///< A fault injector fired (Fault).
  BatteryState,      ///< Battery fraction step or abort (Battery).
  RescueRound,       ///< Campaign dispatched a rescue round (Campaign).
  CoverageSummary,   ///< Final campaign coverage tallies (Campaign).
  PipelineStage,     ///< core::run_pipeline entered a stage (Campaign).
};

/// Stable wire name ("waypoint_arrive", ...), used as the JSONL "kind".
[[nodiscard]] const char* event_kind_name(EventKind kind) noexcept;
[[nodiscard]] std::optional<EventKind> event_kind_from_name(std::string_view name) noexcept;

// Payload union members. Defaulted equality keeps round-trip tests honest.

struct WaypointEvent {
  std::int32_t index = -1;      ///< Index into the UAV's assignment list.
  geom::Vec3 position{};        ///< Commanded waypoint position (m).
  std::uint64_t samples = 0;    ///< Samples banked at leave time.
  std::uint64_t attempts = 0;   ///< Scan attempts consumed.
  bool covered = false;         ///< Sample gate met at leave time.
  [[nodiscard]] bool operator==(const WaypointEvent&) const = default;
};

struct LinkEvent {
  std::uint64_t queue_depth = 0;  ///< TX frames queued at the toggle.
  std::uint64_t queue_drops = 0;  ///< Cumulative queue-full drops so far.
  [[nodiscard]] bool operator==(const LinkEvent&) const = default;
};

struct UwbEvent {
  std::int32_t anchor = -1;      ///< Anchor index; -1 for a whole-fix event.
  double sigma_m = 0.0;          ///< Estimator position sigma (UwbFix).
  std::uint64_t dropouts = 0;    ///< Cumulative injected dropouts (sampled).
  [[nodiscard]] bool operator==(const UwbEvent&) const = default;
};

struct ScanEvent {
  std::int32_t waypoint = -1;  ///< Waypoint index the scan serves.
  std::int32_t attempt = 0;    ///< 0-based attempt number.
  double wait_s = 0.0;         ///< Backoff hover / watchdog window (s).
  [[nodiscard]] bool operator==(const ScanEvent&) const = default;
};

struct SampleEvent {
  std::int32_t waypoint = -1;  ///< Waypoint index the sample was taken at.
  std::string mac;             ///< Normalised AP MAC (empty when unparsable).
  double rss_dbm = 0.0;        ///< Received signal strength.
  std::string reason;          ///< Drop reason ("malformed", "bad_mac", ...).
  [[nodiscard]] bool operator==(const SampleEvent&) const = default;
};

struct FaultEvent {
  std::string subsystem;  ///< "crtp", "scan", "uwb", "battery", ...
  std::string detail;     ///< Injector branch ("injected_drop", "stall", ...).
  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

struct BatteryEvent {
  double fraction = 1.0;  ///< Remaining charge in [0, 1].
  bool abort = false;     ///< True when the mission aborted on this reading.
  [[nodiscard]] bool operator==(const BatteryEvent&) const = default;
};

struct CampaignEvent {
  std::int32_t round = 0;       ///< Rescue round number (RescueRound).
  std::uint64_t waypoints = 0;  ///< Waypoints in scope for the event.
  std::uint64_t covered = 0;    ///< Covered tally (CoverageSummary).
  std::uint64_t rescued = 0;    ///< Of those, covered by a rescue round.
  std::string stage;            ///< Stage name ("rescue", "final", "fit", ...).
  [[nodiscard]] bool operator==(const CampaignEvent&) const = default;
};

using Payload = std::variant<std::monostate, WaypointEvent, LinkEvent, UwbEvent, ScanEvent,
                             SampleEvent, FaultEvent, BatteryEvent, CampaignEvent>;

/// One recorded event. `uav` is -1 for campaign/pipeline-level events; `seq`
/// is the per-stream sequence number (monotone within one uav id); `t_s` is
/// the emitting UAV's simulated clock (0.0 for campaign-level events).
struct Event {
  EventKind kind = EventKind::PipelineStage;
  std::int32_t uav = -1;
  std::uint64_t seq = 0;
  double t_s = 0.0;
  Payload payload;
  [[nodiscard]] bool operator==(const Event&) const = default;
};

// ---------------------------------------------------------------------------
// Gating + thread-local mission context.

namespace detail {
inline std::atomic<bool> g_enabled{false};
// Which UAV the current thread is simulating, and that UAV's clock. Valid
// because each mission runs start-to-finish on one thread (parallel_map
// chunk=1); campaign-level code leaves these at (-1, 0.0).
inline thread_local std::int32_t t_uav = -1;
inline thread_local double t_sim_s = 0.0;
}  // namespace detail

#if defined(REMGEN_OBS_DISABLED)
inline constexpr bool compiled() noexcept { return false; }
inline constexpr bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
#else
inline constexpr bool compiled() noexcept { return true; }
inline bool enabled() noexcept { return detail::g_enabled.load(std::memory_order_relaxed); }
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

/// Publishes the current thread's simulated clock (called by Crazyflie::step).
inline void set_sim_time(double now_s) noexcept { detail::t_sim_s = now_s; }
[[nodiscard]] inline double sim_time() noexcept { return detail::t_sim_s; }
[[nodiscard]] inline std::int32_t current_uav() noexcept { return detail::t_uav; }

/// RAII: binds the current thread to one UAV's event stream for the duration
/// of its mission and resets the thread's sim clock to that mission's t=0.
class MissionScope {
 public:
  explicit MissionScope(std::int32_t uav) noexcept
      : prev_uav_(detail::t_uav), prev_sim_s_(detail::t_sim_s) {
    detail::t_uav = uav;
    detail::t_sim_s = 0.0;
  }
  ~MissionScope() {
    detail::t_uav = prev_uav_;
    detail::t_sim_s = prev_sim_s_;
  }
  MissionScope(const MissionScope&) = delete;
  MissionScope& operator=(const MissionScope&) = delete;

 private:
  std::int32_t prev_uav_;
  double prev_sim_s_;
};

// ---------------------------------------------------------------------------
// Recorder.

/// Per-UAV bounded event streams. Appends take a mutex (cheap: each stream is
/// only ever written by the single thread simulating that UAV, so there is no
/// contention in steady state); when a stream is full the oldest event is
/// overwritten and counted, like obs::TraceRecorder.
class Recorder {
 public:
  void record(EventKind kind, std::int32_t uav, double t_s, Payload payload);

  /// All events, interleaved deterministically: streams in ascending uav id
  /// (campaign stream -1 first), events within a stream in seq order.
  [[nodiscard]] std::vector<Event> merged() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  /// Applies to streams created after the call; default 1<<16 per stream.
  void set_stream_capacity(std::size_t capacity);
  void clear();

 private:
  struct Stream {
    std::vector<Event> ring;
    std::size_t capacity = 0;
    std::size_t head = 0;  ///< Oldest element once the ring is full.
    std::uint64_t next_seq = 0;
    std::uint64_t dropped = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::int32_t, Stream> streams_;
  std::size_t stream_capacity_ = std::size_t{1} << 16;
};

/// The process-wide recorder every hook records into.
[[nodiscard]] Recorder& recorder();

/// Records into the current thread's stream at the thread's sim clock.
inline void emit(EventKind kind, Payload payload) {
  recorder().record(kind, detail::t_uav, detail::t_sim_s, std::move(payload));
}
/// Same, with an explicit timestamp (for callers that know `now_s` exactly).
inline void emit_at(EventKind kind, double t_s, Payload payload) {
  recorder().record(kind, detail::t_uav, t_s, std::move(payload));
}
/// Records into the campaign-level stream (uav -1, t 0).
inline void emit_campaign(EventKind kind, Payload payload) {
  recorder().record(kind, -1, 0.0, std::move(payload));
}

// ---------------------------------------------------------------------------
// JSONL serialisation (via obs::Json: sorted keys + round-trip-safe numbers,
// so the log is byte-stable and parses back to the identical event sequence).

[[nodiscard]] obs::Json event_to_json(const Event& event);
/// Throws std::runtime_error on unknown kinds or missing fields.
[[nodiscard]] Event event_from_json(const obs::Json& json);

/// One compact JSON object per line.
void write_jsonl(std::ostream& out, std::span<const Event> events);
/// Parses every non-empty line; throws std::runtime_error with a line number.
[[nodiscard]] std::vector<Event> read_jsonl(std::istream& in);

/// Writes recorder().merged() to `path`. Returns false (and logs a warning)
/// when the file cannot be written.
[[nodiscard]] bool export_jsonl_file(const std::string& path);

}  // namespace remgen::flightlog

// Hook macros: one relaxed load + branch when recording is off; the payload
// expression is only evaluated when recording is on.
#define REMGEN_FLIGHTLOG(kind, ...)                           \
  do {                                                        \
    if (::remgen::flightlog::enabled()) {                     \
      ::remgen::flightlog::emit((kind), __VA_ARGS__);         \
    }                                                         \
  } while (0)

#define REMGEN_FLIGHTLOG_AT(kind, t_s, ...)                   \
  do {                                                        \
    if (::remgen::flightlog::enabled()) {                     \
      ::remgen::flightlog::emit_at((kind), (t_s), __VA_ARGS__); \
    }                                                         \
  } while (0)

#define REMGEN_FLIGHTLOG_CAMPAIGN(kind, ...)                  \
  do {                                                        \
    if (::remgen::flightlog::enabled()) {                     \
      ::remgen::flightlog::emit_campaign((kind), __VA_ARGS__); \
    }                                                         \
  } while (0)
