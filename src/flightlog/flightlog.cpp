#include "flightlog/flightlog.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/fmt.hpp"
#include "util/log.hpp"

namespace remgen::flightlog {

namespace {

struct KindName {
  EventKind kind;
  const char* name;
};

// Wire names, in enum order so event_kind_name is a direct index.
constexpr KindName kKindNames[] = {
    {EventKind::WaypointArrive, "waypoint_arrive"},
    {EventKind::WaypointHold, "waypoint_hold"},
    {EventKind::WaypointLeave, "waypoint_leave"},
    {EventKind::RadioOff, "radio_off"},
    {EventKind::RadioOn, "radio_on"},
    {EventKind::UwbFix, "uwb_fix"},
    {EventKind::UwbAnchorDropout, "uwb_anchor_dropout"},
    {EventKind::ScanAttempt, "scan_attempt"},
    {EventKind::ScanRetry, "scan_retry"},
    {EventKind::ScanBackoff, "scan_backoff"},
    {EventKind::ScanWatchdog, "scan_watchdog"},
    {EventKind::ScanresAccepted, "scanres_accepted"},
    {EventKind::ScanresDropped, "scanres_dropped"},
    {EventKind::FaultInjected, "fault_injected"},
    {EventKind::BatteryState, "battery_state"},
    {EventKind::RescueRound, "rescue_round"},
    {EventKind::CoverageSummary, "coverage_summary"},
    {EventKind::PipelineStage, "pipeline_stage"},
};

// Which payload alternative each kind carries, for serialisation and for
// validating parsed logs.
enum class PayloadTag { None, Waypoint, Link, Uwb, Scan, Sample, Fault, Battery, Campaign };

PayloadTag payload_tag(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::WaypointArrive:
    case EventKind::WaypointHold:
    case EventKind::WaypointLeave:
      return PayloadTag::Waypoint;
    case EventKind::RadioOff:
    case EventKind::RadioOn:
      return PayloadTag::Link;
    case EventKind::UwbFix:
    case EventKind::UwbAnchorDropout:
      return PayloadTag::Uwb;
    case EventKind::ScanAttempt:
    case EventKind::ScanRetry:
    case EventKind::ScanBackoff:
    case EventKind::ScanWatchdog:
      return PayloadTag::Scan;
    case EventKind::ScanresAccepted:
    case EventKind::ScanresDropped:
      return PayloadTag::Sample;
    case EventKind::FaultInjected:
      return PayloadTag::Fault;
    case EventKind::BatteryState:
      return PayloadTag::Battery;
    case EventKind::RescueRound:
    case EventKind::CoverageSummary:
    case EventKind::PipelineStage:
      return PayloadTag::Campaign;
  }
  return PayloadTag::None;
}

double field_double(const obs::Json& json, const std::string& key, double fallback = 0.0) {
  return json.contains(key) ? json.at(key).as_double() : fallback;
}

std::int64_t field_int(const obs::Json& json, const std::string& key, std::int64_t fallback = 0) {
  return json.contains(key) ? static_cast<std::int64_t>(json.at(key).as_double()) : fallback;
}

std::uint64_t field_uint(const obs::Json& json, const std::string& key) {
  return static_cast<std::uint64_t>(field_int(json, key, 0));
}

std::string field_string(const obs::Json& json, const std::string& key) {
  return json.contains(key) ? json.at(key).as_string() : std::string{};
}

bool field_bool(const obs::Json& json, const std::string& key) {
  return json.contains(key) && json.at(key).as_bool();
}

}  // namespace

const char* event_kind_name(EventKind kind) noexcept {
  const auto index = static_cast<std::size_t>(kind);
  if (index >= std::size(kKindNames)) return "unknown";
  return kKindNames[index].name;
}

std::optional<EventKind> event_kind_from_name(std::string_view name) noexcept {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) return entry.kind;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Recorder.

void Recorder::record(EventKind kind, std::int32_t uav, double t_s, Payload payload) {
  const std::scoped_lock lock(mutex_);
  Stream& stream = streams_[uav];
  if (stream.capacity == 0) {
    stream.capacity = stream_capacity_;
    stream.ring.reserve(stream.capacity < 1024 ? stream.capacity : std::size_t{1024});
  }
  Event event{kind, uav, stream.next_seq++, t_s, std::move(payload)};
  if (stream.ring.size() < stream.capacity) {
    stream.ring.push_back(std::move(event));
  } else {
    stream.ring[stream.head] = std::move(event);
    stream.head = (stream.head + 1) % stream.capacity;
    ++stream.dropped;
  }
}

std::vector<Event> Recorder::merged() const {
  const std::scoped_lock lock(mutex_);
  std::vector<Event> out;
  std::size_t total = 0;
  for (const auto& [uav, stream] : streams_) total += stream.ring.size();
  out.reserve(total);
  // std::map iterates in ascending uav id, so the campaign stream (-1) comes
  // first; within a stream, oldest-first is head..end then begin..head.
  for (const auto& [uav, stream] : streams_) {
    const std::size_t n = stream.ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(stream.ring[(stream.head + i) % n]);
    }
  }
  return out;
}

std::size_t Recorder::size() const {
  const std::scoped_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [uav, stream] : streams_) total += stream.ring.size();
  return total;
}

std::uint64_t Recorder::dropped() const {
  const std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [uav, stream] : streams_) total += stream.dropped;
  return total;
}

void Recorder::set_stream_capacity(std::size_t capacity) {
  const std::scoped_lock lock(mutex_);
  stream_capacity_ = capacity == 0 ? 1 : capacity;
}

void Recorder::clear() {
  const std::scoped_lock lock(mutex_);
  streams_.clear();
}

Recorder& recorder() {
  static Recorder instance;
  return instance;
}

// ---------------------------------------------------------------------------
// JSONL.

obs::Json event_to_json(const Event& event) {
  obs::Json::Object object;
  object["kind"] = event_kind_name(event.kind);
  object["uav"] = static_cast<std::int64_t>(event.uav);
  object["seq"] = event.seq;
  object["t"] = event.t_s;
  switch (payload_tag(event.kind)) {
    case PayloadTag::Waypoint: {
      const auto& p = std::get<WaypointEvent>(event.payload);
      object["wp"] = static_cast<std::int64_t>(p.index);
      object["x"] = p.position.x;
      object["y"] = p.position.y;
      object["z"] = p.position.z;
      if (event.kind == EventKind::WaypointLeave) {
        object["samples"] = p.samples;
        object["attempts"] = p.attempts;
        object["covered"] = p.covered;
      }
      break;
    }
    case PayloadTag::Link: {
      const auto& p = std::get<LinkEvent>(event.payload);
      object["queue_depth"] = p.queue_depth;
      object["queue_drops"] = p.queue_drops;
      break;
    }
    case PayloadTag::Uwb: {
      const auto& p = std::get<UwbEvent>(event.payload);
      object["anchor"] = static_cast<std::int64_t>(p.anchor);
      if (event.kind == EventKind::UwbFix) object["sigma_m"] = p.sigma_m;
      if (p.dropouts != 0) object["dropouts"] = p.dropouts;
      break;
    }
    case PayloadTag::Scan: {
      const auto& p = std::get<ScanEvent>(event.payload);
      object["wp"] = static_cast<std::int64_t>(p.waypoint);
      object["attempt"] = static_cast<std::int64_t>(p.attempt);
      if (p.wait_s != 0.0) object["wait_s"] = p.wait_s;
      break;
    }
    case PayloadTag::Sample: {
      const auto& p = std::get<SampleEvent>(event.payload);
      object["wp"] = static_cast<std::int64_t>(p.waypoint);
      object["mac"] = p.mac;
      object["rss_dbm"] = p.rss_dbm;
      if (!p.reason.empty()) object["reason"] = p.reason;
      break;
    }
    case PayloadTag::Fault: {
      const auto& p = std::get<FaultEvent>(event.payload);
      object["subsystem"] = p.subsystem;
      object["detail"] = p.detail;
      break;
    }
    case PayloadTag::Battery: {
      const auto& p = std::get<BatteryEvent>(event.payload);
      object["fraction"] = p.fraction;
      object["abort"] = p.abort;
      break;
    }
    case PayloadTag::Campaign: {
      const auto& p = std::get<CampaignEvent>(event.payload);
      object["round"] = static_cast<std::int64_t>(p.round);
      object["waypoints"] = p.waypoints;
      object["covered"] = p.covered;
      object["rescued"] = p.rescued;
      object["stage"] = p.stage;
      break;
    }
    case PayloadTag::None:
      break;
  }
  return obs::Json{std::move(object)};
}

Event event_from_json(const obs::Json& json) {
  const auto kind = event_kind_from_name(field_string(json, "kind"));
  if (!kind) {
    throw std::runtime_error(
        util::format("flightlog: unknown event kind \"{}\"", field_string(json, "kind")));
  }
  Event event;
  event.kind = *kind;
  event.uav = static_cast<std::int32_t>(field_int(json, "uav", -1));
  event.seq = field_uint(json, "seq");
  event.t_s = field_double(json, "t");
  switch (payload_tag(*kind)) {
    case PayloadTag::Waypoint: {
      WaypointEvent p;
      p.index = static_cast<std::int32_t>(field_int(json, "wp", -1));
      p.position = {field_double(json, "x"), field_double(json, "y"), field_double(json, "z")};
      p.samples = field_uint(json, "samples");
      p.attempts = field_uint(json, "attempts");
      p.covered = field_bool(json, "covered");
      event.payload = p;
      break;
    }
    case PayloadTag::Link: {
      LinkEvent p;
      p.queue_depth = field_uint(json, "queue_depth");
      p.queue_drops = field_uint(json, "queue_drops");
      event.payload = p;
      break;
    }
    case PayloadTag::Uwb: {
      UwbEvent p;
      p.anchor = static_cast<std::int32_t>(field_int(json, "anchor", -1));
      p.sigma_m = field_double(json, "sigma_m");
      p.dropouts = field_uint(json, "dropouts");
      event.payload = p;
      break;
    }
    case PayloadTag::Scan: {
      ScanEvent p;
      p.waypoint = static_cast<std::int32_t>(field_int(json, "wp", -1));
      p.attempt = static_cast<std::int32_t>(field_int(json, "attempt"));
      p.wait_s = field_double(json, "wait_s");
      event.payload = p;
      break;
    }
    case PayloadTag::Sample: {
      SampleEvent p;
      p.waypoint = static_cast<std::int32_t>(field_int(json, "wp", -1));
      p.mac = field_string(json, "mac");
      p.rss_dbm = field_double(json, "rss_dbm");
      p.reason = field_string(json, "reason");
      event.payload = p;
      break;
    }
    case PayloadTag::Fault: {
      FaultEvent p;
      p.subsystem = field_string(json, "subsystem");
      p.detail = field_string(json, "detail");
      event.payload = p;
      break;
    }
    case PayloadTag::Battery: {
      BatteryEvent p;
      p.fraction = field_double(json, "fraction", 1.0);
      p.abort = field_bool(json, "abort");
      event.payload = p;
      break;
    }
    case PayloadTag::Campaign: {
      CampaignEvent p;
      p.round = static_cast<std::int32_t>(field_int(json, "round"));
      p.waypoints = field_uint(json, "waypoints");
      p.covered = field_uint(json, "covered");
      p.rescued = field_uint(json, "rescued");
      p.stage = field_string(json, "stage");
      event.payload = p;
      break;
    }
    case PayloadTag::None:
      event.payload = std::monostate{};
      break;
  }
  return event;
}

void write_jsonl(std::ostream& out, std::span<const Event> events) {
  for (const Event& event : events) {
    out << event_to_json(event).dump() << '\n';
  }
}

std::vector<Event> read_jsonl(std::istream& in) {
  std::vector<Event> events;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      events.push_back(event_from_json(obs::Json::parse(line)));
    } catch (const std::exception& error) {
      throw std::runtime_error(
          util::format("flightlog: line {}: {}", line_number, error.what()));
    }
  }
  return events;
}

bool export_jsonl_file(const std::string& path) {
  const std::uint64_t lost = recorder().dropped();
  if (lost > 0) {
    util::logf(util::LogLevel::Warn, "flightlog", "{} events dropped from full ring buffers",
               lost);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    util::logf(util::LogLevel::Warn, "flightlog", "cannot open {} for flight-log export", path);
    return false;
  }
  const std::vector<Event> events = recorder().merged();
  write_jsonl(out, events);
  out.flush();
  if (!out) {
    util::logf(util::LogLevel::Warn, "flightlog", "short write exporting flight log to {}", path);
    return false;
  }
  return true;
}

}  // namespace remgen::flightlog
