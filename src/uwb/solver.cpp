#include "uwb/solver.hpp"

#include <cmath>

#include "math/matrix.hpp"
#include "util/contracts.hpp"

namespace remgen::uwb {

namespace {

/// Shared Levenberg-damped Gauss-Newton loop. `Residuals` fills residual
/// vector r and Jacobian J (n x 3) at the current estimate.
template <typename Residuals>
PositionFix gauss_newton(std::size_t n, const geom::Vec3& initial_guess, int max_iterations,
                         Residuals&& residuals) {
  PositionFix fix;
  fix.position = initial_guess;
  double lambda = 1e-3;

  auto cost_of = [&](const geom::Vec3& p) {
    math::Matrix r(n, 1);
    math::Matrix j(n, 3);
    residuals(p, r, j);
    double c = 0.0;
    for (std::size_t i = 0; i < n; ++i) c += r(i, 0) * r(i, 0);
    return c;
  };

  math::Matrix r(n, 1);
  math::Matrix j(n, 3);
  for (int it = 0; it < max_iterations; ++it) {
    fix.iterations = it + 1;
    residuals(fix.position, r, j);
    double cost = 0.0;
    for (std::size_t i = 0; i < n; ++i) cost += r(i, 0) * r(i, 0);

    // Solve (J^T J + lambda I) dp = -J^T r.
    const math::Matrix jt = j.transposed();
    math::Matrix normal = jt * j;
    for (std::size_t d = 0; d < 3; ++d) normal(d, d) += lambda;
    math::Matrix rhs = jt * r * -1.0;
    math::Matrix dp(3, 1);
    try {
      dp = math::lu_solve(std::move(normal), std::move(rhs));
    } catch (const std::exception&) {
      lambda *= 10.0;
      continue;
    }
    const geom::Vec3 candidate = fix.position + geom::Vec3{dp(0, 0), dp(1, 0), dp(2, 0)};
    const double new_cost = cost_of(candidate);
    if (new_cost < cost) {
      fix.position = candidate;
      lambda = std::max(lambda * 0.3, 1e-9);
      const double step = geom::Vec3{dp(0, 0), dp(1, 0), dp(2, 0)}.norm();
      if (step < 1e-6) {
        fix.converged = true;
        break;
      }
    } else {
      lambda *= 10.0;
      if (lambda > 1e9) break;
    }
  }

  residuals(fix.position, r, j);
  double final_cost = 0.0;
  for (std::size_t i = 0; i < n; ++i) final_cost += r(i, 0) * r(i, 0);
  fix.residual_rms_m = std::sqrt(final_cost / static_cast<double>(n));
  // A tiny final residual also counts as converged (exact-data case).
  if (!fix.converged && fix.residual_rms_m < 1e-6) fix.converged = true;
  return fix;
}

}  // namespace

PositionFix solve_twr(std::span<const RangeObservation> observations,
                      const geom::Vec3& initial_guess, int max_iterations) {
  REMGEN_EXPECTS(observations.size() >= 4);
  const std::size_t n = observations.size();
  return gauss_newton(n, initial_guess, max_iterations,
                      [&](const geom::Vec3& p, math::Matrix& r, math::Matrix& j) {
                        for (std::size_t i = 0; i < n; ++i) {
                          const geom::Vec3 diff = p - observations[i].anchor.position;
                          const double dist = std::max(diff.norm(), 1e-9);
                          r(i, 0) = dist - observations[i].range_m;
                          j(i, 0) = diff.x / dist;
                          j(i, 1) = diff.y / dist;
                          j(i, 2) = diff.z / dist;
                        }
                      });
}

PositionFix solve_tdoa(std::span<const TdoaObservation> observations,
                       const geom::Vec3& initial_guess, int max_iterations) {
  REMGEN_EXPECTS(observations.size() >= 3);
  const std::size_t n = observations.size();
  return gauss_newton(n, initial_guess, max_iterations,
                      [&](const geom::Vec3& p, math::Matrix& r, math::Matrix& j) {
                        for (std::size_t i = 0; i < n; ++i) {
                          const geom::Vec3 da = p - observations[i].anchor_a.position;
                          const geom::Vec3 db = p - observations[i].anchor_b.position;
                          const double na = std::max(da.norm(), 1e-9);
                          const double nb = std::max(db.norm(), 1e-9);
                          r(i, 0) = (na - nb) - observations[i].difference_m;
                          j(i, 0) = da.x / na - db.x / nb;
                          j(i, 1) = da.y / na - db.y / nb;
                          j(i, 2) = da.z / na - db.z / nb;
                        }
                      });
}

}  // namespace remgen::uwb
