// Positioning-system interface: what the UAV firmware needs from whatever
// localization stack is mounted (UWB Loco Positioning today, the Lighthouse
// infrared system the paper names as future work, or anything else).
#pragma once

#include "geom/vec3.hpp"

namespace remgen::uwb {

/// Tag-side localization stack stepped by the firmware loop.
class PositioningSystem {
 public:
  virtual ~PositioningSystem() = default;

  /// Initialises the estimator at a known ground-truth position (pre-flight).
  virtual void initialize_at(const geom::Vec3& true_position) = 0;

  /// Advances by dt seconds: prediction with the world-frame IMU acceleration
  /// plus whatever measurements the system schedules, generated against the
  /// ground-truth `true_position`.
  virtual void step(double dt, const geom::Vec3& true_position,
                    const geom::Vec3& accel_world) = 0;

  [[nodiscard]] virtual geom::Vec3 estimated_position() const = 0;
  [[nodiscard]] virtual geom::Vec3 estimated_velocity() const = 0;

  /// Scalar position uncertainty (square root of the covariance trace).
  [[nodiscard]] virtual double position_sigma() const = 0;
};

}  // namespace remgen::uwb
