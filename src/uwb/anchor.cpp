#include "uwb/anchor.hpp"

#include <array>

#include "util/contracts.hpp"

namespace remgen::uwb {

std::vector<Anchor> corner_anchors(const geom::Aabb& volume) {
  std::vector<Anchor> anchors;
  anchors.reserve(8);
  int id = 0;
  for (const geom::Vec3& corner : volume.corners()) {
    anchors.push_back({id++, corner});
  }
  return anchors;
}

std::vector<Anchor> corner_anchors_subset(const geom::Aabb& volume, std::size_t count) {
  REMGEN_EXPECTS(count >= 4 && count <= 8);
  const auto corners = volume.corners();
  // corners() is z-major: indices 0-3 are the floor, 4-7 the ceiling.
  // Alternate floor/ceiling and diagonal corners for good 3D geometry.
  constexpr std::array<std::size_t, 8> order{0, 7, 3, 4, 1, 6, 2, 5};
  std::vector<Anchor> anchors;
  anchors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    anchors.push_back({static_cast<int>(i), corners[order[i]]});
  }
  return anchors;
}

}  // namespace remgen::uwb
