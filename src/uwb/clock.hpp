// Anchor clock model and the LPS self-calibration procedure.
//
// TDoA localization requires the anchors' transmission schedules to be
// tightly synchronised: a residual inter-anchor clock offset of dt seconds
// appears as a c*dt ranging error. The paper deploys anchors, measures their
// coordinates, and "initializes their automated calibration for synchronizing
// their transmission schedules"; this module models that procedure — each
// calibration round exchanges timestamped packets and averages down the
// offset estimate, limited by UWB timestamp quantisation.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace remgen::uwb {

/// Free-running anchor clock: offset (s) and drift (ppm) relative to ideal time.
struct AnchorClock {
  double offset_s = 0.0;
  double drift_ppm = 0.0;
};

/// Parameters of the self-calibration exchange.
struct CalibrationConfig {
  double initial_offset_sigma_s = 1e-6;   ///< Uncalibrated offsets (~1 us).
  double drift_sigma_ppm = 10.0;          ///< Crystal tolerance.
  double timestamp_noise_s = 65e-12;      ///< DW1000 timestamp resolution (~15.65 ps
                                          ///< per tick; a few ticks of jitter).
  int rounds = 64;                        ///< Packet exchanges per pair.
};

/// Result of calibrating a set of anchors.
struct CalibrationResult {
  std::vector<double> residual_offset_s;  ///< Post-calibration offset per anchor.
  double rms_residual_s = 0.0;

  /// Residual TDoA ranging error contributed by sync (c * rms offset), in m.
  [[nodiscard]] double ranging_error_m() const;
};

/// Draws uncalibrated clocks for `count` anchors.
[[nodiscard]] std::vector<AnchorClock> make_uncalibrated_clocks(std::size_t count,
                                                                const CalibrationConfig& config,
                                                                util::Rng& rng);

/// Runs the self-calibration: every anchor exchanges `rounds` timestamped
/// packets with anchor 0 (the reference); offsets are estimated as the mean of
/// the per-round estimates and subtracted. Residuals shrink with sqrt(rounds)
/// down to the timestamp noise floor.
[[nodiscard]] CalibrationResult self_calibrate(std::vector<AnchorClock> clocks,
                                               const CalibrationConfig& config, util::Rng& rng);

}  // namespace remgen::uwb
