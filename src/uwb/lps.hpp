// Loco Positioning System facade: anchors + ranging + EKF, stepped at a fixed
// rate by the UAV firmware loop. Supports the two localization procedures the
// paper discusses (TWR and TDoA).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "geom/floorplan.hpp"
#include "uwb/anchor.hpp"
#include "uwb/ekf.hpp"
#include "uwb/positioning.hpp"
#include "uwb/ranging.hpp"
#include "uwb/solver.hpp"
#include "util/rng.hpp"

namespace remgen::uwb {

/// Localization procedure selection.
enum class LocalizationMode { Twr, Tdoa };

/// LPS configuration.
struct LpsConfig {
  LocalizationMode mode = LocalizationMode::Tdoa;
  double measurements_per_second = 100.0;  ///< UWB measurement rate.
  double anchor_survey_sigma_m = 0.05;  ///< The paper's anchors are "manually
                                        ///< localized"; this is the surveying
                                        ///< error frozen into the anchor map
                                        ///< the filter uses.
  RangingConfig ranging;
  EkfConfig ekf;
  fault::UwbFaults faults;  ///< Injected anchor dropout / NLOS bias (off by default).
};

/// The tag-side positioning stack carried by one UAV.
class LocoPositioningSystem final : public PositioningSystem {
 public:
  /// Requires >= 4 anchors; `floorplan` may be null and must otherwise
  /// outlive the system.
  LocoPositioningSystem(std::vector<Anchor> anchors, const geom::Floorplan* floorplan,
                        const LpsConfig& config, util::Rng rng);

  /// Initialises the EKF from a snapshot multilateration fix at the true
  /// position (the UAV is placed at a known start before take-off).
  void initialize_at(const geom::Vec3& true_position) override;

  /// Advances the stack by dt: EKF prediction with the given world-frame
  /// acceleration, plus however many UWB measurement updates the configured
  /// rate schedules within dt, generated against `true_position`.
  void step(double dt, const geom::Vec3& true_position,
            const geom::Vec3& accel_world) override;

  [[nodiscard]] geom::Vec3 estimated_position() const override { return ekf_.position(); }
  [[nodiscard]] geom::Vec3 estimated_velocity() const override { return ekf_.velocity(); }
  [[nodiscard]] double position_sigma() const override { return ekf_.position_sigma(); }
  [[nodiscard]] const std::vector<Anchor>& anchors() const noexcept { return anchors_; }
  /// Anchor positions as the filter believes them (true + survey error).
  [[nodiscard]] const std::vector<Anchor>& surveyed_anchors() const noexcept {
    return surveyed_anchors_;
  }
  [[nodiscard]] const LpsConfig& config() const noexcept { return config_; }

  /// One snapshot multilateration fix at the true position (used for
  /// initialisation and for accuracy ablations without the filter).
  [[nodiscard]] std::optional<PositionFix> snapshot_fix(const geom::Vec3& true_position);

 private:
  /// Generates and applies one scheduled measurement.
  void one_measurement(const geom::Vec3& true_position);

  std::vector<Anchor> anchors_;           ///< True positions (generate ranges).
  std::vector<Anchor> surveyed_anchors_;  ///< What the filter is told.
  RangingModel ranging_;
  LpsConfig config_;
  Ekf ekf_;
  util::Rng rng_;
  std::optional<util::Rng> fault_rng_;  ///< Present iff faults are enabled.
  std::vector<bool> anchor_dead_;       ///< Injected complete anchor dropout.
  std::uint64_t injected_dropouts_ = 0;  ///< Cumulative count (flight-recorder sampling).
  double measurement_debt_ = 0.0;  ///< Fractional measurements carried over.
  std::size_t next_anchor_ = 0;    ///< Round-robin cursor.
};

}  // namespace remgen::uwb
