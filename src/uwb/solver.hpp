// Snapshot position solvers: nonlinear least squares (Gauss-Newton with
// Levenberg damping) over a set of TWR ranges or TDoA differences.
//
// These solve a single epoch without motion information; the EKF (ekf.hpp) is
// the filter the UAV actually flies with. The snapshot solver doubles as the
// anchor self-calibration primitive and as the EKF initialisation.
#pragma once

#include <span>
#include <vector>

#include "geom/vec3.hpp"
#include "uwb/anchor.hpp"

namespace remgen::uwb {

/// Result of a snapshot solve.
struct PositionFix {
  geom::Vec3 position;
  double residual_rms_m = 0.0;  ///< RMS of measurement residuals at the fix.
  int iterations = 0;
  bool converged = false;
};

/// One TWR observation for the solver.
struct RangeObservation {
  Anchor anchor;
  double range_m;
};

/// One TDoA observation: range(anchor_a) - range(anchor_b).
struct TdoaObservation {
  Anchor anchor_a;
  Anchor anchor_b;
  double difference_m;
};

/// Solves min sum (|p - a_i| - r_i)^2 starting from `initial_guess`.
/// Requires at least 4 observations for a 3D fix.
[[nodiscard]] PositionFix solve_twr(std::span<const RangeObservation> observations,
                                    const geom::Vec3& initial_guess, int max_iterations = 50);

/// Solves min sum ((|p-a_i| - |p-b_i|) - d_i)^2 starting from `initial_guess`.
/// Requires at least 3 observations (4+ anchors) for a 3D fix.
[[nodiscard]] PositionFix solve_tdoa(std::span<const TdoaObservation> observations,
                                     const geom::Vec3& initial_guess, int max_iterations = 50);

}  // namespace remgen::uwb
