#include "uwb/ekf.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace remgen::uwb {

Ekf::Ekf(const EkfConfig& config) : config_(config), p_(6, 6) { reset({}); }

void Ekf::reset(const geom::Vec3& position, const geom::Vec3& velocity) {
  position_ = position;
  velocity_ = velocity;
  consecutive_rejections_ = 0;
  p_ = math::Matrix(6, 6);
  const double ps = config_.initial_position_sigma * config_.initial_position_sigma;
  const double vs = config_.initial_velocity_sigma * config_.initial_velocity_sigma;
  for (std::size_t i = 0; i < 3; ++i) {
    p_(i, i) = ps;
    p_(i + 3, i + 3) = vs;
  }
}

void Ekf::predict(double dt, const geom::Vec3& accel_world) {
  REMGEN_EXPECTS(dt > 0.0);
  // Constant-acceleration kinematics over the step.
  position_ += velocity_ * dt + accel_world * (0.5 * dt * dt);
  velocity_ += accel_world * dt;

  // F = [I  dt*I; 0  I]
  math::Matrix f = math::Matrix::identity(6);
  for (std::size_t i = 0; i < 3; ++i) f(i, i + 3) = dt;

  // Discrete white-noise-acceleration process noise.
  const double q = config_.accel_noise_sigma * config_.accel_noise_sigma;
  const double dt2 = dt * dt;
  math::Matrix qm(6, 6);
  for (std::size_t i = 0; i < 3; ++i) {
    qm(i, i) = 0.25 * dt2 * dt2 * q;
    qm(i, i + 3) = 0.5 * dt * dt2 * q;
    qm(i + 3, i) = 0.5 * dt * dt2 * q;
    qm(i + 3, i + 3) = dt2 * q;
  }
  p_ = f * p_ * f.transposed() + qm;
}

bool Ekf::scalar_update(const math::Matrix& h, double innovation, double variance) {
  REMGEN_EXPECTS(h.rows() == 1 && h.cols() == 6);
  // S = H P H^T + R (scalar).
  math::Matrix pht = p_ * h.transposed();  // 6x1
  double s = variance;
  for (std::size_t i = 0; i < 6; ++i) s += h(0, i) * pht(i, 0);
  if (s <= 0.0) return false;

  if (config_.gate_sigma > 0.0 &&
      innovation * innovation > config_.gate_sigma * config_.gate_sigma * s) {
    // The gate protects against outliers, but once the estimate diverges it
    // would reject every measurement forever; after a run of rejections the
    // covariance is inflated and the next measurement accepted so the filter
    // can re-anchor itself.
    ++consecutive_rejections_;
    if (config_.gate_recovery_count <= 0 ||
        consecutive_rejections_ < config_.gate_recovery_count) {
      return false;
    }
    // Re-open the covariance to its initial priors: the filter has settled on
    // an estimate inconsistent with the measurements (e.g. a ghost solution)
    // and must be able to move far.
    const double ps = config_.initial_position_sigma * config_.initial_position_sigma;
    const double vs = config_.initial_velocity_sigma * config_.initial_velocity_sigma;
    p_ = math::Matrix(6, 6);
    for (std::size_t i = 0; i < 3; ++i) {
      p_(i, i) = ps;
      p_(i + 3, i + 3) = vs;
    }
    pht = p_ * h.transposed();
    s = variance;
    for (std::size_t i = 0; i < 6; ++i) s += h(0, i) * pht(i, 0);
  }
  consecutive_rejections_ = 0;

  // K = P H^T / S.
  math::Matrix k = pht * (1.0 / s);  // 6x1
  position_ += geom::Vec3{k(0, 0), k(1, 0), k(2, 0)} * innovation;
  velocity_ += geom::Vec3{k(3, 0), k(4, 0), k(5, 0)} * innovation;

  // Joseph-form covariance update for numerical symmetry.
  math::Matrix ikh = math::Matrix::identity(6) - k * h;
  p_ = ikh * p_ * ikh.transposed() + k * k.transposed() * variance;
  return true;
}

bool Ekf::update_range(const Anchor& anchor, double measured_range_m) {
  const geom::Vec3 diff = position_ - anchor.position;
  const double predicted = std::max(diff.norm(), 1e-9);
  math::Matrix h(1, 6);
  h(0, 0) = diff.x / predicted;
  h(0, 1) = diff.y / predicted;
  h(0, 2) = diff.z / predicted;
  return scalar_update(h, measured_range_m - predicted,
                       config_.range_sigma_m * config_.range_sigma_m);
}

bool Ekf::update_tdoa(const Anchor& anchor_a, const Anchor& anchor_b,
                      double measured_difference_m) {
  const geom::Vec3 da = position_ - anchor_a.position;
  const geom::Vec3 db = position_ - anchor_b.position;
  const double na = std::max(da.norm(), 1e-9);
  const double nb = std::max(db.norm(), 1e-9);
  math::Matrix h(1, 6);
  h(0, 0) = da.x / na - db.x / nb;
  h(0, 1) = da.y / na - db.y / nb;
  h(0, 2) = da.z / na - db.z / nb;
  return scalar_update(h, measured_difference_m - (na - nb),
                       config_.tdoa_sigma_m * config_.tdoa_sigma_m);
}

bool Ekf::update_azimuth(const geom::Vec3& origin, double yaw_rad, double measured_rad,
                         double sigma_rad) {
  const geom::Vec3 d = position_ - origin;
  const double c = std::cos(yaw_rad);
  const double s = std::sin(yaw_rad);
  // Tag position in the station frame (rotate world delta by -yaw).
  const double rx = c * d.x + s * d.y;
  const double ry = -s * d.x + c * d.y;
  const double r2 = rx * rx + ry * ry;
  if (r2 < 1e-6) return false;  // on the vertical axis: azimuth undefined

  const double predicted = std::atan2(ry, rx);
  double innovation = measured_rad - predicted;
  while (innovation > M_PI) innovation -= 2.0 * M_PI;
  while (innovation <= -M_PI) innovation += 2.0 * M_PI;

  // d(az)/d(world position), via the station-frame derivatives.
  math::Matrix h(1, 6);
  h(0, 0) = (-s * rx - c * ry) / r2;
  h(0, 1) = (c * rx - s * ry) / r2;
  h(0, 2) = 0.0;
  return scalar_update(h, innovation, sigma_rad * sigma_rad);
}

bool Ekf::update_elevation(const geom::Vec3& origin, double yaw_rad, double measured_rad,
                           double sigma_rad) {
  const geom::Vec3 d = position_ - origin;
  const double c = std::cos(yaw_rad);
  const double s = std::sin(yaw_rad);
  const double rx = c * d.x + s * d.y;
  const double ry = -s * d.x + c * d.y;
  const double rz = d.z;
  const double r = std::sqrt(rx * rx + ry * ry);
  const double rho2 = r * r + rz * rz;
  if (r < 1e-6 || rho2 < 1e-6) return false;

  const double predicted = std::atan2(rz, r);
  const double innovation = measured_rad - predicted;

  // d(el)/d(station frame) chained back to the world frame.
  const double dex = -rz * rx / (r * rho2);
  const double dey = -rz * ry / (r * rho2);
  const double dez = r / rho2;
  math::Matrix h(1, 6);
  h(0, 0) = dex * c - dey * s;
  h(0, 1) = dex * s + dey * c;
  h(0, 2) = dez;
  return scalar_update(h, innovation, sigma_rad * sigma_rad);
}

double Ekf::position_sigma() const {
  return std::sqrt(p_(0, 0) + p_(1, 1) + p_(2, 2));
}

}  // namespace remgen::uwb
