// UWB ranging measurement models: Two-Way Ranging (TWR) and Time Difference
// of Arrival (TDoA), with Gaussian noise, NLoS positive bias when walls
// obstruct the anchor-tag path, and the DWM1000's ~10 m usable range.
#pragma once

#include <optional>

#include "geom/floorplan.hpp"
#include "uwb/anchor.hpp"
#include "util/rng.hpp"

namespace remgen::uwb {

/// Error characteristics of the simulated DWM1000 link.
struct RangingConfig {
  double twr_noise_sigma_m = 0.05;    ///< Per-TWR-range white noise.
  double tdoa_noise_sigma_m = 0.04;   ///< Per-TDoA-difference white noise
                                      ///< (TDoA is slightly more accurate per
                                      ///< the paper's discussion).
  double nlos_bias_per_wall_m = 0.12; ///< Positive range bias per crossed wall.
  double max_range_m = 10.0;          ///< Beyond this the measurement is lost.
  double dropout_probability = 0.02;  ///< Random packet loss.
};

/// Generates noisy ranging measurements against ground-truth tag positions.
class RangingModel {
 public:
  /// `floorplan` may be null (free space, no NLoS bias) and must otherwise
  /// outlive the model.
  RangingModel(const geom::Floorplan* floorplan, const RangingConfig& config)
      : floorplan_(floorplan), config_(config) {}

  [[nodiscard]] const RangingConfig& config() const noexcept { return config_; }

  /// One TWR range to `anchor` from a tag truly at `tag`; nullopt when out of
  /// range or dropped.
  [[nodiscard]] std::optional<double> twr_range(const Anchor& anchor, const geom::Vec3& tag,
                                                util::Rng& rng) const;

  /// One TDoA measurement: (distance to `a`) - (distance to `b`); nullopt when
  /// either anchor is out of range or the packet pair is dropped.
  [[nodiscard]] std::optional<double> tdoa(const Anchor& a, const Anchor& b,
                                           const geom::Vec3& tag, util::Rng& rng) const;

 private:
  /// NLoS bias along one anchor-tag path.
  [[nodiscard]] double nlos_bias(const geom::Vec3& anchor_pos, const geom::Vec3& tag) const;

  const geom::Floorplan* floorplan_;
  RangingConfig config_;
};

}  // namespace remgen::uwb
