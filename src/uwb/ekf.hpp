// Extended Kalman filter for UAV state estimation, after Mueller et al.
// ("Fusing ultra-wideband range measurements with accelerometers and rate
// gyroscopes for quadrocopter state estimation", ICRA 2015) — the estimator
// the Crazyflie firmware uses with the Loco Positioning deck.
//
// State: x = [position (3), velocity (3)] in the world frame. The process
// model integrates the (noisy, bias-free in this simulation) accelerometer;
// measurement updates are scalar TWR ranges or TDoA differences against
// known anchors. Orientation is simplified away: the simulated Crazyflie
// flies near-level and the IMU readings are delivered in the world frame.
#pragma once

#include "geom/vec3.hpp"
#include "math/matrix.hpp"
#include "uwb/anchor.hpp"

namespace remgen::uwb {

/// EKF noise/tuning parameters.
struct EkfConfig {
  double accel_noise_sigma = 0.4;     ///< m/s^2, process noise from the IMU.
  double initial_position_sigma = 1.0;  ///< m, prior uncertainty.
  double initial_velocity_sigma = 0.2;  ///< m/s.
  double range_sigma_m = 0.06;        ///< TWR measurement noise fed to the filter.
  double tdoa_sigma_m = 0.05;         ///< TDoA measurement noise fed to the filter.
  double gate_sigma = 5.0;            ///< Innovation gate (in std-devs); 0 disables.
  int gate_recovery_count = 32;       ///< After this many consecutive gated-out
                                      ///< measurements the next one is accepted
                                      ///< unconditionally (divergence recovery).
};

/// Position/velocity EKF with UWB updates.
class Ekf {
 public:
  explicit Ekf(const EkfConfig& config = {});

  /// Re-initialises the filter at a known position with the configured priors.
  void reset(const geom::Vec3& position, const geom::Vec3& velocity = {});

  /// Propagates the state by dt (> 0) seconds under world-frame acceleration.
  void predict(double dt, const geom::Vec3& accel_world);

  /// Applies one TWR range measurement. Returns false if the innovation gate
  /// rejected the measurement.
  bool update_range(const Anchor& anchor, double measured_range_m);

  /// Applies one TDoA measurement (range(a) - range(b)). Returns false if
  /// gated out.
  bool update_tdoa(const Anchor& anchor_a, const Anchor& anchor_b, double measured_difference_m);

  /// Applies one azimuth (horizontal sweep) measurement from a Lighthouse
  /// base station at `origin` whose x-axis is rotated by `yaw_rad` about z.
  /// The innovation is wrapped to (-pi, pi]. Returns false if gated out or
  /// the tag is (nearly) on the station's vertical axis.
  bool update_azimuth(const geom::Vec3& origin, double yaw_rad, double measured_rad,
                      double sigma_rad);

  /// Applies one elevation (vertical sweep) measurement from a base station
  /// at `origin`. Returns false if gated out or degenerate geometry.
  bool update_elevation(const geom::Vec3& origin, double yaw_rad, double measured_rad,
                        double sigma_rad);

  [[nodiscard]] geom::Vec3 position() const noexcept { return position_; }
  [[nodiscard]] geom::Vec3 velocity() const noexcept { return velocity_; }

  /// Current 6x6 state covariance.
  [[nodiscard]] const math::Matrix& covariance() const noexcept { return p_; }

  /// Square root of the position covariance trace — a scalar uncertainty.
  [[nodiscard]] double position_sigma() const;

 private:
  /// Scalar measurement update with Jacobian h (1x6), innovation and variance.
  bool scalar_update(const math::Matrix& h, double innovation, double variance);

  EkfConfig config_;
  geom::Vec3 position_;
  geom::Vec3 velocity_;
  math::Matrix p_;  ///< 6x6 covariance.
  int consecutive_rejections_ = 0;
};

}  // namespace remgen::uwb
