#include "uwb/ranging.hpp"

namespace remgen::uwb {

double RangingModel::nlos_bias(const geom::Vec3& anchor_pos, const geom::Vec3& tag) const {
  if (floorplan_ == nullptr) return 0.0;
  return config_.nlos_bias_per_wall_m *
         static_cast<double>(floorplan_->wall_count_between(anchor_pos, tag));
}

std::optional<double> RangingModel::twr_range(const Anchor& anchor, const geom::Vec3& tag,
                                              util::Rng& rng) const {
  const double true_distance = anchor.position.distance_to(tag);
  if (true_distance > config_.max_range_m) return std::nullopt;
  if (rng.bernoulli(config_.dropout_probability)) return std::nullopt;
  const double measured =
      true_distance + nlos_bias(anchor.position, tag) + rng.gaussian(0.0, config_.twr_noise_sigma_m);
  return std::max(0.0, measured);
}

std::optional<double> RangingModel::tdoa(const Anchor& a, const Anchor& b, const geom::Vec3& tag,
                                         util::Rng& rng) const {
  const double da = a.position.distance_to(tag);
  const double db = b.position.distance_to(tag);
  if (da > config_.max_range_m || db > config_.max_range_m) return std::nullopt;
  if (rng.bernoulli(config_.dropout_probability)) return std::nullopt;
  const double bias = nlos_bias(a.position, tag) - nlos_bias(b.position, tag);
  return (da - db) + bias + rng.gaussian(0.0, config_.tdoa_noise_sigma_m);
}

}  // namespace remgen::uwb
