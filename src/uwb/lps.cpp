#include "uwb/lps.hpp"

#include <algorithm>

#include "flightlog/flightlog.hpp"
#include "obs/metrics.hpp"
#include "util/contracts.hpp"

namespace remgen::uwb {

LocoPositioningSystem::LocoPositioningSystem(std::vector<Anchor> anchors,
                                             const geom::Floorplan* floorplan,
                                             const LpsConfig& config, util::Rng rng)
    : anchors_(std::move(anchors)),
      ranging_(floorplan, config.ranging),
      config_(config),
      ekf_(config.ekf),
      rng_(rng) {
  REMGEN_EXPECTS(anchors_.size() >= 4);
  REMGEN_EXPECTS(config.measurements_per_second > 0.0);
  REMGEN_EXPECTS(config.anchor_survey_sigma_m >= 0.0);
  // The anchor map the filter uses carries the (frozen) manual-survey error.
  surveyed_anchors_ = anchors_;
  for (Anchor& a : surveyed_anchors_) {
    a.position += {rng_.gaussian(0.0, config.anchor_survey_sigma_m),
                   rng_.gaussian(0.0, config.anchor_survey_sigma_m),
                   rng_.gaussian(0.0, config.anchor_survey_sigma_m)};
  }
  if (config.faults.enabled()) {
    fault_rng_.emplace(fault::fault_rng(rng_, config.faults.seed, "uwb"));
    anchor_dead_.assign(anchors_.size(), false);
    // Kill a deterministic subset of anchors (never below the 4 the solver
    // needs for initialization).
    const std::size_t killable = anchors_.size() > 4 ? anchors_.size() - 4 : 0;
    std::size_t to_kill = std::min(config.faults.dead_anchors, killable);
    while (to_kill > 0) {
      const std::size_t i = fault_rng_->index(anchors_.size());
      if (anchor_dead_[i]) continue;
      anchor_dead_[i] = true;
      --to_kill;
    }
    // Record the anchors this mission starts without, once each.
    if (flightlog::enabled()) {
      for (std::size_t i = 0; i < anchor_dead_.size(); ++i) {
        if (!anchor_dead_[i]) continue;
        flightlog::emit(flightlog::EventKind::UwbAnchorDropout,
                        flightlog::UwbEvent{static_cast<std::int32_t>(i), 0.0, 0});
      }
    }
  }
}

void LocoPositioningSystem::initialize_at(const geom::Vec3& true_position) {
  if (auto fix = snapshot_fix(true_position); fix && fix->converged) {
    ekf_.reset(fix->position);
  } else {
    ekf_.reset(true_position);
  }
}

std::optional<PositionFix> LocoPositioningSystem::snapshot_fix(const geom::Vec3& true_position) {
  std::vector<RangeObservation> obs;
  obs.reserve(anchors_.size());
  for (std::size_t i = 0; i < anchors_.size(); ++i) {
    if (!anchor_dead_.empty() && anchor_dead_[i]) continue;
    if (const auto range = ranging_.twr_range(anchors_[i], true_position, rng_)) {
      obs.push_back({surveyed_anchors_[i], *range});
    }
  }
  if (obs.size() < 4) return std::nullopt;
  // Start from the anchor centroid; the volume is small so this converges.
  geom::Vec3 centroid;
  for (const auto& o : obs) centroid += o.anchor.position;
  centroid = centroid / static_cast<double>(obs.size());
  return solve_twr(obs, centroid);
}

void LocoPositioningSystem::one_measurement(const geom::Vec3& true_position) {
  // Injected anchor dropout: the slot is consumed (the round-robin cursor
  // advances) but no update reaches the filter.
  auto fault_drop = [this](std::size_t anchor) {
    if (!fault_rng_) return false;
    if (anchor_dead_[anchor]) {
      REMGEN_COUNTER_ADD("fault.uwb.dead_anchor_skips", 1);
      return true;
    }
    if (config_.faults.extra_dropout_probability > 0.0 &&
        fault_rng_->bernoulli(config_.faults.extra_dropout_probability)) {
      REMGEN_COUNTER_ADD("fault.uwb.injected_dropouts", 1);
      // Ranging runs at hundreds of Hz, so dropouts are sampled: one event
      // per 200 carrying the cumulative count (the counter always advances,
      // keeping the cadence identical whether recording is on or off).
      ++injected_dropouts_;
      if (injected_dropouts_ % 200 == 1) {
        REMGEN_FLIGHTLOG(flightlog::EventKind::UwbAnchorDropout,
                         flightlog::UwbEvent{static_cast<std::int32_t>(anchor), 0.0,
                                             injected_dropouts_});
      }
      return true;
    }
    return false;
  };
  // Injected NLOS: a positive range bias on this measurement.
  auto fault_bias = [this] {
    if (!fault_rng_ || config_.faults.nlos_bias_probability <= 0.0) return 0.0;
    if (!fault_rng_->bernoulli(config_.faults.nlos_bias_probability)) return 0.0;
    REMGEN_COUNTER_ADD("fault.uwb.nlos_biases", 1);
    return config_.faults.nlos_bias_m;
  };

  if (config_.mode == LocalizationMode::Twr) {
    const std::size_t i = next_anchor_;
    next_anchor_ = (next_anchor_ + 1) % anchors_.size();
    if (fault_drop(i)) return;
    if (const auto range = ranging_.twr_range(anchors_[i], true_position, rng_)) {
      ekf_.update_range(surveyed_anchors_[i], *range + fault_bias());
    }
  } else {
    // TDoA against a rotating pair (reference rotates too, as in the LPS
    // TDoA3 protocol where any anchor pair can produce a difference).
    const std::size_t i = next_anchor_;
    const std::size_t j = (next_anchor_ + 1) % anchors_.size();
    next_anchor_ = (next_anchor_ + 1) % anchors_.size();
    if (fault_drop(i) || fault_drop(j)) return;
    if (const auto diff = ranging_.tdoa(anchors_[i], anchors_[j], true_position, rng_)) {
      // NLOS strikes one leg of the difference: the path to anchor i lengthens.
      ekf_.update_tdoa(surveyed_anchors_[i], surveyed_anchors_[j], *diff + fault_bias());
    }
  }
}

void LocoPositioningSystem::step(double dt, const geom::Vec3& true_position,
                                 const geom::Vec3& accel_world) {
  REMGEN_EXPECTS(dt > 0.0);
  ekf_.predict(dt, accel_world);
  measurement_debt_ += dt * config_.measurements_per_second;
  while (measurement_debt_ >= 1.0) {
    measurement_debt_ -= 1.0;
    one_measurement(true_position);
  }
}

}  // namespace remgen::uwb
