// UWB localization anchors (Loco Positioning System infrastructure).
#pragma once

#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace remgen::uwb {

/// One fixed UWB anchor.
struct Anchor {
  int id = 0;
  geom::Vec3 position;
};

/// Places one anchor at each corner of the volume — the deployment the paper
/// uses (8 anchors at the corners of the scan cuboid).
[[nodiscard]] std::vector<Anchor> corner_anchors(const geom::Aabb& volume);

/// Takes the first `count` anchors of a corner deployment, alternating between
/// floor and ceiling corners so reduced sets stay well-conditioned in 3D.
/// Requires 4 <= count <= 8.
[[nodiscard]] std::vector<Anchor> corner_anchors_subset(const geom::Aabb& volume,
                                                        std::size_t count);

}  // namespace remgen::uwb
