#include "uwb/clock.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/units.hpp"

namespace remgen::uwb {

double CalibrationResult::ranging_error_m() const {
  return util::kSpeedOfLight * rms_residual_s;
}

std::vector<AnchorClock> make_uncalibrated_clocks(std::size_t count,
                                                  const CalibrationConfig& config,
                                                  util::Rng& rng) {
  std::vector<AnchorClock> clocks(count);
  for (AnchorClock& c : clocks) {
    c.offset_s = rng.gaussian(0.0, config.initial_offset_sigma_s);
    c.drift_ppm = rng.gaussian(0.0, config.drift_sigma_ppm);
  }
  if (!clocks.empty()) clocks.front() = AnchorClock{};  // anchor 0 is the reference
  return clocks;
}

CalibrationResult self_calibrate(std::vector<AnchorClock> clocks, const CalibrationConfig& config,
                                 util::Rng& rng) {
  REMGEN_EXPECTS(config.rounds > 0);
  CalibrationResult result;
  result.residual_offset_s.resize(clocks.size(), 0.0);

  double sum_sq = 0.0;
  for (std::size_t i = 1; i < clocks.size(); ++i) {
    // Each round yields an offset estimate corrupted by two timestamping
    // noises (TX at the reference, RX at anchor i).
    double estimate_sum = 0.0;
    for (int r = 0; r < config.rounds; ++r) {
      const double observed = clocks[i].offset_s + rng.gaussian(0.0, config.timestamp_noise_s) -
                              rng.gaussian(0.0, config.timestamp_noise_s);
      estimate_sum += observed;
    }
    const double estimate = estimate_sum / config.rounds;
    const double residual = clocks[i].offset_s - estimate;
    result.residual_offset_s[i] = residual;
    sum_sq += residual * residual;
  }
  result.rms_residual_s =
      clocks.size() > 1 ? std::sqrt(sum_sq / static_cast<double>(clocks.size() - 1)) : 0.0;
  return result;
}

}  // namespace remgen::uwb
