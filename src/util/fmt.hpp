// Minimal std::format-like string formatting.
//
// The toolchain this library targets (GCC 12) does not ship <format>, so we
// provide the small subset the codebase needs: positional "{}" fields with
// optional ":[0][width][.precision][type]" specs where type is one of
// d/x/X/f/e/g/s. Unmatched braces are literal ("{{" and "}}" escapes are
// supported). Errors (too few arguments, bad spec) throw std::runtime_error —
// formatting is only used for logs, names and reports, never on hot paths.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace remgen::util {

namespace detail {

struct FormatSpec {
  bool zero_pad = false;
  int width = 0;
  int precision = -1;
  char type = 0;
};

/// Parses the text between ':' and '}' of a replacement field.
inline FormatSpec parse_spec(std::string_view spec) {
  FormatSpec out;
  std::size_t i = 0;
  if (i < spec.size() && spec[i] == '0') {
    out.zero_pad = true;
    ++i;
  }
  while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
    out.width = out.width * 10 + (spec[i] - '0');
    ++i;
  }
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    out.precision = 0;
    while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
      out.precision = out.precision * 10 + (spec[i] - '0');
      ++i;
    }
  }
  if (i < spec.size()) {
    out.type = spec[i];
    ++i;
  }
  if (i != spec.size()) throw std::runtime_error("format: bad spec");
  return out;
}

inline void pad_and_append(std::string& out, const FormatSpec& spec, std::string_view body,
                           bool numeric) {
  const int pad = spec.width - static_cast<int>(body.size());
  if (pad > 0) {
    const bool zero = spec.zero_pad && numeric;
    // Zero padding goes after a leading sign.
    if (zero && !body.empty() && (body[0] == '-' || body[0] == '+')) {
      out.push_back(body[0]);
      body.remove_prefix(1);
    }
    out.append(static_cast<std::size_t>(pad), zero ? '0' : ' ');
  }
  out.append(body);
}

template <typename T>
void format_value(std::string& out, const FormatSpec& spec, const T& value) {
  char buf[64];
  if constexpr (std::is_same_v<T, bool>) {
    pad_and_append(out, spec, value ? "true" : "false", false);
  } else if constexpr (std::is_integral_v<T>) {
    int n;
    if (spec.type == 'x' || spec.type == 'X') {
      n = std::snprintf(buf, sizeof buf, spec.type == 'x' ? "%llx" : "%llX",
                        static_cast<unsigned long long>(static_cast<std::make_unsigned_t<T>>(value)));
    } else if constexpr (std::is_unsigned_v<T>) {
      n = std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
    } else {
      n = std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    }
    pad_and_append(out, spec, std::string_view(buf, static_cast<std::size_t>(n)), true);
  } else if constexpr (std::is_floating_point_v<T>) {
    const int precision = spec.precision >= 0 ? spec.precision : 6;
    const char type = (spec.type == 'e' || spec.type == 'g' || spec.type == 'f') ? spec.type : 'f';
    char fmt[16];
    std::snprintf(fmt, sizeof fmt, "%%.%d%c", precision, type);
    const int n = std::snprintf(buf, sizeof buf, fmt, static_cast<double>(value));
    pad_and_append(out, spec, std::string_view(buf, static_cast<std::size_t>(n)), true);
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    pad_and_append(out, spec, std::string_view(value), false);
  } else {
    static_assert(sizeof(T) == 0, "unsupported type for remgen::util::format");
  }
}

/// Formats the i-th replacement field by walking the argument pack.
inline void format_index(std::string&, const FormatSpec&, std::size_t) {
  throw std::runtime_error("format: too few arguments");
}

template <typename First, typename... Rest>
void format_index(std::string& out, const FormatSpec& spec, std::size_t index, const First& first,
                  const Rest&... rest) {
  if (index == 0) {
    format_value(out, spec, first);
  } else {
    format_index(out, spec, index - 1, rest...);
  }
}

}  // namespace detail

/// Formats `fmt` with the given arguments (std::format subset; see header doc).
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, const Args&... args) {
  std::string out;
  out.reserve(fmt.size() + 16 * sizeof...(Args));
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '{') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
        out.push_back('{');
        ++i;
        continue;
      }
      const std::size_t close = fmt.find('}', i);
      if (close == std::string_view::npos) throw std::runtime_error("format: unmatched '{'");
      std::string_view field = fmt.substr(i + 1, close - i - 1);
      detail::FormatSpec spec;
      if (const std::size_t colon = field.find(':'); colon != std::string_view::npos) {
        if (colon != 0) throw std::runtime_error("format: positional indices unsupported");
        spec = detail::parse_spec(field.substr(colon + 1));
      } else if (!field.empty()) {
        throw std::runtime_error("format: positional indices unsupported");
      }
      detail::format_index(out, spec, next_arg++, args...);
      i = close;
    } else if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') ++i;
      out.push_back('}');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace remgen::util
