// Power and frequency unit helpers used across the radio stack.
#pragma once

#include <cmath>

namespace remgen::util {

/// Converts power in dBm to milliwatts.
[[nodiscard]] inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Converts power in milliwatts to dBm. Requires mw > 0.
[[nodiscard]] inline double mw_to_dbm(double mw) { return 10.0 * std::log10(mw); }

/// Sums two powers expressed in dBm (adds in the linear domain).
[[nodiscard]] inline double dbm_sum(double a_dbm, double b_dbm) {
  return mw_to_dbm(dbm_to_mw(a_dbm) + dbm_to_mw(b_dbm));
}

/// Speed of light in m/s.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Free-space path loss in dB for distance d (m) and frequency f (Hz).
/// Returns 0 dB for distances below 1 mm to avoid singularities.
[[nodiscard]] inline double fspl_db(double distance_m, double frequency_hz) {
  const double d = distance_m < 1e-3 ? 1e-3 : distance_m;
  return 20.0 * std::log10(d) + 20.0 * std::log10(frequency_hz) +
         20.0 * std::log10(4.0 * M_PI / kSpeedOfLight);
}

}  // namespace remgen::util
