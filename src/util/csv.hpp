// Minimal CSV reading/writing for dataset import/export.
//
// The format is deliberately simple: comma separation, optional quoting with
// double-quote escaping, one header row. This is sufficient for the sample
// datasets remgen produces and consumes.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace remgen::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// In-memory CSV table with a header row.
struct CsvTable {
  CsvRow header;
  std::vector<CsvRow> rows;

  /// Index of a header column, or -1 when absent.
  [[nodiscard]] int column_index(std::string_view name) const;
};

/// Parses CSV text (header row first). Handles quoted fields with embedded
/// commas/quotes/newlines. Throws std::runtime_error on malformed quoting.
[[nodiscard]] CsvTable parse_csv(std::string_view text);

/// Reads and parses a CSV file. Throws std::runtime_error if unreadable.
[[nodiscard]] CsvTable read_csv_file(const std::string& path);

/// Streaming CSV writer.
class CsvWriter {
 public:
  /// Writes to the given stream, which must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row, quoting fields as needed.
  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
};

/// Quotes a field if it contains separators, quotes, or newlines.
[[nodiscard]] std::string csv_escape(std::string_view field);

}  // namespace remgen::util
