#include "util/quoted.hpp"

namespace remgen::util {

std::string quote_field(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  out.push_back('"');
  for (const char c : value) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

bool read_quoted_field(std::istream& in, std::string& out) {
  out.clear();
  char c = 0;
  if (!(in >> c) || c != '"') {
    in.setstate(std::ios::failbit);
    return false;
  }
  while (in.get(c)) {
    if (c == '"') return true;
    if (c == '\\') {
      if (!in.get(c)) break;
    }
    out.push_back(c);
  }
  in.setstate(std::ios::failbit);
  return false;
}

}  // namespace remgen::util
