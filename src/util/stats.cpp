#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"

namespace remgen::util {

OnlineStats::OnlineStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  REMGEN_EXPECTS(!predicted.empty());
  REMGEN_EXPECTS(predicted.size() == actual.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double e = predicted[i] - actual[i];
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  REMGEN_EXPECTS(!predicted.empty());
  REMGEN_EXPECTS(predicted.size() == actual.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    acc += std::abs(predicted[i] - actual[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double mean(std::span<const double> xs) {
  REMGEN_EXPECTS(!xs.empty());
  double acc = 0.0;
  for (const double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double percentile(std::vector<double> xs, double q) {
  REMGEN_EXPECTS(q >= 0.0 && q <= 100.0);
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Percentiles percentiles(std::span<const double> xs) {
  if (xs.empty()) return {};
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto at = [&sorted](double q) {
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  return {at(50.0), at(90.0), at(99.0), at(99.9)};
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  REMGEN_EXPECTS(lo < hi);
  REMGEN_EXPECTS(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (std::isnan(x)) {
    ++nan_;
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // numeric edge case at hi_
  ++counts_[idx];
}

std::size_t Histogram::bin_count(std::size_t i) const {
  REMGEN_EXPECTS(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_lo(std::size_t i) const {
  REMGEN_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  REMGEN_EXPECTS(i < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

}  // namespace remgen::util
