// Endian-safe binary serialisation primitives for the snapshot store.
//
// BinaryWriter appends explicitly little-endian fields to an in-memory
// buffer; BinaryReader consumes the same fields from a byte view, throwing
// std::runtime_error on underflow so truncated files fail loudly instead of
// yielding garbage. Doubles round-trip bit-exactly (std::bit_cast through
// uint64), which is what gives loaded models bit-identical predictions.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace remgen::util {

/// Appends little-endian fields to a growable byte buffer.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Bit-exact: the value is written as its IEEE-754 bit pattern.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  /// u64 byte length followed by the raw bytes.
  void str(std::string_view v);
  void bytes(const void* data, std::size_t n);

  [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Consumes little-endian fields from a byte view. Every read checks the
/// remaining length and throws std::runtime_error("binary: truncated ...")
/// on underflow.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }
  [[nodiscard]] std::string str();
  void bytes(void* out, std::size_t n);
  /// A view of the next `n` bytes, consumed.
  [[nodiscard]] std::string_view view(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void require(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of a byte range.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

}  // namespace remgen::util
